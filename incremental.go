package mccatch

import (
	"fmt"
	"math"

	"mccatch/internal/core"
	"mccatch/internal/index"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/segment"
)

// Incremental is a mutable MCCATCH detector: a dataset that accepts
// Insert and Delete between detections, indexed by an LSM-style layer —
// a small mutable memtable in front of frozen immutable index segments —
// so no detection ever rebuilds the full index from scratch.
//
// Detect is EXACTLY equivalent to a one-shot run over the current live
// set: inserts and deletes never change the answer, only the work done
// to produce it. Element indices in the Result (Microcluster.Members,
// PointScores, the Oracle plot) refer to the live elements in insertion
// order, i.e. the slice a fresh run would have been given.
//
// An Incremental is not safe for concurrent mutation; the worker fan-out
// inside one Detect call is.
type Incremental[T any] struct {
	m        *segment.Mutable[T]
	builder  index.Builder[T]
	params   core.Params
	validate func(T) error
	// dist and euclidean feed the sharded Detect path (WithShards > 1),
	// which partitions the live set per detection; euclidean marks the
	// vector constructor so the cut can use tiles.
	dist      Distance[T]
	euclidean bool

	// Radii cache, valid while radiiEpoch matches the live-set epoch:
	// deriving the schedule costs a diameter estimate over the live set,
	// far too much to repeat per probe on an unchanged dataset.
	radii      []float64
	radiiEpoch uint64
	radiiSet   bool
}

// NewIncremental returns an empty mutable detector over the metric dist,
// indexing with the same bulk-loaded slim-tree a one-shot Run uses (so
// Detect matches Run on the live set bit for bit). Options are validated
// here, fixed at construction, and apply to every Detect.
func NewIncremental[T any](dist Distance[T], opts ...Option) (*Incremental[T], error) {
	var p core.Params
	if err := applyOptions(&p, opts); err != nil {
		return nil, err
	}
	resolveSlimCapacity(&p)
	builder := core.SlimBuilder(dist, p)
	return &Incremental[T]{
		m:       segment.NewMutable(dist, builder, 0),
		builder: builder,
		params:  p,
		dist:    dist,
	}, nil
}

// NewIncrementalVectors returns an empty mutable detector for
// dim-dimensional vectors under the Euclidean distance, with the
// transformation cost set to the dimensionality — the incremental
// counterpart of RunVectors, down to the same backend choice (STR
// bulk-loaded R-tree unless a slim-tree-specific option is passed), so
// Detect matches RunVectors over the live set bit for bit. Insert
// rejects points of the wrong dimension or with non-finite values.
func NewIncrementalVectors(dim int, opts ...Option) (*Incremental[[]float64], error) {
	var p core.Params
	if err := applyOptions(&p, append([]Option{WithVectorCost(dim)}, opts...)); err != nil {
		return nil, err
	}
	var builder index.Builder[[]float64]
	if p.TreeCapacity != 0 || p.InsertionBuild || p.SlimDownPasses > 0 {
		resolveSlimCapacity(&p)
		builder = core.SlimBuilder(metric.Euclidean, p)
	} else {
		builder = func(sub [][]float64) index.Index[[]float64] { return rtree.NewWithWorkers(sub, 0, p.Workers) }
	}
	inc := &Incremental[[]float64]{
		m:         segment.NewMutable(metric.Euclidean, builder, 0),
		builder:   builder,
		params:    p,
		dist:      metric.Euclidean,
		euclidean: true,
	}
	// Euclidean distance is coordinate-monotone, so the live set's
	// diameter estimate is its bounding-box corner distance — unlock the
	// O(dim) incremental box path for the per-epoch radii refresh.
	inc.m.DeclareMonotone()
	inc.validate = func(x []float64) error {
		if len(x) != dim {
			return fmt.Errorf("mccatch: point has dimension %d, want %d", len(x), dim)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mccatch: point has non-finite value at feature %d", j)
			}
		}
		return nil
	}
	return inc, nil
}

// Insert adds x to the live set and returns its permanent handle, usable
// with Delete at any later time. The element lands in the memtable; when
// the memtable reaches its cap it is automatically frozen into a new
// immutable segment.
func (inc *Incremental[T]) Insert(x T) (int64, error) {
	if inc.validate != nil {
		if err := inc.validate(x); err != nil {
			return 0, err
		}
	}
	return inc.m.Insert(x), nil
}

// Delete removes the element behind handle from the live set and reports
// whether it was present. Frozen elements become tombstones that every
// query subtracts exactly until the next Compact.
func (inc *Incremental[T]) Delete(handle int64) bool { return inc.m.Delete(handle) }

// Freeze forces the current memtable into a new immutable segment (no-op
// when empty), so subsequent detections run entirely over frozen arenas.
func (inc *Incremental[T]) Freeze() { inc.m.Freeze() }

// Compact rebuilds all segments and the memtable into one fresh segment
// over the live set, dropping every tombstone — after which the index is
// indistinguishable from a fresh bulk build.
func (inc *Incremental[T]) Compact() { inc.m.Compact() }

// Len returns the number of live elements.
func (inc *Incremental[T]) Len() int { return inc.m.Size() }

// Segments reports the current frozen-segment count.
func (inc *Incremental[T]) Segments() int { return inc.m.Segments() }

// Tombstones reports the number of deleted-but-not-yet-compacted
// elements across all segments.
func (inc *Incremental[T]) Tombstones() int { return inc.m.Tombstones() }

// SetMemtableCap sets the memtable size at which Insert auto-freezes a
// segment (n ≤ 0 restores the default).
func (inc *Incremental[T]) SetMemtableCap(n int) { inc.m.SetMemtableCap(n) }

// Detect runs MCCATCH over the current live set, reusing the frozen
// segments: Steps I, II and IV answer their joins as exact merges across
// the segments and the memtable instead of rebuilding the full index.
// The Result is identical to a one-shot run over the live elements.
//
// Under WithShards(n), n > 1, Detect instead snapshots the live set and
// runs the shard-parallel pipeline over a fresh deterministic partition
// of it — the LSM layer still absorbs the mutations, but the detection
// indexes are per-shard builds. The Result is still identical (the
// shard merge is exact); the trade is rebuild cost per detection for
// shard-level parallelism during it.
func (inc *Incremental[T]) Detect() (*Result, error) {
	if inc.params.Shards > 1 {
		return core.RunSharded(inc.m.Live(), inc.dist, inc.builder, inc.params, inc.euclidean)
	}
	return core.RunIncremental[T](inc.m, inc.builder, inc.params)
}

// Epoch returns the live-set mutation counter: it changes exactly when
// Insert or a successful Delete changes the live set, and stays put
// across Freeze and Compact. Two calls returning the same epoch bracket
// a window in which every Detect, Probe and Radii answer was identical —
// the serving layer keys its result caches on it.
func (inc *Incremental[T]) Epoch() uint64 { return inc.m.Epoch() }

// Radii returns the radii schedule (Step I of the pipeline) a Detect
// over the current live set would use: a logarithmically spaced radii
// derived from the live set's estimated diameter. Returns nil while the
// live set has fewer than two elements. The schedule is cached per epoch
// — probes between mutations pay for the diameter estimate once.
func (inc *Incremental[T]) Radii() []float64 {
	if e := inc.m.Epoch(); !inc.radiiSet || e != inc.radiiEpoch {
		inc.radii = nil
		a := inc.params.NumRadii
		if a == 0 {
			a = core.DefaultNumRadii
		}
		if l := inc.m.DiameterEstimate(); l > 0 {
			inc.radii = core.MakeRadii(l, a)
		}
		inc.radiiEpoch, inc.radiiSet = e, true
	}
	return inc.radii
}

// Probe returns q's neighbor-count curve: for each radius of the current
// schedule, how many live elements lie within that radius of q (q itself
// counts when it is in the live set). See ProbeAppend.
func (inc *Incremental[T]) Probe(q T) ([]int, error) { return inc.ProbeAppend(q, nil) }

// ProbeAppend appends q's neighbor-count curve to dst, reusing dst's
// capacity — the allocation-free form of Probe, answered as one merged
// multi-radius traversal across the frozen segments and the memtable.
// Like every other method it is not safe concurrently with mutation.
func (inc *Incremental[T]) ProbeAppend(q T, dst []int) ([]int, error) {
	if inc.validate != nil {
		if err := inc.validate(q); err != nil {
			return nil, err
		}
	}
	return inc.m.RangeCountMultiAppend(q, inc.Radii(), dst), nil
}

// DeriveWordCost returns the WithWordCost option computed from the data
// itself (distinct runes, longest word) — the same derivation RunStrings
// applies, exported so an incremental run over strings can match a
// one-shot RunStrings on the same words bit for bit.
func DeriveWordCost(words []string) Option {
	distinct := map[rune]bool{}
	longest := 0
	for _, w := range words {
		runes := []rune(w)
		if len(runes) > longest {
			longest = len(runes)
		}
		for _, r := range runes {
			distinct[r] = true
		}
	}
	return WithWordCost(len(distinct), longest)
}
