// Package mccatch detects microclusters of outliers in any metric dataset —
// dimensional (vectors) or nondimensional (strings, graphs, point sets,
// anything with a distance function) — and ranks singleton ('one-off')
// outliers and nonsingleton microclusters together by principled,
// compression-based anomaly scores.
//
// It implements MCCATCH from "MCCATCH: Scalable Microcluster Detection in
// Dimensional and Nondimensional Datasets" (Sánchez Vinces, Cordeiro,
// Faloutsos; ICDE 2024). The method is deterministic, needs no manual
// tuning (its three hyperparameters have data-driven defaults used in every
// experiment of the paper), and runs in subquadratic time
// O(n·n^(1-1/u)) on data of intrinsic dimension u.
//
// # Quick start
//
//	points := [][]float64{ ... }
//	res, err := mccatch.RunVectors(points)
//	for _, mc := range res.Microclusters { // most-strange-first
//		fmt.Println(mc.Members, mc.Score)
//	}
//
// For nondimensional data provide any metric:
//
//	res, err := mccatch.Run(words, mccatch.Levenshtein,
//		mccatch.WithWordCost(26, 12))
//
// # Concurrency
//
// Every run fans its per-point work (range-count curves, gelling range
// queries, bridge searches, scoring) out across runtime.GOMAXPROCS(0)
// workers by default, and all three index backends — the bulk-loaded
// slim-tree, the kd-tree and the R-tree — build their trees in parallel
// too. Use WithWorkers to pin the worker count —
// WithWorkers(1) forces a fully serial run. The result is byte-identical
// for every worker count; see WithWorkers for the determinism guarantee.
package mccatch

import (
	"fmt"
	"math"

	"mccatch/internal/core"
	"mccatch/internal/metric"
)

// Microcluster is one detected microcluster. Members are indices into the
// input dataset; Score is the anomaly score s_j (bits per point, larger is
// more anomalous); Bridge is the smallest distance from a member to its
// nearest inlier.
type Microcluster = core.Microcluster

// Result carries the ranked microclusters, per-point scores, and the
// explainability artifacts ('Oracle' plot, radii, histogram, MDL cutoff).
type Result = core.Result

// Distance is a metric between two elements. It must be symmetric,
// non-negative, zero on identical arguments, and satisfy the triangle
// inequality.
type Distance[T any] = metric.Distance[T]

// Ready-made metrics re-exported for callers.
var (
	// Euclidean is the L2 distance between equal-length vectors.
	Euclidean = metric.Euclidean
	// Manhattan is the L1 distance between equal-length vectors.
	Manhattan = metric.Manhattan
	// Levenshtein is the edit distance between strings.
	Levenshtein = metric.Levenshtein
	// Hausdorff is the Hausdorff distance between point sets.
	Hausdorff = metric.Hausdorff
	// GraphDistance is a graph-edit-distance surrogate between graphs.
	GraphDistance = metric.GraphDistance
	// TreeEditDistance is the exact Zhang-Shasha edit distance between
	// rooted ordered labeled trees.
	TreeEditDistance = metric.TreeEditDistance
	// SoundexDistance compares words by the edit distance of their Soundex
	// phonetic codes.
	SoundexDistance = metric.SoundexDistance
)

// MetricTree re-exports the rooted ordered tree type for TreeEditDistance.
type MetricTree = metric.Tree

// Graph re-exports the graph element type used with GraphDistance.
type Graph = metric.Graph

// PointSet re-exports the point-set element type used with Hausdorff.
type PointSet = metric.PointSet

// NewGraph builds a Graph on n nodes from an undirected edge list.
func NewGraph(n int, edges [][2]int) Graph { return metric.NewGraph(n, edges) }

// Option configures a run or a Detector. Every option validates its
// argument eagerly and surfaces a descriptive error from the constructor
// it is passed to (Run*, Build*, Open*, NewIncremental*) before any work
// is done — an explicit WithRadii(0) is a caller bug, not a request for
// the default, so it is rejected rather than silently replaced.
type Option func(*core.Params) error

// applyOptions is the one place option lists are folded into parameters:
// every public entry point funnels through it, so validation behaves
// identically everywhere.
func applyOptions(p *core.Params, opts []Option) error {
	for _, o := range opts {
		if err := o(p); err != nil {
			return err
		}
	}
	return nil
}

// WithRadii sets a, the number of neighborhood radii (default 15).
// a must be at least 2 (the schedule needs a smallest and a largest
// radius to interpolate between).
func WithRadii(a int) Option {
	return func(p *core.Params) error {
		if a < 2 {
			return fmt.Errorf("mccatch: WithRadii: need at least 2 radii, got %d", a)
		}
		p.NumRadii = a
		return nil
	}
}

// WithMaxSlope sets b, the maximum plateau slope (default 0.1). b must
// be finite and ≥ 0; zero demands strictly flat plateaus.
func WithMaxSlope(b float64) Option {
	return func(p *core.Params) error {
		if math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
			return fmt.Errorf("mccatch: WithMaxSlope: slope must be finite and ≥ 0, got %v", b)
		}
		p.MaxSlope = b
		return nil
	}
}

// WithMaxCardinality sets c, the maximum microcluster cardinality
// (default ⌈n·0.1⌉). c must be ≥ 1.
func WithMaxCardinality(c int) Option {
	return func(p *core.Params) error {
		if c < 1 {
			return fmt.Errorf("mccatch: WithMaxCardinality: cardinality must be ≥ 1, got %d", c)
		}
		p.MaxCardinality = c
		return nil
	}
}

// WithVectorCost sets the transformation cost t for a dim-dimensional
// vector space (Def. 7: t = dimensionality). dim must be ≥ 1.
func WithVectorCost(dim int) Option {
	return func(p *core.Params) error {
		if dim < 1 {
			return fmt.Errorf("mccatch: WithVectorCost: dimension must be ≥ 1, got %d", dim)
		}
		p.Cost = metric.VectorCost(dim)
		return nil
	}
}

// WithWordCost sets t for strings under the edit distance (Def. 7).
// Both the alphabet size and the longest word length must be ≥ 1.
func WithWordCost(distinctChars, longestWordLen int) Option {
	return func(p *core.Params) error {
		if distinctChars < 1 || longestWordLen < 1 {
			return fmt.Errorf("mccatch: WithWordCost: need ≥ 1 distinct characters and word length, got (%d, %d)",
				distinctChars, longestWordLen)
		}
		p.Cost = metric.WordCost(distinctChars, longestWordLen)
		return nil
	}
}

// WithCustomCost sets t to a caller-supplied bits-per-unit-distance cost
// for any other metric space. The cost must be finite and > 0.
func WithCustomCost(bitsPerUnit float64) Option {
	return func(p *core.Params) error {
		if math.IsNaN(bitsPerUnit) || math.IsInf(bitsPerUnit, 0) || bitsPerUnit <= 0 {
			return fmt.Errorf("mccatch: WithCustomCost: cost must be finite and > 0, got %v", bitsPerUnit)
		}
		p.Cost = metric.CustomCost(bitsPerUnit)
		return nil
	}
}

// WithTreeCapacity sets the slim-tree node capacity (default 32). The
// capacity must be at least 4 — below that the minMax split cannot
// distribute entries.
func WithTreeCapacity(k int) Option {
	return func(p *core.Params) error {
		if k < 4 {
			return fmt.Errorf("mccatch: WithTreeCapacity: capacity must be ≥ 4, got %d", k)
		}
		p.TreeCapacity = k
		return nil
	}
}

// WithInsertionBuild reverts slim-tree construction to the legacy
// incremental insert path (ChooseSubtree + minMax splits). By default
// every slim-tree is bulk-loaded: each level picks pivots from a sample of
// its elements (k-medoid style) and partitions the elements under a
// balance cap, which builds several times faster and yields compact,
// low-overlap nodes that all queries — and the Step II dual-tree self-join
// — prune against far more effectively. The two builds are
// query-equivalent, so the detection Result is byte-identical either way;
// this option exists for benchmarking the build paths against each other.
func WithInsertionBuild() Option {
	return func(p *core.Params) error {
		p.InsertionBuild = true
		return nil
	}
}

// WithSlimDown enables the Slim-tree's slim-down reorganization (Traina
// Jr. et al.) with the given number of passes after each tree build. It
// reduces node overlap, which can cut distance computations on clustered
// data; results are unchanged.
func WithSlimDown(passes int) Option {
	return func(p *core.Params) error {
		if passes < 0 {
			return fmt.Errorf("mccatch: WithSlimDown: passes must be ≥ 0, got %d", passes)
		}
		p.SlimDownPasses = passes
		return nil
	}
}

// WithWorkers sets the number of concurrent workers the pipeline uses for
// its per-point work: the Step II neighbor-count curves, the Step III
// gelling range queries, the Step IV bridge searches and scoring, and the
// index builds (the default bulk-loaded slim-tree as well as the
// kd-tree/R-tree under RunVectorsKD/RunVectorsR; only the legacy
// WithInsertionBuild slim-tree path is inherently serial). n = 0 (the
// default) means runtime.GOMAXPROCS(0); n = 1 forces a fully serial run;
// negative counts are rejected.
//
// Determinism guarantee: the Result is byte-identical for every worker
// count. Workers write into preallocated per-index slots, every
// floating-point reduction happens in a fixed order inside a single unit
// of work, and all tiebreaks (microcluster ranking, index construction)
// are deterministic — so WithWorkers trades only wall-clock time, never
// output.
func WithWorkers(n int) Option {
	return func(p *core.Params) error {
		if n < 0 {
			return fmt.Errorf("mccatch: WithWorkers: worker count must be ≥ 0 (0 = all cores), got %d", n)
		}
		p.Workers = n
		return nil
	}
}

// WithShards partitions the dataset into n shards that each run the
// full detection pipeline over their own index, concurrently, with the
// cross-shard interactions merged exactly (n = 1, the default, is the
// single-index path). Vector data under the Euclidean distance is cut
// into STR-style tiles; any other metric is cut into pivot Voronoi
// cells around deterministically sampled pivots. Shards never replicate
// border points — cross-shard dual-tree joins account for every
// across-the-cut neighbor pair exactly.
//
// Determinism guarantee: like WithWorkers, WithShards trades only
// wall-clock time, never output — the Result is byte-identical for
// every shard count, because the merge sums exact integer neighbor
// counts and takes exact integer minima over bridge radii (no
// floating-point reduction ever crosses a shard boundary). Sharding
// helps when per-shard work dominates the cross-shard border (clustered
// or spread-out data, larger n); it hurts on tiny datasets or cuts
// where most points are near a border, where the k² cross-shard joins
// outweigh the split build. Sharded detectors have no on-disk format,
// so WithShards conflicts with Save/WriteFile and the Open* paths.
func WithShards(n int) Option {
	return func(p *core.Params) error {
		if n < 1 {
			return fmt.Errorf("mccatch: WithShards: shard count must be ≥ 1, got %d", n)
		}
		p.Shards = n
		return nil
	}
}

// Run executes MCCATCH on items under dist with the given options and
// returns the ranked microclusters, their scores, and a score per point.
// It is Build followed by one Detect; hold a Detector instead when the
// same dataset will be queried or detected more than once.
func Run[T any](items []T, dist Distance[T], opts ...Option) (*Result, error) {
	d, err := Build(items, dist, opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect()
}

// RunVectors runs MCCATCH on vector data under the Euclidean distance with
// the transformation cost set to the dimensionality, the paper's default
// configuration for dimensional datasets. Points must share one dimension
// and be free of NaN/Inf values; otherwise an error is returned before any
// work is done.
//
// The index backend defaults to the STR bulk-loaded R-tree: across the
// 2d/8d × 4k/10k backend sweep it is the fastest end-to-end choice (it
// wins three of the four cells outright and ties the kd-tree on the
// fourth; the kd-tree degrades steeply at 8 dimensions and the slim-tree
// pays generic-metric overhead that coordinate trees avoid — see the
// README's backend notes for the measured numbers). The Result is
// byte-identical across backends on vector data — all three answer exact
// range counts and share one radii schedule — so only the constants
// change. The slim-tree remains available three ways: RunVectorsSlim,
// the generic Run(points, mccatch.Euclidean, ...), and implicitly
// whenever a slim-tree-specific option (WithTreeCapacity,
// WithInsertionBuild, WithSlimDown) is passed, so those options keep
// their meaning.
func RunVectors(points [][]float64, opts ...Option) (*Result, error) {
	d, err := BuildVectors(points, opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect()
}

// RunVectorsSlim is RunVectors pinned to the slim-tree index — the
// metric-tree default of every release before the R-tree became the
// vector default, kept reachable for callers who want one access method
// across dimensional and nondimensional data. Results are identical to
// RunVectors; only the constant factors differ.
func RunVectorsSlim(points [][]float64, opts ...Option) (*Result, error) {
	d, err := BuildVectorsSlim(points, opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect()
}

// validateVectors checks dimensional consistency and finiteness; metric
// trees silently misbehave on NaN distances, so bad input is rejected up
// front.
func validateVectors(points [][]float64) (dim int, err error) {
	if len(points) == 0 {
		return 0, nil // core returns ErrEmptyDataset with full context
	}
	dim = len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return 0, fmt.Errorf("mccatch: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("mccatch: point %d has non-finite value at feature %d", i, j)
			}
		}
	}
	return dim, nil
}

// RunVectorsKD is RunVectors with the index swapped from the slim-tree to
// a kd-tree — the paper's footnote-4 recommendation for main-memory vector
// data. Results are identical (both indexes answer exact range counts);
// only the constant factors differ.
func RunVectorsKD(points [][]float64, opts ...Option) (*Result, error) {
	d, err := BuildVectorsKD(points, opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect()
}

// RunVectorsR is RunVectors with the index swapped to an STR bulk-loaded
// R-tree — the paper's disk-oriented choice for vector data (Alg. 1's
// "Slim-tree, M-tree, or R-tree"). Like RunVectorsKD, only constant
// factors change.
func RunVectorsR(points [][]float64, opts ...Option) (*Result, error) {
	d, err := BuildVectorsR(points, opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect()
}

// RunStrings runs MCCATCH on strings under the Levenshtein edit distance,
// deriving the word transformation cost (alphabet size, longest word) from
// the data itself.
func RunStrings(words []string, opts ...Option) (*Result, error) {
	d, err := BuildStrings(words, opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect()
}
