package mccatch

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The public WithShards contract: the Result is deep-equal for every
// shard count, on every entry point that accepts the option. These
// tests pin it for shards ∈ {1, 2, 8} × workers ∈ {1, 2, 8} across the
// batch wrappers, the Detector handle, and the incremental layer, on
// vectors and strings. Run under -race to also prove the merge is
// race-free end to end.

var shardTestCounts = []int{1, 2, 8}

// stripKnobs zeroes the two parameters that legitimately differ between
// runs (requested shard and worker counts) so DeepEqual compares pure
// output.
func stripKnobs(r *Result) *Result {
	c := *r
	c.Params.Workers = 0
	c.Params.Shards = 0
	return &c
}

func shardTestWords(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	words := make([]string, 0, n+8)
	for i := 0; i < n; i++ {
		stem := []byte("shardparallel")
		for j := rng.Intn(3); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:7+rng.Intn(6)]))
	}
	for i := 0; i < 8; i++ {
		words = append(words, strings.Repeat(string(rune('0'+i)), 18+i))
	}
	return words
}

func TestWithShardsInvarianceBatch(t *testing.T) {
	pts := detectorPoints(400, 21)
	base, err := RunVectors(pts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	words := shardTestWords(180, 22)
	baseW, err := RunStrings(words, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardTestCounts {
		for _, workers := range []int{1, 2, 8} {
			label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			got, err := RunVectors(pts, WithShards(shards), WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s: RunVectors failed: %v", label, err)
			}
			if !reflect.DeepEqual(stripKnobs(base), stripKnobs(got)) {
				t.Errorf("%s: RunVectors result differs from unsharded", label)
			}
			gotW, err := RunStrings(words, WithShards(shards), WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s: RunStrings failed: %v", label, err)
			}
			if !reflect.DeepEqual(stripKnobs(baseW), stripKnobs(gotW)) {
				t.Errorf("%s: RunStrings result differs from unsharded", label)
			}
		}
	}
}

func TestWithShardsInvarianceDetector(t *testing.T) {
	pts := detectorPoints(350, 23)
	builds := map[string]func(...Option) (*Detector[[]float64], error){
		"rtree": func(opts ...Option) (*Detector[[]float64], error) { return BuildVectors(pts, opts...) },
		"kd":    func(opts ...Option) (*Detector[[]float64], error) { return BuildVectorsKD(pts, opts...) },
		"slim":  func(opts ...Option) (*Detector[[]float64], error) { return BuildVectorsSlim(pts, opts...) },
	}
	for name, build := range builds {
		base, err := build(WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Detect()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardTestCounts {
			d, err := build(WithShards(shards), WithWorkers(2))
			if err != nil {
				t.Fatalf("%s shards=%d: build failed: %v", name, shards, err)
			}
			got, err := d.Detect()
			if err != nil {
				t.Fatalf("%s shards=%d: Detect failed: %v", name, shards, err)
			}
			if !reflect.DeepEqual(stripKnobs(want), stripKnobs(got)) {
				t.Errorf("%s shards=%d: Detect differs from unsharded", name, shards)
			}
			// Detect twice: the per-shard indexes are reused, the answer
			// must not drift.
			again, err := d.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, again) {
				t.Errorf("%s shards=%d: second Detect differs from first", name, shards)
			}
			// The derived reads answer from the partition: same schedule,
			// same probe curves as the unsharded detector.
			if !reflect.DeepEqual(base.Radii(), d.Radii()) {
				t.Errorf("%s shards=%d: Radii differ from unsharded", name, shards)
			}
			for _, q := range [][]float64{pts[0], pts[len(pts)/2], {999, -50, 3}} {
				cu, _ := base.Probe(q)
				cs, _ := d.Probe(q)
				if !reflect.DeepEqual(cu, cs) {
					t.Errorf("%s shards=%d: Probe(%v) = %v, want %v", name, shards, q, cs, cu)
				}
			}
			if d.Size() != len(pts) {
				t.Errorf("%s shards=%d: Size = %d, want %d", name, shards, d.Size(), len(pts))
			}
		}
	}
}

func TestWithShardsInvarianceIncremental(t *testing.T) {
	pts := detectorPoints(300, 24)
	run := func(shards int) *Result {
		t.Helper()
		inc, err := NewIncrementalVectors(3, WithShards(shards), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		inc.SetMemtableCap(64)
		handles := make([]int64, 0, len(pts))
		for _, p := range pts {
			h, err := inc.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for i := 5; i < len(handles); i += 7 { // deletes spanning segments
			inc.Delete(handles[i])
		}
		res, err := inc.Detect()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, shards := range shardTestCounts[1:] {
		if got := run(shards); !reflect.DeepEqual(stripKnobs(base), stripKnobs(got)) {
			t.Errorf("incremental shards=%d: Detect differs from unsharded", shards)
		}
	}
}

// TestWithShardsValidation pins the option's error paths: rejected
// values, the no-on-disk-format rule, and the Open* conflict.
func TestWithShardsValidation(t *testing.T) {
	pts := detectorPoints(60, 25)
	if _, err := RunVectors(pts, WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted, want error")
	}
	if _, err := RunVectors(pts, WithShards(-3)); err == nil {
		t.Error("WithShards(-3) accepted, want error")
	}
	d, err := BuildVectors(pts, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile(t.TempDir() + "/x.mcc"); err == nil {
		t.Error("WriteFile on a sharded detector accepted, want error")
	}
	if err := d.Save(io.Discard); err == nil {
		t.Error("Save on a sharded detector accepted, want error")
	}
	// An index file written unsharded cannot be opened sharded.
	path := t.TempDir() + "/v.mcc"
	plain, err := BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVectors(path, WithShards(2)); err == nil {
		t.Error("OpenVectors with WithShards(2) accepted, want error")
	}
}
