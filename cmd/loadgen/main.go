// Command loadgen is the workload-mix load harness for mccatchd: it
// drives a running server with one of three canned mixes, reports p50 /
// p99 latency per operation type plus total throughput, and (optionally)
// fails with a nonzero exit when a latency or throughput gate is missed
// — which is how CI's serve-gate job pins serving performance the same
// way benchdiff pins kernel ns/op.
//
// Mixes:
//
//	read90  90% score-point, 10% single-item ingest (the classic
//	        read-heavy OLTP mix; exercises coalescing under writes)
//	write   50% ingest, 25% delete of a previously ingested item,
//	        25% score (write-heavy; exercises epoch churn)
//	scan    50% detect, 50% top-k (OLAP; detect is cached, so this
//	        measures the cache path, not recomputation)
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -mix read90 -duration 5s -conns 8 -dim 2
//	loadgen -addr ... -mix scan -max-p99-detect 5ms      # gate: nonzero exit on miss
//	loadgen -addr ... -mix read90 -min-throughput 10000  # gate: ops/s floor
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type opKind int

const (
	opScore opKind = iota
	opIngest
	opDelete
	opDetect
	opTopK
	numOps
)

var opNames = [numOps]string{"score", "ingest", "delete", "detect", "topk"}

// sample is one completed operation: its kind and wall latency.
type sample struct {
	op  opKind
	lat time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr     = flag.String("addr", "http://localhost:8080", "mccatchd base URL")
		mix      = flag.String("mix", "read90", "workload mix: read90, write or scan")
		duration = flag.Duration("duration", 5*time.Second, "how long to drive load")
		conns    = flag.Int("conns", 8, "concurrent client connections")
		dim      = flag.Int("dim", 2, "vector dimensionality for generated items")
		spread   = flag.Float64("spread", 30, "generated coordinates are uniform in [0,spread)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		maxScore = flag.Duration("max-p99-score", 0, "gate: fail if score p99 exceeds this (0 = no gate)")
		maxDet   = flag.Duration("max-p99-detect", 0, "gate: fail if detect p99 exceeds this (0 = no gate)")
		minTput  = flag.Float64("min-throughput", 0, "gate: fail if total ops/s falls below this (0 = no gate)")
	)
	flag.Parse()
	pick := mixPicker(*mix)
	if pick == nil {
		log.Fatalf("unknown -mix %q (want read90, write or scan)", *mix)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		samples  []sample
		errsN    int
		firstErr error
	)
	deadline := time.Now().Add(*duration)
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := &worker{
				base:   *addr,
				client: &http.Client{Timeout: 30 * time.Second},
				rng:    rand.New(rand.NewSource(*seed + int64(c))),
				dim:    *dim,
				spread: *spread,
			}
			w.prepare()
			var local []sample
			for time.Now().Before(deadline) {
				op := pick(w.rng)
				start := time.Now()
				err := w.do(op)
				lat := time.Since(start)
				if err != nil {
					mu.Lock()
					if errsN == 0 {
						firstErr = err
					}
					errsN++
					mu.Unlock()
					continue
				}
				local = append(local, sample{op, lat})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	if len(samples) == 0 {
		log.Fatalf("no operation succeeded (%d errors, first: %v)", errsN, firstErr)
	}
	if errsN > 0 {
		log.Printf("%d operations failed (first: %v)", errsN, firstErr)
	}
	tput := float64(len(samples)) / duration.Seconds()
	fmt.Printf("mix=%s conns=%d duration=%v ops=%d throughput=%.0f ops/s errors=%d\n",
		*mix, *conns, *duration, len(samples), tput, errsN)
	p99 := report(samples)

	failed := false
	if *maxScore > 0 && p99[opScore] > *maxScore {
		log.Printf("GATE FAILED: score p99 %v > %v", p99[opScore], *maxScore)
		failed = true
	}
	if *maxDet > 0 && p99[opDetect] > *maxDet {
		log.Printf("GATE FAILED: detect p99 %v > %v", p99[opDetect], *maxDet)
		failed = true
	}
	if *minTput > 0 && tput < *minTput {
		log.Printf("GATE FAILED: throughput %.0f ops/s < %.0f", tput, *minTput)
		failed = true
	}
	if failed || errsN > 0 {
		os.Exit(1)
	}
}

// mixPicker returns the operation sampler for a named mix (nil for an
// unknown name).
func mixPicker(mix string) func(*rand.Rand) opKind {
	switch mix {
	case "read90":
		return func(rng *rand.Rand) opKind {
			if rng.Intn(10) == 0 {
				return opIngest
			}
			return opScore
		}
	case "write":
		return func(rng *rand.Rand) opKind {
			switch rng.Intn(4) {
			case 0, 1:
				return opIngest
			case 2:
				return opDelete
			}
			return opScore
		}
	case "scan":
		return func(rng *rand.Rand) opKind {
			if rng.Intn(2) == 0 {
				return opDetect
			}
			return opTopK
		}
	}
	return nil
}

// report prints per-op p50/p99 and returns the p99s for gating.
func report(samples []sample) [numOps]time.Duration {
	var byOp [numOps][]time.Duration
	for _, s := range samples {
		byOp[s.op] = append(byOp[s.op], s.lat)
	}
	var p99s [numOps]time.Duration
	for op, lats := range byOp {
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99s[op] = percentile(lats, 99)
		fmt.Printf("%-7s n=%-7d p50=%-12v p99=%v\n",
			opNames[op], len(lats), percentile(lats, 50), p99s[op])
	}
	return p99s
}

// percentile returns the p-th percentile of an ascending-sorted slice
// (nearest-rank method).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100 // ceil
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// worker is one load connection: its own client, PRNG and the handles it
// has ingested (so deletes target real elements). Score and ingest
// request bodies are pre-marshaled at startup and cycled — the client
// shares a CPU with the server on small boxes, so per-request
// json.Marshal in the harness would be stolen straight from the
// measurement.
type worker struct {
	base        string
	client      *http.Client
	rng         *rand.Rand
	dim         int
	spread      float64
	handles     []int64
	scoreBodies [][]byte
	ingBodies   [][]byte
}

// bodyCycle is how many distinct pre-marshaled bodies each worker
// cycles through per op kind.
const bodyCycle = 64

func (w *worker) prepare() {
	w.scoreBodies = make([][]byte, bodyCycle)
	w.ingBodies = make([][]byte, bodyCycle)
	for i := range w.scoreBodies {
		w.scoreBodies[i], _ = json.Marshal(struct {
			Item []float64 `json:"item"`
		}{w.point()})
		w.ingBodies[i], _ = json.Marshal(struct {
			Items [][]float64 `json:"items"`
		}{[][]float64{w.point()}})
	}
}

func (w *worker) point() []float64 {
	p := make([]float64, w.dim)
	for i := range p {
		p[i] = float64(int(w.rng.Float64()*w.spread*2)) / 2 // coarse grid, repeats hit shared paths
	}
	return p
}

func (w *worker) do(op opKind) error {
	switch op {
	case opScore:
		return w.post("/v1/score", w.scoreBodies[w.rng.Intn(len(w.scoreBodies))], nil)
	case opIngest:
		var resp struct {
			Handles []int64 `json:"handles"`
		}
		if err := w.post("/v1/ingest", w.ingBodies[w.rng.Intn(len(w.ingBodies))], &resp); err != nil {
			return err
		}
		w.handles = append(w.handles, resp.Handles...)
		return nil
	case opDelete:
		if len(w.handles) == 0 {
			// Nothing of ours to delete yet; ingest instead so the mix
			// keeps its write pressure.
			return w.do(opIngest)
		}
		j := w.rng.Intn(len(w.handles))
		h := w.handles[j]
		w.handles = append(w.handles[:j], w.handles[j+1:]...)
		body, _ := json.Marshal(map[string]any{"handles": []int64{h}})
		return w.post("/v1/delete", body, nil)
	case opDetect:
		return w.get("/v1/detect")
	case opTopK:
		return w.get("/v1/topk?k=5")
	}
	return fmt.Errorf("unknown op %d", op)
}

func (w *worker) post(path string, body []byte, out any) error {
	resp, err := w.client.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return drain(resp)
}

func (w *worker) get(path string) error {
	resp, err := w.client.Get(w.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return drain(resp)
}

// drain consumes the body so the connection is reused (keep-alive); it
// deliberately skips JSON parsing — the client must stay cheap enough
// that the server, not the harness, is what the measurement saturates.
func drain(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}
