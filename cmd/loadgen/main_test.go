package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms, sorted
	}
	cases := []struct {
		p    int
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(lats, tc.p); got != tc.want {
			t.Errorf("percentile(p%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(lats[:1], 99); got != time.Millisecond {
		t.Errorf("single-sample p99 = %v, want 1ms", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}

// TestMixPicker pins each mix's advertised operation ratios (within a
// loose tolerance — they are PRNG draws).
func TestMixPicker(t *testing.T) {
	if mixPicker("nope") != nil {
		t.Fatal("unknown mix should return nil")
	}
	const draws = 10000
	counts := func(mix string) [numOps]int {
		pick := mixPicker(mix)
		rng := rand.New(rand.NewSource(1))
		var c [numOps]int
		for i := 0; i < draws; i++ {
			c[pick(rng)]++
		}
		return c
	}
	within := func(got, want int) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d < draws/20 // ±5%
	}
	c := counts("read90")
	if !within(c[opScore], draws*9/10) || !within(c[opIngest], draws/10) {
		t.Errorf("read90 ratios off: %v", c)
	}
	c = counts("write")
	if !within(c[opIngest], draws/2) || !within(c[opDelete], draws/4) || !within(c[opScore], draws/4) {
		t.Errorf("write ratios off: %v", c)
	}
	c = counts("scan")
	if !within(c[opDetect], draws/2) || !within(c[opTopK], draws/2) {
		t.Errorf("scan ratios off: %v", c)
	}
}

// TestWorkerOps drives every operation kind against a stub server and
// checks the request/response plumbing: bodies parse, ingest handles are
// tracked so deletes target real elements, non-200s surface as errors.
func TestWorkerOps(t *testing.T) {
	var nextHandle int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/score", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Item []float64 `json:"item"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Item) != 3 {
			http.Error(w, "bad item", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, `{"counts":[1],"first_radius":0.5}`)
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		nextHandle++
		fmt.Fprintf(w, `{"handles":[%d]}`, nextHandle)
	})
	mux.HandleFunc("POST /v1/delete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Handles []int64 `json:"handles"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Handles) != 1 {
			http.Error(w, "bad handles", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, `{"deleted":[true]}`)
	})
	mux.HandleFunc("GET /v1/detect", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("GET /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[]`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	w := &worker{
		base:   ts.URL,
		client: ts.Client(),
		rng:    rand.New(rand.NewSource(3)),
		dim:    3,
		spread: 10,
	}
	w.prepare()
	if len(w.scoreBodies) != bodyCycle || len(w.ingBodies) != bodyCycle {
		t.Fatalf("prepare built %d/%d bodies, want %d", len(w.scoreBodies), len(w.ingBodies), bodyCycle)
	}
	// Delete with no tracked handles falls back to ingest.
	if err := w.do(opDelete); err != nil {
		t.Fatalf("delete-as-ingest: %v", err)
	}
	if len(w.handles) != 1 {
		t.Fatalf("handles = %v, want one tracked ingest handle", w.handles)
	}
	for _, op := range []opKind{opScore, opIngest, opDetect, opTopK} {
		if err := w.do(op); err != nil {
			t.Fatalf("%s: %v", opNames[op], err)
		}
	}
	if len(w.handles) != 2 {
		t.Fatalf("handles = %v, want 2 after second ingest", w.handles)
	}
	// A real delete consumes a tracked handle.
	if err := w.do(opDelete); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if len(w.handles) != 1 {
		t.Fatalf("handles = %v, want 1 after delete", w.handles)
	}
	// Non-200 statuses surface as errors.
	w.dim = 2 // stub rejects non-3d score items
	w.prepare()
	if err := w.do(opScore); err == nil {
		t.Fatal("score with wrong-dim items: want error, got nil")
	}
}

// TestReport pins the p50/p99 extraction the gates read.
func TestReport(t *testing.T) {
	var samples []sample
	for i := 1; i <= 200; i++ {
		samples = append(samples, sample{op: opScore, lat: time.Duration(i) * time.Millisecond})
	}
	samples = append(samples, sample{op: opDetect, lat: 7 * time.Millisecond})
	p99 := report(samples)
	if p99[opScore] != 198*time.Millisecond {
		t.Errorf("score p99 = %v, want 198ms", p99[opScore])
	}
	if p99[opDetect] != 7*time.Millisecond {
		t.Errorf("detect p99 = %v, want 7ms", p99[opDetect])
	}
	if p99[opIngest] != 0 {
		t.Errorf("ingest p99 = %v, want 0 (no samples)", p99[opIngest])
	}
}
