// Command datagen emits one of the synthetic stand-in datasets as CSV on
// stdout (vector datasets: one point per row with a final binary label
// column; Last Names: one name per line with ,label).
//
// Usage:
//
//	datagen -dataset http -scale 0.1 > http.csv
//	datagen -dataset shanghai > tiles.csv
//	datagen -dataset axiom-cross-isolation -n 100000 > axiom.csv
//	datagen -dataset lastnames > names.txt
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mccatch/internal/data"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		name  = flag.String("dataset", "", "dataset name (see -list)")
		scale = flag.Float64("scale", 0.02, "scale factor for sized datasets")
		n     = flag.Int("n", 10000, "cardinality for axiom/uniform/diagonal datasets")
		dim   = flag.Int("dim", 2, "dimension for uniform/diagonal")
		seed  = flag.Int64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list available datasets")
	)
	flag.Parse()

	if *list {
		fmt.Println("http, shanghai, volcanoes, lastnames, uniform, diagonal")
		fmt.Println("axiom-{gaussian|cross|arc}-{isolation|cardinality}")
		for _, s := range data.BenchmarkSpecs {
			fmt.Println(strings.ToLower(s.Name))
		}
		return
	}

	switch {
	case *name == "http":
		d := data.HTTPLike(*scale, *seed)
		writeVector(d.Points, d.Labels)
	case *name == "shanghai":
		d := data.Shanghai(*seed)
		writeVector(d.Points, d.Labels)
	case *name == "volcanoes":
		d := data.Volcanoes(*seed)
		writeVector(d.Points, d.Labels)
	case *name == "lastnames":
		d := data.LastNames(int(5000**scale/0.02), int(50**scale/0.02), *seed)
		for i, w := range d.Words {
			fmt.Printf("%s,%d\n", w, b2i(d.Labels[i]))
		}
	case *name == "uniform":
		writeVector(data.Uniform(*n, *dim, *seed).Points, nil)
	case *name == "diagonal":
		writeVector(data.Diagonal(*n, *dim, *seed).Points, nil)
	case strings.HasPrefix(*name, "axiom-"):
		parts := strings.Split(*name, "-")
		if len(parts) != 3 {
			log.Fatalf("bad axiom dataset %q", *name)
		}
		shape, ok := map[string]data.Shape{"gaussian": data.Gaussian, "cross": data.Cross, "arc": data.Arc}[parts[1]]
		if !ok {
			log.Fatalf("unknown shape %q", parts[1])
		}
		axiom, ok := map[string]data.Axiom{"isolation": data.Isolation, "cardinality": data.Cardinality}[parts[2]]
		if !ok {
			log.Fatalf("unknown axiom %q", parts[2])
		}
		sc := data.AxiomDataset(shape, axiom, *n, *seed)
		writeVector(sc.Points, sc.Labels)
	default:
		if spec, ok := data.SpecByName(properName(*name)); ok {
			v := spec.Generate(*scale, *seed)
			writeVector(v.Points, v.Labels)
			return
		}
		log.Fatalf("unknown dataset %q (try -list)", *name)
	}
}

// properName restores benchmark-name capitalization from a lower-case flag.
func properName(lower string) string {
	for _, s := range data.BenchmarkSpecs {
		if strings.EqualFold(s.Name, lower) {
			return s.Name
		}
	}
	return lower
}

func writeVector(points [][]float64, labels []bool) {
	w := os.Stdout
	for i, p := range points {
		for _, v := range p {
			fmt.Fprintf(w, "%g,", v)
		}
		label := 0
		if labels != nil && labels[i] {
			label = 1
		}
		fmt.Fprintf(w, "%d\n", label)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
