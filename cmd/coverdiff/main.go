// Command coverdiff is the CI coverage gate: it reads a Go cover profile
// (go test -coverprofile), aggregates statement coverage per package and
// in total, and exits nonzero when total coverage falls below the
// threshold recorded next to the benchmark baseline (BENCH_4.json's
// "coverage_baseline" section). It always prints the per-package delta
// against the recorded per-package numbers, so a regression names the
// package that lost coverage instead of just moving a repo-wide figure.
//
// Usage:
//
//	go test -short -coverprofile=cover.out ./...
//	go run ./cmd/coverdiff -baseline BENCH_4.json cover.out
//
// The gate is on TOTAL coverage only: per-package numbers drift a little
// as code moves between packages, and gating each one would turn every
// refactor into a baseline edit. The recorded packages map exists for
// the delta report. To refresh after intentional changes, run the same
// commands and copy coverdiff's printed totals into the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// coverageBaseline is the subset of the baseline JSON the gate consumes.
type coverageBaseline struct {
	// ThresholdPercent is the gate: total statement coverage below this
	// fails. It is recorded a couple of points below the measured total,
	// so legitimate churn does not trip it but a dropped test suite does.
	ThresholdPercent float64 `json:"threshold_percent"`
	// TotalPercent is the measured total at recording time (informational).
	TotalPercent float64 `json:"total_percent"`
	// Packages maps import path → percent at recording time, for the
	// delta report.
	Packages map[string]float64 `json:"packages"`
}

type baselineFile struct {
	Coverage *coverageBaseline `json:"coverage_baseline"`
}

// pkgCover accumulates statement totals for one package.
type pkgCover struct {
	stmts, covered int
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_4.json", "baseline JSON with a coverage_baseline section")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open cover profile: %v", err)
		}
		defer f.Close()
		in = f
	}
	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	perPkg, err := parseProfile(in)
	if err != nil {
		fatalf("parse cover profile: %v", err)
	}
	report, total := compare(base, perPkg)
	fmt.Print(report)
	if total < base.ThresholdPercent {
		fmt.Printf("FAIL: total coverage %.1f%% is below the recorded threshold %.1f%%\n",
			total, base.ThresholdPercent)
		os.Exit(1)
	}
	fmt.Printf("OK: total coverage %.1f%% meets the recorded threshold %.1f%%\n",
		total, base.ThresholdPercent)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "coverdiff: "+format+"\n", args...)
	os.Exit(2)
}

func loadBaseline(p string) (*coverageBaseline, error) {
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("read baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("decode baseline %s: %w", p, err)
	}
	if bf.Coverage == nil || bf.Coverage.ThresholdPercent <= 0 {
		return nil, fmt.Errorf("baseline %s has no coverage_baseline.threshold_percent", p)
	}
	return bf.Coverage, nil
}

// parseProfile aggregates a cover profile into per-package statement
// counts. Profile lines look like
//
//	mccatch/internal/join/join.go:39.93,44.2 3 1
//
// — numStmts statements, covered when count > 0. Blocks repeat across
// per-package test binaries only within their own package, so summing is
// safe.
func parseProfile(r io.Reader) (map[string]*pkgCover, error) {
	perPkg := map[string]*pkgCover{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || strings.TrimSpace(line) == "" {
			continue
		}
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("malformed line %q", line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed line %q", line)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("malformed counts on line %q", line)
		}
		pkg := path.Dir(file)
		pc := perPkg[pkg]
		if pc == nil {
			pc = &pkgCover{}
			perPkg[pkg] = pc
		}
		pc.stmts += stmts
		if count > 0 {
			pc.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(perPkg) == 0 {
		return nil, fmt.Errorf("profile contains no coverage blocks")
	}
	return perPkg, nil
}

func pct(covered, stmts int) float64 {
	if stmts == 0 {
		return 0
	}
	return 100 * float64(covered) / float64(stmts)
}

// compare renders the per-package table with deltas against the baseline
// and returns the total percentage. Packages new since the recording and
// packages that vanished are both called out — a vanished package is
// usually a test suite that stopped running, which is exactly what the
// gate exists to catch.
func compare(base *coverageBaseline, perPkg map[string]*pkgCover) (string, float64) {
	var b strings.Builder
	names := make([]string, 0, len(perPkg))
	totStmts, totCovered := 0, 0
	for name, pc := range perPkg {
		names = append(names, name)
		totStmts += pc.stmts
		totCovered += pc.covered
	}
	sort.Strings(names)
	for _, name := range names {
		pc := perPkg[name]
		p := pct(pc.covered, pc.stmts)
		if want, ok := base.Packages[name]; ok {
			fmt.Fprintf(&b, "%-36s %6.1f%%  baseline %6.1f%%  delta %+5.1f\n", name, p, want, p-want)
		} else {
			fmt.Fprintf(&b, "%-36s %6.1f%%  (new: no baseline entry)\n", name, p)
		}
	}
	missing := make([]string, 0)
	for name := range base.Packages {
		if _, ok := perPkg[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&b, "%-36s MISSING from profile (baseline %.1f%%)\n", name, base.Packages[name])
	}
	total := pct(totCovered, totStmts)
	fmt.Fprintf(&b, "%-36s %6.1f%%  recorded %6.1f%%  threshold %6.1f%%\n", "TOTAL", total, base.TotalPercent, base.ThresholdPercent)
	return b.String(), total
}
