package main

import (
	"strings"
	"testing"
)

const sampleProfile = `mode: set
mccatch/internal/join/join.go:10.2,12.3 4 1
mccatch/internal/join/join.go:14.2,16.3 6 0
mccatch/internal/core/core.go:5.1,9.2 10 1
mccatch/internal/core/score.go:5.1,9.2 10 1
`

func TestParseProfileAggregatesPerPackage(t *testing.T) {
	perPkg, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	join := perPkg["mccatch/internal/join"]
	if join == nil || join.stmts != 10 || join.covered != 4 {
		t.Fatalf("join: %+v, want 10 stmts / 4 covered", join)
	}
	core := perPkg["mccatch/internal/core"]
	if core == nil || core.stmts != 20 || core.covered != 20 {
		t.Fatalf("core: %+v, want 20 stmts / 20 covered", core)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := parseProfile(strings.NewReader("mode: set\nnot a profile line\n")); err == nil {
		t.Error("garbage line should error")
	}
	if _, err := parseProfile(strings.NewReader("mode: set\n")); err == nil {
		t.Error("empty profile should error")
	}
}

// TestGateTripsBelowThreshold proves the gate catches a dropped test
// suite: the sample profile totals 24/30 = 80%, so an 85% threshold must
// fail and a 75% one must pass.
func TestGateTripsBelowThreshold(t *testing.T) {
	perPkg, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	base := &coverageBaseline{ThresholdPercent: 85, TotalPercent: 85}
	report, total := compare(base, perPkg)
	if total >= base.ThresholdPercent {
		t.Fatalf("total %.1f should be below threshold %.1f\n%s", total, base.ThresholdPercent, report)
	}
	base.ThresholdPercent = 75
	if _, total := compare(base, perPkg); total < base.ThresholdPercent {
		t.Fatalf("total %.1f should clear threshold %.1f", total, base.ThresholdPercent)
	}
}

// TestCompareNamesRegressingPackage: the delta report must name the
// package whose coverage moved, and call out packages missing from the
// profile entirely.
func TestCompareNamesRegressingPackage(t *testing.T) {
	perPkg, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	base := &coverageBaseline{
		ThresholdPercent: 10,
		Packages: map[string]float64{
			"mccatch/internal/join": 90, // regressed: now 40%
			"mccatch/internal/mdl":  80, // vanished from the profile
		},
	}
	report, _ := compare(base, perPkg)
	if !strings.Contains(report, "mccatch/internal/join") || !strings.Contains(report, "-50.0") {
		t.Errorf("report does not name the regressed package with its delta:\n%s", report)
	}
	if !strings.Contains(report, "mccatch/internal/mdl") || !strings.Contains(report, "MISSING") {
		t.Errorf("report does not call out the vanished package:\n%s", report)
	}
	if !strings.Contains(report, "(new: no baseline entry)") {
		t.Errorf("report does not mark packages new since the baseline:\n%s", report)
	}
}
