// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in datasets.
//
// Usage:
//
//	experiments -all                # everything, small scale
//	experiments -table 4 -scale 0.1 # one table at a larger scale
//	experiments -figure 7 -maxn 64000
//
// Scale 1 reproduces the paper-size cardinalities (HTTP 222k, axiom
// datasets ~1M); the default 0.02 finishes in minutes on a laptop.
package main

import (
	"flag"
	"os"

	"mccatch/internal/experiments"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate one table (1-6)")
		figure = flag.Int("figure", 0, "regenerate one figure (1,2,3,6,7,8,9)")
		all    = flag.Bool("all", false, "regenerate everything")
		ext    = flag.Bool("extended", false, "run the beyond-paper extended detector roster")
		scale  = flag.Float64("scale", 0.02, "dataset scale factor in (0,1]")
		seed   = flag.Int64("seed", 1, "random seed")
		runs   = flag.Int("runs", 3, "repetitions for nondeterministic competitors")
		trials = flag.Int("trials", 10, "trials per cell for the axiom t-tests (paper: 50)")
		maxn   = flag.Int("maxn", 16000, "largest sample size for the scalability sweep")
		quick  = flag.Bool("quick", false, "trim the expensive sweeps to a representative subset (same rows/labels)")
	)
	flag.Parse()
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Runs: *runs, Quick: *quick}
	w := os.Stdout

	if *ext {
		experiments.ExtendedAccuracy(w, cfg)
		if !*all && *table == 0 && *figure == 0 {
			return
		}
	}
	if *all {
		experiments.Table1Specs(w)
		experiments.Table2Hyperparams(w)
		experiments.Table3Datasets(w, cfg)
		experiments.AccuracyReport(w, cfg)
		experiments.Table5Axioms(w, cfg, *trials)
		experiments.Table6Runtime(w, cfg)
		experiments.Fig1Showcase(w, cfg)
		experiments.Fig2Axioms(w, cfg)
		experiments.Fig3OraclePlot(w, cfg)
		experiments.Fig7Scalability(w, cfg, *maxn)
		experiments.Fig8Showcase(w, cfg)
		experiments.Fig9Sensitivity(w, cfg)
		return
	}
	switch *table {
	case 1:
		experiments.Table1Specs(w)
	case 2:
		experiments.Table2Hyperparams(w)
	case 3:
		experiments.Table3Datasets(w, cfg)
	case 4:
		experiments.Table4Accuracy(w, cfg)
	case 5:
		experiments.Table5Axioms(w, cfg, *trials)
	case 6:
		experiments.Table6Runtime(w, cfg)
	}
	switch *figure {
	case 1:
		experiments.Fig1Showcase(w, cfg)
	case 2:
		experiments.Fig2Axioms(w, cfg)
	case 3, 4, 5:
		experiments.Fig3OraclePlot(w, cfg)
	case 6:
		experiments.Fig6Grid(w, cfg)
	case 7:
		experiments.Fig7Scalability(w, cfg, *maxn)
	case 8:
		experiments.Fig8Showcase(w, cfg)
	case 9:
		experiments.Fig9Sensitivity(w, cfg)
	}
	if *table == 0 && *figure == 0 && !*ext {
		flag.Usage()
	}
}
