// Command benchdiff is the CI benchmark-regression gate: it compares the
// medians of a fresh `go test -bench -count=N` run against the committed
// baseline (the "ci_baseline" section of the current BENCH_*.json) and
// exits nonzero when any gated benchmark's median ns/op regressed by more
// than the threshold. A second, optional "ci_baseline_allocs" map gates
// allocs/op the same way (the run must then use -benchmem): allocation
// regressions — a pooled buffer dropped, a scratch slice escaping — slip
// through time gates on noisy runners but show up exactly in allocs/op,
// and a 0 baseline pins a zero-allocation steady state (0 × threshold is
// 0, so ANY allocation fails).
//
// Usage:
//
//	go test -run '^$' -bench '<gate pattern>' -count=5 -benchtime=200ms -benchmem . | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_7.json bench.txt
//
// Medians (not means) absorb the odd scheduling hiccup of shared CI
// runners; the -count repetitions exist precisely to feed them. Every
// baseline benchmark must appear in the fresh run — a missing benchmark
// fails the gate, so a renamed or deleted benchmark cannot silently
// disable its guard. Benchmarks in the run but not in the baseline are
// reported and ignored, so adding benchmarks does not require touching
// the gate. To refresh the baseline after an intentional perf change, run
// the same bench command on the reference machine and pipe the output
// through -emit-baseline, which prints the refreshed "ci_baseline" /
// "ci_baseline_allocs" maps as JSON ready to paste into the committed
// file:
//
//	go test -run '^$' -bench '<gate pattern>' -count=5 -benchtime=200ms -benchmem . | go run ./cmd/benchdiff -emit-baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the subset of the committed BENCH_*.json the gate
// consumes. CIBaselineAllocs is optional: absent, only ns/op is gated.
type baselineFile struct {
	CIBaseline       map[string]float64 `json:"ci_baseline"`
	CIBaselineAllocs map[string]float64 `json:"ci_baseline_allocs"`
}

// pairFlag collects repeated -pair FAST<SLOW assertions.
type pairFlag []string

func (p *pairFlag) String() string     { return strings.Join(*p, ",") }
func (p *pairFlag) Set(s string) error { *p = append(*p, s); return nil }

func main() {
	baselinePath := flag.String("baseline", "BENCH_7.json", "committed baseline JSON with a ci_baseline map of benchmark → median ns/op")
	threshold := flag.Float64("threshold", 1.25, "fail when median ns/op exceeds baseline × threshold (1.25 = >25% regression)")
	emit := flag.Bool("emit-baseline", false, "instead of gating, print the run's medians as refreshed ci_baseline/ci_baseline_allocs JSON, ready to paste into the committed BENCH_*.json")
	var pairs pairFlag
	flag.Var(&pairs, "pair", "same-run relative gate 'BenchmarkFast<BenchmarkSlow': fail unless Fast's median beats Slow's; repeatable, machine-independent (both sides share the runner), so it holds even where the absolute baseline does not transfer")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}

	medians, allocMedians, err := parseBench(in)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if *emit {
		out, err := emitBaseline(medians, allocMedians)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)
		return
	}

	base, baseAllocs, err := loadBaseline(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	report, failures := compare(base, medians, *threshold)
	fmt.Print(report)
	allocReport, allocFailures := compareAllocs(baseAllocs, allocMedians, *threshold)
	fmt.Print(allocReport)
	failures = append(failures, allocFailures...)
	pairReport, pairFailures, err := comparePairs(pairs, medians)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(pairReport)
	failures = append(failures, pairFailures...)
	if len(failures) > 0 {
		fmt.Printf("FAIL: %d benchmark(s) regressed beyond %.0f%% of baseline\n", len(failures), (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Println("OK: no benchmark regressed beyond the threshold")
}

// emitBaseline renders the run's medians as the refreshed
// "ci_baseline" / "ci_baseline_allocs" JSON fragment, keys sorted, ready
// to paste into the committed BENCH_*.json. Feed it the exact gated
// bench command's output so the maps carry precisely the gated set; the
// alloc map appears only when the run carried -benchmem columns,
// matching the gate's optionality. An empty run errors — an empty
// baseline would silently disable the gate.
func emitBaseline(ns, allocs map[string]float64) (string, error) {
	if len(ns) == 0 {
		return "", fmt.Errorf("no benchmark results in input; nothing to emit")
	}
	payload := map[string]map[string]float64{"ci_baseline": ns}
	if len(allocs) > 0 {
		payload["ci_baseline_allocs"] = allocs
	}
	raw, err := json.MarshalIndent(payload, "", " ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

func loadBaseline(path string) (ns, allocs map[string]float64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("read baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, nil, fmt.Errorf("decode baseline %s: %w", path, err)
	}
	if len(bf.CIBaseline) == 0 {
		return nil, nil, fmt.Errorf("baseline %s has no ci_baseline entries", path)
	}
	return bf.CIBaseline, bf.CIBaselineAllocs, nil
}

// parseBench extracts per-benchmark median ns/op — and, when -benchmem
// was on, median allocs/op — from `go test -bench` output. Result lines
// look like
//
//	BenchmarkPipelineN10k2dSerial-4   3   421647908 ns/op   1234 B/op   56 allocs/op
//
// The -4 GOMAXPROCS suffix is stripped so baselines survive runner-shape
// changes; with -count=N the same name repeats N times and the median of
// the repetitions is returned.
func parseBench(r io.Reader) (ns, allocs map[string]float64, err error) {
	nsSamples := map[string][]float64{}
	allocSamples := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Unit columns carry their value as the left neighbor.
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("bad ns/op value on line %q", sc.Text())
				}
				nsSamples[name] = append(nsSamples[name], v)
			case "allocs/op":
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("bad allocs/op value on line %q", sc.Text())
				}
				allocSamples[name] = append(allocSamples[name], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return medians(nsSamples), medians(allocSamples), nil
}

func medians(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, vs := range samples {
		sort.Float64s(vs)
		m := len(vs) / 2
		if len(vs)%2 == 0 {
			out[name] = (vs[m-1] + vs[m]) / 2
		} else {
			out[name] = vs[m]
		}
	}
	return out
}

// compare renders a per-benchmark table and returns the names that failed
// the gate: regressed beyond the threshold, or missing from the run.
func compare(base, medians map[string]float64, threshold float64) (report string, failures []string) {
	var b strings.Builder
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base[name]
		got, ok := medians[name]
		if !ok {
			fmt.Fprintf(&b, "%-44s baseline %14.0f ns/op  MISSING from bench output\n", name, want)
			failures = append(failures, name)
			continue
		}
		ratio := got / want
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			failures = append(failures, name)
		}
		fmt.Fprintf(&b, "%-44s baseline %14.0f  median %14.0f  ratio %5.2fx  %s\n", name, want, got, ratio, verdict)
	}
	extra := make([]string, 0)
	for name := range medians {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "%-44s (not gated: no baseline entry)\n", name)
	}
	return b.String(), failures
}

// compareAllocs gates median allocs/op against the optional allocation
// baseline: a gated benchmark fails when its median exceeds baseline ×
// threshold — so a 0 baseline pins an exactly-zero steady state — or
// when the run carries no allocs/op for it at all (the gate must fail
// loud, not silently disable, when -benchmem is dropped). Benchmarks
// without a baseline entry are untouched, so the map can gate just the
// allocation-sensitive query paths.
func compareAllocs(base, medians map[string]float64, threshold float64) (report string, failures []string) {
	if len(base) == 0 {
		return "", nil
	}
	var b strings.Builder
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base[name]
		got, ok := medians[name]
		if !ok {
			fmt.Fprintf(&b, "%-44s baseline %10.0f allocs/op  MISSING from bench output (run with -benchmem)\n", name, want)
			failures = append(failures, name+" (allocs)")
			continue
		}
		verdict := "ok"
		if got > want*threshold {
			verdict = "REGRESSED"
			failures = append(failures, name+" (allocs)")
		}
		fmt.Fprintf(&b, "%-44s baseline %10.0f  median %10.0f allocs/op  %s\n", name, want, got, verdict)
	}
	return b.String(), failures
}

// comparePairs checks the -pair relative gates: each "Fast<Slow" spec
// requires Fast's median to be strictly below Slow's in THIS run, and
// "Fast<1.3*Slow" relaxes the bound to a ratio (Fast may cost up to 1.3×
// Slow — the shape of an "overhead stays bounded" assertion, e.g. the
// merged incremental probe against its single-frozen-arena twin). Both
// sides ran on the same machine minutes apart, so the assertion transfers
// across runner hardware where the absolute baseline cannot. A side
// missing from the run fails the gate like a missing baseline benchmark.
func comparePairs(specs []string, medians map[string]float64) (report string, failures []string, err error) {
	var b strings.Builder
	for _, spec := range specs {
		fast, slow, ok := strings.Cut(spec, "<")
		if !ok {
			return "", nil, fmt.Errorf("bad -pair %q: want 'BenchmarkFast<[coef*]BenchmarkSlow'", spec)
		}
		coef := 1.0
		if cs, rest, hasCoef := strings.Cut(slow, "*"); hasCoef {
			c, err := strconv.ParseFloat(cs, 64)
			if err != nil || c <= 0 {
				return "", nil, fmt.Errorf("bad -pair %q: coefficient %q must be a positive number", spec, cs)
			}
			coef, slow = c, rest
		}
		fv, fok := medians[fast]
		sv, sok := medians[slow]
		switch {
		case !fok || !sok:
			missing := fast
			if fok {
				missing = slow
			}
			fmt.Fprintf(&b, "pair %-40s MISSING %s from bench output\n", spec, missing)
			failures = append(failures, spec)
		case fv < coef*sv:
			fmt.Fprintf(&b, "pair %-40s ok (%.0f < %g*%.0f, %.2fx)\n", spec, fv, coef, sv, fv/sv)
		default:
			fmt.Fprintf(&b, "pair %-40s INVERTED (%.0f >= %g*%.0f)\n", spec, fv, coef, sv)
			failures = append(failures, spec)
		}
	}
	return b.String(), failures, nil
}
