package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// parseMedians is parseBench's ns/op half; the tests that predate the
// alloc gate read through it.
func parseMedians(r io.Reader) (map[string]float64, error) {
	ns, _, err := parseBench(r)
	return ns, err
}

const benchOut = `goos: linux
goarch: amd64
pkg: mccatch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineN10k2dSerial-4   	       3	 400000000 ns/op	  100 B/op	 10 allocs/op
BenchmarkPipelineN10k2dSerial-4   	       3	 440000000 ns/op	  100 B/op	 10 allocs/op
BenchmarkPipelineN10k2dSerial-4   	       3	 980000000 ns/op	  100 B/op	 10 allocs/op
BenchmarkSlimTreeBuildBulk10k-4   	     100	  14000000 ns/op
BenchmarkSlimTreeBuildBulk10k-4   	     100	  15000000 ns/op
BenchmarkSlimTreeBuildBulk10k-4   	     100	  13000000 ns/op
BenchmarkExtraUngated-4           	       1	   1000000 ns/op
PASS
`

func TestParseMediansStripsSuffixAndTakesMedian(t *testing.T) {
	m, err := parseMedians(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	// Median of {400ms, 440ms, 980ms} is 440ms: the one-off 980ms spike
	// (a noisy neighbor on a shared runner) must not move the gate.
	if got := m["BenchmarkPipelineN10k2dSerial"]; got != 440000000 {
		t.Errorf("median = %v, want 440000000 (suffix stripped, spike absorbed)", got)
	}
	if got := m["BenchmarkSlimTreeBuildBulk10k"]; got != 14000000 {
		t.Errorf("median = %v, want 14000000", got)
	}
	if _, ok := m["BenchmarkPipelineN10k2dSerial-4"]; ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
}

func TestParseBenchAllocs(t *testing.T) {
	_, allocs, err := parseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := allocs["BenchmarkPipelineN10k2dSerial"]; got != 10 {
		t.Errorf("alloc median = %v, want 10", got)
	}
	if _, ok := allocs["BenchmarkSlimTreeBuildBulk10k"]; ok {
		t.Error("benchmark without -benchmem columns must not gain an alloc median")
	}
}

// TestCatchesSeededAllocInflation is the proof the ISSUE asks for: a run
// whose median allocs/op is inflated beyond 25% of baseline must trip the
// gate, and a zero baseline must reject ANY allocation.
func TestCatchesSeededAllocInflation(t *testing.T) {
	base := map[string]float64{"BenchmarkMultiCountBatchedKD": 0, "BenchmarkPipelineN10k2dSerial": 65000}
	healthy := map[string]float64{"BenchmarkMultiCountBatchedKD": 0, "BenchmarkPipelineN10k2dSerial": 66000}
	if _, failures := compareAllocs(base, healthy, 1.25); len(failures) != 0 {
		t.Fatalf("healthy run tripped the alloc gate: %v", failures)
	}
	// Seeded inflation: the zero-alloc query path gains one allocation per
	// op (a dropped scratch pool), the pipeline gains 30%.
	inflated := map[string]float64{"BenchmarkMultiCountBatchedKD": 1, "BenchmarkPipelineN10k2dSerial": 65000 * 1.30}
	_, failures := compareAllocs(base, inflated, 1.25)
	if len(failures) != 2 {
		t.Fatalf("seeded alloc inflation not caught: failures = %v", failures)
	}
}

func TestAllocGateFailsWithoutBenchmem(t *testing.T) {
	base := map[string]float64{"BenchmarkMultiCountBatchedKD": 0}
	_, failures := compareAllocs(base, map[string]float64{}, 1.25)
	if len(failures) != 1 {
		t.Fatal("a gated benchmark with no allocs/op in the run must fail, not silently pass")
	}
	if report, failures := compareAllocs(nil, map[string]float64{"BenchmarkX": 5}, 1.25); report != "" || len(failures) != 0 {
		t.Fatal("an absent alloc baseline must disable the alloc gate entirely")
	}
}

// TestCatchesSeededSlowdown is the proof the ISSUE asks for: a run whose
// median is 30% above baseline must trip the >25% gate.
func TestCatchesSeededSlowdown(t *testing.T) {
	base := map[string]float64{"BenchmarkPipelineN10k2dSerial": 440000000}
	slowed := map[string]float64{"BenchmarkPipelineN10k2dSerial": 440000000 * 1.30}
	_, failures := compare(base, slowed, 1.25)
	if len(failures) != 1 || failures[0] != "BenchmarkPipelineN10k2dSerial" {
		t.Fatalf("seeded 30%% slowdown not caught: failures = %v", failures)
	}
}

func TestPassesWithinThreshold(t *testing.T) {
	base := map[string]float64{
		"BenchmarkA": 100,
		"BenchmarkB": 100,
	}
	run := map[string]float64{
		"BenchmarkA": 110, // 10% slower: within the 25% budget
		"BenchmarkB": 60,  // faster is always fine
	}
	report, failures := compare(base, run, 1.25)
	if len(failures) != 0 {
		t.Fatalf("within-threshold run failed the gate: %v\n%s", failures, report)
	}
}

func TestMissingBenchmarkFailsGate(t *testing.T) {
	base := map[string]float64{"BenchmarkGone": 100}
	_, failures := compare(base, map[string]float64{}, 1.25)
	if len(failures) != 1 {
		t.Fatal("a baseline benchmark missing from the run must fail the gate")
	}
}

func TestUngatedBenchmarksAreReportedNotGated(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100}
	run := map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 1e12}
	report, failures := compare(base, run, 1.25)
	if len(failures) != 0 {
		t.Fatalf("ungated benchmark affected the gate: %v", failures)
	}
	if !strings.Contains(report, "BenchmarkNew") {
		t.Error("ungated benchmark not reported")
	}
}

// TestPairGates covers the machine-independent relative assertions: the
// fast side must beat the slow side within the same run, and a missing
// or malformed side must fail loudly.
func TestPairGates(t *testing.T) {
	medians := map[string]float64{
		"BenchmarkBulk":   14e6,
		"BenchmarkInsert": 76e6,
	}
	if _, failures, err := comparePairs([]string{"BenchmarkBulk<BenchmarkInsert"}, medians); err != nil || len(failures) != 0 {
		t.Fatalf("healthy pair failed: %v %v", failures, err)
	}
	if _, failures, err := comparePairs([]string{"BenchmarkInsert<BenchmarkBulk"}, medians); err != nil || len(failures) != 1 {
		t.Fatalf("inverted pair not caught: %v %v", failures, err)
	}
	if _, failures, err := comparePairs([]string{"BenchmarkBulk<BenchmarkGone"}, medians); err != nil || len(failures) != 1 {
		t.Fatalf("missing pair side not caught: %v %v", failures, err)
	}
	if _, _, err := comparePairs([]string{"no-separator"}, medians); err == nil {
		t.Fatal("malformed -pair accepted")
	}
}

// TestPairGatesWithRatio covers the 'Fast<coef*Slow' bounded-overhead
// form: the fast side may cost up to coef times the slow side.
func TestPairGatesWithRatio(t *testing.T) {
	medians := map[string]float64{
		"BenchmarkMerged": 52e3,
		"BenchmarkFrozen": 46e3, // Merged is ~1.13x Frozen
	}
	if _, failures, err := comparePairs([]string{"BenchmarkMerged<1.3*BenchmarkFrozen"}, medians); err != nil || len(failures) != 0 {
		t.Fatalf("within-ratio pair failed: %v %v", failures, err)
	}
	if _, failures, err := comparePairs([]string{"BenchmarkMerged<1.1*BenchmarkFrozen"}, medians); err != nil || len(failures) != 1 {
		t.Fatalf("beyond-ratio pair not caught: %v %v", failures, err)
	}
	// Plain form still means coefficient 1 (strictly faster).
	if _, failures, err := comparePairs([]string{"BenchmarkMerged<BenchmarkFrozen"}, medians); err != nil || len(failures) != 1 {
		t.Fatalf("plain pair lost its strict semantics: %v %v", failures, err)
	}
	if _, failures, err := comparePairs([]string{"BenchmarkMerged<1.3*BenchmarkGone"}, medians); err != nil || len(failures) != 1 {
		t.Fatalf("missing ratio-pair side not caught: %v %v", failures, err)
	}
	if _, _, err := comparePairs([]string{"BenchmarkMerged<x*BenchmarkFrozen"}, medians); err == nil {
		t.Fatal("non-numeric coefficient accepted")
	}
	if _, _, err := comparePairs([]string{"BenchmarkMerged<-2*BenchmarkFrozen"}, medians); err == nil {
		t.Fatal("negative coefficient accepted")
	}
}

// TestEndToEndAgainstParsedOutput wires parse + compare the way main does:
// the committed-style baseline catches a 2x inflation of the same output.
func TestEndToEndAgainstParsedOutput(t *testing.T) {
	m, err := parseMedians(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]float64{
		"BenchmarkPipelineN10k2dSerial": 440000000,
		"BenchmarkSlimTreeBuildBulk10k": 14000000,
	}
	if _, failures := compare(base, m, 1.25); len(failures) != 0 {
		t.Fatalf("clean run tripped the gate: %v", failures)
	}
	inflated := strings.ReplaceAll(benchOut, " 14000000 ns/op", " 28000000 ns/op")
	inflated = strings.ReplaceAll(inflated, " 15000000 ns/op", " 30000000 ns/op")
	inflated = strings.ReplaceAll(inflated, " 13000000 ns/op", " 26000000 ns/op")
	m2, err := parseMedians(strings.NewReader(inflated))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(base, m2, 1.25)
	if len(failures) != 1 || failures[0] != "BenchmarkSlimTreeBuildBulk10k" {
		t.Fatalf("2x inflated build pair not caught: %v", failures)
	}
}

// TestEmitBaseline pins the -emit-baseline refresh path: the emitted
// JSON must round-trip through the same decoder the gate loads
// baselines with, carry exactly the run's medians, and omit the alloc
// map when the run had no -benchmem columns.
func TestEmitBaseline(t *testing.T) {
	ns, allocs, err := parseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	out, err := emitBaseline(ns, allocs)
	if err != nil {
		t.Fatal(err)
	}
	var bf baselineFile
	if err := json.Unmarshal([]byte(out), &bf); err != nil {
		t.Fatalf("emitted JSON does not decode as a baseline file: %v\n%s", err, out)
	}
	if got := bf.CIBaseline["BenchmarkPipelineN10k2dSerial"]; got != 440000000 {
		t.Errorf("emitted ns median = %v, want 440000000", got)
	}
	if got := bf.CIBaseline["BenchmarkSlimTreeBuildBulk10k"]; got != 14000000 {
		t.Errorf("emitted ns median = %v, want 14000000", got)
	}
	if got := bf.CIBaselineAllocs["BenchmarkPipelineN10k2dSerial"]; got != 10 {
		t.Errorf("emitted alloc median = %v, want 10", got)
	}
	if _, ok := bf.CIBaselineAllocs["BenchmarkSlimTreeBuildBulk10k"]; ok {
		t.Error("benchmark without -benchmem columns must not gain an alloc entry")
	}

	// No -benchmem columns at all: the alloc map must be absent entirely.
	out, err = emitBaseline(ns, map[string]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "ci_baseline_allocs") {
		t.Errorf("alloc-free run emitted an alloc map:\n%s", out)
	}

	if _, err := emitBaseline(map[string]float64{}, nil); err == nil {
		t.Error("an empty run must error, not emit an empty (gate-disabling) baseline")
	}
}
