package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"

	"mccatch"
)

func TestReadCSVPlain(t *testing.T) {
	pts, err := readCSV(strings.NewReader("1,2\n3,4\n5.5,-6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[2][0] != 5.5 || pts[2][1] != -6 {
		t.Fatalf("bad parse: %v", pts)
	}
}

func TestReadCSVSkipsHeader(t *testing.T) {
	pts, err := readCSV(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0][0] != 1 {
		t.Fatalf("header not skipped: %v", pts)
	}
}

func TestReadCSVRejectsMidfileGarbage(t *testing.T) {
	if _, err := readCSV(strings.NewReader("1,2\nfoo,bar\n")); err == nil {
		t.Error("non-numeric mid-file row should error")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := readCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := readCSV(strings.NewReader("x,y\n")); err == nil {
		t.Error("header-only input should error")
	}
}

func TestReadLines(t *testing.T) {
	lines, err := readLines(strings.NewReader("smith\n\njones\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "smith" || lines[1] != "jones" {
		t.Fatalf("bad lines: %v", lines)
	}
	if _, err := readLines(strings.NewReader("\n\n")); err == nil {
		t.Error("blank-only input should error")
	}
}

// genCSV builds a deterministic 2d dataset: two clusters plus a few
// far-away outliers, serialized as CSV.
func genCSV() string {
	var b strings.Builder
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 120; i++ {
		cx := float64(i%2) * 30
		fmt.Fprintf(&b, "%g,%g\n", cx+rng.Float64()*4, rng.Float64()*4)
	}
	b.WriteString("500,500\n501,500\n-400,250\n")
	return b.String()
}

func genText() string {
	var b strings.Builder
	rng := rand.New(rand.NewSource(43))
	alphabet := "abcdef"
	for i := 0; i < 80; i++ {
		n := 4 + rng.Intn(4)
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		b.WriteByte('\n')
	}
	b.WriteString("zzzzzzzzzzzzzz\nqqqqqqqqqqqqqq\n")
	return b.String()
}

// detectOneShot replicates main's direct (non-incremental, in-memory)
// path for a test: read, build the Detector, detect.
func detectOneShot(format string, r io.Reader, opts []mccatch.Option) (*mccatch.Result, func(i int) string, error) {
	switch format {
	case "csv":
		pts, err := readCSV(r)
		if err != nil {
			return nil, nil, err
		}
		d, err := mccatch.BuildVectors(pts, opts...)
		if err != nil {
			return nil, nil, err
		}
		res, err := d.Detect()
		return res, func(i int) string { return fmt.Sprintf("row %d %v", i, pts[i]) }, err
	case "text":
		words, err := readLines(r)
		if err != nil {
			return nil, nil, err
		}
		d, err := mccatch.BuildStrings(words, opts...)
		if err != nil {
			return nil, nil, err
		}
		res, err := d.Detect()
		return res, func(i int) string { return fmt.Sprintf("line %d %q", i, words[i]) }, err
	default:
		return nil, nil, fmt.Errorf("unknown format %q", format)
	}
}

// TestIncrementalCLIByteIdentical pins the acceptance criterion: feeding
// a dataset through the incremental layer (-incremental: insert-all,
// compact, detect) prints byte-identical output to the one-shot path, on
// both a CSV and a text dataset.
func TestIncrementalCLIByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		format, data string
	}{
		{"csv", genCSV()},
		{"text", genText()},
	} {
		t.Run(tc.format, func(t *testing.T) {
			var fresh, incr bytes.Buffer
			for _, mode := range []bool{false, true} {
				var (
					res      *mccatch.Result
					describe func(i int) string
					err      error
				)
				if mode {
					res, describe, err = detectIncremental(tc.format, strings.NewReader(tc.data), nil)
				} else {
					res, describe, err = detectOneShot(tc.format, strings.NewReader(tc.data), nil)
				}
				if err != nil {
					t.Fatal(err)
				}
				w := &fresh
				if mode {
					w = &incr
				}
				printResult(w, res, describe, 10, true)
			}
			if fresh.String() != incr.String() {
				t.Fatalf("-incremental output differs from one-shot:\n--- fresh ---\n%s--- incremental ---\n%s",
					fresh.String(), incr.String())
			}
		})
	}
}

// TestShardedCLIByteIdentical pins the -shards acceptance criterion:
// the report printed at -shards 1 is byte-identical to a run without
// the flag, and stays byte-identical at every higher shard count, on
// both a CSV and a text dataset.
func TestShardedCLIByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		format, data string
	}{
		{"csv", genCSV()},
		{"text", genText()},
	} {
		t.Run(tc.format, func(t *testing.T) {
			var base bytes.Buffer
			res, describe, err := detectOneShot(tc.format, strings.NewReader(tc.data), nil)
			if err != nil {
				t.Fatal(err)
			}
			printResult(&base, res, describe, 10, true)
			for _, shards := range []int{1, 2, 4} {
				var got bytes.Buffer
				res, describe, err := detectOneShot(tc.format, strings.NewReader(tc.data),
					[]mccatch.Option{mccatch.WithShards(shards)})
				if err != nil {
					t.Fatal(err)
				}
				printResult(&got, res, describe, 10, true)
				if base.String() != got.String() {
					t.Fatalf("-shards %d output differs from the unsharded run:\n--- unsharded ---\n%s--- sharded ---\n%s",
						shards, base.String(), got.String())
				}
			}
		})
	}
}

// TestIndexFileCLIByteIdentical pins the build-once/query-many
// acceptance criterion: detecting over an index saved to disk and
// reopened (the -save-index / -index-file round trip) prints output
// byte-identical to detecting over the freshly built in-memory index, on
// both a CSV and a text dataset — including the member descriptions,
// which an opened detector reconstructs from the file.
func TestIndexFileCLIByteIdentical(t *testing.T) {
	dir := t.TempDir()

	t.Run("csv", func(t *testing.T) {
		pts, err := readCSV(strings.NewReader(genCSV()))
		if err != nil {
			t.Fatal(err)
		}
		built, err := mccatch.BuildVectors(pts)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/vec.idx"
		if err := built.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		opened, err := mccatch.OpenVectors(path)
		if err != nil {
			t.Fatal(err)
		}
		defer opened.Close()
		var direct, viaFile bytes.Buffer
		for _, run := range []struct {
			d *mccatch.Detector[[]float64]
			w *bytes.Buffer
		}{{built, &direct}, {opened, &viaFile}} {
			items := run.d.Items()
			describe := func(i int) string { return fmt.Sprintf("row %d %v", i, items[i]) }
			res, err := run.d.Detect()
			if err != nil {
				t.Fatal(err)
			}
			printResult(run.w, res, describe, 10, true)
		}
		if direct.String() != viaFile.String() {
			t.Fatalf("-index-file output differs from direct run:\n--- direct ---\n%s--- via file ---\n%s",
				direct.String(), viaFile.String())
		}
	})

	t.Run("text", func(t *testing.T) {
		words, err := readLines(strings.NewReader(genText()))
		if err != nil {
			t.Fatal(err)
		}
		built, err := mccatch.BuildStrings(words)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/str.idx"
		if err := built.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		opened, err := mccatch.OpenStrings(path)
		if err != nil {
			t.Fatal(err)
		}
		defer opened.Close()
		var direct, viaFile bytes.Buffer
		for _, run := range []struct {
			d *mccatch.Detector[string]
			w *bytes.Buffer
		}{{built, &direct}, {opened, &viaFile}} {
			items := run.d.Items()
			describe := func(i int) string { return fmt.Sprintf("line %d %q", i, items[i]) }
			res, err := run.d.Detect()
			if err != nil {
				t.Fatal(err)
			}
			printResult(run.w, res, describe, 10, true)
		}
		if direct.String() != viaFile.String() {
			t.Fatalf("-index-file output differs from direct run:\n--- direct ---\n%s--- via file ---\n%s",
				direct.String(), viaFile.String())
		}
	})
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRunModes drives the CLI's run helper through its three modes —
// save-and-exit, probe, and a full detection report — over one dataset.
func TestRunModes(t *testing.T) {
	pts, err := readCSV(strings.NewReader(genCSV()))
	if err != nil {
		t.Fatal(err)
	}
	built, err := mccatch.BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	describe := func(i int) string { return fmt.Sprintf("row %d %v", i, pts[i]) }
	path := t.TempDir() + "/run.idx"

	saved := captureStdout(t, func() { run(built, describe, path, -1, false, -1, 10, false) })
	if want := fmt.Sprintf("saved index: %s (n=%d)\n", path, len(pts)); saved != want {
		t.Fatalf("save mode printed %q, want %q", saved, want)
	}
	opened, err := mccatch.OpenVectors(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	probed := captureStdout(t, func() { run(opened, describe, "", 0, false, -1, 10, false) })
	lines := strings.Split(strings.TrimRight(probed, "\n"), "\n")
	if lines[0] != describe(0) {
		t.Fatalf("probe header = %q, want %q", lines[0], describe(0))
	}
	if want := len(opened.Radii()) + 1; len(lines) != want {
		t.Fatalf("probe printed %d lines, want %d", len(lines), want)
	}
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, fmt.Sprintf(",%d", len(pts))) {
		t.Fatalf("count at the diameter radius should be n: %q", last)
	}

	full := captureStdout(t, func() { run(opened, describe, "", -1, true, 0, 3, true) })
	// "row 12x": the planted outliers (rows 120-122) must appear as
	// described members in the report.
	for _, want := range []string{"n=123", "point scores:", "row 12"} {
		if !strings.Contains(full, want) {
			t.Fatalf("detection report missing %q:\n%s", want, full)
		}
	}
}

func TestOpenInput(t *testing.T) {
	if openInput("-") != os.Stdin {
		t.Fatal(`openInput("-") should be stdin`)
	}
	path := t.TempDir() + "/in.csv"
	if err := os.WriteFile(path, []byte("1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(openInput(path))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1,2\n3,4\n" {
		t.Fatalf("openInput read %q", data)
	}
}

func TestCheckHeap(t *testing.T) {
	checkHeap(0)       // disabled: never fails
	checkHeap(1 << 20) // a 1 TiB cap: comfortably above any test heap
}

func TestConflictingFlags(t *testing.T) {
	cases := []struct {
		name    string
		incr    bool
		saveIdx string
		idxFile string
		probe   int
		shards  int
		wantErr bool
	}{
		{name: "none", probe: -1},
		{name: "probe alone", probe: 3},
		{name: "save alone", saveIdx: "x.idx", probe: -1},
		{name: "open alone", idxFile: "x.idx", probe: -1},
		{name: "open+probe", idxFile: "x.idx", probe: 3},
		{name: "incremental alone", incr: true, probe: -1},
		{name: "incremental+save", incr: true, saveIdx: "x.idx", probe: -1, wantErr: true},
		{name: "incremental+open", incr: true, idxFile: "x.idx", probe: -1, wantErr: true},
		{name: "save+open", saveIdx: "x.idx", idxFile: "y.idx", probe: -1, wantErr: true},
		{name: "save+probe", saveIdx: "x.idx", probe: 0, wantErr: true},
		{name: "shards alone", probe: -1, shards: 4},
		{name: "shards one+open", idxFile: "x.idx", probe: -1, shards: 1},
		{name: "shards+incremental", incr: true, probe: -1, shards: 4},
		{name: "shards+open", idxFile: "x.idx", probe: -1, shards: 2, wantErr: true},
		{name: "shards+save", saveIdx: "x.idx", probe: -1, shards: 2, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := conflictingFlags(tc.incr, tc.saveIdx, tc.idxFile, tc.probe, tc.shards)
			if got := msg != ""; got != tc.wantErr {
				t.Errorf("conflictingFlags(%v,%q,%q,%d,%d) = %q, want error %v",
					tc.incr, tc.saveIdx, tc.idxFile, tc.probe, tc.shards, msg, tc.wantErr)
			}
		})
	}
}

func TestDetectUnknownFormat(t *testing.T) {
	if _, _, err := detectIncremental("xml", strings.NewReader("x"), nil); err == nil {
		t.Error("unknown format should error")
	}
	if _, _, err := detectOneShot("xml", strings.NewReader("x"), nil); err == nil {
		t.Error("unknown format should error")
	}
}
