package main

import (
	"strings"
	"testing"
)

func TestReadCSVPlain(t *testing.T) {
	pts, err := readCSV(strings.NewReader("1,2\n3,4\n5.5,-6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[2][0] != 5.5 || pts[2][1] != -6 {
		t.Fatalf("bad parse: %v", pts)
	}
}

func TestReadCSVSkipsHeader(t *testing.T) {
	pts, err := readCSV(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0][0] != 1 {
		t.Fatalf("header not skipped: %v", pts)
	}
}

func TestReadCSVRejectsMidfileGarbage(t *testing.T) {
	if _, err := readCSV(strings.NewReader("1,2\nfoo,bar\n")); err == nil {
		t.Error("non-numeric mid-file row should error")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := readCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := readCSV(strings.NewReader("x,y\n")); err == nil {
		t.Error("header-only input should error")
	}
}

func TestReadLines(t *testing.T) {
	lines, err := readLines(strings.NewReader("smith\n\njones\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "smith" || lines[1] != "jones" {
		t.Fatalf("bad lines: %v", lines)
	}
	if _, err := readLines(strings.NewReader("\n\n")); err == nil {
		t.Error("blank-only input should error")
	}
}
