package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestReadCSVPlain(t *testing.T) {
	pts, err := readCSV(strings.NewReader("1,2\n3,4\n5.5,-6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[2][0] != 5.5 || pts[2][1] != -6 {
		t.Fatalf("bad parse: %v", pts)
	}
}

func TestReadCSVSkipsHeader(t *testing.T) {
	pts, err := readCSV(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0][0] != 1 {
		t.Fatalf("header not skipped: %v", pts)
	}
}

func TestReadCSVRejectsMidfileGarbage(t *testing.T) {
	if _, err := readCSV(strings.NewReader("1,2\nfoo,bar\n")); err == nil {
		t.Error("non-numeric mid-file row should error")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := readCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := readCSV(strings.NewReader("x,y\n")); err == nil {
		t.Error("header-only input should error")
	}
}

func TestReadLines(t *testing.T) {
	lines, err := readLines(strings.NewReader("smith\n\njones\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "smith" || lines[1] != "jones" {
		t.Fatalf("bad lines: %v", lines)
	}
	if _, err := readLines(strings.NewReader("\n\n")); err == nil {
		t.Error("blank-only input should error")
	}
}

// genCSV builds a deterministic 2d dataset: two clusters plus a few
// far-away outliers, serialized as CSV.
func genCSV() string {
	var b strings.Builder
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 120; i++ {
		cx := float64(i%2) * 30
		fmt.Fprintf(&b, "%g,%g\n", cx+rng.Float64()*4, rng.Float64()*4)
	}
	b.WriteString("500,500\n501,500\n-400,250\n")
	return b.String()
}

func genText() string {
	var b strings.Builder
	rng := rand.New(rand.NewSource(43))
	alphabet := "abcdef"
	for i := 0; i < 80; i++ {
		n := 4 + rng.Intn(4)
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		b.WriteByte('\n')
	}
	b.WriteString("zzzzzzzzzzzzzz\nqqqqqqqqqqqqqq\n")
	return b.String()
}

// TestIncrementalCLIByteIdentical pins the acceptance criterion: feeding
// a dataset through the incremental layer (-incremental: insert-all,
// compact, detect) prints byte-identical output to the one-shot path, on
// both a CSV and a text dataset.
func TestIncrementalCLIByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		format, data string
	}{
		{"csv", genCSV()},
		{"text", genText()},
	} {
		t.Run(tc.format, func(t *testing.T) {
			var fresh, incr bytes.Buffer
			for _, mode := range []bool{false, true} {
				res, describe, err := detect(tc.format, strings.NewReader(tc.data), mode, nil)
				if err != nil {
					t.Fatal(err)
				}
				w := &fresh
				if mode {
					w = &incr
				}
				printResult(w, res, describe, 10, true)
			}
			if fresh.String() != incr.String() {
				t.Fatalf("-incremental output differs from one-shot:\n--- fresh ---\n%s--- incremental ---\n%s",
					fresh.String(), incr.String())
			}
		})
	}
}

func TestDetectUnknownFormat(t *testing.T) {
	if _, _, err := detect("xml", strings.NewReader("x"), false, nil); err == nil {
		t.Error("unknown format should error")
	}
}
