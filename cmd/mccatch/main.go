// Command mccatch runs the MCCATCH microcluster detector on a dataset read
// from a file or stdin and prints the ranked microclusters with their
// anomaly scores, plus (optionally) a score for every point.
//
// Vector data is CSV (one point per row, numeric columns, optional header);
// string data is one element per line. The distance is Euclidean for CSV
// and Levenshtein for text, matching the paper's defaults.
//
// Usage:
//
//	mccatch -input data.csv
//	mccatch -input names.txt -format text
//	mccatch -input data.csv -a 15 -b 0.1 -c 0   # explicit hyperparameters
//	mccatch -input data.csv -shards 4           # shard-parallel pipelines (identical output)
//
// Build-once/query-many: -save-index builds the index from the input and
// writes it to disk without detecting; -index-file reopens such a file
// (mmap-backed) and detects or probes without ever rebuilding the index:
//
//	mccatch -input data.csv -save-index data.idx
//	mccatch -index-file data.idx                 # identical output to the direct run
//	mccatch -index-file data.idx -probe 17       # one point's neighbor-count curve
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"

	"mccatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mccatch: ")
	var (
		input   = flag.String("input", "-", "input file (- for stdin)")
		format  = flag.String("format", "csv", "input format: csv (vectors) or text (strings)")
		a       = flag.Int("a", 0, "number of radii (0 = default 15)")
		b       = flag.Float64("b", -1, "maximum plateau slope (<0 = default 0.1)")
		c       = flag.Int("c", 0, "maximum microcluster cardinality (0 = ceil(n*0.1))")
		points  = flag.Bool("points", false, "also print the per-point scores")
		top     = flag.Int("top", 10, "print at most this many microclusters")
		summary = flag.Bool("summary", false, "print the explainability summary (radii, cutoff, ranked mcs)")
		explain = flag.Int("explain", -1, "explain why one point (by index) scored the way it did")
		workers = flag.Int("workers", 0, "concurrent workers (0 = all cores, 1 = serial; output is identical)")
		shards  = flag.Int("shards", 0, "concurrent per-shard pipelines (0 = default 1; output is identical for every value)")
		insert  = flag.Bool("insertion-build", false, "build slim-trees with the legacy insert path instead of bulk loading (slower; output is identical)")
		incr    = flag.Bool("incremental", false, "feed the data through the mutable incremental layer (insert-all, compact, detect; output is identical)")
		saveIdx = flag.String("save-index", "", "build the index from the input, save it to this file, and exit without detecting")
		idxFile = flag.String("index-file", "", "open a saved index file instead of reading -input (mmap-backed; output is identical to the direct run)")
		probe   = flag.Int("probe", -1, "print one element's neighbor-count curve (radius,count per line) instead of detecting")
		maxHeap = flag.Int("max-heap", 0, "fail after the run if the Go heap obtained more than this many MiB from the OS (0 = no check)")
	)
	flag.Parse()
	if msg := conflictingFlags(*incr, *saveIdx, *idxFile, *probe, *shards); msg != "" {
		fmt.Fprintf(os.Stderr, "mccatch: %s\n\n", msg)
		flag.Usage()
		os.Exit(2)
	}

	var opts []mccatch.Option
	if *a != 0 {
		opts = append(opts, mccatch.WithRadii(*a))
	}
	if *b >= 0 {
		opts = append(opts, mccatch.WithMaxSlope(*b))
	}
	if *c != 0 {
		opts = append(opts, mccatch.WithMaxCardinality(*c))
	}
	if *workers != 0 {
		opts = append(opts, mccatch.WithWorkers(*workers))
	}
	if *shards != 0 {
		opts = append(opts, mccatch.WithShards(*shards))
	}
	if *insert {
		opts = append(opts, mccatch.WithInsertionBuild())
	}

	if *incr {
		r := openInput(*input)
		res, describe, err := detectIncremental(*format, r, opts)
		if err != nil {
			log.Fatal(err)
		}
		report(res, describe, *summary, *explain, *top, *points)
		checkHeap(*maxHeap)
		return
	}

	switch *format {
	case "csv":
		var d *mccatch.Detector[[]float64]
		var err error
		if *idxFile != "" {
			d, err = mccatch.OpenVectors(*idxFile, opts...)
		} else {
			var pts [][]float64
			if pts, err = readCSV(openInput(*input)); err == nil {
				d, err = mccatch.BuildVectors(pts, opts...)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		items := d.Items()
		describe := func(i int) string { return fmt.Sprintf("row %d %v", i, items[i]) }
		run(d, describe, *saveIdx, *probe, *summary, *explain, *top, *points)
	case "text":
		var d *mccatch.Detector[string]
		var err error
		if *idxFile != "" {
			d, err = mccatch.OpenStrings(*idxFile, opts...)
		} else {
			var words []string
			if words, err = readLines(openInput(*input)); err == nil {
				d, err = mccatch.BuildStrings(words, opts...)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		items := d.Items()
		describe := func(i int) string { return fmt.Sprintf("line %d %q", i, items[i]) }
		run(d, describe, *saveIdx, *probe, *summary, *explain, *top, *points)
	default:
		log.Fatalf("unknown -format %q (want csv or text)", *format)
	}
	checkHeap(*maxHeap)
}

// conflictingFlags rejects flag combinations where one flag would have
// to be silently ignored: the incremental layer has no on-disk form,
// -save-index and -index-file each claim the index's home, -save-index
// exits before any probe could run, and a sharded detector neither
// saves to nor opens from an index file (the partition has no on-disk
// format). A non-empty return is the usage error (the caller prints it
// plus the flag summary and exits nonzero, so scripts fail loudly
// instead of acting on half the flags).
func conflictingFlags(incr bool, saveIdx, idxFile string, probe, shards int) string {
	switch {
	case incr && (saveIdx != "" || idxFile != ""):
		return "-incremental cannot be combined with -save-index/-index-file (the incremental layer has no on-disk form)"
	case saveIdx != "" && idxFile != "":
		return "-save-index and -index-file are mutually exclusive (the index is already on disk)"
	case saveIdx != "" && probe >= 0:
		return "-save-index and -probe are mutually exclusive (-save-index exits without querying; probe the saved file with -index-file -probe)"
	case shards > 1 && idxFile != "":
		return "-shards cannot be combined with -index-file (a saved index is one frozen tree; shard at build time instead)"
	case shards > 1 && saveIdx != "":
		return "-shards cannot be combined with -save-index (the shard partition has no on-disk format)"
	}
	return ""
}

// openInput opens -input (stdin for "-"); the process exit releases it.
func openInput(input string) io.Reader {
	if input == "-" {
		return os.Stdin
	}
	f, err := os.Open(input)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// run drives one built or opened detector through the requested mode:
// save-and-exit, a single probe, or a full detection report.
func run[T any](d *mccatch.Detector[T], describe func(i int) string, saveIdx string, probe int, summary bool, explain, top int, points bool) {
	if saveIdx != "" {
		if err := d.WriteFile(saveIdx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved index: %s (n=%d)\n", saveIdx, d.Size())
		return
	}
	if probe >= 0 {
		if probe >= d.Size() {
			log.Fatalf("-probe %d out of range (n=%d)", probe, d.Size())
		}
		radii := d.Radii()
		counts, err := d.Probe(d.Items()[probe])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", describe(probe))
		for k, r := range radii {
			fmt.Printf("%.6g,%d\n", r, counts[k])
		}
		return
	}
	res, err := d.Detect()
	if err != nil {
		log.Fatal(err)
	}
	report(res, describe, summary, explain, top, points)
}

func report(res *mccatch.Result, describe func(i int) string, summary bool, explain, top int, points bool) {
	if summary {
		fmt.Print(res.Summary())
	}
	if explain >= 0 {
		fmt.Println(res.ExplainPoint(explain))
	}
	printResult(os.Stdout, res, describe, top, points)
}

// checkHeap enforces -max-heap: it fails the process when the Go heap
// obtained more than the cap from the OS. The CI memory-capped job uses
// it to prove a query run over an mmap-backed index stays small where an
// in-RAM rebuild of the same index cannot.
func checkHeap(maxHeapMiB int) {
	if maxHeapMiB <= 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if got := ms.HeapSys >> 20; got > uint64(maxHeapMiB) {
		log.Fatalf("heap grew to %d MiB, cap is %d MiB", got, maxHeapMiB)
	}
}

// detectIncremental reads the dataset and runs it through the mutable
// incremental layer (insert every element, compact, detect). The output
// is byte-identical to the direct path; TestIncrementalCLIByteIdentical
// pins it.
func detectIncremental(format string, r io.Reader, opts []mccatch.Option) (*mccatch.Result, func(i int) string, error) {
	switch format {
	case "csv":
		pts, err := readCSV(r)
		if err != nil {
			return nil, nil, err
		}
		describe := func(i int) string { return fmt.Sprintf("row %d %v", i, pts[i]) }
		inc, err := mccatch.NewIncrementalVectors(len(pts[0]), opts...)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range pts {
			if _, err := inc.Insert(p); err != nil {
				return nil, nil, err
			}
		}
		inc.Compact()
		res, err := inc.Detect()
		return res, describe, err
	case "text":
		words, err := readLines(r)
		if err != nil {
			return nil, nil, err
		}
		describe := func(i int) string { return fmt.Sprintf("line %d %q", i, words[i]) }
		all := append([]mccatch.Option{mccatch.DeriveWordCost(words)}, opts...)
		inc, err := mccatch.NewIncremental(mccatch.Levenshtein, all...)
		if err != nil {
			return nil, nil, err
		}
		for _, w := range words {
			if _, err := inc.Insert(w); err != nil {
				return nil, nil, err
			}
		}
		inc.Compact()
		res, err := inc.Detect()
		return res, describe, err
	default:
		return nil, nil, fmt.Errorf("unknown -format %q (want csv or text)", format)
	}
}

// printResult writes the ranked-microcluster report.
func printResult(w io.Writer, res *mccatch.Result, describe func(i int) string, top int, points bool) {
	fmt.Fprintf(w, "n=%d  diameter=%.4g  cutoff=%.4g  microclusters=%d\n",
		len(res.PointScores), res.Diameter, res.Cutoff, len(res.Microclusters))
	for i, mc := range res.Microclusters {
		if i >= top {
			fmt.Fprintf(w, "... and %d more\n", len(res.Microclusters)-top)
			break
		}
		fmt.Fprintf(w, "#%d score=%.3f bridge=%.4g |members|=%d\n", i+1, mc.Score, mc.Bridge, len(mc.Members))
		for _, m := range mc.Members {
			fmt.Fprintf(w, "   %s\n", describe(m))
		}
	}
	if points {
		fmt.Fprintln(w, "point scores:")
		for i, s := range res.PointScores {
			fmt.Fprintf(w, "%d,%.6f\n", i, s)
		}
	}
}

// readCSV parses numeric CSV rows, skipping a header row if the first row
// fails to parse as numbers.
func readCSV(r io.Reader) ([][]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var pts [][]float64
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(rec))
		ok := true
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			row[j] = v
		}
		if !ok {
			if first {
				first = false
				continue // header
			}
			return nil, fmt.Errorf("non-numeric row %v", rec)
		}
		first = false
		pts = append(pts, row)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	return pts, nil
}

func readLines(r io.Reader) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			out = append(out, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no input lines")
	}
	return out, nil
}
