// Command mccatch runs the MCCATCH microcluster detector on a dataset read
// from a file or stdin and prints the ranked microclusters with their
// anomaly scores, plus (optionally) a score for every point.
//
// Vector data is CSV (one point per row, numeric columns, optional header);
// string data is one element per line. The distance is Euclidean for CSV
// and Levenshtein for text, matching the paper's defaults.
//
// Usage:
//
//	mccatch -input data.csv
//	mccatch -input names.txt -format text
//	mccatch -input data.csv -a 15 -b 0.1 -c 0   # explicit hyperparameters
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"mccatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mccatch: ")
	var (
		input   = flag.String("input", "-", "input file (- for stdin)")
		format  = flag.String("format", "csv", "input format: csv (vectors) or text (strings)")
		a       = flag.Int("a", 0, "number of radii (0 = default 15)")
		b       = flag.Float64("b", -1, "maximum plateau slope (<0 = default 0.1)")
		c       = flag.Int("c", 0, "maximum microcluster cardinality (0 = ceil(n*0.1))")
		points  = flag.Bool("points", false, "also print the per-point scores")
		top     = flag.Int("top", 10, "print at most this many microclusters")
		summary = flag.Bool("summary", false, "print the explainability summary (radii, cutoff, ranked mcs)")
		explain = flag.Int("explain", -1, "explain why one point (by index) scored the way it did")
		workers = flag.Int("workers", 0, "concurrent workers (0 = all cores, 1 = serial; output is identical)")
		insert  = flag.Bool("insertion-build", false, "build slim-trees with the legacy insert path instead of bulk loading (slower; output is identical)")
		incr    = flag.Bool("incremental", false, "feed the data through the mutable incremental layer (insert-all, compact, detect; output is identical)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	var opts []mccatch.Option
	if *a != 0 {
		opts = append(opts, mccatch.WithRadii(*a))
	}
	if *b >= 0 {
		opts = append(opts, mccatch.WithMaxSlope(*b))
	}
	if *c != 0 {
		opts = append(opts, mccatch.WithMaxCardinality(*c))
	}
	if *workers != 0 {
		opts = append(opts, mccatch.WithWorkers(*workers))
	}
	if *insert {
		opts = append(opts, mccatch.WithInsertionBuild())
	}

	res, describe, err := detect(*format, r, *incr, opts)
	if err != nil {
		log.Fatal(err)
	}

	if *summary {
		fmt.Print(res.Summary())
	}
	if *explain >= 0 {
		fmt.Println(res.ExplainPoint(*explain))
	}
	printResult(os.Stdout, res, describe, *top, *points)
}

// detect reads the dataset in the given format and runs the detector —
// one-shot by default, or through the incremental layer (insert every
// element, compact, detect) when incremental is set. Both paths produce
// byte-identical output; TestIncrementalCLIByteIdentical pins it.
func detect(format string, r io.Reader, incremental bool, opts []mccatch.Option) (*mccatch.Result, func(i int) string, error) {
	switch format {
	case "csv":
		pts, err := readCSV(r)
		if err != nil {
			return nil, nil, err
		}
		describe := func(i int) string { return fmt.Sprintf("row %d %v", i, pts[i]) }
		if incremental {
			inc := mccatch.NewIncrementalVectors(len(pts[0]), opts...)
			for _, p := range pts {
				if _, err := inc.Insert(p); err != nil {
					return nil, nil, err
				}
			}
			inc.Compact()
			res, err := inc.Detect()
			return res, describe, err
		}
		res, err := mccatch.RunVectors(pts, opts...)
		return res, describe, err
	case "text":
		words, err := readLines(r)
		if err != nil {
			return nil, nil, err
		}
		describe := func(i int) string { return fmt.Sprintf("line %d %q", i, words[i]) }
		if incremental {
			all := append([]mccatch.Option{mccatch.DeriveWordCost(words)}, opts...)
			inc := mccatch.NewIncremental(mccatch.Levenshtein, all...)
			for _, w := range words {
				if _, err := inc.Insert(w); err != nil {
					return nil, nil, err
				}
			}
			inc.Compact()
			res, err := inc.Detect()
			return res, describe, err
		}
		res, err := mccatch.RunStrings(words, opts...)
		return res, describe, err
	default:
		return nil, nil, fmt.Errorf("unknown -format %q (want csv or text)", format)
	}
}

// printResult writes the ranked-microcluster report.
func printResult(w io.Writer, res *mccatch.Result, describe func(i int) string, top int, points bool) {
	fmt.Fprintf(w, "n=%d  diameter=%.4g  cutoff=%.4g  microclusters=%d\n",
		len(res.PointScores), res.Diameter, res.Cutoff, len(res.Microclusters))
	for i, mc := range res.Microclusters {
		if i >= top {
			fmt.Fprintf(w, "... and %d more\n", len(res.Microclusters)-top)
			break
		}
		fmt.Fprintf(w, "#%d score=%.3f bridge=%.4g |members|=%d\n", i+1, mc.Score, mc.Bridge, len(mc.Members))
		for _, m := range mc.Members {
			fmt.Fprintf(w, "   %s\n", describe(m))
		}
	}
	if points {
		fmt.Fprintln(w, "point scores:")
		for i, s := range res.PointScores {
			fmt.Fprintf(w, "%d,%.6f\n", i, s)
		}
	}
}

// readCSV parses numeric CSV rows, skipping a header row if the first row
// fails to parse as numbers.
func readCSV(r io.Reader) ([][]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var pts [][]float64
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(rec))
		ok := true
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			row[j] = v
		}
		if !ok {
			if first {
				first = false
				continue // header
			}
			return nil, fmt.Errorf("non-numeric row %v", rec)
		}
		first = false
		pts = append(pts, row)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	return pts, nil
}

func readLines(r io.Reader) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			out = append(out, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no input lines")
	}
	return out, nil
}
