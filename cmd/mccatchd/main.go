// Command mccatchd is the long-lived MCCATCH detection service: it
// serves ingest / delete / detect / score-point / top-k-outliers over
// HTTP, coalescing concurrent score requests into batched index
// traversals and caching detection results until a mutation invalidates
// them (see internal/serve for the endpoint reference).
//
// Two serving modes:
//
//	mccatchd -index-file data.idx            # read-only, mmap-backed, instant cold start
//	mccatchd -dim 2                          # empty mutable collection, fill via /v1/ingest
//	mccatchd -dim 2 -input data.csv          # mutable, preloaded from a CSV
//	mccatchd -format text -input names.txt   # mutable string collection (Levenshtein)
//
// A read-only server answers queries straight off the frozen index and
// rejects mutations with 409; a mutable server accepts ingests and
// deletes and recomputes cached results only when the live set actually
// changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mccatch"
	"mccatch/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mccatchd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		idxFile   = flag.String("index-file", "", "serve this saved index read-only (mmap-backed)")
		input     = flag.String("input", "", "preload the mutable collection from this file")
		format    = flag.String("format", "csv", "data format: csv (vectors) or text (strings)")
		dim       = flag.Int("dim", 0, "vector dimensionality for an empty mutable csv server")
		a         = flag.Int("a", 0, "number of radii (0 = default 15)")
		b         = flag.Float64("b", -1, "maximum plateau slope (<0 = default 0.1)")
		c         = flag.Int("c", 0, "maximum microcluster cardinality (0 = ceil(n*0.1))")
		workers   = flag.Int("workers", 0, "concurrent workers inside one detection (0 = all cores)")
		shards    = flag.Int("shards", 0, "concurrent per-shard pipelines inside one detection (0 = default 1; mutable servers only)")
		batch     = flag.Int("batch", 16, "score coalescing: flush a micro-batch at this many queries")
		batchWait = flag.Duration("batch-wait", 500*time.Microsecond, "score coalescing: flush after the oldest query waited this long (0 disables coalescing)")
	)
	flag.Parse()
	if msg := conflictingFlags(*idxFile, *input, *dim, *shards, *format); msg != "" {
		fmt.Fprintf(os.Stderr, "mccatchd: %s\n\n", msg)
		flag.Usage()
		os.Exit(2)
	}

	var opts []mccatch.Option
	if *a != 0 {
		opts = append(opts, mccatch.WithRadii(*a))
	}
	if *b >= 0 {
		opts = append(opts, mccatch.WithMaxSlope(*b))
	}
	if *c != 0 {
		opts = append(opts, mccatch.WithMaxCardinality(*c))
	}
	if *workers != 0 {
		opts = append(opts, mccatch.WithWorkers(*workers))
	}
	if *shards != 0 {
		opts = append(opts, mccatch.WithShards(*shards))
	}

	handler, cleanup, err := buildHandler(*idxFile, *input, *format, *dim, *batch, *batchWait, opts)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // stop accepting, drain handlers
		cleanup()             // flush in-flight micro-batches, close the index
	}()
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// conflictingFlags rejects combinations where one flag would be silently
// ignored, mirroring cmd/mccatch's policy: fail loudly instead of acting
// on half the flags.
func conflictingFlags(idxFile, input string, dim, shards int, format string) string {
	switch {
	case idxFile != "" && input != "":
		return "-index-file and -input are mutually exclusive (a saved index is served read-only)"
	case idxFile != "" && dim != 0:
		return "-index-file and -dim are mutually exclusive (the index fixes the dimensionality)"
	case idxFile != "" && shards > 1:
		return "-index-file and -shards are mutually exclusive (a saved index is one frozen tree; sharding applies to mutable servers)"
	case idxFile == "" && format == "csv" && dim == 0 && input == "":
		return "a mutable csv server needs -dim (or -input to infer it)"
	case idxFile == "" && format == "text" && input == "":
		return "a mutable text server needs -input (the transformation costs are derived from the data)"
	}
	return ""
}

// buildHandler assembles the serving stack for the selected mode and
// returns it with its shutdown hook.
func buildHandler(idxFile, input, format string, dim, batch int, batchWait time.Duration, opts []mccatch.Option) (http.Handler, func(), error) {
	serveOpts := func(validate func([]float64) error) []serve.Option[[]float64] {
		so := []serve.Option[[]float64]{serve.WithBatch[[]float64](batch, batchWait)}
		if validate != nil {
			so = append(so, serve.WithValidator(validate))
		}
		return so
	}
	if idxFile != "" {
		switch format {
		case "csv":
			d, err := mccatch.OpenVectors(idxFile, opts...)
			if err != nil {
				return nil, nil, err
			}
			dim := 0
			if items := d.Items(); len(items) > 0 {
				dim = len(items[0])
			}
			s := serve.New(serve.ReadOnly(d), serveOpts(vectorValidator(dim))...)
			log.Printf("read-only: %s (n=%d, dim=%d)", idxFile, d.Size(), dim)
			return s, func() { s.Close(); d.Close() }, nil
		case "text":
			d, err := mccatch.OpenStrings(idxFile, opts...)
			if err != nil {
				return nil, nil, err
			}
			s := serve.New(serve.ReadOnly(d), serve.WithBatch[string](batch, batchWait))
			log.Printf("read-only: %s (n=%d)", idxFile, d.Size())
			return s, func() { s.Close(); d.Close() }, nil
		default:
			return nil, nil, fmt.Errorf("unknown -format %q (want csv or text)", format)
		}
	}
	switch format {
	case "csv":
		var pts [][]float64
		if input != "" {
			f, err := os.Open(input)
			if err != nil {
				return nil, nil, err
			}
			if pts, err = readCSV(f); err != nil {
				f.Close()
				return nil, nil, err
			}
			f.Close()
			if dim == 0 {
				dim = len(pts[0])
			}
		}
		inc, err := mccatch.NewIncrementalVectors(dim, opts...)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range pts {
			if _, err := inc.Insert(p); err != nil {
				return nil, nil, err
			}
		}
		s := serve.New(serve.Mutable(inc), serveOpts(vectorValidator(dim))...)
		log.Printf("mutable: dim=%d, preloaded n=%d", dim, inc.Len())
		return s, func() { s.Close() }, nil
	case "text":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		words, err := readLines(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
		all := append([]mccatch.Option{mccatch.DeriveWordCost(words)}, opts...)
		inc, err := mccatch.NewIncremental(mccatch.Levenshtein, all...)
		if err != nil {
			return nil, nil, err
		}
		for _, w := range words {
			if _, err := inc.Insert(w); err != nil {
				return nil, nil, err
			}
		}
		s := serve.New(serve.Mutable(inc), serve.WithBatch[string](batch, batchWait))
		log.Printf("mutable text: preloaded n=%d", inc.Len())
		return s, func() { s.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("unknown -format %q (want csv or text)", format)
	}
}

// vectorValidator rejects items the engine could not answer for: wrong
// dimensionality would fail (or poison) a whole coalesced batch.
func vectorValidator(dim int) func([]float64) error {
	if dim <= 0 {
		return nil
	}
	return func(p []float64) error {
		if len(p) != dim {
			return fmt.Errorf("point has dimension %d, want %d", len(p), dim)
		}
		return nil
	}
}
