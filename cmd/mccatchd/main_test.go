package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mccatch"
)

func TestConflictingFlags(t *testing.T) {
	cases := []struct {
		name           string
		idxFile, input string
		dim, shards    int
		format         string
		wantErr        bool
	}{
		{name: "read-only csv", idxFile: "x.idx", format: "csv"},
		{name: "read-only text", idxFile: "x.idx", format: "text"},
		{name: "mutable csv with dim", dim: 2, format: "csv"},
		{name: "mutable csv with input", input: "d.csv", format: "csv"},
		{name: "mutable text with input", input: "d.txt", format: "text"},
		{name: "index+input", idxFile: "x.idx", input: "d.csv", format: "csv", wantErr: true},
		{name: "index+dim", idxFile: "x.idx", dim: 2, format: "csv", wantErr: true},
		{name: "mutable csv without dim or input", format: "csv", wantErr: true},
		{name: "mutable text without input", format: "text", wantErr: true},
		{name: "mutable csv sharded", dim: 2, shards: 4, format: "csv"},
		{name: "read-only shards one", idxFile: "x.idx", shards: 1, format: "csv"},
		{name: "index+shards", idxFile: "x.idx", shards: 2, format: "csv", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := conflictingFlags(tc.idxFile, tc.input, tc.dim, tc.shards, tc.format)
			if got := msg != ""; got != tc.wantErr {
				t.Errorf("conflictingFlags(%q,%q,%d,%d,%q) = %q, want error %v",
					tc.idxFile, tc.input, tc.dim, tc.shards, tc.format, msg, tc.wantErr)
			}
		})
	}
}

// TestBuildHandlerReadOnly wires the full stack the quickstart documents:
// save an index with the public API, serve it with buildHandler, score a
// point against it over HTTP, and get 409 for a mutation.
func TestBuildHandlerReadOnly(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}, {40, 40}}
	d, err := mccatch.BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.mcidx")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	d.Close()

	h, cleanup, err := buildHandler(path, "", "csv", 0, 4, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"item":[40,40]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score: status %d", resp.StatusCode)
	}
	var m struct {
		Counts []int `json:"counts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Counts) == 0 || m.Counts[len(m.Counts)-1] != len(pts) {
		t.Fatalf("score counts %v: the largest radius must count every element", m.Counts)
	}
	resp2, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"items":[[2,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("ingest on read-only index: status %d, want 409", resp2.StatusCode)
	}
}

// TestBuildHandlerMutablePreload pins the -input preload path: the served
// collection starts at the CSV's size and accepts further ingests.
func TestBuildHandlerMutablePreload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(path, []byte("x,y\n0,0\n1,0\n0,1\n9,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, cleanup, err := buildHandler("", path, "csv", 0, 4, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		N int `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.N != 4 {
		t.Fatalf("preloaded n = %d, want 4", m.N)
	}
	// Wrong dimensionality is caught by the inferred validator.
	resp2, err := http.Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"item":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim score: status %d, want 400", resp2.StatusCode)
	}
}
