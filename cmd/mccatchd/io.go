package main

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// readCSV parses numeric CSV rows, skipping a header row if the first
// row fails to parse as numbers (same dialect as cmd/mccatch).
func readCSV(r io.Reader) ([][]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var pts [][]float64
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(rec))
		ok := true
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			row[j] = v
		}
		if !ok {
			if first {
				first = false
				continue // header
			}
			return nil, fmt.Errorf("non-numeric row %v", rec)
		}
		first = false
		pts = append(pts, row)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	return pts, nil
}

// readLines reads one non-empty string element per line.
func readLines(r io.Reader) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			out = append(out, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no input lines")
	}
	return out, nil
}
