// Nondimensional example (paper Fig. 1(ii)): MCCATCH on last names under
// the Levenshtein edit distance. No coordinates exist — only a metric —
// yet MCCATCH ranks the non-English names highest.
//
//	go run ./examples/lastnames
package main

import (
	"fmt"
	"log"
	"sort"

	"mccatch"
	"mccatch/internal/data"
)

func main() {
	names := data.LastNames(1500, 15, 3)
	fmt.Printf("analyzing %d last names under the edit distance...\n\n", len(names.Words))

	res, err := mccatch.RunStrings(names.Words)
	if err != nil {
		log.Fatal(err)
	}

	// Rank all names by their point score.
	idx := make([]int, len(names.Words))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return res.PointScores[idx[a]] > res.PointScores[idx[b]] })

	fmt.Println("highest anomaly scores (expect foreign-origin names):")
	for _, i := range idx[:10] {
		tag := ""
		if names.Labels[i] {
			tag = "  <-- planted non-English name"
		}
		fmt.Printf("  %-22s %.2f%s\n", names.Words[i], res.PointScores[i], tag)
	}
	fmt.Println("\nlowest anomaly scores (expect English-style names):")
	for _, i := range idx[len(idx)-5:] {
		fmt.Printf("  %-22s %.2f\n", names.Words[i], res.PointScores[i])
	}
}
