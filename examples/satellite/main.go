// Attention-routing example (paper Figs. 1(i) and 8(i)): MCCATCH on
// average RGB values of satellite image tiles. Microclusters mark small
// groups of tiles that are unusual *and alike* — e.g. two buildings with
// the same rare roof color, or snow patches on a volcano summit — while
// singletons mark tiles that are unusual in their own way.
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"log"

	"mccatch"
	"mccatch/internal/data"
)

func main() {
	for _, scene := range []*data.SatelliteTiles{data.Shanghai(1), data.Volcanoes(1)} {
		fmt.Printf("== %s: %d tiles ==\n", scene.Name, len(scene.Points))
		res, err := mccatch.RunVectors(scene.Points)
		if err != nil {
			log.Fatal(err)
		}
		planted := map[int]int{} // tile -> planted mc id
		for k, mc := range scene.MCs {
			for _, i := range mc {
				planted[i] = k + 1
			}
		}
		for i, mc := range res.Microclusters {
			if i >= 6 {
				fmt.Printf("  ... and %d more\n", len(res.Microclusters)-6)
				break
			}
			kind := fmt.Sprintf("%d-tile group", len(mc.Members))
			if len(mc.Members) == 1 {
				kind = "lone tile"
			}
			note := ""
			if k := planted[mc.Members[0]]; k > 0 {
				note = fmt.Sprintf("  <-- planted unusual-color group #%d", k)
			}
			rgb := scene.Points[mc.Members[0]]
			fmt.Printf("  #%d %-13s score=%6.2f avg RGB≈(%.0f,%.0f,%.0f)%s\n",
				i+1, kind, mc.Score, rgb[0], rgb[1], rgb[2], note)
		}
		fmt.Println()
	}
}
