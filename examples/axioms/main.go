// Axioms example (paper Fig. 2): two microclusters that differ in exactly
// one property — bridge length or cardinality — and MCCATCH's scores
// ranking them the way human intuition demands.
//
//	go run ./examples/axioms
package main

import (
	"fmt"
	"log"

	"mccatch"
	"mccatch/internal/data"
)

func main() {
	for _, axiom := range data.Axioms {
		for _, shape := range data.Shapes {
			sc := data.AxiomDataset(shape, axiom, 5000, 11)
			res, err := mccatch.RunVectors(sc.Points)
			if err != nil {
				log.Fatal(err)
			}
			green, gok := scoreOf(res, sc.Green)
			red, rok := scoreOf(res, sc.Red)
			verdict := "axiom OBEYED"
			if !gok || !rok {
				verdict = "microcluster missed!"
			} else if green <= red {
				verdict = "axiom VIOLATED"
			}
			fmt.Printf("%-28s  green(weirder)=%6.2f  red=%6.2f  -> %s\n", sc.Name, green, red, verdict)
		}
	}
}

// scoreOf finds the detected microcluster holding the majority of the
// planted member set and returns its score.
func scoreOf(res *mccatch.Result, planted []int) (float64, bool) {
	want := map[int]bool{}
	for _, i := range planted {
		want[i] = true
	}
	for _, mc := range res.Microclusters {
		hits := 0
		for _, m := range mc.Members {
			if want[m] {
				hits++
			}
		}
		if hits*2 > len(planted) {
			return mc.Score, true
		}
	}
	return 0, false
}
