// Quickstart: detect microclusters in a small 2-d vector dataset with
// MCCATCH's hands-off defaults.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mccatch"
)

func main() {
	// A dense blob of 1,000 normal points...
	rng := rand.New(rand.NewSource(42))
	var points [][]float64
	for i := 0; i < 1000; i++ {
		points = append(points, []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2})
	}
	// ...a suspicious 5-point microcluster (coalition!)...
	for i := 0; i < 5; i++ {
		points = append(points, []float64{30 + rng.Float64()*0.2, 30 + rng.Float64()*0.2})
	}
	// ...and a lone outlier.
	points = append(points, []float64{-35, 20})

	res, err := mccatch.RunVectors(points)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d microclusters (most-strange-first):\n", len(res.Microclusters))
	for i, mc := range res.Microclusters {
		kind := "microcluster"
		if len(mc.Members) == 1 {
			kind = "'one-off' outlier"
		}
		fmt.Printf("#%d %-18s score=%6.2f bridge=%6.2f members=%v\n",
			i+1, kind, mc.Score, mc.Bridge, mc.Members)
	}
	fmt.Printf("\nexplainability: diameter=%.1f, MDL cutoff d=%.2f at radius bin %d/%d\n",
		res.Diameter, res.Cutoff, res.CutoffIndex+1, len(res.Radii))
}
