// Network intrusion example (paper Fig. 8(ii)): MCCATCH on HTTP-style
// connection logs — bytes sent, bytes received, duration — where a tight
// microcluster of connections marks a coordinated 'DoS back' attack
// exploiting one vulnerability.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"
	"time"

	"mccatch"
	"mccatch/internal/data"
)

func main() {
	// ~11k connections with a planted 30-connection attack cluster.
	logs := data.HTTPLike(0.05, 7)
	fmt.Printf("analyzing %d connections (bytes sent, bytes received, duration)...\n", len(logs.Points))

	start := time.Now()
	res, err := mccatch.RunVectors(logs.Points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v; %d microclusters found\n\n", time.Since(start).Round(time.Millisecond), len(res.Microclusters))

	attack := map[int]bool{}
	for _, i := range logs.DoS {
		attack[i] = true
	}
	for i, mc := range res.Microclusters {
		if i >= 5 {
			break
		}
		hits := 0
		for _, m := range mc.Members {
			if attack[m] {
				hits++
			}
		}
		note := ""
		if hits > 0 {
			note = fmt.Sprintf("  <-- %d/%d are confirmed 'DoS back' attacks", hits, len(mc.Members))
		}
		fmt.Printf("#%d: %3d connections, score %.2f%s\n", i+1, len(mc.Members), mc.Score, note)
	}
}
