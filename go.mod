module mccatch

go 1.23
