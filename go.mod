module mccatch

go 1.24
