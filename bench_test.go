// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. V) at CI-friendly scales, plus micro-benchmarks of the substrates
// and the ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks print their table/series via b.Log on the
// first iteration; cmd/experiments regenerates the full-size versions.
package mccatch_test

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mccatch"
	"mccatch/internal/data"
	"mccatch/internal/eval"
	"mccatch/internal/experiments"
	"mccatch/internal/fractal"
	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/kdtree"
	"mccatch/internal/kernel"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/segment"
	"mccatch/internal/slimtree"
)

func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.004, Seed: 1, Runs: 1}
}

// logged runs an experiment printer once per iteration and logs the first
// output so `-v` shows the regenerated rows.
func logged(b *testing.B, f func(buf *bytes.Buffer)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		f(&buf)
		if i == 0 {
			b.Log(buf.String())
		}
	}
}

// --- One benchmark per table ---

func BenchmarkTable1Specs(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Table1Specs(buf) })
}

func BenchmarkTable2Hyperparams(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Table2Hyperparams(buf) })
}

func BenchmarkTable3Datasets(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Table3Datasets(buf, benchConfig()) })
}

func BenchmarkTable4Accuracy(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.AccuracyReport(buf, benchConfig()) })
}

func BenchmarkTable5Axioms(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Table5Axioms(buf, benchConfig(), 3) })
}

func BenchmarkTable6Runtime(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Table6Runtime(buf, benchConfig()) })
}

// --- One benchmark per figure ---

func BenchmarkFig1Showcase(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Fig1Showcase(buf, benchConfig()) })
}

func BenchmarkFig2Axioms(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Fig2Axioms(buf, benchConfig()) })
}

func BenchmarkFig3OraclePlot(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Fig3OraclePlot(buf, benchConfig()) })
}

func BenchmarkFig7Scalability(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Fig7Scalability(buf, benchConfig(), 4000) })
}

func BenchmarkFig8Showcase(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Fig8Showcase(buf, benchConfig()) })
}

func BenchmarkFig9Sensitivity(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.Fig9Sensitivity(buf, benchConfig()) })
}

// Beyond the paper: the full detector roster, including the Tab. I methods
// the paper lists but does not benchmark.
func BenchmarkExtendedAccuracy(b *testing.B) {
	logged(b, func(buf *bytes.Buffer) { experiments.ExtendedAccuracy(buf, benchConfig()) })
}

// --- Core pipeline at increasing sizes (the Fig. 7 microscope) ---

func benchPipeline(b *testing.B, n, dim int) {
	b.Helper()
	b.ReportAllocs()
	pts := data.Uniform(n, dim, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunVectors(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineN1k2d(b *testing.B)  { benchPipeline(b, 1000, 2) }
func BenchmarkPipelineN4k2d(b *testing.B)  { benchPipeline(b, 4000, 2) }
func BenchmarkPipelineN16k2d(b *testing.B) { benchPipeline(b, 16000, 2) }
func BenchmarkPipelineN4k20d(b *testing.B) { benchPipeline(b, 4000, 20) }

// --- Serial vs parallel pairs (the WithWorkers speedup microscope) ---
//
// Each pair runs the identical workload once pinned to a single worker and
// once across all cores; compare the pair's ns/op to read the speedup. On
// a machine with ≥ 4 cores the parallel RunVectors on 10k points runs ≥ 2×
// faster than its serial twin.

func benchPipelineWorkers(b *testing.B, n, dim, workers int) {
	b.Helper()
	b.ReportAllocs()
	pts := data.Uniform(n, dim, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunVectors(pts, mccatch.WithWorkers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineN10k2dSerial(b *testing.B)   { benchPipelineWorkers(b, 10000, 2, 1) }
func BenchmarkPipelineN10k2dParallel(b *testing.B) { benchPipelineWorkers(b, 10000, 2, 0) }
func BenchmarkPipelineN4k20dSerial(b *testing.B)   { benchPipelineWorkers(b, 4000, 20, 1) }
func BenchmarkPipelineN4k20dParallel(b *testing.B) { benchPipelineWorkers(b, 4000, 20, 0) }

// --- Shard-parallel pipeline (the WithShards microscope) ---
//
// The identical 10k x 2d workload as the Parallel pair above, run
// through the sharded entry point: Sharded1 routes through the exact
// same single-index pipeline (WithShards(1) is the default path), so
// the CI pair gate 'Sharded1 < 1.1*Parallel' pins the option's
// dispatch overhead near zero, while the 2- and 8-shard cells price
// the partition build plus the cross-shard merge. Results are
// deep-equal across all four benchmarks — only the work layout moves.

func benchPipelineSharded(b *testing.B, shards int) {
	b.Helper()
	b.ReportAllocs()
	pts := data.Uniform(10000, 2, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunVectors(pts, mccatch.WithShards(shards)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSharded1(b *testing.B) { benchPipelineSharded(b, 1) }
func BenchmarkPipelineSharded2(b *testing.B) { benchPipelineSharded(b, 2) }
func BenchmarkPipelineSharded8(b *testing.B) { benchPipelineSharded(b, 8) }

func benchKDPipelineWorkers(b *testing.B, n, dim, workers int) {
	b.Helper()
	b.ReportAllocs()
	pts := data.Uniform(n, dim, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunVectorsKD(pts, mccatch.WithWorkers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineKDN10k2dSerial(b *testing.B)   { benchKDPipelineWorkers(b, 10000, 2, 1) }
func BenchmarkPipelineKDN10k2dParallel(b *testing.B) { benchKDPipelineWorkers(b, 10000, 2, 0) }

func BenchmarkKDTreeBuild100kSerial(b *testing.B)   { benchKDBuild(b, 1) }
func BenchmarkKDTreeBuild100kParallel(b *testing.B) { benchKDBuild(b, 0) }

func benchKDBuild(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	pts := randPoints(100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.NewWithWorkers(pts, workers)
	}
}

func BenchmarkRTreeBuild100kSerial(b *testing.B)   { benchRBuild(b, 1) }
func BenchmarkRTreeBuild100kParallel(b *testing.B) { benchRBuild(b, 0) }

func benchRBuild(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	pts := randPoints(100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtree.NewWithWorkers(pts, 0, workers)
	}
}

// BenchmarkPipelineStrings exercises the nondimensional path end to end.
func BenchmarkPipelineStrings(b *testing.B) {
	b.ReportAllocs()
	d := data.LastNames(800, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunStrings(d.Words); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func randPoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// The build pair the CI bench gate watches: the bulk load must stay well
// ahead of the incremental insert path it replaced as the default.
func BenchmarkSlimTreeBuildInsert10k(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimtree.New(metric.Euclidean, 0, pts)
	}
}

func BenchmarkSlimTreeBuildBulk10k(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimtree.NewBulk(metric.Euclidean, 0, pts)
	}
}

// BenchmarkSlimTreeBuildBulk4k is the scale where the bulk loader's
// shared global pivot sample pays off (its cost model builds the shared
// matrix only when it undercuts the per-node matrices it replaces; at
// 10k×2d with the default capacity it declines, at 4k it cuts the
// build's metric evaluations by ~15%).
func BenchmarkSlimTreeBuildBulk4k(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(4000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimtree.NewBulk(metric.Euclidean, 0, pts)
	}
}

// The legacy insertion-built pipeline against the bulk-loaded default —
// the end-to-end read on what the low-overlap tree buys Step II-IV.
func BenchmarkPipelineN10k2dInsertionBuild(b *testing.B) {
	b.ReportAllocs()
	pts := data.Uniform(10000, 2, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunVectors(pts, mccatch.WithWorkers(1), mccatch.WithInsertionBuild()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlimTreeRangeQuery(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	t := slimtree.New(metric.Euclidean, 0, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RangeCount(pts[i%len(pts)], 3.0)
	}
}

func BenchmarkSlimTreeKNN(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	t := slimtree.New(metric.Euclidean, 0, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.KNN(pts[i%len(pts)], 10)
	}
}

// Ablation (DESIGN.md): the kd-tree index against the slim-tree on the
// same vector workload — the paper's footnote 4 trade-off.
func BenchmarkAblationKDTreeRangeQuery(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	t := kdtree.New(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RangeCount(pts[i%len(pts)], 3.0)
	}
}

// Ablation: slim-tree node capacity (split cost vs pruning power).
func BenchmarkAblationTreeCapacity8(b *testing.B)  { benchCapacity(b, 8) }
func BenchmarkAblationTreeCapacity64(b *testing.B) { benchCapacity(b, 64) }

func benchCapacity(b *testing.B, capacity int) {
	b.Helper()
	b.ReportAllocs()
	pts := randPoints(4000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mccatch.RunVectors(pts, mccatch.WithTreeCapacity(capacity)); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the sparse-focused multi-radius join against naive per-radius
// full self-joins (Sec. IV-G's main speed-up principle).
func BenchmarkJoinSparseFocused(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(4000, 2)
	t := slimtree.New(metric.Euclidean, 0, pts)
	radii := geomRadii(t.DiameterEstimate(), 15)
	cap := len(pts) / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join.MultiRadiusCounts(t, pts, radii, cap, true, 0)
	}
}

func BenchmarkJoinNaiveAllRadii(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(4000, 2)
	t := slimtree.New(metric.Euclidean, 0, pts)
	radii := geomRadii(t.DiameterEstimate(), 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range radii {
			join.SelfCounts(t, pts, r, 0)
		}
	}
}

// The single-traversal counter against one RangeCount per radius, on each
// backend — the amortization RangeCountMulti buys at a = 15 nested radii.
// The batched side probes through the buffer-reusing append API, the way
// the joins do: with the arena layouts and pooled traversal scratch a
// steady-state probe performs ZERO allocations (the CI bench gate pins
// allocs/op for these benchmarks).
func BenchmarkMultiCountBatchedSlim(b *testing.B)  { benchMultiCount(b, "slim", true) }
func BenchmarkMultiCountRepeatedSlim(b *testing.B) { benchMultiCount(b, "slim", false) }
func BenchmarkMultiCountBatchedKD(b *testing.B)    { benchMultiCount(b, "kd", true) }
func BenchmarkMultiCountRepeatedKD(b *testing.B)   { benchMultiCount(b, "kd", false) }
func BenchmarkMultiCountBatchedR(b *testing.B)     { benchMultiCount(b, "r", true) }
func BenchmarkMultiCountRepeatedR(b *testing.B)    { benchMultiCount(b, "r", false) }

func benchMultiCount(b *testing.B, kind string, batched bool) {
	b.Helper()
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	var t index.Index[[]float64]
	switch kind {
	case "slim":
		t = slimtree.New(metric.Euclidean, 0, pts)
	case "kd":
		t = kdtree.New(pts)
	case "r":
		t = rtree.New(pts, 0)
	}
	radii := geomRadii(t.DiameterEstimate(), 15)
	buf := make([]int, 0, len(radii)+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := pts[i%len(pts)]
		if batched {
			buf = index.RangeCountMultiAppend(t, q, radii, buf[:0])
		} else {
			for _, r := range radii {
				t.RangeCount(q, r)
			}
		}
	}
}

// The Step II self-join on each backend, gated per-point probes against
// the dual-tree traversal (all three trees implement
// index.SelfMultiCounter as of this PR). Identical matrices, very
// different traversal counts.
func BenchmarkSelfJoinGatedSlim(b *testing.B) { benchSelfJoin(b, "slim", false) }
func BenchmarkSelfJoinDualSlim(b *testing.B)  { benchSelfJoin(b, "slim", true) }
func BenchmarkSelfJoinGatedKD(b *testing.B)   { benchSelfJoin(b, "kd", false) }
func BenchmarkSelfJoinDualKD(b *testing.B)    { benchSelfJoin(b, "kd", true) }
func BenchmarkSelfJoinGatedR(b *testing.B)    { benchSelfJoin(b, "r", false) }
func BenchmarkSelfJoinDualR(b *testing.B)     { benchSelfJoin(b, "r", true) }

func benchSelfJoin(b *testing.B, kind string, dual bool) {
	b.Helper()
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	var t index.Index[[]float64]
	switch kind {
	case "slim":
		t = slimtree.NewBulk(metric.Euclidean, 0, pts)
	case "kd":
		t = kdtree.New(pts)
	case "r":
		t = rtree.New(pts, 0)
	}
	radii := geomRadii(t.DiameterEstimate(), 15)
	cap := len(pts) / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dual {
			join.SelfMultiRadiusCounts(t, pts, radii, cap, true, 1)
		} else {
			join.MultiRadiusCounts(t, pts, radii, cap, true, 1)
		}
	}
}

// The Step IV bridge search on each backend, per-point doubling-chunk
// probes against the cross-set dual-tree join (all three trees implement
// index.CrossMultiCounter as of this PR). 10k x 2d with ~10% outliers —
// the microcluster-heavy split Step IV sees — identical firsts, very
// different traversal counts. The CI bench gate asserts Dual < PerPoint
// per backend within the same run.
func BenchmarkBridgePerPointSlim(b *testing.B) { benchBridge(b, "slim", false) }
func BenchmarkBridgeDualSlim(b *testing.B)     { benchBridge(b, "slim", true) }
func BenchmarkBridgePerPointKD(b *testing.B)   { benchBridge(b, "kd", false) }
func BenchmarkBridgeDualKD(b *testing.B)       { benchBridge(b, "kd", true) }
func BenchmarkBridgePerPointR(b *testing.B)    { benchBridge(b, "r", false) }
func BenchmarkBridgeDualR(b *testing.B)        { benchBridge(b, "r", true) }

// bridgeWorkload fabricates the inlier/outlier split Step IV scores on a
// 10k x 2d dataset: 9k uniform inliers, ~1k outliers in far microclusters
// plus scattered singletons, radii derived from the combined diameter the
// pipeline would use.
func bridgeWorkload() (in, out [][]float64, radii []float64) {
	rng := rand.New(rand.NewSource(17))
	in = make([][]float64, 0, 9000)
	for i := 0; i < 9000; i++ {
		in = append(in, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	out = make([][]float64, 0, 1000)
	for len(out) < 950 { // tight microclusters on a far ring
		cx, cy := 150+rng.Float64()*150, 150+rng.Float64()*150
		for k := 2 + rng.Intn(4); k > 0 && len(out) < 950; k-- {
			out = append(out, []float64{cx + rng.NormFloat64()*0.2, cy + rng.NormFloat64()*0.2})
		}
	}
	for len(out) < 1000 { // scattered singletons, some near the inliers
		out = append(out, []float64{rng.Float64() * 300, rng.Float64() * 300})
	}
	lo, hi := []float64{0, 0}, []float64{0, 0}
	for _, p := range append(append([][]float64{}, in...), out...) {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return in, out, geomRadii(metric.Euclidean(lo, hi), 15)
}

func benchBridge(b *testing.B, kind string, dual bool) {
	b.Helper()
	b.ReportAllocs()
	in, out, radii := bridgeWorkload()
	var t index.Index[[]float64]
	switch kind {
	case "slim":
		t = slimtree.NewBulk(metric.Euclidean, 0, in)
	case "kd":
		t = kdtree.New(in)
	case "r":
		t = rtree.New(in, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dual {
			join.BridgeRadii(t, out, radii, 1)
		} else {
			join.BridgeRadiiPerPoint(t, out, radii, 1)
		}
	}
}

// The incremental-layer query pair the CI bench gate watches: a merged
// steady-state probe (one frozen 9.9k segment + a 100-point memtable,
// i.e. memtable = 1% of n) must stay within 1.3x of the identical probe
// against a single frozen arena, and both must stay at ZERO allocations
// per probe (the pooled scratch and cached memtable tree absorb the
// merge bookkeeping).
func BenchmarkIncrementalQueryFrozen(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	t := rtree.New(pts, 0)
	radii := geomRadii(t.DiameterEstimate(), 15)
	buf := make([]int, 0, len(radii)+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = index.RangeCountMultiAppend(t, pts[i%len(pts)], radii, buf[:0])
	}
}

func BenchmarkIncrementalQueryMerged(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	m := segment.NewMutable(metric.Euclidean, func(sub [][]float64) index.Index[[]float64] {
		return rtree.New(sub, 0)
	}, len(pts)+1)
	for _, p := range pts[:9900] {
		m.Insert(p)
	}
	m.Freeze()
	for _, p := range pts[9900:] {
		m.Insert(p)
	}
	radii := geomRadii(m.DiameterEstimate(), 15)
	buf := make([]int, 0, len(radii)+1)
	buf = m.RangeCountMultiAppend(pts[0], radii, buf[:0]) // warm the lazy memtable tree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.RangeCountMultiAppend(pts[i%len(pts)], radii, buf[:0])
	}
}

// The Step II incremental self-join pair: CountAllMulti over the merged
// layout (the same one frozen 9.9k segment + 100-point memtable split as
// the query pair above) against the identical call on the compacted
// single-segment layout, whose clean segment answers through its native
// dual-tree self-join alone. The merged side resolves the memtable and
// the cross-segment pairs through segment-vs-segment dual-tree cross
// joins; the CI pair gate bounds its overhead at 1.5x the compacted
// twin, so the cross-join path can never rot back toward the per-element
// probe costs it replaced.
func BenchmarkIncrementalCountAllMerged(b *testing.B)    { benchIncrementalCountAll(b, false) }
func BenchmarkIncrementalCountAllCompacted(b *testing.B) { benchIncrementalCountAll(b, true) }

func benchIncrementalCountAll(b *testing.B, compact bool) {
	b.Helper()
	b.ReportAllocs()
	pts := randPoints(10000, 2)
	m := segment.NewMutable(metric.Euclidean, func(sub [][]float64) index.Index[[]float64] {
		return rtree.New(sub, 0)
	}, len(pts)+1)
	for _, p := range pts[:9900] {
		m.Insert(p)
	}
	m.Freeze()
	for _, p := range pts[9900:] {
		m.Insert(p)
	}
	if compact {
		m.Compact()
	}
	radii := geomRadii(m.DiameterEstimate(), 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CountAllMulti(radii, 0)
	}
}

func geomRadii(l float64, a int) []float64 {
	radii := make([]float64, a)
	for e := 0; e < a; e++ {
		radii[e] = l
		for k := 0; k < a-1-e; k++ {
			radii[e] /= 2
		}
	}
	return radii
}

func BenchmarkFractalDimension(b *testing.B) {
	b.ReportAllocs()
	pts := randPoints(5000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fractal.Dimension(pts, metric.Euclidean, fractal.Options{Seed: 1})
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metric.Levenshtein("brzezinski", "breszinsky")
	}
}

func BenchmarkAUROC(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(9))
	scores := make([]float64, 100000)
	labels := make([]bool, len(scores))
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(100) == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.AUROC(scores, labels)
	}
}

// Ablation: the Slim-tree's slim-down reorganization (paper substrate
// feature) against the plain build on clustered data.
func BenchmarkAblationSlimDownOff(b *testing.B) { benchSlimDown(b, 0) }
func BenchmarkAblationSlimDownOn(b *testing.B)  { benchSlimDown(b, 3) }

func benchSlimDown(b *testing.B, passes int) {
	b.Helper()
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	var pts [][]float64
	for len(pts) < 6000 {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 30; i++ {
			pts = append(pts, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var opts []mccatch.Option
		if passes > 0 {
			opts = append(opts, mccatch.WithSlimDown(passes))
		}
		if _, err := mccatch.RunVectors(pts, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// The backend sweep behind RunVectors' default choice (2d/8d x 4k/10k,
// serial so the numbers read as pure per-backend cost): the R-tree wins
// three of the four cells and nearly ties the kd-tree on the fourth,
// while the kd-tree collapses at 8 dimensions — see BENCH_5.json and
// the README backend notes for recorded medians.
func BenchmarkSweepSlim4k2d(b *testing.B)  { benchSweep(b, "slim", 4000, 2) }
func BenchmarkSweepKD4k2d(b *testing.B)    { benchSweep(b, "kd", 4000, 2) }
func BenchmarkSweepR4k2d(b *testing.B)     { benchSweep(b, "r", 4000, 2) }
func BenchmarkSweepSlim10k2d(b *testing.B) { benchSweep(b, "slim", 10000, 2) }
func BenchmarkSweepKD10k2d(b *testing.B)   { benchSweep(b, "kd", 10000, 2) }
func BenchmarkSweepR10k2d(b *testing.B)    { benchSweep(b, "r", 10000, 2) }
func BenchmarkSweepSlim4k8d(b *testing.B)  { benchSweep(b, "slim", 4000, 8) }
func BenchmarkSweepKD4k8d(b *testing.B)    { benchSweep(b, "kd", 4000, 8) }
func BenchmarkSweepR4k8d(b *testing.B)     { benchSweep(b, "r", 4000, 8) }
func BenchmarkSweepSlim10k8d(b *testing.B) { benchSweep(b, "slim", 10000, 8) }
func BenchmarkSweepKD10k8d(b *testing.B)   { benchSweep(b, "kd", 10000, 8) }
func BenchmarkSweepR10k8d(b *testing.B)    { benchSweep(b, "r", 10000, 8) }

// The 32d column re-measures the sweep far past the kd-tree's useful
// dimensionality (ROADMAP (g)): box-bound pruning is near-dead up here,
// so the cells mostly price raw leaf-scan arithmetic — the distance
// kernels' home turf.
func BenchmarkSweepSlim4k32d(b *testing.B) { benchSweep(b, "slim", 4000, 32) }
func BenchmarkSweepKD4k32d(b *testing.B)   { benchSweep(b, "kd", 4000, 32) }
func BenchmarkSweepR4k32d(b *testing.B)    { benchSweep(b, "r", 4000, 32) }

// The block kernels against the per-point scalar loop they replaced
// (PR 7): one query counted against 4096 contiguous arena slots at a
// mid-density radius. The Kernel side is kernel.CountRange with the
// freeze-time quantized summary — blocks the summary proves out of
// range never reach exact arithmetic — and the Scalar side is the
// metric.SquaredEuclidean-per-slot loop the leaf scans used to run. CI
// gates Kernel < Scalar per dimension (hardware-independent) on top of
// the absolute baselines.
func BenchmarkKernel2d(b *testing.B)       { benchKernel(b, 2, true) }
func BenchmarkKernelScalar2d(b *testing.B) { benchKernel(b, 2, false) }
func BenchmarkKernel8d(b *testing.B)       { benchKernel(b, 8, true) }
func BenchmarkKernelScalar8d(b *testing.B) { benchKernel(b, 8, false) }

// 32d exercises the generic (non-specialized) kernel fallback — the
// width the 4k×32d sweep cells run through. Not CI-gated.
func BenchmarkKernel32d(b *testing.B)       { benchKernel(b, 32, true) }
func BenchmarkKernelScalar32d(b *testing.B) { benchKernel(b, 32, false) }

func benchKernel(b *testing.B, dim int, kernelized bool) {
	b.Helper()
	b.ReportAllocs()
	const n = 4096
	pts := data.Uniform(n, dim, 1).Points
	// Strip-sort so consecutive slots are spatially local, as they are in
	// the arenas' preorder/STR layouts — without it every 8-slot block
	// spans the whole space and the summary can never prune.
	sort.Slice(pts, func(i, j int) bool {
		si, sj := math.Floor(pts[i][0]*16), math.Floor(pts[j][0]*16)
		if si != sj {
			return si < sj
		}
		return pts[i][1] < pts[j][1]
	})
	flat := make([]float64, 0, n*dim)
	for _, p := range pts {
		flat = append(flat, p...)
	}
	sum := kernel.NewSummary(flat, dim, n)
	q := pts[n/2]
	r2 := 0.02 * float64(dim)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if kernelized {
			sink += kernel.CountRange(sum, q, flat, 0, n, r2)
		} else {
			c := 0
			for j := 0; j < n; j++ {
				if metric.SquaredEuclidean(q, flat[j*dim:(j+1)*dim]) <= r2 {
					c++
				}
			}
			sink += c
		}
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

func benchSweep(b *testing.B, kind string, n, dim int) {
	b.Helper()
	b.ReportAllocs()
	pts := data.Uniform(n, dim, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		switch kind {
		case "slim":
			_, err = mccatch.RunVectorsSlim(pts, mccatch.WithWorkers(1))
		case "kd":
			_, err = mccatch.RunVectorsKD(pts, mccatch.WithWorkers(1))
		case "r":
			_, err = mccatch.RunVectorsR(pts, mccatch.WithWorkers(1))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the full pipeline on each of the three vector indexes the
// paper names (slim-tree, kd-tree, R-tree).
func BenchmarkAblationPipelineSlimTree(b *testing.B) { benchIndexPipeline(b, "slim") }
func BenchmarkAblationPipelineKDTree(b *testing.B)   { benchIndexPipeline(b, "kd") }
func BenchmarkAblationPipelineRTree(b *testing.B)    { benchIndexPipeline(b, "r") }

func benchIndexPipeline(b *testing.B, kind string) {
	b.Helper()
	b.ReportAllocs()
	pts := data.Uniform(4000, 2, 1).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		switch kind {
		case "slim":
			_, err = mccatch.RunVectors(pts)
		case "kd":
			_, err = mccatch.RunVectorsKD(pts)
		case "r":
			_, err = mccatch.RunVectorsR(pts)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
