package mccatch

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestRunVectorsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts [][]float64
	for i := 0; i < 500; i++ {
		pts = append(pts, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	// Plant a 4-point microcluster and a lone outlier.
	for i := 0; i < 4; i++ {
		pts = append(pts, []float64{40 + rng.Float64()*0.1, 40 + rng.Float64()*0.1})
	}
	pts = append(pts, []float64{-40, 40})

	res, err := RunVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Microclusters) == 0 {
		t.Fatal("no microclusters found")
	}
	foundMC, foundSingle := false, false
	for _, mc := range res.Microclusters {
		if len(mc.Members) == 4 && mc.Members[0] == 500 {
			foundMC = true
		}
		if len(mc.Members) == 1 && mc.Members[0] == 504 {
			foundSingle = true
		}
	}
	if !foundMC {
		t.Errorf("planted 4-point mc not found: %v", res.Microclusters)
	}
	if !foundSingle {
		t.Errorf("planted singleton not found: %v", res.Microclusters)
	}
	if len(res.PointScores) != len(pts) {
		t.Error("missing point scores")
	}
}

func TestRunStringsEndToEnd(t *testing.T) {
	var words []string
	for i := 0; i < 30; i++ {
		words = append(words, "johnson", "jonson", "johnsen")
	}
	words = append(words, "przybyszewski")
	res, err := RunStrings(words)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			if m == len(words)-1 {
				caught = true
			}
		}
	}
	if !caught {
		t.Errorf("string outlier not caught: %v", res.Microclusters)
	}
}

func TestOptionsArePassedThrough(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {50, 50}}
	res, err := RunVectors(pts, WithRadii(10), WithMaxSlope(0.2), WithMaxCardinality(2), WithTreeCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.NumRadii != 10 || res.Params.MaxSlope != 0.2 || res.Params.MaxCardinality != 2 {
		t.Errorf("options not applied: %+v", res.Params)
	}
	if len(res.Radii) != 10 {
		t.Errorf("expected 10 radii, got %d", len(res.Radii))
	}
}

func TestRunGraphs(t *testing.T) {
	// Many path graphs plus a few stars: the stars should stand out.
	var graphs []Graph
	for i := 0; i < 40; i++ {
		graphs = append(graphs, NewGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}))
	}
	starStart := len(graphs)
	for i := 0; i < 2; i++ {
		graphs = append(graphs, NewGraph(8, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}}))
	}
	res, err := Run(graphs, GraphDistance, WithCustomCost(4))
	if err != nil {
		t.Fatal(err)
	}
	caught := map[int]bool{}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			caught[m] = true
		}
	}
	for i := starStart; i < len(graphs); i++ {
		if !caught[i] {
			t.Errorf("star graph %d not flagged; mcs=%v", i, res.Microclusters)
		}
	}
}

func TestRunPointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sets []PointSet
	for i := 0; i < 40; i++ {
		s := make(PointSet, 20)
		for j := range s {
			s[j] = []float64{float64(j) + rng.Float64()*0.05, 0}
		}
		sets = append(sets, s)
	}
	// A "partial print": only a quarter of the points.
	partial := make(PointSet, 5)
	for j := range partial {
		partial[j] = []float64{float64(j), 0}
	}
	sets = append(sets, partial)
	res, err := Run(sets, Hausdorff, WithCustomCost(2))
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			if m == len(sets)-1 {
				caught = true
			}
		}
	}
	if !caught {
		t.Errorf("partial point set not flagged; mcs=%v", res.Microclusters)
	}
}

func TestKDTreeIndexMatchesSlimTree(t *testing.T) {
	// Both indexes answer exact range counts, so the pipeline must produce
	// identical microclusters and scores whichever one backs it.
	rng := rand.New(rand.NewSource(9))
	var pts [][]float64
	for i := 0; i < 800; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	for i := 0; i < 4; i++ {
		pts = append(pts, []float64{60 + rng.Float64()*0.1, 60 + rng.Float64()*0.1})
	}
	pts = append(pts, []float64{-70, 0})

	slim, err := RunVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := RunVectorsKD(pts)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := RunVectorsR(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The diameter estimates differ (pivot-based vs bounding box), so the
	// radii schedules and cutoffs can differ slightly; what must agree is
	// the recovered planted structure: the 4-point mc and the singleton.
	for name, r := range map[string]*Result{"slim": slim, "kd": kd, "r": rt} {
		var gotMC, gotSingle bool
		for _, mc := range r.Microclusters {
			if len(mc.Members) == 4 && mc.Members[0] == 800 {
				gotMC = true
			}
			if len(mc.Members) == 1 && mc.Members[0] == 804 {
				gotSingle = true
			}
		}
		if !gotMC || !gotSingle {
			t.Errorf("%s-tree run missed planted structure: mc=%v single=%v (mcs=%v)",
				name, gotMC, gotSingle, r.Microclusters)
		}
	}
}

// TestRunVectorsDefaultBackend pins the backend dispatch of RunVectors:
// by default it runs on the R-tree (byte-identical to RunVectorsR), a
// slim-specific option pins it back to the slim-tree (byte-identical to
// RunVectorsSlim with the same option), and RunVectorsSlim is the
// always-slim path (byte-identical to the generic Run under the
// Euclidean metric with the vector cost).
func TestRunVectorsDefaultBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var pts [][]float64
	for i := 0; i < 300; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	pts = append(pts, []float64{55, 55})

	def, err := RunVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := RunVectorsR(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, rt) {
		t.Error("RunVectors must run on the R-tree by default (Result differs from RunVectorsR)")
	}

	slim, err := RunVectorsSlim(pts, WithTreeCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := RunVectors(pts, WithTreeCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slim, pinned) {
		t.Error("a slim-specific option must pin RunVectors to the slim-tree")
	}

	gen, err := Run(pts, Euclidean, WithVectorCost(2))
	if err != nil {
		t.Fatal(err)
	}
	slimPlain, err := RunVectorsSlim(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gen, slimPlain) {
		t.Error("RunVectorsSlim must match the generic slim-tree Run")
	}

	// And the backends agree on the detected structure end to end.
	if !reflect.DeepEqual(def.Microclusters, slimPlain.Microclusters) {
		t.Error("R-tree and slim-tree runs disagree on the microclusters")
	}
}

func TestRunVectorsRejectsBadInput(t *testing.T) {
	if _, err := RunVectors([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged dimensions should error")
	}
	if _, err := RunVectors([][]float64{{1, math.NaN()}, {3, 4}}); err == nil {
		t.Error("NaN values should error")
	}
	if _, err := RunVectors([][]float64{{1, 2}, {math.Inf(1), 4}}); err == nil {
		t.Error("Inf values should error")
	}
	if _, err := RunVectorsKD([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("KD variant should validate too")
	}
	if _, err := RunVectors(nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestWithSlimDownSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var pts [][]float64
	for i := 0; i < 700; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2})
	}
	pts = append(pts, []float64{50, 50}, []float64{50.1, 50.1}, []float64{-60, 0})
	plain, err := RunVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	slim, err := RunVectors(pts, WithSlimDown(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Microclusters) != len(slim.Microclusters) {
		t.Fatalf("slim-down changed results: %d vs %d mcs", len(plain.Microclusters), len(slim.Microclusters))
	}
	// Slim-down tightens the root covering radii, so the diameter estimate
	// (and with it the radii schedule and exact scores) may shift by a hair;
	// memberships must be identical and scores within 5%.
	for i := range plain.Microclusters {
		a, b := plain.Microclusters[i], slim.Microclusters[i]
		if len(a.Members) != len(b.Members) {
			t.Fatalf("slim-down changed mc %d membership: %+v vs %+v", i, a, b)
		}
		for k := range a.Members {
			if a.Members[k] != b.Members[k] {
				t.Fatalf("slim-down changed mc %d members", i)
			}
		}
		if rel := (a.Score - b.Score) / a.Score; rel > 0.05 || rel < -0.05 {
			t.Fatalf("slim-down moved mc %d score by %v%%", i, rel*100)
		}
	}
}

func TestRunTreesWithEditDistance(t *testing.T) {
	// Rooted skeleton trees under the exact Zhang-Shasha distance: the
	// quadrupeds must be flagged among the bipeds.
	mk := func(arms, legs int, tail bool) *MetricTree {
		root := &MetricTree{Label: 't'}
		chain := func(l rune, n int) *MetricTree {
			t := &MetricTree{Label: l}
			cur := t
			for i := 1; i < n; i++ {
				c := &MetricTree{Label: l}
				cur.Children = []*MetricTree{c}
				cur = c
			}
			return t
		}
		for i := 0; i < arms; i++ {
			root.Children = append(root.Children, chain('a', 3))
		}
		for i := 0; i < legs; i++ {
			root.Children = append(root.Children, chain('l', 3))
		}
		if tail {
			root.Children = append(root.Children, chain('q', 3))
		}
		return root
	}
	var trees []*MetricTree
	for i := 0; i < 40; i++ {
		trees = append(trees, mk(2, 2, false)) // bipeds
	}
	wildStart := len(trees)
	trees = append(trees, mk(0, 4, true), mk(0, 4, true)) // quadrupeds with tails
	res, err := Run(trees, TreeEditDistance, WithCustomCost(3))
	if err != nil {
		t.Fatal(err)
	}
	caught := map[int]bool{}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			caught[m] = true
		}
	}
	for i := wildStart; i < len(trees); i++ {
		if !caught[i] {
			t.Errorf("quadruped tree %d not flagged; mcs=%v", i, res.Microclusters)
		}
	}
}

// TestWithWorkersIdenticalResults exercises the public plumbing of the
// concurrency option end to end: for each Run* entry point, WithWorkers(k)
// must return a Result deep-equal to the serial run (the exhaustive
// per-backend property tests live in internal/core; this guards the
// Option → Params → builder wiring).
func TestWithWorkersIdenticalResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var pts [][]float64
	for i := 0; i < 900; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	for i := 0; i < 3; i++ {
		pts = append(pts, []float64{55 + rng.Float64()*0.1, 55 + rng.Float64()*0.1})
	}
	words := []string{"anna", "anne", "annie", "anna", "hannah", "ann", "anina",
		"bob", "bobby", "robert", "roberta", "xqzwjvk9017253"}

	runs := map[string]func(k int) (*Result, error){
		"RunVectors":   func(k int) (*Result, error) { return RunVectors(pts, WithWorkers(k)) },
		"RunVectorsKD": func(k int) (*Result, error) { return RunVectorsKD(pts, WithWorkers(k)) },
		"RunVectorsR":  func(k int) (*Result, error) { return RunVectorsR(pts, WithWorkers(k)) },
		"RunStrings":   func(k int) (*Result, error) { return RunStrings(words, WithWorkers(k)) },
	}
	for name, run := range runs {
		serial, err := run(1)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, k := range []int{2, 8} {
			par, err := run(k)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, k, err)
			}
			serial.Params.Workers, par.Params.Workers = 0, 0
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s: workers=%d differs from serial", name, k)
			}
		}
	}
}
