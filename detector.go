package mccatch

// Detector is the build-once/query-many handle behind the one-shot Run*
// functions: it owns the full index over one dataset, the hyperparameters
// fixed at construction, and (lazily) the radii schedule derived from the
// indexed data's diameter. Construct one with Build/BuildVectors*/
// BuildStrings, or reopen a saved index with OpenVectors/OpenStrings;
// then call Detect any number of times, Probe for single-element
// neighbor-count curves, and Save/WriteFile to persist the index.
//
// Detect on a Detector is byte-identical to the corresponding one-shot
// Run* call over the same data and options — the wrappers are literally
// build-then-detect — and a Detector reopened from a file detects
// byte-identically to the Detector that saved it, whether the file is
// mmap-backed or heap-loaded.
//
// Read-concurrency contract: once constructed, a Detector is safe for
// ANY number of concurrent readers — Detect, Probe, ProbeAppend, Radii,
// Items and Size may all run at the same time from different goroutines
// with no external locking. The index arenas are immutable after
// construction, every traversal keeps its scratch in per-call or pooled
// per-worker state, and the one piece of lazily derived shared state
// (the cached radii schedule) initializes under a sync.Once. The serving
// layer (internal/serve) relies on this contract to fan read traffic out
// without a lock; TestDetectorConcurrentReads hammers it under -race on
// built, mmap-opened and heap-opened detectors.
//
// Close is NOT a read: it unmaps the index file of an opened detector,
// so it must not race with in-flight reads — quiesce readers first (an
// http server Shutdown, a WaitGroup, ...). Close is idempotent, and any
// Detect/Probe/ProbeAppend issued after it fails with ErrDetectorClosed
// instead of touching the released mapping.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mccatch/internal/arena"
	"mccatch/internal/core"
	"mccatch/internal/index"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/parallel"
	"mccatch/internal/rtree"
	"mccatch/internal/shard"
	"mccatch/internal/slimtree"
)

// ErrDetectorClosed is returned by Detect/Probe/ProbeAppend on a Detector
// whose Close has run: the index (and, for an opened detector, the file
// mapping behind it) is no longer available.
var ErrDetectorClosed = fmt.Errorf("mccatch: detector is closed")

// Index-file error sentinels, re-exported so callers can errors.Is
// against the failure classes OpenVectors/OpenStrings report.
var (
	// ErrBadIndexFile: the file is not an index file, or its structure is
	// inconsistent (bad magic, malformed column table, broken invariants).
	ErrBadIndexFile = arena.ErrBadIndexFile
	// ErrIndexVersion: the file's format version is newer than this
	// library understands.
	ErrIndexVersion = arena.ErrIndexVersion
	// ErrTruncatedIndex: the file ends before its declared contents.
	ErrTruncatedIndex = arena.ErrTruncated
	// ErrIndexChecksum: a column's checksum does not match its bytes.
	ErrIndexChecksum = arena.ErrChecksum
	// ErrIndexKind: the file is a valid index of a different kind than
	// the opener expected (e.g. a string index passed to OpenVectors).
	ErrIndexKind = arena.ErrIndexKind
)

// Detector is a built or opened MCCATCH index plus its fixed
// hyperparameters. The zero value is not usable; see the constructors.
type Detector[T any] struct {
	items   []T
	tree    index.Index[T]
	builder index.Builder[T]
	params  core.Params

	// Sharded state (WithShards(n), n > 1): the partition and one index
	// per part, built once here and reused by every Detect. tree is nil
	// exactly when set is non-nil; the derived reads (Radii, Probe)
	// answer from the partition instead.
	set    *shard.Set[T]
	strees []index.Index[T]

	// radii caches the derived schedule; radiiOnce makes the lazy
	// derivation safe under concurrent readers (the read-concurrency
	// contract above).
	radiiOnce sync.Once
	radii     []float64

	// closed flips once in Close; reads check it before touching the
	// tree so a post-Close call errors instead of faulting on an
	// unmapped arena.
	closed atomic.Bool
}

// Build indexes items under dist with a bulk-loaded slim-tree — the
// generic-metric backend every element type supports — and returns the
// detector handle. Options are validated here and fixed for the
// detector's lifetime.
func Build[T any](items []T, dist Distance[T], opts ...Option) (*Detector[T], error) {
	var p core.Params
	if err := applyOptions(&p, opts); err != nil {
		return nil, err
	}
	resolveSlimCapacity(&p)
	return newDetector(items, dist, core.SlimBuilder(dist, p), p, false), nil
}

// newDetector finishes every Build* constructor: single-index mode
// builds the one full tree; sharded mode (params.Shards > 1) cuts the
// dataset with the deterministic partitioner and builds one index per
// part instead. euclidean declares dist is the Euclidean metric on
// vectors (selecting the tile cut; see shard.Build).
func newDetector[T any](items []T, dist metric.Distance[T], builder index.Builder[T], p core.Params, euclidean bool) *Detector[T] {
	if p.Shards > 1 {
		set := shard.Build(items, dist, p.Shards, p.Workers, euclidean)
		strees := make([]index.Index[T], len(set.Parts))
		parallel.For(p.Workers, len(strees), func(s int) {
			strees[s] = builder(set.Parts[s].Items)
		})
		return &Detector[T]{items: items, builder: builder, params: p, set: set, strees: strees}
	}
	return &Detector[T]{items: items, tree: builder(items), builder: builder, params: p}
}

// resolveSlimCapacity pins the node capacity a slim-tree backend will
// actually use into the params. Detectors reopened from a saved index
// learn the capacity from the file header, so the building side must
// record the resolved value (not the 0 placeholder) for the two to
// behave — and echo their params — identically.
func resolveSlimCapacity(p *core.Params) {
	if p.TreeCapacity < 4 {
		p.TreeCapacity = slimtree.DefaultCapacity
	}
}

// BuildVectors indexes vector data for detection under the Euclidean
// distance with the transformation cost set to the dimensionality — the
// counterpart of RunVectors, down to the same backend choice: the STR
// bulk-loaded R-tree unless a slim-tree-specific option
// (WithTreeCapacity, WithInsertionBuild, WithSlimDown) moves it to the
// slim-tree. Points must share one dimension and be free of
// NaN/Inf values.
func BuildVectors(points [][]float64, opts ...Option) (*Detector[[]float64], error) {
	p, err := vectorParams(points, opts)
	if err != nil {
		return nil, err
	}
	if p.TreeCapacity != 0 || p.InsertionBuild || p.SlimDownPasses > 0 {
		resolveSlimCapacity(&p)
		return newDetector(points, metric.Euclidean, core.SlimBuilder(metric.Euclidean, p), p, true), nil
	}
	return buildVectorsR(points, p, 0)
}

// BuildVectorsSlim is BuildVectors pinned to the slim-tree backend
// (RunVectorsSlim's counterpart).
func BuildVectorsSlim(points [][]float64, opts ...Option) (*Detector[[]float64], error) {
	p, err := vectorParams(points, opts)
	if err != nil {
		return nil, err
	}
	resolveSlimCapacity(&p)
	return newDetector(points, metric.Euclidean, core.SlimBuilder(metric.Euclidean, p), p, true), nil
}

// BuildVectorsKD is BuildVectors pinned to the kd-tree backend
// (RunVectorsKD's counterpart).
func BuildVectorsKD(points [][]float64, opts ...Option) (*Detector[[]float64], error) {
	p, err := vectorParams(points, opts)
	if err != nil {
		return nil, err
	}
	builder := func(sub [][]float64) index.Index[[]float64] { return kdtree.NewWithWorkers(sub, p.Workers) }
	return newDetector(points, metric.Euclidean, builder, p, true), nil
}

// BuildVectorsR is BuildVectors pinned to the R-tree backend
// (RunVectorsR's counterpart).
func BuildVectorsR(points [][]float64, opts ...Option) (*Detector[[]float64], error) {
	p, err := vectorParams(points, opts)
	if err != nil {
		return nil, err
	}
	return buildVectorsR(points, p, 0)
}

func buildVectorsR(points [][]float64, p core.Params, fanout int) (*Detector[[]float64], error) {
	builder := func(sub [][]float64) index.Index[[]float64] { return rtree.NewWithWorkers(sub, fanout, p.Workers) }
	return newDetector(points, metric.Euclidean, builder, p, true), nil
}

// vectorParams validates the points, seeds the vector transformation
// cost, and applies the caller's options on top (so an explicit cost
// option still wins).
func vectorParams(points [][]float64, opts []Option) (core.Params, error) {
	var p core.Params
	dim, err := validateVectors(points)
	if err != nil {
		return p, err
	}
	if dim > 0 {
		p.Cost = metric.VectorCost(dim)
	}
	if err := applyOptions(&p, opts); err != nil {
		return p, err
	}
	return p, nil
}

// BuildStrings indexes words under the Levenshtein edit distance with the
// word transformation cost derived from the data itself — RunStrings'
// counterpart.
func BuildStrings(words []string, opts ...Option) (*Detector[string], error) {
	var p core.Params
	if len(words) > 0 {
		if err := DeriveWordCost(words)(&p); err != nil {
			return nil, err
		}
	}
	if err := applyOptions(&p, opts); err != nil {
		return nil, err
	}
	resolveSlimCapacity(&p)
	return newDetector(words, metric.Levenshtein, core.SlimBuilder(metric.Levenshtein, p), p, false), nil
}

// OpenVectors opens a vector index file written by Save/WriteFile —
// kd-tree, R-tree, or vector slim-tree; the header says which — and
// returns a ready Detector over it. The file is mmap-backed where the
// platform allows (the hot upper tree levels stay resident, cold leaf
// pages fault in on demand) and read into the heap otherwise, with
// identical query results either way. The dataset itself is
// reconstructed as views into the mapping — no separate copy of the
// points is loaded. Options apply on top of the vector defaults exactly
// as in BuildVectors; Close releases the mapping.
func OpenVectors(path string, opts ...Option) (*Detector[[]float64], error) {
	return openVectors(path, nil, opts)
}

// openVectors is OpenVectors with explicit arena options, so tests (and
// platforms without mmap) can pin the heap-read backing.
func openVectors(path string, aopts []arena.Option, opts []Option) (*Detector[[]float64], error) {
	kind, err := arena.ReadKind(path)
	if err != nil {
		return nil, err
	}
	var (
		tree    index.Index[[]float64]
		items   [][]float64
		dim     int
		slimCap int
		builder func(p core.Params) index.Builder[[]float64]
	)
	switch kind {
	case arena.KindKD:
		t, err := kdtree.Open(path, aopts...)
		if err != nil {
			return nil, err
		}
		tree, items, dim = t, t.Items(), t.Dim()
		builder = func(p core.Params) index.Builder[[]float64] {
			return func(sub [][]float64) index.Index[[]float64] { return kdtree.NewWithWorkers(sub, p.Workers) }
		}
	case arena.KindR:
		t, err := rtree.Open(path, aopts...)
		if err != nil {
			return nil, err
		}
		tree, items, dim = t, t.Items(), t.Dim()
		builder = func(p core.Params) index.Builder[[]float64] {
			return func(sub [][]float64) index.Index[[]float64] { return rtree.NewWithWorkers(sub, t.Fanout(), p.Workers) }
		}
	case arena.KindSlimVec:
		t, err := slimtree.OpenVec(path, aopts...)
		if err != nil {
			return nil, err
		}
		tree, items, slimCap = t, t.Items(), t.Capacity()
		if len(items) > 0 {
			dim = len(items[0])
		}
		builder = func(p core.Params) index.Builder[[]float64] {
			return core.SlimBuilder(metric.Euclidean, p)
		}
	default:
		return nil, fmt.Errorf("%w: %s index in %s, want a vector index", arena.ErrIndexKind, kind, path)
	}
	var p core.Params
	if dim > 0 {
		p.Cost = metric.VectorCost(dim)
	}
	if err := applyOptions(&p, opts); err != nil {
		closeIndex(tree)
		return nil, err
	}
	if p.Shards > 1 {
		closeIndex(tree)
		return nil, fmt.Errorf("mccatch: WithShards(%d) cannot apply to an opened index file; sharded detectors are built in memory", p.Shards)
	}
	// A slim-backed file records the capacity it was built with; adopt it
	// unless an explicit option overrode it, so the reopened detector's
	// throwaway trees — and its echoed params — match the saving one's.
	if slimCap > 0 && p.TreeCapacity == 0 {
		p.TreeCapacity = slimCap
	}
	return &Detector[[]float64]{items: items, tree: tree, builder: builder(p), params: p}, nil
}

// OpenStrings opens a string index file written by Save/WriteFile and
// returns a ready Detector over it, under the Levenshtein edit distance
// with the word cost re-derived from the reconstructed words — exactly
// the configuration BuildStrings fixes, so detection results match the
// saving detector's. Options apply on top; Close releases the mapping.
func OpenStrings(path string, opts ...Option) (*Detector[string], error) {
	t, err := slimtree.OpenStr(path, metric.Levenshtein)
	if err != nil {
		return nil, err
	}
	items := t.Items()
	var p core.Params
	if len(items) > 0 {
		if err := DeriveWordCost(items)(&p); err != nil {
			t.Close()
			return nil, err
		}
	}
	if err := applyOptions(&p, opts); err != nil {
		t.Close()
		return nil, err
	}
	if p.Shards > 1 {
		t.Close()
		return nil, fmt.Errorf("mccatch: WithShards(%d) cannot apply to an opened index file; sharded detectors are built in memory", p.Shards)
	}
	// As in OpenVectors: adopt the saved tree's capacity unless an
	// explicit option overrode it.
	if p.TreeCapacity == 0 {
		p.TreeCapacity = t.Capacity()
	}
	builder := core.SlimBuilder(metric.Levenshtein, p)
	return &Detector[string]{items: items, tree: t, builder: builder, params: p}, nil
}

// Detect runs the full MCCATCH pipeline over the indexed dataset and
// returns the ranked microclusters. The full index is never rebuilt —
// only the small throwaway trees of Steps III and IV are constructed per
// call — so repeated detections (or a detection over a freshly opened
// index file) skip the dominant build cost.
func (d *Detector[T]) Detect() (*Result, error) {
	if d.closed.Load() {
		return nil, ErrDetectorClosed
	}
	if d.set != nil {
		return core.RunShardedPrebuilt(d.items, d.set, d.strees, d.builder, d.params)
	}
	return core.RunPrebuilt(d.items, d.tree, d.builder, d.params)
}

// Size returns the number of indexed elements.
func (d *Detector[T]) Size() int {
	if d.set != nil {
		return len(d.items)
	}
	return d.tree.Size()
}

// Items returns the indexed elements in id order — the slice Detect's
// Result indices refer to. For opened vector detectors the elements are
// read-only views into the index mapping.
func (d *Detector[T]) Items() []T { return d.items }

// Radii returns the detector's neighborhood radii schedule (ascending;
// last = estimated diameter), the schedule Detect uses and Probe counts
// at. It is derived once and cached; nil when the dataset is empty or
// has zero diameter.
func (d *Detector[T]) Radii() []float64 {
	d.radiiOnce.Do(func() {
		if d.closed.Load() {
			return // the mapping may be gone; leave the schedule nil
		}
		a := d.params.NumRadii
		if a == 0 {
			a = core.DefaultNumRadii
		}
		l := 0.0
		if d.set != nil {
			l = d.set.Diam // what a single full index would estimate
		} else {
			l = d.tree.DiameterEstimate()
		}
		if l > 0 {
			d.radii = core.MakeRadii(l, a)
		}
	})
	return d.radii
}

// Probe returns q's neighbor count at every radius of the detector's
// schedule — the raw neighbor-count curve MCCATCH's Step II reads
// plateaus from — in one index traversal. It allocates only the result
// slice, never a per-point pipeline state, so it is the cheap
// query-many path for a detector opened from a large index file. The
// counts are nil (with a nil error) when the dataset is empty or has
// zero diameter; after Close it reports ErrDetectorClosed.
func (d *Detector[T]) Probe(q T) ([]int, error) {
	return d.ProbeAppend(q, nil)
}

// ProbeAppend is the allocation-free form of Probe: the counts append
// into dst, reusing its capacity, so a hot loop recycling one scratch
// slice pays zero steady-state allocations per probe (the serving
// layer's coalesced score-point batches run on this path).
func (d *Detector[T]) ProbeAppend(q T, dst []int) ([]int, error) {
	if d.closed.Load() {
		return dst, ErrDetectorClosed
	}
	radii := d.Radii()
	if len(radii) == 0 {
		return dst, nil
	}
	if d.set != nil {
		// The global curve is the elementwise sum of per-shard curves —
		// exact, because the parts partition the dataset.
		base := len(dst)
		dst = index.RangeCountMultiAppend(d.strees[0], q, radii, dst)
		tmp := make([]int, 0, len(radii))
		for _, t := range d.strees[1:] {
			tmp = index.RangeCountMultiAppend(t, q, radii, tmp[:0])
			for e, c := range tmp {
				dst[base+e] += c
			}
		}
		return dst, nil
	}
	return index.RangeCountMultiAppend(d.tree, q, radii, dst), nil
}

// Save writes the detector's index (structure, data, and prefilters —
// everything queries touch) to w in the versioned arena format. Only
// the bundled backends persist; a detector over a custom index type
// reports an error.
func (d *Detector[T]) Save(w io.Writer) error {
	if d.closed.Load() {
		return ErrDetectorClosed
	}
	if d.set != nil {
		return fmt.Errorf("mccatch: a sharded detector has no on-disk format; build with WithShards(1) to save")
	}
	switch t := any(d.tree).(type) {
	case *kdtree.Tree:
		return t.Save(w)
	case *rtree.Tree:
		return t.Save(w)
	case *slimtree.Tree[T]:
		return t.Save(w)
	default:
		return fmt.Errorf("mccatch: index type %T has no on-disk format", d.tree)
	}
}

// WriteFile saves the detector's index to path, atomically (temp file +
// rename in the destination directory).
func (d *Detector[T]) WriteFile(path string) error {
	if d.closed.Load() {
		return ErrDetectorClosed
	}
	if d.set != nil {
		return fmt.Errorf("mccatch: a sharded detector has no on-disk format; build with WithShards(1) to save")
	}
	switch t := any(d.tree).(type) {
	case *kdtree.Tree:
		return t.WriteFile(path)
	case *rtree.Tree:
		return t.WriteFile(path)
	case *slimtree.Tree[T]:
		return t.WriteFile(path)
	default:
		return fmt.Errorf("mccatch: index type %T has no on-disk format", d.tree)
	}
}

// Close releases the file mapping behind an opened detector. It is a
// no-op for detectors built in memory, and idempotent: only the first
// call reaches the munmap path, later calls return nil. After Close,
// Detect/Probe/ProbeAppend/Save/WriteFile report ErrDetectorClosed
// instead of reading the released mapping; Items views previously
// handed out still become invalid, and Close must not run concurrently
// with in-flight reads (see the read-concurrency contract above).
func (d *Detector[T]) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	return closeIndex(d.tree)
}

func closeIndex[T any](t index.Index[T]) error {
	if c, ok := any(t).(io.Closer); ok {
		return c.Close()
	}
	return nil
}
