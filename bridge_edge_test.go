package mccatch_test

import (
	"testing"

	"mccatch"
)

// Step IV (Alg. 4) edge cases asserted through the public API: the
// degenerate inlier/outlier splits the bridge search must survive —
// no outliers at all, every point an outlier (the empty-inlier-tree
// branch), a single inlier, and an outlier whose nearest inlier lies
// beyond the largest radius (e == len(radii), reachable only when the
// diameter estimate legitimately undershoots under a non-coordinate-
// monotone custom metric).

// outlierSet collects the union of all microcluster members.
func outlierSet(res *mccatch.Result) map[int]bool {
	out := map[int]bool{}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			out[m] = true
		}
	}
	return out
}

// TestStepIVZeroOutliers: on a uniform grid nothing is anomalous, Step IV
// scores no microclusters, and every point still gets a positive score.
func TestStepIVZeroOutliers(t *testing.T) {
	var grid [][]float64
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			grid = append(grid, []float64{float64(i), float64(j)})
		}
	}
	res, err := mccatch.RunVectors(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Microclusters) != 0 {
		t.Fatalf("uniform grid: %d microclusters, want 0", len(res.Microclusters))
	}
	for i, w := range res.PointScores {
		if w <= 0 {
			t.Fatalf("point %d: score %v, want > 0", i, w)
		}
	}
}

// TestStepIVAllOutliers: two tight pairs very far apart with c = 2 turn
// EVERY point into a microcluster member, so the inlier set is empty and
// the bridge of each microcluster defaults to the largest radius (the
// len(inItems) == 0 branch of Step IV).
func TestStepIVAllOutliers(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {100, 100}, {100.1, 100}}
	res, err := mccatch.RunVectors(pts, mccatch.WithMaxCardinality(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(outlierSet(res)); got != len(pts) {
		t.Fatalf("all-outliers dataset: %d outliers, want %d", got, len(pts))
	}
	last := res.Radii[len(res.Radii)-1]
	for j, mc := range res.Microclusters {
		if mc.Bridge != last {
			t.Errorf("microcluster %d: bridge %v, want the largest radius %v (no inlier exists)",
				j, mc.Bridge, last)
		}
		if mc.Score <= 0 {
			t.Errorf("microcluster %d: score %v, want > 0", j, mc.Score)
		}
	}
}

// TestStepIVSingleInlier: a configuration whose spotting leaves exactly
// one inlier, so Step IV's bridge searches run against an inlier tree of
// size 1.
func TestStepIVSingleInlier(t *testing.T) {
	pts := [][]float64{
		{42, 5}, {126, 6}, {72, 8}, {128, 3}, {0, 10}, {62, 2}, {174, 1}, {36, 4},
	}
	res, err := mccatch.RunVectors(pts, mccatch.WithMaxCardinality(2))
	if err != nil {
		t.Fatal(err)
	}
	out := outlierSet(res)
	if got := len(pts) - len(out); got != 1 {
		t.Fatalf("single-inlier dataset: %d inliers, want 1 (microclusters %v)", got, res.Microclusters)
	}
	last := res.Radii[len(res.Radii)-1]
	for j, mc := range res.Microclusters {
		if mc.Bridge <= 0 || mc.Bridge > last {
			t.Errorf("microcluster %d: bridge %v outside (0, %v]", j, mc.Bridge, last)
		}
	}
}

// TestStepIVOutlierBeyondLargestRadius reaches e == len(radii): a bridge
// search that finds no inlier even at the largest radius, so the bridge
// clamps to it. With a coordinate-monotone metric this cannot happen —
// the corner estimate upper-bounds every pairwise distance — so the test
// uses a hand-built finite metric (triangle inequality verified below)
// whose bounding-box corner distance passes the slim-tree's sweep
// self-check while undershooting the true diameter: exactly the ≤ 2×
// slack the estimator documents. The outlier 'o' sits 18 away from every
// inlier while the radii top out at 13.
func TestStepIVOutlierBeyondLargestRadius(t *testing.T) {
	// Elements (ids in order): e0, x, o, i1, i2, i3. The coordinates only
	// serve as dictionary keys and bounding-box material; distances come
	// from the table. lo = (0,0) and hi = (1,1) are not elements.
	pts := [][]float64{
		{0, 1},     // e0
		{1, 0},     // x
		{0.5, 0.2}, // o
		{0.2, 0.3}, // i1
		{0.3, 0.4}, // i2
		{0.4, 0.5}, // i3
	}
	type pair [2][2]float64
	key := func(p []float64) [2]float64 { return [2]float64{p[0], p[1]} }
	dists := map[pair]float64{}
	set := func(a, b []float64, d float64) { dists[pair{key(a), key(b)}] = d }
	e0, x, o, i1, i2, i3 := pts[0], pts[1], pts[2], pts[3], pts[4], pts[5]
	corner := [][]float64{{0, 0}, {1, 1}}
	// Every triangle checks out: e.g. d(o,i) = 18 ≤ d(o,e0)+d(e0,i) =
	// 9.5+9, and the sweep from e0 finds x (10), whose own farthest is o
	// (13) — so the corner's 13 passes the "corner ≥ sweep" self-check
	// while the true diameter is 18.
	set(e0, x, 10)
	set(e0, o, 9.5)
	set(x, o, 13)
	for _, i := range [][]float64{i1, i2, i3} {
		set(e0, i, 9)
		set(x, i, 9)
		set(o, i, 18)
	}
	set(i1, i2, 1)
	set(i1, i3, 1)
	set(i2, i3, 1)
	set(corner[0], corner[1], 13)
	dist := func(a, b []float64) float64 {
		ka, kb := key(a), key(b)
		if ka == kb {
			return 0
		}
		if d, ok := dists[pair{ka, kb}]; ok {
			return d
		}
		if d, ok := dists[pair{kb, ka}]; ok {
			return d
		}
		t.Fatalf("metric queried on unexpected pair %v, %v", a, b)
		return 0
	}

	res, err := mccatch.Run(pts, dist)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Radii[len(res.Radii)-1]
	if res.Diameter != 13 {
		t.Fatalf("diameter estimate %v, want the corner's 13", res.Diameter)
	}
	out := outlierSet(res)
	for _, id := range []int{3, 4, 5} {
		if out[id] {
			t.Fatalf("inlier i%d was flagged as outlier; microclusters %v", id-2, res.Microclusters)
		}
	}
	if !out[2] {
		t.Fatalf("o was not flagged as outlier; microclusters %v", res.Microclusters)
	}
	// o's nearest inlier is 18 > 13 away: its bridge search exhausts the
	// schedule (e == len(radii)) and the bridge clamps to the largest
	// radius.
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			if m != 2 {
				continue
			}
			if len(mc.Members) != 1 {
				t.Fatalf("o gelled into %v, want a singleton", mc.Members)
			}
			if mc.Bridge != last {
				t.Fatalf("o's bridge %v, want the largest radius %v (nearest inlier is 18 away)",
					mc.Bridge, last)
			}
		}
	}
}
