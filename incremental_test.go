package mccatch

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestIncrementalMatchesRunVectors pins the public contract: after any
// insert/delete sequence — segments, tombstones and a live memtable all
// present — Detect returns a Result deep-equal to RunVectors over the
// live points, under both the default R-tree backend and the slim-tree
// (selected implicitly by a slim-specific option).
func TestIncrementalMatchesRunVectors(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"rtree-default", nil},
		{"slimtree-via-capacity", []Option{WithTreeCapacity(16)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			inc, err := NewIncrementalVectors(2, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			inc.SetMemtableCap(10)
			type entry struct {
				h int64
				p []float64
			}
			var liveSet []entry
			for step := 0; step < 90; step++ {
				if len(liveSet) > 4 && rng.Intn(4) == 0 {
					j := rng.Intn(len(liveSet))
					if !inc.Delete(liveSet[j].h) {
						t.Fatalf("Delete of a live handle failed")
					}
					liveSet = append(liveSet[:j], liveSet[j+1:]...)
					continue
				}
				p := []float64{math.Round(rng.Float64()*40) / 2, math.Round(rng.Float64()*40) / 2}
				if rng.Intn(15) == 0 {
					p[0] += 300 // far outlier
				}
				h, err := inc.Insert(p)
				if err != nil {
					t.Fatal(err)
				}
				liveSet = append(liveSet, entry{h, p})
			}
			if inc.Segments() < 2 || inc.Tombstones() == 0 {
				t.Fatalf("script exercised no real merge: segments=%d tombstones=%d",
					inc.Segments(), inc.Tombstones())
			}
			live := make([][]float64, len(liveSet))
			for i, e := range liveSet {
				live[i] = e.p
			}
			if inc.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", inc.Len(), len(live))
			}
			want, err := RunVectors(live, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := inc.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("incremental Detect differs from RunVectors\ngot:  %+v\nwant: %+v", got, want)
			}
			// And again after compaction (single fresh segment).
			inc.Compact()
			got, err = inc.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-Compact Detect differs from RunVectors")
			}
		})
	}
}

// TestIncrementalMatchesRunStrings pins the nondimensional path: an
// incremental run with DeriveWordCost matches RunStrings bit for bit.
func TestIncrementalMatchesRunStrings(t *testing.T) {
	words := []string{
		"smith", "smyth", "smithe", "smitt", "smith", "smiths",
		"jones", "joness", "jonas", "jone", "jons", "jonez",
		"zzzzzzzzzzzzzz", "qqqqqqqqqqqqqq",
	}
	inc, err := NewIncremental(Levenshtein, DeriveWordCost(words))
	if err != nil {
		t.Fatal(err)
	}
	inc.SetMemtableCap(5)
	for _, w := range words {
		if _, err := inc.Insert(w); err != nil {
			t.Fatal(err)
		}
	}
	want, err := RunStrings(words)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental Detect differs from RunStrings\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestIncrementalVectorsValidation pins Insert's input checks.
func TestIncrementalVectorsValidation(t *testing.T) {
	inc, err := NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert([]float64{1, 2, 3}); err == nil {
		t.Error("wrong dimension should error")
	}
	if _, err := inc.Insert([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN should error")
	}
	if _, err := inc.Insert([]float64{math.Inf(1), 0}); err == nil {
		t.Error("Inf should error")
	}
	if inc.Len() != 0 {
		t.Fatalf("rejected inserts changed Len: %d", inc.Len())
	}
	if _, err := inc.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if inc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", inc.Len())
	}
	if _, err := inc.Detect(); err != nil {
		t.Fatal(err)
	}
}
