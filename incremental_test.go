package mccatch

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestIncrementalMatchesRunVectors pins the public contract: after any
// insert/delete sequence — segments, tombstones and a live memtable all
// present — Detect returns a Result deep-equal to RunVectors over the
// live points, under both the default R-tree backend and the slim-tree
// (selected implicitly by a slim-specific option).
func TestIncrementalMatchesRunVectors(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"rtree-default", nil},
		{"slimtree-via-capacity", []Option{WithTreeCapacity(16)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			inc, err := NewIncrementalVectors(2, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			inc.SetMemtableCap(10)
			type entry struct {
				h int64
				p []float64
			}
			var liveSet []entry
			for step := 0; step < 90; step++ {
				if len(liveSet) > 4 && rng.Intn(4) == 0 {
					j := rng.Intn(len(liveSet))
					if !inc.Delete(liveSet[j].h) {
						t.Fatalf("Delete of a live handle failed")
					}
					liveSet = append(liveSet[:j], liveSet[j+1:]...)
					continue
				}
				p := []float64{math.Round(rng.Float64()*40) / 2, math.Round(rng.Float64()*40) / 2}
				if rng.Intn(15) == 0 {
					p[0] += 300 // far outlier
				}
				h, err := inc.Insert(p)
				if err != nil {
					t.Fatal(err)
				}
				liveSet = append(liveSet, entry{h, p})
			}
			if inc.Segments() < 2 || inc.Tombstones() == 0 {
				t.Fatalf("script exercised no real merge: segments=%d tombstones=%d",
					inc.Segments(), inc.Tombstones())
			}
			live := make([][]float64, len(liveSet))
			for i, e := range liveSet {
				live[i] = e.p
			}
			if inc.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", inc.Len(), len(live))
			}
			want, err := RunVectors(live, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := inc.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("incremental Detect differs from RunVectors\ngot:  %+v\nwant: %+v", got, want)
			}
			// And again after compaction (single fresh segment).
			inc.Compact()
			got, err = inc.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-Compact Detect differs from RunVectors")
			}
		})
	}
}

// TestIncrementalMatchesRunStrings pins the nondimensional path: an
// incremental run with DeriveWordCost matches RunStrings bit for bit.
func TestIncrementalMatchesRunStrings(t *testing.T) {
	words := []string{
		"smith", "smyth", "smithe", "smitt", "smith", "smiths",
		"jones", "joness", "jonas", "jone", "jons", "jonez",
		"zzzzzzzzzzzzzz", "qqqqqqqqqqqqqq",
	}
	inc, err := NewIncremental(Levenshtein, DeriveWordCost(words))
	if err != nil {
		t.Fatal(err)
	}
	inc.SetMemtableCap(5)
	for _, w := range words {
		if _, err := inc.Insert(w); err != nil {
			t.Fatal(err)
		}
	}
	want, err := RunStrings(words)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental Detect differs from RunStrings\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestIncrementalEpoch pins the cache-invalidation contract the serving
// layer depends on: the epoch moves exactly when the live set changes —
// Insert and successful Delete bump it; failed Delete, rejected Insert,
// Freeze and Compact leave it alone (storage reorganization cannot
// change a query answer, so caches keyed on the epoch stay valid).
func TestIncrementalEpoch(t *testing.T) {
	inc, err := NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	e0 := inc.Epoch()
	if _, err := inc.Insert([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong dimension should error")
	}
	if inc.Epoch() != e0 {
		t.Error("rejected Insert bumped the epoch")
	}
	h, err := inc.Insert([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	e1 := inc.Epoch()
	if e1 == e0 {
		t.Error("Insert did not bump the epoch")
	}
	inc.Freeze()
	inc.Compact()
	if inc.Epoch() != e1 {
		t.Error("Freeze/Compact bumped the epoch despite an unchanged live set")
	}
	if inc.Delete(h + 100) {
		t.Fatal("Delete of an unknown handle succeeded")
	}
	if inc.Epoch() != e1 {
		t.Error("failed Delete bumped the epoch")
	}
	if !inc.Delete(h) {
		t.Fatal("Delete of a live handle failed")
	}
	if inc.Epoch() == e1 {
		t.Error("successful Delete did not bump the epoch")
	}
}

// TestIncrementalProbeMatchesDetector pins the probe surface: after an
// insert/delete/freeze script, Probe and the radii schedule must equal a
// fresh-built Detector's over the same live set — the serving layer's
// score-point endpoint is exactly this equivalence. Also exercises the
// per-epoch radii cache across a mutation.
func TestIncrementalProbeMatchesDetector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc, err := NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetMemtableCap(8)
	var handles []int64
	var live [][]float64
	for i := 0; i < 40; i++ {
		p := []float64{rng.Float64() * 20, rng.Float64() * 20}
		h, err := inc.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		handles, live = append(handles, h), append(live, p)
	}
	for _, j := range []int{35, 20, 3} {
		if !inc.Delete(handles[j]) {
			t.Fatal("delete failed")
		}
		handles, live = append(handles[:j], handles[j+1:]...), append(live[:j], live[j+1:]...)
	}
	d, err := BuildVectors(live)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !reflect.DeepEqual(inc.Radii(), d.Radii()) {
		t.Fatalf("radii schedule diverged from fresh build:\ninc: %v\ndet: %v", inc.Radii(), d.Radii())
	}
	for _, q := range [][]float64{live[0], live[17], {100, 100}} {
		want, err := d.Probe(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.Probe(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Probe(%v) = %v, want %v", q, got, want)
		}
		// ProbeAppend must append after existing entries, not clobber.
		withPrefix, err := inc.ProbeAppend(q, []int{-1})
		if err != nil {
			t.Fatal(err)
		}
		if withPrefix[0] != -1 || !reflect.DeepEqual(withPrefix[1:], want) {
			t.Fatalf("ProbeAppend with prefix = %v, want [-1 | %v]", withPrefix, want)
		}
	}
	if _, err := inc.Probe([]float64{1}); err == nil {
		t.Error("wrong-dimension probe should error")
	}
	// Mutate, then confirm the cached schedule refreshes: an inserted far
	// point stretches the diameter, so the radii must change.
	if _, err := inc.Insert([]float64{500, 500}); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(inc.Radii(), d.Radii()) {
		t.Error("radii cache survived a diameter-stretching insert")
	}
}

// TestIncrementalVectorsValidation pins Insert's input checks.
func TestIncrementalVectorsValidation(t *testing.T) {
	inc, err := NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert([]float64{1, 2, 3}); err == nil {
		t.Error("wrong dimension should error")
	}
	if _, err := inc.Insert([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN should error")
	}
	if _, err := inc.Insert([]float64{math.Inf(1), 0}); err == nil {
		t.Error("Inf should error")
	}
	if inc.Len() != 0 {
		t.Fatalf("rejected inserts changed Len: %d", inc.Len())
	}
	if _, err := inc.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if inc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", inc.Len())
	}
	if _, err := inc.Detect(); err != nil {
		t.Fatal(err)
	}
}
