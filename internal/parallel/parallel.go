// Package parallel is the worker-pool substrate the detection pipeline
// fans out on. MCCATCH's hot loops are per-point probes against a
// read-only index (range counts, range queries, bridge searches), so they
// parallelize as independent units of work that write into preallocated
// per-index slots; For schedules exactly that shape. Limiter bounds the
// goroutines a recursive fan-out (kd-tree / R-tree bulk build) may spawn.
//
// Everything here is deterministic by construction: the scheduling order
// is unobservable as long as callers keep each unit of work independent
// and write results only into their own slot, which is how every caller
// in this repository uses it.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values ≤ 0 mean "use all
// available parallelism" and resolve to runtime.GOMAXPROCS(0); positive
// values are returned unchanged (1 means serial).
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// chunkDivisor controls chunk granularity: each worker's share is split
// into this many chunks so stragglers (points whose probes descend more
// of the tree) rebalance onto idle workers.
const chunkDivisor = 8

// For runs fn(i) for every i in [0, n) across min(Workers(workers), n)
// goroutines. Indices are handed out in contiguous chunks through an
// atomic cursor, so scheduling costs O(1) per chunk rather than O(1) per
// index. If any fn panics, For stops handing out new chunks and re-panics
// the first panic value in the caller's goroutine once all workers have
// drained.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := n / (w * chunkDivisor)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor   atomic.Int64
		panicked atomic.Bool
		panicVal any
		panicMu  sync.Mutex
		wg       sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked.Swap(true) {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for !panicked.Load() {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Limiter bounds how many extra goroutines a recursive fan-out may hold
// alive at once. A Limiter for w workers allows w-1 extra goroutines on
// top of the calling one, so total parallelism stays at w; a serial
// limiter (w = 1) never spawns.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a Limiter for Workers(workers) total workers.
func NewLimiter(workers int) *Limiter {
	return &Limiter{slots: make(chan struct{}, Workers(workers)-1)}
}

// Go runs fn in a fresh goroutine when a worker slot is free, inline
// otherwise. The returned wait function blocks until fn is done and
// re-panics in the caller any panic a spawned fn raised (an inline fn's
// panic surfaces at the Go call itself); callers must invoke wait before
// using results fn wrote.
func (l *Limiter) Go(fn func()) (wait func()) {
	select {
	case l.slots <- struct{}{}:
		done := make(chan any, 1)
		go func() {
			defer func() {
				done <- recover()
				<-l.slots
			}()
			fn()
		}()
		return func() {
			if r := <-done; r != nil {
				panic(r)
			}
		}
	default:
		fn()
		return func() {}
	}
}
