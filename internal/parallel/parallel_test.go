package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{0, max},
		{-1, max},
		{-100, max},
		{1, 1},
		{3, 3},
		{max + 7, max + 7}, // oversubscription is allowed, not clamped
	} {
		if got := Workers(tc.in); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestForCoversEveryIndexExactlyOnce sweeps worker counts (including
// zero/negative = auto and workers > n) and sizes around the chunking
// boundaries.
func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{-2, 0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			seen := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, s := range seen {
				if s != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, s)
				}
			}
		}
	}
}

func TestForNegativeNIsANoop(t *testing.T) {
	For(4, -5, func(i int) { t.Errorf("fn called with i=%d on negative n", i) })
}

// TestForPanicPropagation: a panic in any worker must surface in the
// caller's goroutine with the original panic value, after all workers
// drain (no goroutine leaks, no deadlock).
func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			For(workers, 1000, func(i int) {
				if i == 357 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForPanicStopsScheduling: after a panic, workers should stop pulling
// new chunks rather than grind through the remaining work.
func TestForPanicStopsScheduling(t *testing.T) {
	var calls atomic.Int32
	func() {
		defer func() { recover() }()
		For(4, 1_000_000, func(i int) {
			calls.Add(1)
			panic("early")
		})
	}()
	if c := calls.Load(); c > 10_000 {
		t.Errorf("%d calls after first panic; scheduling did not stop early", c)
	}
}

func TestForIsSerialWithOneWorker(t *testing.T) {
	// With workers=1 the order must be exactly 0..n-1 on the caller's
	// goroutine (no concurrency at all).
	var order []int
	For(1, 100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken at %d: got %d", i, v)
		}
	}
}

func TestLimiterSerialNeverSpawns(t *testing.T) {
	lim := NewLimiter(1)
	done := false
	wait := lim.Go(func() { done = true })
	// fn must have run inline: observable before wait.
	if !done {
		t.Fatal("serial limiter deferred fn to a goroutine")
	}
	wait()
}

func TestLimiterRunsEverythingOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		lim := NewLimiter(workers)
		var calls atomic.Int32
		var waits []func()
		for i := 0; i < 50; i++ {
			waits = append(waits, lim.Go(func() { calls.Add(1) }))
		}
		for _, w := range waits {
			w()
		}
		if calls.Load() != 50 {
			t.Fatalf("workers=%d: %d calls, want 50", workers, calls.Load())
		}
	}
}

// TestLimiterPanicPropagates: a panicking fn must always reach the caller
// — at wait() when fn ran on a goroutine, or at the Go call itself when
// the limiter fell back to running fn inline.
func TestLimiterPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		lim := NewLimiter(workers)
		panics := 0
		for i := 0; i < 20; i++ {
			i := i
			func() {
				defer func() {
					if recover() != nil {
						panics++
					}
				}()
				wait := lim.Go(func() {
					if i%2 == 0 {
						panic(i)
					}
				})
				wait()
			}()
		}
		if panics != 10 {
			t.Errorf("workers=%d: %d panics propagated, want 10", workers, panics)
		}
	}
}

// TestLimiterNestedFanOutCompletes models the kd-tree build shape: each
// task spawns two children until depth runs out. Must terminate for every
// worker budget (inline fallback prevents slot-exhaustion deadlock).
func TestLimiterNestedFanOutCompletes(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		lim := NewLimiter(workers)
		var leaves atomic.Int32
		var rec func(depth int)
		rec = func(depth int) {
			if depth == 0 {
				leaves.Add(1)
				return
			}
			wait := lim.Go(func() { rec(depth - 1) })
			rec(depth - 1)
			wait()
		}
		rec(10)
		if leaves.Load() != 1024 {
			t.Fatalf("workers=%d: %d leaves, want 1024", workers, leaves.Load())
		}
	}
}
