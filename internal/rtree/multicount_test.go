package rtree

import (
	"math/rand"
	"testing"
)

// randRadii returns an ascending radius schedule mixing tiny, mid and
// beyond-diameter values, optionally with duplicates.
func randRadii(rng *rand.Rand, a float64) []float64 {
	n := 1 + rng.Intn(16)
	radii := make([]float64, n)
	r := a * (0.001 + rng.Float64()*0.01)
	for e := range radii {
		radii[e] = r
		if rng.Intn(6) > 0 {
			r *= 1.3 + rng.Float64()*1.5
		}
	}
	return radii
}

// TestRangeCountMultiMatchesRepeatedRangeCount is the batched-counting
// contract: one traversal must return exactly [RangeCount(r) for r in
// radii], across fanouts that make the tree tall and flat.
func TestRangeCountMultiMatchesRepeatedRangeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(400)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		for i := rng.Intn(20); i > 0; i-- {
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}
		fanout := []int{0, 4, 64}[trial%3]
		tr := New(pts, fanout)
		for q := 0; q < 12; q++ {
			query := pts[rng.Intn(len(pts))]
			if q%3 == 0 {
				query = randPoints(rng, 1, dim)[0]
			}
			radii := randRadii(rng, 150)
			got := tr.RangeCountMulti(query, radii)
			for e, r := range radii {
				if want := tr.RangeCount(query, r); got[e] != want {
					t.Fatalf("trial %d: RangeCountMulti[%d] (r=%v) = %d, want RangeCount = %d",
						trial, e, r, got[e], want)
				}
			}
		}
	}
}

func TestRangeCountMultiEdges(t *testing.T) {
	tr := New([][]float64{{0, 0}, {1, 0}, {4, 0}}, 0)
	if got := tr.RangeCountMulti([]float64{0, 0}, nil); len(got) != 0 {
		t.Errorf("empty radii should give empty counts, got %v", got)
	}
	if got := tr.RangeCountMulti([]float64{0, 0}, []float64{2}); len(got) != 1 || got[0] != 2 {
		t.Errorf("single radius: got %v, want [2]", got)
	}
	empty := New(nil, 0)
	if got := empty.RangeCountMulti([]float64{0, 0}, []float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty tree should count 0 everywhere, got %v", got)
	}
}

func TestRangeQueryAppendReusesBuffer(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {9, 9}}
	tr := New(pts, 0)
	buf := make([]int, 0, 8)
	got := tr.RangeQueryAppend([]float64{0, 0}, 1.5, buf)
	if len(got) != 2 || cap(got) != 8 {
		t.Errorf("RangeQueryAppend = %v (cap %d), want 2 ids in the caller's buffer", got, cap(got))
	}
}
