// Package rtree implements an R-tree over vector data, bulk-loaded with
// the Sort-Tile-Recursive (STR) algorithm. It is the third access method
// the paper names for MCCATCH's tree T (Alg. 1 L1: "Like a Slim-tree,
// M-tree, or R-tree" — R-trees being the disk-oriented choice for vector
// data). The query interface satisfies internal/index.Index, so the
// pipeline and the benchmarks can ablate it against the slim-tree and the
// kd-tree. RangeCount applies the count-only principle: a node whose
// bounding box lies entirely inside the query ball contributes its stored
// element count without being descended.
package rtree

import (
	"math"
	"sort"

	"mccatch/internal/metric"
	"mccatch/internal/parallel"
)

// DefaultFanout is the default number of children per node.
const DefaultFanout = 16

type node struct {
	leaf     bool
	lo, hi   []float64 // bounding box
	size     int       // elements under this node
	children []*node   // internal nodes
	points   [][]float64
	ids      []int // leaf nodes
}

// Tree is an STR bulk-loaded R-tree under the Euclidean metric.
type Tree struct {
	root   *node
	dim    int
	sizeN  int
	fanout int
}

// New bulk-loads an R-tree with the given fanout (DefaultFanout if < 2).
// Point i is reported by queries as id i.
func New(points [][]float64, fanout int) *Tree {
	return NewWithWorkers(points, fanout, 1)
}

// parallelTileMin is the tile size below which the STR recursion stays on
// the current goroutine.
const parallelTileMin = 1024

// NewWithWorkers is New with the STR tiling recursion fanned out across up
// to workers goroutines (≤ 0 → all cores, 1 → serial). Sibling tiles sort
// disjoint index ranges and return their leaves in tile order, so the
// packed tree is identical to the serial build for every worker count.
func NewWithWorkers(points [][]float64, fanout, workers int) *Tree {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	t := &Tree{sizeN: len(points), fanout: fanout}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	leaves := t.buildLeaves(points, ids, parallel.NewLimiter(workers))
	t.root = t.pack(leaves)
	return t
}

// buildLeaves tiles the points into leaf nodes with the STR recursion:
// sort by the first axis, slice into vertical runs, recurse on the next
// axis within each run, and emit capacity-sized leaves. Each call returns
// its leaves in tile order; large runs recurse on other goroutines (their
// index ranges are disjoint) and are stitched back in order.
func (t *Tree) buildLeaves(points [][]float64, ids []int, lim *parallel.Limiter) []*node {
	var tile func(idx []int, axis int) []*node
	tile = func(idx []int, axis int) []*node {
		if len(idx) <= t.fanout {
			leaf := &node{leaf: true, size: len(idx)}
			for _, i := range idx {
				leaf.points = append(leaf.points, points[i])
				leaf.ids = append(leaf.ids, i)
			}
			leaf.computeBox(nil)
			return []*node{leaf}
		}
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := points[idx[a]], points[idx[b]]
			if pa[axis] != pb[axis] {
				return pa[axis] < pb[axis]
			}
			return idx[a] < idx[b]
		})
		// Number of vertical slices: ceil(sqrt(#leaves needed)).
		nLeaves := (len(idx) + t.fanout - 1) / t.fanout
		slices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
		per := (len(idx) + slices - 1) / slices
		next := (axis + 1) % t.dim
		nRuns := (len(idx) + per - 1) / per
		runs := make([][]*node, nRuns)
		var waits []func()
		for k := 0; k < nRuns; k++ {
			s := k * per
			e := s + per
			if e > len(idx) {
				e = len(idx)
			}
			k, sub := k, idx[s:e]
			// Fan all runs but the last out to spare workers; the last one
			// keeps the current goroutine busy instead of idling in waits.
			if len(idx) >= parallelTileMin && k < nRuns-1 {
				waits = append(waits, lim.Go(func() { runs[k] = tile(sub, next) }))
			} else {
				runs[k] = tile(sub, next)
			}
		}
		for _, wait := range waits {
			wait()
		}
		var leaves []*node
		for _, r := range runs {
			leaves = append(leaves, r...)
		}
		return leaves
	}
	return tile(ids, 0)
}

// pack groups nodes into parents level by level until one root remains.
func (t *Tree) pack(nodes []*node) *node {
	for len(nodes) > 1 {
		// Sort by box center on alternating axes for locality.
		sort.Slice(nodes, func(a, b int) bool {
			return nodes[a].lo[0]+nodes[a].hi[0] < nodes[b].lo[0]+nodes[b].hi[0]
		})
		var parents []*node
		for s := 0; s < len(nodes); s += t.fanout {
			e := s + t.fanout
			if e > len(nodes) {
				e = len(nodes)
			}
			p := &node{children: append([]*node(nil), nodes[s:e]...)}
			for _, c := range p.children {
				p.size += c.size
			}
			p.computeBox(p.children)
			parents = append(parents, p)
		}
		nodes = parents
	}
	return nodes[0]
}

// computeBox fills the node's bounding box from its points or children.
func (n *node) computeBox(children []*node) {
	if n.leaf {
		n.lo = append([]float64(nil), n.points[0]...)
		n.hi = append([]float64(nil), n.points[0]...)
		for _, p := range n.points {
			for j, v := range p {
				if v < n.lo[j] {
					n.lo[j] = v
				}
				if v > n.hi[j] {
					n.hi[j] = v
				}
			}
		}
		return
	}
	n.lo = append([]float64(nil), children[0].lo...)
	n.hi = append([]float64(nil), children[0].hi...)
	for _, c := range children {
		for j := range n.lo {
			if c.lo[j] < n.lo[j] {
				n.lo[j] = c.lo[j]
			}
			if c.hi[j] > n.hi[j] {
				n.hi[j] = c.hi[j]
			}
		}
	}
}

// sqMinMaxDist returns the smallest and largest SQUARED distances from q
// to the box; query paths compare them against squared radii, saving two
// math.Sqrt per node.
func (n *node) sqMinMaxDist(q []float64) (smin, smax float64) {
	for j := range q {
		nearest := q[j]
		if nearest < n.lo[j] {
			nearest = n.lo[j]
		}
		if nearest > n.hi[j] {
			nearest = n.hi[j]
		}
		d := q[j] - nearest
		smin += d * d
		far := math.Max(math.Abs(q[j]-n.lo[j]), math.Abs(q[j]-n.hi[j]))
		smax += far * far
	}
	return smin, smax
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.sizeN }

// RangeCount returns how many points lie within distance r of q. All
// comparisons are on squared distances — no per-node math.Sqrt.
func (t *Tree) RangeCount(q []float64, r float64) int {
	if t.root == nil {
		return 0
	}
	r2 := r * r
	count := 0
	var visit func(n *node)
	visit = func(n *node) {
		smin, smax := n.sqMinMaxDist(q)
		if smin > r2 {
			return
		}
		if smax <= r2 {
			count += n.size
			return
		}
		if n.leaf {
			for _, p := range n.points {
				if metric.SquaredEuclidean(q, p) <= r2 {
					count++
				}
			}
			return
		}
		for _, c := range n.children {
			visit(c)
		}
	}
	visit(t.root)
	return count
}

// RangeCountMulti returns the neighbor count at every radius of the
// ascending schedule radii from ONE tree traversal. Each node keeps the
// window [lo, hi) of radii its MBR leaves unresolved: radii the box cannot
// reach are dropped, radii that contain the whole box are credited with
// the subtree's stored size via a difference array, and only the radii in
// between descend. The result is element-wise identical to calling
// RangeCount per radius.
func (t *Tree) RangeCountMulti(q []float64, radii []float64) []int {
	a := len(radii)
	diff := make([]int, a+1)
	if t.root != nil && a > 0 {
		r2 := make([]float64, a)
		for e, r := range radii {
			r2[e] = r * r
		}
		t.root.multiCount(q, r2, 0, a, diff)
	}
	for e := 1; e < a; e++ {
		diff[e] += diff[e-1]
	}
	return diff[:a]
}

// multiCount resolves the squared-radius window r2[lo:hi] for the subtree
// at n; diff is the difference array crediting element ranges in O(1).
func (n *node) multiCount(q []float64, r2 []float64, lo, hi int, diff []int) {
	smin, smax := n.sqMinMaxDist(q)
	for lo < hi && smin > r2[lo] {
		lo++ // box out of reach of the smallest radii
	}
	nh := lo
	for nh < hi && smax > r2[nh] {
		nh++ // box fully inside radii [nh, hi): settle them at once
	}
	if nh < hi {
		diff[nh] += n.size
		diff[hi] -= n.size
	}
	if lo >= nh {
		return
	}
	if n.leaf {
		for _, p := range n.points {
			if d2 := metric.SquaredEuclidean(q, p); d2 <= r2[nh-1] {
				b := lo
				for d2 > r2[b] {
					b++
				}
				diff[b]++
				diff[nh]--
			}
		}
		return
	}
	for _, c := range n.children {
		c.multiCount(q, r2, lo, nh, diff)
	}
}

// RangeQuery returns the ids of points within distance r of q.
func (t *Tree) RangeQuery(q []float64, r float64) []int {
	return t.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend appends the ids of points within distance r of q
// (inclusive) to dst, reusing dst's capacity, and returns the extended
// slice. It lets hot loops recycle one scratch buffer across probes.
func (t *Tree) RangeQueryAppend(q []float64, r float64, dst []int) []int {
	if t.root == nil {
		return dst
	}
	r2 := r * r
	var visit func(n *node)
	visit = func(n *node) {
		smin, _ := n.sqMinMaxDist(q)
		if smin > r2 {
			return
		}
		if n.leaf {
			for k, p := range n.points {
				if metric.SquaredEuclidean(q, p) <= r2 {
					dst = append(dst, n.ids[k])
				}
			}
			return
		}
		for _, c := range n.children {
			visit(c)
		}
	}
	visit(t.root)
	return dst
}

// DiameterEstimate returns the root bounding box diagonal, an upper bound
// on the true diameter within a factor of √d.
func (t *Tree) DiameterEstimate() float64 {
	if t.root == nil {
		return 0
	}
	return metric.Euclidean(t.root.lo, t.root.hi)
}

// Height returns the tree height (0 when empty).
func (t *Tree) Height() int {
	h := 0
	n := t.root
	for n != nil {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
