// Package rtree implements an R-tree over vector data, bulk-loaded with
// the Sort-Tile-Recursive (STR) algorithm. It is the third access method
// the paper names for MCCATCH's tree T (Alg. 1 L1: "Like a Slim-tree,
// M-tree, or R-tree" — R-trees being the disk-oriented choice for vector
// data). The query interface satisfies internal/index.Index, so the
// pipeline and the benchmarks can ablate it against the slim-tree and the
// kd-tree. RangeCount applies the count-only principle: a node whose
// bounding box lies entirely inside the query ball contributes its stored
// element count without being descended.
//
// The tree is stored as a flat arena rather than linked nodes: nodes are
// laid out LEVEL BY LEVEL in build order (the root at slot 0), each
// internal node's children as the contiguous slot range
// [childFirst, childLast), and every leaf's points packed — coordinates
// in one shared []float64 block, ids beside them — in leaf order, so a
// node's whole subtree owns the contiguous element range
// [elemFirst, elemLast). Traversals do index arithmetic over flat
// slices instead of chasing node pointers, leaf scans stream linearly,
// and the dual joins credit whole subtrees as flat position ranges.
package rtree

import (
	"math"
	"sort"

	"mccatch/internal/arena"
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
	"mccatch/internal/metric"
	"mccatch/internal/parallel"
)

// DefaultFanout is the default number of children per node.
const DefaultFanout = 16

// leafScanChunk is the stack-buffer granularity of the no-prefilter leaf
// scans: kernel.Dists fills up to this many squared distances per call,
// amortizing the dimension dispatch over whole (fanout-sized) leaves
// while keeping the scratch on the stack for any runtime fanout.
const leafScanChunk = 64

// buildNode is the transient pointer shape the STR construction works
// on; freeze flattens the finished tree into the arena and drops it.
type buildNode struct {
	leaf     bool
	lo, hi   []float64 // bounding box
	size     int       // elements under this node
	children []*buildNode
	points   [][]float64
	ids      []int // leaf nodes
}

// Tree is an STR bulk-loaded R-tree under the Euclidean metric,
// flattened into a leveled arena (see the package comment).
type Tree struct {
	dim    int
	sizeN  int
	fanout int
	// Node arrays, level by level, root at slot 0 (no nodes when empty).
	leaf                  []bool
	size                  []int32
	parent                []int32
	childFirst, childLast []int32   // internal nodes; leaves hold -1
	elemFirst, elemLast   []int32   // packed element range under the subtree
	lo, hi                []float64 // boxes, slot-major
	// Packed leaf elements, in leaf order.
	pts []float64 // coordinates, position-major
	ids []int32   // position → original point index
	// sum is the quantized block prefilter over pts (one uint8-coded box
	// per 8 positions), built at freeze; nil for tiny trees. Leaf scans
	// consult it to skip or settle whole blocks before touching
	// coordinates.
	sum *kernel.Summary
	// src is the backing index file when the tree was produced by
	// Open/FromFile (the columns above are views into its mapping); nil
	// for trees built in memory.
	src *arena.File
}

// New bulk-loads an R-tree with the given fanout (DefaultFanout if < 2).
// Point i is reported by queries as id i.
func New(points [][]float64, fanout int) *Tree {
	return NewWithWorkers(points, fanout, 1)
}

// parallelTileMin is the tile size below which the STR recursion stays on
// the current goroutine.
const parallelTileMin = 1024

// NewWithWorkers is New with the STR tiling recursion fanned out across up
// to workers goroutines (≤ 0 → all cores, 1 → serial). Sibling tiles sort
// disjoint index ranges and return their leaves in tile order, so the
// packed arena is identical to the serial build for every worker count.
func NewWithWorkers(points [][]float64, fanout, workers int) *Tree {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	t := &Tree{sizeN: len(points), fanout: fanout}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	leaves := t.buildLeaves(points, ids, parallel.NewLimiter(workers))
	t.freeze(t.pack(leaves))
	return t
}

// buildLeaves tiles the points into leaf nodes with the STR recursion:
// sort by the first axis, slice into vertical runs, recurse on the next
// axis within each run, and emit capacity-sized leaves. Each call returns
// its leaves in tile order; large runs recurse on other goroutines (their
// index ranges are disjoint) and are stitched back in order.
func (t *Tree) buildLeaves(points [][]float64, ids []int, lim *parallel.Limiter) []*buildNode {
	var tile func(idx []int, axis int) []*buildNode
	tile = func(idx []int, axis int) []*buildNode {
		if len(idx) <= t.fanout {
			leaf := &buildNode{leaf: true, size: len(idx)}
			for _, i := range idx {
				leaf.points = append(leaf.points, points[i])
				leaf.ids = append(leaf.ids, i)
			}
			leaf.computeBox(nil)
			return []*buildNode{leaf}
		}
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := points[idx[a]], points[idx[b]]
			if pa[axis] != pb[axis] {
				return pa[axis] < pb[axis]
			}
			return idx[a] < idx[b]
		})
		// Number of vertical slices: ceil(sqrt(#leaves needed)).
		nLeaves := (len(idx) + t.fanout - 1) / t.fanout
		slices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
		per := (len(idx) + slices - 1) / slices
		next := (axis + 1) % t.dim
		nRuns := (len(idx) + per - 1) / per
		runs := make([][]*buildNode, nRuns)
		var waits []func()
		for k := 0; k < nRuns; k++ {
			s := k * per
			e := s + per
			if e > len(idx) {
				e = len(idx)
			}
			k, sub := k, idx[s:e]
			// Fan all runs but the last out to spare workers; the last one
			// keeps the current goroutine busy instead of idling in waits.
			if len(idx) >= parallelTileMin && k < nRuns-1 {
				waits = append(waits, lim.Go(func() { runs[k] = tile(sub, next) }))
			} else {
				runs[k] = tile(sub, next)
			}
		}
		for _, wait := range waits {
			wait()
		}
		var leaves []*buildNode
		for _, r := range runs {
			leaves = append(leaves, r...)
		}
		return leaves
	}
	return tile(ids, 0)
}

// pack groups nodes into parents level by level until one root remains.
func (t *Tree) pack(nodes []*buildNode) *buildNode {
	for len(nodes) > 1 {
		// Sort by box center on alternating axes for locality.
		sort.Slice(nodes, func(a, b int) bool {
			return nodes[a].lo[0]+nodes[a].hi[0] < nodes[b].lo[0]+nodes[b].hi[0]
		})
		var parents []*buildNode
		for s := 0; s < len(nodes); s += t.fanout {
			e := s + t.fanout
			if e > len(nodes) {
				e = len(nodes)
			}
			p := &buildNode{children: append([]*buildNode(nil), nodes[s:e]...)}
			for _, c := range p.children {
				p.size += c.size
			}
			p.computeBox(p.children)
			parents = append(parents, p)
		}
		nodes = parents
	}
	return nodes[0]
}

// freeze flattens the finished pointer tree into the arena: a BFS walk
// assigns node slots level by level — each parent's children land in one
// contiguous slot run — and packs leaf points/ids in leaf order (STR
// trees are perfectly leveled, so leaf BFS order IS the depth-first
// element order and every subtree owns a contiguous element range). The
// element ranges of internal slots are stitched bottom-up; the pointer
// nodes are garbage once this returns.
func (t *Tree) freeze(root *buildNode) {
	// Pre-count nodes so every arena slice is allocated exactly once.
	nNodes := 0
	var count func(n *buildNode)
	count = func(n *buildNode) {
		nNodes++
		for _, c := range n.children {
			count(c)
		}
	}
	count(root)
	t.leaf = make([]bool, 0, nNodes)
	t.size = make([]int32, 0, nNodes)
	t.parent = make([]int32, 0, nNodes)
	t.childFirst = make([]int32, 0, nNodes)
	t.childLast = make([]int32, 0, nNodes)
	t.elemFirst = make([]int32, 0, nNodes)
	t.elemLast = make([]int32, 0, nNodes)
	t.lo = make([]float64, 0, nNodes*t.dim)
	t.hi = make([]float64, 0, nNodes*t.dim)
	t.pts = make([]float64, 0, t.sizeN*t.dim)
	t.ids = make([]int32, 0, t.sizeN)
	queue := make([]*buildNode, 0, nNodes)
	queue = append(queue, root)
	parents := make([]int32, 0, nNodes)
	parents = append(parents, -1)
	pos := int32(0)
	for at := 0; at < len(queue); at++ {
		n := queue[at]
		t.leaf = append(t.leaf, n.leaf)
		t.size = append(t.size, int32(n.size))
		t.parent = append(t.parent, parents[at])
		t.lo = append(t.lo, n.lo...)
		t.hi = append(t.hi, n.hi...)
		if n.leaf {
			t.childFirst = append(t.childFirst, -1)
			t.childLast = append(t.childLast, -1)
			t.elemFirst = append(t.elemFirst, pos)
			for k, p := range n.points {
				t.pts = append(t.pts, p...)
				t.ids = append(t.ids, int32(n.ids[k]))
				pos++
			}
			t.elemLast = append(t.elemLast, pos)
			continue
		}
		t.childFirst = append(t.childFirst, int32(len(queue)))
		t.childLast = append(t.childLast, int32(len(queue)+len(n.children)))
		t.elemFirst = append(t.elemFirst, 0) // stitched below
		t.elemLast = append(t.elemLast, 0)
		for _, c := range n.children {
			queue = append(queue, c)
			parents = append(parents, int32(at))
		}
	}
	for s := len(queue) - 1; s >= 0; s-- {
		if !t.leaf[s] {
			t.elemFirst[s] = t.elemFirst[t.childFirst[s]]
			t.elemLast[s] = t.elemLast[t.childLast[s]-1]
		}
	}
	t.sum = kernel.NewSummary(t.pts, t.dim, t.sizeN)
}

// computeBox fills the node's bounding box from its points or children.
func (n *buildNode) computeBox(children []*buildNode) {
	if n.leaf {
		n.lo = append([]float64(nil), n.points[0]...)
		n.hi = append([]float64(nil), n.points[0]...)
		for _, p := range n.points {
			for j, v := range p {
				if v < n.lo[j] {
					n.lo[j] = v
				}
				if v > n.hi[j] {
					n.hi[j] = v
				}
			}
		}
		return
	}
	n.lo = append([]float64(nil), children[0].lo...)
	n.hi = append([]float64(nil), children[0].hi...)
	for _, c := range children {
		for j := range n.lo {
			if c.lo[j] < n.lo[j] {
				n.lo[j] = c.lo[j]
			}
			if c.hi[j] > n.hi[j] {
				n.hi[j] = c.hi[j]
			}
		}
	}
}

// box returns slot s's bounding box (views into the arena blocks).
func (t *Tree) box(s int32) (lo, hi []float64) {
	base := int(s) * t.dim
	return t.lo[base : base+t.dim], t.hi[base : base+t.dim]
}

// point returns the coordinates at packed position pos.
func (t *Tree) point(pos int32) []float64 {
	base := int(pos) * t.dim
	return t.pts[base : base+t.dim]
}

// sqMinMaxDist returns the smallest and largest SQUARED distances from q
// to slot s's box (the shared point-vs-box kernel); query paths compare
// them against squared radii, saving two math.Sqrt per node.
func (t *Tree) sqMinMaxDist(s int32, q []float64) (smin, smax float64) {
	lo, hi := t.box(s)
	return kernel.SqMinMaxPointBox(q, lo, hi)
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.sizeN }

// RangeCount returns how many points lie within distance r of q. All
// comparisons are on squared distances — no per-node math.Sqrt.
func (t *Tree) RangeCount(q []float64, r float64) int {
	if t.sizeN == 0 {
		return 0
	}
	return t.rangeCount(0, q, r*r)
}

func (t *Tree) rangeCount(s int32, q []float64, r2 float64) int {
	smin, smax := t.sqMinMaxDist(s, q)
	if smin > r2 {
		return 0
	}
	if smax <= r2 {
		return int(t.size[s])
	}
	if t.leaf[s] {
		// Ambiguous leaf: stream its packed element range through the
		// block kernels instead of testing per point.
		return kernel.CountRange(t.sum, q, t.pts, int(t.elemFirst[s]), int(t.elemLast[s]), r2)
	}
	count := 0
	for c := t.childFirst[s]; c < t.childLast[s]; c++ {
		count += t.rangeCount(c, q, r2)
	}
	return count
}

// RangeCountMulti returns the neighbor count at every radius of the
// ascending schedule radii from ONE tree traversal; see
// RangeCountMultiAppend for the allocation-free form.
func (t *Tree) RangeCountMulti(q []float64, radii []float64) []int {
	return t.RangeCountMultiAppend(q, radii, nil)
}

// RangeCountMultiAppend appends the neighbor count at every radius of the
// ascending schedule radii — computed in ONE tree traversal — to dst,
// reusing dst's capacity, and returns the extended slice. Each node keeps
// the window [lo, hi) of radii its MBR leaves unresolved: radii the box
// cannot reach are dropped, radii that contain the whole box are credited
// with the subtree's stored size via a difference array, and only the
// radii in between descend. The squared schedule lives in a pooled
// scratch slice, so a probe with a warm dst allocates zero bytes. The
// result is element-wise identical to calling RangeCount per radius.
func (t *Tree) RangeCountMultiAppend(q []float64, radii []float64, dst []int) []int {
	return dualjoin.AppendMultiCounts(radii, dst, true, func(r2 []float64, diff []int) {
		if t.sizeN > 0 {
			t.multiCount(0, q, r2, 0, len(r2), diff)
		}
	})
}

// multiCount resolves the squared-radius window r2[lo:hi] for the subtree
// at slot s; diff is the difference array crediting element ranges in O(1).
func (t *Tree) multiCount(s int32, q []float64, r2 []float64, lo, hi int, diff []int) {
	smin, smax := t.sqMinMaxDist(s, q)
	for lo < hi && smin > r2[lo] {
		lo++ // box out of reach of the smallest radii
	}
	nh := lo
	for nh < hi && smax > r2[nh] {
		nh++ // box fully inside radii [nh, hi): settle them at once
	}
	if nh < hi {
		diff[nh] += int(t.size[s])
		diff[hi] -= int(t.size[s])
	}
	if lo >= nh {
		return
	}
	if t.leaf[s] {
		t.scanBuckets(int(t.elemFirst[s]), int(t.elemLast[s]), q, r2, lo, nh, diff)
		return
	}
	for c := t.childFirst[s]; c < t.childLast[s]; c++ {
		t.multiCount(c, q, r2, lo, nh, diff)
	}
}

// scanBuckets resolves the ambiguous radius window [lo, nh) for the
// packed positions [first, last) by block kernels: each surviving
// point's squared distance is bucketed into the difference array exactly
// as the per-point loop would. No quantized prefilter: the threshold is
// the ambiguous window's UPPER edge, which this node's own box already
// straddles, so per-block bounds almost never prune and only add cost
// (they regressed the batched-probe benchmarks ~20% before the bypass).
func (t *Tree) scanBuckets(first, last int, q []float64, r2 []float64, lo, nh int, diff []int) {
	// Leaves are fanout-sized (runtime-configurable), so the scan chunks
	// the range through a fixed stack buffer — one kernel call per chunk
	// instead of per 8-point block.
	var d2 [leafScanChunk]float64
	thr := r2[nh-1]
	for at := first; at < last; at += leafScanChunk {
		n := last - at
		if n > leafScanChunk {
			n = leafScanChunk
		}
		kernel.Dists(d2[:n], q, t.pts, at, at+n)
		for i := 0; i < n; i++ {
			if v := d2[i]; v <= thr {
				b := lo
				for v > r2[b] {
					b++
				}
				diff[b]++
				diff[nh]--
			}
		}
	}
}

// RangeQuery returns the ids of points within distance r of q.
func (t *Tree) RangeQuery(q []float64, r float64) []int {
	return t.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend appends the ids of points within distance r of q
// (inclusive) to dst, reusing dst's capacity, and returns the extended
// slice. It lets hot loops recycle one scratch buffer across probes.
func (t *Tree) RangeQueryAppend(q []float64, r float64, dst []int) []int {
	if t.sizeN == 0 {
		return dst
	}
	return t.rangeQuery(0, q, r*r, dst)
}

func (t *Tree) rangeQuery(s int32, q []float64, r2 float64, dst []int) []int {
	smin, _ := t.sqMinMaxDist(s, q)
	if smin > r2 {
		return dst
	}
	if t.leaf[s] {
		var d2 [kernel.Block]float64
		for at, last := int(t.elemFirst[s]), int(t.elemLast[s]); at < last; {
			n, pruned := kernel.RangeBlock(&d2, t.sum, q, t.pts, at, last, r2)
			if !pruned {
				for i := 0; i < n; i++ {
					if d2[i] <= r2 {
						dst = append(dst, int(t.ids[at+i]))
					}
				}
			}
			at += n
		}
		return dst
	}
	for c := t.childFirst[s]; c < t.childLast[s]; c++ {
		dst = t.rangeQuery(c, q, r2, dst)
	}
	return dst
}

// DiameterEstimate returns the root bounding box diagonal, an upper bound
// on the true diameter within a factor of √d.
func (t *Tree) DiameterEstimate() float64 {
	if t.sizeN == 0 {
		return 0
	}
	lo, hi := t.box(0)
	return metric.Euclidean(lo, hi)
}

// Height returns the tree height (0 when empty).
func (t *Tree) Height() int {
	if t.sizeN == 0 {
		return 0
	}
	h := 1
	for s := int32(0); !t.leaf[s]; s = t.childFirst[s] {
		h++
	}
	return h
}
