package rtree

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"mccatch/internal/arena"
)

func filePoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		pts[i] = row
	}
	return pts
}

func queryEquivalent(t *testing.T, label string, want, got *Tree, queries [][]float64) {
	t.Helper()
	if want.Size() != got.Size() || want.Height() != got.Height() {
		t.Fatalf("%s: shape mismatch", label)
	}
	if d1, d2 := want.DiameterEstimate(), got.DiameterEstimate(); d1 != d2 {
		t.Errorf("%s: diameter %v vs %v", label, d1, d2)
	}
	radii := []float64{0.5, 2, 8, 32}
	for qi, q := range queries {
		for _, r := range radii {
			if c1, c2 := want.RangeCount(q, r), got.RangeCount(q, r); c1 != c2 {
				t.Fatalf("%s: RangeCount(q%d, %v) %d vs %d", label, qi, r, c1, c2)
			}
			if i1, i2 := want.RangeQuery(q, r), got.RangeQuery(q, r); !reflect.DeepEqual(i1, i2) {
				t.Fatalf("%s: RangeQuery(q%d, %v) mismatch", label, qi, r)
			}
		}
		if m1, m2 := want.RangeCountMulti(q, radii), got.RangeCountMulti(q, radii); !reflect.DeepEqual(m1, m2) {
			t.Fatalf("%s: RangeCountMulti(q%d) %v vs %v", label, qi, m1, m2)
		}
	}
	if a1, a2 := want.CountAllMulti(radii, 2), got.CountAllMulti(radii, 2); !reflect.DeepEqual(a1, a2) {
		t.Errorf("%s: CountAllMulti mismatch", label)
	}
	if b1, b2 := want.BridgeFirsts(queries, radii, 2), got.BridgeFirsts(queries, radii, 2); !reflect.DeepEqual(b1, b2) {
		t.Errorf("%s: BridgeFirsts mismatch", label)
	}
}

func TestFileRoundTripEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, fanout int }{{1, 16}, {40, 4}, {300, 16}} {
		pts := filePoints(tc.n, 3, int64(tc.n))
		built := New(pts, tc.fanout)
		queries := filePoints(16, 3, 99)

		path := filepath.Join(t.TempDir(), "r.mcidx")
		if err := built.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []struct {
			label string
			opts  []arena.Option
		}{{"mmap", nil}, {"heap", []arena.Option{arena.WithHeap()}}} {
			opened, err := Open(path, mode.opts...)
			if err != nil {
				t.Fatalf("n=%d %s: %v", tc.n, mode.label, err)
			}
			if opened.fanout != tc.fanout {
				t.Errorf("n=%d %s: fanout %d, want %d", tc.n, mode.label, opened.fanout, tc.fanout)
			}
			queryEquivalent(t, mode.label, built, opened, queries)
			if (built.sum != nil) != (opened.sum != nil) {
				t.Errorf("n=%d %s: summary presence diverged", tc.n, mode.label)
			}
			var first, second bytes.Buffer
			if err := built.Save(&first); err != nil {
				t.Fatal(err)
			}
			if err := opened.Save(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("n=%d %s: re-save not byte-identical", tc.n, mode.label)
			}
			if err := opened.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFileEmptyTree(t *testing.T) {
	built := New(nil, 0)
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := arena.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	opened, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Size() != 0 || opened.Height() != 0 {
		t.Errorf("empty tree round trip: size %d", opened.Size())
	}
}

// TestFileStructuralValidation corrupts leveled-arena invariants in ways
// the checksums cannot catch (the writer recomputes CRCs over the
// corrupted slices) and checks Open refuses each file rather than
// recursing forever or indexing out of bounds later.
func TestFileStructuralValidation(t *testing.T) {
	pts := filePoints(100, 2, 5)
	for name, mutate := range map[string]func(*Tree){
		"root parent":     func(tr *Tree) { tr.parent[0] = 0 },
		"root range":      func(tr *Tree) { tr.elemLast[0] = 7 },
		"child cycle":     func(tr *Tree) { tr.childFirst[1] = 0; tr.childLast[1] = 1; tr.leaf[1] = false },
		"child overflow":  func(tr *Tree) { tr.childLast[0] = int32(len(tr.leaf)) + 5 },
		"size mismatch":   func(tr *Tree) { tr.size[2] += 3 },
		"leaf children":   func(tr *Tree) { i := leafSlot(tr); tr.childFirst[i] = i + 1 },
		"parent mismatch": func(tr *Tree) { tr.parent[2] = 2 },
		"duplicate id":    func(tr *Tree) { tr.ids[3] = tr.ids[4] },
		"id out of range": func(tr *Tree) { tr.ids[3] = -2 },
		"bad fanout":      func(tr *Tree) { tr.fanout = 1 },
	} {
		t.Run(name, func(t *testing.T) {
			tr := New(pts, 4)
			mutate(tr)
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatal(err)
			}
			f, err := arena.Decode(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := FromFile(f); !errors.Is(err, arena.ErrBadIndexFile) {
				t.Errorf("corrupted %s accepted: %v", name, err)
			}
		})
	}
}

func leafSlot(tr *Tree) int32 {
	for s := range tr.leaf {
		if tr.leaf[s] {
			return int32(s)
		}
	}
	return 0
}

func TestFileKindMismatch(t *testing.T) {
	tr := New(filePoints(8, 2, 1), 4)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = byte(arena.KindKD)
	f, err := arena.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromFile(f); !errors.Is(err, arena.ErrIndexKind) {
		t.Errorf("wrong kind accepted: %v", err)
	}
}
