package rtree

// Persistence for the leveled R-tree arena: Save dumps the node columns,
// the packed leaf elements, and the block prefilter behind
// internal/arena's versioned header; Open rebuilds the tree as slice
// views over the mapping (or over one heap block with arena.WithHeap /
// on platforms without mmap). The traversals touch only these columns,
// so a file-backed tree answers every query identically to the tree
// that saved it.
//
// Open validates the leveled-arena invariants the traversals rely on:
// children always live at strictly larger slots than their parent (BFS
// layout), so recursion and the Height walk terminate; child and
// element ranges stay inside the arena, so no access is out of bounds.

import (
	"fmt"
	"io"

	"mccatch/internal/arena"
	"mccatch/internal/kernel"
)

// Save writes the tree in the arena index-file format.
func (t *Tree) Save(w io.Writer) error {
	_, err := t.writer().WriteTo(w)
	return err
}

// WriteFile writes the tree to path (atomically: temp file + rename).
func (t *Tree) WriteFile(path string) error {
	return t.writer().WriteFile(path)
}

func (t *Tree) writer() *arena.Writer {
	scalars := [4]int64{0, int64(t.fanout), int64(len(t.leaf))}
	if t.sum != nil {
		scalars[0] = 1
	}
	w := arena.NewWriter(arena.KindR, t.sizeN, t.dim, t.DiameterEstimate(), scalars)
	w.Bool("leaf", t.leaf)
	w.I32("size", t.size)
	w.I32("parent", t.parent)
	w.I32("childFirst", t.childFirst)
	w.I32("childLast", t.childLast)
	w.I32("elemFirst", t.elemFirst)
	w.I32("elemLast", t.elemLast)
	w.F64("lo", t.lo)
	w.F64("hi", t.hi)
	w.F64("pts", t.pts)
	w.I32("ids", t.ids)
	if t.sum != nil {
		base, scale, qlo, qhi := t.sum.Columns()
		w.F64("sum.base", base)
		w.F64("sum.scale", scale)
		w.U8("sum.qlo", qlo)
		w.U8("sum.qhi", qhi)
	}
	return w
}

// Open opens an R-tree index file: mmap-backed where available, heap-read
// otherwise (or under arena.WithHeap). Close the tree to release the
// mapping; every query on the tree after Close is invalid.
func Open(path string, opts ...arena.Option) (*Tree, error) {
	f, err := arena.Open(path, opts...)
	if err != nil {
		return nil, err
	}
	t, err := FromFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// FromFile reconstructs an R-tree over an already-opened arena file. On
// success the tree owns f and Close releases it.
func FromFile(f *arena.File) (*Tree, error) {
	if err := f.ExpectKind(arena.KindR); err != nil {
		return nil, err
	}
	fanout := int(f.Scalars[1])
	if fanout < 2 {
		return nil, fmt.Errorf("%w: r arena: fanout %d", arena.ErrBadIndexFile, fanout)
	}
	t := &Tree{sizeN: f.N, dim: f.Dim, fanout: fanout, src: f}
	if f.N == 0 {
		return t, nil
	}
	nNodes := int(f.Scalars[2])
	if nNodes < 1 {
		return nil, fmt.Errorf("%w: r arena: %d nodes for %d points", arena.ErrBadIndexFile, nNodes, f.N)
	}
	var err error
	get64 := func(name string, want int) []float64 {
		vals, e := f.F64(name)
		if e != nil {
			err = e
		} else if len(vals) != want && err == nil {
			err = fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, name, len(vals), want)
		}
		return vals
	}
	get32 := func(name string, want int) []int32 {
		vals, e := f.I32(name)
		if e != nil {
			err = e
		} else if len(vals) != want && err == nil {
			err = fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, name, len(vals), want)
		}
		return vals
	}
	if t.leaf, err = f.Bool("leaf"); err != nil {
		return nil, err
	}
	if len(t.leaf) != nNodes {
		return nil, fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, "leaf", len(t.leaf), nNodes)
	}
	t.size = get32("size", nNodes)
	t.parent = get32("parent", nNodes)
	t.childFirst = get32("childFirst", nNodes)
	t.childLast = get32("childLast", nNodes)
	t.elemFirst = get32("elemFirst", nNodes)
	t.elemLast = get32("elemLast", nNodes)
	t.lo = get64("lo", nNodes*t.dim)
	t.hi = get64("hi", nNodes*t.dim)
	t.pts = get64("pts", f.N*t.dim)
	t.ids = get32("ids", f.N)
	if err != nil {
		return nil, err
	}
	if f.Scalars[0] != 0 {
		base, e1 := f.F64("sum.base")
		scale, e2 := f.F64("sum.scale")
		qlo, e3 := f.U8("sum.qlo")
		qhi, e4 := f.U8("sum.qhi")
		for _, e := range []error{e1, e2, e3, e4} {
			if e != nil {
				return nil, e
			}
		}
		if t.sum = kernel.NewSummaryFromColumns(t.dim, f.N, base, scale, qlo, qhi); t.sum == nil {
			return nil, fmt.Errorf("%w: malformed block-summary columns", arena.ErrBadIndexFile)
		}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Dim returns the dimensionality of the indexed points (0 when empty).
func (t *Tree) Dim() int { return t.dim }

// Fanout returns the node fanout the tree was bulk-loaded with.
func (t *Tree) Fanout() int { return t.fanout }

// Items returns the indexed points in id order, reconstructed from the
// arena (each point is a read-only view into the packed coordinate
// block, so a file-backed tree materializes its dataset without copying
// it).
func (t *Tree) Items() [][]float64 {
	items := make([][]float64, t.sizeN)
	for pos := 0; pos < t.sizeN; pos++ {
		items[t.ids[pos]] = t.pts[pos*t.dim : (pos+1)*t.dim : (pos+1)*t.dim]
	}
	return items
}

// Close releases the backing file mapping of a tree produced by
// Open/FromFile (no-op for trees built in memory).
func (t *Tree) Close() error {
	if t.src == nil {
		return nil
	}
	f := t.src
	t.src = nil
	return f.Close()
}

// validate checks the leveled-arena invariants the traversals rely on
// for termination and bounds safety: the root covers every element, each
// internal slot's children occupy a contiguous run of strictly larger
// slots that point back via parent, element ranges nest exactly, every
// non-root slot is claimed by exactly one parent, and ids is a
// permutation. O(nodes + n).
func (t *Tree) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: r arena: %s", arena.ErrBadIndexFile, fmt.Sprintf(format, args...))
	}
	if t.dim <= 0 {
		return bad("dimension %d", t.dim)
	}
	nNodes := int32(len(t.leaf))
	n := int32(t.sizeN)
	if t.parent[0] != -1 {
		return bad("root has parent %d", t.parent[0])
	}
	if t.elemFirst[0] != 0 || t.elemLast[0] != n {
		return bad("root element range [%d, %d) over %d points", t.elemFirst[0], t.elemLast[0], n)
	}
	claimed := make([]bool, nNodes)
	for s := int32(0); s < nNodes; s++ {
		ef, el := t.elemFirst[s], t.elemLast[s]
		if ef < 0 || el < ef || el > n {
			return bad("slot %d: element range [%d, %d)", s, ef, el)
		}
		if t.size[s] != el-ef {
			return bad("slot %d: size %d over range [%d, %d)", s, t.size[s], ef, el)
		}
		if t.leaf[s] {
			if t.childFirst[s] != -1 || t.childLast[s] != -1 {
				return bad("leaf slot %d has children [%d, %d)", s, t.childFirst[s], t.childLast[s])
			}
			continue
		}
		cf, cl := t.childFirst[s], t.childLast[s]
		if cf <= s || cl <= cf || cl > nNodes {
			return bad("slot %d: child range [%d, %d)", s, cf, cl)
		}
		if t.elemFirst[cf] != ef || t.elemLast[cl-1] != el {
			return bad("slot %d: child elements [%d, %d) misaligned with [%d, %d)",
				s, t.elemFirst[cf], t.elemLast[cl-1], ef, el)
		}
		for c := cf; c < cl; c++ {
			if t.parent[c] != s {
				return bad("slot %d: child %d claims parent %d", s, c, t.parent[c])
			}
			if claimed[c] {
				return bad("slot %d claimed twice", c)
			}
			claimed[c] = true
			if c > cf && t.elemFirst[c] != t.elemLast[c-1] {
				return bad("slot %d: sibling gap at child %d", s, c)
			}
		}
	}
	for s := int32(1); s < nNodes; s++ {
		if !claimed[s] {
			return bad("slot %d unreachable", s)
		}
	}
	seen := make([]bool, n)
	for _, id := range t.ids {
		if id < 0 || id >= n || seen[id] {
			return bad("id %d missing or duplicated", id)
		}
		seen[id] = true
	}
	return nil
}
