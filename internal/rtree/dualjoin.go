package rtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/metric"
)

// This file implements the dual-tree multi-radius self-join for the
// R-tree (index.SelfMultiCounter): the neighbor counts of EVERY indexed
// point at EVERY radius of a nested schedule, from one traversal of the
// tree against itself. The min/max squared distances between two MBRs
// bracket every point pair under them, so whole blocks of pairs are
// credited (or discarded) wholesale; only pairs straddling some radius
// descend, bottoming out in leaf-vs-leaf scans. The join is symmetric, so
// unordered node pairs are visited once and credited both ways. All
// comparisons are on squared distances — no math.Sqrt anywhere. The
// accumulator, scheduling and merge machinery is internal/dualjoin's.

// boxDiag2 is the squared diagonal of n's MBR — the largest squared
// distance any pair of points under n can realize.
func boxDiag2(n *node) float64 {
	return dualjoin.SqBoxDiag(n.lo, n.hi)
}

type dualCtx struct {
	radii2 []float64
	acc    *dualjoin.Acc[*node]
}

// creditPoint and creditNode write the accumulator rows raw — crediting
// sits in the join's innermost loop and the concrete-receiver helpers
// inline where dualjoin.Acc's generic methods cannot (see dualjoin.Acc).
func (c *dualCtx) creditPoint(id, from, to, cnt int) {
	row := c.acc.Point[id*c.acc.Stride:]
	row[from] += cnt
	row[to] -= cnt
}

func (c *dualCtx) creditNode(n *node, from, to, cnt int) {
	row := c.acc.Nodes[n]
	if row == nil {
		row = make([]int, c.acc.Stride)
		c.acc.Nodes[n] = row
	}
	row[from] += cnt
	row[to] -= cnt
}

// CountAllMulti returns counts[e][id] = the number of indexed points
// within radii[e] of point id (inclusive, so ≥ 1), for every indexed
// point and every radius of the ascending schedule radii — computed by a
// dual-tree traversal instead of per-point probes. Counts are exact.
// workers ≤ 0 means all cores, 1 means serial; the result is identical
// for every value.
func (t *Tree) CountAllMulti(radii []float64, workers int) [][]int {
	a := len(radii)
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}

	// Work units: the unordered pairs of the root's children (self-pairs
	// included) — up to fanout·(fanout+1)/2 of them — or the root itself
	// when it is a single leaf.
	type unit struct{ i, j int }
	var units []unit
	if t.root != nil {
		if kids := t.root.children; t.root.leaf {
			units = []unit{{-1, -1}}
		} else {
			for i := range kids {
				for j := i; j < len(kids); j++ {
					units = append(units, unit{i, j})
				}
			}
		}
	}
	return dualjoin.CountMatrix(a, t.sizeN, workers, len(units),
		func(u int, acc *dualjoin.Acc[*node]) {
			c := dualCtx{radii2: radii2, acc: acc}
			switch kids := t.root.children; {
			case units[u].i < 0:
				c.selfVisit(t.root, 0, a)
			case units[u].i == units[u].j:
				c.selfVisit(kids[units[u].i], 0, a)
			default:
				c.symVisit(kids[units[u].i], kids[units[u].j], 0, a)
			}
		},
		addSubtree)
}

// addSubtree adds a difference row to every point under n.
func addSubtree(n *node, diff, merged []int) {
	if n.leaf {
		for _, id := range n.ids {
			row := merged[id*len(diff):]
			for k, v := range diff {
				row[k] += v
			}
		}
		return
	}
	for _, c := range n.children {
		addSubtree(c, diff, merged)
	}
}

// selfVisit classifies the pair of subtree A with itself for the radius
// window [lo, hi). Self-pairs put the minimum distance at 0, so no radius
// ever drops from the bottom of the window.
func (c *dualCtx) selfVisit(A *node, lo, hi int) {
	smax := boxDiag2(A)
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	if nh < hi {
		c.creditNode(A, nh, hi, A.size)
	}
	if lo >= nh {
		return
	}
	if A.leaf {
		for i, p := range A.points {
			c.creditPoint(A.ids[i], lo, nh, 1) // self-pair: d = 0
			for j := i + 1; j < len(A.points); j++ {
				d2 := metric.SquaredEuclidean(p, A.points[j])
				if d2 > c.radii2[nh-1] {
					continue
				}
				b := lo
				for d2 > c.radii2[b] {
					b++
				}
				c.creditPoint(A.ids[i], b, nh, 1)
				c.creditPoint(A.ids[j], b, nh, 1)
			}
		}
		return
	}
	for i, ci := range A.children {
		c.selfVisit(ci, lo, nh)
		for j := i + 1; j < len(A.children); j++ {
			c.symVisit(ci, A.children[j], lo, nh)
		}
	}
}

// symVisit classifies the unordered pair of DISJOINT subtrees (A, B) for
// the radius window [lo, hi). Every credit goes both ways, so each
// unordered pair is traversed exactly once.
func (c *dualCtx) symVisit(A, B *node, lo, hi int) {
	smin, smax := dualjoin.SqMinMaxBoxBox(A.lo, A.hi, B.lo, B.hi)
	for lo < hi && smin > c.radii2[lo] {
		lo++ // the boxes are fully separated at the smallest radii
	}
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++
	}
	if nh < hi {
		c.creditNode(A, nh, hi, B.size)
		c.creditNode(B, nh, hi, A.size)
	}
	if lo >= nh {
		return
	}
	if A.leaf && B.leaf {
		for i, p := range A.points {
			for j, q := range B.points {
				d2 := metric.SquaredEuclidean(p, q)
				if d2 > c.radii2[nh-1] {
					continue
				}
				b := lo
				for d2 > c.radii2[b] {
					b++
				}
				c.creditPoint(A.ids[i], b, nh, 1)
				c.creditPoint(B.ids[j], b, nh, 1)
			}
		}
		return
	}
	// Descend the internal side — the one with the larger box when both
	// are internal (ties split A, keeping the descent deterministic).
	down, other := A, B
	if A.leaf || (!B.leaf && boxDiag2(B) > boxDiag2(A)) {
		down, other = B, A
	}
	for _, ch := range down.children {
		c.symVisit(ch, other, lo, nh)
	}
}
