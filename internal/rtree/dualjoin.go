package rtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the dual-tree multi-radius self-join for the
// R-tree (index.SelfMultiCounter): the neighbor counts of EVERY indexed
// point at EVERY radius of a nested schedule, from one traversal of the
// tree against itself. The min/max squared distances between two MBRs
// bracket every point pair under them, so whole blocks of pairs are
// credited (or discarded) wholesale; only pairs straddling some radius
// descend, bottoming out in leaf-vs-leaf scans over the packed point
// block. The join is symmetric, so unordered node pairs are visited once
// and credited both ways. All comparisons are on squared distances — no
// math.Sqrt anywhere. Credits are flat: point credits address the packed
// element positions, and a wholesale subtree credit is the slot's
// contiguous element range. The accumulator, scheduling and merge
// machinery is internal/dualjoin's.

// boxDiag2 is the squared diagonal of slot s's MBR — the largest squared
// distance any pair of points under s can realize.
func (t *Tree) boxDiag2(s int32) float64 {
	lo, hi := t.box(s)
	return kernel.SqBoxDiag(lo, hi)
}

type dualCtx struct {
	t      *Tree
	radii2 []float64
	acc    *dualjoin.Acc
	// rows/stride cache acc.Point: in direct (serial) mode the leaf-scan
	// credits below write the two row adds in place — the method call
	// with its buffered fallback is beyond the inlining budget, and these
	// scans are the join's innermost loop.
	rows   []int
	stride int
}

// creditPair buckets one close point pair, crediting both positions.
func (c *dualCtx) creditPair(i, j int32, b, nh int) {
	if rows := c.rows; rows != nil {
		ri := rows[int(i)*c.stride:]
		ri[b]++
		ri[nh]--
		rj := rows[int(j)*c.stride:]
		rj[b]++
		rj[nh]--
		return
	}
	c.acc.CreditPos(i, b, nh, 1)
	c.acc.CreditPos(j, b, nh, 1)
}

// scanPointRange resolves the point at packed position p against every
// point of positions [first, last) for the ambiguous window [lo, nh) by
// block kernels, crediting each close pair both ways exactly as the
// per-point loop would. No quantized prefilter here: the threshold is
// the ambiguous window's UPPER edge — the node-level box bounds already
// placed the pair blocks astride it, so per-block summary bounds almost
// never prune and their cost rivals the exact arithmetic they'd save
// (profiled at ~2x on the 10k x 8d sweep).
func (c *dualCtx) scanPointRange(p int32, first, last, lo, nh int) {
	t := c.t
	q := t.point(p)
	var d2 [leafScanChunk]float64
	r2 := c.radii2
	thr := r2[nh-1]
	for at := first; at < last; at += leafScanChunk {
		n := last - at
		if n > leafScanChunk {
			n = leafScanChunk
		}
		kernel.Dists(d2[:n], q, t.pts, at, at+n)
		for i := 0; i < n; i++ {
			if v := d2[i]; v <= thr {
				b := lo
				for v > r2[b] {
					b++
				}
				c.creditPair(p, int32(at+i), b, nh)
			}
		}
	}
}

// CountAllMulti returns counts[e][id] = the number of indexed points
// within radii[e] of point id (inclusive, so ≥ 1), for every indexed
// point and every radius of the ascending schedule radii — computed by a
// dual-tree traversal instead of per-point probes. Counts are exact.
// workers ≤ 0 means all cores, 1 means serial; the result is identical
// for every value.
func (t *Tree) CountAllMulti(radii []float64, workers int) [][]int {
	a := len(radii)
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}

	// Work units: the unordered pairs of the root's children (self-pairs
	// included) — up to fanout·(fanout+1)/2 of them — or the root itself
	// when it is a single leaf.
	type unit struct{ i, j int32 }
	var units []unit
	if t.sizeN > 0 {
		if t.leaf[0] {
			units = []unit{{-1, -1}}
		} else {
			for i := t.childFirst[0]; i < t.childLast[0]; i++ {
				for j := i; j < t.childLast[0]; j++ {
					units = append(units, unit{i, j})
				}
			}
		}
	}
	return dualjoin.CountMatrix(a, t.sizeN, len(t.leaf), workers, len(units),
		func(u int, acc *dualjoin.Acc) {
			c := dualCtx{t: t, radii2: radii2, acc: acc, rows: acc.Point, stride: acc.Stride}
			switch {
			case units[u].i < 0:
				c.selfVisit(0, 0, a)
			case units[u].i == units[u].j:
				c.selfVisit(units[u].i, 0, a)
			default:
				c.symVisit(units[u].i, units[u].j, 0, a)
			}
		},
		func(node int32) (int32, int32) { return t.elemFirst[node], t.elemLast[node] },
		func(pos int32) int { return int(t.ids[pos]) })
}

// selfVisit classifies the pair of subtree A with itself for the radius
// window [lo, hi). Self-pairs put the minimum distance at 0, so no radius
// ever drops from the bottom of the window.
func (c *dualCtx) selfVisit(A int32, lo, hi int) {
	t := c.t
	smax := t.boxDiag2(A)
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	if nh < hi {
		c.acc.CreditNode(A, nh, hi, int(t.size[A]))
	}
	if lo >= nh {
		return
	}
	if t.leaf[A] {
		last := int(t.elemLast[A])
		for i := int(t.elemFirst[A]); i < last; i++ {
			c.acc.CreditPos(int32(i), lo, nh, 1) // self-pair: d = 0
			if i+1 < last {
				c.scanPointRange(int32(i), i+1, last, lo, nh)
			}
		}
		return
	}
	for i := t.childFirst[A]; i < t.childLast[A]; i++ {
		c.selfVisit(i, lo, nh)
		for j := i + 1; j < t.childLast[A]; j++ {
			c.symVisit(i, j, lo, nh)
		}
	}
}

// symVisit classifies the unordered pair of DISJOINT subtrees (A, B) for
// the radius window [lo, hi). Every credit goes both ways, so each
// unordered pair is traversed exactly once.
func (c *dualCtx) symVisit(A, B int32, lo, hi int) {
	t := c.t
	alo, ahi := t.box(A)
	blo, bhi := t.box(B)
	smin, smax := dualjoin.SqMinMaxBoxBox(alo, ahi, blo, bhi)
	for lo < hi && smin > c.radii2[lo] {
		lo++ // the boxes are fully separated at the smallest radii
	}
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++
	}
	if nh < hi {
		c.acc.CreditNode(A, nh, hi, int(t.size[B]))
		c.acc.CreditNode(B, nh, hi, int(t.size[A]))
	}
	if lo >= nh {
		return
	}
	if t.leaf[A] && t.leaf[B] {
		bFirst, bLast := int(t.elemFirst[B]), int(t.elemLast[B])
		for i := t.elemFirst[A]; i < t.elemLast[A]; i++ {
			c.scanPointRange(i, bFirst, bLast, lo, nh)
		}
		return
	}
	// Descend the internal side — the one with the larger box when both
	// are internal (ties split A, keeping the descent deterministic).
	down, other := A, B
	if t.leaf[A] || (!t.leaf[B] && t.boxDiag2(B) > t.boxDiag2(A)) {
		down, other = B, A
	}
	for ch := t.childFirst[down]; ch < t.childLast[down]; ch++ {
		c.symVisit(ch, other, lo, nh)
	}
}
