package rtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the cross-set dual-tree COUNT join for the
// R-tree (index.CrossCounter): for every query of a second point set,
// its full neighbor-count row over a nested radius schedule, from one
// traversal of the index tree against a throwaway STR tree bulk-built
// over the queries. The geometry is the bridge join's (crossjoin.go) —
// min/max squared MBR distances classify query×point pairs wholesale —
// but the accumulation is the self-join's additive count differences
// (dualjoin.Acc), credited one-directionally into the query tree's flat
// rows: a settled range [nh, hi) telescopes against the ancestor's so
// each pair's credited ranges tile exactly once. Leaf×leaf pairs
// resolve by block kernels over the packed point blocks, without the
// quantized prefilter — as in the self-join, the threshold is the
// ambiguous window's upper edge, which the node-level bounds already
// straddle. All comparisons are on squared distances.

type crossCountCtx struct {
	in, out *Tree
	radii2  []float64
	acc     *dualjoin.Acc
	rows    []int
	stride  int
}

// creditQuery buckets cnt indexed points into query position p's row
// over [b, nh).
func (c *crossCountCtx) creditQuery(p int32, b, nh, cnt int) {
	if rows := c.rows; rows != nil {
		rp := rows[int(p)*c.stride:]
		rp[b] += cnt
		rp[nh] -= cnt
		return
	}
	c.acc.CreditPos(p, b, nh, cnt)
}

// CountCrossMulti returns counts[e][i] = the number of indexed points
// within radii[e] (inclusive) of queries[i], for every query and every
// radius of the ascending schedule — computed by a dual-tree traversal
// against a throwaway tree over the queries instead of per-query
// probes. Counts are exact. workers ≤ 0 means all cores, 1 means
// serial; the result is identical for every value.
func (t *Tree) CountCrossMulti(queries [][]float64, radii []float64, workers int) [][]int {
	a := len(radii)
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}
	// Work units: the cross product of the query tree's top-level nodes
	// with the index tree's, exactly as in the bridge join — each unit
	// resolves one (query subtree, index subtree) pair completely, and
	// the additive credits merge across any schedule.
	var out *Tree
	var outSeeds, inSeeds []int32
	if t.sizeN > 0 && len(queries) > 0 && a > 0 {
		out = NewWithWorkers(queries, t.fanout, workers)
		outSeeds = out.topNodes()
		inSeeds = t.topNodes()
	}
	nodes := 0
	if out != nil {
		nodes = len(out.leaf)
	}
	return dualjoin.CountMatrix(a, len(queries), nodes, workers, len(outSeeds)*len(inSeeds),
		func(u int, acc *dualjoin.Acc) {
			c := crossCountCtx{in: t, out: out, radii2: radii2, acc: acc,
				rows: acc.Point, stride: acc.Stride}
			c.countVisit(outSeeds[u/len(inSeeds)], inSeeds[u%len(inSeeds)], 0, a)
		},
		func(node int32) (int32, int32) { return out.elemFirst[node], out.elemLast[node] },
		func(pos int32) int { return int(out.ids[pos]) })
}

// countVisit classifies the pair of query subtree O against index
// subtree I for the radius window [lo, hi): radii below lo cannot
// bridge the two MBRs, and radii at and above hi were settled wholesale
// by an ancestor pair. Crediting is one-directional — only the query
// side accumulates.
func (c *crossCountCtx) countVisit(O, I int32, lo, hi int) {
	olo, ohi := c.out.box(O)
	ilo, ihi := c.in.box(I)
	smin, smax := dualjoin.SqMinMaxBoxBox(olo, ohi, ilo, ihi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		// Every index point under I is within radii[nh..hi) of every
		// query under O.
		c.acc.CreditNode(O, nh, hi, int(c.in.size[I]))
	}
	if lo >= nh {
		return
	}
	if c.out.leaf[O] && c.in.leaf[I] {
		iFirst, iLast := int(c.in.elemFirst[I]), int(c.in.elemLast[I])
		for i := c.out.elemFirst[O]; i < c.out.elemLast[O]; i++ {
			c.scanCount(i, iFirst, iLast, lo, nh)
		}
		return
	}
	// Descend the internal side — the one with the larger box when both
	// are internal (ties descend the query side, keeping the descent
	// deterministic).
	if c.out.leaf[O] || (!c.in.leaf[I] && c.in.boxDiag2(I) > c.out.boxDiag2(O)) {
		for ch := c.in.childFirst[I]; ch < c.in.childLast[I]; ch++ {
			c.countVisit(O, ch, lo, nh)
		}
		return
	}
	for ch := c.out.childFirst[O]; ch < c.out.childLast[O]; ch++ {
		c.countVisit(ch, I, lo, nh)
	}
}

// scanCount resolves the query at packed position pos against the index
// points of positions [first, last) for the ambiguous window [lo, nh)
// by block kernels, crediting each close pair into the query's row
// exactly as a per-point probe would.
func (c *crossCountCtx) scanCount(pos int32, first, last, lo, nh int) {
	q := c.out.point(pos)
	in := c.in
	var d2 [leafScanChunk]float64
	r2 := c.radii2
	thr := r2[nh-1]
	for at := first; at < last; at += leafScanChunk {
		n := last - at
		if n > leafScanChunk {
			n = leafScanChunk
		}
		kernel.Dists(d2[:n], q, in.pts, at, at+n)
		for i := 0; i < n; i++ {
			if v := d2[i]; v <= thr {
				b := lo
				for v > r2[b] {
					b++
				}
				c.creditQuery(pos, b, nh, 1)
			}
		}
	}
}
