package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
	"mccatch/internal/parallel"
)

// This file pins the leveled arena layout itself: the structural
// invariants every query and dual join relies on (children ranges that
// partition each level, parent links, contiguous per-subtree element
// ranges over the packed point block), and — via a retained copy of the
// pre-arena pointer implementation — that the flattened tree answers
// queries identically to the linked build it replaced.

// TestArenaInvariants checks, on random trees:
//   - the children ranges of the internal slots partition [1, #slots)
//     exactly once (level-by-level layout, root at 0), and parent links
//     invert them;
//   - the leaf element ranges partition [0, n) in slot order, and every
//     internal slot's element range is the union of its children's;
//   - every packed coordinate block matches the original point of its id;
//   - every slot's box bounds exactly the points of its element range,
//     and size matches the range length.
func TestArenaInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(900)
		dim := 1 + rng.Intn(4)
		fanout := []int{0, 4, 7}[rng.Intn(3)]
		pts := randPoints(rng, n, dim)
		tr := New(pts, fanout)
		slots := len(tr.leaf)
		childOf := make([]int, slots) // how many parents claim each slot
		nextElem := int32(0)
		for s := 0; s < slots; s++ {
			if int(tr.size[s]) != int(tr.elemLast[s]-tr.elemFirst[s]) {
				t.Fatalf("slot %d: size %d != element range %d", s, tr.size[s], tr.elemLast[s]-tr.elemFirst[s])
			}
			if tr.leaf[s] {
				if tr.elemFirst[s] != nextElem {
					t.Fatalf("slot %d: leaf range starts at %d, want %d (leaves must pack in slot order)",
						s, tr.elemFirst[s], nextElem)
				}
				nextElem = tr.elemLast[s]
				continue
			}
			first, last := tr.childFirst[s], tr.childLast[s]
			if first <= int32(s) || last > int32(slots) || first >= last {
				t.Fatalf("slot %d: bad children range [%d,%d)", s, first, last)
			}
			for c := first; c < last; c++ {
				childOf[c]++
				if tr.parent[c] != int32(s) {
					t.Fatalf("slot %d: child %d has parent %d", s, c, tr.parent[c])
				}
			}
			if tr.elemFirst[s] != tr.elemFirst[first] || tr.elemLast[s] != tr.elemLast[last-1] {
				t.Fatalf("slot %d: element range is not the union of its children's", s)
			}
		}
		if nextElem != int32(n) {
			t.Fatalf("leaf ranges cover %d elements, want %d", nextElem, n)
		}
		if childOf[0] != 0 || tr.parent[0] != -1 {
			t.Fatal("root must be claimed by no parent")
		}
		for s := 1; s < slots; s++ {
			if childOf[s] != 1 {
				t.Fatalf("slot %d claimed by %d parents, want exactly 1", s, childOf[s])
			}
		}
		// Packed coordinates and boxes.
		for s := int32(0); s < int32(slots); s++ {
			lo, hi := tr.box(s)
			for j := 0; j < dim; j++ {
				first := tr.elemFirst[s]
				mn, mx := tr.pts[int(first)*dim+j], tr.pts[int(first)*dim+j]
				for pos := first; pos < tr.elemLast[s]; pos++ {
					v := tr.pts[int(pos)*dim+j]
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				if lo[j] != mn || hi[j] != mx {
					t.Fatalf("slot %d: box axis %d [%v,%v], points span [%v,%v]", s, j, lo[j], hi[j], mn, mx)
				}
			}
		}
		seen := make([]bool, n)
		for pos := 0; pos < n; pos++ {
			id := tr.ids[pos]
			if seen[id] {
				t.Fatalf("id %d packed twice", id)
			}
			seen[id] = true
			for j, v := range pts[id] {
				if tr.pts[pos*dim+j] != v {
					t.Fatalf("position %d: coordinate block does not match point %d", pos, id)
				}
			}
		}
	}
}

// --- Retained reference: the pre-arena pointer R-tree (STR build). ---
// The build reuses the package's own tiling (buildNode is still the
// construction shape); the queries below are the pre-arena pointer
// traversals, kept verbatim.

func refSqMinMax(n *buildNode, q []float64) (smin, smax float64) {
	for j := range q {
		v := q[j]
		if d := n.lo[j] - v; d > 0 {
			smin += d * d
		} else if d := v - n.hi[j]; d > 0 {
			smin += d * d
		}
		far := v - n.lo[j]
		if f := n.hi[j] - v; f > far {
			far = f
		}
		smax += far * far
	}
	return smin, smax
}

func refRangeCount(n *buildNode, q []float64, r2 float64) int {
	smin, smax := refSqMinMax(n, q)
	if smin > r2 {
		return 0
	}
	if smax <= r2 {
		return n.size
	}
	count := 0
	if n.leaf {
		for _, p := range n.points {
			if metric.SquaredEuclidean(q, p) <= r2 {
				count++
			}
		}
		return count
	}
	for _, c := range n.children {
		count += refRangeCount(c, q, r2)
	}
	return count
}

func refRangeIDs(n *buildNode, q []float64, r2 float64, dst []int) []int {
	smin, _ := refSqMinMax(n, q)
	if smin > r2 {
		return dst
	}
	if n.leaf {
		for k, p := range n.points {
			if metric.SquaredEuclidean(q, p) <= r2 {
				dst = append(dst, n.ids[k])
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = refRangeIDs(c, q, r2, dst)
	}
	return dst
}

// TestArenaMatchesReferencePointerBuild runs the same random inputs
// through the arena tree and a pointer tree built by the same STR tiling
// and demands identical answers for counts, batched counts and id sets.
func TestArenaMatchesReferencePointerBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(700)
		dim := 1 + rng.Intn(3)
		pts := randPoints(rng, n, dim)
		tr := New(pts, 0)
		// Reference pointer build with the package's own deterministic
		// tiling (the arena build froze an identical tree).
		refT := &Tree{sizeN: n, fanout: DefaultFanout, dim: dim}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		ref := refT.pack(refT.buildLeaves(pts, ids, parallel.NewLimiter(1)))

		diam := tr.DiameterEstimate()
		radii := make([]float64, 9)
		for e := range radii {
			radii[e] = diam / float64(int(1)<<(len(radii)-1-e))
		}
		for probe := 0; probe < 10; probe++ {
			q := pts[rng.Intn(n)]
			r := rng.Float64() * diam
			if got, want := tr.RangeCount(q, r), refRangeCount(ref, q, r*r); got != want {
				t.Fatalf("RangeCount=%d, reference %d", got, want)
			}
			multi := tr.RangeCountMulti(q, radii)
			for e, rr := range radii {
				if want := refRangeCount(ref, q, rr*rr); multi[e] != want {
					t.Fatalf("RangeCountMulti[%d]=%d, reference %d", e, multi[e], want)
				}
			}
			got := tr.RangeQuery(q, r)
			want := refRangeIDs(ref, q, r*r, nil)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("RangeQuery returned %d ids, reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatal("RangeQuery id sets differ from reference")
				}
			}
		}
	}
}
