package rtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the cross-set dual-tree bridge join for the
// R-tree (index.CrossMultiCounter): for every query of a second point
// set — MCCATCH's outliers probing the inlier tree — the index of the
// first radius of a nested schedule with at least one indexed neighbor,
// from one traversal of the inlier tree against a throwaway STR tree
// bulk-built over the queries. The min/max squared distances between two
// MBRs bracket every query×point pair under them, so whole blocks settle
// wholesale; only pairs straddling some radius descend, bottoming out in
// leaf-vs-leaf scans over the packed point blocks. Accumulation is
// per-query MINIMA (see internal/dualjoin's MinAcc), so any bound
// already credited to a query or a query subtree narrows later pairs'
// windows from above; the rows are flat — by the query tree's packed
// positions and node slots. All comparisons are on squared distances —
// no math.Sqrt anywhere.

type crossCtx struct {
	in, out *Tree
	radii2  []float64
	acc     *dualjoin.MinAcc
}

func (c *crossCtx) creditPos(pos int32, b int) {
	if int32(b) < c.acc.Best[pos] {
		c.acc.Best[pos] = int32(b)
	}
}

func (c *crossCtx) creditNode(n int32, b int) {
	if int32(b) < c.acc.NodeBest[n] {
		c.acc.NodeBest[n] = int32(b)
	}
}

// BridgeFirsts returns, for each query point, the index of the first
// radius of the ascending schedule radii with at least one indexed point
// within that radius (inclusive), or len(radii) when even the largest
// radius finds none — computed by a dual-tree traversal of the index
// against a throwaway tree over the queries. Results are exact and
// identical for every worker count.
func (t *Tree) BridgeFirsts(queries [][]float64, radii []float64, workers int) []int {
	a := len(radii)
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}

	// Work units: the cross product of the query tree's top-level nodes
	// with the index tree's — each unit resolves one (query subtree,
	// index subtree) pair completely, and their minima merge across any
	// schedule.
	var out *Tree
	var outSeeds, inSeeds []int32
	if t.sizeN > 0 && len(queries) > 0 && a > 0 {
		out = NewWithWorkers(queries, t.fanout, workers)
		outSeeds = out.topNodes()
		inSeeds = t.topNodes()
	}
	nodes := 0
	if out != nil {
		nodes = len(out.leaf)
	}
	return dualjoin.FirstMatrix(a, len(queries), nodes, workers, len(outSeeds)*len(inSeeds),
		func(u int, acc *dualjoin.MinAcc) {
			c := crossCtx{in: t, out: out, radii2: radii2, acc: acc}
			c.crossVisit(outSeeds[u/len(inSeeds)], inSeeds[u%len(inSeeds)], 0, a)
		},
		func(node int32) (int32, int32) { return out.elemFirst[node], out.elemLast[node] },
		func(pos int32) int { return int(out.ids[pos]) })
}

// topNodes returns the root's children, or the root itself when it is a
// leaf — the deterministic top-level decomposition the units pair up.
func (t *Tree) topNodes() []int32 {
	if t.leaf[0] {
		return []int32{0}
	}
	seeds := make([]int32, 0, t.childLast[0]-t.childFirst[0])
	for c := t.childFirst[0]; c < t.childLast[0]; c++ {
		seeds = append(seeds, c)
	}
	return seeds
}

// crossVisit classifies the pair of query subtree O against index subtree
// I for the radius window [lo, hi): radii below lo cannot bridge the two
// MBRs, and every query under O is already known to meet an indexed
// point by radii[hi]. Crediting is one-directional — only the query side
// accumulates.
func (c *crossCtx) crossVisit(O, I int32, lo, hi int) {
	if b := int(c.acc.NodeBest[O]); b < hi {
		hi = b // every query under O already meets a point by radii[b]
	}
	if lo >= hi {
		return
	}
	olo, ohi := c.out.box(O)
	ilo, ihi := c.in.box(I)
	smin, smax := dualjoin.SqMinMaxBoxBox(olo, ohi, ilo, ihi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditNode(O, nh) // every pair lies within radii[nh]
	}
	if lo >= nh {
		return
	}
	if c.out.leaf[O] && c.in.leaf[I] {
		iFirst, iLast := int(c.in.elemFirst[I]), int(c.in.elemLast[I])
		for i := c.out.elemFirst[O]; i < c.out.elemLast[O]; i++ {
			ph := nh
			if b := int(c.acc.Best[i]); b < ph {
				ph = b // a bound from an earlier pair narrows this scan
			}
			if ph > lo {
				c.scanProbe(i, iFirst, iLast, lo, ph)
			}
		}
		return
	}
	// Descend the internal side — the one with the larger box when both
	// are internal (ties descend the query side, keeping the descent
	// deterministic).
	if c.out.leaf[O] || (!c.in.leaf[I] && c.in.boxDiag2(I) > c.out.boxDiag2(O)) {
		for ch := c.in.childFirst[I]; ch < c.in.childLast[I]; ch++ {
			c.crossVisit(O, ch, lo, nh)
		}
		return
	}
	for ch := c.out.childFirst[O]; ch < c.out.childLast[O]; ch++ {
		c.crossVisit(ch, I, lo, nh)
	}
}

// scanProbe resolves the query at packed position pos against the index
// points of positions [first, last) by block kernels for the window
// [lo, hi): it tracks the best (smallest) bucket seen, tightening the
// prefilter threshold as bounds land — a block beyond the current best
// cannot improve it — and credits the final bound once. Exactly the
// minimum the per-point loop would find.
func (c *crossCtx) scanProbe(pos int32, first, last, lo, hi int) {
	q := c.out.point(pos)
	in := c.in
	var d2 [kernel.Block]float64
	r2 := c.radii2
	cur := hi
	for at := first; at < last && cur > lo; {
		thr := r2[cur-1]
		n, pruned := kernel.RangeBlock(&d2, in.sum, q, in.pts, at, last, thr)
		if !pruned {
			for i := 0; i < n; i++ {
				if v := d2[i]; v <= thr {
					b := lo
					for v > r2[b] {
						b++
					}
					cur = b
					if cur <= lo {
						break
					}
					thr = r2[cur-1]
				}
			}
		}
		at += n
	}
	if cur < hi {
		c.creditPos(pos, cur)
	}
}
