package rtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/metric"
)

// This file implements the cross-set dual-tree bridge join for the
// R-tree (index.CrossMultiCounter): for every query of a second point
// set — MCCATCH's outliers probing the inlier tree — the index of the
// first radius of a nested schedule with at least one indexed neighbor,
// from one traversal of the inlier tree against a throwaway STR tree
// bulk-built over the queries. The min/max squared distances between two
// MBRs bracket every query×point pair under them, so whole blocks settle
// wholesale; only pairs straddling some radius descend, bottoming out in
// leaf-vs-leaf scans. Accumulation is per-query MINIMA (see
// internal/dualjoin's MinAcc), so any bound already credited to a query
// or a query subtree narrows later pairs' windows from above. All
// comparisons are on squared distances — no math.Sqrt anywhere.

type crossCtx struct {
	radii2 []float64
	acc    *dualjoin.MinAcc[*node]
}

// creditPoint and creditNode write the accumulator rows raw — crediting
// sits in the join's innermost loop, and these concrete-receiver helpers
// inline where a generic method would not (see dualjoin.MinAcc).
func (c *crossCtx) creditPoint(id, b int) {
	if b < c.acc.Best[id] {
		c.acc.Best[id] = b
	}
}

func (c *crossCtx) creditNode(n *node, b int) {
	if cur, ok := c.acc.Nodes[n]; !ok || b < cur {
		c.acc.Nodes[n] = b
	}
}

// BridgeFirsts returns, for each query point, the index of the first
// radius of the ascending schedule radii with at least one indexed point
// within that radius (inclusive), or len(radii) when even the largest
// radius finds none — computed by a dual-tree traversal of the index
// against a throwaway tree over the queries. Results are exact and
// identical for every worker count.
func (t *Tree) BridgeFirsts(queries [][]float64, radii []float64, workers int) []int {
	a := len(radii)
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}

	// Work units: the cross product of the query tree's top-level nodes
	// with the index tree's — each unit resolves one (query subtree,
	// index subtree) pair completely, and their minima merge across any
	// schedule.
	var outSeeds, inSeeds []*node
	if t.root != nil && len(queries) > 0 && a > 0 {
		out := NewWithWorkers(queries, t.fanout, workers)
		outSeeds = topNodes(out.root)
		inSeeds = topNodes(t.root)
	}
	return dualjoin.FirstMatrix(a, len(queries), workers, len(outSeeds)*len(inSeeds),
		func(u int, acc *dualjoin.MinAcc[*node]) {
			c := crossCtx{radii2: radii2, acc: acc}
			c.crossVisit(outSeeds[u/len(inSeeds)], inSeeds[u%len(inSeeds)], 0, a)
		},
		pushSubtreeMin)
}

// topNodes returns a node's children, or the node itself when it is a
// leaf — the deterministic top-level decomposition the units pair up.
func topNodes(n *node) []*node {
	if n.leaf {
		return []*node{n}
	}
	return n.children
}

// pushSubtreeMin lowers the merged first-index of every query under n to
// bound, pushing a wholesale subtree credit down to its points.
func pushSubtreeMin(n *node, bound int, merged []int) {
	if n.leaf {
		for _, id := range n.ids {
			if bound < merged[id] {
				merged[id] = bound
			}
		}
		return
	}
	for _, c := range n.children {
		pushSubtreeMin(c, bound, merged)
	}
}

// crossVisit classifies the pair of query subtree O against index subtree
// I for the radius window [lo, hi): radii below lo cannot bridge the two
// MBRs, and every query under O is already known to meet an indexed
// point by radii[hi]. Crediting is one-directional — only the query side
// accumulates.
func (c *crossCtx) crossVisit(O, I *node, lo, hi int) {
	if b, ok := c.acc.Nodes[O]; ok && b < hi {
		hi = b // every query under O already meets a point by radii[b]
	}
	if lo >= hi {
		return
	}
	smin, smax := dualjoin.SqMinMaxBoxBox(O.lo, O.hi, I.lo, I.hi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditNode(O, nh) // every pair lies within radii[nh]
	}
	if lo >= nh {
		return
	}
	if O.leaf && I.leaf {
		for i, p := range O.points {
			ph := nh
			if b := c.acc.Best[O.ids[i]]; b < ph {
				ph = b // a bound from an earlier pair narrows this scan
			}
			for _, q := range I.points {
				if ph <= lo {
					break // nothing below the bound left to resolve
				}
				d2 := metric.SquaredEuclidean(p, q)
				if d2 > c.radii2[ph-1] {
					continue
				}
				b := lo
				for d2 > c.radii2[b] {
					b++
				}
				c.creditPoint(O.ids[i], b)
				ph = b
			}
		}
		return
	}
	// Descend the internal side — the one with the larger box when both
	// are internal (ties descend the query side, keeping the descent
	// deterministic).
	if O.leaf || (!I.leaf && boxDiag2(I) > boxDiag2(O)) {
		for _, ch := range I.children {
			c.crossVisit(O, ch, lo, nh)
		}
		return
	}
	for _, ch := range O.children {
		c.crossVisit(ch, I, lo, nh)
	}
}
