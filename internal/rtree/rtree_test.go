package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestEmptyAndSingleton(t *testing.T) {
	tr := New(nil, 0)
	if tr.Size() != 0 || tr.RangeCount([]float64{0}, 5) != 0 || tr.DiameterEstimate() != 0 {
		t.Error("empty tree should be inert")
	}
	if tr.Height() != 0 {
		t.Error("empty height should be 0")
	}
	one := New([][]float64{{3, 4}}, 0)
	if one.RangeCount([]float64{3, 4}, 0) != 1 || one.Size() != 1 {
		t.Error("singleton tree broken")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(500)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		tr := New(pts, 8)
		for q := 0; q < 10; q++ {
			query := pts[rng.Intn(n)]
			r := rng.Float64() * 60
			got := tr.RangeQuery(query, r)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if metric.Euclidean(query, p) <= r {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: RangeQuery len=%d, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatal("RangeQuery ids mismatch")
				}
			}
			if c := tr.RangeCount(query, r); c != len(want) {
				t.Fatalf("RangeCount=%d, want %d", c, len(want))
			}
		}
	}
}

func TestCountAggregationFullCover(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 3000, 2)
	tr := New(pts, 16)
	// A radius covering everything must count n exactly (and fast).
	if c := tr.RangeCount([]float64{50, 50}, 1e6); c != 3000 {
		t.Fatalf("full-cover count = %d, want 3000", c)
	}
}

func TestDuplicates(t *testing.T) {
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{7, 7}
	}
	pts = append(pts, []float64{50, 50})
	tr := New(pts, 8)
	if c := tr.RangeCount([]float64{7, 7}, 0); c != 100 {
		t.Errorf("duplicate count = %d, want 100", c)
	}
}

func TestDiameterAndHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 2000, 3)
	tr := New(pts, 8)
	trueD := 0.0
	for i := 0; i < 200; i++ { // sampled lower bound
		for j := i + 1; j < 200; j++ {
			if d := metric.Euclidean(pts[i], pts[j]); d > trueD {
				trueD = d
			}
		}
	}
	est := tr.DiameterEstimate()
	if est < trueD {
		t.Errorf("bbox diagonal %v below sampled diameter %v", est, trueD)
	}
	if tr.Height() < 3 {
		t.Errorf("2000 points at fanout 8 should be ≥ 3 levels, got %d", tr.Height())
	}
}

func TestMCCatchRunsOnRTree(t *testing.T) {
	// The R-tree satisfies index.Index, so the whole pipeline runs on it;
	// asserted via the public API in the root package's tests — here just
	// check interface conformance at compile time.
	var _ interface {
		RangeCount(q []float64, r float64) int
		RangeQuery(q []float64, r float64) []int
		Size() int
		DiameterEstimate() float64
	} = New(nil, 0)
}

// sameTree asserts two R-tree arenas are bit-identical, slice by slice —
// the parallel STR build's determinism contract.
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.sizeN != b.sizeN || a.dim != b.dim || len(a.leaf) != len(b.leaf) {
		t.Fatalf("shape mismatch: size %d/%d dim %d/%d nodes %d/%d",
			a.sizeN, b.sizeN, a.dim, b.dim, len(a.leaf), len(b.leaf))
	}
	for s := range a.leaf {
		if a.leaf[s] != b.leaf[s] || a.size[s] != b.size[s] || a.parent[s] != b.parent[s] ||
			a.childFirst[s] != b.childFirst[s] || a.childLast[s] != b.childLast[s] ||
			a.elemFirst[s] != b.elemFirst[s] || a.elemLast[s] != b.elemLast[s] {
			t.Fatalf("slot %d mismatch", s)
		}
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] {
			t.Fatalf("ids[%d] = %d vs %d", i, a.ids[i], b.ids[i])
		}
	}
	for i := range a.pts {
		if a.pts[i] != b.pts[i] {
			t.Fatalf("pts[%d] = %v vs %v", i, a.pts[i], b.pts[i])
		}
	}
	for i := range a.lo {
		if a.lo[i] != b.lo[i] || a.hi[i] != b.hi[i] {
			t.Fatalf("box value %d mismatch", i)
		}
	}
}

// TestParallelBuildIdenticalToSerial bulk-loads well above the tile
// fan-out threshold and demands bit-identical trees for every worker
// count.
func TestParallelBuildIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 3 * parallelTileMin
	pts := randPoints(rng, n, 3)
	for i := 0; i < n/10; i++ { // duplicated coordinates stress tiebreaks
		pts[rng.Intn(n)] = append([]float64(nil), pts[rng.Intn(n)]...)
	}
	serial := NewWithWorkers(pts, 0, 1)
	for _, w := range []int{0, 2, 8} {
		par := NewWithWorkers(pts, 0, w)
		sameTree(t, serial, par)
		if serial.Height() != par.Height() {
			t.Errorf("workers=%d: height differs", w)
		}
	}
}
