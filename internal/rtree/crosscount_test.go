package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// bruteCrossCounts is the brute-force oracle for the cross count join:
// counts[e][i] = indexed points within radii[e] of queries[i], compared
// on squared distances — the domain every R-tree query path uses.
func bruteCrossCounts(in, queries [][]float64, radii []float64) [][]int {
	counts := make([][]int, len(radii))
	for e := range counts {
		counts[e] = make([]int, len(queries))
	}
	for i, q := range queries {
		for _, p := range in {
			d2 := metric.SquaredEuclidean(q, p)
			for e, r := range radii {
				if d2 <= r*r {
					counts[e][i]++
				}
			}
		}
	}
	return counts
}

func assertCrossCountsMatch(t *testing.T, label string, tr *Tree, in, queries [][]float64, radii []float64) {
	t.Helper()
	want := bruteCrossCounts(in, queries, radii)
	for _, workers := range crossWorkerCounts {
		got := tr.CountCrossMulti(queries, radii, workers)
		if len(got) != len(want) {
			t.Fatalf("%s (workers=%d): %d rows, want %d", label, workers, len(got), len(want))
		}
		for e := range want {
			for i := range want[e] {
				if got[e][i] != want[e][i] {
					t.Fatalf("%s (workers=%d): counts[%d][%d] = %d, want %d (query %v)",
						label, workers, e, i, got[e][i], want[e][i], queries[i])
				}
			}
		}
	}
}

func TestCountCrossMultiMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(400)
		dim := 1 + rng.Intn(4)
		in := randPoints(rng, n, dim)
		queries := randPoints(rng, rng.Intn(80), dim)
		for i := rng.Intn(10); i > 0; i-- {
			queries = append(queries, append([]float64(nil), in[rng.Intn(len(in))]...))
		}
		tr := New(in, 0)
		assertCrossCountsMatch(t, fmt.Sprintf("trial%d", trial), tr, in, queries, randRadii(rng, 150))
	}
}

func TestCountCrossMultiClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	var in, queries [][]float64
	for b := 0; b < 5; b++ {
		cx, cy := rng.Float64()*50, rng.Float64()*50
		for i := 0; i < 50; i++ {
			in = append(in, []float64{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5})
		}
	}
	for b := 0; b < 8; b++ {
		cx, cy := 100+rng.Float64()*200, 100+rng.Float64()*200
		for i := 0; i < 6; i++ {
			queries = append(queries, []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3})
		}
	}
	tr := New(in, 0)
	assertCrossCountsMatch(t, "clustered", tr, in, queries,
		[]float64{0.1, 1, 5, 20, 80, 160, 320, 640})
}

func TestCountCrossMultiEdges(t *testing.T) {
	in := [][]float64{{0, 0}, {1, 0}}
	tr := New(in, 0)
	if got := tr.CountCrossMulti(nil, []float64{1, 2}, 1); len(got) != 2 || len(got[0]) != 0 {
		t.Errorf("no queries: got %v, want two empty rows", got)
	}
	if got := tr.CountCrossMulti([][]float64{{5, 5}}, nil, 1); len(got) != 0 {
		t.Errorf("empty radii: got %v, want no rows", got)
	}
	empty := New(nil, 0)
	got := empty.CountCrossMulti([][]float64{{1, 1}}, []float64{1, 2}, 1)
	if len(got) != 2 || got[0][0] != 0 || got[1][0] != 0 {
		t.Errorf("empty tree: got %v, want zero counts", got)
	}
}
