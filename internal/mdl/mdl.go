// Package mdl implements the Minimum Description Length primitives MCCATCH
// uses to stay hands-off: the universal code length for integers (Rissanen),
// the two-part compression cost of an integer set (paper Def. 5), and the
// histogram-partition cutoff search (paper Def. 6).
package mdl

import "math"

// CodeLen returns the universal code length for integers ⟨z⟩ in bits:
// log2(z) + log2(log2(z)) + ..., retaining only the positive terms.
// This is the optimal length when the range of z is unknown a priori
// (Rissanen 1983). By convention ⟨z⟩ = 0 for z ≤ 1, since log2(1) = 0 and
// no positive terms remain.
func CodeLen(z int) float64 {
	if z <= 1 {
		return 0
	}
	sum := 0.0
	term := math.Log2(float64(z))
	for term > 0 {
		sum += term
		term = math.Log2(term)
	}
	return sum
}

// Cost returns the two-part compression cost of a nonempty integer set V
// (paper Def. 5): the cost of the cardinality, of the (ceiled) average, and
// of each value's absolute difference to the average. Ones are added where a
// zero could otherwise appear, so every code length argument is ≥ 1.
// Cost panics if v is empty: Def. 5 is only defined for nonempty sets.
func Cost(v []int) float64 {
	if len(v) == 0 {
		panic("mdl: Cost of empty set is undefined (Def. 5 requires a nonempty set)")
	}
	sum := 0
	for _, x := range v {
		sum += x
	}
	avg := float64(sum) / float64(len(v))
	cost := CodeLen(len(v)) + CodeLen(1+int(math.Ceil(avg)))
	for _, x := range v {
		cost += CodeLen(1 + int(math.Ceil(math.Abs(float64(x)-avg))))
	}
	return cost
}

// PartitionCut finds, over all cut positions e in (from, len(h)], the e that
// minimizes Cost(h[from:e]) + Cost(h[e:]), i.e. the split that best separates
// the tall bins from the short ones (paper Def. 6). from is the index of the
// peak (mode) bin; the cut must leave at least one bin on each side, so e
// ranges over [from+1, len(h)-1]. It returns the winning cut index.
//
// If no valid cut exists (fewer than two bins after the peak), PartitionCut
// returns len(h)-1 when that is > from, and from+1 otherwise, so callers
// always receive an index in (from, len(h)).
func PartitionCut(h []int, from int) int {
	best, bestCost := -1, math.Inf(1)
	for e := from + 1; e < len(h); e++ {
		c := Cost(h[from:e]) + Cost(h[e:])
		if c < bestCost {
			bestCost = c
			best = e
		}
	}
	if best < 0 {
		// Degenerate histogram: fall back to the last bin if possible.
		if from+1 < len(h) {
			return len(h) - 1
		}
		return from + 1
	}
	return best
}
