package mdl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCodeLenSmallValues(t *testing.T) {
	cases := []struct {
		z    int
		want float64
	}{
		{0, 0},
		{1, 0},
		{2, 1},                      // log2(2)=1, log2(1)=0 → stop
		{4, 3},                      // 2 + 1
		{16, 4 + 2 + 1},             // log2(16)=4, log2(4)=2, log2(2)=1
		{256, 8 + 3 + math.Log2(3)}, // 8, 3, log2(3)≈1.585, log2(1.585)>0
		{-5, 0},                     // negative treated as ≤1
	}
	for _, c := range cases {
		got := CodeLen(c.z)
		if c.z == 256 {
			// 256: 8 + 3 + log2(3) + log2(log2(3)) ≈ 8+3+1.585+0.664
			want := 8.0
			term := 8.0
			for {
				term = math.Log2(term)
				if term <= 0 {
					break
				}
				want += term
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("CodeLen(256) = %v, want %v", got, want)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CodeLen(%d) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestCodeLenMonotone(t *testing.T) {
	f := func(a uint16) bool {
		z := int(a)
		return CodeLen(z) <= CodeLen(z+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeLenNonNegative(t *testing.T) {
	f := func(a int32) bool {
		return CodeLen(int(a)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostHomogeneousIsCheaper(t *testing.T) {
	// A homogeneous set must compress better than a heterogeneous one of the
	// same cardinality and comparable magnitude.
	homog := []int{100, 100, 100, 100}
	heter := []int{1, 400, 3, 0}
	if Cost(homog) >= Cost(heter) {
		t.Errorf("Cost(homog)=%v should be < Cost(heter)=%v", Cost(homog), Cost(heter))
	}
}

func TestCostSingleton(t *testing.T) {
	got := Cost([]int{5})
	// ⟨1⟩ + ⟨1+5⟩ + ⟨1+0⟩ = 0 + CodeLen(6) + 0
	want := CodeLen(6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost([5]) = %v, want %v", got, want)
	}
}

func TestCostEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cost(nil) should panic")
		}
	}()
	Cost(nil)
}

func TestPartitionCutSeparatesTallFromShort(t *testing.T) {
	// Tall bins then short bins: best cut is at the boundary.
	h := []int{900, 850, 920, 3, 1, 2, 0, 1}
	got := PartitionCut(h, 0)
	if got != 3 {
		t.Errorf("PartitionCut = %d, want 3", got)
	}
}

func TestPartitionCutFromPeak(t *testing.T) {
	// Peak at index 2; cut considers only bins from the peak on.
	h := []int{5, 40, 990, 940, 2, 1, 0}
	got := PartitionCut(h, 2)
	if got != 4 {
		t.Errorf("PartitionCut = %d, want 4", got)
	}
}

func TestPartitionCutDegenerate(t *testing.T) {
	// Only one bin after the peak: no valid split, falls back in range.
	h := []int{9, 1}
	got := PartitionCut(h, 0)
	if got != 1 {
		t.Errorf("PartitionCut degenerate = %d, want 1", got)
	}
	// Peak at the last bin.
	got = PartitionCut([]int{1, 9}, 1)
	if got != 2 {
		t.Errorf("PartitionCut peak-at-end = %d, want 2", got)
	}
}

func TestPartitionCutAlwaysInRange(t *testing.T) {
	f := func(raw []uint8, fromRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		h := make([]int, len(raw))
		for i, r := range raw {
			h[i] = int(r)
		}
		from := int(fromRaw) % (len(h) - 1)
		e := PartitionCut(h, from)
		return e > from && e <= len(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
