package data

import "math/rand"

// SatelliteTiles builds a Shanghai/Volcanoes-style showcase: average RGB
// values of image tiles, dominated by a smooth background palette, with
// planted small microclusters of unusually colored tiles (the paper's
// red/blue roofs and summit snow) plus a few scattered odd tiles. Ground
// truth is returned even though the paper treats these sets as unlabeled,
// so tests can assert the planted structure is recovered.
type SatelliteTiles struct {
	Vector
	MCs [][]int // planted microclusters (tile indices)
}

// Shanghai generates the 1,296-tile scene of Fig. 1(i): two 2-tile
// microclusters (a red-roof pair and a blue-roof pair) and three scattered
// outlying tiles.
func Shanghai(seed int64) *SatelliteTiles {
	return tiles("Shanghai", 1296, [][]float64{{200, 40, 35}, {30, 90, 200}}, [2]int{2, 2}, 3, seed)
}

// Volcanoes generates the 3,721-tile scene of Fig. 8(i): one 3-tile
// microcluster of snow on the summit and four scattered outlying tiles.
func Volcanoes(seed int64) *SatelliteTiles {
	return tiles("Volcanoes", 3721, [][]float64{{245, 245, 250}}, [2]int{3, 3}, 4, seed)
}

// tiles plants len(mcColors) microclusters whose sizes range over mcSize,
// plus nScatter scattered outliers, on a two-tone urban/terrain background.
func tiles(name string, n int, mcColors [][]float64, mcSize [2]int, nScatter int, seed int64) *SatelliteTiles {
	rng := rand.New(rand.NewSource(seed))
	st := &SatelliteTiles{}
	st.Name = name
	background := [][]float64{{105, 105, 100}, {90, 100, 85}, {120, 115, 110}}
	nOut := nScatter
	sizes := make([]int, len(mcColors))
	for i := range sizes {
		sizes[i] = mcSize[0]
		if mcSize[1] > mcSize[0] {
			sizes[i] += rng.Intn(mcSize[1] - mcSize[0] + 1)
		}
		nOut += sizes[i]
	}
	for i := 0; i < n-nOut; i++ {
		base := background[rng.Intn(len(background))]
		st.Points = append(st.Points, gaussianPoint(rng, base, 6))
		st.Labels = append(st.Labels, false)
	}
	for k, color := range mcColors {
		var mc []int
		for i := 0; i < sizes[k]; i++ {
			mc = append(mc, len(st.Points))
			st.Points = append(st.Points, gaussianPoint(rng, color, 1.5))
			st.Labels = append(st.Labels, true)
		}
		st.MCs = append(st.MCs, mc)
	}
	for i := 0; i < nScatter; i++ {
		// Each scattered tile gets its own odd color, far from the
		// background and from the other outliers.
		odd := []float64{float64(rng.Intn(2)) * 255, 180 + rng.Float64()*60, float64(rng.Intn(2)) * 230}
		st.Points = append(st.Points, gaussianPoint(rng, odd, 1))
		st.Labels = append(st.Labels, true)
	}
	return st
}

// HTTPLike builds the Fig. 8(ii) network-connection scene at the given
// scale: 3-d points (bytes sent, bytes received, duration; log-ish scale),
// a dense mass of normal connections, a tight 30-connection 'DoS back'
// microcluster that sends oddly many bytes, and a few scattered anomalous
// connections. At scale 1 it has 222,027 points like HTTP.
type HTTPLikeData struct {
	Vector
	DoS []int // the planted attack microcluster
}

// HTTPLike generates the scene; scale shrinks n (minimum 2,000) while
// keeping the 30-point attack cluster and the outlier rate.
func HTTPLike(scale float64, seed int64) *HTTPLikeData {
	n := int(222027 * scale)
	if n < 2000 {
		n = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	d := &HTTPLikeData{}
	d.Name = "HTTP"
	nAttack := 30
	nScatter := n / 5000
	if nScatter < 5 {
		nScatter = 5
	}
	nIn := n - nAttack - nScatter
	for i := 0; i < nIn; i++ {
		// Normal traffic: moderate bytes both ways, short durations.
		d.Points = append(d.Points, []float64{
			5 + rng.NormFloat64()*0.8,
			7 + rng.NormFloat64()*0.9,
			1 + rng.Float64()*2,
		})
		d.Labels = append(d.Labels, false)
	}
	for i := 0; i < nAttack; i++ {
		// 'DoS back': oddly many bytes sent to the server, tiny replies.
		d.DoS = append(d.DoS, len(d.Points))
		d.Points = append(d.Points, []float64{
			13.5 + rng.NormFloat64()*0.05,
			2 + rng.NormFloat64()*0.05,
			1.5 + rng.NormFloat64()*0.05,
		})
		d.Labels = append(d.Labels, true)
	}
	for i := 0; i < nScatter; i++ {
		// Rare one-off oddities: huge durations or byte counts.
		p := []float64{5 + rng.NormFloat64(), 7 + rng.NormFloat64(), 1 + rng.Float64()*2}
		p[rng.Intn(3)] += 15 + rng.Float64()*10
		d.Points = append(d.Points, p)
		d.Labels = append(d.Labels, true)
	}
	return d
}
