package data

import (
	"math/rand"

	"mccatch/internal/metric"
)

// SkeletonsData is the Skeletons stand-in: graphs extracted from
// silhouettes. Human skeletons share a bipedal tree topology (with small
// per-silhouette variations); the outliers are quadruped (wild animal)
// skeletons with a different branch structure, far away under the graph
// distance — mirroring Fig. 1(iii).
type SkeletonsData struct {
	Name     string
	Graphs   []metric.Graph
	Labels   []bool
	Outliers []int
}

// Skeletons generates nHuman human and nWild wild-animal skeleton graphs
// (the paper uses 200 and 3).
func Skeletons(nHuman, nWild int, seed int64) *SkeletonsData {
	rng := rand.New(rand.NewSource(seed))
	d := &SkeletonsData{Name: "Skeletons"}
	for i := 0; i < nHuman; i++ {
		d.Graphs = append(d.Graphs, humanSkeleton(rng))
		d.Labels = append(d.Labels, false)
	}
	for i := 0; i < nWild; i++ {
		d.Outliers = append(d.Outliers, len(d.Graphs))
		d.Graphs = append(d.Graphs, quadrupedSkeleton(rng))
		d.Labels = append(d.Labels, true)
	}
	return d
}

// humanSkeleton builds a bipedal tree: head–neck–torso–pelvis spine, two
// 3-segment arms off the neck, two 3-segment legs off the pelvis, plus 0-2
// extra leaf nodes (silhouette noise) attached at random.
func humanSkeleton(rng *rand.Rand) metric.Graph {
	// 0 head, 1 neck, 2 torso, 3 pelvis.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	n := 4
	attachChain := func(at, length int) {
		prev := at
		for i := 0; i < length; i++ {
			edges = append(edges, [2]int{prev, n})
			prev = n
			n++
		}
	}
	attachChain(1, 3) // left arm
	attachChain(1, 3) // right arm
	attachChain(3, 3) // left leg
	attachChain(3, 3) // right leg
	for i := rng.Intn(3); i > 0; i-- {
		edges = append(edges, [2]int{rng.Intn(n), n})
		n++
	}
	return metric.NewGraph(n, edges)
}

// quadrupedSkeleton builds a four-legged body: a 5-node horizontal spine,
// four 2-segment legs off the spine ends, a 3-segment tail and a head —
// different degree and eccentricity structure from the bipeds.
func quadrupedSkeleton(rng *rand.Rand) metric.Graph {
	// 0..4 spine.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	n := 5
	attachChain := func(at, length int) {
		prev := at
		for i := 0; i < length; i++ {
			edges = append(edges, [2]int{prev, n})
			prev = n
			n++
		}
	}
	attachChain(0, 2)     // front-left leg
	attachChain(0, 2)     // front-right leg
	attachChain(4, 2)     // hind-left leg
	attachChain(4, 2)     // hind-right leg
	attachChain(4, 3)     // tail
	attachChain(0, 1)     // head
	if rng.Intn(2) == 0 { // ear / horn
		edges = append(edges, [2]int{n - 1, n})
		n++
	}
	return metric.NewGraph(n, edges)
}

// SkeletonTreesData is an alternative Skeletons representation: rooted
// ordered trees compared with the exact Zhang–Shasha tree edit distance —
// the other skeleton metric the paper cites (Pawlik & Augsten).
type SkeletonTreesData struct {
	Name     string
	Trees    []*metric.Tree
	Labels   []bool
	Outliers []int
}

// SkeletonTrees generates nHuman human and nWild quadruped skeleton trees.
func SkeletonTrees(nHuman, nWild int, seed int64) *SkeletonTreesData {
	rng := rand.New(rand.NewSource(seed))
	d := &SkeletonTreesData{Name: "Skeletons (trees)"}
	for i := 0; i < nHuman; i++ {
		d.Trees = append(d.Trees, humanTree(rng))
		d.Labels = append(d.Labels, false)
	}
	for i := 0; i < nWild; i++ {
		d.Outliers = append(d.Outliers, len(d.Trees))
		d.Trees = append(d.Trees, quadrupedTree(rng))
		d.Labels = append(d.Labels, true)
	}
	return d
}

func chainTree(label rune, length int) *metric.Tree {
	t := &metric.Tree{Label: label}
	cur := t
	for i := 1; i < length; i++ {
		child := &metric.Tree{Label: label}
		cur.Children = []*metric.Tree{child}
		cur = child
	}
	return t
}

// humanTree roots at the torso: head chain up, two 3-segment arms, two
// 3-segment legs, with 0-2 noise leaves.
func humanTree(rng *rand.Rand) *metric.Tree {
	torso := &metric.Tree{Label: 't'}
	torso.Children = append(torso.Children,
		chainTree('h', 2),                    // neck+head
		chainTree('a', 3), chainTree('a', 3), // arms
		chainTree('l', 3), chainTree('l', 3), // legs
	)
	for i := rng.Intn(3); i > 0; i-- {
		torso.Children = append(torso.Children, &metric.Tree{Label: 'x'})
	}
	return torso
}

// quadrupedTree roots at the spine: head, four 2-segment legs and a
// 3-segment tail.
func quadrupedTree(rng *rand.Rand) *metric.Tree {
	spine := &metric.Tree{Label: 's'}
	spine.Children = append(spine.Children,
		chainTree('h', 1),
		chainTree('g', 2), chainTree('g', 2), chainTree('g', 2), chainTree('g', 2), // legs
		chainTree('q', 3), // tail
	)
	if rng.Intn(2) == 0 {
		spine.Children = append(spine.Children, &metric.Tree{Label: 'x'})
	}
	return spine
}
