package data

import (
	"math"
	"testing"

	"mccatch/internal/metric"
)

func TestUniformAndDiagonal(t *testing.T) {
	u := Uniform(500, 4, 1)
	if len(u.Points) != 500 || u.Dim() != 4 || u.NumOutliers() != 0 {
		t.Errorf("Uniform shape wrong: n=%d dim=%d out=%d", len(u.Points), u.Dim(), u.NumOutliers())
	}
	d := Diagonal(300, 10, 2)
	if len(d.Points) != 300 || d.Dim() != 10 {
		t.Error("Diagonal shape wrong")
	}
	// Diagonal points have (nearly) equal coordinates.
	for _, p := range d.Points[:10] {
		for j := 1; j < len(p); j++ {
			if math.Abs(p[j]-p[0]) > 0.1 {
				t.Fatal("Diagonal point not on the diagonal")
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Uniform(100, 2, 7)
	b := Uniform(100, 2, 7)
	for i := range a.Points {
		if a.Points[i][0] != b.Points[i][0] {
			t.Fatal("Uniform not deterministic")
		}
	}
	s1 := AxiomDataset(Cross, Isolation, 1000, 9)
	s2 := AxiomDataset(Cross, Isolation, 1000, 9)
	if len(s1.Points) != len(s2.Points) || s1.Points[0][0] != s2.Points[0][0] {
		t.Fatal("AxiomDataset not deterministic")
	}
}

func TestAxiomDatasetStructure(t *testing.T) {
	for _, shape := range Shapes {
		for _, axiom := range Axioms {
			sc := AxiomDataset(shape, axiom, 2000, 3)
			wantRed, wantGreen := 10, 10
			if axiom == Cardinality {
				wantRed = 100
			}
			if len(sc.Red) != wantRed || len(sc.Green) != wantGreen {
				t.Errorf("%v/%v: |red|=%d |green|=%d", shape, axiom, len(sc.Red), len(sc.Green))
			}
			if len(sc.Points) != 2000+wantRed+wantGreen {
				t.Errorf("%v/%v: n=%d", shape, axiom, len(sc.Points))
			}
			if got := sc.NumOutliers(); got != wantRed+wantGreen {
				t.Errorf("%v/%v: outliers=%d", shape, axiom, got)
			}
			// The bridges must be respected: the nearest inlier of each mc
			// should be at roughly the configured distance.
			checkBridge := func(idx []int, wantBridge float64) {
				minD := math.Inf(1)
				for _, i := range idx {
					for j := 0; j < 2000; j++ {
						if d := metric.Euclidean(sc.Points[i], sc.Points[j]); d < minD {
							minD = d
						}
					}
				}
				if minD < wantBridge*0.5 || minD > wantBridge*2.5 {
					t.Errorf("%v/%v: bridge=%v, want ≈%v", shape, axiom, minD, wantBridge)
				}
			}
			checkBridge(sc.Red, 8)
			if axiom == Isolation {
				checkBridge(sc.Green, 24)
			} else {
				checkBridge(sc.Green, 8)
			}
		}
	}
}

func TestBenchmarkSpecsGenerate(t *testing.T) {
	for _, spec := range BenchmarkSpecs {
		v := spec.Generate(0.02, 11)
		if len(v.Points) < 40 {
			t.Errorf("%s: too few points %d", spec.Name, len(v.Points))
		}
		if v.Dim() != spec.Dim {
			t.Errorf("%s: dim=%d, want %d", spec.Name, v.Dim(), spec.Dim)
		}
		if v.NumOutliers() == 0 {
			t.Errorf("%s: no outliers planted", spec.Name)
		}
		// Outlier rate should be in the ballpark of the spec (small scales
		// round up, so allow generous slack).
		rate := 100 * float64(v.NumOutliers()) / float64(len(v.Points))
		if rate > spec.OutlierPct*3+3 {
			t.Errorf("%s: rate %.2f%% vs spec %.2f%%", spec.Name, rate, spec.OutlierPct)
		}
	}
}

func TestBenchmarkFullScaleCardinalities(t *testing.T) {
	spec, ok := SpecByName("Parkinson") // smallest: cheap at scale 1
	if !ok {
		t.Fatal("Parkinson spec missing")
	}
	v := spec.Generate(1, 5)
	if len(v.Points) != spec.N {
		t.Errorf("full-scale n=%d, want %d", len(v.Points), spec.N)
	}
	if _, ok := SpecByName("nope"); ok {
		t.Error("SpecByName should miss unknown names")
	}
}

func TestOutliersAreFarFromInliers(t *testing.T) {
	spec, _ := SpecByName("Mammography")
	v := spec.Generate(0.05, 13)
	// Every planted outlier must be farther from the inlier mass than the
	// typical inlier spacing.
	var inliers, outliers [][]float64
	for i, p := range v.Points {
		if v.Labels[i] {
			outliers = append(outliers, p)
		} else {
			inliers = append(inliers, p)
		}
	}
	for _, o := range outliers {
		minD := math.Inf(1)
		for _, in := range inliers {
			if d := metric.Euclidean(o, in); d < minD {
				minD = d
			}
		}
		if minD < 3 {
			t.Errorf("outlier too close to inliers: %v", minD)
		}
	}
}

func TestShanghaiAndVolcanoes(t *testing.T) {
	sh := Shanghai(1)
	if len(sh.Points) != 1296 {
		t.Errorf("Shanghai n=%d, want 1296", len(sh.Points))
	}
	if len(sh.MCs) != 2 {
		t.Errorf("Shanghai should plant 2 mcs, got %d", len(sh.MCs))
	}
	for _, mc := range sh.MCs {
		if len(mc) != 2 {
			t.Errorf("Shanghai mc size %d, want 2", len(mc))
		}
	}
	vo := Volcanoes(2)
	if len(vo.Points) != 3721 {
		t.Errorf("Volcanoes n=%d, want 3721", len(vo.Points))
	}
	if len(vo.MCs) != 1 || len(vo.MCs[0]) != 3 {
		t.Errorf("Volcanoes should plant one 3-tile mc, got %v", vo.MCs)
	}
}

func TestHTTPLike(t *testing.T) {
	h := HTTPLike(0.02, 3)
	if len(h.DoS) != 30 {
		t.Errorf("DoS cluster size %d, want 30", len(h.DoS))
	}
	if h.NumOutliers() < 31 {
		t.Errorf("HTTP outliers=%d, want ≥31", h.NumOutliers())
	}
	// The attack cluster is tight.
	maxSpread := 0.0
	for _, i := range h.DoS {
		for _, j := range h.DoS {
			if d := metric.Euclidean(h.Points[i], h.Points[j]); d > maxSpread {
				maxSpread = d
			}
		}
	}
	if maxSpread > 1 {
		t.Errorf("DoS cluster spread %v too large", maxSpread)
	}
	full := HTTPLike(1, 3)
	if len(full.Points) != 222027 {
		t.Errorf("full HTTP n=%d, want 222027", len(full.Points))
	}
}

func TestLastNames(t *testing.T) {
	d := LastNames(500, 20, 4)
	if len(d.Words) != 520 || len(d.Outliers) != 20 {
		t.Fatalf("LastNames sizes wrong: %d words, %d outliers", len(d.Words), len(d.Outliers))
	}
	seen := map[string]bool{}
	for _, w := range d.Words {
		if w == "" {
			t.Fatal("empty name")
		}
		if seen[w] {
			t.Fatalf("duplicate name %q", w)
		}
		seen[w] = true
	}
	// Outlier names should be farther from their nearest inlier than
	// inliers are from each other, on average.
	avgNN := func(idx []int) float64 {
		sum := 0.0
		for _, i := range idx {
			minD := math.Inf(1)
			for j := 0; j < 500; j++ {
				if j == i {
					continue
				}
				if dd := metric.Levenshtein(d.Words[i], d.Words[j]); dd < minD {
					minD = dd
				}
			}
			sum += minD
		}
		return sum / float64(len(idx))
	}
	inSample := []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	if a, b := avgNN(d.Outliers), avgNN(inSample); a <= b {
		t.Errorf("outlier avg 1NN %v should exceed inlier avg %v", a, b)
	}
}

func TestFingerprints(t *testing.T) {
	d := Fingerprints(60, 4, 5)
	if len(d.Sets) != 64 || len(d.Outliers) != 4 {
		t.Fatal("Fingerprints sizes wrong")
	}
	// Partial prints are far from full prints; full prints are mutually close.
	fullFull := metric.Hausdorff(d.Sets[0], d.Sets[1])
	partFull := metric.Hausdorff(d.Sets[d.Outliers[0]], d.Sets[0])
	if partFull <= fullFull*2 {
		t.Errorf("partial-full distance %v should dwarf full-full %v", partFull, fullFull)
	}
}

func TestSkeletons(t *testing.T) {
	d := Skeletons(50, 3, 6)
	if len(d.Graphs) != 53 || len(d.Outliers) != 3 {
		t.Fatal("Skeletons sizes wrong")
	}
	humanHuman := metric.GraphDistance(d.Graphs[0], d.Graphs[1])
	wildHuman := metric.GraphDistance(d.Graphs[d.Outliers[0]], d.Graphs[0])
	if wildHuman <= humanHuman {
		t.Errorf("wild-human distance %v should exceed human-human %v", wildHuman, humanHuman)
	}
}

func TestSkeletonTrees(t *testing.T) {
	d := SkeletonTrees(40, 3, 7)
	if len(d.Trees) != 43 || len(d.Outliers) != 3 {
		t.Fatal("SkeletonTrees sizes wrong")
	}
	humanHuman := metric.TreeEditDistance(d.Trees[0], d.Trees[1])
	wildHuman := metric.TreeEditDistance(d.Trees[d.Outliers[0]], d.Trees[0])
	if wildHuman <= humanHuman {
		t.Errorf("tree distance: wild-human %v should exceed human-human %v", wildHuman, humanHuman)
	}
}
