package data

import "math/rand"

// LastNamesData is the Last Names stand-in: nInliers English-phonotactics
// surnames plus nOutliers surnames generated from other phonotactic models
// (Slavic consonant clusters, pinyin-style syllables, diacritic-free
// romanizations), compared with the Levenshtein distance as in Fig. 1(ii).
type LastNamesData struct {
	Name     string
	Words    []string
	Labels   []bool
	Outliers []int
}

var (
	engOnsets  = []string{"b", "br", "c", "ch", "cl", "d", "f", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "r", "s", "sh", "sm", "st", "t", "th", "w", "wh"}
	engVowels  = []string{"a", "e", "i", "o", "u", "ee", "oo", "ea", "ai"}
	engCodas   = []string{"ll", "n", "nd", "ns", "r", "rd", "rs", "s", "t", "tt", "ck", "m", "mp", "ng"}
	engSuffix  = []string{"son", "ton", "er", "ley", "field", "man", "wood", "ford", "well", "worth", "ing", "by"}
	slavOnsets = []string{"brz", "chm", "cz", "dzw", "grz", "krz", "prz", "szcz", "tr", "wr", "zb", "szn"}
	slavEnds   = []string{"ski", "wicz", "czyk", "szek", "owski", "ewski", "yński"}
	pinyinSyll = []string{"zh", "x", "q", "ji", "xu", "zha", "qiu", "xiao", "zhou", "feng", "quan"}
	pinyinEnd  = []string{"ang", "ong", "uan", "iao", "un", "ing"}
)

// LastNames generates the dataset; the paper's version has 5,000 inliers
// and 50 outliers.
func LastNames(nInliers, nOutliers int, seed int64) *LastNamesData {
	rng := rand.New(rand.NewSource(seed))
	d := &LastNamesData{Name: "Last Names"}
	seen := map[string]bool{}
	for len(d.Words) < nInliers {
		w := englishName(rng)
		if seen[w] {
			continue
		}
		seen[w] = true
		d.Words = append(d.Words, w)
		d.Labels = append(d.Labels, false)
	}
	for i := 0; i < nOutliers; i++ {
		var w string
		for {
			if rng.Intn(2) == 0 {
				w = slavicName(rng)
			} else {
				w = pinyinName(rng)
			}
			if !seen[w] {
				break
			}
		}
		seen[w] = true
		d.Outliers = append(d.Outliers, len(d.Words))
		d.Words = append(d.Words, w)
		d.Labels = append(d.Labels, true)
	}
	return d
}

func englishName(rng *rand.Rand) string {
	w := engOnsets[rng.Intn(len(engOnsets))] + engVowels[rng.Intn(len(engVowels))]
	if rng.Intn(2) == 0 {
		w += engCodas[rng.Intn(len(engCodas))]
	}
	w += engSuffix[rng.Intn(len(engSuffix))]
	return w
}

func slavicName(rng *rand.Rand) string {
	return slavOnsets[rng.Intn(len(slavOnsets))] + engVowels[rng.Intn(len(engVowels))] +
		slavOnsets[rng.Intn(len(slavOnsets))] + slavEnds[rng.Intn(len(slavEnds))]
}

func pinyinName(rng *rand.Rand) string {
	return pinyinSyll[rng.Intn(len(pinyinSyll))] + pinyinEnd[rng.Intn(len(pinyinEnd))]
}
