package data

import (
	"math"
	"math/rand"

	"mccatch/internal/metric"
)

// FingerprintsData is the Fingerprints stand-in: point sets sampled along
// concentric ridge arcs. Full prints cover the whole angular range; partial
// prints (the outliers) cover only a fragment, which drives their Hausdorff
// distance to every full print up — the property the paper's experiment
// relies on.
type FingerprintsData struct {
	Name     string
	Sets     []metric.PointSet
	Labels   []bool
	Outliers []int
}

// Fingerprints generates nFull full and nPartial partial prints (the paper
// uses 398 and 10).
func Fingerprints(nFull, nPartial int, seed int64) *FingerprintsData {
	rng := rand.New(rand.NewSource(seed))
	d := &FingerprintsData{Name: "Fingerprints"}
	for i := 0; i < nFull; i++ {
		d.Sets = append(d.Sets, ridges(rng, 0, math.Pi))
		d.Labels = append(d.Labels, false)
	}
	for i := 0; i < nPartial; i++ {
		d.Outliers = append(d.Outliers, len(d.Sets))
		// A narrow angular fragment: most of the print is missing.
		start := rng.Float64() * math.Pi * 0.75
		d.Sets = append(d.Sets, ridges(rng, start, start+math.Pi/4))
		d.Labels = append(d.Labels, true)
	}
	return d
}

// ridges samples points along 3 concentric arcs between angles a0 and a1,
// with per-print jitter so prints differ but remain mutually close.
func ridges(rng *rand.Rand, a0, a1 float64) metric.PointSet {
	var s metric.PointSet
	perArc := 14
	span := a1 - a0
	for arc := 0; arc < 3; arc++ {
		r := 4 + 2*float64(arc)
		for i := 0; i < perArc; i++ {
			theta := a0 + span*float64(i)/float64(perArc-1)
			s = append(s, []float64{
				r*math.Cos(theta) + rng.NormFloat64()*0.1,
				r*math.Sin(theta) + rng.NormFloat64()*0.1,
			})
		}
	}
	return s
}
