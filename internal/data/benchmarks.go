package data

import (
	"math"
	"math/rand"
)

// BenchmarkSpec describes one popular-benchmark stand-in: the published
// cardinality, embedding dimension and outlier percentage of Tab. III, plus
// the synthetic structure we generate to match (inlier cluster count, an
// intrinsic-dimension target, and planted nonsingleton microcluster sizes
// for the datasets the paper reports as having them).
type BenchmarkSpec struct {
	Name        string
	N           int
	Dim         int
	OutlierPct  float64 // percentage, as printed in Tab. III
	IntrinsicD  float64 // Tab. III's fractal dimension, used as rank target
	Clusters    int     // inlier Gaussian clusters
	PlantedMCs  []int   // sizes of planted nonsingleton microclusters
	hasMCsKnown bool
}

// HasKnownMCs reports whether the paper flags this dataset as containing
// nonsingleton microclusters (HTTP and Annthyroid, per Sec. V's setup).
func (s BenchmarkSpec) HasKnownMCs() bool { return s.hasMCsKnown }

// BenchmarkSpecs lists the popular benchmark datasets of Tab. III. HTTP's
// planted 30-point microcluster mirrors the confirmed 'DoS back' attack
// cluster of Fig. 8(ii).
var BenchmarkSpecs = []BenchmarkSpec{
	{Name: "HTTP", N: 222027, Dim: 3, OutlierPct: 0.03, IntrinsicD: 1.2, Clusters: 2, PlantedMCs: []int{30}, hasMCsKnown: true},
	{Name: "Shuttle", N: 49097, Dim: 9, OutlierPct: 7.15, IntrinsicD: 1.8, Clusters: 4},
	{Name: "kddcup08", N: 24995, Dim: 25, OutlierPct: 0.68, IntrinsicD: 3.6, Clusters: 4},
	{Name: "Mammography", N: 7848, Dim: 6, OutlierPct: 3.22, IntrinsicD: 1.4, Clusters: 3},
	{Name: "Annthyroid", N: 7200, Dim: 6, OutlierPct: 7.41, IntrinsicD: 1.8, Clusters: 3, PlantedMCs: []int{25, 15, 10}, hasMCsKnown: true},
	{Name: "Satellite", N: 6435, Dim: 36, OutlierPct: 31.64, IntrinsicD: 3.0, Clusters: 5},
	{Name: "Satimage2", N: 5803, Dim: 36, OutlierPct: 1.22, IntrinsicD: 3.0, Clusters: 5},
	{Name: "Speech", N: 3686, Dim: 400, OutlierPct: 1.65, IntrinsicD: 5.9, Clusters: 6},
	{Name: "Thyroid", N: 3656, Dim: 6, OutlierPct: 2.54, IntrinsicD: 0.7, Clusters: 2},
	{Name: "Vowels", N: 1452, Dim: 12, OutlierPct: 3.17, IntrinsicD: 0.8, Clusters: 3},
	{Name: "Pima", N: 526, Dim: 8, OutlierPct: 4.94, IntrinsicD: 2.2, Clusters: 2},
	{Name: "Ionosphere", N: 350, Dim: 33, OutlierPct: 35.71, IntrinsicD: 1.6, Clusters: 2},
	{Name: "Ecoli", N: 336, Dim: 7, OutlierPct: 2.68, IntrinsicD: 1.9, Clusters: 3},
	{Name: "Vertebral", N: 240, Dim: 6, OutlierPct: 12.5, IntrinsicD: 1.9, Clusters: 2},
	{Name: "Glass", N: 213, Dim: 9, OutlierPct: 4.23, IntrinsicD: 1.3, Clusters: 2},
	{Name: "Wine", N: 129, Dim: 13, OutlierPct: 7.75, IntrinsicD: 2.3, Clusters: 2},
	{Name: "Hepatitis", N: 70, Dim: 20, OutlierPct: 4.29, IntrinsicD: 1.5, Clusters: 1},
	{Name: "Parkinson", N: 50, Dim: 22, OutlierPct: 4, IntrinsicD: 1.4, Clusters: 1},
}

// SpecByName returns the benchmark spec with the given name, or false.
func SpecByName(name string) (BenchmarkSpec, bool) {
	for _, s := range BenchmarkSpecs {
		if s.Name == name {
			return s, true
		}
	}
	return BenchmarkSpec{}, false
}

// Generate builds the stand-in at a scale factor in (0,1]: scale 1 matches
// the published cardinality; smaller scales shrink n (but never below 40)
// while preserving the outlier rate, structure and planted microclusters.
func (s BenchmarkSpec) Generate(scale float64, seed int64) *Vector {
	n := int(float64(s.N) * scale)
	if n < 40 {
		n = 40
	}
	rng := rand.New(rand.NewSource(seed))

	nOut := int(math.Round(float64(n) * s.OutlierPct / 100))
	if nOut < 1 {
		nOut = 1
	}
	// Planted microclusters count against the outlier budget.
	mcSizes := make([]int, 0, len(s.PlantedMCs))
	mcTotal := 0
	for _, sz := range s.PlantedMCs {
		if sz > nOut/2 { // keep scaled-down datasets sane
			sz = nOut / 2
		}
		if sz >= 2 {
			mcSizes = append(mcSizes, sz)
			mcTotal += sz
		}
	}
	if mcTotal > nOut {
		nOut = mcTotal
	}
	nIn := n - nOut

	// Inlier clusters live in a rank-k subspace (k ≈ the intrinsic
	// dimension target) plus tiny full-dimensional noise, so the measured
	// fractal dimension lands near Tab. III's value.
	k := int(math.Round(s.IntrinsicD))
	if k < 1 {
		k = 1
	}
	if k > s.Dim {
		k = s.Dim
	}
	centers := make([][]float64, s.Clusters)
	for c := range centers {
		centers[c] = uniformPoint(rng, s.Dim, 20, 80)
	}
	pts := make([][]float64, 0, n)
	labels := make([]bool, 0, n)
	for i := 0; i < nIn; i++ {
		c := centers[rng.Intn(len(centers))]
		p := make([]float64, s.Dim)
		for j := range p {
			if j < k {
				p[j] = c[j] + rng.NormFloat64()*4
			} else {
				p[j] = c[j] + rng.NormFloat64()*0.05
			}
		}
		pts = append(pts, p)
		labels = append(labels, false)
	}

	// Planted nonsingleton microclusters: tight blobs at the fringe.
	for _, sz := range mcSizes {
		center := uniformPoint(rng, s.Dim, 0, 100)
		pushAwayFromCenters(rng, center, centers, 30)
		for i := 0; i < sz; i++ {
			pts = append(pts, gaussianPoint(rng, center, 0.3))
			labels = append(labels, true)
		}
	}

	// Scattered singleton outliers fill the remaining budget. Half are far
	// from every cluster; the other half are "marginal" — just past the
	// 2-3σ cluster boundary — so detection metrics do not saturate at 1.0
	// the way trivially separated scatter would.
	for i := mcTotal; i < nOut; i++ {
		var p []float64
		if i%2 == 1 {
			// Marginal: planted on a random direction just past a cluster's
			// 2-3σ boundary.
			c := centers[rng.Intn(len(centers))]
			margin := 9 + rng.Float64()*5
			u := make([]float64, s.Dim)
			norm := 0.0
			for j := range u {
				u[j] = rng.NormFloat64()
				norm += u[j] * u[j]
			}
			norm = math.Sqrt(norm)
			p = make([]float64, s.Dim)
			for j := range p {
				p[j] = c[j] + u[j]/norm*margin
			}
		} else {
			p = uniformPoint(rng, s.Dim, -20, 120)
			pushAwayFromCenters(rng, p, centers, 25)
		}
		pts = append(pts, p)
		labels = append(labels, true)
	}
	return &Vector{Name: s.Name, Points: pts, Labels: labels}
}

// pushAwayFromCenters moves p radially away from the nearest cluster
// center until it is at least minDist away, so outliers never land inside
// an inlier cluster.
func pushAwayFromCenters(rng *rand.Rand, p []float64, centers [][]float64, minDist float64) {
	for tries := 0; tries < 8; tries++ {
		ci, d := nearestCenter(p, centers)
		if d >= minDist {
			return
		}
		c := centers[ci]
		if d < 1e-9 {
			// Coincides with a center: jump in a random direction.
			for j := range p {
				p[j] += (rng.Float64()*2 - 1) * minDist
			}
			continue
		}
		scale := minDist / d
		for j := range p {
			p[j] = c[j] + (p[j]-c[j])*scale
		}
	}
}

func nearestCenter(p []float64, centers [][]float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for i, c := range centers {
		s := 0.0
		for j := range p {
			d := p[j] - c[j]
			s += d * d
		}
		if s < bestD {
			best, bestD = i, s
		}
	}
	return best, math.Sqrt(bestD)
}
