package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape selects the inlier-cluster shape of an axiom scenario (Fig. 2).
type Shape int

const (
	Gaussian Shape = iota
	Cross
	Arc
)

func (s Shape) String() string {
	switch s {
	case Gaussian:
		return "Gaussian"
	case Cross:
		return "Cross"
	case Arc:
		return "Arc"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Axiom selects which axiom a scenario instantiates.
type Axiom int

const (
	// Isolation: equal cardinalities, different bridge lengths; the
	// farther (green) microcluster must score higher.
	Isolation Axiom = iota
	// Cardinality: equal bridge lengths, different cardinalities; the less
	// populous (green) microcluster must score higher.
	Cardinality
)

func (a Axiom) String() string {
	if a == Isolation {
		return "Isolation"
	}
	return "Cardinality"
}

// AxiomScenario is one Fig. 2 dataset: an inlier cluster plus a 'red'
// reference microcluster and a 'green' microcluster that differs from red
// in exactly one property, so that green must receive the larger score.
type AxiomScenario struct {
	Vector
	Red, Green []int // indices of the two planted microclusters
}

// AxiomDataset generates a Fig. 2 scenario with nInliers inlier points.
// For the Isolation axiom both mcs have 10 points, with bridge lengths 8
// (red) and 24 (green); for the Cardinality axiom both bridges are 8, with
// 100 (red) versus 10 (green) points — the figure's proportions.
func AxiomDataset(shape Shape, axiom Axiom, nInliers int, seed int64) *AxiomScenario {
	rng := rand.New(rand.NewSource(seed))
	pts := inlierShape(rng, shape, nInliers)

	redCard, greenCard := 10, 10
	redBridge, greenBridge := 8.0, 24.0
	if axiom == Cardinality {
		redCard, greenCard = 100, 10
		redBridge, greenBridge = 8.0, 8.0
	}

	sc := &AxiomScenario{}
	sc.Name = fmt.Sprintf("%s (%s Axiom)", shape, axiom)
	// "All else being equal": in the isolation scenario the two mcs share
	// one internal layout, so only the bridge differs. In the cardinality
	// scenario the cardinalities differ by design, so each mc gets its own
	// full ring over the same footprint (like the figure: same visual size,
	// more points means denser spacing).
	redOffsets := mcOffsets(rng, redCard)
	greenOffsets := redOffsets
	if greenCard != redCard {
		greenOffsets = mcOffsets(rng, greenCard)
	}
	sc.Red = appendMC(&pts, [2]float64{-1, 0}, redBridge, redOffsets)
	sc.Green = appendMC(&pts, [2]float64{0, -1}, greenBridge, greenOffsets)
	sc.Points = pts
	sc.Labels = make([]bool, len(pts))
	for _, i := range sc.Red {
		sc.Labels[i] = true
	}
	for _, i := range sc.Green {
		sc.Labels[i] = true
	}
	return sc
}

// inlierShape draws n inlier points in [0,100]² forming the given shape.
func inlierShape(rng *rand.Rand, shape Shape, n int) [][]float64 {
	pts := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		switch shape {
		case Gaussian:
			// Truncated at 2σ: the figure's blob is compact, and an
			// unbounded tail would blur the bridge at small n.
			p := gaussianPoint(rng, []float64{50, 50}, 8)
			for math.Hypot(p[0]-50, p[1]-50) > 16 {
				p = gaussianPoint(rng, []float64{50, 50}, 8)
			}
			pts = append(pts, p)
		case Cross:
			// Two orthogonal bars through the center.
			if rng.Intn(2) == 0 {
				pts = append(pts, []float64{20 + rng.Float64()*60, 50 + rng.NormFloat64()})
			} else {
				pts = append(pts, []float64{50 + rng.NormFloat64(), 20 + rng.Float64()*60})
			}
		case Arc:
			// Upper half-circle arc centered at (50, 30), radius 30.
			theta := math.Pi * (0.15 + 0.7*rng.Float64())
			r := 30 + rng.NormFloat64()
			pts = append(pts, []float64{50 + r*math.Cos(theta), 30 + r*math.Sin(theta)})
		}
	}
	return pts
}

// mcOffsets draws a reusable internal microcluster layout: card offsets
// around the (to-be-chosen) center.
func mcOffsets(rng *rand.Rand, card int) [][2]float64 {
	// Members sit on a small jittered ring: each member's nearest neighbors
	// are its ring neighbors, so the 1NN graph is a connected cycle and
	// MCCATCH's gel step (whose radius is just above the largest member 1NN
	// distance, Alg. 3 L10-12) keeps the microcluster in one piece. A plain
	// Gaussian blob can fragment into mutual-nearest-neighbor pairs more
	// distant than the gel radius, which the paper's scenarios evidently
	// avoid.
	const radius = 0.5
	jitter := 0.01 * radius
	out := make([][2]float64, card)
	for i := range out {
		theta := 2 * math.Pi * float64(i) / float64(card)
		out[i] = [2]float64{
			radius*math.Cos(theta) + rng.NormFloat64()*jitter,
			radius*math.Sin(theta) + rng.NormFloat64()*jitter,
		}
	}
	return out
}

// appendMC plants a microcluster with the given internal layout in
// direction dir from the inlier cloud so that the gap between the
// microcluster and its nearest inlier is bridge. It appends to *pts and
// returns the planted indices.
func appendMC(pts *[][]float64, dir [2]float64, bridge float64, offsets [][2]float64) []int {
	norm := math.Hypot(dir[0], dir[1])
	ux, uy := dir[0]/norm, dir[1]/norm
	// Support point: the inlier with the largest projection onto dir.
	best := math.Inf(-1)
	var sx, sy float64
	for _, p := range *pts {
		if proj := p[0]*ux + p[1]*uy; proj > best {
			best, sx, sy = proj, p[0], p[1]
		}
	}
	// Half-width of the layout along dir, so the bridge is measured from
	// the microcluster's closest member, not its center.
	maxToward := 0.0
	for _, o := range offsets {
		if t := -(o[0]*ux + o[1]*uy); t > maxToward {
			maxToward = t
		}
	}
	cx := sx + ux*(bridge+maxToward)
	cy := sy + uy*(bridge+maxToward)
	idx := make([]int, 0, len(offsets))
	for _, o := range offsets {
		idx = append(idx, len(*pts))
		*pts = append(*pts, []float64{cx + o[0], cy + o[1]})
	}
	return idx
}

// Shapes and Axioms enumerate all Fig. 2 combinations, in paper order.
var (
	Shapes = []Shape{Gaussian, Cross, Arc}
	Axioms = []Axiom{Isolation, Cardinality}
)
