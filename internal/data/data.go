// Package data generates every dataset family of the paper's Tab. III as a
// deterministic synthetic stand-in: the axiom scenarios of Fig. 2, the
// popular outlier-detection benchmarks (matched in cardinality, embedding
// dimension and outlier rate), the satellite-tile showcases, the scalability
// sets (Uniform, Diagonal), and the nondimensional sets (Last Names,
// Fingerprints, Skeletons). The originals are not redistributable and the
// module is offline; DESIGN.md §3 documents each substitution.
//
// Every generator takes an explicit seed and is deterministic given it.
package data

import "math/rand"

// Vector is a labeled vector dataset. Labels[i] is true when point i is a
// planted outlier; Labels is nil when ground truth is unknown (the
// satellite showcases).
type Vector struct {
	Name   string
	Points [][]float64
	Labels []bool
}

// NumOutliers counts the planted outliers.
func (v *Vector) NumOutliers() int {
	n := 0
	for _, l := range v.Labels {
		if l {
			n++
		}
	}
	return n
}

// Dim returns the embedding dimension.
func (v *Vector) Dim() int {
	if len(v.Points) == 0 {
		return 0
	}
	return len(v.Points[0])
}

// gaussianPoint draws a point from N(center, σ²I) in len(center) dims.
func gaussianPoint(rng *rand.Rand, center []float64, sigma float64) []float64 {
	p := make([]float64, len(center))
	for j := range p {
		p[j] = center[j] + rng.NormFloat64()*sigma
	}
	return p
}

// uniformPoint draws a point uniformly from [lo, hi]^dim.
func uniformPoint(rng *rand.Rand, dim int, lo, hi float64) []float64 {
	p := make([]float64, dim)
	for j := range p {
		p[j] = lo + rng.Float64()*(hi-lo)
	}
	return p
}

// Uniform returns n points uniform in [0,100]^dim — the scalability dataset
// whose fractal dimension equals its embedding dimension (Fig. 7).
func Uniform(n, dim int, seed int64) *Vector {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = uniformPoint(rng, dim, 0, 100)
	}
	return &Vector{Name: "Uniform", Points: pts, Labels: make([]bool, n)}
}

// Diagonal returns n points on the main diagonal of [0,100]^dim with tiny
// jitter — the scalability dataset of fractal dimension 1 regardless of
// embedding dimension (Fig. 7).
func Diagonal(n, dim int, seed int64) *Vector {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		v := rng.Float64() * 100
		p := make([]float64, dim)
		for j := range p {
			p[j] = v + rng.NormFloat64()*1e-3
		}
		pts[i] = p
	}
	return &Vector{Name: "Diagonal", Points: pts, Labels: make([]bool, n)}
}
