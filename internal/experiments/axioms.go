package experiments

import (
	"fmt"
	"io"

	"mccatch/internal/baselines"
	"mccatch/internal/data"
	"mccatch/internal/eval"
)

// Table5Axioms runs the Tab. V experiment: over Trials independently
// seeded Fig. 2 datasets per (axiom, shape), compare the score of the
// green microcluster against the red one with a one-sided Welch t-test.
// A method "fails" a cell when it misses either microcluster in any trial
// — Gen2Out's fate on the cross- and arc-shaped inliers in the paper.
// Only MCCATCH and Gen2Out provide microcluster scores; every other
// competitor fails by design (no group output), which the footer records.
func Table5Axioms(w io.Writer, cfg Config, trials int) {
	cfg = cfg.withDefaults()
	if trials <= 0 {
		trials = 10
	}
	hr(w, fmt.Sprintf("Table V — axiom obedience (t-tests over %d trials per cell)", trials))
	fmt.Fprintf(w, "%-10s", "Method")
	for _, axiom := range data.Axioms {
		for _, shape := range data.Shapes {
			fmt.Fprintf(w, " %18s", fmt.Sprintf("%s/%s", axiom, shape))
		}
	}
	fmt.Fprintln(w)

	for _, methodName := range []string{"MCCATCH", "Gen2Out"} {
		fmt.Fprintf(w, "%-10s", methodName)
		for _, axiom := range data.Axioms {
			for _, shape := range data.Shapes {
				green, red, misses := axiomScores(methodName, shape, axiom, cfg, trials)
				if misses > 0 {
					fmt.Fprintf(w, " %18s", fmt.Sprintf("Fail (%d/%d missed)", misses, trials))
					continue
				}
				res := eval.WelchTTest(green, red)
				fmt.Fprintf(w, " %18s", fmt.Sprintf("t=%.1f p=%.1e", res.Stat, res.PValue))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(all other methods: N.A. — no score per microcluster, failing G2/G3 by design)")
}

// axiomScores collects the matched green/red microcluster scores over the
// trials; misses counts trials where either planted mc went undetected.
func axiomScores(methodName string, shape data.Shape, axiom data.Axiom, cfg Config, trials int) (green, red []float64, misses int) {
	for trial := 0; trial < trials; trial++ {
		sc := axiomScenario(shape, axiom, cfg, trial)
		var gScore, rScore float64
		var gOK, rOK bool
		switch methodName {
		case "MCCATCH":
			res, _ := runMCCatch(sc.Points)
			gScore, gOK = matchPlanted(res.Microclusters, sc.Green)
			rScore, rOK = matchPlanted(res.Microclusters, sc.Red)
		case "Gen2Out":
			groups, _ := baselines.Gen2Out{Trees: 100, MD: 2, Seed: cfg.Seed + int64(trial)}.Microclusters(sc.Points)
			gl := make([]groupLike, len(groups))
			for i, g := range groups {
				gl[i] = groupLike{members: g.Members, score: g.Score}
			}
			gScore, gOK = matchPlantedGroups(gl, sc.Green)
			rScore, rOK = matchPlantedGroups(gl, sc.Red)
		}
		if !gOK || !rOK {
			misses++
			continue
		}
		green = append(green, gScore)
		red = append(red, rScore)
	}
	return green, red, misses
}

// Fig2Axioms prints the six Fig. 2 scenarios with MCCATCH's verdict on
// each: the green microcluster must receive the larger score.
func Fig2Axioms(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, "Figure 2 — proposed axioms (green mc must out-score red mc)")
	for _, axiom := range data.Axioms {
		for _, shape := range data.Shapes {
			sc := axiomScenario(shape, axiom, cfg, 0)
			res, _ := runMCCatch(sc.Points)
			gScore, gOK := matchPlanted(res.Microclusters, sc.Green)
			rScore, rOK := matchPlanted(res.Microclusters, sc.Red)
			verdict := "OBEYED"
			if !gOK || !rOK {
				verdict = "MC MISSED"
			} else if gScore <= rScore {
				verdict = "VIOLATED"
			}
			fmt.Fprintf(w, "%-28s green=%8.2f red=%8.2f -> %s\n", sc.Name, gScore, rScore, verdict)
		}
	}
}
