package experiments

import (
	"fmt"
	"io"
	"math"

	"mccatch/internal/core"
	"mccatch/internal/data"
	"mccatch/internal/eval"
	"mccatch/internal/metric"
)

// Fig9Sensitivity sweeps each hyperparameter around its default —
// a ∈ {13..17}, b ∈ {0.08..0.12}, c ∈ {⌈n·0.08⌉..⌈n·0.12⌉} — on a set of
// labeled datasets and prints the AUROC per setting. The paper's claim is
// a smooth plateau: accuracy is insensitive to the exact values.
func Fig9Sensitivity(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, "Figure 9 — hyperparameter sensitivity (AUROC per setting)")

	type ds struct {
		name   string
		points [][]float64
		labels []bool
	}
	var sets []ds
	http := data.HTTPLike(cfg.Scale, cfg.Seed)
	httpPts, httpLabels := http.Points, http.Labels
	if cfg.Quick {
		httpPts, httpLabels = subsampleLabeled(httpPts, httpLabels, 600)
	}
	sets = append(sets, ds{"HTTP", httpPts, httpLabels})
	// Quick mode keeps the sweep grid (every printed setting label) but
	// trims the dataset roster to HTTP plus one axiom scenario — the
	// plateau claim is per-setting, not per-dataset.
	if !cfg.Quick {
		for _, name := range []string{"Mammography", "Glass", "Ionosphere"} {
			if spec, ok := data.SpecByName(name); ok {
				v := spec.Generate(math.Min(1, cfg.Scale*5), cfg.Seed)
				sets = append(sets, ds{v.Name, v.Points, v.Labels})
			}
		}
	}
	arcFloor := 1500
	if cfg.Quick {
		// Stay above the ~750-point detectability threshold the axiom
		// scenarios need (see axiomScenario); the sweep's AUROC rows are
		// only meaningful while the planted structure is findable.
		arcFloor = 800
	}
	sc := data.AxiomDataset(data.Arc, data.Isolation, scaled(1_000_000, cfg, arcFloor), cfg.Seed)
	sets = append(sets, ds{sc.Name, sc.Points, sc.Labels})

	run := func(points [][]float64, labels []bool, p core.Params) float64 {
		dim := len(points[0])
		p.Cost = metric.VectorCost(dim)
		res, err := core.Run(points, metric.Euclidean, p)
		if err != nil {
			return math.NaN()
		}
		return eval.AUROC(res.PointScores, labels)
	}

	fmt.Fprintf(w, "-- varying a (number of radii), b and c at defaults --\n")
	fmt.Fprintf(w, "%-28s", "Dataset")
	for a := 13; a <= 17; a++ {
		fmt.Fprintf(w, "   a=%-4d", a)
	}
	fmt.Fprintln(w)
	for _, d := range sets {
		fmt.Fprintf(w, "%-28s", d.name)
		for a := 13; a <= 17; a++ {
			fmt.Fprintf(w, "   %.3f", run(d.points, d.labels, core.Params{NumRadii: a}))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "-- varying b (maximum plateau slope) --\n")
	fmt.Fprintf(w, "%-28s", "Dataset")
	bs := []float64{0.08, 0.09, 0.10, 0.11, 0.12}
	for _, b := range bs {
		fmt.Fprintf(w, "  b=%-5.2f", b)
	}
	fmt.Fprintln(w)
	for _, d := range sets {
		fmt.Fprintf(w, "%-28s", d.name)
		for _, b := range bs {
			fmt.Fprintf(w, "   %.3f", run(d.points, d.labels, core.Params{MaxSlope: b}))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "-- varying c (maximum microcluster cardinality) --\n")
	fmt.Fprintf(w, "%-28s", "Dataset")
	fracs := []float64{0.08, 0.09, 0.10, 0.11, 0.12}
	for _, f := range fracs {
		fmt.Fprintf(w, " c=n*%-4.2f", f)
	}
	fmt.Fprintln(w)
	for _, d := range sets {
		fmt.Fprintf(w, "%-28s", d.name)
		for _, f := range fracs {
			c := int(math.Ceil(float64(len(d.points)) * f))
			fmt.Fprintf(w, "   %.3f", run(d.points, d.labels, core.Params{MaxCardinality: c}))
		}
		fmt.Fprintln(w)
	}
}

// subsampleLabeled deterministically shrinks a labeled dataset to about
// target points by striding over the negatives while keeping every
// positive (outlier) — the AUROC stays meaningful on the smaller set.
func subsampleLabeled(points [][]float64, labels []bool, target int) ([][]float64, []bool) {
	if len(points) <= target {
		return points, labels
	}
	// Ceil division: floor would keep up to 2× target (or everything when
	// len < 2×target).
	stride := (len(points) + target - 1) / target
	var ps [][]float64
	var ls []bool
	for i := range points {
		if labels[i] || i%stride == 0 {
			ps = append(ps, points[i])
			ls = append(ls, labels[i])
		}
	}
	return ps, ls
}
