package experiments

import (
	"fmt"
	"io"
	"math"

	"mccatch/internal/core"
	"mccatch/internal/data"
	"mccatch/internal/eval"
	"mccatch/internal/metric"
)

// Fig9Sensitivity sweeps each hyperparameter around its default —
// a ∈ {13..17}, b ∈ {0.08..0.12}, c ∈ {⌈n·0.08⌉..⌈n·0.12⌉} — on a set of
// labeled datasets and prints the AUROC per setting. The paper's claim is
// a smooth plateau: accuracy is insensitive to the exact values.
func Fig9Sensitivity(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, "Figure 9 — hyperparameter sensitivity (AUROC per setting)")

	type ds struct {
		name   string
		points [][]float64
		labels []bool
	}
	var sets []ds
	http := data.HTTPLike(cfg.Scale, cfg.Seed)
	sets = append(sets, ds{"HTTP", http.Points, http.Labels})
	for _, name := range []string{"Mammography", "Glass", "Ionosphere"} {
		if spec, ok := data.SpecByName(name); ok {
			v := spec.Generate(math.Min(1, cfg.Scale*5), cfg.Seed)
			sets = append(sets, ds{v.Name, v.Points, v.Labels})
		}
	}
	sc := data.AxiomDataset(data.Arc, data.Isolation, scaled(1_000_000, cfg, 1500), cfg.Seed)
	sets = append(sets, ds{sc.Name, sc.Points, sc.Labels})

	run := func(points [][]float64, labels []bool, p core.Params) float64 {
		dim := len(points[0])
		p.Cost = metric.VectorCost(dim)
		res, err := core.Run(points, metric.Euclidean, p)
		if err != nil {
			return math.NaN()
		}
		return eval.AUROC(res.PointScores, labels)
	}

	fmt.Fprintf(w, "-- varying a (number of radii), b and c at defaults --\n")
	fmt.Fprintf(w, "%-28s", "Dataset")
	for a := 13; a <= 17; a++ {
		fmt.Fprintf(w, "   a=%-4d", a)
	}
	fmt.Fprintln(w)
	for _, d := range sets {
		fmt.Fprintf(w, "%-28s", d.name)
		for a := 13; a <= 17; a++ {
			fmt.Fprintf(w, "   %.3f", run(d.points, d.labels, core.Params{NumRadii: a}))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "-- varying b (maximum plateau slope) --\n")
	fmt.Fprintf(w, "%-28s", "Dataset")
	bs := []float64{0.08, 0.09, 0.10, 0.11, 0.12}
	for _, b := range bs {
		fmt.Fprintf(w, "  b=%-5.2f", b)
	}
	fmt.Fprintln(w)
	for _, d := range sets {
		fmt.Fprintf(w, "%-28s", d.name)
		for _, b := range bs {
			fmt.Fprintf(w, "   %.3f", run(d.points, d.labels, core.Params{MaxSlope: b}))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "-- varying c (maximum microcluster cardinality) --\n")
	fmt.Fprintf(w, "%-28s", "Dataset")
	fracs := []float64{0.08, 0.09, 0.10, 0.11, 0.12}
	for _, f := range fracs {
		fmt.Fprintf(w, " c=n*%-4.2f", f)
	}
	fmt.Fprintln(w)
	for _, d := range sets {
		fmt.Fprintf(w, "%-28s", d.name)
		for _, f := range fracs {
			c := int(math.Ceil(float64(len(d.points)) * f))
			fmt.Fprintf(w, "   %.3f", run(d.points, d.labels, core.Params{MaxCardinality: c}))
		}
		fmt.Fprintln(w)
	}
}
