// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. V) on the synthetic stand-in datasets of
// internal/data. Each runner prints the same rows/series the paper
// reports; cmd/experiments exposes them on the command line and
// bench_test.go wires them into testing.B benchmarks at CI-friendly
// scales. Absolute numbers differ from the paper (different hardware, Go
// instead of Java/C++, synthetic data) but the shapes — who wins, by
// roughly what factor, where crossovers fall — are the reproduction
// target; EXPERIMENTS.md records paper-versus-measured for each item.
package experiments

import (
	"fmt"
	"io"
	"time"

	"mccatch/internal/core"
	"mccatch/internal/data"
	"mccatch/internal/metric"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale in (0,1] shrinks dataset cardinalities; 1 is paper-size.
	Scale float64
	// Seed drives all generators and randomized detectors.
	Seed int64
	// Runs is how many times nondeterministic competitors are repeated
	// (the paper uses 10); their metrics are averaged.
	Runs int
	// Quick trims the most expensive sweeps to a representative subset
	// (fewer sensitivity datasets, sampled fractal dimensions, smaller
	// scalability floors) so `go test -short` stays fast. The printed
	// row/column labels are unchanged; nightly full runs leave it false.
	Quick bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	return c
}

// runMCCatch executes MCCATCH with paper defaults on vector data and
// returns the result plus the wall-clock duration.
func runMCCatch(points [][]float64) (*core.Result, time.Duration) {
	dim := 0
	if len(points) > 0 {
		dim = len(points[0])
	}
	start := time.Now()
	res, err := core.Run(points, metric.Euclidean, core.Params{Cost: metric.VectorCost(dim)})
	elapsed := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("mccatch failed: %v", err)) // generators never emit empty data
	}
	return res, elapsed
}

// scaled returns a dataset cardinality under the config's scale with a floor.
func scaled(n int, cfg Config, floor int) int {
	v := int(float64(n) * cfg.Scale)
	if v < floor {
		v = floor
	}
	return v
}

// matchPlanted finds the detected microcluster that best matches a planted
// member set and returns its score; ok is false when no detected cluster
// contains a majority of the planted members.
func matchPlanted(mcs []core.Microcluster, planted []int) (score float64, ok bool) {
	want := make(map[int]bool, len(planted))
	for _, i := range planted {
		want[i] = true
	}
	bestHit := 0
	for _, mc := range mcs {
		hit := 0
		for _, m := range mc.Members {
			if want[m] {
				hit++
			}
		}
		if hit > bestHit {
			bestHit = hit
			score = mc.Score
		}
	}
	return score, bestHit*2 > len(planted)
}

// matchPlantedGroups does the same for baseline Group output.
func matchPlantedGroups(groups []groupLike, planted []int) (score float64, ok bool) {
	want := make(map[int]bool, len(planted))
	for _, i := range planted {
		want[i] = true
	}
	bestHit := 0
	for _, g := range groups {
		hit := 0
		for _, m := range g.members {
			if want[m] {
				hit++
			}
		}
		if hit > bestHit {
			bestHit = hit
			score = g.score
		}
	}
	return score, bestHit*2 > len(planted)
}

type groupLike struct {
	members []int
	score   float64
}

// hr prints a section rule.
func hr(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// axiomScenario regenerates one Fig. 2 dataset for the harness. The floor
// is the smallest size at which the planted microclusters stay reliably
// detectable (they vanish around n ≈ 750), so Quick mode must not lower it.
func axiomScenario(shape data.Shape, axiom data.Axiom, cfg Config, trial int) *data.AxiomScenario {
	n := scaled(1_000_000, cfg, 1500)
	return data.AxiomDataset(shape, axiom, n, cfg.Seed+int64(trial)*7919)
}
