package experiments

import (
	"fmt"
	"io"

	"mccatch/internal/data"
	"mccatch/internal/fractal"
	"mccatch/internal/metric"
)

// Table1Specs prints Tab. I: the feature matrix of methods versus the
// paper's five goals. The matrix is the paper's qualitative claim set; it
// is static by nature.
func Table1Specs(w io.Writer) {
	hr(w, "Table I — MCCATCH matches all specs")
	type row struct {
		name                                             string
		g1, g2, g3, g4, g5, deterministic, explain, rank bool
	}
	rows := []row{
		{"ABOD", false, false, false, false, true, true, true, true},
		{"ALOCI", false, false, false, true, false, false, true, true},
		{"DB-Out", true, false, false, false, false, true, true, true},
		{"DIAD", false, false, false, false, false, false, true, true},
		{"D.MCA", true, false, false, false, true, false, true, true},
		{"FastABOD", false, false, false, false, true, true, true, true},
		{"Gen2Out", false, true, false, true, true, false, true, true},
		{"GLOSH", true, false, false, false, true, true, true, true},
		{"iForest", false, false, false, true, true, false, true, true},
		{"kNN-Out", true, false, false, false, false, true, true, true},
		{"LDOF", true, false, false, false, false, true, true, true},
		{"LOCI", true, false, false, false, true, true, true, true},
		{"LOF", true, false, false, false, false, true, true, true},
		{"ODIN", true, false, false, false, false, true, true, true},
		{"PLDOF", false, false, false, true, false, true, true, true},
		{"SCiForest", false, false, false, true, true, false, true, true},
		{"Sparkx", false, false, false, true, false, false, true, true},
		{"XTreK", false, false, false, true, true, true, true, true},
		{"Deep SVDD", false, false, false, true, false, false, false, true},
		{"DOIForest", false, false, false, true, false, false, false, true},
		{"RDA", false, false, false, true, false, false, false, true},
		{"DBSCAN", true, false, false, false, false, true, true, false},
		{"KMeans--", false, false, false, true, false, false, true, false},
		{"OPTICS", true, false, false, false, false, true, true, false},
		{"MCCATCH", true, true, true, true, true, true, true, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"Method", "G1.Input", "G2.Outpt", "G3.Princ", "G4.Scale", "G5.Hands", "Determ", "Explain", "Rank")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s %8s %8s %8s\n",
			r.name, mark(r.g1), mark(r.g2), mark(r.g3), mark(r.g4), mark(r.g5),
			mark(r.deterministic), mark(r.explain), mark(r.rank))
	}
}

// Table2Hyperparams prints Tab. II: the hyperparameter grids used for the
// competitors and MCCATCH's fixed defaults.
func Table2Hyperparams(w io.Writer) {
	hr(w, "Table II — hyperparameter configuration")
	rows := [][2]string{
		{"ALOCI", "g in {10, 15, 20}, nmin = 20"},
		{"DB-Out", "r in {l*0.05, l*0.1, l*0.25, l*0.5}"},
		{"D.MCA", "psi in {2,4,8,...min(1024, n*0.3)}, t in {8, 32}, p = n*0.1"},
		{"FastABOD", "k in {1, 5, 10}"},
		{"Gen2Out", "md in {2, 3}, t = 100"},
		{"iForest", "t in {32, 128}, psi in {64, 256}"},
		{"LOCI", "r in {l*0.05, l*0.1, l*0.25, l*0.5}, nmin = 20, alpha = 0.5"},
		{"LOF", "k in {1, 5, 10}"},
		{"ODIN", "k in {1, 5, 10}"},
		{"RDA", "k in {1, 2, 4} latent components (PCA stand-in)"},
		{"MCCATCH", "a = 15, b = 0.1, c = ceil(n*0.1)  (fixed; never tuned)"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %s\n", r[0], r[1])
	}
}

// Table3Datasets prints Tab. III: every dataset with its cardinality,
// embedding dimension, measured intrinsic (fractal) dimension, and outlier
// percentage, at the configured scale.
func Table3Datasets(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	// Fractal-dimension estimation dominates this table's cost; Quick mode
	// probes a smaller sample (the estimator subsamples anyway, so only
	// the estimate's variance changes, never the row set).
	fopt := func(sample int) fractal.Options {
		if cfg.Quick && (sample == 0 || sample > 150) {
			sample = 150
		}
		return fractal.Options{Seed: cfg.Seed, Sample: sample}
	}
	hr(w, fmt.Sprintf("Table III — dataset summary (scale=%.3f)", cfg.Scale))
	fmt.Fprintf(w, "%-22s %9s %6s %8s %9s\n", "Dataset", "#Points", "#Feat", "FracDim", "%Outlier")
	row := func(name string, n, dim int, u float64, pct float64) {
		dimStr := "-"
		if dim > 0 {
			dimStr = fmt.Sprint(dim)
		}
		fmt.Fprintf(w, "%-22s %9d %6s %8.1f %9.2f\n", name, n, dimStr, u, pct)
	}

	// Nondimensional datasets.
	ln := data.LastNames(scaled(5000, cfg, 300), scaled(50, cfg, 8), cfg.Seed)
	u := fractal.Dimension(ln.Words, metric.Levenshtein, fopt(400))
	row(ln.Name, len(ln.Words), 0, u, 100*float64(len(ln.Outliers))/float64(len(ln.Words)))

	fp := data.Fingerprints(scaled(398, cfg, 60), scaled(10, cfg, 4), cfg.Seed)
	u = fractal.Dimension(fp.Sets, metric.Hausdorff, fopt(100))
	row(fp.Name, len(fp.Sets), 0, u, 100*float64(len(fp.Outliers))/float64(len(fp.Sets)))

	sk := data.Skeletons(scaled(200, cfg, 50), 3, cfg.Seed)
	u = fractal.Dimension(sk.Graphs, metric.GraphDistance, fopt(100))
	row(sk.Name, len(sk.Graphs), 0, u, 100*3/float64(len(sk.Graphs)))

	// Axiom datasets.
	for _, axiom := range data.Axioms {
		sc := axiomScenario(data.Gaussian, axiom, cfg, 0)
		u = fractal.Dimension(sc.Points, metric.Euclidean, fopt(0))
		row(sc.Name, len(sc.Points), 2, u, 100*float64(sc.NumOutliers())/float64(len(sc.Points)))
	}

	// Popular benchmarks.
	for _, spec := range data.BenchmarkSpecs {
		v := spec.Generate(cfg.Scale, cfg.Seed)
		u = fractal.Dimension(v.Points, metric.Euclidean, fopt(0))
		row(v.Name, len(v.Points), v.Dim(), u, 100*float64(v.NumOutliers())/float64(len(v.Points)))
	}

	// Satellite showcases (outliers unknown to the paper; planted here).
	for _, v := range []*data.SatelliteTiles{data.Shanghai(cfg.Seed), data.Volcanoes(cfg.Seed)} {
		u = fractal.Dimension(v.Points, metric.Euclidean, fopt(0))
		row(v.Name, len(v.Points), 3, u, -1)
	}

	// Synthetic scalability sets.
	for _, dim := range []int{2, 50} {
		v := data.Uniform(scaled(1_000_000, cfg, 2000), dim, cfg.Seed)
		u = fractal.Dimension(v.Points, metric.Euclidean, fopt(0))
		row(fmt.Sprintf("Uniform-%dd", dim), len(v.Points), dim, u, 0)
		v = data.Diagonal(scaled(1_000_000, cfg, 2000), dim, cfg.Seed)
		u = fractal.Dimension(v.Points, metric.Euclidean, fopt(0))
		row(fmt.Sprintf("Diagonal-%dd", dim), len(v.Points), dim, u, 0)
	}
}
