package experiments

import (
	"fmt"
	"io"

	"mccatch/internal/baselines"
	"mccatch/internal/data"
	"mccatch/internal/eval"
)

// ExtendedAccuracy goes beyond the paper's Tab. IV roster: it scores every
// detector in this repository — including the Tab. I methods the paper
// lists but does not benchmark (GLOSH, SCiForest, PLDOF, Deep SVDD,
// Sparkx, DBSCAN, OPTICS, KMeans--) — on three representative scenes: a
// singleton-outlier scene, a known-microcluster scene (HTTP), and an axiom
// scene. It prints AUROC per cell, making the paper's qualitative Tab. I
// claims ("misses every mc whose points have close neighbors") measurable.
func ExtendedAccuracy(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, fmt.Sprintf("Extended accuracy — full detector roster, AUROC (scale=%.3f)", cfg.Scale))

	type ds struct {
		name   string
		points [][]float64
		labels []bool
	}
	var sets []ds
	if spec, ok := data.SpecByName("Mammography"); ok {
		v := spec.Generate(cfg.Scale*5, cfg.Seed)
		sets = append(sets, ds{"Singletons(Mammo)", v.Points, v.Labels})
	}
	http := data.HTTPLike(cfg.Scale, cfg.Seed)
	sets = append(sets, ds{"Microclusters(HTTP)", http.Points, http.Labels})
	sc := data.AxiomDataset(data.Cross, data.Cardinality, scaled(1_000_000, cfg, 1500), cfg.Seed)
	sets = append(sets, ds{"Axiom(Cross/Card)", sc.Points, sc.Labels})

	detectors := []baselines.Detector{
		baselines.KNNOut{K: 5},
		baselines.ODIN{K: 5},
		baselines.LDOF{K: 10},
		baselines.LOF{K: 10},
		baselines.DBOut{RFrac: 0.25},
		baselines.FastABOD{K: 10},
		baselines.LOCI{RMaxFrac: 0.25},
		baselines.ALOCI{Levels: 15},
		baselines.IForest{Trees: 100, Seed: cfg.Seed},
		baselines.SCiForest{Trees: 100, Seed: cfg.Seed},
		baselines.Gen2Out{Trees: 100, Seed: cfg.Seed},
		baselines.DMCA{Trees: 16, Seed: cfg.Seed},
		baselines.RDA{Components: 2},
		baselines.GLOSH{MinPts: 5},
		baselines.PLDOF{K: 8, KNN: 10, Seed: cfg.Seed},
		baselines.DeepSVDD{},
		baselines.Sparkx{Seed: cfg.Seed},
		baselines.DBSCAN{EpsFrac: 0.05, MinPts: 5},
		baselines.OPTICS{MinPts: 10},
		baselines.KMeansMM{K: 8, Seed: cfg.Seed},
	}

	fmt.Fprintf(w, "%-22s", "Method")
	for _, d := range sets {
		fmt.Fprintf(w, " %20s", d.name)
	}
	fmt.Fprintln(w)
	// MCCATCH first.
	fmt.Fprintf(w, "%-22s", "MCCATCH")
	for _, d := range sets {
		res, _ := runMCCatch(d.points)
		fmt.Fprintf(w, " %20.3f", eval.AUROC(res.PointScores, d.labels))
	}
	fmt.Fprintln(w)
	for _, det := range detectors {
		fmt.Fprintf(w, "%-22s", det.Name())
		for _, d := range sets {
			if len(d.points) > 1200 && isQuadratic(det) {
				fmt.Fprintf(w, " %20s", "skipped (cost)")
				continue
			}
			fmt.Fprintf(w, " %20.3f", eval.AUROC(det.Score(d.points), d.labels))
		}
		fmt.Fprintln(w)
	}
}

// isQuadratic flags the detectors whose cost is quadratic or worse, which
// the runner skips on large scenes exactly as the paper did.
func isQuadratic(d baselines.Detector) bool {
	switch d.(type) {
	case baselines.LOCI, baselines.GLOSH, baselines.OPTICS, baselines.FastABOD, baselines.ABOD, baselines.LDOF, baselines.PLDOF:
		return true
	}
	return false
}
