package experiments

import (
	"fmt"
	"io"

	"mccatch/internal/ascii"
	"mccatch/internal/core"
	"mccatch/internal/data"
	"mccatch/internal/eval"
	"mccatch/internal/metric"
)

// Fig1Showcase reproduces Fig. 1: MCCATCH on the Shanghai tiles (vector)
// and on the nondimensional Last Names and Skeletons datasets, reporting
// the recovered microclusters and, where labels exist, the AUROC.
func Fig1Showcase(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, "Figure 1 — dimensional AND nondimensional showcases")

	// (i) Shanghai satellite tiles.
	sh := data.Shanghai(cfg.Seed)
	res, _ := runMCCatch(sh.Points)
	fmt.Fprintf(w, "Shanghai (%d tiles): %d microclusters found\n", len(sh.Points), len(res.Microclusters))
	for k, planted := range sh.MCs {
		_, ok := matchPlanted(res.Microclusters, planted)
		fmt.Fprintf(w, "  planted %d-tile unusual-roof mc #%d recovered: %v\n", len(planted), k+1, ok)
	}
	reportTopMCs(w, res, 4)

	// (ii) Last Names under the edit distance.
	ln := data.LastNames(scaled(5000, cfg, 300), scaled(50, cfg, 8), cfg.Seed)
	lres, err := core.Run(ln.Words, metric.Levenshtein, core.Params{Cost: wordCostOf(ln.Words)})
	if err == nil {
		fmt.Fprintf(w, "Last Names (%d names): AUROC=%.2f (paper: 0.75)\n",
			len(ln.Words), eval.AUROC(lres.PointScores, ln.Labels))
		top := topScored(lres.PointScores, 5)
		fmt.Fprintf(w, "  highest-scored names:")
		for _, i := range top {
			fmt.Fprintf(w, " %s", ln.Words[i])
		}
		fmt.Fprintln(w)
	}

	// (iii) Skeleton graphs under the graph distance.
	sk := data.Skeletons(scaled(200, cfg, 50), 3, cfg.Seed)
	sres, err := core.Run(sk.Graphs, metric.GraphDistance, core.Params{Cost: metric.CustomCost(4)})
	if err == nil {
		fmt.Fprintf(w, "Skeletons (%d graphs): AUROC=%.2f (paper: 1.00)\n",
			len(sk.Graphs), eval.AUROC(sres.PointScores, sk.Labels))
	}
}

// Fig8Showcase reproduces Fig. 8: the Volcanoes tiles with their 3-tile
// snow microcluster, and the HTTP connection logs with the 30-connection
// 'DoS back' attack microcluster.
func Fig8Showcase(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, "Figure 8 — attention routing and network attacks")

	vo := data.Volcanoes(cfg.Seed)
	res, _ := runMCCatch(vo.Points)
	_, ok := matchPlanted(res.Microclusters, vo.MCs[0])
	fmt.Fprintf(w, "Volcanoes (%d tiles): planted 3-tile snow mc recovered: %v\n", len(vo.Points), ok)

	http := data.HTTPLike(cfg.Scale, cfg.Seed)
	hres, elapsed := runMCCatch(http.Points)
	auroc := eval.AUROC(hres.PointScores, http.Labels)
	_, dosOK := matchPlanted(hres.Microclusters, http.DoS)
	fmt.Fprintf(w, "HTTP (n=%d): AUROC=%.2f (paper: 0.96), runtime=%v\n", len(http.Points), auroc, elapsed)
	fmt.Fprintf(w, "  30-connection 'DoS back' attack mc recovered: %v\n", dosOK)
	reportTopMCs(w, hres, 3)
}

// Fig3OraclePlot prints the explainability artifacts of Figs. 3-5 on a toy
// scene: an ASCII rendering of the 'Oracle' plot (1NN Distance × Group 1NN
// Distance) with the planted microcluster and singleton outliers
// highlighted, the Histogram of 1NN Distances with the MDL cutoff marked,
// and the coordinates of the representative points of Fig. 3.
func Fig3OraclePlot(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, "Figures 3-5 — 'Oracle' plot, neighborhood plateaus and MDL cutoff (toy data)")
	sc := data.AxiomDataset(data.Gaussian, data.Isolation, 2000, cfg.Seed)
	res, _ := runMCCatch(sc.Points)
	fmt.Fprintf(w, "radii: %d geometric steps, diameter l=%.1f, cutoff d=%.2f (bin %d)\n\n",
		len(res.Radii), res.Diameter, res.Cutoff, res.CutoffIndex)

	// 'Oracle' plot, log-log like Fig. 3(ii): C = mc members, E = other
	// detected outliers, . = inliers.
	marks := make([]byte, len(sc.Points))
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			if len(mc.Members) > 1 {
				marks[m] = 'C'
			} else {
				marks[m] = 'E'
			}
		}
	}
	fmt.Fprintln(w, "'Oracle' plot (x: 1NN Distance, y: Group 1NN Distance; C=mc member, E=singleton):")
	ascii.Scatter(w, res.OracleX, res.OracleY, marks, 60, 14, true, true)

	// Histogram of 1NN Distances with the cutoff bin marked (Fig. 4).
	fmt.Fprintln(w, "\nHistogram of 1NN Distances (per radius bin):")
	labels := make([]string, len(res.Radii))
	for e, r := range res.Radii {
		labels[e] = fmt.Sprintf("r%-2d=%.3g", e+1, r)
	}
	ascii.Bars(w, res.Histogram, labels, 40, res.CutoffIndex)

	inlier := 0
	mcPoint := sc.Red[0]
	fmt.Fprintf(w, "\ninlier 'A':   x=%.3f y=%.3f (bottom-left of the plot)\n", res.OracleX[inlier], res.OracleY[inlier])
	fmt.Fprintf(w, "mc-point 'C': x=%.3f y=%.3f (top of the plot: y ≥ d=%.2f)\n", res.OracleX[mcPoint], res.OracleY[mcPoint], res.Cutoff)
}

// reportTopMCs prints the k most anomalous microclusters.
func reportTopMCs(w io.Writer, res *core.Result, k int) {
	for i, mc := range res.Microclusters {
		if i >= k {
			break
		}
		fmt.Fprintf(w, "  mc #%d: %d members, score %.2f, bridge %.3f\n",
			i+1, len(mc.Members), mc.Score, mc.Bridge)
	}
}

// topScored returns the indices of the k highest point scores.
func topScored(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	for a := 0; a < k && a < len(idx); a++ {
		best := a
		for b := a + 1; b < len(idx); b++ {
			if scores[idx[b]] > scores[idx[best]] {
				best = b
			}
		}
		idx[a], idx[best] = idx[best], idx[a]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
