package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests. Under -short it also
// flips Quick, which trims the expensive sweeps (see Config.Quick) so the
// whole package stays CI-fast; the nightly full run exercises the
// untrimmed versions.
func tiny() Config {
	if testing.Short() {
		// Quarter-scale datasets (floors keep every set detectable) plus
		// the Quick sweep trims; the nightly full run uses the line below.
		return Config{Scale: 0.001, Seed: 1, Runs: 1, Quick: true}
	}
	return Config{Scale: 0.004, Seed: 1, Runs: 1}
}

// shortOr returns full, or the reduced value under -short. Call sites use
// it for whatever knob -short shrinks (trial counts, sweep sample sizes).
func shortOr(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func TestTable1And2AreStatic(t *testing.T) {
	var buf bytes.Buffer
	Table1Specs(&buf)
	out := buf.String()
	if !strings.Contains(out, "MCCATCH") || !strings.Contains(out, "Gen2Out") {
		t.Error("Table I missing methods")
	}
	// MCCATCH is the only all-yes row.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MCCATCH") && strings.Contains(line, "-") {
			t.Error("MCCATCH row should fulfill every spec")
		}
	}
	buf.Reset()
	Table2Hyperparams(&buf)
	if !strings.Contains(buf.String(), "a = 15, b = 0.1") {
		t.Error("Table II missing MCCATCH defaults")
	}
}

func TestTable3DatasetsRuns(t *testing.T) {
	var buf bytes.Buffer
	Table3Datasets(&buf, tiny())
	out := buf.String()
	for _, want := range []string{"Last Names", "Fingerprints", "Skeletons", "HTTP", "Uniform-2d", "Diagonal-50d"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q\n%s", want, out)
		}
	}
}

func TestTable5AxiomsMCCatchObeys(t *testing.T) {
	var buf bytes.Buffer
	Table5Axioms(&buf, tiny(), shortOr(3, 1))
	out := buf.String()
	lines := strings.Split(out, "\n")
	var mcLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "MCCATCH") {
			mcLine = l
		}
	}
	if mcLine == "" {
		t.Fatalf("no MCCATCH row in Table V output:\n%s", out)
	}
	if strings.Contains(mcLine, "Fail") {
		t.Errorf("MCCATCH missed planted microclusters:\n%s", out)
	}
}

func TestFig2AxiomsObeyed(t *testing.T) {
	var buf bytes.Buffer
	Fig2Axioms(&buf, tiny())
	out := buf.String()
	if strings.Contains(out, "VIOLATED") || strings.Contains(out, "MC MISSED") {
		t.Errorf("Fig. 2 axioms not obeyed:\n%s", out)
	}
	if strings.Count(out, "OBEYED") != 6 {
		t.Errorf("expected 6 OBEYED cells:\n%s", out)
	}
}

func TestFig1ShowcaseRecoversPlantedStructure(t *testing.T) {
	var buf bytes.Buffer
	Fig1Showcase(&buf, tiny())
	out := buf.String()
	if strings.Contains(out, "recovered: false") {
		t.Errorf("showcase failed to recover planted mcs:\n%s", out)
	}
	if !strings.Contains(out, "AUROC") {
		t.Errorf("showcase missing AUROC lines:\n%s", out)
	}
}

func TestFig8ShowcaseFindsDoS(t *testing.T) {
	var buf bytes.Buffer
	Fig8Showcase(&buf, tiny())
	out := buf.String()
	if !strings.Contains(out, "'DoS back' attack mc recovered: true") {
		t.Errorf("DoS microcluster not recovered:\n%s", out)
	}
	if strings.Contains(out, "snow mc recovered: false") {
		t.Errorf("volcano snow mc not recovered:\n%s", out)
	}
}

func TestFig3OraclePlotArtifacts(t *testing.T) {
	var buf bytes.Buffer
	Fig3OraclePlot(&buf, tiny())
	out := buf.String()
	for _, want := range []string{"radii:", "Histogram", "inlier 'A'", "mc-point 'C'"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9SensitivityRuns(t *testing.T) {
	var buf bytes.Buffer
	Fig9Sensitivity(&buf, tiny())
	out := buf.String()
	for _, want := range []string{"a=13", "b=0.08", "c=n*0.08", "HTTP"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 9 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("sensitivity sweep produced NaN:\n%s", out)
	}
}

func TestTable6RuntimeRuns(t *testing.T) {
	var buf bytes.Buffer
	Table6Runtime(&buf, tiny())
	out := buf.String()
	for _, want := range []string{"MCCATCH", "Gen2Out", "D.MCA", "HTTP"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table VI output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ScalabilityRuns(t *testing.T) {
	var buf bytes.Buffer
	Fig7Scalability(&buf, tiny(), shortOr(2000, 800))
	out := buf.String()
	if !strings.Contains(out, "Uniform 2-d") || !strings.Contains(out, "measured slope") {
		t.Errorf("Fig. 7 output incomplete:\n%s", out)
	}
}

func TestNondimensionalAUROCsAreHigh(t *testing.T) {
	res := nondimensionalAUROCs(tiny())
	if len(res) != 3 {
		t.Fatalf("expected 3 nondimensional datasets, got %d", len(res))
	}
	for _, r := range res {
		if r.auroc < 0.6 {
			t.Errorf("%s: AUROC=%.2f, want ≥ 0.6", r.name, r.auroc)
		}
	}
}

func TestMatchPlanted(t *testing.T) {
	mcs := []struct {
		members []int
		score   float64
	}{
		{[]int{1, 2, 3}, 5},
		{[]int{9}, 9},
	}
	var cores []groupLike
	for _, m := range mcs {
		cores = append(cores, groupLike{m.members, m.score})
	}
	if s, ok := matchPlantedGroups(cores, []int{1, 2, 3, 4}); !ok || s != 5 {
		t.Errorf("majority match failed: %v %v", s, ok)
	}
	if _, ok := matchPlantedGroups(cores, []int{4, 5, 6}); ok {
		t.Error("no-overlap should not match")
	}
	if _, ok := matchPlantedGroups(cores, []int{1, 4, 5, 6}); ok {
		t.Error("minority overlap should not match")
	}
}

func TestTable4AndFig6Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy harness is slow")
	}
	var buf bytes.Buffer
	AccuracyReport(&buf, tiny())
	out := buf.String()
	for _, want := range []string{"AUROC", "AP", "Max-F1", "MCCATCH", "iForest"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Totals vs competitors") {
		t.Errorf("Fig. 6 missing totals:\n%s", out)
	}
	if !strings.Contains(out, "NON APPL") {
		t.Errorf("Fig. 6 missing nondimensional rows:\n%s", out)
	}
}
