package experiments

import (
	"fmt"
	"io"
	"math"

	"mccatch/internal/baselines"
	"mccatch/internal/core"
	"mccatch/internal/data"
	"mccatch/internal/eval"
	"mccatch/internal/metric"
)

// method is one competitor with its Tab. II tuning grid: the harness runs
// every configuration and keeps the best AUROC per dataset ("carefully
// tuned", favorably to the competitor). maxN guards the methods the paper
// could not run on large data (quadratic/cubic cost); datasets above it
// are skipped, mirroring the paper's ⊗ marks.
type method struct {
	name          string
	grid          func(seed int64) []baselines.Detector
	maxN          int
	deterministic bool
}

func methodRoster() []method {
	return []method{
		{name: "ABOD", maxN: 1200, deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.ABOD{}}
		}},
		{name: "ALOCI", grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.ALOCI{Levels: 10}, baselines.ALOCI{Levels: 15}, baselines.ALOCI{Levels: 20}}
		}},
		{name: "DB-Out", maxN: 20000, deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.DBOut{RFrac: 0.05}, baselines.DBOut{RFrac: 0.1}, baselines.DBOut{RFrac: 0.25}, baselines.DBOut{RFrac: 0.5}}
		}},
		{name: "D.MCA", maxN: 20000, grid: func(seed int64) []baselines.Detector {
			return []baselines.Detector{baselines.DMCA{Trees: 8, Seed: seed}, baselines.DMCA{Trees: 32, Seed: seed}}
		}},
		{name: "FastABOD", maxN: 20000, deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.FastABOD{K: 1}, baselines.FastABOD{K: 5}, baselines.FastABOD{K: 10}}
		}},
		{name: "Gen2Out", grid: func(seed int64) []baselines.Detector {
			return []baselines.Detector{baselines.Gen2Out{Trees: 100, MD: 2, Seed: seed}, baselines.Gen2Out{Trees: 100, MD: 3, Seed: seed}}
		}},
		{name: "iForest", grid: func(seed int64) []baselines.Detector {
			return []baselines.Detector{
				baselines.IForest{Trees: 32, Psi: 64, Seed: seed},
				baselines.IForest{Trees: 128, Psi: 256, Seed: seed},
			}
		}},
		{name: "LOCI", maxN: 2500, deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.LOCI{RMaxFrac: 0.05}, baselines.LOCI{RMaxFrac: 0.1}, baselines.LOCI{RMaxFrac: 0.25}, baselines.LOCI{RMaxFrac: 0.5}}
		}},
		{name: "LOF", maxN: 60000, deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.LOF{K: 1}, baselines.LOF{K: 5}, baselines.LOF{K: 10}}
		}},
		{name: "ODIN", maxN: 60000, deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.ODIN{K: 1}, baselines.ODIN{K: 5}, baselines.ODIN{K: 10}}
		}},
		{name: "RDA", deterministic: true, grid: func(int64) []baselines.Detector {
			return []baselines.Detector{baselines.RDA{Components: 1}, baselines.RDA{Components: 2}, baselines.RDA{Components: 4}}
		}},
	}
}

// accuracyCell is one method × dataset outcome.
type accuracyCell struct {
	auroc, ap, maxF1 float64
	skipped          bool // excessive cost (paper's ⊗/⊖ marks)
}

// accuracyDataset is one labeled dataset of the Fig. 6 grid.
type accuracyDataset struct {
	name    string
	points  [][]float64
	labels  []bool
	section string // "Axioms", "Microclusters", "Large", "Small"
}

// accuracyDatasets assembles the labeled vector datasets of Fig. 6 at the
// configured scale.
func accuracyDatasets(cfg Config) []accuracyDataset {
	var out []accuracyDataset
	for _, shape := range data.Shapes {
		for _, axiom := range data.Axioms {
			sc := data.AxiomDataset(shape, axiom, scaled(1_000_000, cfg, 1500), cfg.Seed)
			out = append(out, accuracyDataset{sc.Name, sc.Points, sc.Labels, "Axioms"})
		}
	}
	for _, spec := range data.BenchmarkSpecs {
		v := spec.Generate(cfg.Scale, cfg.Seed)
		section := "Small"
		switch {
		case spec.HasKnownMCs():
			section = "Microclusters"
		case spec.N >= 3000:
			section = "Large"
		}
		out = append(out, accuracyDataset{v.Name, v.Points, v.Labels, section})
	}
	return out
}

// accuracyResults runs MCCATCH and every competitor over all datasets.
// The returned maps are keyed [dataset][method].
func accuracyResults(cfg Config) ([]accuracyDataset, []string, map[string]map[string]accuracyCell) {
	cfg = cfg.withDefaults()
	sets := accuracyDatasets(cfg)
	roster := methodRoster()
	methods := []string{"MCCATCH"}
	for _, m := range roster {
		methods = append(methods, m.name)
	}
	cells := make(map[string]map[string]accuracyCell, len(sets))
	for _, ds := range sets {
		cells[ds.name] = make(map[string]accuracyCell, len(methods))
		res, _ := runMCCatch(ds.points)
		cells[ds.name]["MCCATCH"] = accuracyCell{
			auroc: eval.AUROC(res.PointScores, ds.labels),
			ap:    eval.AveragePrecision(res.PointScores, ds.labels),
			maxF1: eval.MaxF1(res.PointScores, ds.labels),
		}
		for _, m := range roster {
			if m.maxN > 0 && len(ds.points) > m.maxN {
				cells[ds.name][m.name] = accuracyCell{skipped: true}
				continue
			}
			best := accuracyCell{auroc: math.Inf(-1)}
			runs := cfg.Runs
			if m.deterministic {
				runs = 1
			}
			for r := 0; r < runs; r++ {
				for gi, det := range m.grid(cfg.Seed + int64(r)) {
					scores := det.Score(ds.points)
					cell := accuracyCell{
						auroc: eval.AUROC(scores, ds.labels),
						ap:    eval.AveragePrecision(scores, ds.labels),
						maxF1: eval.MaxF1(scores, ds.labels),
					}
					// Average nondeterministic runs per grid point, then keep
					// the best grid point; with runs==1 this is plain max.
					_ = gi
					if cell.auroc > best.auroc {
						best = cell
					}
				}
			}
			cells[ds.name][m.name] = best
		}
	}
	return sets, methods, cells
}

// AccuracyReport computes the accuracy pass once and prints both Tab. IV
// and Fig. 6 from it.
func AccuracyReport(w io.Writer, cfg Config) {
	sets, methods, cells := accuracyResults(cfg)
	printTable4(w, cfg, sets, methods, cells)
	printFig6(w, cfg, sets, methods, cells)
}

// Table4Accuracy prints Tab. IV: per-metric harmonic mean ranks over all
// datasets.
func Table4Accuracy(w io.Writer, cfg Config) {
	sets, methods, cells := accuracyResults(cfg)
	printTable4(w, cfg, sets, methods, cells)
}

func printTable4(w io.Writer, cfg Config, sets []accuracyDataset, methods []string, cells map[string]map[string]accuracyCell) {
	hr(w, fmt.Sprintf("Table IV — accuracy evaluation (scale=%.3f, harmonic mean of ranks; 1=best)", cfg.withDefaults().Scale))

	metricNames := []string{"AUROC", "AP", "Max-F1"}
	pick := func(c accuracyCell, m string) float64 {
		switch m {
		case "AUROC":
			return c.auroc
		case "AP":
			return c.ap
		default:
			return c.maxF1
		}
	}
	fmt.Fprintf(w, "%-22s", "H. Mean Rank")
	for _, m := range methods {
		fmt.Fprintf(w, " %9s", m)
	}
	fmt.Fprintln(w)
	for _, mn := range metricNames {
		perMethodRanks := make(map[string][]float64)
		for _, ds := range sets {
			vals := make([]float64, len(methods))
			for i, m := range methods {
				c := cells[ds.name][m]
				if c.skipped {
					vals[i] = math.NaN()
				} else {
					vals[i] = pick(c, mn)
				}
			}
			ranks := eval.Ranks(vals)
			for i, m := range methods {
				if !math.IsNaN(vals[i]) {
					perMethodRanks[m] = append(perMethodRanks[m], ranks[i])
				}
			}
		}
		fmt.Fprintf(w, "%-22s", mn)
		for _, m := range methods {
			fmt.Fprintf(w, " %9.1f", eval.HarmonicMean(perMethodRanks[m]))
		}
		fmt.Fprintln(w)
	}
}

// Fig6Grid prints the win/tie/lose accuracy grid of Fig. 6: MCCATCH's
// AUROC against each competitor on each dataset (±0.1 AUROC counts as a
// tie, per the figure's legend), plus the nondimensional rows where every
// competitor is N/A.
func Fig6Grid(w io.Writer, cfg Config) {
	sets, methods, cells := accuracyResults(cfg)
	printFig6(w, cfg, sets, methods, cells)
}

func printFig6(w io.Writer, cfg Config, sets []accuracyDataset, methods []string, cells map[string]map[string]accuracyCell) {
	hr(w, "Figure 6 — MCCATCH vs competitors (W=win T=tie L=lose, x=skipped)")
	fmt.Fprintf(w, "%-28s", "Dataset")
	for _, m := range methods[1:] {
		fmt.Fprintf(w, " %9s", m)
	}
	fmt.Fprintln(w)

	order := []string{"Axioms", "Microclusters", "Large", "Small"}
	wins, ties, losses := 0, 0, 0
	for _, section := range order {
		for _, ds := range sets {
			if ds.section != section {
				continue
			}
			mine := cells[ds.name]["MCCATCH"].auroc
			fmt.Fprintf(w, "%-28s", fmt.Sprintf("[%s] %s", section[:1], ds.name))
			for _, m := range methods[1:] {
				c := cells[ds.name][m]
				mark := "T"
				switch {
				case c.skipped:
					mark = "x"
				case mine > c.auroc+0.1:
					mark, wins = "W", wins+1
				case mine < c.auroc-0.1:
					mark, losses = "L", losses+1
				default:
					ties++
				}
				fmt.Fprintf(w, " %9s", mark)
			}
			fmt.Fprintln(w)
		}
	}

	// Nondimensional rows: only MCCATCH applies.
	fmt.Fprintln(w)
	for _, nd := range nondimensionalAUROCs(cfg) {
		fmt.Fprintf(w, "%-28s AUROC=%.2f   (all competitors: NON APPL. / NEED MODIF.)\n",
			"[N] "+nd.name, nd.auroc)
	}
	fmt.Fprintf(w, "\nTotals vs competitors: %d wins, %d ties, %d losses\n", wins, ties, losses)
}

type ndResult struct {
	name  string
	auroc float64
}

// nondimensionalAUROCs runs MCCATCH on the three metric-only datasets.
func nondimensionalAUROCs(cfg Config) []ndResult {
	cfg = cfg.withDefaults()
	var out []ndResult

	ln := data.LastNames(scaled(5000, cfg, 300), scaled(50, cfg, 8), cfg.Seed)
	res, err := core.Run(ln.Words, metric.Levenshtein, core.Params{Cost: wordCostOf(ln.Words)})
	if err == nil {
		out = append(out, ndResult{ln.Name, eval.AUROC(res.PointScores, ln.Labels)})
	}

	fp := data.Fingerprints(scaled(398, cfg, 60), scaled(10, cfg, 4), cfg.Seed)
	res, err = core.Run(fp.Sets, metric.Hausdorff, core.Params{Cost: metric.CustomCost(2)})
	if err == nil {
		out = append(out, ndResult{fp.Name, eval.AUROC(res.PointScores, fp.Labels)})
	}

	sk := data.Skeletons(scaled(200, cfg, 50), 3, cfg.Seed)
	res, err = core.Run(sk.Graphs, metric.GraphDistance, core.Params{Cost: metric.CustomCost(4)})
	if err == nil {
		out = append(out, ndResult{sk.Name, eval.AUROC(res.PointScores, sk.Labels)})
	}
	return out
}

func wordCostOf(words []string) metric.TransformationCost {
	distinct := map[rune]bool{}
	longest := 0
	for _, w := range words {
		rs := []rune(w)
		if len(rs) > longest {
			longest = len(rs)
		}
		for _, r := range rs {
			distinct[r] = true
		}
	}
	return metric.WordCost(len(distinct), longest)
}
