package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"mccatch/internal/baselines"
	"mccatch/internal/data"
	"mccatch/internal/fractal"
	"mccatch/internal/metric"
)

// Table6Runtime compares wall-clock runtime of the three microcluster
// detectors (MCCATCH, Gen2Out, D.MCA) on the paper's large datasets —
// Tab. VI's claim is that MCCATCH is the fastest (and the only principled
// one) on data of large cardinality or dimensionality.
func Table6Runtime(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	hr(w, fmt.Sprintf("Table VI — runtime evaluation (scale=%.3f)", cfg.Scale))
	fmt.Fprintf(w, "%-30s %12s %12s %12s\n", "Dataset", "D.MCA", "Gen2Out", "MCCATCH")

	type ds struct {
		name   string
		points [][]float64
	}
	sets := []ds{}
	sc := axiomScenario(data.Gaussian, data.Isolation, cfg, 0)
	sets = append(sets, ds{"Gauss/Cross/Arc (Axioms)", sc.Points})
	http := data.HTTPLike(cfg.Scale, cfg.Seed)
	sets = append(sets, ds{"HTTP", http.Points})
	if spec, ok := data.SpecByName("Satellite"); ok {
		sets = append(sets, ds{"Satellite", spec.Generate(math.Min(1, cfg.Scale*10), cfg.Seed).Points})
	}
	if spec, ok := data.SpecByName("Speech"); ok {
		sets = append(sets, ds{"Speech", spec.Generate(math.Min(1, cfg.Scale*10), cfg.Seed).Points})
	}

	for _, d := range sets {
		tDMCA := timeIt(func() { baselines.DMCA{Trees: 16, Seed: cfg.Seed}.Score(d.points) })
		tGen := timeIt(func() { baselines.Gen2Out{Trees: 100, Seed: cfg.Seed}.Score(d.points) })
		var tMc time.Duration
		_, tMc = runMCCatch(d.points)
		fmt.Fprintf(w, "%-30s %12s %12s %12s\n",
			fmt.Sprintf("%s (n=%d)", d.name, len(d.points)),
			tDMCA.Round(time.Millisecond), tGen.Round(time.Millisecond), tMc.Round(time.Millisecond))
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Fig7Scalability measures MCCATCH runtime against the data size for
// Uniform and Diagonal at several embedding dimensions, fits the log-log
// slope, and compares it with Lemma 1's expectation 2−1/u (the dashed
// lines of Fig. 7). maxN bounds the largest sample.
func Fig7Scalability(w io.Writer, cfg Config, maxN int) {
	cfg = cfg.withDefaults()
	if maxN <= 0 {
		maxN = 16000
	}
	hr(w, fmt.Sprintf("Figure 7 — runtime vs data size (up to n=%d)", maxN))

	type family struct {
		name string
		gen  func(n, dim int) [][]float64
		dims []int
	}
	families := []family{
		{"Uniform", func(n, dim int) [][]float64 { return data.Uniform(n, dim, cfg.Seed).Points }, []int{2, 20, 50}},
		{"Diagonal", func(n, dim int) [][]float64 { return data.Diagonal(n, dim, cfg.Seed).Points }, []int{2, 20, 50}},
	}
	for _, fam := range families {
		dims := fam.dims
		if cfg.Quick {
			// Quick mode measures one dimension per family; the slope fit
			// and its Lemma-1 comparison still print for each.
			dims = dims[:1]
		}
		for _, dim := range dims {
			// Geometric sweep of sample sizes.
			var ns []int
			for n := maxN / 8; n <= maxN; n *= 2 {
				ns = append(ns, n)
			}
			full := fam.gen(maxN, dim)
			u := fractal.Dimension(full, metric.Euclidean, fractal.Options{Seed: cfg.Seed})
			var logN, logT []float64
			fmt.Fprintf(w, "%s %d-d (fractal dim u=%.1f, expected slope %.2f):\n",
				fam.name, dim, u, fractal.ExpectedRuntimeSlope(u))
			for _, n := range ns {
				_, elapsed := runMCCatch(full[:n])
				fmt.Fprintf(w, "  n=%7d  runtime=%v\n", n, elapsed.Round(time.Millisecond))
				logN = append(logN, math.Log2(float64(n)))
				logT = append(logT, math.Log2(float64(elapsed.Nanoseconds())))
			}
			fmt.Fprintf(w, "  measured slope: %.2f\n", slope(logN, logT))
		}
	}
}

// slope is the least-squares slope of y on x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
