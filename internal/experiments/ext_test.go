package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtendedAccuracyRuns(t *testing.T) {
	var buf bytes.Buffer
	ExtendedAccuracy(&buf, tiny())
	out := buf.String()
	for _, want := range []string{"MCCATCH", "GLOSH", "SCiForest", "Sparkx", "DBSCAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("extended accuracy missing %q:\n%s", want, out)
		}
	}
}
