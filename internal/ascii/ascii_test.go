package ascii

import (
	"bytes"
	"strings"
	"testing"
)

func TestScatterDimensionsAndGlyphs(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	marks := []byte{0, 0, 0, 'X'}
	Scatter(&buf, xs, ys, marks, 20, 6, false, false)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 7 { // 6 rows + bottom border
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), buf.String())
	}
	for _, l := range lines[:6] {
		if len(l) != 22 { // | + 20 + |
			t.Fatalf("row width %d, want 22: %q", len(l), l)
		}
	}
	// The marked point is top-right; the default points are dots.
	if !strings.Contains(lines[0], "X") {
		t.Errorf("marked glyph missing from the top row:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), ".") {
		t.Error("default dots missing")
	}
}

func TestScatterLogAxesHandleZeros(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 0.001, 1, 1000}
	ys := []float64{0, 0, 5, 5}
	Scatter(&buf, xs, ys, nil, 24, 5, true, true)
	if !strings.Contains(buf.String(), ".") {
		t.Error("log scatter lost its points")
	}
}

func TestScatterDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, nil, nil, nil, 10, 4, false, false)
	if buf.Len() == 0 {
		t.Error("empty scatter should still draw the frame")
	}
	buf.Reset()
	Scatter(&buf, []float64{5, 5}, []float64{7, 7}, nil, 10, 4, false, false)
	if !strings.Contains(buf.String(), ".") {
		t.Error("constant data should still plot")
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, []int{10, 5, 0, 1}, []string{"a", "b", "c", "d"}, 20, 3)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("peak bar should be full width: %q", lines[0])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("zero bin should have no bar: %q", lines[2])
	}
	if !strings.Contains(lines[3], "<-- cutoff d") {
		t.Errorf("marker missing: %q", lines[3])
	}
}

func TestBarsAllZero(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, []int{0, 0}, nil, 10, -1)
	if strings.Contains(buf.String(), "#") {
		t.Error("all-zero histogram should draw no bars")
	}
}
