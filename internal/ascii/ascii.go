// Package ascii renders small scatter plots and bar charts as text, so the
// experiment harness can show the paper's figures — the 'Oracle' plot of
// Fig. 3 and the cutoff histogram of Fig. 4 — directly in a terminal.
package ascii

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// axis maps data values into [0, 1], optionally in log scale. Non-positive
// values under a log axis clamp to the smallest positive value present.
type axis struct {
	lo, hi float64
	log    bool
}

func newAxis(vs []float64, logScale bool) axis {
	a := axis{lo: math.Inf(1), hi: math.Inf(-1), log: logScale}
	minPos := math.Inf(1)
	for _, v := range vs {
		if v > 0 && v < minPos {
			minPos = v
		}
	}
	for _, v := range vs {
		t := a.value(v, minPos)
		if t < a.lo {
			a.lo = t
		}
		if t > a.hi {
			a.hi = t
		}
	}
	if !(a.hi > a.lo) { // empty or constant input
		a.lo, a.hi = a.lo-1, a.lo+1
	}
	return a
}

func (a axis) value(v, minPos float64) float64 {
	if !a.log {
		return v
	}
	if v <= 0 {
		if math.IsInf(minPos, 1) {
			return 0
		}
		v = minPos
	}
	return math.Log2(v)
}

// frac returns v's position in [0, 1] along the axis.
func (a axis) frac(v, minPos float64) float64 {
	t := a.value(v, minPos)
	f := (t - a.lo) / (a.hi - a.lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Scatter renders the points as a width×height character grid inside a
// box. marks optionally assigns a glyph per point (0 = default '.'); later
// points overwrite earlier ones, so callers should list highlighted points
// last.
func Scatter(w io.Writer, xs, ys []float64, marks []byte, width, height int, logX, logY bool) {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	ax := newAxis(xs, logX)
	ay := newAxis(ys, logY)
	minPosX := smallestPositive(xs)
	minPosY := smallestPositive(ys)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		cx := int(ax.frac(xs[i], minPosX) * float64(width-1))
		cy := int(ay.frac(ys[i], minPosY) * float64(height-1))
		glyph := byte('.')
		if marks != nil && i < len(marks) && marks[i] != 0 {
			glyph = marks[i]
		}
		grid[height-1-cy][cx] = glyph
	}
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", string(row))
	}
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", width))
}

// Bars renders a histogram as one line per bin, scaled to maxWidth
// characters, with an optional marker arrow on one bin (markBin < 0 for
// none) — Fig. 4's cutoff pointer.
func Bars(w io.Writer, values []int, labels []string, maxWidth, markBin int) {
	if maxWidth < 4 {
		maxWidth = 4
	}
	peak := 0
	for _, v := range values {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i, v := range values {
		label := ""
		if labels != nil && i < len(labels) {
			label = labels[i]
		}
		bar := strings.Repeat("#", int(math.Round(float64(v)/float64(peak)*float64(maxWidth))))
		mark := ""
		if i == markBin {
			mark = "  <-- cutoff d"
		}
		fmt.Fprintf(w, "%12s %7d %s%s\n", label, v, bar, mark)
	}
}

func smallestPositive(vs []float64) float64 {
	m := math.Inf(1)
	for _, v := range vs {
		if v > 0 && v < m {
			m = v
		}
	}
	return m
}
