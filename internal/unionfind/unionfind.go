// Package unionfind provides a disjoint-set forest with union by rank and
// path compression. MCCATCH uses it to gel outliers into nonsingleton
// microclusters by finding the connected components of the neighborhood
// graph (paper Alg. 3, line 14).
package unionfind

// DSU is a disjoint-set forest over the integers [0, n).
type DSU struct {
	parent []int
	rank   []byte
	count  int // number of disjoint sets
}

// New returns a DSU with n singleton sets {0}, {1}, ... {n-1}.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.count--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Components returns the sets as slices of member indices. The outer slice
// is ordered by the smallest member of each component, and members within a
// component appear in increasing order, so the output is deterministic.
func (d *DSU) Components() [][]int {
	byRoot := make(map[int][]int)
	for i := range d.parent {
		r := d.Find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(byRoot))
	for i := range d.parent {
		if d.Find(i) == i {
			out = append(out, byRoot[i])
		}
	}
	// Order by smallest member: members are appended in increasing i, so
	// byRoot[r][0] is the smallest; roots are visited in index order, but a
	// root need not be the smallest member. Sort by first element.
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b][0] < out[b-1][0]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}
