package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(6)
	if d.Count() != 6 {
		t.Fatalf("Count = %d, want 6", d.Count())
	}
	if !d.Union(0, 1) {
		t.Error("Union(0,1) should merge")
	}
	if d.Union(1, 0) {
		t.Error("Union(1,0) should not merge twice")
	}
	d.Union(2, 3)
	d.Union(1, 2)
	if !d.Same(0, 3) {
		t.Error("0 and 3 should be connected")
	}
	if d.Same(0, 4) {
		t.Error("0 and 4 should not be connected")
	}
	if d.Count() != 3 {
		t.Errorf("Count = %d, want 3 ({0,1,2,3},{4},{5})", d.Count())
	}
}

func TestComponentsDeterministicOrder(t *testing.T) {
	d := New(7)
	d.Union(5, 2)
	d.Union(6, 0)
	d.Union(2, 1)
	got := d.Components()
	want := [][]int{{0, 6}, {1, 2, 5}, {3}, {4}}
	if len(got) != len(want) {
		t.Fatalf("got %d components, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	d := New(0)
	if d.Count() != 0 || len(d.Components()) != 0 {
		t.Error("empty DSU should have 0 sets")
	}
	d = New(1)
	if d.Count() != 1 || !d.Same(0, 0) {
		t.Error("singleton DSU broken")
	}
}

// TestAgainstNaive cross-checks DSU connectivity against a naive
// adjacency-matrix transitive closure on random union sequences.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		d := New(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			d.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Floyd–Warshall closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if adj[i][k] && adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(i, j) != adj[i][j] {
					t.Fatalf("trial %d: Same(%d,%d)=%v, naive=%v", trial, i, j, d.Same(i, j), adj[i][j])
				}
			}
		}
	}
}

func TestCountMatchesComponents(t *testing.T) {
	f := func(pairs []uint16, nRaw uint8) bool {
		n := 1 + int(nRaw)%40
		d := New(n)
		for _, p := range pairs {
			a := int(p>>8) % n
			b := int(p&0xff) % n
			d.Union(a, b)
		}
		return d.Count() == len(d.Components())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
