// Package serve is the long-lived HTTP serving layer over the MCCATCH
// detector: a Server wraps either a frozen build-once Detector (opened
// from an on-disk index for instant cold start) or a mutable Incremental
// and exposes ingest / delete / detect / score-point / top-k-outliers
// endpoints.
//
// Two mechanisms make it hold up under heavy traffic:
//
//   - Request coalescing: concurrent score-point requests are gathered
//     into bounded-wait micro-batches and answered through one batched
//     multi-radius traversal per batch (one engine-lock acquisition, one
//     shared scratch), instead of one index walk per request.
//   - Epoch-keyed caching: the expensive full detection Result is cached
//     and served until a mutation moves the backend's epoch; Freeze and
//     Compact don't move it (they cannot change an answer), so only real
//     live-set changes pay for a recompute.
//
// Endpoints (JSON in, JSON out):
//
//	GET  /healthz            → {"n", "epoch"}
//	POST /v1/ingest          {"items":[...]}     → {"handles":[...]}
//	POST /v1/delete          {"handles":[...]}   → {"deleted":[...]}
//	GET  /v1/detect          → the full detection Result (cached)
//	POST /v1/score           {"item":...}        → {"counts","first_radius"}
//	GET  /v1/radii           → {"radii","epoch"} (pairs with score counts)
//	GET  /v1/topk?k=N        → the top-N microclusters (cached detect)
//
// Statuses: 400 malformed body or invalid item, 404 unknown handle space
// is not an error (per-handle booleans instead), 409 mutation on a
// read-only backend, 422 detect over an empty collection, 503 score
// after shutdown began.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mccatch"
	"mccatch/internal/core"
)

// ErrReadOnly is returned by the mutation methods of a Backend serving a
// frozen index; handlers map it to 409.
var ErrReadOnly = errors.New("serve: backend is read-only (serving a frozen index)")

// Backend is the engine behind a Server: the subset of the Detector /
// Incremental surface the handlers need, with each implementation
// supplying its own locking discipline.
type Backend[T any] interface {
	// Detect runs full detection over the current live set, returning
	// the Result together with the epoch it was computed at (read under
	// the same critical section, so the pair is consistent).
	Detect() (*mccatch.Result, uint64, error)
	// Epoch is the live-set mutation counter; equal epochs guarantee
	// identical answers. A read-only backend is permanently at 0.
	Epoch() uint64
	// Radii returns the current radii schedule (nil below two elements).
	Radii() []float64
	// ProbeBatch answers every query's neighbor-count curve in one
	// engine-lock acquisition, sharing one scratch buffer across the
	// batch, and returns the radii schedule the counts pair with (read
	// in the same critical section). An error fails the whole batch.
	ProbeBatch(qs []T) ([][]int, []float64, error)
	// Size is the live element count.
	Size() int
	// Insert and Delete mutate the live set; a read-only backend
	// returns ErrReadOnly.
	Insert(x T) (int64, error)
	Delete(handle int64) (bool, error)
}

// roBackend serves a frozen Detector. Reads need no locking at all: the
// Detector's documented read-concurrency contract makes Detect, Probe
// and Radii safe from any number of goroutines, which is exactly what
// lets the read-only server scale with conns.
type roBackend[T any] struct {
	d *mccatch.Detector[T]
}

// ReadOnly wraps an open Detector as a serving backend. The caller keeps
// ownership: close the Detector only after the server stops.
func ReadOnly[T any](d *mccatch.Detector[T]) Backend[T] { return roBackend[T]{d} }

func (b roBackend[T]) Detect() (*mccatch.Result, uint64, error) {
	res, err := b.d.Detect()
	return res, 0, err
}

func (b roBackend[T]) Epoch() uint64    { return 0 }
func (b roBackend[T]) Radii() []float64 { return b.d.Radii() }
func (b roBackend[T]) Size() int        { return b.d.Size() }

func (b roBackend[T]) ProbeBatch(qs []T) ([][]int, []float64, error) {
	radii := b.d.Radii()
	buf := make([]int, 0, len(radii)*len(qs))
	out := make([][]int, len(qs))
	for i, q := range qs {
		start := len(buf)
		var err error
		if buf, err = b.d.ProbeAppend(q, buf); err != nil {
			return nil, nil, err
		}
		out[i] = buf[start:len(buf):len(buf)]
	}
	return out, radii, nil
}

func (b roBackend[T]) Insert(T) (int64, error)    { return 0, ErrReadOnly }
func (b roBackend[T]) Delete(int64) (bool, error) { return false, ErrReadOnly }

// incBackend serves a mutable Incremental. The Incremental is not safe
// for concurrent use (even its queries mutate lazily built merge state),
// so every method holds the one engine mutex — the coalescer makes that
// affordable by paying the lock once per micro-batch instead of once per
// request.
type incBackend[T any] struct {
	mu  sync.Mutex
	inc *mccatch.Incremental[T]
}

// Mutable wraps an Incremental as a serving backend, serializing all
// access through one internal mutex. The caller must not touch the
// Incremental directly while the server runs.
func Mutable[T any](inc *mccatch.Incremental[T]) Backend[T] {
	return &incBackend[T]{inc: inc}
}

func (b *incBackend[T]) Detect() (*mccatch.Result, uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	res, err := b.inc.Detect()
	return res, b.inc.Epoch(), err
}

func (b *incBackend[T]) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inc.Epoch()
}

func (b *incBackend[T]) Radii() []float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inc.Radii()
}

func (b *incBackend[T]) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inc.Len()
}

func (b *incBackend[T]) ProbeBatch(qs []T) ([][]int, []float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	radii := b.inc.Radii()
	buf := make([]int, 0, len(radii)*len(qs))
	out := make([][]int, len(qs))
	for i, q := range qs {
		start := len(buf)
		var err error
		if buf, err = b.inc.ProbeAppend(q, buf); err != nil {
			return nil, nil, err
		}
		out[i] = buf[start:len(buf):len(buf)]
	}
	return out, radii, nil
}

// compactSegments is the serving layer's compaction policy: once the
// auto-frozen segments of a long-running ingest stream pile past this
// fan-in, every probe pays one merged traversal per segment, so Insert
// compacts them back into one. Probes against one big tree cost about
// half of what ~15 small segments cost (the R-tree's containment
// pruning only pays off with depth), while the occasional O(n) rebuild
// amortizes to well under 1% of the probe budget at one rebuild per
// compactSegments memtable freezes — so the threshold sits low.
const compactSegments = 4

func (b *incBackend[T]) Insert(x T) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, err := b.inc.Insert(x)
	if err == nil && b.inc.Segments() >= compactSegments {
		b.inc.Compact()
	}
	return h, err
}

func (b *incBackend[T]) Delete(handle int64) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inc.Delete(handle), nil
}

// Server is the HTTP serving layer: an http.Handler over one Backend.
type Server[T any] struct {
	b        Backend[T]
	validate func(T) error
	batch    *batcher[T]
	mux      *http.ServeMux

	// Result cache, valid while cachedAt matches the backend epoch.
	// cachedJSON is the encoded /v1/detect reply for the same epoch,
	// filled lazily on the first detect of an epoch: the Result carries
	// a score per live element, so re-marshaling it per request costs
	// milliseconds at modest collection sizes — far more than the cache
	// hit it decorates.
	cacheMu    sync.Mutex
	cached     *mccatch.Result
	cachedAt   uint64
	hasCached  bool
	cachedJSON []byte
}

// Option configures a Server.
type Option[T any] func(*Server[T])

// WithValidator installs a per-item check run before an item is ingested
// or enqueued for scoring (400 on failure). Install one whenever an
// invalid item could otherwise reach the engine: a coalesced batch is
// answered as one traversal, so an invalid query rejected only there
// would fail its whole batch.
func WithValidator[T any](f func(T) error) Option[T] {
	return func(s *Server[T]) { s.validate = f }
}

// WithBatch sets the coalescing window: a score micro-batch flushes at
// maxBatch queries or after the oldest has waited maxWait, whichever
// comes first. maxBatch ≤ 1 or maxWait ≤ 0 disables coalescing (every
// request flushes immediately).
func WithBatch[T any](maxBatch int, maxWait time.Duration) Option[T] {
	return func(s *Server[T]) {
		s.batch = newBatcher(maxBatch, maxWait, s.probeBatch)
	}
}

// New returns a Server over b. Default coalescing window: 16 queries /
// 500µs.
func New[T any](b Backend[T], opts ...Option[T]) *Server[T] {
	s := &Server[T]{b: b}
	s.batch = newBatcher(16, 500*time.Microsecond, s.probeBatch)
	for _, o := range opts {
		o(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	mux.HandleFunc("GET /v1/detect", s.handleDetect)
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("POST /v1/score", s.handleScore)
	mux.HandleFunc("GET /v1/radii", s.handleRadii)
	mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux = mux
	return s
}

func (s *Server[T]) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close begins shutdown: the pending score micro-batch is flushed (every
// accepted query gets its real answer) and later score requests fail
// with 503. Call it after the http.Server has stopped accepting new
// connections (or concurrently — late arrivals just get the 503).
func (s *Server[T]) Close() { s.batch.Close() }

// probeBatch is the batcher's run function: one backend call per batch.
func (s *Server[T]) probeBatch(qs []T) ([][]int, []float64, error) { return s.b.ProbeBatch(qs) }

// detectCached serves the Result for the current epoch, recomputing only
// when a mutation has moved it. Concurrent misses may both recompute
// (idempotent — same epoch, same Result); the cache is never served
// across an epoch boundary because the backend reports the Result's own
// epoch from inside its critical section.
func (s *Server[T]) detectCached() (*mccatch.Result, error) {
	e := s.b.Epoch()
	s.cacheMu.Lock()
	if s.hasCached && s.cachedAt == e {
		res := s.cached
		s.cacheMu.Unlock()
		return res, nil
	}
	s.cacheMu.Unlock()
	res, at, err := s.b.Detect()
	if err != nil {
		return nil, err
	}
	s.cacheMu.Lock()
	s.cached, s.cachedAt, s.hasCached = res, at, true
	s.cachedJSON = nil
	s.cacheMu.Unlock()
	return res, nil
}

// detectJSON returns the encoded /v1/detect reply for the current
// epoch, marshaling at most once per epoch (keyed to the exact Result
// pointer, so the bytes can never describe a different epoch than the
// struct cache).
func (s *Server[T]) detectJSON() ([]byte, error) {
	e := s.b.Epoch()
	s.cacheMu.Lock()
	if s.hasCached && s.cachedAt == e && s.cachedJSON != nil {
		b := s.cachedJSON
		s.cacheMu.Unlock()
		return b, nil
	}
	s.cacheMu.Unlock()
	res, err := s.detectCached()
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	s.cacheMu.Lock()
	if s.hasCached && s.cached == res {
		s.cachedJSON = b
	}
	s.cacheMu.Unlock()
	return b, nil
}

// scoreResponse is the reply of /v1/score, deliberately WITHOUT the
// radii schedule: it is constant per epoch and formatting 15
// full-precision floats per reply costs more than the probe itself.
// Clients fetch the schedule once from /v1/radii. It is marshaled by
// appendJSON rather than encoding/json — this sits in the hot loop of
// every read mix, and on a saturated box the reflective encoder is a
// measurable slice of the per-request budget.
type scoreResponse struct {
	Counts      []int   `json:"counts"`
	FirstRadius float64 `json:"first_radius"`
}

func (r scoreResponse) appendJSON(b []byte) []byte {
	b = append(b, `{"counts":[`...)
	for k, c := range r.Counts {
		if k > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(c), 10)
	}
	b = append(b, `],"first_radius":`...)
	b = strconv.AppendFloat(b, r.FirstRadius, 'g', -1, 64)
	return append(b, '}', '\n')
}

var scoreBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

var bodyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// readBody reads rc to EOF into buf (reusing its capacity) and returns
// the extended slice — io.ReadAll without the fresh allocation per
// request.
func readBody(rc io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rc.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (s *Server[T]) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"n": s.b.Size(), "epoch": s.b.Epoch()})
}

func (s *Server[T]) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "no items")
		return
	}
	// Decode and validate everything before inserting anything, so a 400
	// never leaves a half-ingested batch behind.
	items := make([]T, len(req.Items))
	for i, raw := range req.Items {
		if err := s.decodeItem(raw, &items[i]); err != nil {
			httpError(w, http.StatusBadRequest, "item %d: %v", i, err)
			return
		}
	}
	handles := make([]int64, len(items))
	for i, x := range items {
		h, err := s.b.Insert(x)
		if err != nil {
			httpError(w, statusOf(err), "item %d: %v", i, err)
			return
		}
		handles[i] = h
	}
	writeJSON(w, http.StatusOK, map[string]any{"handles": handles, "epoch": s.b.Epoch()})
}

func (s *Server[T]) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Handles []int64 `json:"handles"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed body: %v", err)
		return
	}
	deleted := make([]bool, len(req.Handles))
	for i, h := range req.Handles {
		ok, err := s.b.Delete(h)
		if err != nil {
			httpError(w, statusOf(err), "handle %d: %v", h, err)
			return
		}
		deleted[i] = ok
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": deleted, "epoch": s.b.Epoch()})
}

func (s *Server[T]) handleDetect(w http.ResponseWriter, r *http.Request) {
	b, err := s.detectJSON()
	if err != nil {
		httpError(w, statusOf(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server[T]) handleScore(w http.ResponseWriter, r *http.Request) {
	// Single-pass decode: the item lands in its final type directly, no
	// RawMessage detour — this path is the hot loop of the read mixes.
	// The body is read through a pooled buffer into json.Unmarshal
	// (which pools its decoder state) instead of a per-request
	// json.NewDecoder, whose decoder + refill buffer were the largest
	// handler-owned allocations on the profile.
	var req struct {
		Item *T `json:"item"`
	}
	bp := bodyBufPool.Get().(*[]byte)
	body, err := readBody(r.Body, (*bp)[:0])
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	*bp = body
	bodyBufPool.Put(bp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "malformed body or item: %v", err)
		return
	}
	if req.Item == nil {
		httpError(w, http.StatusBadRequest, "missing item")
		return
	}
	q := *req.Item
	if s.validate != nil {
		if err := s.validate(q); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	counts, radii, err := s.batch.Score(q)
	if err != nil {
		httpError(w, statusOf(err), "%v", err)
		return
	}
	// FirstRadius is the smallest scheduled radius at which the query
	// has any live neighbor (itself included when it is in the live
	// set); -1 when no radius reaches one.
	resp := scoreResponse{Counts: counts, FirstRadius: -1}
	for k, c := range counts {
		if c > 0 && k < len(radii) {
			resp.FirstRadius = radii[k]
			break
		}
	}
	buf := scoreBufPool.Get().(*[]byte)
	b := resp.appendJSON((*buf)[:0])
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	*buf = b
	scoreBufPool.Put(buf)
}

// handleRadii reports the current radii schedule with its epoch, so a
// client can interpret /v1/score count curves (counts[k] pairs with
// radii[k]) without every score reply re-shipping the schedule.
func (s *Server[T]) handleRadii(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"radii": s.b.Radii(), "epoch": s.b.Epoch(),
	})
}

func (s *Server[T]) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = n
	}
	res, err := s.detectCached()
	if err != nil {
		httpError(w, statusOf(err), "%v", err)
		return
	}
	mcs := res.Microclusters
	if k < len(mcs) {
		mcs = mcs[:k]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":             len(res.PointScores),
		"cutoff":        res.Cutoff,
		"microclusters": mcs,
	})
}

// decodeItem unmarshals one item and runs the installed validator.
func (s *Server[T]) decodeItem(raw json.RawMessage, dst *T) error {
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("malformed item: %w", err)
	}
	if s.validate != nil {
		return s.validate(*dst)
	}
	return nil
}

// statusOf maps engine errors to HTTP statuses: read-only mutation 409,
// empty-collection detect 422, shutdown 503, anything else 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrReadOnly):
		return http.StatusConflict
	case errors.Is(err, core.ErrEmptyDataset):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
