package serve

import (
	"errors"
	"sync"
	"time"
)

// errClosed is what Score returns for requests that arrive after Close;
// the handler maps it to 503 so load balancers retry elsewhere.
var errClosed = errors.New("serve: server is shutting down")

// batchResult is one waiter's share of a flushed batch: its counts plus
// the radii schedule they were answered under (shared across the batch,
// read inside the same engine critical section as the counts).
type batchResult struct {
	counts []int
	radii  []float64
	err    error
}

// waiter is one enqueued score-point request: its query and the channel
// its batch's flusher resolves it on (buffered, so flushing never blocks
// on a slow reader).
type waiter[T any] struct {
	q    T
	done chan batchResult
}

// batcher coalesces concurrent score-point requests into bounded-wait
// micro-batches: a batch flushes the moment it reaches maxBatch queries
// (on the arriving handler's goroutine — no handoff latency) or when the
// oldest query has waited maxWait, whichever comes first. Each flush
// answers the whole batch through ONE run call — one engine-lock
// acquisition and one shared scratch buffer for the entire batch — which
// is what turns N concurrent single-point queries into the batched
// zero-alloc multi-count path the indexes are fast at.
type batcher[T any] struct {
	run      func(qs []T) ([][]int, []float64, error)
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending []waiter[T]
	timer   *time.Timer
	closed  bool
	// spare and qsSpare recycle the previous batch's slices (handed back
	// by flush) so a steady request stream stops allocating per batch.
	spare   []waiter[T]
	qsSpare []T
}

// donePool recycles waiter channels: each gets exactly one send and one
// receive per use, so a received-from channel is safe to reuse.
var donePool = sync.Pool{New: func() any { return make(chan batchResult, 1) }}

func newBatcher[T any](maxBatch int, maxWait time.Duration, run func([]T) ([][]int, []float64, error)) *batcher[T] {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &batcher[T]{run: run, maxBatch: maxBatch, maxWait: maxWait}
}

// Score enqueues one query and blocks until its micro-batch resolves,
// returning the counts (owned by the caller) and the radii schedule they
// were answered under (shared, read-only).
func (b *batcher[T]) Score(q T) ([]int, []float64, error) {
	done := donePool.Get().(chan batchResult)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		donePool.Put(done)
		return nil, nil, errClosed
	}
	if b.pending == nil && b.spare != nil {
		b.pending, b.spare = b.spare[:0], nil
	}
	b.pending = append(b.pending, waiter[T]{q: q, done: done})
	if len(b.pending) >= b.maxBatch || b.maxWait <= 0 {
		batch := b.take()
		b.mu.Unlock()
		b.flush(batch)
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.maxWait, b.timedFlush)
		}
		b.mu.Unlock()
	}
	r := <-done
	donePool.Put(done)
	return r.counts, r.radii, r.err
}

// take detaches the pending batch and disarms its deadline; callers hold
// b.mu.
func (b *batcher[T]) take() []waiter[T] {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// timedFlush is the maxWait deadline: whatever is pending ships now.
func (b *batcher[T]) timedFlush() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	b.flush(batch)
}

// flush answers one detached batch with a single run call and resolves
// every waiter. A run error fails the whole batch — per-query conditions
// (wrong dimensionality etc.) are the validator's job before enqueueing.
func (b *batcher[T]) flush(batch []waiter[T]) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	qs := b.qsSpare[:0]
	b.qsSpare = nil
	b.mu.Unlock()
	for _, w := range batch {
		qs = append(qs, w.q)
	}
	counts, radii, err := b.run(qs)
	for i, w := range batch {
		if err != nil {
			w.done <- batchResult{err: err}
			continue
		}
		w.done <- batchResult{counts: counts[i], radii: radii}
	}
	// Hand the slices back for the next batch, dropping the query and
	// channel references they still hold.
	clear(batch)
	clear(qs)
	b.mu.Lock()
	if b.spare == nil {
		b.spare = batch[:0]
	}
	if b.qsSpare == nil {
		b.qsSpare = qs[:0]
	}
	b.mu.Unlock()
}

// Close flushes the pending batch and fails all later Score calls with
// errClosed: every request that made it into the queue gets a real
// answer, so a graceful shutdown never drops an accepted query.
func (b *batcher[T]) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	b.flush(batch)
}
