package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mccatch"
)

// BenchmarkScoreHTTP measures the full serving stack for /v1/score —
// real HTTP over a loopback listener, JSON decode, batcher, backend
// probe, hand-rolled encode — which is the hot loop every read mix in
// cmd/loadgen saturates. Run with -cpuprofile to see where the
// per-request budget actually goes; the engine probe itself is a few
// microseconds, so almost everything here is transport and codec.
func BenchmarkScoreHTTP(b *testing.B) {
	inc, err := mccatch.NewIncrementalVectors(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range testPoints(500, 7) {
		if _, err := inc.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	s := New[[]float64](Mutable(inc), WithValidator(vecValidator(2)), WithBatch[[]float64](1, 0))
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := []byte(`{"item":[3.5,4.25]}`)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{Timeout: 10 * time.Second}
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}

// BenchmarkScoreHandler measures the handler in isolation (no sockets):
// decode + batcher + probe + encode via httptest.ResponseRecorder. The
// gap between this and BenchmarkScoreHTTP is pure HTTP transport.
func BenchmarkScoreHandler(b *testing.B) {
	inc, err := mccatch.NewIncrementalVectors(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range testPoints(500, 7) {
		if _, err := inc.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	s := New[[]float64](Mutable(inc), WithValidator(vecValidator(2)), WithBatch[[]float64](1, 0))
	defer s.Close()

	body := []byte(`{"item":[3.5,4.25]}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/score", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkScoreHandlerDirty is BenchmarkScoreHandler with an insert
// every 10th iteration — the read90 shape — so the per-epoch radii
// recompute (an O(n) diameter sweep) shows up the way it does under the
// real mix instead of being amortized away by a clean cache.
func BenchmarkScoreHandlerDirty(b *testing.B) {
	inc, err := mccatch.NewIncrementalVectors(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range testPoints(500, 7) {
		if _, err := inc.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	s := New[[]float64](Mutable(inc), WithValidator(vecValidator(2)), WithBatch[[]float64](1, 0))
	defer s.Close()

	body := []byte(`{"item":[3.5,4.25]}`)
	ing := []byte(`{"items":[[3.0,4.0]]}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path, payload := "/v1/score", body
		if i%10 == 9 {
			path, payload = "/v1/ingest", ing
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s status %d: %s", path, rec.Code, rec.Body)
		}
	}
}
