package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mccatch"
)

func testPoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 30, rng.Float64() * 30}
		if i%17 == 0 {
			pts[i][0] += 400 // far outliers so Detect finds microclusters
		}
	}
	return pts
}

func vecValidator(dim int) func([]float64) error {
	return func(p []float64) error {
		if len(p) != dim {
			return fmt.Errorf("point has dimension %d, want %d", len(p), dim)
		}
		return nil
	}
}

// do runs one request through the handler and decodes the JSON reply.
func do(t *testing.T, h http.Handler, method, path, body string) (int, map[string]json.RawMessage) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("%s %s: non-JSON reply %q", method, path, rec.Body.String())
	}
	return rec.Code, m
}

func scoreBody(p []float64) string {
	b, _ := json.Marshal(map[string]any{"item": p})
	return string(b)
}

// TestCoalescedMatchesSerial is the acceptance criterion's equivalence
// check: for every micro-batch size, concurrent coalesced score-point
// requests return counts deep-equal to per-request serial Probe results
// — on both the lock-free read-only backend and the mutex-serialized
// incremental backend.
func TestCoalescedMatchesSerial(t *testing.T) {
	pts := testPoints(120, 3)
	d, err := mccatch.BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	inc, err := mccatch.NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetMemtableCap(32)
	for _, p := range pts {
		if _, err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	const requests = 24
	want := make([][]int, requests)
	for i := range want {
		if want[i], err = d.Probe(pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	for name, backend := range map[string]Backend[[]float64]{
		"readonly": ReadOnly(d), "incremental": Mutable(inc),
	} {
		for _, maxBatch := range []int{1, 2, 3, 4, 8, 32} {
			t.Run(fmt.Sprintf("%s/batch=%d", name, maxBatch), func(t *testing.T) {
				s := New(backend,
					WithBatch[[]float64](maxBatch, 20*time.Millisecond),
					WithValidator(vecValidator(2)))
				defer s.Close()
				var wg sync.WaitGroup
				errs := make(chan error, requests)
				for i := 0; i < requests; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						code, m := doQuiet(s, "POST", "/v1/score", scoreBody(pts[i]))
						if code != http.StatusOK {
							errs <- fmt.Errorf("request %d: status %d (%s)", i, code, m["error"])
							return
						}
						var counts []int
						if err := json.Unmarshal(m["counts"], &counts); err != nil {
							errs <- err
							return
						}
						if !reflect.DeepEqual(counts, want[i]) {
							errs <- fmt.Errorf("request %d: counts %v, want %v", i, counts, want[i])
						}
					}(i)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			})
		}
	}
}

// doQuiet is do without a testing.T (for use inside goroutines).
func doQuiet(h http.Handler, method, path, body string) (int, map[string]json.RawMessage) {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var m map[string]json.RawMessage
	_ = json.Unmarshal(rec.Body.Bytes(), &m)
	return rec.Code, m
}

// TestServeErrorPaths covers the satellite checklist: malformed bodies,
// detect on an empty collection, wrong dimensionality, mutations against
// a read-only backend.
func TestServeErrorPaths(t *testing.T) {
	pts := testPoints(40, 9)
	d, err := mccatch.BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ro := New(ReadOnly(d), WithValidator(vecValidator(2)))
	defer ro.Close()

	empty, err := mccatch.NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	es := New(Mutable(empty), WithValidator(vecValidator(2)))
	defer es.Close()

	cases := []struct {
		name    string
		h       http.Handler
		method  string
		path    string
		body    string
		status  int
		errPart string
	}{
		{"malformed score", ro, "POST", "/v1/score", "{not json", http.StatusBadRequest, "malformed body"},
		{"score missing item", ro, "POST", "/v1/score", "{}", http.StatusBadRequest, "missing item"},
		{"score non-vector item", ro, "POST", "/v1/score", `{"item":"abc"}`, http.StatusBadRequest, "item"},
		{"score wrong dim", ro, "POST", "/v1/score", `{"item":[1,2,3]}`, http.StatusBadRequest, "dimension 3"},
		{"malformed ingest", ro, "POST", "/v1/ingest", "[", http.StatusBadRequest, "malformed body"},
		{"ingest no items", ro, "POST", "/v1/ingest", "{}", http.StatusBadRequest, "no items"},
		{"ingest read-only", ro, "POST", "/v1/ingest", `{"items":[[1,2]]}`, http.StatusConflict, "read-only"},
		{"delete read-only", ro, "POST", "/v1/delete", `{"handles":[0]}`, http.StatusConflict, "read-only"},
		{"malformed delete", ro, "POST", "/v1/delete", "nope", http.StatusBadRequest, "malformed body"},
		{"ingest wrong dim", es, "POST", "/v1/ingest", `{"items":[[1,2],[1]]}`, http.StatusBadRequest, "item 1"},
		{"detect empty", es, "GET", "/v1/detect", "", http.StatusUnprocessableEntity, "empty"},
		{"topk empty", es, "GET", "/v1/topk", "", http.StatusUnprocessableEntity, "empty"},
		{"topk bad k", ro, "GET", "/v1/topk?k=zero", "", http.StatusBadRequest, "bad k"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, m := do(t, tc.h, tc.method, tc.path, tc.body)
			if code != tc.status {
				t.Fatalf("status %d, want %d (%s)", code, tc.status, m["error"])
			}
			if tc.errPart != "" && !strings.Contains(string(m["error"]), tc.errPart) {
				t.Errorf("error %s does not mention %q", m["error"], tc.errPart)
			}
		})
	}

	// A wrong-dim ingest must not half-ingest: item 0 was valid but the
	// batch had an invalid item, so nothing may have landed.
	if n := empty.Len(); n != 0 {
		t.Errorf("failed ingest left %d items behind", n)
	}
}

// TestShutdownWithInFlightBatches pins graceful shutdown: queries already
// accepted into a pending micro-batch get their real answers when Close
// flushes it, and later queries get 503.
func TestShutdownWithInFlightBatches(t *testing.T) {
	pts := testPoints(60, 5)
	d, err := mccatch.BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// maxBatch larger than the request count and a very long wait: the
	// batch can only resolve through Close's flush.
	s := New(ReadOnly(d), WithBatch[[]float64](64, time.Hour), WithValidator(vecValidator(2)))

	const inFlight = 6
	want := make([][]int, inFlight)
	for i := range want {
		if want[i], err = d.Probe(pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, m := doQuiet(s, "POST", "/v1/score", scoreBody(pts[i]))
			if code != http.StatusOK {
				errs <- fmt.Errorf("in-flight request %d: status %d (%s)", i, code, m["error"])
				return
			}
			var counts []int
			if err := json.Unmarshal(m["counts"], &counts); err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(counts, want[i]) {
				errs <- fmt.Errorf("in-flight request %d: counts %v, want %v", i, counts, want[i])
			}
		}(i)
	}
	// Wait until all requests are actually enqueued in the pending batch,
	// then shut down underneath them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.batch.mu.Lock()
		n := len(s.batch.pending)
		s.batch.mu.Unlock()
		if n == inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests enqueued", n, inFlight)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if code, _ := do(t, s, "POST", "/v1/score", scoreBody(pts[0])); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown score: status %d, want 503", code)
	}
}

// TestDetectCacheInvalidation pins the epoch-keyed Result cache: repeat
// detects serve the same cached Result, any mutation through the
// incremental layer invalidates it, and the recomputed Result matches a
// fresh detection over the new live set.
func TestDetectCacheInvalidation(t *testing.T) {
	pts := testPoints(50, 11)
	inc, err := mccatch.NewIncrementalVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	var handles []int64
	for _, p := range pts {
		h, err := inc.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	s := New(Mutable(inc), WithValidator(vecValidator(2)))
	defer s.Close()

	r1, err := s.detectCached()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.detectCached()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second detect at the same epoch recomputed instead of serving the cache")
	}
	// Ingest → epoch moves → cache miss, and the answer reflects the new point.
	if code, m := do(t, s, "POST", "/v1/ingest", `{"items":[[500,500]]}`); code != http.StatusOK {
		t.Fatalf("ingest: status %d (%s)", code, m["error"])
	}
	r3, err := s.detectCached()
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r2 {
		t.Fatal("detect after ingest served the stale cache")
	}
	if len(r3.PointScores) != len(pts)+1 {
		t.Fatalf("recomputed result covers %d points, want %d", len(r3.PointScores), len(pts)+1)
	}
	// Delete → another epoch move → another recompute.
	body, _ := json.Marshal(map[string]any{"handles": []int64{handles[0], 99999}})
	code, m := do(t, s, "POST", "/v1/delete", string(body))
	if code != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", code, m["error"])
	}
	var deleted []bool
	if err := json.Unmarshal(m["deleted"], &deleted); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deleted, []bool{true, false}) {
		t.Fatalf("deleted = %v, want [true false]", deleted)
	}
	r4, err := s.detectCached()
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r3 || len(r4.PointScores) != len(pts) {
		t.Fatalf("detect after delete did not recompute over the shrunk live set")
	}
	// The encoded reply is cached per epoch too: same bytes (same backing
	// array, marshaled once) while the epoch holds, fresh valid JSON
	// after it moves.
	j1, err := s.detectJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.detectJSON()
	if err != nil {
		t.Fatal(err)
	}
	if &j1[0] != &j2[0] {
		t.Fatal("second detectJSON at the same epoch re-marshaled instead of serving the cached bytes")
	}
	var decoded mccatch.Result
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("cached detect reply is not valid JSON: %v", err)
	}
	if len(decoded.PointScores) != len(r4.PointScores) {
		t.Fatalf("encoded reply covers %d points, want %d", len(decoded.PointScores), len(r4.PointScores))
	}
	if code, m := do(t, s, "POST", "/v1/ingest", `{"items":[[7,7]]}`); code != http.StatusOK {
		t.Fatalf("ingest: status %d (%s)", code, m["error"])
	}
	j3, err := s.detectJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(j3, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.PointScores) != len(pts)+1 {
		t.Fatalf("post-ingest encoded reply covers %d points, want %d", len(decoded.PointScores), len(pts)+1)
	}
}

// TestEndpointsRoundTrip exercises the happy paths end to end over a real
// HTTP connection: health, detect, topk, score on a read-only index.
func TestEndpointsRoundTrip(t *testing.T) {
	pts := testPoints(80, 13)
	d, err := mccatch.BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := New(ReadOnly(d), WithValidator(vecValidator(2)))
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, map[string]json.RawMessage) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	code, m := get("/healthz")
	if code != http.StatusOK || string(m["n"]) != "80" {
		t.Fatalf("healthz: %d %v", code, m)
	}
	if code, m = get("/v1/detect"); code != http.StatusOK {
		t.Fatalf("detect: %d (%s)", code, m["error"])
	}
	want, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if code, m = get("/v1/topk?k=2"); code != http.StatusOK {
		t.Fatalf("topk: %d (%s)", code, m["error"])
	}
	var mcs []mccatch.Microcluster
	if err := json.Unmarshal(m["microclusters"], &mcs); err != nil {
		t.Fatal(err)
	}
	wantK := 2
	if len(want.Microclusters) < wantK {
		wantK = len(want.Microclusters)
	}
	if len(mcs) != wantK {
		t.Fatalf("topk returned %d microclusters, want %d", len(mcs), wantK)
	}
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(scoreBody(pts[0])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score over HTTP: status %d", resp.StatusCode)
	}
}

// TestBatcherTimedFlush pins the bounded-wait half of the coalescer: a
// lone query short of maxBatch still resolves after maxWait.
func TestBatcherTimedFlush(t *testing.T) {
	runs := 0
	b := newBatcher(1000, 5*time.Millisecond, func(qs []int) ([][]int, []float64, error) {
		runs++
		out := make([][]int, len(qs))
		for i, q := range qs {
			out[i] = []int{q * 2}
		}
		return out, []float64{1}, nil
	})
	defer b.Close()
	startAt := time.Now()
	counts, radii, err := b.Score(21)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts, []int{42}) || !reflect.DeepEqual(radii, []float64{1}) {
		t.Fatalf("counts = %v, radii = %v", counts, radii)
	}
	if waited := time.Since(startAt); waited > 3*time.Second {
		t.Fatalf("timed flush took %v", waited)
	}
	if runs != 1 {
		t.Fatalf("run called %d times, want 1", runs)
	}
}
