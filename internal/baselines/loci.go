package baselines

import (
	"fmt"
	"math"

	"mccatch/internal/kdtree"
)

// LOCI is the Local Correlation Integral detector of Papadimitriou et al.
// (ICDE 2003). For each point and a sweep of radii r, the multi-
// granularity deviation factor MDEF(p, r, α) compares the point's
// α·r-neighborhood count against the average count over its r-neighbors;
// the score is the maximum of MDEF/σ_MDEF over the sweep. Quadratic in n.
type LOCI struct {
	RMaxFrac float64 // sweep upper bound as a fraction of the diameter (Tab. II's r)
	NMin     int     // minimum neighbors for a radius to be considered (default 20)
	Alpha    float64 // sampling/counting radius ratio (default 0.5)
}

// Name implements Detector.
func (d LOCI) Name() string { return fmt.Sprintf("LOCI(r=l*%.2f)", d.RMaxFrac) }

// Score implements Detector.
func (d LOCI) Score(points [][]float64) []float64 {
	nmin := d.NMin
	if nmin <= 0 {
		nmin = 20
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 0.5
	}
	t := kdtree.New(points)
	rmax := t.DiameterEstimate() * d.RMaxFrac
	if rmax <= 0 {
		return make([]float64, len(points))
	}
	// Geometric radius sweep (10 levels) up to rmax.
	const levels = 10
	radii := make([]float64, levels)
	for e := 0; e < levels; e++ {
		radii[e] = rmax / math.Pow(2, float64(levels-1-e))
	}
	out := make([]float64, len(points))
	for i, p := range points {
		best := 0.0
		for _, r := range radii {
			nb := t.RangeQuery(p, r)
			if len(nb) < nmin {
				continue
			}
			// Counts at radius α·r for the point and for each r-neighbor.
			nPA := float64(t.RangeCount(p, alpha*r))
			counts := make([]float64, len(nb))
			for j, q := range nb {
				counts[j] = float64(t.RangeCount(points[q], alpha*r))
			}
			avg := meanOf(counts)
			if avg == 0 {
				continue
			}
			mdef := 1 - nPA/avg
			sigma := stddevOf(counts) / avg
			if sigma == 0 {
				continue
			}
			if v := mdef / sigma; v > best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// ALOCI is the approximate, grid-based LOCI variant: counts come from a
// hierarchy of grid cells (a quadtree generalization via coordinate
// hashing) instead of exact range queries, trading accuracy for near-
// linear time. Levels is the number of grid resolutions (Tab. II's g).
type ALOCI struct {
	Levels int
	NMin   int
}

// Name implements Detector.
func (d ALOCI) Name() string { return fmt.Sprintf("ALOCI(g=%d)", d.Levels) }

// Score implements Detector.
func (d ALOCI) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	levels := d.Levels
	if levels <= 0 {
		levels = 10
	}
	nmin := d.NMin
	if nmin <= 0 {
		nmin = 20
	}
	dim := len(points[0])
	// Normalize to the unit box so cells are comparable.
	lo := append([]float64(nil), points[0]...)
	hi := append([]float64(nil), points[0]...)
	for _, p := range points {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	span := make([]float64, dim)
	for j := range span {
		span[j] = hi[j] - lo[j]
		if span[j] == 0 {
			span[j] = 1
		}
	}
	// Cell key of a point at a level: the concatenated integer coordinates.
	cellOf := func(p []float64, level int) string {
		cells := 1 << level
		key := make([]byte, 0, dim*3)
		for j, v := range p {
			c := int(((v - lo[j]) / span[j]) * float64(cells))
			if c >= cells {
				c = cells - 1
			}
			key = append(key, byte(c), byte(c>>8), byte(j))
		}
		return string(key)
	}
	// Per-level cell histograms.
	counts := make([]map[string]int, levels)
	for l := 0; l < levels; l++ {
		counts[l] = make(map[string]int, n)
		for _, p := range points {
			counts[l][cellOf(p, l)]++
		}
	}
	// MDEF between consecutive levels: the child cell count versus the
	// average child count within the parent cell (approximated by the
	// parent count divided by the number of occupied children ≈ 2^dim).
	for i, p := range points {
		best := 0.0
		for l := 1; l < levels; l++ {
			child := float64(counts[l][cellOf(p, l)])
			parent := float64(counts[l-1][cellOf(p, l-1)])
			if parent < float64(nmin) {
				continue
			}
			expect := parent / math.Min(math.Pow(2, float64(dim)), parent)
			if expect <= 0 {
				continue
			}
			mdef := 1 - child/expect
			if mdef > best {
				best = mdef
			}
		}
		out[i] = best
	}
	return out
}
