package baselines

import (
	"fmt"
	"math"
	"math/rand"
)

// IForest is the Isolation Forest of Liu, Ting & Zhou (TKDD 2012): an
// ensemble of random isolation trees grown on subsamples of size Psi; the
// score of a point is 2^(-E[pathLen]/c(Psi)), where c is the average
// unsuccessful-search path length of a BST. Randomized: results depend on
// Seed; the harness averages runs like the paper does.
type IForest struct {
	Trees int // t in Tab. II
	Psi   int // subsample size ψ
	Seed  int64
}

// Name implements Detector.
func (d IForest) Name() string { return fmt.Sprintf("iForest(t=%d,psi=%d)", d.Trees, d.Psi) }

type itNode struct {
	attr        int
	split       float64
	size        int // leaf size (external node)
	left, right *itNode
}

// Score implements Detector.
func (d IForest) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	trees := d.Trees
	if trees <= 0 {
		trees = 100
	}
	psi := d.Psi
	if psi <= 1 || psi > n {
		psi = min(256, n)
	}
	if psi < 2 {
		// One-point (sub)samples cannot isolate anything: neutral scores.
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	rng := rand.New(rand.NewSource(d.Seed))
	maxDepth := int(math.Ceil(math.Log2(float64(psi))))
	forest := make([]*itNode, trees)
	for t := range forest {
		idx := rng.Perm(n)[:psi]
		forest[t] = buildITree(points, idx, 0, maxDepth, rng)
	}
	cn := avgPathLen(psi)
	for i, p := range points {
		sum := 0.0
		for _, tree := range forest {
			sum += pathLen(tree, p, 0)
		}
		e := sum / float64(trees)
		out[i] = math.Pow(2, -e/cn)
	}
	return out
}

func buildITree(points [][]float64, idx []int, depth, maxDepth int, rng *rand.Rand) *itNode {
	if len(idx) <= 1 || depth >= maxDepth {
		return &itNode{size: len(idx)}
	}
	dim := len(points[0])
	// Pick an attribute with spread; give up after dim tries.
	for try := 0; try < dim; try++ {
		attr := rng.Intn(dim)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := points[i][attr]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		split := lo + rng.Float64()*(hi-lo)
		var l, r []int
		for _, i := range idx {
			if points[i][attr] < split {
				l = append(l, i)
			} else {
				r = append(r, i)
			}
		}
		if len(l) == 0 || len(r) == 0 {
			continue
		}
		return &itNode{
			attr:  attr,
			split: split,
			left:  buildITree(points, l, depth+1, maxDepth, rng),
			right: buildITree(points, r, depth+1, maxDepth, rng),
		}
	}
	return &itNode{size: len(idx)}
}

func pathLen(n *itNode, p []float64, depth int) float64 {
	if n.left == nil {
		return float64(depth) + avgPathLen(n.size)
	}
	if p[n.attr] < n.split {
		return pathLen(n.left, p, depth+1)
	}
	return pathLen(n.right, p, depth+1)
}

// avgPathLen is c(n): the average path length of an unsuccessful BST
// search over n items, the normalizer of the iForest score.
func avgPathLen(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649 // harmonic number approx
	return 2*h - 2*float64(n-1)/float64(n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
