package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mccatch/internal/kdtree"
)

// DBSCAN (Ester et al., KDD 1996) flags as outliers the noise points of a
// density-based clustering: points that are neither core points nor
// density-reachable from one. Scores are binary (1 = noise), reflecting
// Tab. I: the clustering methods detect outliers only as a byproduct and
// do not rank them.
type DBSCAN struct {
	EpsFrac float64 // ε as a fraction of the diameter
	MinPts  int
}

// Name implements Detector.
func (d DBSCAN) Name() string { return fmt.Sprintf("DBSCAN(eps=l*%.3f)", d.EpsFrac) }

// Score implements Detector.
func (d DBSCAN) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	minPts := d.MinPts
	if minPts <= 0 {
		minPts = 5
	}
	t := kdtree.New(points)
	eps := t.DiameterEstimate() * d.EpsFrac
	const (
		unvisited = 0
		noise     = -1
	)
	label := make([]int, n)
	cluster := 0
	for i := range points {
		if label[i] != unvisited {
			continue
		}
		nb := t.RangeQuery(points[i], eps)
		if len(nb) < minPts {
			label[i] = noise
			continue
		}
		cluster++
		label[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if label[q] == noise {
				label[q] = cluster // border point
			}
			if label[q] != unvisited {
				continue
			}
			label[q] = cluster
			qnb := t.RangeQuery(points[q], eps)
			if len(qnb) >= minPts {
				queue = append(queue, qnb...)
			}
		}
	}
	for i, l := range label {
		if l == noise {
			out[i] = 1
		}
	}
	return out
}

// OPTICS (Ankerst et al., SIGMOD 1999) orders points by density
// reachability; here each point's score is its final reachability
// distance, so sparse-region points rank high.
type OPTICS struct {
	MinPts int
}

// Name implements Detector.
func (d OPTICS) Name() string { return fmt.Sprintf("OPTICS(minPts=%d)", d.MinPts) }

// Score implements Detector.
func (d OPTICS) Score(points [][]float64) []float64 {
	n := len(points)
	minPts := clampK(d.MinPts, n)
	if minPts < 2 {
		minPts = clampK(2, n)
	}
	_, dists := knnSelf(points, minPts)
	coreDist := make([]float64, n)
	for i := range points {
		if len(dists[i]) > 0 {
			coreDist[i] = dists[i][len(dists[i])-1]
		}
	}
	// Prim-style expansion: reachability = min over processed neighbors of
	// max(coreDist(o), d(o,p)). A full OPTICS uses an ε cutoff; with ε = ∞
	// this is exactly the minimum spanning forest of reach distances.
	reach := make([]float64, n)
	processed := make([]bool, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}
	for seed := 0; seed < n; seed++ {
		if processed[seed] {
			continue
		}
		cur := seed
		for cur >= 0 {
			processed[cur] = true
			for j := range points {
				if processed[j] {
					continue
				}
				rd := euclid(points[cur], points[j])
				if coreDist[cur] > rd {
					rd = coreDist[cur]
				}
				if rd < reach[j] {
					reach[j] = rd
				}
			}
			// Next: unprocessed point with smallest reachability.
			next, best := -1, math.Inf(1)
			for j := range points {
				if !processed[j] && reach[j] < best {
					next, best = j, reach[j]
				}
			}
			cur = next
		}
	}
	for i := range reach {
		if math.IsInf(reach[i], 1) {
			reach[i] = coreDist[i]
		}
	}
	return reach
}

// KMeansMM is k-means-- (Chawla & Gionis, SDM 2013): k-means that sets
// aside the L points farthest from their centroids at every iteration,
// jointly clustering and detecting outliers. The score is the final
// distance to the nearest centroid.
type KMeansMM struct {
	K    int
	L    int // outlier budget; 0 → 5% of n
	Seed int64
}

// Name implements Detector.
func (d KMeansMM) Name() string { return fmt.Sprintf("KMeans--(k=%d)", d.K) }

// Score implements Detector.
func (d KMeansMM) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k := d.K
	if k <= 0 {
		k = 8
	}
	if k > n {
		k = n
	}
	l := d.L
	if l <= 0 {
		l = n / 20
	}
	rng := rand.New(rand.NewSource(d.Seed))
	dim := len(points[0])
	centroids := make([][]float64, k)
	for c, i := range rng.Perm(n)[:k] {
		centroids[c] = append([]float64(nil), points[i]...)
	}
	dist := make([]float64, n)
	assign := make([]int, n)
	for iter := 0; iter < 25; iter++ {
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ct := range centroids {
				if dd := euclid(p, ct); dd < bestD {
					best, bestD = c, dd
				}
			}
			assign[i], dist[i] = best, bestD
		}
		// Exclude the L farthest points from the update.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return dist[order[a]] > dist[order[b]] })
		excluded := make([]bool, n)
		for _, i := range order[:minInt(l, n)] {
			excluded[i] = true
		}
		sums := make([][]float64, k)
		cnts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			if excluded[i] {
				continue
			}
			c := assign[i]
			cnts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if cnts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(cnts[c])
			}
		}
	}
	copy(out, dist)
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
