package baselines

import (
	"testing"

	"mccatch/internal/eval"
)

func TestExtraDetectorsOnSingletonOutliers(t *testing.T) {
	pts, labels := singletonScene(21)
	for _, d := range []Detector{
		GLOSH{MinPts: 5},
		SCiForest{Trees: 64, Psi: 128, Seed: 1},
		DeepSVDD{},
		Sparkx{Chains: 20, Depth: 8, Seed: 2},
	} {
		checkAUROC(t, d, pts, labels, 0.9)
	}
	// PLDOF prunes before scoring; its ranking is coarser.
	checkAUROC(t, PLDOF{K: 4, KNN: 10, Seed: 3}, pts, labels, 0.8)
}

func TestSCiForestCatchesClusteredAnomalies(t *testing.T) {
	// The SCiForest paper's claim: hyperplane splits with sd-gain selection
	// isolate clustered anomalies.
	pts, labels := scene(22)
	checkAUROC(t, SCiForest{Trees: 64, Psi: 256, Seed: 4}, pts, labels, 0.9)
}

func TestGLOSHScoresLatecomersHigh(t *testing.T) {
	// A tight cluster plus one straggler: the straggler attaches at a much
	// larger ε, so its GLOSH score must dominate.
	var pts [][]float64
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{float64(i%7) * 0.1, float64(i/7) * 0.1})
	}
	pts = append(pts, []float64{50, 50})
	scores := GLOSH{MinPts: 4}.Score(pts)
	last := len(pts) - 1
	for i := 0; i < last; i++ {
		if scores[i] >= scores[last] {
			t.Fatalf("inlier %d score %v ≥ straggler score %v", i, scores[i], scores[last])
		}
	}
}

func TestExtraDetectorsDegenerateInput(t *testing.T) {
	tiny := [][]float64{{1, 2}}
	dup := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	for _, d := range []Detector{
		GLOSH{MinPts: 3}, SCiForest{Trees: 4, Seed: 1}, PLDOF{K: 2, KNN: 3, Seed: 1},
		DeepSVDD{}, Sparkx{Seed: 1},
	} {
		for _, pts := range [][][]float64{tiny, dup, nil} {
			scores := d.Score(pts)
			if len(scores) != len(pts) {
				t.Errorf("%s: %d scores for %d points", d.Name(), len(scores), len(pts))
			}
			for _, s := range scores {
				if s != s {
					t.Errorf("%s: NaN on degenerate input", d.Name())
				}
			}
		}
	}
}

func TestDeepSVDDCenterConvergence(t *testing.T) {
	// Symmetric data: the MEB center approaches the centroid, and boundary
	// points score higher than central ones.
	pts := [][]float64{{-1, 0}, {1, 0}, {0, -1}, {0, 1}, {0, 0}}
	scores := DeepSVDD{Iters: 500}.Score(pts)
	for i := 0; i < 4; i++ {
		if scores[i] <= scores[4] {
			t.Errorf("boundary point %d score %v ≤ center score %v", i, scores[i], scores[4])
		}
	}
}

func TestPLDOFCandidatesOutrankPruned(t *testing.T) {
	pts, labels := singletonScene(23)
	scores := PLDOF{K: 4, KNN: 10, Seed: 5}.Score(pts)
	// Every planted outlier must be among candidates (score ≥ 1).
	for i, l := range labels {
		if l && scores[i] < 1 {
			t.Errorf("planted outlier %d pruned (score %v)", i, scores[i])
		}
	}
	if auroc := eval.AUROC(scores, labels); auroc < 0.8 {
		t.Errorf("PLDOF AUROC = %.3f", auroc)
	}
}
