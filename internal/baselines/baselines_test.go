package baselines

import (
	"math/rand"
	"testing"

	"mccatch/internal/eval"
)

// scene builds a simple labeled dataset: two Gaussian blobs of inliers plus
// planted far-away outliers (2 singletons and one tight 5-point mc).
func scene(seed int64) (pts [][]float64, labels []bool) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 300; i++ {
		pts = append(pts, []float64{10 + rng.NormFloat64(), 10 + rng.NormFloat64()})
		labels = append(labels, false)
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, []float64{30 + rng.NormFloat64(), 30 + rng.NormFloat64()})
		labels = append(labels, false)
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, []float64{70 + rng.NormFloat64()*0.1, 70 + rng.NormFloat64()*0.1})
		labels = append(labels, true)
	}
	pts = append(pts, []float64{-30, 30}, []float64{70, -30})
	labels = append(labels, true, true)
	return pts, labels
}

// singletonScene has only one-off outliers: every detector, even the ones
// that miss microclusters, must do well here.
func singletonScene(seed int64) (pts [][]float64, labels []bool) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 400; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
		labels = append(labels, false)
	}
	for _, p := range [][]float64{{40, 0}, {0, -45}, {-38, 38}} {
		pts = append(pts, p)
		labels = append(labels, true)
	}
	return pts, labels
}

func checkAUROC(t *testing.T, d Detector, pts [][]float64, labels []bool, minAUROC float64) {
	t.Helper()
	scores := d.Score(pts)
	if len(scores) != len(pts) {
		t.Fatalf("%s: returned %d scores for %d points", d.Name(), len(scores), len(pts))
	}
	if auroc := eval.AUROC(scores, labels); auroc < minAUROC {
		t.Errorf("%s: AUROC = %.3f, want ≥ %.2f", d.Name(), auroc, minAUROC)
	}
}

func TestDetectorsOnSingletonOutliers(t *testing.T) {
	pts, labels := singletonScene(1)
	for _, d := range []Detector{
		KNNOut{K: 5}, ODIN{K: 5}, LDOF{K: 10}, LOF{K: 10},
		DBOut{RFrac: 0.25}, FastABOD{K: 10},
		LOCI{RMaxFrac: 0.5, NMin: 20, Alpha: 0.5},
		IForest{Trees: 64, Psi: 128, Seed: 3},
		Gen2Out{Trees: 64, MD: 2, Seed: 4},
		RDA{Components: 1},
		KMeansMM{K: 4, Seed: 6},
		OPTICS{MinPts: 10},
	} {
		checkAUROC(t, d, pts, labels, 0.95)
	}
	// D.MCA averages many tiny-subsample forests; it is noisier by design.
	checkAUROC(t, DMCA{Trees: 16, Seed: 5}, pts, labels, 0.85)
}

func TestDistanceDetectorsOnMicroclusterScene(t *testing.T) {
	// Detectors that look at global distance scales should still catch the
	// far-away 5-point mc; LOF-style purely local ones famously miss it.
	pts, labels := scene(2)
	for _, d := range []Detector{
		KNNOut{K: 10}, DBOut{RFrac: 0.25}, IForest{Trees: 64, Psi: 128, Seed: 3},
		DMCA{Trees: 16, Seed: 5}, KMeansMM{K: 4, Seed: 6}, OPTICS{MinPts: 10},
	} {
		checkAUROC(t, d, pts, labels, 0.9)
	}
}

func TestLOFMissesMicroclusterButCatchesSingletons(t *testing.T) {
	// The motivating failure of Sec. I: mc members have close neighbors, so
	// LOF with small k scores them like inliers.
	pts, _ := scene(3)
	scores := LOF{K: 3}.Score(pts)
	mcScore := scores[600] // a microcluster member
	single := scores[606]  // a singleton outlier
	if mcScore > single {
		t.Errorf("LOF(k=3) should score the mc member (%v) below the singleton (%v)", mcScore, single)
	}
}

func TestABODSmallExact(t *testing.T) {
	// Exact ABOD is cubic: exercise it on a small scene only.
	rng := rand.New(rand.NewSource(4))
	var pts [][]float64
	var labels []bool
	for i := 0; i < 80; i++ {
		pts = append(pts, []float64{rng.NormFloat64(), rng.NormFloat64()})
		labels = append(labels, false)
	}
	pts = append(pts, []float64{25, 25})
	labels = append(labels, true)
	checkAUROC(t, ABOD{}, pts, labels, 0.95)
}

func TestALOCIRuns(t *testing.T) {
	pts, labels := singletonScene(5)
	scores := ALOCI{Levels: 10, NMin: 20}.Score(pts)
	if len(scores) != len(pts) {
		t.Fatal("ALOCI score count mismatch")
	}
	// Grid approximation is crude; require it to beat coin flipping.
	if auroc := eval.AUROC(scores, labels); auroc < 0.7 {
		t.Errorf("ALOCI AUROC = %.3f, want ≥ 0.7", auroc)
	}
}

func TestDBSCANMarksNoise(t *testing.T) {
	pts, labels := singletonScene(6)
	scores := DBSCAN{EpsFrac: 0.05, MinPts: 5}.Score(pts)
	for i, s := range scores {
		if s != 0 && s != 1 {
			t.Fatalf("DBSCAN score must be binary, got %v", s)
		}
		if labels[i] && s != 1 {
			t.Errorf("DBSCAN missed planted outlier %d", i)
		}
	}
}

func TestGen2OutReportsGroups(t *testing.T) {
	pts, _ := scene(7)
	groups, scores := Gen2Out{Trees: 64, Seed: 8}.Microclusters(pts)
	if len(scores) != len(pts) {
		t.Fatal("Gen2Out score count mismatch")
	}
	if len(groups) == 0 {
		t.Fatal("Gen2Out found no groups on a scene with planted anomalies")
	}
	for k := 1; k < len(groups); k++ {
		if groups[k].Score > groups[k-1].Score {
			t.Fatal("Gen2Out groups not sorted by score")
		}
	}
}

func TestDMCAAssignsMicroclusters(t *testing.T) {
	pts, _ := scene(8)
	groups, _ := DMCA{Trees: 16, Seed: 9}.Microclusters(pts)
	if len(groups) == 0 {
		t.Fatal("D.MCA reported no micro-cluster assignments")
	}
	// The planted 5-point mc (indices 600..604) should land in one group.
	home := -1
	for gi, g := range groups {
		for _, m := range g.Members {
			if m == 600 {
				home = gi
			}
		}
	}
	if home >= 0 {
		found := 0
		for _, m := range groups[home].Members {
			if m >= 600 && m < 605 {
				found++
			}
		}
		if found < 4 {
			t.Errorf("planted mc split apart: only %d of 5 members together", found)
		}
	}
}

func TestDetectorsHandleDegenerateInput(t *testing.T) {
	tiny := [][]float64{{1, 2}}
	dup := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	for _, d := range []Detector{
		KNNOut{K: 5}, ODIN{K: 5}, LDOF{K: 5}, LOF{K: 5}, DBOut{RFrac: 0.1},
		FastABOD{K: 5}, LOCI{RMaxFrac: 0.5}, ALOCI{Levels: 5},
		IForest{Trees: 8, Seed: 1}, Gen2Out{Trees: 8, Seed: 1}, DMCA{Trees: 4, Seed: 1},
		RDA{}, DBSCAN{EpsFrac: 0.1}, OPTICS{MinPts: 3}, KMeansMM{K: 2, Seed: 1},
	} {
		for _, pts := range [][][]float64{tiny, dup, nil} {
			scores := d.Score(pts)
			if len(scores) != len(pts) {
				t.Errorf("%s: %d scores for %d points", d.Name(), len(scores), len(pts))
			}
			for _, s := range scores {
				if s != s { // NaN
					t.Errorf("%s: NaN score on degenerate input", d.Name())
				}
			}
		}
	}
}

func TestIForestDeterministicGivenSeed(t *testing.T) {
	pts, _ := singletonScene(10)
	a := IForest{Trees: 32, Seed: 42}.Score(pts)
	b := IForest{Trees: 32, Seed: 42}.Score(pts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("iForest not deterministic for a fixed seed")
		}
	}
}

func TestRDAReconstructionErrorOnLowRankData(t *testing.T) {
	// Points on a line in 3-d: one principal component reconstructs inliers
	// perfectly; the off-line outlier has large residual.
	rng := rand.New(rand.NewSource(11))
	var pts [][]float64
	var labels []bool
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 10
		pts = append(pts, []float64{v, 2 * v, -v})
		labels = append(labels, false)
	}
	pts = append(pts, []float64{5, -10, 5})
	labels = append(labels, true)
	checkAUROC(t, RDA{Components: 1}, pts, labels, 0.99)
}

func TestKNNSelfExcludesSelf(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {5, 5}}
	ids, dists := knnSelf(pts, 1)
	if ids[0][0] != 1 || dists[0][0] != 1 {
		t.Errorf("knnSelf[0] = %v/%v, want neighbor 1 at distance 1", ids[0], dists[0])
	}
	if ids[1][0] != 0 {
		t.Errorf("knnSelf[1] = %v, want neighbor 0", ids[1])
	}
}
