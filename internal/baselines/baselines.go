// Package baselines implements the competitor outlier detectors MCCATCH is
// evaluated against in the paper's Sec. V: the classic detectors ABOD,
// FastABOD, LOCI, ALOCI, DB-Out, LOF, kNN-Out, LDOF, ODIN and iForest, the
// microcluster-aware baselines Gen2Out and D.MCA (reimplemented from their
// published descriptions), a deterministic reconstruction-based stand-in
// for RDA, and the clustering-family methods DBSCAN, OPTICS and KMeans--.
//
// All detectors consume vector data: per Tab. I, the competitors either
// require explicit features or need modification for nondimensional data —
// only MCCATCH runs on a bare metric. Scores are higher-is-more-anomalous.
package baselines

import (
	"math"

	"mccatch/internal/kdtree"
)

// Detector scores every point of a vector dataset; larger means more
// anomalous. Implementations must not mutate the input.
type Detector interface {
	Name() string
	Score(points [][]float64) []float64
}

// knnSelf returns for each point its k nearest other points (self
// excluded), as ids and distances, using a kd-tree.
func knnSelf(points [][]float64, k int) ([][]int, [][]float64) {
	t := kdtree.New(points)
	ids := make([][]int, len(points))
	dists := make([][]float64, len(points))
	for i, p := range points {
		nid, nd := t.KNN(p, k+1)
		// Drop one occurrence of self (distance 0 at the front; with
		// duplicates any zero-distance hit stands in for it).
		out, outD := make([]int, 0, k), make([]float64, 0, k)
		skipped := false
		for j := range nid {
			if !skipped && nid[j] == i {
				skipped = true
				continue
			}
			out = append(out, nid[j])
			outD = append(outD, nd[j])
		}
		if !skipped && len(out) > 0 {
			out, outD = out[:len(out)-1], outD[:len(outD)-1]
		}
		if len(out) > k {
			out, outD = out[:k], outD[:k]
		}
		ids[i], dists[i] = out, outD
	}
	return ids, dists
}

// meanOf returns the arithmetic mean, 0 for empty input.
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stddevOf returns the population standard deviation.
func stddevOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := meanOf(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
