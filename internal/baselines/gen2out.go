package baselines

import (
	"fmt"
	"sort"

	"mccatch/internal/kdtree"
	"mccatch/internal/unionfind"
)

// Group is a microcluster reported by a microcluster-aware baseline.
type Group struct {
	Members []int
	Score   float64
}

// MicroclusterDetector is implemented by the baselines that, like MCCATCH,
// report group anomalies with a score (Gen2Out and D.MCA).
type MicroclusterDetector interface {
	Detector
	Microclusters(points [][]float64) ([]Group, []float64)
}

// Gen2Out reimplements the detector of Lee et al. (IEEE BigData 2021) from
// its published description: isolation-forest depth profiling provides the
// point anomaly scores, the score distribution is thresholded at
// mean + 3σ ("X-ray" knee), and the surviving anomalies are gelled into
// group anomalies by single-linkage at the anomalies' median 1NN distance.
// A group's score is the mean point score of its members — Gen2Out has no
// bridge-length or cardinality axiom built in, which is exactly what the
// paper's Tab. V probes.
type Gen2Out struct {
	Trees int // t in Tab. II
	MD    int // md: linkage multiplier on the anomalies' 1NN scale
	Seed  int64
}

// Name implements Detector.
func (d Gen2Out) Name() string { return fmt.Sprintf("Gen2Out(t=%d,md=%d)", d.Trees, d.MD) }

// Score implements Detector.
func (d Gen2Out) Score(points [][]float64) []float64 {
	_, scores := d.Microclusters(points)
	return scores
}

// Microclusters implements MicroclusterDetector.
func (d Gen2Out) Microclusters(points [][]float64) ([]Group, []float64) {
	trees := d.Trees
	if trees <= 0 {
		trees = 100
	}
	md := d.MD
	if md <= 0 {
		md = 2
	}
	scores := IForest{Trees: trees, Seed: d.Seed}.Score(points)
	if len(points) < 3 {
		return nil, scores
	}

	// Threshold: mean + 3σ of the score distribution.
	thresh := meanOf(scores) + 3*stddevOf(scores)
	var anomalies []int
	for i, s := range scores {
		if s >= thresh {
			anomalies = append(anomalies, i)
		}
	}
	if len(anomalies) == 0 {
		return nil, scores
	}

	// Gel anomalies by single linkage at md × their median 1NN distance.
	pts := make([][]float64, len(anomalies))
	for k, i := range anomalies {
		pts[k] = points[i]
	}
	eps := medianNN(pts) * float64(md)
	t := kdtree.New(pts)
	dsu := unionfind.New(len(anomalies))
	for k, p := range pts {
		for _, j := range t.RangeQuery(p, eps) {
			if j != k {
				dsu.Union(k, j)
			}
		}
	}
	var groups []Group
	for _, comp := range dsu.Components() {
		g := Group{Members: make([]int, len(comp))}
		sum := 0.0
		for k, local := range comp {
			g.Members[k] = anomalies[local]
			sum += scores[anomalies[local]]
		}
		g.Score = sum / float64(len(comp))
		groups = append(groups, g)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].Score > groups[b].Score })
	return groups, scores
}

// medianNN returns the median distance from each point to its nearest
// other point; 1 if degenerate.
func medianNN(pts [][]float64) float64 {
	if len(pts) < 2 {
		return 1
	}
	t := kdtree.New(pts)
	ds := make([]float64, 0, len(pts))
	for i, p := range pts {
		ids, dd := t.KNN(p, 2)
		for j := range ids {
			if ids[j] != i {
				ds = append(ds, dd[j])
				break
			}
		}
	}
	if len(ds) == 0 {
		return 1
	}
	sort.Float64s(ds)
	m := ds[len(ds)/2]
	if m == 0 {
		m = 1
	}
	return m
}
