package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SCiForest is the Split-selection Criterion iForest of Liu, Ting & Zhou
// (ECML 2010), the paper's clustered-anomaly-aware isolation method: trees
// split on random hyperplanes over attribute pairs, choosing among
// candidates the split with the best standard-deviation gain, which lets
// isolation surfaces wrap clustered anomalies that axis-parallel iForest
// splits leak through.
type SCiForest struct {
	Trees int
	Psi   int
	Tau   int // candidate hyperplanes per node (default 10)
	Seed  int64
}

// Name implements Detector.
func (d SCiForest) Name() string { return fmt.Sprintf("SCiForest(t=%d)", d.Trees) }

type scNode struct {
	attrs       [2]int
	coef        [2]float64
	split       float64
	size        int
	left, right *scNode
}

// Score implements Detector.
func (d SCiForest) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	dim := len(points[0])
	trees := d.Trees
	if trees <= 0 {
		trees = 100
	}
	psi := d.Psi
	if psi <= 1 || psi > n {
		psi = min(256, n)
	}
	if psi < 2 || dim == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	tau := d.Tau
	if tau <= 0 {
		tau = 10
	}
	rng := rand.New(rand.NewSource(d.Seed))
	maxDepth := int(math.Ceil(math.Log2(float64(psi))))
	forest := make([]*scNode, trees)
	for t := range forest {
		idx := rng.Perm(n)[:psi]
		forest[t] = buildSCTree(points, idx, 0, maxDepth, tau, dim, rng)
	}
	cn := avgPathLen(psi)
	for i, p := range points {
		sum := 0.0
		for _, tree := range forest {
			sum += scPathLen(tree, p, 0)
		}
		out[i] = math.Pow(2, -(sum/float64(trees))/cn)
	}
	return out
}

func buildSCTree(points [][]float64, idx []int, depth, maxDepth, tau, dim int, rng *rand.Rand) *scNode {
	if len(idx) <= 1 || depth >= maxDepth {
		return &scNode{size: len(idx)}
	}
	bestGain := -1.0
	var bestNode *scNode
	var bestL, bestR []int
	proj := make([]float64, len(idx))
	for c := 0; c < tau; c++ {
		a1 := rng.Intn(dim)
		a2 := rng.Intn(dim)
		theta := rng.Float64() * 2 * math.Pi
		c1, c2 := math.Cos(theta), math.Sin(theta)
		for k, i := range idx {
			proj[k] = c1*points[i][a1] + c2*points[i][a2]
		}
		lo, hi := proj[0], proj[0]
		for _, v := range proj {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		split := lo + rng.Float64()*(hi-lo)
		var l, r []int
		var sl, sr []float64
		for k, i := range idx {
			if proj[k] < split {
				l = append(l, i)
				sl = append(sl, proj[k])
			} else {
				r = append(r, i)
				sr = append(sr, proj[k])
			}
		}
		if len(l) == 0 || len(r) == 0 {
			continue
		}
		// Sdgain: reduction of pooled standard deviation.
		sdAll := stddevOf(proj)
		if sdAll == 0 {
			continue
		}
		gain := (sdAll - (stddevOf(sl)+stddevOf(sr))/2) / sdAll
		if gain > bestGain {
			bestGain = gain
			bestNode = &scNode{attrs: [2]int{a1, a2}, coef: [2]float64{c1, c2}, split: split}
			bestL, bestR = l, r
		}
	}
	if bestNode == nil {
		return &scNode{size: len(idx)}
	}
	bestNode.left = buildSCTree(points, bestL, depth+1, maxDepth, tau, dim, rng)
	bestNode.right = buildSCTree(points, bestR, depth+1, maxDepth, tau, dim, rng)
	return bestNode
}

func scPathLen(n *scNode, p []float64, depth int) float64 {
	if n.left == nil {
		return float64(depth) + avgPathLen(n.size)
	}
	v := n.coef[0]*p[n.attrs[0]] + n.coef[1]*p[n.attrs[1]]
	if v < n.split {
		return scPathLen(n.left, p, depth+1)
	}
	return scPathLen(n.right, p, depth+1)
}

// PLDOF is the pruned LDOF of Pamula, Deka & Nandi (EAIT 2011): k-means
// first prunes the points that sit close to a populous centroid (they
// cannot be top outliers), then LDOF is computed only for the surviving
// candidates; pruned points score below every candidate.
type PLDOF struct {
	K    int // clusters for the pruning phase
	KNN  int // neighbors for the LDOF phase
	Seed int64
}

// Name implements Detector.
func (d PLDOF) Name() string { return fmt.Sprintf("PLDOF(k=%d)", d.K) }

// Score implements Detector.
func (d PLDOF) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n < 3 {
		return out
	}
	// Phase 1: k-means distances prune the safe points.
	base := KMeansMM{K: d.K, Seed: d.Seed}.Score(points)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return base[order[a]] > base[order[b]] })
	keep := n / 4
	if keep < 2 {
		keep = min(2, n)
	}
	candidates := order[:keep]

	// Phase 2: LDOF over the full dataset, evaluated for candidates only.
	ldof := LDOF{K: d.KNN}.Score(points)
	maxBase := 0.0
	for _, s := range base {
		if s > maxBase {
			maxBase = s
		}
	}
	if maxBase == 0 {
		maxBase = 1
	}
	for i := range out {
		// Pruned points keep a sub-1 score proportional to the phase-1
		// distance; candidates get 1 + LDOF so they always rank above.
		out[i] = base[i] / maxBase
	}
	for _, i := range candidates {
		out[i] = 1 + ldof[i]
	}
	return out
}

// DeepSVDD stands in for Deep SVDD (Ruff et al., ICML 2018) without a
// neural feature map: the linear-kernel SVDD optimum is the minimum
// enclosing ball, approximated by the Bădoiu–Clarkson core-set iteration;
// the score is the distance to the ball's center. DESIGN.md §3 records the
// substitution (the evaluation role — a one-class boundary that misses
// microclusters near the boundary — is preserved).
type DeepSVDD struct {
	Iters int
}

// Name implements Detector.
func (DeepSVDD) Name() string { return "DeepSVDD(MEB)" }

// Score implements Detector.
func (d DeepSVDD) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	iters := d.Iters
	if iters <= 0 {
		iters = 100
	}
	center := append([]float64(nil), points[0]...)
	for it := 1; it <= iters; it++ {
		// Farthest point from the current center.
		far, fd := 0, -1.0
		for i, p := range points {
			if dd := euclid(center, p); dd > fd {
				far, fd = i, dd
			}
		}
		step := 1 / float64(it+1)
		for j := range center {
			center[j] += (points[far][j] - center[j]) * step
		}
	}
	for i, p := range points {
		out[i] = euclid(center, p)
	}
	return out
}

// Sparkx stands in for Sparx (Zhang, Ursekar & Akoglu, KDD 2022), the
// distributed half-space-chains detector, on a single node: K random
// projection chains each halve a random direction's range L times, and a
// point's score is its average log-inverse bin density over chains and
// depths — sparse cells at fine granularity mean anomalous points.
type Sparkx struct {
	Chains int // K projections (default 20)
	Depth  int // L halvings per chain (default 8)
	Seed   int64
}

// Name implements Detector.
func (d Sparkx) Name() string { return fmt.Sprintf("Sparkx(K=%d)", d.Chains) }

// Score implements Detector.
func (d Sparkx) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	dim := len(points[0])
	chains := d.Chains
	if chains <= 0 {
		chains = 20
	}
	depth := d.Depth
	if depth <= 0 {
		depth = 8
	}
	rng := rand.New(rand.NewSource(d.Seed))
	for c := 0; c < chains; c++ {
		// Random unit direction.
		dir := make([]float64, dim)
		norm2 := 0.0
		for j := range dir {
			dir[j] = rng.NormFloat64()
			norm2 += dir[j] * dir[j]
		}
		if norm2 == 0 {
			continue
		}
		inv := 1 / math.Sqrt(norm2)
		proj := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, p := range points {
			v := 0.0
			for j := range dir {
				v += dir[j] * p[j]
			}
			proj[i] = v * inv
			if proj[i] < lo {
				lo = proj[i]
			}
			if proj[i] > hi {
				hi = proj[i]
			}
		}
		if hi <= lo {
			continue
		}
		span := hi - lo
		for l := 1; l <= depth; l++ {
			bins := 1 << l
			counts := make([]int, bins)
			cell := make([]int, n)
			for i, v := range proj {
				b := int((v - lo) / span * float64(bins))
				if b >= bins {
					b = bins - 1
				}
				cell[i] = b
				counts[b]++
			}
			for i := range points {
				out[i] += math.Log2(float64(n)/float64(counts[cell[i]])) / float64(depth*chains)
			}
		}
	}
	return out
}
