package baselines

import (
	"fmt"
	"sort"

	"mccatch/internal/kdtree"
	"mccatch/internal/unionfind"
)

// DMCA reimplements D.MCA (Jiang, Cordeiro & Akoglu, ICDM 2022) from its
// published description: an isolation-ensemble detector with explicit
// micro-cluster assignment. Point scores come from an iForest ensemble
// over several subsample sizes (ψ ∈ {2,4,8,...}, as in Tab. II); the top
// p = 10% scored points are considered anomaly candidates and assigned to
// micro-clusters by mutual-neighbor gelling. D.MCA assigns points to
// clusters but reports per-point scores only (no per-group score obeying
// axioms) — the property Tab. I records.
type DMCA struct {
	Trees int
	Seed  int64
}

// Name implements Detector.
func (d DMCA) Name() string { return fmt.Sprintf("D.MCA(t=%d)", d.Trees) }

// Score implements Detector.
func (d DMCA) Score(points [][]float64) []float64 {
	_, scores := d.Microclusters(points)
	return scores
}

// Microclusters implements MicroclusterDetector. Group scores are the max
// member score (D.MCA itself does not define one; this is the natural
// reading used for comparisons).
func (d DMCA) Microclusters(points [][]float64) ([]Group, []float64) {
	n := len(points)
	trees := d.Trees
	if trees <= 0 {
		trees = 32
	}
	// Ensemble over doubling subsample sizes, like ψ ∈ {2,4,...,min(1024, 0.3n)}.
	maxPsi := int(0.3 * float64(n))
	if maxPsi > 1024 {
		maxPsi = 1024
	}
	scores := make([]float64, n)
	members := 0
	for psi := 2; psi <= maxPsi; psi *= 2 {
		s := IForest{Trees: trees, Psi: psi, Seed: d.Seed + int64(psi)}.Score(points)
		for i := range scores {
			scores[i] += s[i]
		}
		members++
	}
	if members == 0 {
		s := IForest{Trees: trees, Seed: d.Seed}.Score(points)
		copy(scores, s)
		members = 1
	}
	for i := range scores {
		scores[i] /= float64(members)
	}
	if n < 3 {
		return nil, scores
	}

	// Candidates: top 10% of points by score (p = n·0.1 in Tab. II).
	p := n / 10
	if p < 1 {
		p = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	cand := order[:p]
	pts := make([][]float64, len(cand))
	for k, i := range cand {
		pts[k] = points[i]
	}
	eps := medianNN(pts) * 2
	t := kdtree.New(pts)
	dsu := unionfind.New(len(cand))
	for k, q := range pts {
		for _, j := range t.RangeQuery(q, eps) {
			if j != k {
				dsu.Union(k, j)
			}
		}
	}
	var groups []Group
	for _, comp := range dsu.Components() {
		g := Group{Members: make([]int, len(comp))}
		best := 0.0
		for k, local := range comp {
			g.Members[k] = cand[local]
			if s := scores[cand[local]]; s > best {
				best = s
			}
		}
		g.Score = best
		groups = append(groups, g)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].Score > groups[b].Score })
	return groups, scores
}
