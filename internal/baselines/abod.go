package baselines

import (
	"fmt"
	"math"
)

// ABOD is the angle-based outlier detector of Kriegel et al. (KDD 2008):
// the score is the inverse of the variance, over all pairs of other
// points, of the distance-weighted angle spectrum at the point. Inliers
// see other points in all directions (high variance); outliers see them in
// a narrow cone (low variance). Exact ABOD is cubic in n — the paper could
// not run it on its larger datasets, and neither should callers here.
type ABOD struct{}

// Name implements Detector.
func (ABOD) Name() string { return "ABOD" }

// Score implements Detector.
func (ABOD) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	for i := range points {
		out[i] = invABOF(points, i, allOthers(n, i))
	}
	return out
}

// FastABOD approximates ABOD by computing the angle variance over the k
// nearest neighbors only, dropping the cubic cost to O(n·k²) after the
// kNN search.
type FastABOD struct {
	K int
}

// Name implements Detector.
func (d FastABOD) Name() string { return fmt.Sprintf("FastABOD(k=%d)", d.K) }

// Score implements Detector.
func (d FastABOD) Score(points [][]float64) []float64 {
	k := clampK(d.K, len(points))
	if k < 2 {
		k = clampK(2, len(points))
	}
	ids, _ := knnSelf(points, k)
	out := make([]float64, len(points))
	for i := range points {
		out[i] = invABOF(points, i, ids[i])
	}
	return out
}

func allOthers(n, i int) []int {
	out := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// invABOF returns 1/(ABOF+ε) so that higher means more anomalous: the
// angle-based outlier factor itself is the weighted variance of
// ⟨AB,AC⟩/(|AB|²|AC|²) over pairs (B,C) of reference points, with weights
// 1/(|AB||AC|).
func invABOF(points [][]float64, i int, refs []int) float64 {
	a := points[i]
	var sumW, sumWV, sumWV2 float64
	for x := 0; x < len(refs); x++ {
		b := points[refs[x]]
		ab := diff(b, a)
		nab := norm(ab)
		if nab == 0 {
			continue
		}
		for y := x + 1; y < len(refs); y++ {
			c := points[refs[y]]
			ac := diff(c, a)
			nac := norm(ac)
			if nac == 0 {
				continue
			}
			v := dot(ab, ac) / (nab * nab * nac * nac)
			w := 1 / (nab * nac)
			sumW += w
			sumWV += w * v
			sumWV2 += w * v * v
		}
	}
	if sumW == 0 {
		// Point coincides with every reference: maximally inlying.
		return 0
	}
	mean := sumWV / sumW
	variance := sumWV2/sumW - mean*mean
	if variance < 0 {
		variance = 0
	}
	return 1 / (variance + 1e-12)
}

func diff(a, b []float64) []float64 {
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return d
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}
