package baselines

import (
	"fmt"

	"mccatch/internal/kdtree"
)

// DBOut is the distance-based outlier detector of Knorr & Ng (VLDB 1998),
// in its ranking form: the fewer neighbors a point has within radius r,
// the more anomalous it is. RFrac expresses r as a fraction of the dataset
// diameter, matching the paper's Tab. II grid r ∈ {l·0.05, …, l·0.5}.
type DBOut struct {
	RFrac float64
}

// Name implements Detector.
func (d DBOut) Name() string { return fmt.Sprintf("DB-Out(r=l*%.2f)", d.RFrac) }

// Score implements Detector.
func (d DBOut) Score(points [][]float64) []float64 {
	t := kdtree.New(points)
	r := t.DiameterEstimate() * d.RFrac
	out := make([]float64, len(points))
	n := float64(len(points))
	for i, p := range points {
		// Invert the neighbor count so higher = more anomalous.
		out[i] = 1 - float64(t.RangeCount(p, r))/n
	}
	return out
}
