package baselines

import (
	"fmt"
	"math"
	"sort"
)

// GLOSH is the Global-Local Outlier Score from Hierarchies of Campello et
// al. (TKDD 2015), computed over the HDBSCAN* hierarchy: build the minimum
// spanning tree of the mutual-reachability graph, watch each point attach
// to a cluster as the density threshold ε grows, and score it by how much
// later it attaches than the densest part of its cluster:
//
//	GLOSH(x) = 1 − ε_min(C(x)) / ε(x)
//
// where ε(x) is the MST edge weight at which x joins a component of at
// least MinPts points and ε_min(C) is the smallest such weight in x's
// final cluster. The MST is built with Prim's algorithm in O(n²) — GLOSH
// is one of the quadratic methods of Tab. I.
type GLOSH struct {
	MinPts int
}

// Name implements Detector.
func (d GLOSH) Name() string { return fmt.Sprintf("GLOSH(minPts=%d)", d.MinPts) }

// Score implements Detector.
func (d GLOSH) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n < 3 {
		return out
	}
	minPts := clampK(d.MinPts, n)
	if minPts < 2 {
		minPts = 2
	}

	// Core distances.
	_, dists := knnSelf(points, minPts)
	core := make([]float64, n)
	for i := range points {
		if len(dists[i]) > 0 {
			core[i] = dists[i][len(dists[i])-1]
		}
	}
	mreach := func(a, b int) float64 {
		d := euclid(points[a], points[b])
		if core[a] > d {
			d = core[a]
		}
		if core[b] > d {
			d = core[b]
		}
		return d
	}

	// Prim MST over mutual reachability.
	type edge struct {
		a, b int
		w    float64
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = mreach(0, j)
		from[j] = 0
	}
	edges := make([]edge, 0, n-1)
	for len(edges) < n-1 {
		next, w := -1, math.Inf(1)
		for j := range points {
			if !inTree[j] && best[j] < w {
				next, w = j, best[j]
			}
		}
		if next < 0 {
			break
		}
		inTree[next] = true
		edges = append(edges, edge{from[next], next, w})
		for j := range points {
			if !inTree[j] {
				if d := mreach(next, j); d < best[j] {
					best[j], from[j] = d, next
				}
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].w < edges[b].w })

	// Sweep ε upward; ε(x) is the weight at which x first belongs to a
	// component of size ≥ minPts.
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	eps := make([]float64, n) // 0 = not attached yet
	// A component crossing the minPts threshold stamps its still-unstamped
	// members with the current ε and stops tracking them.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
		members[ra] = append(members[ra], members[rb]...)
		members[rb] = nil
		if size[ra] >= minPts {
			for _, m := range members[ra] {
				if eps[m] == 0 {
					eps[m] = e.w
				}
			}
			members[ra] = members[ra][:0] // everyone stamped; stop tracking
		}
	}
	for i := range eps {
		if eps[i] == 0 { // never attached (tiny datasets): use core distance
			eps[i] = core[i]
		}
	}

	// Final flat clusters: components of the MST with long edges removed
	// (edges above the 90th percentile weight), mirroring HDBSCAN's most
	// stable cut in a way that keeps the estimator deterministic.
	cutIdx := int(0.9 * float64(len(edges)))
	if cutIdx >= len(edges) {
		cutIdx = len(edges) - 1
	}
	cutW := edges[cutIdx].w
	for i := range parent {
		parent[i] = i
	}
	for _, e := range edges {
		if e.w <= cutW {
			ra, rb := find(e.a), find(e.b)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	epsMin := map[int]float64{}
	clusterSize := map[int]int{}
	globalMin := math.Inf(1)
	for i := range points {
		r := find(i)
		clusterSize[r]++
		if v, ok := epsMin[r]; !ok || eps[i] < v {
			epsMin[r] = eps[i]
		}
		if eps[i] < globalMin {
			globalMin = eps[i]
		}
	}
	for i := range points {
		if eps[i] <= 0 {
			out[i] = 0
			continue
		}
		r := find(i)
		ref := epsMin[r]
		if clusterSize[r] < minPts {
			// Noise under the flat cut: compare against the densest level
			// in the hierarchy, as such points never form a cluster of
			// their own.
			ref = globalMin
		}
		out[i] = 1 - ref/eps[i]
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}
