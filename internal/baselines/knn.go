package baselines

import "fmt"

// KNNOut is the distance-to-kth-neighbor detector of Ramaswamy et al.
// (SIGMOD 2000): the score of a point is its distance to its k-th nearest
// neighbor. Quadratic methods in the paper's taxonomy; here each query uses
// a kd-tree.
type KNNOut struct {
	K int
}

// Name implements Detector.
func (d KNNOut) Name() string { return fmt.Sprintf("kNN-Out(k=%d)", d.K) }

// Score implements Detector.
func (d KNNOut) Score(points [][]float64) []float64 {
	k := clampK(d.K, len(points))
	_, dists := knnSelf(points, k)
	out := make([]float64, len(points))
	for i := range points {
		if len(dists[i]) > 0 {
			out[i] = dists[i][len(dists[i])-1]
		}
	}
	return out
}

// ODIN (Hautamaki et al., ICPR 2004) scores each point by the inverse of
// its in-degree in the kNN graph: points that few others consider a
// neighbor are outliers.
type ODIN struct {
	K int
}

// Name implements Detector.
func (d ODIN) Name() string { return fmt.Sprintf("ODIN(k=%d)", d.K) }

// Score implements Detector.
func (d ODIN) Score(points [][]float64) []float64 {
	k := clampK(d.K, len(points))
	ids, _ := knnSelf(points, k)
	indeg := make([]int, len(points))
	for _, nb := range ids {
		for _, j := range nb {
			indeg[j]++
		}
	}
	out := make([]float64, len(points))
	for i := range out {
		out[i] = 1 / (1 + float64(indeg[i]))
	}
	return out
}

// LDOF (Zhang et al., PAKDD 2009) is the local distance-based outlier
// factor: the ratio of a point's average distance to its k neighbors over
// the average pairwise distance among those neighbors.
type LDOF struct {
	K int
}

// Name implements Detector.
func (d LDOF) Name() string { return fmt.Sprintf("LDOF(k=%d)", d.K) }

// Score implements Detector.
func (d LDOF) Score(points [][]float64) []float64 {
	k := clampK(d.K, len(points))
	if k < 2 {
		k = clampK(2, len(points))
	}
	ids, dists := knnSelf(points, k)
	out := make([]float64, len(points))
	for i := range points {
		nb := ids[i]
		if len(nb) < 2 {
			continue
		}
		dxp := meanOf(dists[i])
		// Average pairwise (inner) distance among the neighbors.
		sum, cnt := 0.0, 0
		for a := 0; a < len(nb); a++ {
			for b := a + 1; b < len(nb); b++ {
				sum += euclid(points[nb[a]], points[nb[b]])
				cnt++
			}
		}
		inner := sum / float64(cnt)
		if inner == 0 {
			if dxp > 0 {
				out[i] = 1e9 // all neighbors identical, point away from them
			}
			continue
		}
		out[i] = dxp / inner
	}
	return out
}

// clampK bounds k to [1, n-1].
func clampK(k, n int) int {
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	return k
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return sqrt(s)
}
