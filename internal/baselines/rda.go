package baselines

import (
	"fmt"
	"math"
)

// RDA stands in for the Robust Deep Autoencoder of Zhou & Paffenroth
// (KDD 2017): the anomaly score is the reconstruction error of the point
// under a low-rank linear autoencoder, i.e. projection onto the top-k
// principal components (a linear autoencoder's optimum is the PCA
// subspace). It is deterministic and stdlib-only; DESIGN.md §3 records the
// substitution. Components is the latent dimensionality (Tab. II's network
// shrinks the dimension by dimdecay; k plays the same role).
type RDA struct {
	Components int
}

// Name implements Detector.
func (d RDA) Name() string { return fmt.Sprintf("RDA(k=%d)", d.Components) }

// Score implements Detector.
func (d RDA) Score(points [][]float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	dim := len(points[0])
	k := d.Components
	if k <= 0 || k >= dim {
		k = maxInt(1, dim/2)
	}

	// Center the data.
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	x := make([][]float64, n)
	for i, p := range points {
		x[i] = make([]float64, dim)
		for j, v := range p {
			x[i][j] = v - mean[j]
		}
	}

	// Top-k principal directions by power iteration with deflation.
	comps := make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		v := powerIteration(x, comps)
		if v == nil {
			break
		}
		comps = append(comps, v)
	}

	// Reconstruction error: squared norm minus squared norm of the
	// projection onto the principal subspace.
	for i, xi := range x {
		total := dot(xi, xi)
		proj := 0.0
		for _, v := range comps {
			p := dot(xi, v)
			proj += p * p
		}
		e := total - proj
		if e < 0 {
			e = 0
		}
		out[i] = math.Sqrt(e)
	}
	return out
}

// powerIteration finds the dominant eigenvector of the covariance of x,
// orthogonal to the already-found components; nil when the residual
// variance vanishes.
func powerIteration(x [][]float64, prev [][]float64) []float64 {
	dim := len(x[0])
	// Deterministic start: spread over all coordinates.
	v := make([]float64, dim)
	for j := range v {
		v[j] = 1 / math.Sqrt(float64(dim)+float64(j))
	}
	orthonormalize(v, prev)
	for iter := 0; iter < 100; iter++ {
		// w = Cov·v computed as Xᵀ(Xv)/n without materializing Cov.
		xv := make([]float64, len(x))
		for i, xi := range x {
			xv[i] = dot(xi, v)
		}
		w := make([]float64, dim)
		for i, xi := range x {
			for j, xij := range xi {
				w[j] += xv[i] * xij
			}
		}
		orthonormalize(w, prev)
		nw := norm(w)
		if nw < 1e-12 {
			return nil
		}
		for j := range w {
			w[j] /= nw
		}
		// Converged when the direction stops moving.
		if math.Abs(math.Abs(dot(w, v))-1) < 1e-10 {
			return w
		}
		v = w
	}
	return v
}

// orthonormalize removes the projections of v onto each basis vector.
func orthonormalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		p := dot(v, b)
		for j := range v {
			v[j] -= p * b[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
