package baselines

import (
	"fmt"
	"math"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// LOF is the Local Outlier Factor of Breunig et al. (SIGMOD 2000): the
// ratio of the average local reachability density of a point's k nearest
// neighbors over the point's own.
type LOF struct {
	K int
}

// Name implements Detector.
func (d LOF) Name() string { return fmt.Sprintf("LOF(k=%d)", d.K) }

// Score implements Detector.
func (d LOF) Score(points [][]float64) []float64 {
	n := len(points)
	k := clampK(d.K, n)
	ids, dists := knnSelf(points, k)

	// k-distance of each point: distance to its k-th neighbor.
	kdist := make([]float64, n)
	for i := range points {
		if len(dists[i]) > 0 {
			kdist[i] = dists[i][len(dists[i])-1]
		}
	}
	// Local reachability density: 1 / mean reach-dist to the neighbors,
	// where reach-dist(p,o) = max(k-distance(o), d(p,o)).
	lrd := make([]float64, n)
	for i := range points {
		sum := 0.0
		for j, o := range ids[i] {
			rd := dists[i][j]
			if kdist[o] > rd {
				rd = kdist[o]
			}
			sum += rd
		}
		if len(ids[i]) == 0 {
			lrd[i] = 0
			continue
		}
		mean := sum / float64(len(ids[i]))
		if mean == 0 {
			lrd[i] = math.Inf(1) // duplicates: infinite density
		} else {
			lrd[i] = 1 / mean
		}
	}
	out := make([]float64, n)
	for i := range points {
		if len(ids[i]) == 0 {
			out[i] = 1
			continue
		}
		sum := 0.0
		for _, o := range ids[i] {
			sum += ratio(lrd[o], lrd[i])
		}
		out[i] = sum / float64(len(ids[i]))
	}
	return out
}

// ratio returns a/b handling the infinite-density (duplicate) cases so
// duplicate-heavy points get LOF ≈ 1, matching the ELKI convention.
func ratio(a, b float64) float64 {
	aInf, bInf := math.IsInf(a, 1), math.IsInf(b, 1)
	switch {
	case aInf && bInf:
		return 1
	case bInf:
		return 0
	case aInf:
		return math.Inf(1)
	case b == 0:
		return 0
	default:
		return a / b
	}
}
