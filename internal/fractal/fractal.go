// Package fractal estimates the intrinsic (correlation fractal) dimension
// u of a metric dataset: how quickly the number of neighbors grows with the
// distance, u = d log(pair count) / d log(r). MCCATCH's Lemma 1 bounds its
// runtime by O(n · n^(1-1/u)), the dataset table (Tab. III) reports u per
// dataset, and Fig. 7 derives expected runtime slopes 2−1/u from it. Only
// distances are needed, so it works for nondimensional data too (paper
// footnote 7).
package fractal

import (
	"math"
	"math/rand"

	"mccatch/internal/metric"
	"mccatch/internal/slimtree"
)

// Options configures the estimator.
type Options struct {
	// Sample caps how many elements are probed (the correlation integral
	// needs pair counts; probing a uniform sample against the full tree
	// keeps the cost subquadratic, after Traina Jr. et al.). 0 means 1000.
	Sample int
	// Radii is the number of geometric radii in the sweep. 0 means 12.
	Radii int
	// Seed drives the sampling; estimates are deterministic given a seed.
	Seed int64
}

// Dimension estimates the correlation fractal dimension of items under
// dist. It sweeps geometric radii r_e, computes the correlation sum
// S(r_e) = Σ_i count(i, r_e) over a sample, and fits the slope of
// log S versus log r over the scaling range by least squares. Datasets with
// fewer than 3 elements or zero diameter report dimension 0.
func Dimension[T any](items []T, dist metric.Distance[T], opt Options) float64 {
	if len(items) < 3 {
		return 0
	}
	if opt.Sample <= 0 {
		opt.Sample = 1000
	}
	if opt.Radii <= 0 {
		opt.Radii = 12
	}
	tree := slimtree.New(dist, 0, items)
	diam := tree.DiameterEstimate()
	if diam <= 0 {
		return 0
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	sample := items
	if len(items) > opt.Sample {
		idx := rng.Perm(len(items))[:opt.Sample]
		sample = make([]T, opt.Sample)
		for i, j := range idx {
			sample[i] = items[j]
		}
	}

	// Geometric radii with ratio √2 spanning diam/2^12 .. diam/2. The slope
	// is fit only over the scaling range — average neighbor counts between 2
	// and 5% of n — because below it only self-counts register and above it
	// boundary effects and saturation flatten the curve.
	steps := 2 * opt.Radii
	lo, hi := 2.0, 0.05*float64(len(items))
	if hi < lo+1 {
		hi = lo + 1
	}
	logr := make([]float64, 0, steps)
	logS := make([]float64, 0, steps)
	looseR := make([]float64, 0, steps)
	looseS := make([]float64, 0, steps)
	for e := 0; e < steps; e++ {
		r := diam / math.Pow(2, float64(steps-e)/2)
		sum := 0.0
		for _, q := range sample {
			sum += float64(tree.RangeCount(q, r))
		}
		avg := sum / float64(len(sample))
		if avg > 1.02 && avg < 0.9*float64(len(items)) {
			looseR = append(looseR, math.Log2(r))
			looseS = append(looseS, math.Log2(sum))
		}
		if avg < lo {
			continue
		}
		if avg > hi {
			break
		}
		logr = append(logr, math.Log2(r))
		logS = append(logS, math.Log2(sum))
	}
	u := 0.0
	if len(logr) >= 2 {
		u = slope(logr, logS)
	}
	if u <= 0.05 && len(looseR) >= 2 {
		// Discrete metrics (e.g. edit distance) can leave the strict window
		// empty or flat; fall back to the loose window before giving up.
		u = slope(looseR, looseS)
	}
	if u < 0 {
		u = 0
	}
	return u
}

// slope returns the least-squares slope of y on x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// ExpectedRuntimeSlope returns the paper's predicted log-log runtime slope
// for MCCATCH on a dataset of intrinsic dimension u: the cost is
// O(n · n^(1-1/u)), so runtime grows as n^(2-1/u) (Fig. 7's dashed lines).
// u ≤ 1 gives slope 1 (linear).
func ExpectedRuntimeSlope(u float64) float64 {
	if u <= 1 {
		return 1
	}
	return 2 - 1/u
}
