package fractal

import (
	"math"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

func TestDimensionOfLine(t *testing.T) {
	// Points on a diagonal line embedded in 3-d: intrinsic dimension 1.
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 2000)
	for i := range pts {
		v := rng.Float64() * 100
		pts[i] = []float64{v, v, v}
	}
	u := Dimension(pts, metric.Euclidean, Options{Seed: 1})
	if u < 0.7 || u > 1.3 {
		t.Errorf("diagonal line: u=%v, want ≈1", u)
	}
}

func TestDimensionOfPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 3000)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	u := Dimension(pts, metric.Euclidean, Options{Seed: 2})
	if u < 1.6 || u > 2.4 {
		t.Errorf("uniform 2-d: u=%v, want ≈2", u)
	}
}

func TestDimensionOfCube3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 4000)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	u := Dimension(pts, metric.Euclidean, Options{Seed: 3})
	if u < 2.3 || u > 3.7 {
		t.Errorf("uniform 3-d: u=%v, want ≈3", u)
	}
}

func TestDimensionDegenerateInputs(t *testing.T) {
	if u := Dimension(nil, metric.Euclidean, Options{}); u != 0 {
		t.Errorf("empty: u=%v, want 0", u)
	}
	two := [][]float64{{0}, {1}}
	if u := Dimension(two, metric.Euclidean, Options{}); u != 0 {
		t.Errorf("n=2: u=%v, want 0", u)
	}
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	if u := Dimension(same, metric.Euclidean, Options{}); u != 0 {
		t.Errorf("zero diameter: u=%v, want 0", u)
	}
}

func TestDimensionDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([][]float64, 1500)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	u1 := Dimension(pts, metric.Euclidean, Options{Seed: 9})
	u2 := Dimension(pts, metric.Euclidean, Options{Seed: 9})
	if u1 != u2 {
		t.Errorf("same seed gave %v and %v", u1, u2)
	}
}

func TestDimensionNondimensionalStrings(t *testing.T) {
	// Random 8-letter strings over a 4-letter alphabet under edit distance:
	// the estimator must run (and return something positive) with no
	// coordinates at all.
	rng := rand.New(rand.NewSource(5))
	words := make([]string, 400)
	letters := []byte("acgt")
	for i := range words {
		b := make([]byte, 8)
		for j := range b {
			b[j] = letters[rng.Intn(4)]
		}
		words[i] = string(b)
	}
	u := Dimension(words, metric.Levenshtein, Options{Seed: 5, Sample: 200})
	if u <= 0 {
		t.Errorf("string dataset: u=%v, want > 0", u)
	}
}

func TestExpectedRuntimeSlope(t *testing.T) {
	cases := []struct{ u, want float64 }{
		{1, 1}, {0.5, 1}, {2, 1.5}, {4, 1.75}, {20, 1.95}, {50, 1.98},
	}
	for _, c := range cases {
		if got := ExpectedRuntimeSlope(c.u); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ExpectedRuntimeSlope(%v)=%v, want %v", c.u, got, c.want)
		}
	}
}

func TestSlopeFitsPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // slope 2
	if got := slope(x, y); math.Abs(got-2) > 1e-12 {
		t.Errorf("slope=%v, want 2", got)
	}
	if got := slope([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("degenerate slope=%v, want 0", got)
	}
}
