package dualjoin

import (
	"sync"

	"mccatch/internal/parallel"
)

// This file holds the cross-join half of the shared machinery: where the
// self-join accumulates additive per-radius count differences (Acc /
// CountMatrix), the cross-join accumulates per-query MINIMUM radius
// indices — the first radius of the schedule at which a query of the
// outer set meets an element of the indexed set. Minima merge
// commutatively just like sums, so the same pooled-unit scheduling keeps
// the result identical for every worker count; and because every credit
// is a valid upper bound on a query's true first index, accumulators can
// be reused across units without resetting.

// MinAcc collects one traversal unit's bridge bounds: a flat per-query
// best-index row plus lazily recorded per-subtree bounds (pushed down to
// every query under the node during the final merge). N is the backend's
// node-pointer type. Like Acc, the fields are exported raw and every
// backend writes its credits directly — crediting sits in the innermost
// loop of the join, and a method on a generic receiver goes through a
// dictionary the compiler will not inline. A point credit lowers
// Best[id] to b if smaller; a node credit lowers Nodes[n] the same way
// (allocating the entry on first use). Both rows start at len(radii),
// the "never meets an indexed element" sentinel.
type MinAcc[N comparable] struct {
	Best  []int     // query id → smallest credited radius index
	Nodes map[N]int // subtree → smallest wholesale radius index
}

// FirstMatrix runs units traversal units across the worker budget with
// pooled MinAccs and assembles firsts[id] — the smallest radius index
// credited to query id by any unit, or a (the sentinel) when no unit
// credited it — for a radii and n queries. visit performs unit u's
// traversal, crediting into acc; pushSubtree pushes a wholesale bound
// down to every query under a node — for each query id under it, it must
// lower merged[id] to bound if that is smaller (a direct recursion in
// each backend, mirroring CountMatrix's addSubtree). Minima are
// commutative and idempotent, so the result is identical for every
// worker count and unit schedule.
func FirstMatrix[N comparable](a, n, workers, units int,
	visit func(u int, acc *MinAcc[N]),
	pushSubtree func(node N, bound int, merged []int)) []int {

	firsts := make([]int, n)
	for i := range firsts {
		firsts[i] = a
	}
	if n == 0 || units == 0 {
		return firsts
	}
	var mu sync.Mutex
	var accs []*MinAcc[N]
	pool := sync.Pool{New: func() any {
		ac := &MinAcc[N]{Best: make([]int, n), Nodes: make(map[N]int)}
		for i := range ac.Best {
			ac.Best[i] = a
		}
		mu.Lock()
		accs = append(accs, ac)
		mu.Unlock()
		return ac
	}}
	parallel.For(workers, units, func(u int) {
		ac := pool.Get().(*MinAcc[N])
		visit(u, ac)
		pool.Put(ac)
	})

	// Merge: minimum of the flat rows, then push the wholesale subtree
	// bounds down to their queries.
	for _, ac := range accs {
		for i, v := range ac.Best {
			if v < firsts[i] {
				firsts[i] = v
			}
		}
		for nd, b := range ac.Nodes {
			pushSubtree(nd, b, firsts)
		}
	}
	return firsts
}
