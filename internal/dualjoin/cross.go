package dualjoin

import (
	"sync"

	"mccatch/internal/parallel"
)

// This file holds the cross-join half of the shared machinery: where the
// self-join accumulates additive per-radius count differences (Acc /
// CountMatrix), the cross-join accumulates per-query MINIMUM radius
// indices — the first radius of the schedule at which a query of the
// outer set meets an element of the indexed set. Like the self-join's,
// the rows are flat: queries live at dense arena positions of the
// throwaway query tree and subtree bounds at its dense node indices, so
// a credit is one compare-and-store and a wholesale bound pushes down
// over the node's contiguous position range. Minima merge commutatively
// just like sums, so the same pooled-unit scheduling keeps the result
// identical for every worker count; and because every credit is a valid
// upper bound on a query's true first index, accumulators can be reused
// across units without resetting.

// MinAcc collects one traversal unit's bridge bounds: a flat per-query
// best-index row (by arena position) plus flat per-subtree bounds (by
// node index, pushed down to the node's positions during the final
// merge). The fields are exported raw and every backend reads and
// writes them directly — crediting sits in the innermost loop of the
// join, and the traversals also CONSULT the rows to clamp later pairs'
// windows from above (any credit is a valid upper bound, so a worker
// seeing only its own credits stays exact). Both rows start at
// len(radii), the "never meets an indexed element" sentinel.
type MinAcc struct {
	Best     []int32 // query position → smallest credited radius index
	NodeBest []int32 // query-tree node index → smallest wholesale bound
}

// FirstMatrix runs units traversal units across the worker budget with
// pooled MinAccs and assembles firsts[id] — the smallest radius index
// credited to query id by any unit, or a (the sentinel) when no unit
// credited it — for a radii, n query positions and nodes query-tree
// arena nodes. visit performs unit u's traversal, crediting into acc;
// elemRange returns the contiguous position range of the queries under
// a node and idOf maps a position to its query id, exactly as in
// CountMatrix. Minima are commutative and idempotent, so the result is
// identical for every worker count and unit schedule.
func FirstMatrix(a, n, nodes, workers, units int,
	visit func(u int, acc *MinAcc),
	elemRange func(node int32) (int32, int32),
	idOf func(pos int32) int) []int {

	firsts := make([]int, n)
	for i := range firsts {
		firsts[i] = a
	}
	if n == 0 || units == 0 {
		return firsts
	}
	var mu sync.Mutex
	var accs []*MinAcc
	pool := sync.Pool{New: func() any {
		ac := &MinAcc{Best: make([]int32, n), NodeBest: make([]int32, nodes)}
		for i := range ac.Best {
			ac.Best[i] = int32(a)
		}
		for i := range ac.NodeBest {
			ac.NodeBest[i] = int32(a)
		}
		mu.Lock()
		accs = append(accs, ac)
		mu.Unlock()
		return ac
	}}
	parallel.For(workers, units, func(u int) {
		ac := pool.Get().(*MinAcc)
		visit(u, ac)
		pool.Put(ac)
	})

	// Merge: minimum of the flat position rows, push the wholesale
	// subtree bounds down over their contiguous position ranges, then
	// map positions to query ids.
	best := make([]int32, n)
	for i := range best {
		best[i] = int32(a)
	}
	for _, ac := range accs {
		for p, v := range ac.Best {
			if v < best[p] {
				best[p] = v
			}
		}
		for d, b := range ac.NodeBest {
			if b >= int32(a) {
				continue
			}
			first, last := elemRange(int32(d))
			for p := first; p < last; p++ {
				if b < best[p] {
					best[p] = b
				}
			}
		}
	}
	for p, v := range best {
		firsts[idOf(int32(p))] = int(v)
	}
	return firsts
}
