package dualjoin

import (
	"testing"
)

// TestShardsFor pins the shard-count heuristic (ROADMAP k): 4 locks per
// worker while that stays useful, capped by shardCap so a many-core
// GOMAXPROCS cannot mint hundreds of per-accumulator buffers, and never
// more shards than rows.
func TestShardsFor(t *testing.T) {
	cases := []struct{ rows, workers, want int }{
		{1000, 1, 4},
		{1000, 4, 16},
		{1000, 16, 64},
		{1000, 64, 64},  // capped: 256 locks would buy nothing
		{1000, 256, 64}, // still capped
		{10, 16, 10},    // row-bounded
		{0, 8, 1},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := shardsFor(c.rows, c.workers); got != c.want {
			t.Errorf("shardsFor(%d, %d) = %d, want %d", c.rows, c.workers, got, c.want)
		}
	}
}

// benchShardLoad drives CountMatrix's buffered parallel mode with a
// synthetic credit flood sized like a mid-size self-join: every unit
// issues enough point credits to force repeated mid-traversal flushes,
// which is where the shard count matters (flush lock traffic vs
// per-accumulator buffer bookkeeping).
func benchShardLoad(b *testing.B, workers int) {
	const a, n, nodes, units = 8, 20000, 512, 64
	visit := func(u int, acc *Acc) {
		base := int32(u * 997 % n)
		for k := 0; k < 40000; k++ {
			pos := (base + int32(k*31)) % n
			from := k % a
			acc.CreditPos(pos, from, a, 1)
			if k%64 == 0 {
				acc.CreditNode(int32((u+k)%nodes), from, a, 1)
			}
		}
	}
	elemRange := func(d int32) (int32, int32) {
		f := (int32(d) * 7) % n
		return f, f + 16
	}
	idOf := func(pos int32) int { return int(pos) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountMatrix(a, n, nodes, workers, units, visit, elemRange, idOf)
	}
}

// BenchmarkCountMatrixShardsCapped and BenchmarkCountMatrixShardsWide
// are the ROADMAP (k) pair: identical credit floods through the capped
// heuristic (shardCap = 64) and through the pre-cap sizing (4·workers,
// unbounded — emulated by lifting the cap for the run). The heuristic
// must be no slower; on many-core runners it also bounds per-worker
// buffer memory, which the fixed sizing did not.
func BenchmarkCountMatrixShardsCapped(b *testing.B) {
	benchShardLoad(b, 32)
}

func BenchmarkCountMatrixShardsWide(b *testing.B) {
	old := shardCap
	shardCap = 1 << 30
	defer func() { shardCap = old }()
	benchShardLoad(b, 32)
}
