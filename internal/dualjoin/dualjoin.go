// Package dualjoin provides the machinery shared by the dual-tree joins
// of the three index backends: the SELF-join (index.SelfMultiCounter —
// every indexed element's neighbor counts at every radius) and the
// CROSS-join (index.CrossMultiCounter — for every query of a second set,
// the first radius with an indexed neighbor). Both walk the full radius
// schedule once with per-pair window narrowing; what lives here is
// everything the traversals share: per-worker accumulators (additive
// difference rows for the self-join, min-bound rows for the cross-join),
// their pooled scheduling across traversal units, the commutative merges,
// the window-narrowing step, and the min/max bounds between bounding
// boxes. Each backend keeps only what is genuinely its own — the
// subtree-pair classification geometry — so a fix to the crediting or
// merge logic lands in one place and cannot diverge the backends the
// equivalence tests promise are identical.
package dualjoin

import (
	"sync"

	"mccatch/internal/parallel"
)

// Acc collects one traversal unit's credits: flat per-element difference
// rows plus lazily allocated per-subtree accumulators for wholesale
// credits (pushed down to every element under the node during the final
// merge). N is the backend's node-pointer type. The fields are exported
// raw — the backends' traversals write them directly, because crediting
// sits in the innermost loop of the join and a method on a generic
// receiver goes through a dictionary the compiler will not inline
// (measured ~10% on the 10k×2d pipeline).
type Acc[N comparable] struct {
	Stride int   // len(radii) + 1
	Point  []int // element id i, radius e → Point[i*Stride+e]
	Nodes  map[N][]int
}

// CreditPoint adds cnt to element id's count at every radius in
// [from, to). Convenience for cold call sites; hot paths inline the two
// writes themselves.
func (a *Acc[N]) CreditPoint(id, from, to, cnt int) {
	row := a.Point[id*a.Stride:]
	row[from] += cnt
	row[to] -= cnt
}

// NodeRow returns n's wholesale difference row, allocating it on first
// use. Hot paths cache the returned slice's writes the same way.
func (a *Acc[N]) NodeRow(n N) []int {
	diff := a.Nodes[n]
	if diff == nil {
		diff = make([]int, a.Stride)
		a.Nodes[n] = diff
	}
	return diff
}

// CountMatrix runs units traversal units across the worker budget with
// pooled accumulators and assembles counts[e][i] for a radii and n
// elements. visit performs unit u's traversal, crediting into acc;
// addSubtree pushes a wholesale difference row down to every element
// under a node — for each element id it must add diff into
// merged[id*len(diff):] (a direct recursion in each backend: the merge
// touches every credited element, so a per-id closure would be measurable
// overhead). The pool keeps every accumulator it ever creates on a list,
// so the merge sees all of them no matter how units were scheduled, and
// every credit is an integer add — commutative — so the result is
// identical for every worker count.
func CountMatrix[N comparable](a, n, workers, units int,
	visit func(u int, acc *Acc[N]),
	addSubtree func(node N, diff, merged []int)) [][]int {

	counts := make([][]int, a)
	for e := range counts {
		counts[e] = make([]int, n)
	}
	if a == 0 || n == 0 || units == 0 {
		return counts
	}
	stride := a + 1
	var mu sync.Mutex
	var accs []*Acc[N]
	pool := sync.Pool{New: func() any {
		ac := &Acc[N]{Stride: stride, Point: make([]int, n*stride), Nodes: make(map[N][]int)}
		mu.Lock()
		accs = append(accs, ac)
		mu.Unlock()
		return ac
	}}
	parallel.For(workers, units, func(u int) {
		ac := pool.Get().(*Acc[N])
		visit(u, ac)
		pool.Put(ac)
	})

	// Merge: sum the flat rows, push the wholesale subtree credits down
	// to their elements, then prefix-sum each element's difference row.
	merged := make([]int, n*stride)
	for _, ac := range accs {
		for i, v := range ac.Point {
			merged[i] += v
		}
		for nd, diff := range ac.Nodes {
			addSubtree(nd, diff, merged)
		}
	}
	parallel.For(workers, n, func(i int) {
		run := 0
		row := merged[i*stride:]
		for e := 0; e < a; e++ {
			run += row[e]
			counts[e][i] = run
		}
	})
	return counts
}

// Window narrows the radius window [lo, hi) for a pair of subtrees whose
// element distances (in whatever unit the caller's schedule uses — plain
// for metric balls, squared for box bounds) all lie in [dmin, dmax]:
// radii below the returned from cannot reach any pair, and radii at and
// above the returned settled contain every pair, so the caller can credit
// them wholesale and recurse only on [from, settled). The thresholds are
// scanned linearly — the schedule is tiny (a ≤ ~15) and both predicates
// are monotone in the radius, so the scans stop early. The cross-joins of
// every backend classify through this one function; the self-joins
// predate it and keep the same two scans inlined in their hot visit
// loops — when changing the boundary semantics here, change them there
// too (kdtree/rtree/slimtree dualjoin.go).
func Window(radii []float64, dmin, dmax float64, lo, hi int) (from, settled int) {
	for lo < hi && dmin > radii[lo] {
		lo++ // the pair is fully separated at the smallest radii
	}
	nh := lo
	for nh < hi && dmax > radii[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	return lo, nh
}

// SqMinMaxBoxBox returns the smallest and largest SQUARED Euclidean
// distances between any two points of the axis-aligned boxes [alo, ahi]
// and [blo, bhi]. With alo == blo and ahi == bhi it degenerates to
// (0, squared box diagonal) — the self-pair bounds.
func SqMinMaxBoxBox(alo, ahi, blo, bhi []float64) (smin, smax float64) {
	for j := range alo {
		if g := blo[j] - ahi[j]; g > 0 {
			smin += g * g
		} else if g := alo[j] - bhi[j]; g > 0 {
			smin += g * g
		}
		far := ahi[j] - blo[j]
		if f := bhi[j] - alo[j]; f > far {
			far = f
		}
		smax += far * far
	}
	return smin, smax
}

// SqBoxDiag is the squared diagonal of the box [lo, hi] — the largest
// squared distance any pair of points inside it can realize.
func SqBoxDiag(lo, hi []float64) float64 {
	s := 0.0
	for j := range lo {
		d := hi[j] - lo[j]
		s += d * d
	}
	return s
}
