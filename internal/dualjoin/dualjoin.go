// Package dualjoin provides the machinery shared by the dual-tree joins
// of the three index backends: the SELF-join (index.SelfMultiCounter —
// every indexed element's neighbor counts at every radius) and the
// CROSS-join (index.CrossMultiCounter — for every query of a second set,
// the first radius with an indexed neighbor). Both walk the full radius
// schedule once with per-pair window narrowing; what lives here is
// everything the traversals share: the credit accumulators, their pooled
// scheduling across traversal units, the commutative merges, the
// window-narrowing step, and the min/max bounds between bounding boxes.
//
// Since the backends moved to flat arena layouts, every tree identifies
// its nodes by dense int32 indices and stores the elements under a
// subtree as ONE contiguous range of "positions" (the arena's packed
// element order). The accumulators exploit both: credits address flat
// rows by position or node index — no maps, no pointer keys — and a
// wholesale subtree credit is pushed down by a linear walk over the
// node's position range, shared here instead of re-implemented as a
// recursion in every backend.
//
// Memory model (ROADMAP d): CountMatrix keeps ONE merged difference
// matrix for the whole join — never one full matrix per pooled
// accumulator. A serial run writes it in place; a parallel run gives
// each worker fixed-budget per-shard credit buffers that flush into the
// shared matrix under that shard's lock, so per-worker peak memory is
// O(n·a/workers) (plus a constant per shard) instead of O(n·a). Every
// credit is a commutative integer add, so the result is identical for
// every worker count and flush interleaving.
package dualjoin

import (
	"sync"

	"mccatch/internal/kernel"
	"mccatch/internal/parallel"
)

// quadStride is the flat encoding of one buffered credit:
// (row index, from, to, count) as four int32s.
const quadStride = 4

// minShardQuads is the smallest per-shard buffer; below it the flush
// locks would outweigh the buffered adds.
const minShardQuads = 64

// BudgetHook, when non-nil, receives the buffered-mode sizing of every
// parallel CountMatrix call: the resolved worker count, the shard counts
// and the per-worker buffer budget in quads. Tests use it to pin the
// O(n·a/workers) per-worker bound; production leaves it nil.
var BudgetHook func(workers, pointShards, nodeShards, quadsPerWorker int)

// matrices is the shared credit sink of one CountMatrix call: the merged
// per-position difference rows, the per-node wholesale rows, and the
// shard locks parallel workers flush under.
type matrices struct {
	stride  int
	point   []int // position p, radius e → point[p*stride+e]
	node    []int // node index d, radius e → node[d*stride+e]
	pointMu []sync.Mutex
	nodeMu  []sync.Mutex
	// pointsPerShard / nodesPerShard map a row index to its lock.
	pointsPerShard, nodesPerShard int
}

// Acc is one worker's credit sink. In direct mode (serial runs) the
// credits go straight into the shared matrices, held right on the Acc so
// the fast path is two indexed adds; in buffered mode each credit is
// appended to a small per-shard buffer that flushes into the shared
// matrix under that shard's lock when full. Crediting sits in the
// innermost loop of every join, so the methods are concrete (the former
// generic accumulator went through a dictionary the compiler would not
// inline) and the buffered slow path lives in separate functions to keep
// CreditPos/CreditNode within the inlining budget.
type Acc struct {
	Stride int // len(radii) + 1
	// Point and Node are the shared matrices themselves in direct mode
	// (element position p's difference row is Point[p*Stride:], node d's
	// is Node[d*Stride:]) and nil in buffered mode. They are exported
	// raw: crediting sits in the innermost loops of the joins, and the
	// method call below — with its buffered fallback — exceeds the
	// inlining budget, so the backends' hottest credit sites write the
	// two row adds directly when Point is non-nil and fall back to
	// CreditPos/CreditNode otherwise.
	Point, Node []int
	m           *matrices
	// buffered mode: flat quads per shard, fixed capacity each.
	pointBuf [][]int32
	nodeBuf  [][]int32
	shardCap int
}

// CreditPos adds cnt to the element position's count at every radius in
// [from, to).
func (a *Acc) CreditPos(pos int32, from, to, cnt int) {
	if row := a.Point; row != nil {
		row = row[int(pos)*a.Stride:]
		row[from] += cnt
		row[to] -= cnt
		return
	}
	a.bufferPos(pos, from, to, cnt)
}

// CreditNode adds cnt wholesale to every element under node at every
// radius in [from, to); the range is pushed down to the node's positions
// during the final merge.
func (a *Acc) CreditNode(node int32, from, to, cnt int) {
	if row := a.Node; row != nil {
		row = row[int(node)*a.Stride:]
		row[from] += cnt
		row[to] -= cnt
		return
	}
	a.bufferNode(node, from, to, cnt)
}

func (a *Acc) bufferPos(pos int32, from, to, cnt int) {
	s := int(pos) / a.m.pointsPerShard
	a.pointBuf[s] = append(a.pointBuf[s], pos, int32(from), int32(to), int32(cnt))
	if len(a.pointBuf[s]) >= a.shardCap*quadStride {
		a.flushPoint(s)
	}
}

func (a *Acc) bufferNode(node int32, from, to, cnt int) {
	s := int(node) / a.m.nodesPerShard
	a.nodeBuf[s] = append(a.nodeBuf[s], node, int32(from), int32(to), int32(cnt))
	if len(a.nodeBuf[s]) >= a.shardCap*quadStride {
		a.flushNode(s)
	}
}

func applyQuads(dst []int, stride int, buf []int32) {
	for i := 0; i+3 < len(buf); i += quadStride {
		row := dst[int(buf[i])*stride:]
		row[buf[i+1]] += int(buf[i+3])
		row[buf[i+2]] -= int(buf[i+3])
	}
}

func (a *Acc) flushPoint(s int) {
	a.m.pointMu[s].Lock()
	applyQuads(a.m.point, a.Stride, a.pointBuf[s])
	a.m.pointMu[s].Unlock()
	a.pointBuf[s] = a.pointBuf[s][:0]
}

func (a *Acc) flushNode(s int) {
	a.m.nodeMu[s].Lock()
	applyQuads(a.m.node, a.Stride, a.nodeBuf[s])
	a.m.nodeMu[s].Unlock()
	a.nodeBuf[s] = a.nodeBuf[s][:0]
}

// flushAll drains every remaining buffered credit into the shared
// matrices; CountMatrix calls it once per pooled accumulator after the
// traversal units finish.
func (a *Acc) flushAll() {
	if a.Point != nil {
		return
	}
	for s := range a.pointBuf {
		if len(a.pointBuf[s]) > 0 {
			a.flushPoint(s)
		}
	}
	for s := range a.nodeBuf {
		if len(a.nodeBuf[s]) > 0 {
			a.flushNode(s)
		}
	}
}

// shardCap bounds the shard count regardless of the worker budget
// (ROADMAP k). The default 4·workers sizing came from GOMAXPROCS-sized
// worker pools on small machines; on a many-core host it would mint
// hundreds of shards, and since every pooled accumulator keeps one
// buffer per shard, per-worker memory and flush bookkeeping grow with
// the shard count while the contention relief beyond a few dozen locks
// is already negligible (each flush holds its lock for a bounded burst
// of integer adds). 64 shards keep the expected lock collision rate
// under ~2% even with 4 workers flushing constantly, and
// BenchmarkCountMatrixShards{Capped,Wide} pins that the cap is no
// slower than the uncapped sizing it replaces. Declared as a variable
// only so that benchmark pair can widen it in-process; nothing else may
// write it.
var shardCap = 64

// shardsFor splits rows across one lock per ~rowsPerWorker rows: 4 locks
// per worker (so a worker colliding on one shard has dozens of others to
// flush meanwhile), capped above by shardCap — the GOMAXPROCS-derived
// worker count stops driving the shard count past the point of usefulness
// — and below by the row count so tiny inputs do not drown in mutexes.
func shardsFor(rows, workers int) int {
	shards := 4 * workers
	if shards > shardCap {
		shards = shardCap
	}
	if shards > rows {
		shards = rows
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// CountMatrix runs units traversal units across the worker budget and
// assembles counts[e][id] for a radii, n element positions and nodes
// arena nodes. visit performs unit u's traversal, crediting into acc;
// elemRange returns the contiguous position range [first, last) of the
// elements under a node (the arena layouts guarantee contiguity), and
// idOf maps a position to its element id. The merged matrix exists ONCE
// regardless of the worker count: serial runs write it directly, and
// parallel workers buffer credits per shard — O(n·a/workers) per worker
// — flushing under shard locks. Credits are commutative integer adds,
// so the result is identical for every worker count.
func CountMatrix(a, n, nodes, workers, units int,
	visit func(u int, acc *Acc),
	elemRange func(node int32) (int32, int32),
	idOf func(pos int32) int) [][]int {

	counts := make([][]int, a)
	for e := range counts {
		counts[e] = make([]int, n)
	}
	if a == 0 || n == 0 || units == 0 {
		return counts
	}
	stride := a + 1
	w := parallel.Workers(workers)
	if w > units {
		w = units
	}
	m := &matrices{
		stride: stride,
		point:  make([]int, n*stride),
		node:   make([]int, nodes*stride),
	}
	if w <= 1 {
		acc := &Acc{Stride: stride, Point: m.point, Node: m.node}
		for u := 0; u < units; u++ {
			visit(u, acc)
		}
	} else {
		pShards := shardsFor(n, w)
		nShards := shardsFor(nodes, w)
		m.pointsPerShard = (n + pShards - 1) / pShards
		m.nodesPerShard = (nodes + nShards - 1) / nShards
		if m.nodesPerShard < 1 {
			m.nodesPerShard = 1
		}
		m.pointMu = make([]sync.Mutex, pShards)
		m.nodeMu = make([]sync.Mutex, nShards)
		// Per-worker budget: one worker's buffers hold at most ~1/w of the
		// merged matrix (in quads), floored per shard so flushes stay
		// amortized — the O(n·a/workers) bound of ROADMAP (d).
		budget := (n + nodes) * stride / (2 * w)
		shardCap := budget / (pShards + nShards)
		if shardCap < minShardQuads {
			shardCap = minShardQuads
		}
		if BudgetHook != nil {
			BudgetHook(w, pShards, nShards, shardCap*(pShards+nShards))
		}
		var mu sync.Mutex
		var accs []*Acc
		pool := sync.Pool{New: func() any {
			ac := &Acc{Stride: stride, m: m, shardCap: shardCap,
				pointBuf: make([][]int32, pShards),
				nodeBuf:  make([][]int32, nShards)}
			for s := range ac.pointBuf {
				ac.pointBuf[s] = make([]int32, 0, shardCap*quadStride)
			}
			for s := range ac.nodeBuf {
				ac.nodeBuf[s] = make([]int32, 0, shardCap*quadStride)
			}
			mu.Lock()
			accs = append(accs, ac)
			mu.Unlock()
			return ac
		}}
		parallel.For(w, units, func(u int) {
			ac := pool.Get().(*Acc)
			visit(u, ac)
			pool.Put(ac)
		})
		for _, ac := range accs {
			ac.flushAll()
		}
	}

	// Push the wholesale node credits down to their contiguous position
	// ranges, then prefix-sum each position's difference row into the
	// id-keyed result.
	for d := 0; d < nodes; d++ {
		row := m.node[d*stride : d*stride+stride]
		dirty := false
		for _, v := range row {
			if v != 0 {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		first, last := elemRange(int32(d))
		for p := first; p < last; p++ {
			dst := m.point[int(p)*stride:]
			for k, v := range row {
				dst[k] += v
			}
		}
	}
	parallel.For(workers, n, func(p int) {
		run := 0
		row := m.point[p*stride:]
		id := idOf(int32(p))
		for e := 0; e < a; e++ {
			run += row[e]
			counts[e][id] = run
		}
	})
	return counts
}

// Window narrows the radius window [lo, hi) for a pair of subtrees whose
// element distances (in whatever unit the caller's schedule uses — plain
// for metric balls, squared for box bounds) all lie in [dmin, dmax]:
// radii below the returned from cannot reach any pair, and radii at and
// above the returned settled contain every pair, so the caller can credit
// them wholesale and recurse only on [from, settled). The thresholds are
// scanned linearly — the schedule is tiny (a ≤ ~15) and both predicates
// are monotone in the radius, so the scans stop early. The cross-joins of
// every backend classify through this one function; the self-joins
// predate it and keep the same two scans inlined in their hot visit
// loops — when changing the boundary semantics here, change them there
// too (kdtree/rtree/slimtree dualjoin.go).
func Window(radii []float64, dmin, dmax float64, lo, hi int) (from, settled int) {
	for lo < hi && dmin > radii[lo] {
		lo++ // the pair is fully separated at the smallest radii
	}
	nh := lo
	for nh < hi && dmax > radii[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	return lo, nh
}

// sqScratch pools the squared-radius schedules of AppendMultiCounts, so
// steady-state batched probes allocate nothing.
var sqScratch = sync.Pool{
	New: func() any { s := make([]float64, 0, 16); return &s },
}

// AppendMultiCounts is the difference-array scaffolding every backend's
// RangeCountMultiAppend shares: it appends len(radii)+1 zeroed slots to
// dst (the counts plus the difference array's sentinel), hands visit the
// schedule — squared through a pooled scratch slice when squared is true
// (the box-bound backends compare squared distances), the caller's own
// schedule otherwise — along with the difference row to credit,
// prefix-sums the row and returns dst trimmed to the counts. With a warm
// dst a probe allocates zero bytes. Centralizing this here keeps the
// credit/prefix-sum semantics from diverging across the backends.
func AppendMultiCounts(radii []float64, dst []int, squared bool, visit func(sched []float64, diff []int)) []int {
	a := len(radii)
	base := len(dst)
	for i := 0; i <= a; i++ {
		dst = append(dst, 0)
	}
	diff := dst[base:]
	if a > 0 {
		if squared {
			sp := sqScratch.Get().(*[]float64)
			r2 := (*sp)[:0]
			for _, r := range radii {
				r2 = append(r2, r*r)
			}
			visit(r2, diff)
			*sp = r2
			sqScratch.Put(sp)
		} else {
			visit(radii, diff)
		}
	}
	for e := 1; e < a; e++ {
		diff[e] += diff[e-1]
	}
	return dst[:base+a]
}

// SqMinMaxPointBox returns the smallest and largest SQUARED Euclidean
// distances from point q to the axis-aligned box [lo, hi]. The
// implementation lives in internal/kernel with the rest of the distance
// kernels; this wrapper (which inlines to a direct call) keeps the
// historical dualjoin API for callers outside the backends.
func SqMinMaxPointBox(q, lo, hi []float64) (smin, smax float64) {
	return kernel.SqMinMaxPointBox(q, lo, hi)
}

// SqMinMaxBoxBox returns the smallest and largest SQUARED Euclidean
// distances between any two points of the axis-aligned boxes [alo, ahi]
// and [blo, bhi]; see kernel.SqMinMaxBoxBox.
func SqMinMaxBoxBox(alo, ahi, blo, bhi []float64) (smin, smax float64) {
	return kernel.SqMinMaxBoxBox(alo, ahi, blo, bhi)
}

// SqBoxDiag is the squared diagonal of the box [lo, hi]; see
// kernel.SqBoxDiag.
func SqBoxDiag(lo, hi []float64) float64 {
	return kernel.SqBoxDiag(lo, hi)
}
