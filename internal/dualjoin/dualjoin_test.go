package dualjoin

import (
	"math/rand"
	"reflect"
	"testing"
)

// The backends' equivalence suites prove the joins end to end; these
// tests pin the shared machinery's own contracts — window narrowing,
// box bounds, the two accumulator merges, and the buffered mode's
// per-worker memory bound — directly, so a future backend gets them
// pre-verified.

func TestWindow(t *testing.T) {
	radii := []float64{1, 2, 4, 8}
	cases := []struct {
		dmin, dmax   float64
		lo, hi       int
		from, settle int
	}{
		{0, 0.5, 0, 4, 0, 0}, // settles everywhere immediately
		{0, 100, 0, 4, 0, 4}, // straddles the whole schedule
		{3, 3, 0, 4, 2, 2},   // a single distance: its bucket
		{9, 10, 0, 4, 4, 4},  // beyond every radius: empty window
		{0, 5, 2, 4, 2, 3},   // only the suffix is open
		{1.5, 3, 1, 1, 1, 1}, // empty incoming window stays empty
		{1, 1, 0, 4, 0, 0},   // dmin == radius: inclusive, not separated
	}
	for i, c := range cases {
		from, settle := Window(radii, c.dmin, c.dmax, c.lo, c.hi)
		if from != c.from || settle != c.settle {
			t.Errorf("case %d: Window([%v,%v], [%d,%d)) = (%d, %d), want (%d, %d)",
				i, c.dmin, c.dmax, c.lo, c.hi, from, settle, c.from, c.settle)
		}
	}
}

func TestSqMinMaxBoxBox(t *testing.T) {
	// Disjoint boxes on one axis: gap 2, farthest corners 7 apart.
	smin, smax := SqMinMaxBoxBox([]float64{0}, []float64{1}, []float64{3}, []float64{7})
	if smin != 4 || smax != 49 {
		t.Errorf("disjoint: (%v, %v), want (4, 49)", smin, smax)
	}
	// Identical boxes degenerate to (0, squared diagonal).
	lo, hi := []float64{0, 0}, []float64{3, 4}
	smin, smax = SqMinMaxBoxBox(lo, hi, lo, hi)
	if smin != 0 || smax != 25 {
		t.Errorf("self: (%v, %v), want (0, 25)", smin, smax)
	}
	if d := SqBoxDiag(lo, hi); d != 25 {
		t.Errorf("SqBoxDiag = %v, want 25", d)
	}
	// Overlapping boxes: min distance 0.
	smin, _ = SqMinMaxBoxBox([]float64{0, 0}, []float64{2, 2}, []float64{1, 1}, []float64{3, 3})
	if smin != 0 {
		t.Errorf("overlapping: smin = %v, want 0", smin)
	}
}

// The synthetic arena the merge tests run on: 4 element positions with
// the identity position→id map, plus one "node" 0 covering positions
// [1, 3) — the contiguous-range contract every backend arena satisfies.
func testRange(node int32) (int32, int32) { return 1, 3 }
func testIDOf(pos int32) int              { return int(pos) }

// TestCountMatrixMergesAcrossWorkers drives CountMatrix with synthetic
// units — point credits plus a wholesale node credit — and checks the
// assembled matrix is the prefix-summed union at every worker count,
// covering both the serial direct-write mode and the parallel buffered
// mode.
func TestCountMatrixMergesAcrossWorkers(t *testing.T) {
	const a, n, units = 3, 4, 6
	visit := func(u int, acc *Acc) {
		acc.CreditPos(int32(u%n), 0, a, 1) // each unit credits one element everywhere
		if u == 2 {
			acc.CreditNode(0, 1, a, 5) // positions 1, 2 gain 5 at radii [1, 3)
		}
	}
	var want [][]int
	for _, workers := range []int{1, 2, 8} {
		got := CountMatrix(a, n, 1, workers, units, visit, testRange, testIDOf)
		if want == nil {
			want = got
			// Spot-check the serial result itself: element 0 was credited
			// by units 0 and 4, element 1 by units 1 and 5 plus the node
			// credit from radius 1 on, elements 2 and 3 by one unit each.
			if got[0][0] != 2 || got[0][1] != 2 || got[1][1] != 7 || got[2][2] != 6 || got[0][3] != 1 {
				t.Fatalf("unexpected serial matrix %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: matrix %v differs from serial %v", workers, got, want)
		}
	}
	empty := CountMatrix(0, 0, 0, 1, 0, visit, testRange, testIDOf)
	if len(empty) != 0 {
		t.Errorf("degenerate CountMatrix: %v, want empty", empty)
	}
}

// TestCountMatrixRandomized floods CountMatrix with random credit
// schedules heavy enough to force buffer flushes mid-traversal and
// cross-checks every worker count against the brute-force union.
func TestCountMatrixRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		a := 1 + rng.Intn(8)
		n := 1 + rng.Intn(60)
		nodes := 1 + rng.Intn(8)
		units := 1 + rng.Intn(20)
		ranges := make([][2]int32, nodes)
		for d := range ranges {
			f := rng.Intn(n)
			l := f + rng.Intn(n-f)
			ranges[d] = [2]int32{int32(f), int32(l)}
		}
		type credit struct{ pos, from, to, cnt, node int }
		perUnit := make([][]credit, units)
		want := make([][]int, a)
		for e := range want {
			want[e] = make([]int, n)
		}
		apply := func(pos, from, to, cnt int) {
			for e := from; e < to && e < a; e++ {
				want[e][pos] += cnt
			}
		}
		for u := range perUnit {
			for k := 200 + rng.Intn(400); k > 0; k-- {
				c := credit{pos: rng.Intn(n), from: rng.Intn(a), cnt: 1 + rng.Intn(3), node: -1}
				c.to = c.from + 1 + rng.Intn(a-c.from)
				if rng.Intn(8) == 0 {
					c.node = rng.Intn(nodes)
				}
				perUnit[u] = append(perUnit[u], c)
				if c.node >= 0 {
					r := ranges[c.node]
					for p := r[0]; p < r[1]; p++ {
						apply(int(p), c.from, c.to, c.cnt)
					}
				} else {
					apply(c.pos, c.from, c.to, c.cnt)
				}
			}
		}
		visit := func(u int, acc *Acc) {
			for _, c := range perUnit[u] {
				if c.node >= 0 {
					acc.CreditNode(int32(c.node), c.from, c.to, c.cnt)
				} else {
					acc.CreditPos(int32(c.pos), c.from, c.to, c.cnt)
				}
			}
		}
		elemRange := func(d int32) (int32, int32) { return ranges[d][0], ranges[d][1] }
		for _, workers := range []int{1, 3, 8} {
			got := CountMatrix(a, n, nodes, workers, units, visit, elemRange, testIDOf)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: matrix differs from brute force", trial, workers)
			}
		}
	}
}

// TestCountMatrixPerWorkerBudget pins ROADMAP (d)'s memory bound: in
// buffered mode every worker's credit buffers hold at most ~1/workers of
// the merged matrix (plus the per-shard floor), never a full copy.
func TestCountMatrixPerWorkerBudget(t *testing.T) {
	const a, n, nodes, units = 15, 4096, 4096, 64
	stride := a + 1
	for _, workers := range []int{2, 4, 8} {
		var gotWorkers, gotQuads int
		BudgetHook = func(w, pShards, nShards, quadsPerWorker int) {
			gotWorkers, gotQuads = w, quadsPerWorker
		}
		CountMatrix(a, n, nodes, workers, units,
			func(u int, acc *Acc) { acc.CreditPos(int32(u), 0, a, 1) },
			testRange, testIDOf)
		BudgetHook = nil
		if gotWorkers != workers {
			t.Fatalf("workers=%d: hook saw %d", workers, gotWorkers)
		}
		// The merged matrix holds (n+nodes)*stride ints; a worker's buffers
		// must stay within ~1/workers of that (each quad is 4 int32s = 2
		// ints' worth), with the minShardQuads floor as slack.
		bound := (n+nodes)*stride/workers + (4*workers+4*workers)*minShardQuads
		if gotQuads*2 > bound {
			t.Errorf("workers=%d: per-worker buffer %d quads exceeds bound %d ints",
				workers, gotQuads, bound)
		}
	}
}

// TestFirstMatrixMergesMinima drives FirstMatrix with synthetic units and
// checks that point credits, wholesale node credits and the sentinel all
// merge to the same minima at every worker count — including when the
// pooled accumulators are reused across many units.
func TestFirstMatrixMergesMinima(t *testing.T) {
	const a, n, units = 5, 4, 16
	visit := func(u int, acc *MinAcc) {
		if b := int32(4 - u%5); b < acc.Best[0] {
			acc.Best[0] = b // element 0: repeated credits, min 0
		}
		if u == 3 && 2 < acc.NodeBest[0] {
			acc.NodeBest[0] = 2 // elements 1, 2: bound 2 wholesale
		}
		if u == 7 && 3 < acc.NodeBest[0] {
			acc.NodeBest[0] = 3 // worse wholesale bound must not win
		}
		// Element 3 never credited: stays at the sentinel.
	}
	want := []int{0, 2, 2, a}
	for _, workers := range []int{1, 2, 8} {
		got := FirstMatrix(a, n, 1, workers, units, visit, testRange, testIDOf)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: firsts %v, want %v", workers, got, want)
		}
	}
	if got := FirstMatrix(a, 0, 0, 1, units, visit, testRange, testIDOf); len(got) != 0 {
		t.Errorf("no queries: %v, want empty", got)
	}
	if got := FirstMatrix(a, n, 1, 1, 0, visit, testRange, testIDOf); !reflect.DeepEqual(got, []int{a, a, a, a}) {
		t.Errorf("no units: %v, want all-sentinel", got)
	}
}

// TestFirstMatrixRandomizedAgainstSerial cross-checks the pooled merge on
// random credit schedules: whatever the unit/worker interleaving, the
// result equals the brute-force minimum of all credits.
func TestFirstMatrixRandomizedAgainstSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		a := 1 + rng.Intn(12)
		n := 1 + rng.Intn(40)
		units := rng.Intn(30)
		type credit struct{ id, b int }
		perUnit := make([][]credit, units)
		want := make([]int, n)
		for i := range want {
			want[i] = a
		}
		for u := range perUnit {
			for k := rng.Intn(6); k > 0; k-- {
				c := credit{id: rng.Intn(n), b: rng.Intn(a)}
				perUnit[u] = append(perUnit[u], c)
				if c.b < want[c.id] {
					want[c.id] = c.b
				}
			}
		}
		visit := func(u int, acc *MinAcc) {
			for _, c := range perUnit[u] {
				if int32(c.b) < acc.Best[c.id] {
					acc.Best[c.id] = int32(c.b)
				}
			}
		}
		noNodes := func(int32) (int32, int32) { t.Fatal("no node credits in this trial"); return 0, 0 }
		for _, workers := range []int{1, 3} {
			got := FirstMatrix(a, n, 0, workers, units, visit, noNodes, testIDOf)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: %v, want %v", trial, workers, got, want)
			}
		}
	}
}
