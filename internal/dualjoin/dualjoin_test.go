package dualjoin

import (
	"math/rand"
	"reflect"
	"testing"
)

// The backends' equivalence suites prove the joins end to end; these
// tests pin the shared machinery's own contracts — window narrowing,
// box bounds, and the two accumulator merges — directly, so a future
// backend gets them pre-verified.

func TestWindow(t *testing.T) {
	radii := []float64{1, 2, 4, 8}
	cases := []struct {
		dmin, dmax   float64
		lo, hi       int
		from, settle int
	}{
		{0, 0.5, 0, 4, 0, 0}, // settles everywhere immediately
		{0, 100, 0, 4, 0, 4}, // straddles the whole schedule
		{3, 3, 0, 4, 2, 2},   // a single distance: its bucket
		{9, 10, 0, 4, 4, 4},  // beyond every radius: empty window
		{0, 5, 2, 4, 2, 3},   // only the suffix is open
		{1.5, 3, 1, 1, 1, 1}, // empty incoming window stays empty
		{1, 1, 0, 4, 0, 0},   // dmin == radius: inclusive, not separated
	}
	for i, c := range cases {
		from, settle := Window(radii, c.dmin, c.dmax, c.lo, c.hi)
		if from != c.from || settle != c.settle {
			t.Errorf("case %d: Window([%v,%v], [%d,%d)) = (%d, %d), want (%d, %d)",
				i, c.dmin, c.dmax, c.lo, c.hi, from, settle, c.from, c.settle)
		}
	}
}

func TestSqMinMaxBoxBox(t *testing.T) {
	// Disjoint boxes on one axis: gap 2, farthest corners 7 apart.
	smin, smax := SqMinMaxBoxBox([]float64{0}, []float64{1}, []float64{3}, []float64{7})
	if smin != 4 || smax != 49 {
		t.Errorf("disjoint: (%v, %v), want (4, 49)", smin, smax)
	}
	// Identical boxes degenerate to (0, squared diagonal).
	lo, hi := []float64{0, 0}, []float64{3, 4}
	smin, smax = SqMinMaxBoxBox(lo, hi, lo, hi)
	if smin != 0 || smax != 25 {
		t.Errorf("self: (%v, %v), want (0, 25)", smin, smax)
	}
	if d := SqBoxDiag(lo, hi); d != 25 {
		t.Errorf("SqBoxDiag = %v, want 25", d)
	}
	// Overlapping boxes: min distance 0.
	smin, _ = SqMinMaxBoxBox([]float64{0, 0}, []float64{2, 2}, []float64{1, 1}, []float64{3, 3})
	if smin != 0 {
		t.Errorf("overlapping: smin = %v, want 0", smin)
	}
}

// TestCountMatrixMergesAcrossWorkers drives CountMatrix with synthetic
// units — point credits plus a wholesale node credit — and checks the
// assembled matrix is the prefix-summed union at every worker count.
func TestCountMatrixMergesAcrossWorkers(t *testing.T) {
	type nd int // fake node type: one node "0" covering elements 1 and 2
	push := func(node nd, diff, merged []int) {
		for _, id := range []int{1, 2} {
			row := merged[id*len(diff):]
			for k, v := range diff {
				row[k] += v
			}
		}
	}
	const a, n, units = 3, 4, 6
	visit := func(u int, acc *Acc[nd]) {
		acc.CreditPoint(u%n, 0, a, 1) // each unit credits one element everywhere
		if u == 2 {
			row := acc.NodeRow(0) // elements 1, 2 gain 5 at radii [1, 3)
			row[1] += 5
			row[3] -= 5
		}
	}
	var want [][]int
	for _, workers := range []int{1, 2, 8} {
		got := CountMatrix(a, n, workers, units, visit, push)
		if want == nil {
			want = got
			// Spot-check the serial result itself: element 0 was credited
			// by units 0 and 4, element 1 by units 1 and 5 plus the node
			// credit from radius 1 on, elements 2 and 3 by one unit each.
			if got[0][0] != 2 || got[0][1] != 2 || got[1][1] != 7 || got[2][2] != 6 || got[0][3] != 1 {
				t.Fatalf("unexpected serial matrix %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: matrix %v differs from serial %v", workers, got, want)
		}
	}
	empty := CountMatrix(0, 0, 1, 0, visit, push)
	if len(empty) != 0 {
		t.Errorf("degenerate CountMatrix: %v, want empty", empty)
	}
}

// TestFirstMatrixMergesMinima drives FirstMatrix with synthetic units and
// checks that point credits, wholesale node credits and the sentinel all
// merge to the same minima at every worker count — including when the
// pooled accumulators are reused across many units.
func TestFirstMatrixMergesMinima(t *testing.T) {
	type nd int
	push := func(node nd, bound int, merged []int) {
		for _, id := range []int{1, 2} {
			if bound < merged[id] {
				merged[id] = bound
			}
		}
	}
	// Credits are written raw, exactly as the backends write them.
	creditPoint := func(acc *MinAcc[nd], id, b int) {
		if b < acc.Best[id] {
			acc.Best[id] = b
		}
	}
	creditNode := func(acc *MinAcc[nd], n nd, b int) {
		if cur, ok := acc.Nodes[n]; !ok || b < cur {
			acc.Nodes[n] = b
		}
	}
	const a, n, units = 5, 4, 16
	visit := func(u int, acc *MinAcc[nd]) {
		creditPoint(acc, 0, 4-u%5) // element 0: repeated credits, min 0
		if u == 3 {
			creditNode(acc, 0, 2) // elements 1, 2: bound 2 wholesale
		}
		if u == 7 {
			creditNode(acc, 0, 3) // worse wholesale bound must not win
		}
		// Element 3 never credited: stays at the sentinel.
	}
	want := []int{0, 2, 2, a}
	for _, workers := range []int{1, 2, 8} {
		got := FirstMatrix(a, n, workers, units, visit, push)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: firsts %v, want %v", workers, got, want)
		}
	}
	if got := FirstMatrix(a, 0, 1, units, visit, push); len(got) != 0 {
		t.Errorf("no queries: %v, want empty", got)
	}
	if got := FirstMatrix(a, n, 1, 0, visit, push); !reflect.DeepEqual(got, []int{a, a, a, a}) {
		t.Errorf("no units: %v, want all-sentinel", got)
	}
}

// TestFirstMatrixRandomizedAgainstSerial cross-checks the pooled merge on
// random credit schedules: whatever the unit/worker interleaving, the
// result equals the brute-force minimum of all credits.
func TestFirstMatrixRandomizedAgainstSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		a := 1 + rng.Intn(12)
		n := 1 + rng.Intn(40)
		units := rng.Intn(30)
		type credit struct{ id, b int }
		perUnit := make([][]credit, units)
		want := make([]int, n)
		for i := range want {
			want[i] = a
		}
		for u := range perUnit {
			for k := rng.Intn(6); k > 0; k-- {
				c := credit{id: rng.Intn(n), b: rng.Intn(a)}
				perUnit[u] = append(perUnit[u], c)
				if c.b < want[c.id] {
					want[c.id] = c.b
				}
			}
		}
		type nd int
		visit := func(u int, acc *MinAcc[nd]) {
			for _, c := range perUnit[u] {
				if c.b < acc.Best[c.id] {
					acc.Best[c.id] = c.b
				}
			}
		}
		push := func(nd, int, []int) { t.Fatal("no node credits in this trial") }
		for _, workers := range []int{1, 3} {
			got := FirstMatrix(a, n, workers, units, visit, push)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: %v, want %v", trial, workers, got, want)
			}
		}
	}
}
