package slimtree

import (
	"math"

	"mccatch/internal/metric"
	"mccatch/internal/parallel"
)

// This file implements bulk loading: building the whole Slim-tree top-down
// from the full dataset instead of inserting elements one at a time.
//
// The incremental insert path grows node regions greedily — each arriving
// element inflates whichever region is cheapest RIGHT NOW — so covering
// balls end up overlapping badly, and overlapping balls are exactly what
// every query and the dual-tree self-join pay for: a probe that falls in
// the overlap of k sibling regions descends k subtrees. Bulk loading sees
// all elements before committing to any region: each level picks pivots
// from a sample of its elements (k-medoid style: a medoid seed, spread-out
// companions, then a medoid refinement of each tentative cluster) and
// partitions the elements to the nearest pivot under a balance cap, so
// sibling regions are compact, near-disjoint, and the tree height matches
// the information-theoretic minimum. Queries are unchanged: the bulk build
// produces the same node/entry invariants (exact covering radii, stored
// parent distances, subtree counts) the insert path maintains, so every
// traversal — RangeCount, RangeCountMulti, KNN, CountAllMulti, SlimDown —
// runs on it untouched and returns identical results.
//
// Pivot selection draws from ONE global deterministic sample whose
// pairwise distance matrix is computed once up front and shared down the
// recursion: the sampled elements are partitioned into groups along with
// everything else, so a node picks its pivots among the sample members it
// inherited — at zero additional metric evaluations — and only nodes left
// with too thin a share fall back to sampling locally. Pivot quality
// changes only the tree's arrangement, never any query answer, so the
// bulk-vs-insert output identity is unaffected.

// bulkSampleMax bounds the pivot-selection sample per node on the LOCAL
// fallback path. Pivot quality saturates quickly with the sample size
// while the pairwise distance matrix below it grows quadratically; 128
// keeps the matrix ≤ ~8k metric evaluations on the biggest nodes.
const bulkSampleMax = 128

// globalSampleMax bounds the shared global sample; beyond it the
// pairwise matrix would dominate the build, so newGlobalSample bails
// out instead (deep levels fall back to cheap local sampling anyway).
const globalSampleMax = 8 * bulkSampleMax

// globalSample is the build-wide pivot source: a deterministic strided
// sample of the dataset with its pairwise distances computed once.
type globalSample struct {
	slotOf []int32     // element id → sample slot, or -1
	dm     [][]float64 // slot × slot pairwise distances
}

// newGlobalSample sizes the shared sample from the deterministic shape
// of the top two levels and builds it only when it pays. Coverage: each
// second-level node must inherit ~its own pivot count of members, so
// s ≈ 1.5·kRoot·kL2 (the 1.5 absorbs partition imbalance). Cost: the
// one-off matrix (s²/2 evaluations) must undercut the per-node matrices
// it replaces — the root's plus one per second-level node. Where the
// model says the matrix would cost more (large n at this capacity),
// newGlobalSample returns nil and every node samples locally, exactly
// as before the shared sample existed: sharing is an optimization the
// cost model enables, never a tax.
func newGlobalSample[T any](t *Tree[T], items []T, height int) *globalSample {
	n := len(items)
	levelK := func(n, height int) int {
		subcap := 1
		for i := 0; i < height-1; i++ {
			subcap *= t.capacity
		}
		k := (n + subcap - 1) / subcap
		if spread := int(math.Ceil(math.Pow(float64(n), 1/float64(height)))); spread > k {
			k = spread
		}
		if k < 2 {
			k = 2
		}
		if k > t.capacity {
			k = t.capacity
		}
		return k
	}
	kRoot := levelK(n, height)
	group := n / kRoot
	kL2 := levelK(group, height-1)
	s := kRoot * kL2 * 3 / 2
	if s > n {
		s = n
	}
	if s > globalSampleMax {
		return nil // the matrix alone would dominate the build
	}
	local := group
	if local > bulkSampleMax {
		local = bulkSampleMax
	}
	if s*(s-1)/2 > (1+kRoot)*local*(local-1)/2 {
		return nil // cheaper to let every node sample locally
	}
	gs := &globalSample{slotOf: make([]int32, len(items))}
	for i := range gs.slotOf {
		gs.slotOf[i] = -1
	}
	step := len(items) / s
	if step < 1 {
		step = 1
	}
	sample := make([]int, s)
	for i := 0; i < s; i++ {
		sample[i] = i * step
		gs.slotOf[i*step] = int32(i)
	}
	gs.dm = make([][]float64, s)
	for i := range gs.dm {
		gs.dm[i] = make([]float64, s)
	}
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			d := t.d(items[sample[i]], items[sample[j]])
			gs.dm[i][j], gs.dm[j][i] = d, d
		}
	}
	return gs
}

// NewBulk bulk-loads a Slim-tree with the given distance and node capacity
// (DefaultCapacity if cap < 4). Item i is reported by queries as id i,
// exactly as with New; only the tree's internal arrangement differs.
func NewBulk[T any](dist metric.Distance[T], capacity int, items []T) *Tree[T] {
	return NewBulkWithWorkers(dist, capacity, items, 1)
}

// bulkParallelMin is the group size below which a subtree build stays on
// the current goroutine.
const bulkParallelMin = 512

// NewBulkWithWorkers is NewBulk with the per-level subtree builds fanned
// out across up to workers goroutines (≤ 0 → all cores, 1 → serial).
// Pivot selection and partitioning are deterministic and sibling groups
// are disjoint, so the resulting tree is identical for every worker count.
func NewBulkWithWorkers[T any](dist metric.Distance[T], capacity int, items []T, workers int) *Tree[T] {
	if capacity < 4 {
		capacity = DefaultCapacity
	}
	t := &Tree[T]{dist: dist, capacity: capacity}
	t.size = len(items)
	if len(items) == 0 {
		return t
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	// Height: the smallest h with capacity^h ≥ n, i.e. the balanced
	// minimum. Every level partitions into groups of at most
	// capacity^(h-1), so the recursion bottoms out in leaves exactly at
	// height 1.
	height := 1
	for span := t.capacity; span < len(items); span *= t.capacity {
		height++
	}
	// The shared pivot sample only pays off when at least one level below
	// the root also selects pivots (height ≥ 3): its one-off matrix then
	// replaces every second-level node's local matrix. Two-level trees
	// select pivots exactly once, so they sample locally at the root —
	// this keeps throwaway trees over small query sets (the cross-join's)
	// as cheap to build as before.
	var gs *globalSample
	if height > 2 {
		gs = newGlobalSample(t, items, height)
	}
	t.root = t.bulkNode(items, idx, nil, height, gs, parallel.NewLimiter(workers))
	t.freeze()
	return t
}

// bulkNode builds the subtree over items[idx]. dToParent[k] is the known
// distance from items[idx[k]] to the parent entry's pivot (nil at the
// root, whose entries never consult dPar). height is the number of levels
// remaining; height 1 builds a leaf.
func (t *Tree[T]) bulkNode(items []T, idx []int, dToParent []float64, height int, gs *globalSample, lim *parallel.Limiter) *node[T] {
	if height <= 1 || len(idx) <= t.capacity {
		n := &node[T]{leaf: true, entries: make([]entry[T], len(idx))}
		for k, id := range idx {
			e := entry[T]{pivot: items[id], id: id, count: 1}
			if dToParent != nil {
				e.dPar = dToParent[k]
			}
			n.entries[k] = e
		}
		return n
	}

	// Balance cap per group and number of groups. The cap k·subcap ≥
	// len(idx) holds by construction, so the capacity-bounded assignment
	// below always finds room and every group fits a (height-1)-level
	// subtree. Beyond that floor, the fanout is raised to about the
	// geometric mean n^(1/height): the minimum fanout (a couple of huge
	// groups) would force cluster structure to be split across balance
	// caps — exactly the overlap bulk loading exists to avoid — while a
	// spread of ~n^(1/h) pivots per level lets every level track the
	// clusters present at its scale.
	subcap := 1
	for i := 0; i < height-1; i++ {
		subcap *= t.capacity
	}
	k := (len(idx) + subcap - 1) / subcap
	if spread := int(math.Ceil(math.Pow(float64(len(idx)), 1/float64(height)))); spread > k {
		k = spread
	}
	if k < 2 {
		k = 2
	}
	if k > t.capacity {
		k = t.capacity
	}

	pivots := t.selectPivots(items, idx, k, gs)

	// Assign every element to the nearest pivot that still has room
	// (ties toward the earlier pivot), recording its distance — which the
	// child level reuses as the stored parent distance, and whose
	// per-group maximum IS the entry's exact covering radius.
	groups := make([][]int, k)
	groupD := make([][]float64, k)
	dists := make([]float64, k)
	for _, id := range idx {
		for g, p := range pivots {
			dists[g] = t.d(items[id], items[idx[p]])
		}
		best := -1
		for g := 0; g < k; g++ {
			if len(groups[g]) >= subcap {
				continue
			}
			if best < 0 || dists[g] < dists[best] {
				best = g
			}
		}
		groups[best] = append(groups[best], id)
		groupD[best] = append(groupD[best], dists[best])
	}

	n := &node[T]{entries: make([]entry[T], 0, k)}
	var waits []func()
	for g := 0; g < k; g++ {
		if len(groups[g]) == 0 {
			continue
		}
		radius := 0.0
		for _, d := range groupD[g] {
			if d > radius {
				radius = d
			}
		}
		e := entry[T]{
			pivot:  items[idx[pivots[g]]],
			id:     -1,
			radius: radius,
			count:  len(groups[g]),
		}
		if dToParent != nil {
			e.dPar = dToParent[pivots[g]]
		}
		n.entries = append(n.entries, e)
		ent := &n.entries[len(n.entries)-1]
		gi, gd := groups[g], groupD[g]
		build := func() { ent.child = t.bulkNode(items, gi, gd, height-1, gs, lim) }
		if len(gi) >= bulkParallelMin {
			waits = append(waits, lim.Go(build))
		} else {
			build()
		}
	}
	for _, w := range waits {
		w()
	}
	return n
}

// selectPivots picks k pivot positions (indices into idx) k-medoid style:
// the sample medoid seeds the set, companions join farthest-first
// (maximizing the distance to the nearest chosen pivot, so the initial
// regions spread across the data), and one refinement pass replaces each
// tentative pivot by the medoid of the sample elements nearest to it.
// All ties break toward the smaller sample position, so the choice is
// deterministic.
//
// The sample is the node's inherited share of the build's global sample
// whenever that share has at least k members — the pairwise distances
// then come from the precomputed global matrix, costing ZERO fresh
// metric evaluations and selecting with the same k-medoid quality as a
// local sample. Nodes whose share is thinner fall back to a local
// deterministic strided sample (with its own matrix); the shared
// sample's sizing (newGlobalSample) makes that the exception on the
// expensive top levels and the rule only deep down, where the local
// matrices are cheap.
func (t *Tree[T]) selectPivots(items []T, idx []int, k int, gs *globalSample) []int {
	if gs != nil {
		var memberPos []int // positions within idx, in idx order
		var memberSlot []int32
		for pos, id := range idx {
			if s := gs.slotOf[id]; s >= 0 {
				memberPos = append(memberPos, pos)
				memberSlot = append(memberSlot, s)
			}
		}
		if len(memberPos) >= k {
			// Materialize the members' dense submatrix: pickPivots reads
			// pair distances in tight quadratic loops, where a direct
			// index beats a closure call per pair. Copying costs no
			// metric evaluations.
			m := len(memberPos)
			dm := make([][]float64, m)
			for i := range dm {
				dm[i] = make([]float64, m)
				row := gs.dm[memberSlot[i]]
				for j := range dm[i] {
					dm[i][j] = row[memberSlot[j]]
				}
			}
			return pickPivots(m, k, dm, memberPos)
		}
	}
	// Local fallback: deterministic strided sample of at most
	// bulkSampleMax positions, with its own pairwise matrix.
	s := len(idx)
	if s > bulkSampleMax {
		s = bulkSampleMax
	}
	if s < k {
		s = k // len(idx) > capacity ≥ k whenever this runs
	}
	sample := make([]int, s)
	step := len(idx) / s
	if step < 1 {
		step = 1
	}
	for i := 0; i < s; i++ {
		sample[i] = (i * step) % len(idx)
	}
	dm := make([][]float64, s)
	for i := range dm {
		dm[i] = make([]float64, s)
	}
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			d := t.d(items[idx[sample[i]]], items[idx[sample[j]]])
			dm[i][j], dm[j][i] = d, d
		}
	}
	return pickPivots(s, k, dm, sample)
}

// SelectPivots picks k spread-out pivot positions (indices into items)
// under dist — the deterministic k-medoid-style sampler the bulk loader
// uses for node pivots (strided sample, medoid seed, farthest-first
// companions, one refinement pass), exported for the shard layer's
// Voronoi partitioner. Requires 1 ≤ k ≤ len(items); the returned
// positions are distinct and depend only on (items, k).
func SelectPivots[T any](dist metric.Distance[T], items []T, k int) []int {
	s := len(items)
	if s > bulkSampleMax {
		s = bulkSampleMax
	}
	if s < k {
		s = k
	}
	sample := make([]int, s)
	step := len(items) / s
	if step < 1 {
		step = 1
	}
	for i := 0; i < s; i++ {
		sample[i] = (i * step) % len(items)
	}
	dm := make([][]float64, s)
	for i := range dm {
		dm[i] = make([]float64, s)
	}
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			d := dist(items[sample[i]], items[sample[j]])
			dm[i][j], dm[j][i] = d, d
		}
	}
	return pickPivots(s, k, dm, sample)
}

// pickPivots runs the k-medoid-style selection over a sample of s
// candidates with pairwise distance matrix dm: medoid seed,
// farthest-first companions, one medoid refinement pass. posOf[i] is
// candidate i's position within the node's idx; the returned slice holds
// the k chosen positions.
func pickPivots(s, k int, dm [][]float64, posOf []int) []int {
	// Seed: the sample medoid (smallest distance sum).
	chosen := make([]int, 0, k)
	bestSum := math.Inf(1)
	seed := 0
	for i := 0; i < s; i++ {
		sum := 0.0
		for j := 0; j < s; j++ {
			sum += dm[i][j]
		}
		if sum < bestSum {
			bestSum, seed = sum, i
		}
	}
	chosen = append(chosen, seed)

	// Companions: farthest-first on the min distance to the chosen set.
	minD := make([]float64, s)
	for i := range minD {
		minD[i] = dm[i][seed]
	}
	taken := make([]bool, s)
	taken[seed] = true
	for len(chosen) < k {
		far, farD := -1, -1.0
		for i := 0; i < s; i++ {
			if !taken[i] && minD[i] > farD {
				far, farD = i, minD[i]
			}
		}
		taken[far] = true
		chosen = append(chosen, far)
		for i := range minD {
			if dm[i][far] < minD[i] {
				minD[i] = dm[i][far]
			}
		}
	}

	// Refinement: cluster the sample to the nearest chosen pivot, then
	// replace each pivot by its cluster's medoid.
	cluster := make([][]int, k)
	for i := 0; i < s; i++ {
		best := 0
		for g := 1; g < k; g++ {
			if dm[i][chosen[g]] < dm[i][chosen[best]] {
				best = g
			}
		}
		cluster[best] = append(cluster[best], i)
	}
	out := make([]int, 0, k)
	for g := 0; g < k; g++ {
		if len(cluster[g]) == 0 {
			out = append(out, posOf[chosen[g]])
			continue
		}
		med, medSum := cluster[g][0], math.Inf(1)
		for _, i := range cluster[g] {
			sum := 0.0
			for _, j := range cluster[g] {
				sum += dm[i][j]
			}
			if sum < medSum {
				med, medSum = i, sum
			}
		}
		out = append(out, posOf[med])
	}
	return out
}
