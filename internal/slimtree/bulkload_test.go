package slimtree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// assertQueryEquivalent pins the bulk-load contract: a bulk-loaded tree
// must answer every query — RangeCount, RangeCountMulti, RangeQuery, KNN,
// CountAllMulti, DiameterEstimate — exactly like the insertion-built tree
// over the same items. Only the internal arrangement may differ.
func assertQueryEquivalent[T any](t *testing.T, label string, ins, blk *Tree[T], items []T, radii []float64) {
	t.Helper()
	if ins.Size() != blk.Size() {
		t.Fatalf("%s: sizes differ: %d vs %d", label, ins.Size(), blk.Size())
	}
	if di, db := ins.DiameterEstimate(), blk.DiameterEstimate(); di != db {
		t.Fatalf("%s: DiameterEstimate differs: %v vs %v", label, di, db)
	}
	for qi, q := range items {
		if qi%7 != 0 { // every 7th element keeps the quadratic check fast
			continue
		}
		for _, r := range radii {
			if ci, cb := ins.RangeCount(q, r), blk.RangeCount(q, r); ci != cb {
				t.Fatalf("%s: RangeCount(q%d, %v) = %d (insert) vs %d (bulk)", label, qi, r, ci, cb)
			}
		}
		mi, mb := ins.RangeCountMulti(q, radii), blk.RangeCountMulti(q, radii)
		for e := range radii {
			if mi[e] != mb[e] {
				t.Fatalf("%s: RangeCountMulti(q%d)[%d] = %d vs %d", label, qi, e, mi[e], mb[e])
			}
		}
		idsI := ins.RangeQuery(q, radii[len(radii)/2])
		idsB := blk.RangeQuery(q, radii[len(radii)/2])
		sortInts(idsI)
		sortInts(idsB)
		if fmt.Sprint(idsI) != fmt.Sprint(idsB) {
			t.Fatalf("%s: RangeQuery(q%d) ids differ: %v vs %v", label, qi, idsI, idsB)
		}
		ki, kdi := ins.KNN(q, 5)
		kb, kdb := blk.KNN(q, 5)
		if fmt.Sprint(ki) != fmt.Sprint(kb) || fmt.Sprint(kdi) != fmt.Sprint(kdb) {
			t.Fatalf("%s: KNN(q%d) differs: %v/%v vs %v/%v", label, qi, ki, kdi, kb, kdb)
		}
	}
	ci := ins.CountAllMulti(radii, 1)
	cb := blk.CountAllMulti(radii, 3)
	for e := range ci {
		for i := range ci[e] {
			if ci[e][i] != cb[e][i] {
				t.Fatalf("%s: CountAllMulti[%d][%d] = %d vs %d", label, e, i, ci[e][i], cb[e][i])
			}
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestNewBulkQueryEquivalentVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 12
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(1500)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		for i := rng.Intn(30); i > 0; i-- { // duplicates stress zero distances
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}
		capacity := []int{0, 4, 8}[trial%3]
		ins := New(metric.Euclidean, capacity, pts)
		blk := NewBulk(metric.Euclidean, capacity, pts)
		assertQueryEquivalent(t, fmt.Sprintf("vectors/trial%d", trial), ins, blk, pts, randRadii(rng, 150))
	}
}

func TestNewBulkQueryEquivalentStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	words := make([]string, 0, 260)
	for i := 0; i < 260; i++ {
		stem := []byte("bulkloadedslimtree")
		for j := rng.Intn(6); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:4+rng.Intn(13)]))
	}
	ins := New(metric.Levenshtein, 8, words)
	blk := NewBulk(metric.Levenshtein, 8, words)
	assertQueryEquivalent(t, "strings", ins, blk, words, []float64{0, 1, 2, 3, 5, 8, 13})
}

// TestNewBulkWorkerInvariant: the bulk-built tree must be identical for
// every worker count — proven by comparing probe-by-probe metric work
// (DistCalls on identical query sequences) and query results.
func TestNewBulkWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := randPoints(rng, 3000, 2)
	radii := randRadii(rng, 150)
	serial := NewBulkWithWorkers(metric.Euclidean, 0, pts, 1)
	buildCalls := serial.DistCalls()
	if buildCalls == 0 {
		t.Fatal("serial bulk build performed no metric evaluations")
	}
	for _, workers := range []int{2, 8} {
		par := NewBulkWithWorkers(metric.Euclidean, 0, pts, workers)
		if p := par.DistCalls(); p != buildCalls {
			t.Fatalf("workers=%d: build dist calls differ (%d vs %d): trees are not identical", workers, buildCalls, p)
		}
		serial.ResetDistCalls()
		par.ResetDistCalls()
		for qi := 0; qi < 200; qi++ {
			q := pts[rng.Intn(len(pts))]
			cs := serial.RangeCountMulti(q, radii)
			cp := par.RangeCountMulti(q, radii)
			for e := range radii {
				if cs[e] != cp[e] {
					t.Fatalf("workers=%d: counts differ at q%d radius %d", workers, qi, e)
				}
			}
		}
		if s, p := serial.DistCalls(), par.DistCalls(); s != p {
			t.Fatalf("workers=%d: query dist calls differ (%d vs %d): tree shapes diverged", workers, s, p)
		}
	}
}

// TestNewBulkBalancedHeight: the bulk build must hit the balanced minimum
// height ⌈log_cap(n)⌉ — the property the insert path cannot guarantee.
func TestNewBulkBalancedHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{1, 30, 33, 1000, 5000} {
		pts := randPoints(rng, n, 2)
		blk := NewBulk(metric.Euclidean, 32, pts)
		want := 1
		for span := 32; span < n; span *= 32 {
			want++
		}
		if got := blk.Height(); got != want {
			t.Errorf("n=%d: bulk height %d, want balanced %d", n, got, want)
		}
		if err := blk.MaxCoverError(); err != 0 {
			t.Errorf("n=%d: covering invariant violated by %v", n, err)
		}
	}
}

// TestNewBulkLowerOverlap pins the point of bulk loading: on clustered
// data the bulk-built tree must overlap (fat factor) no more than the
// insertion-built tree.
func TestNewBulkLowerOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	var pts [][]float64
	for b := 0; b < 12; b++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 150; i++ {
			pts = append(pts, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		}
	}
	ins := New(metric.Euclidean, 0, pts)
	blk := NewBulk(metric.Euclidean, 0, pts)
	fi, fb := ins.FatFactor(), blk.FatFactor()
	if fb > fi {
		t.Errorf("bulk fat factor %v exceeds insertion build's %v", fb, fi)
	}
}

// TestDiameterEstimateNonMonotoneVectorMetric guards the bbox shortcut's
// self-validation: for a valid (pseudo-)metric over vectors that is NOT
// monotone in the box corners, the corner distance collapses to 0 and the
// estimate must fall through to the exact branch-and-bound instead of
// silently underestimating the radii schedule.
func TestDiameterEstimateNonMonotoneVectorMetric(t *testing.T) {
	// Projection pseudo-metric: distance of the points' projections onto
	// the (1,-1) axis. Symmetric, zero on identical args, triangular —
	// but d(boxLo, boxHi) = 0 while the true diameter is √2.
	proj := func(a, b []float64) float64 {
		return math.Abs((a[0]-a[1])-(b[0]-b[1])) / math.Sqrt2
	}
	pts := [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}, {0.2, 0.8}, {0.9, 0.1}, {0, 0}, {1, 1}}
	for _, tr := range []*Tree[[]float64]{New(proj, 4, pts), NewBulk(proj, 4, pts)} {
		if got := tr.DiameterEstimate(); math.Abs(got-math.Sqrt2) > 1e-12 {
			t.Errorf("diameter = %v, want √2 via the exact path", got)
		}
	}
}

func TestNewBulkEdges(t *testing.T) {
	empty := NewBulk(metric.Euclidean, 0, nil)
	if empty.Size() != 0 || empty.RangeCount([]float64{0}, 10) != 0 {
		t.Error("empty bulk tree misbehaves")
	}
	one := NewBulk(metric.Euclidean, 0, [][]float64{{1, 2}})
	if one.Size() != 1 || one.RangeCount([]float64{1, 2}, 0) != 1 {
		t.Error("singleton bulk tree misbehaves")
	}
	dups := make([][]float64, 200)
	for i := range dups {
		dups[i] = []float64{7, 7}
	}
	dup := NewBulk(metric.Euclidean, 4, dups)
	if got := dup.RangeCount([]float64{7, 7}, 0); got != 200 {
		t.Errorf("all-duplicates bulk tree counts %d at r=0, want 200", got)
	}
	if dup.MaxCoverError() != 0 {
		t.Error("all-duplicates bulk tree violates covering invariant")
	}
}
