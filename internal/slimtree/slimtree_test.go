package slimtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func bruteRange(pts [][]float64, q []float64, r float64) []int {
	var ids []int
	for i, p := range pts {
		if metric.Euclidean(q, p) <= r {
			ids = append(ids, i)
		}
	}
	return ids
}

func TestEmptyAndTinyTrees(t *testing.T) {
	tr := New(metric.Euclidean, 0, nil)
	if tr.Size() != 0 || tr.RangeCount([]float64{0}, 10) != 0 {
		t.Error("empty tree should return 0 everywhere")
	}
	if tr.DiameterEstimate() != 0 {
		t.Error("empty tree diameter should be 0")
	}
	ids, _ := tr.KNN([]float64{0}, 3)
	if len(ids) != 0 {
		t.Error("empty tree KNN should be empty")
	}

	tr = New(metric.Euclidean, 0, [][]float64{{1, 2}})
	if tr.Size() != 1 || tr.RangeCount([]float64{1, 2}, 0) != 1 {
		t.Error("singleton tree broken")
	}
	if tr.DiameterEstimate() != 0 {
		t.Error("singleton diameter should be 0")
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(400)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		tr := New(metric.Euclidean, 8, pts) // small capacity → deep tree, more splits
		for q := 0; q < 10; q++ {
			query := pts[rng.Intn(n)]
			r := rng.Float64() * 60
			got := tr.RangeQuery(query, r)
			want := bruteRange(pts, query, r)
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d: RangeQuery len=%d, brute len=%d (r=%v)", trial, len(got), len(want), r)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: RangeQuery ids mismatch", trial)
				}
			}
			if c := tr.RangeCount(query, r); c != len(want) {
				t.Fatalf("trial %d: RangeCount=%d, want %d", trial, c, len(want))
			}
		}
	}
}

func TestRangeQueryWithDuplicates(t *testing.T) {
	// Many identical points force degenerate splits.
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{1, 1}
	}
	pts = append(pts, []float64{50, 50})
	tr := New(metric.Euclidean, 6, pts)
	if got := tr.RangeCount([]float64{1, 1}, 0); got != 200 {
		t.Errorf("duplicate RangeCount = %d, want 200", got)
	}
	if got := tr.RangeCount([]float64{50, 50}, 1); got != 1 {
		t.Errorf("outlier RangeCount = %d, want 1", got)
	}
	if got := tr.RangeCount([]float64{0, 0}, 1000); got != 201 {
		t.Errorf("full RangeCount = %d, want 201", got)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 30 + rng.Intn(300)
		pts := randPoints(rng, n, 2)
		tr := New(metric.Euclidean, 8, pts)
		for q := 0; q < 5; q++ {
			query := randPoints(rng, 1, 2)[0]
			k := 1 + rng.Intn(10)
			ids, dists := tr.KNN(query, k)
			// Brute-force kNN distances.
			all := make([]float64, n)
			for i, p := range pts {
				all[i] = metric.Euclidean(query, p)
			}
			sort.Float64s(all)
			wantK := k
			if wantK > n {
				wantK = n
			}
			if len(ids) != wantK {
				t.Fatalf("KNN returned %d ids, want %d", len(ids), wantK)
			}
			for i := 0; i < wantK; i++ {
				if math.Abs(dists[i]-all[i]) > 1e-9 {
					t.Fatalf("trial %d: kNN dist[%d]=%v, brute=%v", trial, i, dists[i], all[i])
				}
			}
			// Ascending order.
			for i := 1; i < len(dists); i++ {
				if dists[i] < dists[i-1] {
					t.Fatal("KNN distances not ascending")
				}
			}
		}
	}
}

func TestKNNMoreThanN(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	tr := New(metric.Euclidean, 0, pts)
	ids, _ := tr.KNN([]float64{0}, 10)
	if len(ids) != 3 {
		t.Errorf("KNN k>n returned %d, want 3", len(ids))
	}
}

func TestDiameterEstimateReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(400)
		pts := randPoints(rng, n, 3)
		tr := New(metric.Euclidean, 16, pts)
		true_ := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := metric.Euclidean(pts[i], pts[j]); d > true_ {
					true_ = d
				}
			}
		}
		est := tr.DiameterEstimate()
		if est < 0.5*true_ || est > 3*true_ {
			t.Errorf("trial %d: diameter estimate %v not within [0.5, 3]× true %v", trial, est, true_)
		}
	}
}

func TestNondimensionalStringsTree(t *testing.T) {
	words := []string{"smith", "smyth", "smithe", "johnson", "jonson", "garcia", "garzia", "xylophone"}
	tr := New(metric.Levenshtein, 4, words)
	// All words within edit distance 1 of "smith".
	got := tr.RangeQuery("smith", 1)
	sort.Ints(got)
	want := []int{0, 1, 2} // smith, smyth, smithe
	if len(got) != len(want) {
		t.Fatalf("string RangeQuery = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("string RangeQuery = %v, want %v", got, want)
		}
	}
}

func TestTreeHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := New(metric.Euclidean, 8, randPoints(rng, 8, 2))
	big := New(metric.Euclidean, 8, randPoints(rng, 500, 2))
	if small.Height() != 1 {
		t.Errorf("8 points in capacity-8 tree should be height 1, got %d", small.Height())
	}
	if big.Height() < 2 {
		t.Errorf("500 points should split, height=%d", big.Height())
	}
}

func TestDistCallsSubquadratic(t *testing.T) {
	// A range query over clustered data should touch far fewer than n
	// distance evaluations per query on average once the tree is built.
	rng := rand.New(rand.NewSource(5))
	n := 2000
	pts := randPoints(rng, n, 2)
	tr := New(metric.Euclidean, 32, pts)
	tr.ResetDistCalls()
	queries := 100
	for q := 0; q < queries; q++ {
		tr.RangeCount(pts[rng.Intn(n)], 2.0) // small radius
	}
	perQuery := float64(tr.DistCalls()) / float64(queries)
	if perQuery > float64(n)/2 {
		t.Errorf("small-radius range queries average %.0f distance calls on n=%d; pruning is not working", perQuery, n)
	}
}

// TestDiameterEstimateUniformDistanceLinear is the carried-bug regression
// through the tree path: near-uniform pairwise distances degenerated the
// old exact branch-and-bound toward n²/2 metric evaluations; the shared
// estimator must answer in O(k·n).
func TestDiameterEstimateUniformDistanceLinear(t *testing.T) {
	n := 2000
	elems := make([]int, n)
	for i := range elems {
		elems[i] = i
	}
	uniform := func(a, b int) float64 {
		if a == b {
			return 0
		}
		return 1
	}
	tr := NewBulk(uniform, 0, elems)
	tr.ResetDistCalls()
	if got := tr.DiameterEstimate(); got != 1 {
		t.Fatalf("uniform-distance diameter = %v, want 1", got)
	}
	if calls, budget := tr.DistCalls(), int64(12*n); calls > budget {
		t.Fatalf("DiameterEstimate took %d metric evaluations on uniform-distance data, budget %d (O(k·n))", calls, budget)
	}
}
