package slimtree

import "math"

// FatFactor measures how much the tree's node regions overlap (Traina Jr.
// et al., TKDE 2002): the fraction of avoidable node visits over point
// queries for every indexed element,
//
//	fat(T) = (Ic − h·n) / (n·(M − h))
//
// where Ic is the total number of nodes whose region covers each element,
// h the height, n the element count and M the node count. 0 means a
// point query never visits more than one node per level; 1 means every
// query visits every node. Trees with ≤ 1 node report 0.
func (t *Tree[T]) FatFactor() float64 {
	if t.size == 0 || len(t.leaf) == 0 {
		return 0
	}
	h := t.Height()
	m := len(t.leaf)
	if m <= h {
		return 0
	}
	// For every element, count covering nodes by reusing the element set
	// collected from the leaf entries.
	elems := make([]T, 0, t.size)
	for k, id := range t.eID {
		if id >= 0 {
			elems = append(elems, t.ePivot[k])
		}
	}
	ic := 0
	for _, q := range elems {
		ic += t.coveringNodes(0, q)
	}
	n := float64(t.size)
	return (float64(ic) - float64(h)*n) / (n * float64(m-h))
}

// coveringNodes counts the nodes (including node n) whose region covers q.
func (t *Tree[T]) coveringNodes(n int32, q T) int {
	c := 1
	if t.leaf[n] {
		return c
	}
	for k := t.entFirst[n]; k < t.entLast[n]; k++ {
		if t.d(q, t.ePivot[k]) <= t.eRD[2*k] {
			c += t.coveringNodes(t.eChild[k], q)
		}
	}
	return c
}

// SlimDown runs the Slim-tree's post-construction reorganization: for every
// internal node, leaf entries that lie inside a sibling leaf's region are
// moved to that sibling when it has room, and covering radii are shrunk to
// the farthest remaining entry. Overlap (the fat factor) can only decrease,
// so queries afterwards prune at least as well. passes bounds the number of
// sweeps (the classic heuristic converges in a few). The reorganization
// works on linked nodes, so the frozen arena is thawed back into pointers
// first and re-frozen after the last pass.
func (t *Tree[T]) SlimDown(passes int) {
	if t.size == 0 || passes <= 0 {
		return
	}
	t.thaw()
	for p := 0; p < passes; p++ {
		moved := t.slimNode(t.root)
		t.shrinkRadii(t.root)
		if !moved {
			break
		}
	}
	t.freeze()
}

// slimNode applies one slim-down sweep below n and reports whether any
// entry moved.
func (t *Tree[T]) slimNode(n *node[T]) bool {
	if n.leaf {
		return false
	}
	moved := false
	for i := range n.entries {
		if t.slimNode(n.entries[i].child) {
			moved = true
		}
	}
	// Only the leaf level directly below n is reorganized here.
	if len(n.entries) < 2 || !n.entries[0].child.leaf {
		return moved
	}
	// Actual member spread per leaf: moving into a region that already
	// covers the candidate guarantees overlap can only shrink; the stored
	// radii can be loose overestimates from insertion-time growth.
	actual := make([]float64, len(n.entries))
	for j := range n.entries {
		sib := &n.entries[j]
		for k := range sib.child.entries {
			if d := t.d(sib.child.entries[k].pivot, sib.pivot); d > actual[j] {
				actual[j] = d
			}
		}
	}
	for i := range n.entries {
		src := &n.entries[i]
		leafI := src.child
		// The farthest entry from its pivot is the move candidate.
		for {
			far, farD := -1, -1.0
			for k := range leafI.entries {
				if d := t.d(leafI.entries[k].pivot, src.pivot); d > farD {
					far, farD = k, d
				}
			}
			if far < 0 || len(leafI.entries) <= 1 {
				break
			}
			cand := leafI.entries[far]
			dst := -1
			for j := range n.entries {
				if j == i {
					continue
				}
				sib := &n.entries[j]
				if len(sib.child.entries) >= t.capacity {
					continue
				}
				if t.d(cand.pivot, sib.pivot) <= actual[j] {
					dst = j
					break
				}
			}
			if dst < 0 {
				break
			}
			// Move cand from leafI to the sibling leaf.
			sib := &n.entries[dst]
			cand.dPar = t.d(cand.pivot, sib.pivot)
			sib.child.entries = append(sib.child.entries, cand)
			sib.count++
			leafI.entries = append(leafI.entries[:far], leafI.entries[far+1:]...)
			src.count--
			moved = true
		}
	}
	return moved
}

// shrinkRadii tightens every covering radius to the exact farthest leaf
// descendant after reorganization and refreshes stored parent distances.
// Exact radii (not the dPar+childRadius triangle bound, which can exceed
// the insertion-time values) guarantee regions only shrink, so overlap —
// and with it the fat factor — cannot grow. The pass costs O(n·h) metric
// evaluations, paid once per SlimDown sweep.
func (t *Tree[T]) shrinkRadii(n *node[T]) {
	if n.leaf {
		return
	}
	for i := range n.entries {
		e := &n.entries[i]
		t.shrinkRadii(e.child)
		r := 0.0
		t.visitLeafPivots(e.child, func(p T) {
			if d := t.d(p, e.pivot); d > r {
				r = d
			}
		})
		e.radius = r
		for k := range e.child.entries {
			ce := &e.child.entries[k]
			ce.dPar = t.d(ce.pivot, e.pivot)
		}
	}
}

// visitLeafPivots calls fn for every element stored under n.
func (t *Tree[T]) visitLeafPivots(n *node[T], fn func(T)) {
	for i := range n.entries {
		if n.leaf {
			fn(n.entries[i].pivot)
			continue
		}
		t.visitLeafPivots(n.entries[i].child, fn)
	}
}

// MaxCoverError returns the largest violation of the covering invariant
// (every element within its ancestors' covering balls); it must be 0 on a
// well-formed tree. Tests use it to validate SlimDown.
func (t *Tree[T]) MaxCoverError() float64 {
	if len(t.leaf) == 0 {
		return 0
	}
	worst := 0.0
	var visit func(n int32, anc []int32)
	visit = func(n int32, anc []int32) {
		for k := t.entFirst[n]; k < t.entLast[n]; k++ {
			if t.leaf[n] {
				for _, a := range anc {
					if v := t.d(t.ePivot[k], t.ePivot[a]) - t.eRD[2*a]; v > worst {
						worst = v
					}
				}
				continue
			}
			visit(t.eChild[k], append(anc, k))
		}
	}
	visit(0, nil)
	return math.Max(worst, 0)
}
