package slimtree

import (
	"mccatch/internal/dualjoin"
)

// This file implements the cross-set dual-tree COUNT join
// (index.CrossCounter): for every query of a second element set, its
// full neighbor-count row over a nested radius schedule, from one
// traversal of the index tree against a throwaway slim-tree bulk-built
// over the queries. One pivot-to-pivot distance d with the two covering
// radii bounds every query×element pair under an entry pair by
// [d-r1-r2, d+r1+r2] — the bridge join's geometry (crossjoin.go) — but
// the accumulation is the self-join's additive count differences
// (dualjoin.Acc), credited one-directionally into the query tree's flat
// rows: a settled range [nh, hi) telescopes against the ancestor's so
// each pair's credited ranges tile exactly once. The descent prefilters
// child pairs with stored parent distances (the triangle trick), so
// many blocks settle without a fresh metric evaluation.

// crossCountCtx is one traversal unit's context: the distance-call
// counter (on the INDEX tree), the throwaway query tree, the radius
// schedule and the unit's accumulator.
type crossCountCtx[T any] struct {
	visitState[T]
	out   *Tree[T]
	radii []float64
	acc   *dualjoin.Acc
	rows  []int
	strd  int
}

// credit adds cnt indexed elements to every radius in [from, to) for
// every query under query-tree entry qe: directly into the query's
// position row for leaf entries, into the child subtree's wholesale row
// otherwise. This is the join's innermost loop (see dualjoin.Acc).
func (c *crossCountCtx[T]) credit(qe int32, from, to, cnt int) {
	if ch := c.out.eChild[qe]; ch >= 0 {
		c.acc.CreditNode(ch, from, to, cnt)
		return
	}
	if rows := c.rows; rows != nil {
		row := rows[int(c.out.ePos[qe])*c.strd:]
		row[from] += cnt
		row[to] -= cnt
		return
	}
	c.acc.CreditPos(c.out.ePos[qe], from, to, cnt)
}

// CountCrossMulti returns counts[e][i] = the number of indexed elements
// within radii[e] (inclusive) of queries[i], for every query and every
// radius of the ascending schedule — computed by a dual-tree traversal
// against a throwaway bulk-built tree over the queries instead of
// per-query probes. Counts are exact: bounds only ever defer ambiguous
// pairs, never approximate them. workers ≤ 0 means all cores, 1 means
// serial; the result is identical for every value.
func (t *Tree[T]) CountCrossMulti(queries []T, radii []float64, workers int) [][]int {
	a := len(radii)

	// The units are the pairs of (query root entry, index root entry),
	// exactly as in the bridge join: each resolves its block of
	// query×element pairs completely, and the additive credits merge
	// across any schedule.
	type unit struct{ i, j int32 }
	var units []unit
	var qt *Tree[T]
	if t.size > 0 && len(queries) > 0 && a > 0 {
		qt = NewBulkWithWorkers(t.dist, t.capacity, queries, workers)
		for i := qt.entFirst[0]; i < qt.entLast[0]; i++ {
			for j := t.entFirst[0]; j < t.entLast[0]; j++ {
				units = append(units, unit{i, j})
			}
		}
	}
	nodes := 0
	if qt != nil {
		nodes = len(qt.leaf)
	}
	return dualjoin.CountMatrix(a, len(queries), nodes, workers, len(units),
		func(u int, acc *dualjoin.Acc) {
			c := crossCountCtx[T]{visitState: visitState[T]{t: t}, out: qt, radii: radii,
				acc: acc, rows: acc.Point, strd: acc.Stride}
			// Root entries have no live parent pivot (their dPar is stale
			// by construction), so no prefilter applies up here.
			c.countVisit(units[u].i, units[u].j, 0, a)
			t.distCalls.Add(c.calls)
		},
		func(node int32) (int32, int32) { return qt.elemFirst[node], qt.elemLast[node] },
		func(pos int32) int { return int(qt.leafIDs[pos]) })
}

// countVisit classifies the pair of query entry qe (in the throwaway
// tree's arena) against index entry ie (in the index tree's) for the
// radius window [lo, hi): radii below lo are already known to separate
// the two subtrees, radii at and above hi were settled wholesale by an
// ancestor pair. Crediting is one-directional — only the query side
// accumulates. A leaf×leaf pair settles inside Window: with both
// covering radii zero the settled index IS the element pair's bucket.
func (c *crossCountCtx[T]) countVisit(qe, ie int32, lo, hi int) {
	in, out := c.t, c.out
	d := c.d(out.ePivot[qe], in.ePivot[ie])
	sum := out.eRD[2*qe] + in.eRD[2*ie]
	lo, nh := dualjoin.Window(c.radii, d-sum, d+sum, lo, hi)
	if nh < hi {
		// Every index element under ie is within radii[nh..hi) of every
		// query under qe.
		c.credit(qe, nh, hi, int(in.eCount[ie]))
	}
	if lo >= nh {
		return
	}
	radii := c.radii
	// Descend the side with the larger covering ball; ties and leaf
	// entries keep the descent deterministic. Child pairs are prefiltered
	// with the stored parent distances: |d - dPar| bounds the child pivot
	// distance from below and d + dPar from above — the upper bound can
	// settle a child block without a metric evaluation.
	if out.eChild[qe] < 0 || (in.eChild[ie] >= 0 && in.eRD[2*ie] > out.eRD[2*qe]) {
		// Index side descends. (A leaf×leaf pair never reaches here: its
		// Window above settles with an empty ambiguous range, since both
		// covering radii are 0.)
		child := in.eChild[ie]
		qrad := out.eRD[2*qe]
		for ce := in.entFirst[child]; ce < in.entLast[child]; ce++ {
			csum := in.eRD[2*ce] + qrad
			dp := in.eRD[2*ce+1]
			clb := d - dp
			if clb < dp-d {
				clb = dp - d
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if d+dp+csum <= radii[b] {
				c.credit(qe, b, nh, int(in.eCount[ce]))
				continue
			}
			c.countVisit(qe, ce, b, nh)
		}
		return
	}
	child := out.eChild[qe]
	irad := in.eRD[2*ie]
	icount := int(in.eCount[ie])
	for ce := out.entFirst[child]; ce < out.entLast[child]; ce++ {
		csum := out.eRD[2*ce] + irad
		dp := out.eRD[2*ce+1]
		clb := d - dp
		if clb < dp-d {
			clb = dp - d
		}
		clb -= csum
		b := lo
		for b < nh && clb > radii[b] {
			b++
		}
		if b == nh {
			continue
		}
		if d+dp+csum <= radii[b] {
			c.credit(ce, b, nh, icount)
			continue
		}
		c.countVisit(ce, ie, b, nh)
	}
}
