package slimtree

import (
	"mccatch/internal/dualjoin"
)

// This file implements the cross-set dual-tree bridge join
// (index.CrossMultiCounter): for every query of a second element set —
// MCCATCH's outliers probing the inlier tree — the index of the first
// radius of a nested schedule with at least one indexed neighbor, from
// one traversal of the inlier tree against a throwaway slim-tree
// bulk-built over the queries. One pivot-to-pivot distance d with the
// two covering radii bounds every query×element pair under an entry pair
// by [d-r1-r2, d+r1+r2] — the self-join's geometry — but accumulation is
// per-query MINIMA (internal/dualjoin's MinAcc) rather than counts, so
// any bound already credited to a query entry narrows later pairs'
// windows from above and prunes their metric evaluations entirely. The
// descent prefilters child pairs with stored parent distances (the
// triangle trick rangeVisit uses), so many blocks settle without a fresh
// metric evaluation.

// crossCtx is one traversal unit's context: the distance-call counter,
// the radius schedule and the unit's min-accumulator.
type crossCtx[T any] struct {
	visitState[T]
	radii []float64
	acc   *dualjoin.MinAcc[*node[T]]
}

// credit records that every query under qe has an indexed neighbor
// within radii[b]: directly into the query's best row for leaf entries,
// into the subtree's wholesale bound otherwise. The rows are written raw
// — this is the join's innermost loop (see dualjoin.MinAcc).
func (c *crossCtx[T]) credit(qe *entry[T], b int) {
	if qe.child == nil {
		if b < c.acc.Best[qe.id] {
			c.acc.Best[qe.id] = b
		}
		return
	}
	if cur, ok := c.acc.Nodes[qe.child]; !ok || b < cur {
		c.acc.Nodes[qe.child] = b
	}
}

// bound returns the smallest radius index already credited to every
// query under qe, or hi when none is on record.
func (c *crossCtx[T]) bound(qe *entry[T], hi int) int {
	if qe.child == nil {
		if b := c.acc.Best[qe.id]; b < hi {
			return b
		}
		return hi
	}
	if b, ok := c.acc.Nodes[qe.child]; ok && b < hi {
		return b
	}
	return hi
}

// BridgeFirsts returns, for each query element, the index of the first
// radius of the ascending schedule radii with at least one indexed
// element within that radius (inclusive), or len(radii) when even the
// largest radius finds none — computed by a dual-tree traversal of the
// index against a throwaway bulk-built tree over the queries. Results
// are exact (bounds only ever defer ambiguous pairs, never approximate
// them) and identical for every worker count.
func (t *Tree[T]) BridgeFirsts(queries []T, radii []float64, workers int) []int {
	a := len(radii)

	// The units are the pairs of (query root entry, index root entry):
	// each resolves its block of query×element pairs completely, and the
	// per-query minima merge across any schedule.
	type unit struct{ i, j int }
	var units []unit
	var qt *Tree[T]
	if t.root != nil && len(queries) > 0 && a > 0 {
		qt = NewBulkWithWorkers(t.dist, t.capacity, queries, workers)
		for i := range qt.root.entries {
			for j := range t.root.entries {
				units = append(units, unit{i, j})
			}
		}
	}
	return dualjoin.FirstMatrix(a, len(queries), workers, len(units),
		func(u int, acc *dualjoin.MinAcc[*node[T]]) {
			c := crossCtx[T]{visitState: visitState[T]{t: t}, radii: radii, acc: acc}
			// Root entries have no live parent pivot (their dPar is stale
			// by construction), so no prefilter applies up here.
			c.crossVisit(&qt.root.entries[units[u].i], &t.root.entries[units[u].j], 0, a)
			t.distCalls.Add(c.calls)
		},
		pushSubtreeMin[T])
}

// pushSubtreeMin lowers the merged first-index of every query element
// stored under n to bound, pushing a wholesale subtree credit down.
func pushSubtreeMin[T any](n *node[T], bound int, merged []int) {
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil {
			pushSubtreeMin(e.child, bound, merged)
			continue
		}
		if bound < merged[e.id] {
			merged[e.id] = bound
		}
	}
}

// crossVisit classifies the pair of query entry qe against index entry
// ie for the radius window [lo, hi): radii below lo are already known to
// separate the two subtrees, and every query under qe is already known
// to meet an indexed element by radii[hi] (an ancestor's or an earlier
// pair's credit, consulted again here so pairs resolved elsewhere prune
// before paying a metric evaluation). Crediting is one-directional —
// only the query side accumulates. A leaf×leaf pair settles inside
// Window: with both covering radii zero the settled index IS the
// element pair's bucket.
func (c *crossCtx[T]) crossVisit(qe, ie *entry[T], lo, hi int) {
	hi = c.bound(qe, hi)
	if lo >= hi {
		return
	}
	d := c.d(qe.pivot, ie.pivot)
	sum := qe.radius + ie.radius
	lo, nh := dualjoin.Window(c.radii, d-sum, d+sum, lo, hi)
	if nh < hi {
		c.credit(qe, nh) // every pair lies within radii[nh]
	}
	if lo >= nh {
		return
	}
	radii := c.radii
	// Descend the side with the larger covering ball; ties and leaf
	// entries keep the descent deterministic. Child pairs are prefiltered
	// with the stored parent distances: |d - dPar| bounds the child pivot
	// distance from below and d + dPar from above — the upper bound can
	// settle a child block without a metric evaluation.
	if qe.child == nil || (ie.child != nil && ie.radius > qe.radius) {
		// Index side descends: qe's queries accumulate bounds as the
		// children resolve, so the window re-narrows between children.
		entries := ie.child.entries
		for i := range entries {
			nh = c.bound(qe, nh)
			if lo >= nh {
				return
			}
			ce := &entries[i]
			csum := ce.radius + qe.radius
			clb := d - ce.dPar
			if clb < ce.dPar-d {
				clb = ce.dPar - d
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if d+ce.dPar+csum <= radii[b] {
				c.credit(qe, b)
				continue
			}
			c.crossVisit(qe, ce, b, nh)
		}
		return
	}
	entries := qe.child.entries
	for i := range entries {
		ce := &entries[i]
		csum := ce.radius + ie.radius
		clb := d - ce.dPar
		if clb < ce.dPar-d {
			clb = ce.dPar - d
		}
		clb -= csum
		b := lo
		for b < nh && clb > radii[b] {
			b++
		}
		if b == nh {
			continue
		}
		if d+ce.dPar+csum <= radii[b] {
			c.credit(ce, b)
			continue
		}
		c.crossVisit(ce, ie, b, nh)
	}
}
