package slimtree

import (
	"math"

	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the cross-set dual-tree bridge join
// (index.CrossMultiCounter): for every query of a second element set —
// MCCATCH's outliers probing the inlier tree — the index of the first
// radius of a nested schedule with at least one indexed neighbor, from
// one traversal of the inlier tree against a throwaway slim-tree
// bulk-built over the queries. One pivot-to-pivot distance d with the
// two covering radii bounds every query×element pair under an entry pair
// by [d-r1-r2, d+r1+r2] — the self-join's geometry — but accumulation is
// per-query MINIMA (internal/dualjoin's MinAcc) rather than counts, so
// any bound already credited to a query entry narrows later pairs'
// windows from above and prunes their metric evaluations entirely. The
// rows are flat over the throwaway tree's arena — queries by packed
// element position, subtrees by node slot — and the descent prefilters
// child pairs with stored parent distances (the triangle trick
// rangeVisit uses), so many blocks settle without a fresh metric
// evaluation.

// crossCtx is one traversal unit's context: the distance-call counter
// (on the INDEX tree), the throwaway query tree, the radius schedule and
// the unit's min-accumulator.
type crossCtx[T any] struct {
	visitState[T]
	out   *Tree[T]
	radii []float64
	acc   *dualjoin.MinAcc
}

// credit records that every query under query-tree entry qe has an
// indexed neighbor within radii[b]: directly into the query's best row
// for leaf entries, into the subtree's wholesale bound otherwise. This
// is the join's innermost loop (see dualjoin.MinAcc).
func (c *crossCtx[T]) credit(qe int32, b int) {
	if ch := c.out.eChild[qe]; ch >= 0 {
		if int32(b) < c.acc.NodeBest[ch] {
			c.acc.NodeBest[ch] = int32(b)
		}
		return
	}
	if int32(b) < c.acc.Best[c.out.ePos[qe]] {
		c.acc.Best[c.out.ePos[qe]] = int32(b)
	}
}

// bound returns the smallest radius index already credited to every
// query under qe, or hi when none is on record.
func (c *crossCtx[T]) bound(qe int32, hi int) int {
	var b int32
	if ch := c.out.eChild[qe]; ch >= 0 {
		b = c.acc.NodeBest[ch]
	} else {
		b = c.acc.Best[c.out.ePos[qe]]
	}
	if int(b) < hi {
		return int(b)
	}
	return hi
}

// BridgeFirsts returns, for each query element, the index of the first
// radius of the ascending schedule radii with at least one indexed
// element within that radius (inclusive), or len(radii) when even the
// largest radius finds none — computed by a dual-tree traversal of the
// index against a throwaway bulk-built tree over the queries. Results
// are exact (bounds only ever defer ambiguous pairs, never approximate
// them) and identical for every worker count.
func (t *Tree[T]) BridgeFirsts(queries []T, radii []float64, workers int) []int {
	a := len(radii)

	// The units are the pairs of (query root entry, index root entry):
	// each resolves its block of query×element pairs completely, and the
	// per-query minima merge across any schedule.
	type unit struct{ i, j int32 }
	var units []unit
	var qt *Tree[T]
	if t.size > 0 && len(queries) > 0 && a > 0 {
		qt = NewBulkWithWorkers(t.dist, t.capacity, queries, workers)
		for i := qt.entFirst[0]; i < qt.entLast[0]; i++ {
			for j := t.entFirst[0]; j < t.entLast[0]; j++ {
				units = append(units, unit{i, j})
			}
		}
	}
	nodes := 0
	if qt != nil {
		nodes = len(qt.leaf)
	}
	return dualjoin.FirstMatrix(a, len(queries), nodes, workers, len(units),
		func(u int, acc *dualjoin.MinAcc) {
			c := crossCtx[T]{visitState: visitState[T]{t: t}, out: qt, radii: radii, acc: acc}
			// Root entries have no live parent pivot (their dPar is stale
			// by construction), so no prefilter applies up here.
			c.crossVisit(units[u].i, units[u].j, 0, a)
			t.distCalls.Add(c.calls)
		},
		func(node int32) (int32, int32) { return qt.elemFirst[node], qt.elemLast[node] },
		func(pos int32) int { return int(qt.leafIDs[pos]) })
}

// crossVisit classifies the pair of query entry qe (in the throwaway
// tree's arena) against index entry ie (in the index tree's) for the
// radius window [lo, hi): radii below lo are already known to separate
// the two subtrees, and every query under qe is already known to meet an
// indexed element by radii[hi] (an ancestor's or an earlier pair's
// credit, consulted again here so pairs resolved elsewhere prune before
// paying a metric evaluation). Crediting is one-directional — only the
// query side accumulates. A leaf×leaf pair settles inside Window: with
// both covering radii zero the settled index IS the element pair's
// bucket.
func (c *crossCtx[T]) crossVisit(qe, ie int32, lo, hi int) {
	hi = c.bound(qe, hi)
	if lo >= hi {
		return
	}
	in, out := c.t, c.out
	d := c.d(out.ePivot[qe], in.ePivot[ie])
	sum := out.eRD[2*qe] + in.eRD[2*ie]
	lo, nh := dualjoin.Window(c.radii, d-sum, d+sum, lo, hi)
	if nh < hi {
		c.credit(qe, nh) // every pair lies within radii[nh]
	}
	if lo >= nh {
		return
	}
	radii := c.radii
	// Descend the side with the larger covering ball; ties and leaf
	// entries keep the descent deterministic. Child pairs are prefiltered
	// with the stored parent distances: |d - dPar| bounds the child pivot
	// distance from below and d + dPar from above — the upper bound can
	// settle a child block without a metric evaluation.
	if out.eChild[qe] < 0 || (in.eChild[ie] >= 0 && in.eRD[2*ie] > out.eRD[2*qe]) {
		// Index side descends: qe's queries accumulate bounds as the
		// children resolve, so the window re-narrows between children.
		// (A leaf×leaf pair never reaches here: its Window above settles
		// with an empty ambiguous range, since both covering radii are 0.)
		child := in.eChild[ie]
		if out.eChild[qe] < 0 && in.leaf[child] && in.kc != nil && out.kc != nil && in.kdim == out.kdim {
			c.crossScanIndexLeaf(qe, child, d, lo, nh)
			return
		}
		qrad := out.eRD[2*qe]
		for ce := in.entFirst[child]; ce < in.entLast[child]; ce++ {
			nh = c.bound(qe, nh)
			if lo >= nh {
				return
			}
			csum := in.eRD[2*ce] + qrad
			dp := in.eRD[2*ce+1]
			clb := d - dp
			if clb < dp-d {
				clb = dp - d
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if d+dp+csum <= radii[b] {
				c.credit(qe, b)
				continue
			}
			c.crossVisit(qe, ce, b, nh)
		}
		return
	}
	child := out.eChild[qe]
	if out.leaf[child] && in.eChild[ie] < 0 && in.kc != nil && out.kc != nil && in.kdim == out.kdim {
		c.crossScanQueryLeaf(child, ie, d, lo, nh)
		return
	}
	irad := in.eRD[2*ie]
	for ce := out.entFirst[child]; ce < out.entLast[child]; ce++ {
		csum := out.eRD[2*ce] + irad
		dp := out.eRD[2*ce+1]
		clb := d - dp
		if clb < dp-d {
			clb = dp - d
		}
		clb -= csum
		b := lo
		for b < nh && clb > radii[b] {
			b++
		}
		if b == nh {
			continue
		}
		if d+dp+csum <= radii[b] {
			c.credit(ce, b)
			continue
		}
		c.crossVisit(ce, ie, b, nh)
	}
}

// crossScanIndexLeaf is crossVisit's terminal case on the kernel path
// (kernelize.go) for a query ELEMENT qe against a leaf node of the index
// tree: block kernels produce the leaf's squared distances while the
// parent-distance prefilter, the settle test, the per-entry bound
// re-check and the DistCalls accounting run exactly as the per-child
// recursion would — a prefiltered or settled entry's kernel distance is
// computed but never consulted and never counted. d is crossVisit's
// already-computed distance from qe's pivot to the leaf's parent pivot.
func (c *crossCtx[T]) crossScanIndexLeaf(qe, child int32, d float64, lo, nh int) {
	in, out := c.t, c.out
	radii := c.radii
	qv := out.pcoords(qe)
	qrad := out.eRD[2*qe]
	eRD := in.eRD
	var d2 [kernel.Block]float64
	for at, last := int(in.entFirst[child]), int(in.entLast[child]); at < last; {
		bn, _ := kernel.RangeBlock(&d2, nil, qv, in.kc, at, last, 0)
		for o := 0; o < bn; o++ {
			ce := at + o
			nh = c.bound(qe, nh)
			if lo >= nh {
				return
			}
			csum := eRD[2*ce] + qrad
			dp := eRD[2*ce+1]
			clb := d - dp
			if clb < dp-d {
				clb = dp - d
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if d+dp+csum <= radii[b] {
				c.credit(qe, b)
				continue
			}
			// crossVisit(qe, ce, b, nh) on an element pair, inlined —
			// nothing has credited qe since the loop-top bound re-check,
			// so the recursion's own re-check would be a no-op.
			dd := math.Sqrt(d2[o])
			c.calls++
			sum := qrad + eRD[2*ce]
			lb, ub := dd-sum, dd+sum
			for b < nh && lb > radii[b] {
				b++
			}
			n2 := b
			for n2 < nh && ub > radii[n2] {
				n2++
			}
			if n2 < nh {
				c.credit(qe, n2)
			}
		}
		at += bn
	}
}

// crossScanQueryLeaf is crossVisit's terminal case on the kernel path
// for a single index ELEMENT ie against a leaf node of the query tree:
// every query element of the leaf buckets ie's exact distance within its
// own remaining window, with the prefilter, settle test, bound re-check
// and call accounting per entry exactly as the per-child recursion
// would. d is crossVisit's already-computed distance from ie's pivot to
// the leaf's parent pivot.
func (c *crossCtx[T]) crossScanQueryLeaf(child, ie int32, d float64, lo, nh int) {
	in, out := c.t, c.out
	radii := c.radii
	qv := in.pcoords(ie)
	irad := in.eRD[2*ie]
	eRD := out.eRD
	var d2 [kernel.Block]float64
	for at, last := int(out.entFirst[child]), int(out.entLast[child]); at < last; {
		bn, _ := kernel.RangeBlock(&d2, nil, qv, out.kc, at, last, 0)
		for o := 0; o < bn; o++ {
			ce := at + o
			csum := eRD[2*ce] + irad
			dp := eRD[2*ce+1]
			clb := d - dp
			if clb < dp-d {
				clb = dp - d
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if d+dp+csum <= radii[b] {
				c.credit(int32(ce), b)
				continue
			}
			// crossVisit(ce, ie, b, nh) on an element pair, inlined —
			// here the bound re-check is live: ce's own best bound may
			// already cover the window.
			hi2 := c.bound(int32(ce), nh)
			if b >= hi2 {
				continue
			}
			dd := math.Sqrt(d2[o])
			c.calls++
			lb, ub := dd-csum, dd+csum
			for b < hi2 && lb > radii[b] {
				b++
			}
			n2 := b
			for n2 < hi2 && ub > radii[n2] {
				n2++
			}
			if n2 < hi2 {
				c.credit(int32(ce), n2)
			}
		}
		at += bn
	}
}
