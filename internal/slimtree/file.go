package slimtree

// Persistence for the frozen slim-tree arena. The tree is generic over
// the element type, but only the two shapes MCCATCH instantiates have an
// on-disk form: []float64 under metric.Euclidean (arena.KindSlimVec —
// the pivot coordinates persist as the same flat entry-major column the
// kernelized scans already use) and string (arena.KindSlimStr — pivots
// persist as one byte blob plus an offset column). Save dispatches on
// the concrete element type; any other instantiation reports an error.
//
// A metric function cannot be serialized, so the file stores only data
// and structure. OpenVec re-attaches metric.Euclidean (the only metric
// a vec file can have been built under — Save refuses non-kernelized
// vector trees); OpenStr takes the caller's metric, which must be the
// one the tree was built with for query results to be meaningful. The
// header's diameter field preserves the build-time diameter estimate,
// so opening a string index never re-runs the O(k·n) estimator and the
// radii schedule derived from it stays byte-identical.

import (
	"fmt"
	"io"

	"mccatch/internal/arena"
	"mccatch/internal/metric"
)

// Save writes the tree in the arena index-file format. Only
// Tree[[]float64] (built under metric.Euclidean) and Tree[string] can be
// persisted.
func (t *Tree[T]) Save(w io.Writer) error {
	aw, err := t.writer()
	if err != nil {
		return err
	}
	_, err = aw.WriteTo(w)
	return err
}

// WriteFile writes the tree to path (atomically: temp file + rename),
// under the same element-type restrictions as Save.
func (t *Tree[T]) WriteFile(path string) error {
	aw, err := t.writer()
	if err != nil {
		return err
	}
	return aw.WriteFile(path)
}

func (t *Tree[T]) writer() (*arena.Writer, error) {
	var w *arena.Writer
	scalars := [4]int64{int64(len(t.leaf)), int64(len(t.eID)), int64(t.capacity)}
	switch pivots := any(t.ePivot).(type) {
	case [][]float64:
		if t.size > 0 && t.kc == nil {
			return nil, fmt.Errorf("slimtree: only trees built under metric.Euclidean can be saved as a vector index")
		}
		w = arena.NewWriter(arena.KindSlimVec, t.size, t.kdim, t.DiameterEstimate(), scalars)
		w.F64("pivots", t.kc)
	case []string:
		blob, off := packStrings(pivots)
		w = arena.NewWriter(arena.KindSlimStr, t.size, 0, t.DiameterEstimate(), scalars)
		w.U8("pivots.blob", blob)
		w.I32("pivots.off", off)
	default:
		return nil, fmt.Errorf("slimtree: no on-disk format for element type %T", t.ePivot)
	}
	w.Bool("leaf", t.leaf)
	w.I32("entFirst", t.entFirst)
	w.I32("entLast", t.entLast)
	w.I32("elemFirst", t.elemFirst)
	w.I32("elemLast", t.elemLast)
	w.I32("parent", t.parent)
	w.F64("eRD", t.eRD)
	w.I32("eCount", t.eCount)
	w.I32("eID", t.eID)
	w.I32("eChild", t.eChild)
	w.I32("ePos", t.ePos)
	w.I32("leafIDs", t.leafIDs)
	return w, nil
}

// packStrings flattens the pivot strings into one byte blob plus an
// offset column (len(pivots)+1 entries; pivot k is blob[off[k]:off[k+1]]).
func packStrings(pivots []string) ([]byte, []int32) {
	total := 0
	for _, s := range pivots {
		total += len(s)
	}
	blob := make([]byte, 0, total)
	off := make([]int32, 1, len(pivots)+1)
	for _, s := range pivots {
		blob = append(blob, s...)
		off = append(off, int32(len(blob)))
	}
	return blob, off
}

// OpenVec opens a vector slim-tree index file under metric.Euclidean:
// mmap-backed where available, heap-read otherwise (or under
// arena.WithHeap). Close the tree to release the mapping.
func OpenVec(path string, opts ...arena.Option) (*Tree[[]float64], error) {
	f, err := arena.Open(path, opts...)
	if err != nil {
		return nil, err
	}
	t, err := FromFileVec(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// FromFileVec reconstructs a vector slim-tree over an already-opened
// arena file. On success the tree owns f and Close releases it.
func FromFileVec(f *arena.File) (*Tree[[]float64], error) {
	if err := f.ExpectKind(arena.KindSlimVec); err != nil {
		return nil, err
	}
	t := &Tree[[]float64]{dist: metric.Euclidean, src: f}
	nEntries, err := t.loadCommon(f)
	if err != nil || t.size == 0 {
		return t, err
	}
	if f.Dim <= 0 {
		return nil, fmt.Errorf("%w: slim arena: dimension %d", arena.ErrBadIndexFile, f.Dim)
	}
	pivots, err := f.F64("pivots")
	if err != nil {
		return nil, err
	}
	if len(pivots) != nEntries*f.Dim {
		return nil, fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, "pivots", len(pivots), nEntries*f.Dim)
	}
	t.kc, t.kdim = pivots, f.Dim
	t.ePivot = make([][]float64, nEntries)
	for k := range t.ePivot {
		t.ePivot[k] = pivots[k*f.Dim : (k+1)*f.Dim]
	}
	if err := t.validateArena(); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenStr opens a string slim-tree index file. dist must be the metric
// the tree was built with — the file stores no way to check, and query
// results under any other metric are undefined (though still safe).
func OpenStr(path string, dist metric.Distance[string], opts ...arena.Option) (*Tree[string], error) {
	f, err := arena.Open(path, opts...)
	if err != nil {
		return nil, err
	}
	t, err := FromFileStr(f, dist)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// FromFileStr reconstructs a string slim-tree over an already-opened
// arena file with the caller's metric. On success the tree owns f and
// Close releases it.
func FromFileStr(f *arena.File, dist metric.Distance[string]) (*Tree[string], error) {
	if err := f.ExpectKind(arena.KindSlimStr); err != nil {
		return nil, err
	}
	t := &Tree[string]{dist: dist, src: f}
	nEntries, err := t.loadCommon(f)
	if err != nil || t.size == 0 {
		return t, err
	}
	blob, err := f.U8("pivots.blob")
	if err != nil {
		return nil, err
	}
	off, err := f.I32("pivots.off")
	if err != nil {
		return nil, err
	}
	if len(off) != nEntries+1 || off[0] != 0 || int(off[nEntries]) != len(blob) {
		return nil, fmt.Errorf("%w: slim arena: pivot offsets do not span the blob", arena.ErrBadIndexFile)
	}
	t.ePivot = make([]string, nEntries)
	for k := 0; k < nEntries; k++ {
		if off[k] > off[k+1] {
			return nil, fmt.Errorf("%w: slim arena: pivot offsets not monotone at %d", arena.ErrBadIndexFile, k)
		}
		// string() copies out of the mapping: pivots stay valid even if
		// the caller closes the tree while holding query results.
		t.ePivot[k] = string(blob[off[k]:off[k+1]])
	}
	if err := t.validateArena(); err != nil {
		return nil, err
	}
	return t, nil
}

// loadCommon loads and shape-checks the element-type-independent arena
// columns, returning the entry count. The element-specific pivot column
// and the structural validation remain the caller's job.
func (t *Tree[T]) loadCommon(f *arena.File) (int, error) {
	t.size = f.N
	t.capacity = int(f.Scalars[2])
	t.diam, t.diamValid = f.Diameter, true
	if t.capacity < 4 {
		return 0, fmt.Errorf("%w: slim arena: capacity %d", arena.ErrBadIndexFile, t.capacity)
	}
	if f.N == 0 {
		return 0, nil
	}
	nNodes := int(f.Scalars[0])
	nEntries := int(f.Scalars[1])
	if nNodes < 1 || nEntries < 1 {
		return 0, fmt.Errorf("%w: slim arena: %d nodes, %d entries for %d elements", arena.ErrBadIndexFile, nNodes, nEntries, f.N)
	}
	var err error
	get64 := func(name string, want int) []float64 {
		vals, e := f.F64(name)
		if e != nil {
			err = e
		} else if len(vals) != want && err == nil {
			err = fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, name, len(vals), want)
		}
		return vals
	}
	get32 := func(name string, want int) []int32 {
		vals, e := f.I32(name)
		if e != nil {
			err = e
		} else if len(vals) != want && err == nil {
			err = fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, name, len(vals), want)
		}
		return vals
	}
	if t.leaf, err = f.Bool("leaf"); err != nil {
		return 0, err
	}
	if len(t.leaf) != nNodes {
		return 0, fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, "leaf", len(t.leaf), nNodes)
	}
	t.entFirst = get32("entFirst", nNodes)
	t.entLast = get32("entLast", nNodes)
	t.elemFirst = get32("elemFirst", nNodes)
	t.elemLast = get32("elemLast", nNodes)
	t.parent = get32("parent", nNodes)
	t.eRD = get64("eRD", 2*nEntries)
	t.eCount = get32("eCount", nEntries)
	t.eID = get32("eID", nEntries)
	t.eChild = get32("eChild", nEntries)
	t.ePos = get32("ePos", nEntries)
	t.leafIDs = get32("leafIDs", f.N)
	if err != nil {
		return 0, err
	}
	return nEntries, nil
}

// Items returns the indexed elements in id order, reconstructed from the
// leaf-entry pivots (every element appears as exactly one leaf pivot).
// For file-backed vector trees the elements are read-only views into the
// mapped pivot column.
func (t *Tree[T]) Items() []T {
	items := make([]T, t.size)
	for k, id := range t.eID {
		if id >= 0 {
			items[id] = t.ePivot[k]
		}
	}
	return items
}

// Capacity returns the node capacity the tree was built with.
func (t *Tree[T]) Capacity() int { return t.capacity }

// Close releases the backing file mapping of a tree produced by
// OpenVec/OpenStr (no-op for trees built in memory).
func (t *Tree[T]) Close() error {
	if t.src == nil {
		return nil
	}
	f := t.src
	t.src = nil
	return f.Close()
}

// validateArena checks the frozen-arena invariants every traversal
// relies on for termination and bounds safety: entry runs tile the SoA
// columns in node order, child nodes live at strictly larger slots than
// their parent (BFS layout — recursion terminates) and are each claimed
// exactly once, element positions walk each node's contiguous range in
// entry order, and leafIDs is a permutation. O(nodes + entries + n).
func (t *Tree[T]) validateArena() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: slim arena: %s", arena.ErrBadIndexFile, fmt.Sprintf(format, args...))
	}
	nNodes := int32(len(t.leaf))
	nEntries := int32(len(t.eID))
	n := int32(t.size)
	if t.parent[0] != noEntry {
		return bad("root has parent %d", t.parent[0])
	}
	if t.entFirst[0] != 0 || t.entLast[nNodes-1] != nEntries {
		return bad("entry runs do not span the columns")
	}
	if t.elemFirst[0] != 0 || t.elemLast[0] != n {
		return bad("root element range [%d, %d) over %d elements", t.elemFirst[0], t.elemLast[0], n)
	}
	claimed := make([]bool, nNodes)
	seen := make([]bool, n)
	for node := int32(0); node < nNodes; node++ {
		first, last := t.entFirst[node], t.entLast[node]
		if first > last || last > nEntries {
			return bad("node %d: entry range [%d, %d)", node, first, last)
		}
		if node > 0 && first != t.entLast[node-1] {
			return bad("node %d: entry run not contiguous", node)
		}
		ef, el := t.elemFirst[node], t.elemLast[node]
		if ef < 0 || el < ef || el > n {
			return bad("node %d: element range [%d, %d)", node, ef, el)
		}
		pos := ef
		for k := first; k < last; k++ {
			if t.leaf[node] {
				if t.eChild[k] != noEntry {
					return bad("leaf node %d: entry %d has child %d", node, k, t.eChild[k])
				}
				if t.eCount[k] != 1 {
					return bad("leaf node %d: entry %d counts %d", node, k, t.eCount[k])
				}
				if t.ePos[k] != pos || pos >= el {
					return bad("leaf node %d: entry %d at position %d, want %d", node, k, t.ePos[k], pos)
				}
				id := t.eID[k]
				if id < 0 || id >= n || seen[id] {
					return bad("entry %d: id %d missing or duplicated", k, id)
				}
				seen[id] = true
				if t.leafIDs[pos] != id {
					return bad("position %d: packed id %d, entry id %d", pos, t.leafIDs[pos], id)
				}
				pos++
				continue
			}
			c := t.eChild[k]
			if c <= node || c >= nNodes {
				return bad("node %d: entry %d child %d out of order", node, k, c)
			}
			if claimed[c] {
				return bad("node %d claimed twice", c)
			}
			claimed[c] = true
			if t.parent[c] != node {
				return bad("node %d: child %d claims parent %d", node, c, t.parent[c])
			}
			if t.eID[k] != noEntry || t.ePos[k] != noEntry {
				return bad("internal entry %d carries element fields", k)
			}
			if t.elemFirst[c] != pos {
				return bad("node %d: child %d elements start at %d, want %d", node, c, t.elemFirst[c], pos)
			}
			pos = t.elemLast[c]
			if t.eCount[k] != pos-t.elemFirst[c] {
				return bad("entry %d: count %d over child range [%d, %d)", k, t.eCount[k], t.elemFirst[c], pos)
			}
		}
		if pos != el {
			return bad("node %d: entries cover [%d, %d), want [%d, %d)", node, ef, pos, ef, el)
		}
	}
	for c := int32(1); c < nNodes; c++ {
		if !claimed[c] {
			return bad("node %d unreachable", c)
		}
	}
	return nil
}
