package slimtree

import (
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/metric"
)

// TestKernelizeDetection pins which configurations get the kernel
// coordinate column: exactly []float64 elements under metric.Euclidean
// itself — clones and other metrics keep the generic path.
func TestKernelizeDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 300, 3)
	eu := New(metric.Euclidean, 8, pts)
	if eu.kc == nil || eu.kdim != 3 {
		t.Fatalf("Euclidean []float64 tree should kernelize, kc=%v kdim=%d", eu.kc != nil, eu.kdim)
	}
	if len(eu.kc) != len(eu.ePivot)*3 {
		t.Fatalf("kc has %d coords for %d entries", len(eu.kc), len(eu.ePivot))
	}
	for k, p := range eu.ePivot {
		if !reflect.DeepEqual(eu.pcoords(int32(k)), p) {
			t.Fatalf("kc entry %d diverges from its pivot", k)
		}
	}
	if man := New(metric.Manhattan, 8, pts); man.kc != nil {
		t.Fatal("Manhattan tree must keep the generic path")
	}
	clone := func(a, b []float64) float64 { return metric.Euclidean(a, b) }
	if cl := New(clone, 8, pts); cl.kc != nil {
		t.Fatal("a Euclidean clone must keep the generic path")
	}
	ints := make([]int, 50)
	for i := range ints {
		ints[i] = i
	}
	intDist := func(a, b int) float64 {
		d := float64(a - b)
		if d < 0 {
			return -d
		}
		return d
	}
	if it := New(intDist, 8, ints); it.kc != nil {
		t.Fatal("non-vector elements must keep the generic path")
	}
	if bulk := NewBulk(metric.Euclidean, 8, pts); bulk.kc == nil {
		t.Fatal("bulk-loaded Euclidean tree should kernelize")
	}
}

// TestKernelPathEquivalence runs every query and join of a kernelized
// tree against the SAME frozen tree with the kernel column stripped
// (forcing the generic per-entry loops) and demands bit-identical
// results AND identical DistCalls totals — the contract that lets the
// kernel path replace the generic one silently.
func TestKernelPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dim := range []int{2, 3, 8} {
		pts := randPoints(rng, 600, dim)
		kt := New(metric.Euclidean, 8, pts)
		if kt.kc == nil {
			t.Fatalf("dim %d: tree did not kernelize", dim)
		}
		gt := New(metric.Euclidean, 8, pts)
		gt.kc, gt.kdim = nil, 0 // same frozen arena, generic path

		radii := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
		queries := randPoints(rng, 40, dim)
		run := func(tr *Tree[[]float64], q []float64, r float64) (int, []int, []int, []int, []float64) {
			c := tr.RangeCount(q, r)
			ids := tr.RangeQuery(q, r)
			multi := tr.RangeCountMulti(q, radii)
			kids, kd := tr.KNN(q, 7)
			return c, ids, multi, kids, kd
		}
		kt.ResetDistCalls()
		gt.ResetDistCalls()
		for qi, q := range queries {
			r := radii[qi%len(radii)]
			kc1, kids1, km1, kn1, kd1 := run(kt, q, r)
			gc1, gids1, gm1, gn1, gd1 := run(gt, q, r)
			if kc1 != gc1 || !reflect.DeepEqual(kids1, gids1) || !reflect.DeepEqual(km1, gm1) ||
				!reflect.DeepEqual(kn1, gn1) || !reflect.DeepEqual(kd1, gd1) {
				t.Fatalf("dim %d query %d: kernel path diverges from generic", dim, qi)
			}
		}
		if k, g := kt.DistCalls(), gt.DistCalls(); k != g {
			t.Fatalf("dim %d: kernel queries made %d metric calls, generic %d", dim, k, g)
		}

		for _, workers := range []int{1, 3} {
			kt.ResetDistCalls()
			gt.ResetDistCalls()
			if !reflect.DeepEqual(kt.CountAllMulti(radii, workers), gt.CountAllMulti(radii, workers)) {
				t.Fatalf("dim %d workers %d: CountAllMulti diverges", dim, workers)
			}
			if k, g := kt.DistCalls(), gt.DistCalls(); k != g {
				t.Fatalf("dim %d workers %d: self-join calls %d vs %d", dim, workers, k, g)
			}
			if !reflect.DeepEqual(kt.BridgeFirsts(queries, radii, workers), gt.BridgeFirsts(queries, radii, workers)) {
				t.Fatalf("dim %d workers %d: BridgeFirsts diverges", dim, workers)
			}
		}
	}
}
