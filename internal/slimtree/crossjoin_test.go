package slimtree

import (
	"fmt"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// bruteFirstsDist is the brute-force oracle for the cross join under any
// metric: for every query, the index of the first radius at or above the
// distance to its nearest indexed element, or len(radii) when even the
// largest radius falls short. Comparisons happen on plain distances, the
// domain every slim-tree query path uses.
func bruteFirstsDist[T any](dist metric.Distance[T], in, queries []T, radii []float64) []int {
	firsts := make([]int, len(queries))
	for i, q := range queries {
		e := len(radii)
		for _, p := range in {
			d := dist(q, p)
			b := 0
			for b < e && d > radii[b] {
				b++
			}
			if b < e {
				e = b
			}
		}
		firsts[i] = e
	}
	return firsts
}

var crossWorkerCounts = []int{1, 2, 8}

func assertBridgeFirstsMatch[T any](t *testing.T, label string, tr *Tree[T], dist metric.Distance[T], in, queries []T, radii []float64) {
	t.Helper()
	want := bruteFirstsDist(dist, in, queries, radii)
	for _, workers := range crossWorkerCounts {
		got := tr.BridgeFirsts(queries, radii, workers)
		if len(got) != len(want) {
			t.Fatalf("%s (workers=%d): %d results, want %d", label, workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s (workers=%d): firsts[%d] = %d, want %d",
					label, workers, i, got[i], want[i])
			}
		}
	}
}

func TestBridgeFirstsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(400)
		dim := 1 + rng.Intn(4)
		in := randPoints(rng, n, dim)
		queries := randPoints(rng, rng.Intn(80), dim)
		for i := rng.Intn(10); i > 0; i-- {
			queries = append(queries, append([]float64(nil), in[rng.Intn(len(in))]...))
		}
		// Both build paths must answer identically; small capacities force
		// deep trees.
		var tr *Tree[[]float64]
		capacity := []int{0, 4, 8}[rng.Intn(3)]
		if trial%2 == 0 {
			tr = NewBulk(metric.Euclidean, capacity, in)
		} else {
			tr = New(metric.Euclidean, capacity, in)
		}
		assertBridgeFirstsMatch(t, fmt.Sprintf("trial%d", trial), tr, metric.Euclidean, in, queries, randRadii(rng, 150))
	}
}

func TestBridgeFirstsStrings(t *testing.T) {
	// The nondimensional path: edit distance over words, queries far from
	// and near to the indexed stems.
	rng := rand.New(rand.NewSource(68))
	var in, queries []string
	for i := 0; i < 150; i++ {
		stem := []byte("microclustering")
		for j := rng.Intn(4); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		in = append(in, string(stem[:8+rng.Intn(7)]))
	}
	for i := 0; i < 25; i++ {
		stem := []byte("microclustering")
		for j := rng.Intn(6); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		queries = append(queries, string(stem[:6+rng.Intn(9)]))
	}
	for i := 0; i < 8; i++ { // far-off digit words
		w := make([]byte, 18+rng.Intn(8))
		for j := range w {
			w[j] = byte('0' + rng.Intn(10))
		}
		queries = append(queries, string(w))
	}
	tr := NewBulk(metric.Levenshtein, 0, in)
	assertBridgeFirstsMatch(t, "strings", tr, metric.Levenshtein, in, queries,
		[]float64{0.5, 1, 2, 3, 5, 8, 13, 21})
}

func TestBridgeFirstsEdges(t *testing.T) {
	in := [][]float64{{0, 0}, {1, 0}}
	tr := NewBulk(metric.Euclidean, 0, in)
	if got := tr.BridgeFirsts(nil, []float64{1, 2}, 1); len(got) != 0 {
		t.Errorf("no queries: got %v, want empty", got)
	}
	if got := tr.BridgeFirsts([][]float64{{5, 5}}, nil, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("empty radii: got %v, want [0]", got)
	}
	empty := NewBulk(metric.Euclidean, 0, nil)
	if got := empty.BridgeFirsts([][]float64{{1, 1}}, []float64{1, 2}, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("empty tree: got %v, want [len(radii)]", got)
	}
	one := NewBulk(metric.Euclidean, 0, [][]float64{{0, 0}})
	got := one.BridgeFirsts([][]float64{{100, 0}, {0.5, 0}, {0, 0}}, []float64{1, 2, 4}, 1)
	if got[0] != 3 || got[1] != 0 || got[2] != 0 {
		t.Errorf("single indexed element: got %v, want [3 0 0]", got)
	}
}

// TestBridgeFirstsRepeatable guards accumulator reuse: repeated calls on
// the same tree must agree with each other at every worker count.
func TestBridgeFirstsRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	in := randPoints(rng, 300, 2)
	queries := randPoints(rng, 60, 2)
	tr := NewBulk(metric.Euclidean, 0, in)
	radii := randRadii(rng, 150)
	first := tr.BridgeFirsts(queries, radii, 1)
	second := tr.BridgeFirsts(queries, radii, 4)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("second call differs at %d: %d vs %d", i, first[i], second[i])
		}
	}
}
