package slimtree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"mccatch/internal/arena"
	"mccatch/internal/metric"
)

func filePoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		pts[i] = row
	}
	return pts
}

func fileWords(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	words := make([]string, n)
	for i := range words {
		b := make([]byte, 3+rng.Intn(6))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		words[i] = string(b)
	}
	return words
}

// fileQueryEquivalent drives every query path on both trees and demands
// identical answers.
func fileQueryEquivalent[T any](t *testing.T, label string, want, got *Tree[T], queries []T, radii []float64) {
	t.Helper()
	if want.Size() != got.Size() || want.Height() != got.Height() {
		t.Fatalf("%s: shape mismatch", label)
	}
	if d1, d2 := want.DiameterEstimate(), got.DiameterEstimate(); d1 != d2 {
		t.Errorf("%s: diameter %v vs %v", label, d1, d2)
	}
	for qi, q := range queries {
		for _, r := range radii {
			if c1, c2 := want.RangeCount(q, r), got.RangeCount(q, r); c1 != c2 {
				t.Fatalf("%s: RangeCount(q%d, %v) %d vs %d", label, qi, r, c1, c2)
			}
			if i1, i2 := want.RangeQuery(q, r), got.RangeQuery(q, r); !reflect.DeepEqual(i1, i2) {
				t.Fatalf("%s: RangeQuery(q%d, %v) mismatch", label, qi, r)
			}
		}
		if m1, m2 := want.RangeCountMulti(q, radii), got.RangeCountMulti(q, radii); !reflect.DeepEqual(m1, m2) {
			t.Fatalf("%s: RangeCountMulti(q%d) %v vs %v", label, qi, m1, m2)
		}
		i1, d1 := want.KNN(q, 5)
		i2, d2 := got.KNN(q, 5)
		if !reflect.DeepEqual(i1, i2) || !reflect.DeepEqual(d1, d2) {
			t.Fatalf("%s: KNN(q%d) mismatch", label, qi)
		}
	}
	if a1, a2 := want.CountAllMulti(radii, 2), got.CountAllMulti(radii, 2); !reflect.DeepEqual(a1, a2) {
		t.Errorf("%s: CountAllMulti mismatch", label)
	}
	if b1, b2 := want.BridgeFirsts(queries, radii, 2), got.BridgeFirsts(queries, radii, 2); !reflect.DeepEqual(b1, b2) {
		t.Errorf("%s: BridgeFirsts mismatch", label)
	}
}

func TestFileRoundTripVec(t *testing.T) {
	for _, n := range []int{1, 40, 300} {
		for _, bulk := range []bool{false, true} {
			pts := filePoints(n, 3, int64(n))
			var built *Tree[[]float64]
			if bulk {
				built = NewBulk(metric.Euclidean, 8, pts)
			} else {
				built = New(metric.Euclidean, 8, pts)
			}
			queries := filePoints(8, 3, 99)
			radii := []float64{0.5, 2, 8, 32}

			path := filepath.Join(t.TempDir(), "slim.mcidx")
			if err := built.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				label string
				opts  []arena.Option
			}{{"mmap", nil}, {"heap", []arena.Option{arena.WithHeap()}}} {
				label := fmt.Sprintf("n=%d bulk=%v %s", n, bulk, mode.label)
				opened, err := OpenVec(path, mode.opts...)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if opened.kc == nil {
					t.Errorf("%s: kernel column not attached", label)
				}
				fileQueryEquivalent(t, label, built, opened, queries, radii)
				var first, second bytes.Buffer
				if err := built.Save(&first); err != nil {
					t.Fatal(err)
				}
				if err := opened.Save(&second); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Errorf("%s: re-save not byte-identical", label)
				}
				if err := opened.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestFileRoundTripStr(t *testing.T) {
	words := fileWords(120, 7)
	built := New(metric.Levenshtein, 8, words)
	queries := fileWords(8, 11)
	radii := []float64{1, 2, 3, 5}

	path := filepath.Join(t.TempDir(), "slimstr.mcidx")
	if err := built.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		label string
		opts  []arena.Option
	}{{"mmap", nil}, {"heap", []arena.Option{arena.WithHeap()}}} {
		opened, err := OpenStr(path, metric.Levenshtein, mode.opts...)
		if err != nil {
			t.Fatalf("%s: %v", mode.label, err)
		}
		fileQueryEquivalent(t, mode.label, built, opened, queries, radii)
		// The stored diameter must round-trip without re-running the
		// estimator: a second estimate would re-call the metric.
		before := opened.DistCalls()
		if d := opened.DiameterEstimate(); d != built.DiameterEstimate() {
			t.Errorf("%s: diameter %v vs %v", mode.label, d, built.DiameterEstimate())
		}
		if calls := opened.DistCalls() - before; calls != 0 {
			t.Errorf("%s: stored diameter still cost %d metric calls", mode.label, calls)
		}
		if err := opened.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileRefusesUnsupported(t *testing.T) {
	// A custom Euclidean clone is not metric.Euclidean itself: the tree
	// stays unkernelized and has no faithful on-disk form.
	clone := func(a, b []float64) float64 { return metric.Euclidean(a, b) }
	tr := New(clone, 8, filePoints(10, 2, 3))
	if err := tr.Save(&bytes.Buffer{}); err == nil {
		t.Error("custom-metric vector tree saved")
	}
	// Element types beyond []float64 and string have no format at all.
	g := New(metric.GraphDistance, 8, []metric.Graph{
		metric.NewGraph(2, [][2]int{{0, 1}}),
		metric.NewGraph(3, [][2]int{{0, 1}, {1, 2}}),
	})
	if err := g.Save(&bytes.Buffer{}); err == nil {
		t.Error("graph tree saved")
	}
}

func TestFileEmptyTrees(t *testing.T) {
	for _, save := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return New[[]float64](metric.Euclidean, 8, nil).Save(b) },
		func(b *bytes.Buffer) error { return New[string](metric.Levenshtein, 8, nil).Save(b) },
	} {
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			t.Fatal(err)
		}
		f, err := arena.Decode(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		switch f.Kind {
		case arena.KindSlimVec:
			tr, err := FromFileVec(f)
			if err != nil || tr.Size() != 0 {
				t.Errorf("empty vec round trip: %v", err)
			}
		case arena.KindSlimStr:
			tr, err := FromFileStr(f, metric.Levenshtein)
			if err != nil || tr.Size() != 0 {
				t.Errorf("empty str round trip: %v", err)
			}
		}
	}
}

// TestFileStructuralValidation corrupts arena invariants in ways the
// checksums cannot catch (the writer recomputes CRCs over the corrupted
// slices) and checks open refuses each file rather than recursing
// forever or indexing out of bounds later.
func TestFileStructuralValidation(t *testing.T) {
	pts := filePoints(100, 2, 5)
	for name, mutate := range map[string]func(*Tree[[]float64]){
		"root parent":     func(tr *Tree[[]float64]) { tr.parent[0] = 0 },
		"root elems":      func(tr *Tree[[]float64]) { tr.elemLast[0] = 7 },
		"entry gap":       func(tr *Tree[[]float64]) { tr.entFirst[1]++ },
		"child cycle":     func(tr *Tree[[]float64]) { tr.eChild[firstInternalEntry(tr)] = 0 },
		"child overflow":  func(tr *Tree[[]float64]) { tr.eChild[firstInternalEntry(tr)] = int32(len(tr.leaf)) + 3 },
		"count mismatch":  func(tr *Tree[[]float64]) { tr.eCount[firstInternalEntry(tr)]++ },
		"leaf child":      func(tr *Tree[[]float64]) { k := firstLeafEntry(tr); tr.eChild[k] = int32(len(tr.leaf) - 1) },
		"leaf count":      func(tr *Tree[[]float64]) { tr.eCount[firstLeafEntry(tr)] = 2 },
		"pos mismatch":    func(tr *Tree[[]float64]) { tr.ePos[firstLeafEntry(tr)]++ },
		"duplicate id":    func(tr *Tree[[]float64]) { k := firstLeafEntry(tr); tr.eID[k] = tr.eID[k+1] },
		"packed mismatch": func(tr *Tree[[]float64]) { tr.leafIDs[0], tr.leafIDs[1] = tr.leafIDs[1], tr.leafIDs[0] },
		"bad capacity":    func(tr *Tree[[]float64]) { tr.capacity = 1 },
	} {
		t.Run(name, func(t *testing.T) {
			tr := New(metric.Euclidean, 4, pts)
			// Pin the diameter so Save's header pass never re-runs the
			// estimator over deliberately corrupted id columns.
			tr.diam, tr.diamValid = 1, true
			mutate(tr)
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatal(err)
			}
			f, err := arena.Decode(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := FromFileVec(f); !errors.Is(err, arena.ErrBadIndexFile) {
				t.Errorf("corrupted %s accepted: %v", name, err)
			}
		})
	}
}

func firstInternalEntry(tr *Tree[[]float64]) int32 {
	for k, c := range tr.eChild {
		if c >= 0 {
			return int32(k)
		}
	}
	return 0
}

func firstLeafEntry(tr *Tree[[]float64]) int32 {
	for k, c := range tr.eChild {
		if c < 0 {
			return int32(k)
		}
	}
	return 0
}

func TestFileKindMismatchSlim(t *testing.T) {
	tr := New(metric.Euclidean, 8, filePoints(8, 2, 1))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	f, err := arena.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromFileStr(f, metric.Levenshtein); !errors.Is(err, arena.ErrIndexKind) {
		t.Errorf("vec file opened as str: %v", err)
	}
}
