package slimtree

import (
	"math"

	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the dual-tree multi-radius self-join: the neighbor
// counts of EVERY indexed element at EVERY radius of a nested schedule,
// from one traversal of the tree against itself. Per-point probing — even
// batched across radii — must re-discover the same subtree-level geometry
// once per query point; the dual traversal instead classifies pairs of
// subtrees: one pivot-to-pivot distance d with the two covering radii
// bounds every element pair under the entries by [d-r1-r2, d+r1+r2], so
// whole blocks of pairs are credited (or discarded) wholesale and only
// pairs straddling some radius descend toward element-level distances.
// The join is symmetric — d(x,y) = d(y,x) — so unordered entry pairs are
// visited once and credited in both directions, halving the metric
// evaluations again. The traversal walks the arena's SoA entry slices
// (radius/dPar/count stream linearly through the prefilters) and credits
// flat rows: leaf entries by their packed element position, subtrees by
// their child node slot, whose contiguous element range the merge pushes
// the credit down over. The accumulator, scheduling and merge machinery
// is internal/dualjoin's.

// dualCtx is one traversal unit's context: the distance-call counter, the
// radius schedule and the unit's accumulator.
type dualCtx[T any] struct {
	visitState[T]
	radii []float64
	acc   *dualjoin.Acc
	// rows/stride cache acc.Point: in direct (serial) mode credit writes
	// the two row adds in place — the accumulator method with its
	// buffered fallback is beyond the inlining budget, and crediting is
	// the join's innermost loop.
	rows   []int
	stride int
}

// CountAllMulti returns counts[e][id] = the number of indexed elements
// within radii[e] of element id (inclusive, so ≥ 1), for every indexed
// element and every radius of the ascending schedule radii — the Step II
// self-join — computed by a dual-tree traversal instead of per-element
// probes. Counts are exact: bounds only ever defer ambiguous pairs, never
// approximate them. workers ≤ 0 means all cores, 1 means serial; the
// result is identical for every value.
func (t *Tree[T]) CountAllMulti(radii []float64, workers int) [][]int {
	a := len(radii)

	// The units are the unordered pairs of root entries (self-pairs
	// included).
	type unit struct{ i, j int32 }
	var units []unit
	if len(t.leaf) > 0 {
		first, last := t.entFirst[0], t.entLast[0]
		units = make([]unit, 0, (last-first)*(last-first+1)/2)
		for i := first; i < last; i++ {
			for j := i; j < last; j++ {
				units = append(units, unit{i, j})
			}
		}
	}
	return dualjoin.CountMatrix(a, t.size, len(t.leaf), workers, len(units),
		func(u int, acc *dualjoin.Acc) {
			c := dualCtx[T]{visitState: visitState[T]{t: t}, radii: radii, acc: acc,
				rows: acc.Point, stride: acc.Stride}
			if units[u].i == units[u].j {
				// Root entries have no live parent pivot (their dPar is
				// stale by construction), so no prefilter applies up here.
				c.selfVisit(units[u].i, 0, a)
			} else {
				c.symVisit(units[u].i, units[u].j, 0, a)
			}
			t.distCalls.Add(c.calls)
		},
		func(node int32) (int32, int32) { return t.elemFirst[node], t.elemLast[node] },
		func(pos int32) int { return int(t.leafIDs[pos]) })
}

// credit adds cnt to every radius in [from, to) for every element under
// entry e: directly into the element's position row for leaf entries,
// into the child subtree's wholesale row otherwise. This is the join's
// innermost loop (see dualjoin.Acc).
func (c *dualCtx[T]) credit(e int32, from, to, cnt int) {
	if ch := c.t.eChild[e]; ch >= 0 {
		// Wholesale subtree credit: rarer than element credits, so the
		// accumulator method is fine here.
		c.acc.CreditNode(ch, from, to, cnt)
		return
	}
	if rows := c.rows; rows != nil {
		row := rows[int(c.t.ePos[e])*c.stride:]
		row[from] += cnt
		row[to] -= cnt
		return
	}
	c.acc.CreditPos(c.t.ePos[e], from, to, cnt)
}

// symVisit classifies the unordered pair of DISTINCT entries (ae, be) for
// the radius window [lo, hi): radii below lo are already known to
// separate the two subtrees, radii at and above hi have already been
// credited by an ancestor pair. Every credit goes both ways — be's
// elements to ae's rows and vice versa — so each unordered pair is
// traversed exactly once.
func (c *dualCtx[T]) symVisit(ae, be int32, lo, hi int) {
	t := c.t
	// Hoist the SoA columns into locals: the loop below interleaves
	// loads with calls (metric, credits, recursion), and local slice
	// headers stay in registers across them where repeated field loads
	// off t would not.
	eRD, eCount, eChild := t.eRD, t.eCount, t.eChild
	d := c.d(t.ePivot[ae], t.ePivot[be])
	sum := eRD[2*ae] + eRD[2*be]
	radii := c.radii
	// Any pair of elements under (ae, be) lies within [d-sum, d+sum].
	lb := d - sum
	for lo < hi && lb > radii[lo] {
		lo++ // the subtrees are fully separated at the smallest radii
	}
	nh := lo
	ub := d + sum
	for nh < hi && ub > radii[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	if nh < hi {
		c.credit(ae, nh, hi, int(eCount[be]))
		c.credit(be, nh, hi, int(eCount[ae]))
	}
	if lo >= nh {
		return // nothing ambiguous (always the case for element pairs)
	}
	// Descend the side with the larger covering ball; ties and leaf
	// entries keep the descent deterministic. Child pairs are prefiltered
	// with the stored parent distances (the triangle trick rangeVisit
	// uses): |d - dPar| bounds the child pivot distance from below and
	// d + dPar from above — the upper bound can settle a child pair
	// wholesale without a metric evaluation.
	down, other := ae, be
	if eChild[ae] < 0 || (eChild[be] >= 0 && eRD[2*be] > eRD[2*ae]) {
		down, other = be, ae
	}
	child := eChild[down]
	if t.leaf[child] && eChild[other] < 0 && t.kc != nil {
		c.symScanLeaf(child, other, d, lo, nh)
		return
	}
	otherCount := int(eCount[other])
	otherRadius := eRD[2*other]
	first, last := t.entFirst[child], t.entLast[child]
	for ce := first; ce < last; ce++ {
		csum := eRD[2*ce] + otherRadius
		dp := eRD[2*ce+1]
		clb := d - dp
		if clb < dp-d {
			clb = dp - d
		}
		clb -= csum
		b := lo
		for b < nh && clb > radii[b] {
			b++
		}
		if b == nh {
			continue
		}
		if d+dp+csum <= radii[b] {
			c.credit(ce, b, nh, otherCount)
			c.credit(other, b, nh, int(eCount[ce]))
			continue
		}
		c.symVisit(ce, other, b, nh)
	}
}

// selfVisit classifies the pair of entry ae's subtree with itself for the
// radius window [lo, hi). All pairs lie within 2·ae.radius, so radii at
// and above that settle wholesale (each element gains the whole subtree,
// itself included); the ambiguous radii descend into child pairs —
// unordered cross pairs plus each child against itself. An element's self
// pair bottoms out here, crediting 1 at every remaining radius.
func (c *dualCtx[T]) selfVisit(ae int32, lo, hi int) {
	t := c.t
	if t.eChild[ae] < 0 {
		// d(x, x) = 0 ≤ every radius.
		if rows := c.rows; rows != nil {
			row := rows[int(t.ePos[ae])*c.stride:]
			row[lo]++
			row[hi]--
			return
		}
		c.acc.CreditPos(t.ePos[ae], lo, hi, 1)
		return
	}
	radii := c.radii
	nh := lo
	ub := 2 * t.eRD[2*ae]
	for nh < hi && ub > radii[nh] {
		nh++
	}
	if nh < hi {
		c.credit(ae, nh, hi, int(t.eCount[ae]))
	}
	if lo >= nh {
		return
	}
	eRD, eCount := t.eRD, t.eCount
	child := t.eChild[ae]
	if t.leaf[child] && t.kc != nil {
		c.selfScanLeaf(child, lo, nh)
		return
	}
	first, last := t.entFirst[child], t.entLast[child]
	for i := first; i < last; i++ {
		c.selfVisit(i, lo, nh)
		di := eRD[2*i+1]
		for j := i + 1; j < last; j++ {
			// Siblings share a parent pivot: their stored parent
			// distances bound d(ci, cj) within |dPar_i - dPar_j| and
			// dPar_i + dPar_j.
			csum := eRD[2*i] + eRD[2*j]
			clb := di - eRD[2*j+1]
			if clb < 0 {
				clb = -clb
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if di+eRD[2*j+1]+csum <= radii[b] {
				c.credit(i, b, nh, int(eCount[j]))
				c.credit(j, b, nh, int(eCount[i]))
				continue
			}
			c.symVisit(i, j, b, nh)
		}
	}
}

// selfScanLeaf is selfVisit's leaf base case on the kernel path
// (kernelize.go): every unordered pair of the leaf's contiguous entry
// range resolves here, the squared distances produced by block kernels
// while the sibling triangle prefilter, the settle test and the
// DistCalls accounting run per pair exactly as the selfVisit/symVisit
// recursion would — a prefiltered or settled pair's kernel distance is
// computed but never consulted and never counted. A settled pair lands
// in the exact pair's bucket: radii[b-1] < |dPar_i - dPar_j| ≤ d(i,j) ≤
// dPar_i + dPar_j ≤ radii[b], so nothing is approximated.
func (c *dualCtx[T]) selfScanLeaf(child int32, lo, nh int) {
	t := c.t
	eRD, eCount := t.eRD, t.eCount
	radii := c.radii
	var d2 [kernel.Block]float64
	first, last := int(t.entFirst[child]), int(t.entLast[child])
	for i := first; i < last; i++ {
		c.selfVisit(int32(i), lo, nh) // element self pair: d = 0
		qi := t.pcoords(int32(i))
		di := eRD[2*i+1]
		for at := i + 1; at < last; {
			bn, _ := kernel.RangeBlock(&d2, nil, qi, t.kc, at, last, 0)
			for o := 0; o < bn; o++ {
				j := at + o
				csum := eRD[2*i] + eRD[2*j]
				clb := di - eRD[2*j+1]
				if clb < 0 {
					clb = -clb
				}
				clb -= csum
				b := lo
				for b < nh && clb > radii[b] {
					b++
				}
				if b == nh {
					continue
				}
				if di+eRD[2*j+1]+csum <= radii[b] {
					c.credit(int32(i), b, nh, int(eCount[j]))
					c.credit(int32(j), b, nh, int(eCount[i]))
					continue
				}
				// symVisit(i, j, b, nh) on an element pair, inlined.
				d := math.Sqrt(d2[o])
				c.calls++
				lb, ub := d-csum, d+csum
				for b < nh && lb > radii[b] {
					b++
				}
				n2 := b
				for n2 < nh && ub > radii[n2] {
					n2++
				}
				if n2 < nh {
					c.credit(int32(i), n2, nh, int(eCount[j]))
					c.credit(int32(j), n2, nh, int(eCount[i]))
				}
			}
			at += bn
		}
	}
}

// symScanLeaf is symVisit's element-vs-leaf base case on the kernel
// path: the single element `other` resolves against the leaf's
// contiguous entry range by block kernels, with the parent-distance
// prefilter, the settle test and the DistCalls accounting per entry
// exactly as the per-child recursion would. d is symVisit's
// already-computed distance from other's pivot to the leaf's parent
// pivot.
func (c *dualCtx[T]) symScanLeaf(child, other int32, d float64, lo, nh int) {
	t := c.t
	eRD, eCount := t.eRD, t.eCount
	radii := c.radii
	q := t.pcoords(other)
	otherCount := int(eCount[other])
	otherRadius := eRD[2*other]
	var d2 [kernel.Block]float64
	for at, last := int(t.entFirst[child]), int(t.entLast[child]); at < last; {
		bn, _ := kernel.RangeBlock(&d2, nil, q, t.kc, at, last, 0)
		for o := 0; o < bn; o++ {
			ce := at + o
			csum := eRD[2*ce] + otherRadius
			dp := eRD[2*ce+1]
			clb := d - dp
			if clb < dp-d {
				clb = dp - d
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if d+dp+csum <= radii[b] {
				c.credit(int32(ce), b, nh, otherCount)
				c.credit(other, b, nh, int(eCount[ce]))
				continue
			}
			// symVisit(ce, other, b, nh) on an element pair, inlined.
			dd := math.Sqrt(d2[o])
			c.calls++
			lb, ub := dd-csum, dd+csum
			for b < nh && lb > radii[b] {
				b++
			}
			n2 := b
			for n2 < nh && ub > radii[n2] {
				n2++
			}
			if n2 < nh {
				c.credit(int32(ce), n2, nh, otherCount)
				c.credit(other, n2, nh, int(eCount[ce]))
			}
		}
		at += bn
	}
}
