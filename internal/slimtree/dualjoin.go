package slimtree

import (
	"mccatch/internal/dualjoin"
)

// This file implements the dual-tree multi-radius self-join: the neighbor
// counts of EVERY indexed element at EVERY radius of a nested schedule,
// from one traversal of the tree against itself. Per-point probing — even
// batched across radii — must re-discover the same subtree-level geometry
// once per query point; the dual traversal instead classifies pairs of
// subtrees: one pivot-to-pivot distance d with the two covering radii
// bounds every element pair under the entries by [d-r1-r2, d+r1+r2], so
// whole blocks of pairs are credited (or discarded) wholesale and only
// pairs straddling some radius descend toward element-level distances.
// The join is symmetric — d(x,y) = d(y,x) — so unordered entry pairs are
// visited once and credited in both directions, halving the metric
// evaluations again. The accumulator, scheduling and merge machinery is
// internal/dualjoin's.

// dualCtx is one traversal unit's context: the distance-call counter, the
// radius schedule and the unit's accumulator.
type dualCtx[T any] struct {
	visitState[T]
	radii []float64
	acc   *dualjoin.Acc[*node[T]]
}

// CountAllMulti returns counts[e][id] = the number of indexed elements
// within radii[e] of element id (inclusive, so ≥ 1), for every indexed
// element and every radius of the ascending schedule radii — the Step II
// self-join — computed by a dual-tree traversal instead of per-element
// probes. Counts are exact: bounds only ever defer ambiguous pairs, never
// approximate them. workers ≤ 0 means all cores, 1 means serial; the
// result is identical for every value.
func (t *Tree[T]) CountAllMulti(radii []float64, workers int) [][]int {
	a := len(radii)

	// The units are the unordered pairs of root entries (self-pairs
	// included).
	type unit struct{ i, j int }
	var units []unit
	if t.root != nil {
		k := len(t.root.entries)
		units = make([]unit, 0, k*(k+1)/2)
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				units = append(units, unit{i, j})
			}
		}
	}
	return dualjoin.CountMatrix(a, t.size, workers, len(units),
		func(u int, acc *dualjoin.Acc[*node[T]]) {
			c := dualCtx[T]{visitState: visitState[T]{t: t}, radii: radii, acc: acc}
			root := t.root.entries
			if units[u].i == units[u].j {
				// Root entries have no live parent pivot (their dPar is
				// stale by construction), so no prefilter applies up here.
				c.selfVisit(&root[units[u].i], 0, a)
			} else {
				c.symVisit(&root[units[u].i], &root[units[u].j], 0, a)
			}
			t.distCalls.Add(c.calls)
		},
		addSubtree)
}

// addSubtree adds a difference row to every element stored under n.
func addSubtree[T any](n *node[T], diff, merged []int) {
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil {
			addSubtree(e.child, diff, merged)
			continue
		}
		row := merged[e.id*len(diff):]
		for k, v := range diff {
			row[k] += v
		}
	}
}

// credit adds c to every radius in [from, to) for every element under e:
// directly into the element's difference row for leaf entries, into the
// subtree's wholesale accumulator otherwise. The rows are written raw —
// this is the join's innermost loop (see dualjoin.Acc).
func (c *dualCtx[T]) credit(e *entry[T], from, to, cnt int) {
	var row []int
	if e.child == nil {
		row = c.acc.Point[e.id*c.acc.Stride:]
	} else {
		row = c.acc.Nodes[e.child]
		if row == nil {
			row = make([]int, c.acc.Stride)
			c.acc.Nodes[e.child] = row
		}
	}
	row[from] += cnt
	row[to] -= cnt
}

// symVisit classifies the unordered pair of DISTINCT entries (ae, be) for
// the radius window [lo, hi): radii below lo are already known to
// separate the two subtrees, radii at and above hi have already been
// credited by an ancestor pair. Every credit goes both ways — be's
// elements to ae's rows and vice versa — so each unordered pair is
// traversed exactly once.
func (c *dualCtx[T]) symVisit(ae, be *entry[T], lo, hi int) {
	d := c.d(ae.pivot, be.pivot)
	sum := ae.radius + be.radius
	radii := c.radii
	// Any pair of elements under (ae, be) lies within [d-sum, d+sum].
	lb := d - sum
	for lo < hi && lb > radii[lo] {
		lo++ // the subtrees are fully separated at the smallest radii
	}
	nh := lo
	ub := d + sum
	for nh < hi && ub > radii[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	if nh < hi {
		c.credit(ae, nh, hi, be.count)
		c.credit(be, nh, hi, ae.count)
	}
	if lo >= nh {
		return // nothing ambiguous (always the case for element pairs)
	}
	// Descend the side with the larger covering ball; ties and leaf
	// entries keep the descent deterministic. Child pairs are prefiltered
	// with the stored parent distances (the triangle trick rangeVisit
	// uses): |d - dPar| bounds the child pivot distance from below and
	// d + dPar from above — the upper bound can settle a child pair
	// wholesale without a metric evaluation.
	down, other := ae, be
	if ae.child == nil || (be.child != nil && be.radius > ae.radius) {
		down, other = be, ae
	}
	entries := down.child.entries
	for i := range entries {
		ce := &entries[i]
		csum := ce.radius + other.radius
		clb := d - ce.dPar
		if clb < ce.dPar-d {
			clb = ce.dPar - d
		}
		clb -= csum
		b := lo
		for b < nh && clb > radii[b] {
			b++
		}
		if b == nh {
			continue
		}
		if d+ce.dPar+csum <= radii[b] {
			c.credit(ce, b, nh, other.count)
			c.credit(other, b, nh, ce.count)
			continue
		}
		c.symVisit(ce, other, b, nh)
	}
}

// selfVisit classifies the pair of entry ae's subtree with itself for the
// radius window [lo, hi). All pairs lie within 2·ae.radius, so radii at
// and above that settle wholesale (each element gains the whole subtree,
// itself included); the ambiguous radii descend into child pairs —
// unordered cross pairs plus each child against itself. An element's self
// pair bottoms out here, crediting 1 at every remaining radius.
func (c *dualCtx[T]) selfVisit(ae *entry[T], lo, hi int) {
	if ae.child == nil {
		c.credit(ae, lo, hi, 1) // d(x, x) = 0 ≤ every radius
		return
	}
	radii := c.radii
	nh := lo
	ub := 2 * ae.radius
	for nh < hi && ub > radii[nh] {
		nh++
	}
	if nh < hi {
		c.credit(ae, nh, hi, ae.count)
	}
	if lo >= nh {
		return
	}
	entries := ae.child.entries
	for i := range entries {
		ci := &entries[i]
		c.selfVisit(ci, lo, nh)
		for j := i + 1; j < len(entries); j++ {
			cj := &entries[j]
			// Siblings share a parent pivot: their stored parent
			// distances bound d(ci, cj) within |dPar_i - dPar_j| and
			// dPar_i + dPar_j.
			csum := ci.radius + cj.radius
			clb := ci.dPar - cj.dPar
			if clb < 0 {
				clb = -clb
			}
			clb -= csum
			b := lo
			for b < nh && clb > radii[b] {
				b++
			}
			if b == nh {
				continue
			}
			if ci.dPar+cj.dPar+csum <= radii[b] {
				c.credit(ci, b, nh, cj.count)
				c.credit(cj, b, nh, ci.count)
				continue
			}
			c.symVisit(ci, cj, b, nh)
		}
	}
}
