package slimtree

// Kernelization of the slim-tree's Euclidean hot loops (ROADMAP item 4).
//
// The slim-tree is generic over any metric — it never sees coordinates —
// but MCCATCH's vector spaces all run it with metric.Euclidean over
// []float64 elements, and there the per-entry d(q, pivot) calls in the
// leaf scans leave internal/kernel's block kernels on the table. freeze()
// therefore detects that exact configuration — the concrete element type
// AND the metric's code pointer; any wrapped or custom metric, even a
// Euclidean clone, keeps the generic path — and lays the entry pivots'
// coordinates out as one flat entry-major column, the same single-block
// layout the kd/R arenas hand the kernels. Leaf scans then stream
// contiguous entry ranges through kernel chunks and take math.Sqrt per
// element, which is bit-identical to metric.Euclidean (the same
// ascending-dimension accumulation under the same correctly-rounded
// square root), while every triangle prefilter, settle test and
// DistCalls increment keeps running per entry EXACTLY as the generic
// loops would — an entry the prefilter skips has its kernel distance
// computed but never consulted and never counted. Results and DistCalls
// totals are therefore unchanged down to the bit.
//
// No quantized Summary is built for the slim-tree: covering-ball
// geometry already prunes at node granularity before any scan starts,
// and a leaf holds at most `capacity` entries, so the uint8 prefilter
// would bound blocks the triangle tests already classify.

import (
	"math"
	"reflect"

	"mccatch/internal/kernel"
	"mccatch/internal/metric"
)

// euclideanPtr identifies metric.Euclidean by code pointer: the one
// metric whose arithmetic internal/kernel reproduces bit-for-bit.
var euclideanPtr = reflect.ValueOf(metric.Euclidean).Pointer()

// kernelize inspects the frozen tree and, when the element type is
// []float64 and the metric is metric.Euclidean itself, flattens the
// entry pivots into the entry-major coordinate column kc. Runs at every
// freeze — insertion build, bulk load and SlimDown's re-freeze alike —
// so the column always mirrors the live arena. Ragged or empty inputs
// keep the generic path.
func (t *Tree[T]) kernelize() {
	t.kc, t.kdim = nil, 0
	dist, ok := any(t.dist).(metric.Distance[[]float64])
	if !ok || reflect.ValueOf(dist).Pointer() != euclideanPtr {
		return
	}
	pivots, ok := any(t.ePivot).([][]float64)
	if !ok || len(pivots) == 0 {
		return
	}
	dim := len(pivots[0])
	if dim == 0 {
		return
	}
	for _, p := range pivots {
		if len(p) != dim {
			return
		}
	}
	kc := make([]float64, len(pivots)*dim)
	for k, p := range pivots {
		copy(kc[k*dim:(k+1)*dim], p)
	}
	t.kc, t.kdim = kc, dim
}

// queryCoords returns q's coordinate slice when the kernel column is
// active and q matches its dimensionality, else nil (generic path).
func (t *Tree[T]) queryCoords(q T) []float64 {
	if t.kc == nil {
		return nil
	}
	qc, ok := any(q).([]float64)
	if !ok || len(qc) != t.kdim {
		return nil
	}
	return qc
}

// pcoords returns the coordinate slice of entry k's pivot in the kernel
// column.
func (t *Tree[T]) pcoords(k int32) []float64 {
	return t.kc[int(k)*t.kdim : (int(k)+1)*t.kdim]
}

// scanRangeLeaf is rangeVisit's leaf body on the kernel path: the node's
// contiguous entry range streams through block kernels, while the
// triangle prefilter, the count/collect tests and the DistCalls
// accounting run per entry exactly as rangeVisit's loop would.
func (v *visitState[T]) scanRangeLeaf(n int32, r, dq float64, ids *[]int) int {
	t := v.t
	qc := v.qc
	hasDq := !math.IsNaN(dq)
	count := 0
	var d2 [kernel.Block]float64
	for at, last := int(t.entFirst[n]), int(t.entLast[n]); at < last; {
		bn, _ := kernel.RangeBlock(&d2, nil, qc, t.kc, at, last, 0)
		for i := 0; i < bn; i++ {
			k := at + i
			if hasDq && math.Abs(dq-t.eRD[2*k+1]) > r+t.eRD[2*k] {
				continue
			}
			d := math.Sqrt(d2[i])
			v.calls++
			if d <= r {
				count++
				if ids != nil {
					*ids = append(*ids, int(t.eID[k]))
				}
			}
		}
		at += bn
	}
	return count
}

// scanMultiLeaf is multiVisit's leaf body on the kernel path: block
// kernels produce the squared distances, the per-radius triangle
// prefilter and the bucket scan run per entry exactly as multiVisit's
// loop would.
func (v *visitState[T]) scanMultiLeaf(n int32, radii []float64, dq float64, lo, hi int, diff []int) {
	t := v.t
	qc := v.qc
	hasDq := !math.IsNaN(dq)
	var d2 [kernel.Block]float64
	for at, last := int(t.entFirst[n]), int(t.entLast[n]); at < last; {
		bn, _ := kernel.RangeBlock(&d2, nil, qc, t.kc, at, last, 0)
		for i := 0; i < bn; i++ {
			k := at + i
			rad := t.eRD[2*k]
			b := lo
			if hasDq {
				for b < hi && math.Abs(dq-t.eRD[2*k+1]) > radii[b]+rad {
					b++
				}
				if b == hi {
					continue
				}
			}
			d := math.Sqrt(d2[i])
			v.calls++
			for b < hi && d > radii[b] {
				b++
			}
			if b < hi {
				diff[b]++
				diff[hi]--
			}
		}
		at += bn
	}
}
