// Package slimtree implements a main-memory Slim-tree (Traina Jr. et al.,
// IEEE TKDE 2002): a balanced metric access method in the M-tree family that
// indexes data using only a distance function, never coordinates. MCCATCH
// builds one tree per input set and runs all of its neighbor-counting joins
// through it (paper Alg. 1 L1, Alg. 3 L9, Alg. 4 L2-3).
//
// The tree supports any element type via generics. Insertion uses the
// min-distance ChooseSubtree policy with minMax node splits; queries use
// triangle-inequality pruning on covering radii and stored parent distances,
// so a range query touches O(n^(1-1/u)) nodes on data of intrinsic
// (correlation fractal) dimension u — the bound MCCATCH's Lemma 1 builds on.
//
// Construction (incremental insert or bulk load) works on linked nodes,
// but a finished tree is FROZEN into a flat arena before any query runs:
// nodes are laid out level by level with their entries as one contiguous
// range [entFirst, entLast) of struct-of-arrays entry slices (pivot, the
// interleaved radius/dPar block, count, id, child), and the element ids
// under every
// subtree as the contiguous range [elemFirst, elemLast) of a packed
// leafIDs block. Traversals therefore stream radius/dPar/count values
// linearly instead of chasing per-node entry slices, and the dual joins
// credit whole subtrees as flat position ranges. The pointer tree is
// dropped at freeze time; SlimDown thaws it back, reorganizes, and
// re-freezes.
package slimtree

import (
	"math"
	"sync/atomic"

	"mccatch/internal/arena"
	"mccatch/internal/diameter"
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
	"mccatch/internal/metric"
)

// DefaultCapacity is the default maximum number of entries per node. 32
// keeps splits cheap (minMax split is quadratic in the capacity) while
// keeping the tree shallow.
const DefaultCapacity = 32

type entry[T any] struct {
	pivot  T
	id     int      // element index for leaf entries, -1 for internal
	radius float64  // covering radius; 0 for leaf entries
	dPar   float64  // distance from pivot to the parent entry's pivot
	child  *node[T] // nil for leaf entries
	count  int      // elements under this entry (1 for leaf entries)
}

type node[T any] struct {
	leaf    bool
	entries []entry[T]
}

// noEntry marks an absent arena link (no child node, no element id).
const noEntry = -1

// Tree is a Slim-tree over elements of type T. After construction the
// tree lives in the flat arena fields (see the package comment); the
// linked root is non-nil only while building or inside SlimDown.
type Tree[T any] struct {
	dist     metric.Distance[T]
	capacity int
	root     *node[T] // construction-time only; nil once frozen
	size     int

	// Frozen arena. Nodes are slots assigned level by level (root = 0);
	// entries are slots into the SoA slices below.
	leaf                []bool
	entFirst, entLast   []int32 // node → its entries [first, last)
	elemFirst, elemLast []int32 // node → its element positions [first, last)
	parent              []int32 // node → parent node (noEntry at the root)
	ePivot              []T
	// eRD interleaves the two hottest entry columns — eRD[2k] = covering
	// radius, eRD[2k+1] = parent distance — because every triangle
	// prefilter in the query and join hot loops consults both for the
	// same entry back to back: one block keeps the pair on one cache
	// line where two parallel columns paid two loads a stride apart
	// (ROADMAP j: the ~8% constant overhead vs the old pointer joins on
	// cheap metrics).
	eRD     []float64
	eCount  []int32
	eID     []int32 // leaf entries: element id; internal: noEntry
	eChild  []int32 // internal entries: child node; leaf: noEntry
	ePos    []int32 // leaf entries: packed element position; internal: noEntry
	leafIDs []int32 // packed element ids, depth-first order

	// Kernel coordinate column (kernelize.go): the entry pivots'
	// coordinates, entry-major, built at freeze time when the element
	// type is []float64 and the metric is metric.Euclidean itself; nil
	// otherwise, and every scan keeps the generic per-entry path.
	kc   []float64
	kdim int

	// distCalls counts metric evaluations (atomically, so concurrent
	// read-only queries may share a tree); experiments use it to verify the
	// subquadratic query behavior that Lemma 1 predicts.
	distCalls atomic.Int64

	// src is the backing index file when the tree was produced by
	// OpenVec/OpenStr (the arena columns are views into its mapping); nil
	// for trees built in memory.
	src *arena.File
	// diam holds the persisted diameter estimate of a file-backed tree
	// (diamValid true): the estimator is deterministic over the same data
	// and metric, so returning the stored value keeps the radii schedule —
	// and the whole pipeline — byte-identical while skipping the O(k·n)
	// metric evaluations a cold re-estimate would cost.
	diam      float64
	diamValid bool
}

// DistCalls returns the number of metric evaluations performed so far.
func (t *Tree[T]) DistCalls() int64 { return t.distCalls.Load() }

// ResetDistCalls zeroes the metric-evaluation counter.
func (t *Tree[T]) ResetDistCalls() { t.distCalls.Store(0) }

// New builds a Slim-tree with the given distance and node capacity
// (DefaultCapacity if cap < 4), inserting the items in order. Item i is
// reported by queries as id i.
func New[T any](dist metric.Distance[T], capacity int, items []T) *Tree[T] {
	if capacity < 4 {
		capacity = DefaultCapacity
	}
	t := &Tree[T]{dist: dist, capacity: capacity}
	for i, it := range items {
		t.insert(it, i)
	}
	t.freeze()
	return t
}

// Size returns the number of indexed elements.
func (t *Tree[T]) Size() int { return t.size }

func (t *Tree[T]) d(a, b T) float64 {
	t.distCalls.Add(1)
	return t.dist(a, b)
}

// freeze flattens the linked tree into the arena and drops the linked
// nodes. A breadth-first walk assigns node slots level by level — each
// node's entries land in one contiguous SoA range, in entry order — and
// a depth-first pass packs the element ids under every subtree into one
// contiguous leafIDs range (slim-trees balance by splitting at the root,
// and the bulk loader caps group sizes per level, but neither guarantees
// every leaf sits at the same depth, so the element order is the
// depth-first one rather than the last level's). No metric is ever
// evaluated here.
func (t *Tree[T]) freeze() {
	if t.root == nil {
		t.leaf, t.entFirst, t.entLast, t.parent = nil, nil, nil, nil
		t.ePivot, t.eRD = nil, nil
		t.eCount, t.eID, t.eChild, t.ePos, t.leafIDs = nil, nil, nil, nil, nil
		t.kc, t.kdim = nil, 0
		return
	}
	// Pre-count nodes and entries so every arena slice is allocated
	// exactly once (append-grown slices would copy log-many times and
	// strand up to half their capacity).
	nNodes, nEntries := 0, 0
	var count func(n *node[T])
	count = func(n *node[T]) {
		nNodes++
		nEntries += len(n.entries)
		for i := range n.entries {
			if n.entries[i].child != nil {
				count(n.entries[i].child)
			}
		}
	}
	count(t.root)
	t.leaf = make([]bool, 0, nNodes)
	t.entFirst = make([]int32, 0, nNodes)
	t.entLast = make([]int32, 0, nNodes)
	t.parent = make([]int32, 0, nNodes)
	t.ePivot = make([]T, 0, nEntries)
	t.eRD = make([]float64, 0, 2*nEntries)
	t.eCount = make([]int32, 0, nEntries)
	t.eID = make([]int32, 0, nEntries)
	t.eChild = make([]int32, 0, nEntries)
	t.ePos = make([]int32, 0, nEntries)
	t.leafIDs = make([]int32, 0, t.size)
	type item struct {
		n   *node[T]
		par int32
	}
	queue := make([]item, 0, nNodes)
	queue = append(queue, item{t.root, noEntry})
	for at := 0; at < len(queue); at++ {
		n := queue[at].n
		t.leaf = append(t.leaf, n.leaf)
		t.parent = append(t.parent, queue[at].par)
		t.entFirst = append(t.entFirst, int32(len(t.eID)))
		for i := range n.entries {
			e := &n.entries[i]
			t.ePivot = append(t.ePivot, e.pivot)
			t.eRD = append(t.eRD, e.radius, e.dPar)
			t.eCount = append(t.eCount, int32(e.count))
			t.eID = append(t.eID, int32(e.id))
			t.ePos = append(t.ePos, noEntry)
			if e.child != nil {
				t.eChild = append(t.eChild, int32(len(queue)))
				queue = append(queue, item{e.child, int32(at)})
			} else {
				t.eChild = append(t.eChild, noEntry)
			}
		}
		t.entLast = append(t.entLast, int32(len(t.eID)))
	}
	t.elemFirst = make([]int32, len(t.leaf))
	t.elemLast = make([]int32, len(t.leaf))
	t.assignElems(0)
	t.kernelize()
	t.root = nil
}

// assignElems packs the element ids under node n depth-first, recording
// the node's contiguous position range and each leaf entry's position.
func (t *Tree[T]) assignElems(n int32) {
	t.elemFirst[n] = int32(len(t.leafIDs))
	for k := t.entFirst[n]; k < t.entLast[n]; k++ {
		if c := t.eChild[k]; c >= 0 {
			t.assignElems(c)
			continue
		}
		t.ePos[k] = int32(len(t.leafIDs))
		t.leafIDs = append(t.leafIDs, t.eID[k])
	}
	t.elemLast[n] = int32(len(t.leafIDs))
}

// thaw rebuilds the linked tree from the arena (the inverse of freeze),
// so construction-time algorithms — SlimDown — can reorganize it.
func (t *Tree[T]) thaw() {
	if t.root != nil || len(t.leaf) == 0 {
		return
	}
	var build func(n int32) *node[T]
	build = func(n int32) *node[T] {
		nn := &node[T]{leaf: t.leaf[n], entries: make([]entry[T], 0, t.entLast[n]-t.entFirst[n])}
		for k := t.entFirst[n]; k < t.entLast[n]; k++ {
			e := entry[T]{
				pivot:  t.ePivot[k],
				id:     int(t.eID[k]),
				radius: t.eRD[2*k],
				dPar:   t.eRD[2*k+1],
				count:  int(t.eCount[k]),
			}
			if c := t.eChild[k]; c >= 0 {
				e.child = build(c)
			}
			nn.entries = append(nn.entries, e)
		}
		return nn
	}
	t.root = build(0)
}

// insert adds one element with the given id.
func (t *Tree[T]) insert(item T, id int) {
	t.size++
	if t.root == nil {
		t.root = &node[T]{leaf: true, entries: []entry[T]{{pivot: item, id: id, count: 1}}}
		return
	}
	e1, e2, split := t.insertAt(t.root, nil, item, id)
	if split {
		// Root entries have no parent pivot; their dPar is never consulted
		// because queries start with dq = NaN.
		t.root = &node[T]{leaf: false, entries: []entry[T]{e1, e2}}
	}
}

// insertAt inserts into the subtree rooted at n, whose entries hang under
// parentPivot (nil at the root). When n overflows it splits and returns the
// two promoted entries with split=true; the CALLER must fix their dPar
// against its own parent pivot before storing them, since promoted entries
// move one level up.
func (t *Tree[T]) insertAt(n *node[T], parentPivot *T, item T, id int) (e1, e2 entry[T], split bool) {
	if n.leaf {
		ne := entry[T]{pivot: item, id: id, count: 1}
		if parentPivot != nil {
			ne.dPar = t.d(item, *parentPivot)
		}
		n.entries = append(n.entries, ne)
		if len(n.entries) > t.capacity {
			return t.splitNode(n)
		}
		return entry[T]{}, entry[T]{}, false
	}
	// ChooseSubtree (minDist policy): prefer the child whose region already
	// covers the item; among those pick the closest pivot. If none covers,
	// pick the one needing the smallest radius increase.
	best := -1
	bestD := math.Inf(1)
	covered := false
	dists := make([]float64, len(n.entries))
	for i := range n.entries {
		dists[i] = t.d(item, n.entries[i].pivot)
		c := dists[i] <= n.entries[i].radius
		switch {
		case c && !covered:
			covered, best, bestD = true, i, dists[i]
		case c && covered && dists[i] < bestD:
			best, bestD = i, dists[i]
		case !c && !covered:
			if inc := dists[i] - n.entries[i].radius; inc < bestD {
				best, bestD = i, inc
			}
		}
	}
	ch := &n.entries[best]
	if dists[best] > ch.radius {
		ch.radius = dists[best]
	}
	ch.count++
	c1, c2, didSplit := t.insertAt(ch.child, &ch.pivot, item, id)
	if didSplit {
		// Promoted entries now live in n: recompute their parent distance
		// against n's own parent pivot.
		if parentPivot != nil {
			c1.dPar = t.d(c1.pivot, *parentPivot)
			c2.dPar = t.d(c2.pivot, *parentPivot)
		}
		// Replace the overflowed child entry by the two promoted ones.
		n.entries[best] = c1
		n.entries = append(n.entries, c2)
		if len(n.entries) > t.capacity {
			return t.splitNode(n)
		}
	}
	return entry[T]{}, entry[T]{}, false
}

// splitNode performs a minMax split: it tries pivot pairs and keeps the pair
// whose balanced assignment yields the smallest larger covering radius, then
// returns the two promoted entries. To bound the cost on large capacities it
// examines a deterministic subset of candidate pairs.
func (t *Tree[T]) splitNode(n *node[T]) (entry[T], entry[T], bool) {
	m := len(n.entries)
	// Pairwise distances among entry pivots.
	dm := make([][]float64, m)
	for i := range dm {
		dm[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := t.d(n.entries[i].pivot, n.entries[j].pivot)
			dm[i][j], dm[j][i] = d, d
		}
	}
	bestI, bestJ := 0, 1
	bestScore := math.Inf(1)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			r1, r2 := assignRadii(dm, n.entries, i, j)
			score := math.Max(r1, r2)
			if score < bestScore {
				bestScore, bestI, bestJ = score, i, j
			}
		}
	}
	// Distribute each entry to the closer pivot, breaking ties toward bestI
	// except for bestJ itself, so both sides are nonempty even when every
	// pairwise distance is zero (duplicate-heavy data).
	var side1, side2 []int
	for k := 0; k < m; k++ {
		if dm[k][bestI] <= dm[k][bestJ] && k != bestJ {
			side1 = append(side1, k)
		} else {
			side2 = append(side2, k)
		}
	}
	build := func(pivotIdx int, side []int) (*node[T], float64, int) {
		nn := &node[T]{leaf: n.leaf, entries: make([]entry[T], 0, len(side))}
		r := 0.0
		total := 0
		for _, k := range side {
			e := n.entries[k]
			e.dPar = dm[k][pivotIdx]
			nn.entries = append(nn.entries, e)
			total += e.count
			if cover := e.dPar + e.radius; cover > r {
				r = cover
			}
		}
		return nn, r, total
	}
	n1, r1, c1 := build(bestI, side1)
	n2, r2, c2 := build(bestJ, side2)
	e1 := entry[T]{pivot: n.entries[bestI].pivot, id: -1, radius: r1, child: n1, count: c1}
	e2 := entry[T]{pivot: n.entries[bestJ].pivot, id: -1, radius: r2, child: n2, count: c2}
	return e1, e2, true
}

// assignRadii simulates assigning every entry to the closer of pivots i and
// j and returns the two covering radii that would result.
func assignRadii[T any](dm [][]float64, entries []entry[T], i, j int) (r1, r2 float64) {
	for k := range entries {
		d1 := dm[k][i] + entries[k].radius
		d2 := dm[k][j] + entries[k].radius
		if dm[k][i] <= dm[k][j] {
			if d1 > r1 {
				r1 = d1
			}
		} else {
			if d2 > r2 {
				r2 = d2
			}
		}
	}
	return r1, r2
}

// RangeCount returns the number of indexed elements within distance r of q
// (inclusive).
func (t *Tree[T]) RangeCount(q T, r float64) int {
	if t.size == 0 {
		return 0
	}
	v := visitState[T]{t: t, qc: t.queryCoords(q)}
	count := v.rangeVisit(0, q, r, math.NaN(), nil)
	t.distCalls.Add(v.calls)
	return count
}

// RangeQuery returns the ids of elements within distance r of q (inclusive),
// in no particular order.
func (t *Tree[T]) RangeQuery(q T, r float64) []int {
	return t.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend appends the ids of elements within distance r of q
// (inclusive) to dst, reusing dst's capacity, and returns the extended
// slice. It lets hot loops recycle one scratch buffer across probes.
func (t *Tree[T]) RangeQueryAppend(q T, r float64, dst []int) []int {
	if t.size == 0 {
		return dst
	}
	v := visitState[T]{t: t, qc: t.queryCoords(q)}
	v.rangeVisit(0, q, r, math.NaN(), &dst)
	t.distCalls.Add(v.calls)
	return dst
}

// visitState carries one query's traversal context: the metric evaluations
// are counted locally and flushed to the tree's atomic counter once per
// query, keeping an atomic read-modify-write (and its cache-line
// contention under concurrent probes) out of the innermost loop.
type visitState[T any] struct {
	t     *Tree[T]
	calls int64
	qc    []float64 // q's coordinates when the kernel path is active (kernelize.go)
}

func (v *visitState[T]) d(a, b T) float64 {
	v.calls++
	return v.t.dist(a, b)
}

// RangeCountMulti returns the neighbor count at every radius of the
// ascending schedule radii from ONE tree traversal; see
// RangeCountMultiAppend for the allocation-free form.
func (t *Tree[T]) RangeCountMulti(q T, radii []float64) []int {
	return t.RangeCountMultiAppend(q, radii, nil)
}

// RangeCountMultiAppend appends the neighbor count at every radius of the
// ascending schedule radii — computed in ONE tree traversal — to dst,
// reusing dst's capacity, and returns the extended slice. The traversal
// keeps, per subtree, the window [lo, hi) of radii still unresolved: an
// entry whose covering ball lies inside radii[e] is credited (via its
// stored element count) to every radius ≥ e without being descended, and
// radii the entry's ball cannot reach are dropped from the window, so
// each node-pruning decision is derived once for the whole schedule
// instead of once per radius. With a warm dst the probe allocates zero
// bytes. The result is element-wise identical to calling RangeCount per
// radius: every classification reuses the exact comparison expressions
// of rangeVisit on the same computed distances.
func (t *Tree[T]) RangeCountMultiAppend(q T, radii []float64, dst []int) []int {
	return dualjoin.AppendMultiCounts(radii, dst, false, func(sched []float64, diff []int) {
		if t.size == 0 {
			return
		}
		v := visitState[T]{t: t, qc: t.queryCoords(q)}
		v.multiVisit(0, q, sched, math.NaN(), 0, len(sched), diff)
		t.distCalls.Add(v.calls)
	})
}

// multiVisit resolves the radius window [lo, hi) for the subtree at node
// n: radii below lo are already known to exclude the whole subtree, radii
// at and above hi have already been credited with it by an ancestor. dq
// is the distance from q to n's parent pivot (NaN at the root). All
// radius thresholds are scanned linearly: the schedule is tiny (a ≤ ~15)
// and the predicates are monotone in the radius, so the scans stop early.
func (v *visitState[T]) multiVisit(n int32, q T, radii []float64, dq float64, lo, hi int, diff []int) {
	t := v.t
	isLeaf := t.leaf[n]
	if isLeaf && v.qc != nil {
		v.scanMultiLeaf(n, radii, dq, lo, hi, diff)
		return
	}
	for k := t.entFirst[n]; k < t.entLast[n]; k++ {
		rad := t.eRD[2*k]
		// Triangle prefilter, per radius: the smallest radius the entry
		// can touch is the first with |d(q,parent) - d(pivot,parent)| ≤
		// radii[b] + radius (the same test rangeVisit applies per probe).
		b := lo
		if !math.IsNaN(dq) {
			for b < hi && math.Abs(dq-t.eRD[2*k+1]) > radii[b]+rad {
				b++
			}
			if b == hi {
				continue // outside every unresolved radius
			}
		}
		d := v.d(q, t.ePivot[k])
		if isLeaf {
			// Element at distance d: credit radii [b', hi) where b' is the
			// first unfiltered radius with d ≤ radii[b'].
			for b < hi && d > radii[b] {
				b++
			}
			if b < hi {
				diff[b]++
				diff[hi]--
			}
			continue
		}
		// Internal entry: radii below newLo cannot reach the covering ball
		// (rangeVisit's descend test d ≤ r + radius fails); radii at and
		// above newHi contain it entirely (rangeVisit's count-only test
		// d + radius ≤ r holds), so its stored count settles them at once.
		newLo := b
		for newLo < hi && d > radii[newLo]+rad {
			newLo++
		}
		newHi := newLo
		for newHi < hi && d+rad > radii[newHi] {
			newHi++
		}
		if newHi < hi {
			diff[newHi] += int(t.eCount[k])
			diff[hi] -= int(t.eCount[k])
		}
		if newLo < newHi {
			v.multiVisit(t.eChild[k], q, radii, d, newLo, newHi, diff)
		}
	}
}

// rangeVisit counts (and optionally collects) elements within r of q in the
// subtree at node n. dq is the distance from q to n's parent pivot (NaN at
// the root), used with stored parent distances to skip metric evaluations.
//
// When only counting (ids == nil), a subtree whose covering ball lies
// entirely within the query ball contributes its stored element count
// without being descended — the paper's count-only principle, which makes
// large-radius counting cost proportional to the ball boundary rather than
// the ball volume.
func (v *visitState[T]) rangeVisit(n int32, q T, r float64, dq float64, ids *[]int) int {
	t := v.t
	isLeaf := t.leaf[n]
	if isLeaf && v.qc != nil {
		return v.scanRangeLeaf(n, r, dq, ids)
	}
	count := 0
	for k := t.entFirst[n]; k < t.entLast[n]; k++ {
		rad := t.eRD[2*k]
		// Triangle prefilter: |d(q,parent) - d(pivot,parent)| ≤ d(q,pivot).
		if !math.IsNaN(dq) && math.Abs(dq-t.eRD[2*k+1]) > r+rad {
			continue
		}
		d := v.d(q, t.ePivot[k])
		if isLeaf {
			if d <= r {
				count++
				if ids != nil {
					*ids = append(*ids, int(t.eID[k]))
				}
			}
			continue
		}
		if ids == nil && d+rad <= r {
			count += int(t.eCount[k]) // subtree fully inside the query ball
			continue
		}
		if d <= r+rad {
			count += v.rangeVisit(t.eChild[k], q, r, d, ids)
		}
	}
	return count
}

// kCand is a max-heap entry for KNN.
type kCand struct {
	id int
	d  float64
}

// KNN returns the ids and distances of the k nearest elements to q, closest
// first. Ties break by insertion id. If the tree has fewer than k elements
// all of them are returned.
func (t *Tree[T]) KNN(q T, k int) (ids []int, dists []float64) {
	if t.size == 0 || k <= 0 {
		return nil, nil
	}
	heap := make([]kCand, 0, k+1)   // max-heap on (d, id)
	less := func(a, b kCand) bool { // a has lower priority than b for removal
		if a.d != b.d {
			return a.d < b.d
		}
		return a.id < b.id
	}
	push := func(c kCand) {
		heap = append(heap, c)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if less(heap[p], heap[i]) {
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			} else {
				break
			}
		}
	}
	pop := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, rr := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && less(heap[big], heap[l]) {
				big = l
			}
			if rr < len(heap) && less(heap[big], heap[rr]) {
				big = rr
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	bound := func() float64 {
		if len(heap) < k {
			return math.Inf(1)
		}
		return heap[0].d
	}
	qc := t.queryCoords(q)
	var kcalls int64
	var visit func(n int32, dq float64)
	visit = func(n int32, dq float64) {
		isLeaf := t.leaf[n]
		if isLeaf && qc != nil {
			// Kernel path (kernelize.go): block kernels produce the leaf's
			// squared distances; the prefilter, the admission test and the
			// call accounting run per entry in entry order exactly as the
			// loop below would, so the heap — and with it every tie at the
			// k-th distance — evolves identically.
			var d2 [kernel.Block]float64
			for at, last := int(t.entFirst[n]), int(t.entLast[n]); at < last; {
				bn, _ := kernel.RangeBlock(&d2, nil, qc, t.kc, at, last, 0)
				for i := 0; i < bn; i++ {
					e := at + i
					if !math.IsNaN(dq) && math.Abs(dq-t.eRD[2*e+1]) > bound()+t.eRD[2*e] {
						continue
					}
					d := math.Sqrt(d2[i])
					kcalls++
					id := int(t.eID[e])
					if len(heap) < k || d < heap[0].d || (d == heap[0].d && id < heap[0].id) {
						push(kCand{id: id, d: d})
						if len(heap) > k {
							pop()
						}
					}
				}
				at += bn
			}
			return
		}
		for e := t.entFirst[n]; e < t.entLast[n]; e++ {
			if !math.IsNaN(dq) && math.Abs(dq-t.eRD[2*e+1]) > bound()+t.eRD[2*e] {
				continue
			}
			d := t.d(q, t.ePivot[e])
			if isLeaf {
				// Admit while below capacity, and past it whenever (d, id)
				// beats the current worst — the id comparison keeps ties at
				// the k-th distance settled by insertion id alone, never by
				// traversal order, so any tree arrangement over the same
				// elements (insert-built, bulk-loaded, slimmed-down)
				// returns the same k ids.
				id := int(t.eID[e])
				if len(heap) < k || d < heap[0].d || (d == heap[0].d && id < heap[0].id) {
					push(kCand{id: id, d: d})
					if len(heap) > k {
						pop()
					}
				}
				continue
			}
			if d-t.eRD[2*e] <= bound() {
				visit(t.eChild[e], d)
			}
		}
	}
	visit(0, math.NaN())
	if kcalls > 0 {
		t.distCalls.Add(kcalls)
	}
	// Extract sorted ascending.
	out := make([]kCand, len(heap))
	copy(out, heap)
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && less(out[b], out[b-1]); b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	ids = make([]int, len(out))
	dists = make([]float64, len(out))
	for i, c := range out {
		ids[i], dists[i] = c.id, c.d
	}
	return ids, dists
}

// DiameterEstimate estimates the diameter of the indexed set (paper
// Alg. 1 L2's l) via the shared data-only estimator (internal/diameter):
// the value depends only on the indexed DATA, never on the tree's
// arrangement, so the insertion and bulk builds (and any SlimDown
// reorganization) report the same value and the radii schedule derived
// from it — and with it the whole pipeline output — is identical across
// build paths. Vector data gets the sweep-validated bounding-box corner
// distance (the same value the kd/R-trees report); other element types
// get the exact diameter while small and a capped iterated
// farthest-point estimate beyond diameter.ExactThreshold — O(k·n) metric
// evaluations on any data, where the former exact branch-and-bound
// degenerated toward n²/2 on near-uniform pairwise distances.
func (t *Tree[T]) DiameterEstimate() float64 {
	if t.size < 2 || len(t.leaf) == 0 {
		return 0
	}
	if t.diamValid {
		return t.diam
	}
	elems := make([]T, t.size)
	for k, id := range t.eID {
		if id >= 0 {
			elems[id] = t.ePivot[k]
		}
	}
	return diameter.Estimate(elems, t.d)
}

// Height returns the tree height (0 for an empty tree, 1 for a leaf root).
func (t *Tree[T]) Height() int {
	if len(t.leaf) == 0 {
		return 0
	}
	h := 0
	n := int32(0)
	for {
		h++
		if t.leaf[n] || t.entFirst[n] == t.entLast[n] {
			break
		}
		n = t.eChild[t.entFirst[n]]
	}
	return h
}
