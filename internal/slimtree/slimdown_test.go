package slimtree

import (
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

func clusteredPoints(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, 0, n)
	for len(pts) < n {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 20 && len(pts) < n; i++ {
			pts = append(pts, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		}
	}
	return pts
}

func TestSlimDownPreservesCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := clusteredPoints(rng, 600)
	tr := New(metric.Euclidean, 8, pts)
	tr.SlimDown(4)
	if v := tr.MaxCoverError(); v > 1e-9 {
		t.Fatalf("covering invariant violated after SlimDown: %v", v)
	}
	// Queries must still match brute force.
	for q := 0; q < 20; q++ {
		query := pts[rng.Intn(len(pts))]
		r := rng.Float64() * 30
		got := tr.RangeQuery(query, r)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if metric.Euclidean(query, p) <= r {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("RangeQuery len %d != brute %d after SlimDown", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("RangeQuery ids mismatch after SlimDown")
			}
		}
		if c := tr.RangeCount(query, r); c != len(want) {
			t.Fatalf("RangeCount %d != brute %d after SlimDown", c, len(want))
		}
	}
}

func TestSlimDownReducesFatFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := clusteredPoints(rng, 800)
	tr := New(metric.Euclidean, 8, pts)
	before := tr.FatFactor()
	tr.SlimDown(4)
	after := tr.FatFactor()
	if after > before+1e-9 {
		t.Errorf("fat factor rose after SlimDown: %v -> %v", before, after)
	}
	if before < 0 || before > 1 || after < 0 || after > 1 {
		t.Errorf("fat factor out of [0,1]: before=%v after=%v", before, after)
	}
}

func TestSlimDownDegenerate(t *testing.T) {
	empty := New(metric.Euclidean, 8, nil)
	empty.SlimDown(3) // must not panic
	if empty.FatFactor() != 0 {
		t.Error("empty tree fat factor should be 0")
	}
	one := New(metric.Euclidean, 8, [][]float64{{1, 2}})
	one.SlimDown(3)
	if one.RangeCount([]float64{1, 2}, 0) != 1 {
		t.Error("singleton tree broken by SlimDown")
	}
	flat := New(metric.Euclidean, 32, clusteredPoints(rand.New(rand.NewSource(3)), 20))
	flat.SlimDown(3) // leaf root: no-op
	if flat.Size() != 20 {
		t.Error("leaf-root tree broken by SlimDown")
	}
}

func TestSlimDownKeepsSizeAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := clusteredPoints(rng, 500)
	tr := New(metric.Euclidean, 8, pts)
	tr.SlimDown(4)
	if tr.Size() != 500 {
		t.Fatalf("size changed: %d", tr.Size())
	}
	// Aggregated counts must still be exact (count-only principle relies
	// on them): a whole-space query counts everything.
	if c := tr.RangeCount(pts[0], 1e9); c != 500 {
		t.Fatalf("full-cover count %d != 500 after SlimDown", c)
	}
}
