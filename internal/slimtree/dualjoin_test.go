package slimtree

import (
	"fmt"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// assertCountAllMatches checks the dual-tree self-join contract: for every
// indexed element and every radius, CountAllMulti must equal the
// per-element RangeCount — for every worker count.
func assertCountAllMatches[T any](t *testing.T, label string, tr *Tree[T], items []T, radii []float64) {
	t.Helper()
	for _, workers := range []int{1, 4} {
		got := tr.CountAllMulti(radii, workers)
		if len(got) != len(radii) {
			t.Fatalf("%s: %d rows, want %d", label, len(got), len(radii))
		}
		for e, r := range radii {
			for i, it := range items {
				if want := tr.RangeCount(it, r); got[e][i] != want {
					t.Fatalf("%s (workers=%d): counts[%d][%d] (r=%v) = %d, want RangeCount = %d",
						label, workers, e, i, r, got[e][i], want)
				}
			}
		}
	}
}

func TestCountAllMultiMatchesRangeCountVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(300)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		for i := rng.Intn(25); i > 0; i-- { // duplicates stress zero radii
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}
		capacity := []int{0, 4, 8}[trial%3]
		tr := New(metric.Euclidean, capacity, pts)
		assertCountAllMatches(t, fmt.Sprintf("vectors/trial%d", trial), tr, pts, randRadii(rng, 150))
	}
}

func TestCountAllMultiMatchesRangeCountStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	words := make([]string, 0, 150)
	for i := 0; i < 150; i++ {
		stem := []byte("dualtreetraversal")
		for j := rng.Intn(5); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:5+rng.Intn(11)]))
	}
	tr := New(metric.Levenshtein, 8, words)
	assertCountAllMatches(t, "strings", tr, words, []float64{0, 1, 2, 3, 5, 8, 13, 21})
}

func TestCountAllMultiMatchesRangeCountPointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sets := make([]metric.PointSet, 0, 100)
	for i := 0; i < 100; i++ {
		cx, cy := rng.Float64()*10, rng.Float64()*10
		s := make(metric.PointSet, 2+rng.Intn(5))
		for j := range s {
			s[j] = []float64{cx + rng.NormFloat64()*0.4, cy + rng.NormFloat64()*0.4}
		}
		sets = append(sets, s)
	}
	tr := New(metric.Hausdorff, 0, sets)
	assertCountAllMatches(t, "pointsets", tr, sets, randRadii(rng, 15))
}

func TestCountAllMultiEdges(t *testing.T) {
	// Empty tree.
	empty := New(metric.Euclidean, 0, nil)
	if got := empty.CountAllMulti([]float64{1, 2}, 1); len(got) != 2 || len(got[0]) != 0 {
		t.Errorf("empty tree: got %v, want two empty rows", got)
	}
	// Empty radii.
	tr := New(metric.Euclidean, 0, [][]float64{{0, 0}, {3, 0}})
	if got := tr.CountAllMulti(nil, 1); len(got) != 0 {
		t.Errorf("empty radii: got %v, want no rows", got)
	}
	// Singleton and all-duplicates (zero distances everywhere).
	dup := New(metric.Euclidean, 0, [][]float64{{5, 5}, {5, 5}, {5, 5}})
	got := dup.CountAllMulti([]float64{0, 1}, 1)
	for e := range got {
		for i := range got[e] {
			if got[e][i] != 3 {
				t.Errorf("duplicates: counts[%d][%d] = %d, want 3", e, i, got[e][i])
			}
		}
	}
}

// TestCountAllMultiRepeatable guards the scratch-space cleanup: a second
// call on the same tree must see clean accumulators and return the same
// matrix.
func TestCountAllMultiRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := randPoints(rng, 200, 2)
	tr := New(metric.Euclidean, 0, pts)
	radii := randRadii(rng, 150)
	first := tr.CountAllMulti(radii, 1)
	second := tr.CountAllMulti(radii, 2)
	for e := range first {
		for i := range first[e] {
			if first[e][i] != second[e][i] {
				t.Fatalf("second call differs at [%d][%d]: %d vs %d", e, i, first[e][i], second[e][i])
			}
		}
	}
}
