package slimtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

// This file pins the frozen arena layout itself: the structural
// invariants every traversal and dual join relies on (entry ranges that
// partition the SoA arrays in node order, child/parent links, contiguous
// per-subtree element ranges over the packed leafIDs block), and — via
// the thawed pointer tree and a retained copy of the pre-arena pointer
// traversal — that the arena answers queries identically to the linked
// shape it froze.

func arenaCheck[T any](t *testing.T, tr *Tree[T], n int) {
	t.Helper()
	slots := len(tr.leaf)
	if slots == 0 {
		if n != 0 {
			t.Fatal("non-empty tree has no arena")
		}
		return
	}
	if tr.parent[0] != noEntry {
		t.Fatal("root must have no parent")
	}
	childOf := make([]int, slots)
	nextEnt := int32(0)
	for s := 0; s < slots; s++ {
		if tr.entFirst[s] != nextEnt || tr.entLast[s] < tr.entFirst[s] {
			t.Fatalf("node %d: entry range [%d,%d) does not continue the arena at %d",
				s, tr.entFirst[s], tr.entLast[s], nextEnt)
		}
		nextEnt = tr.entLast[s]
		elems := int32(0)
		for k := tr.entFirst[s]; k < tr.entLast[s]; k++ {
			if ch := tr.eChild[k]; ch >= 0 {
				if tr.leaf[s] {
					t.Fatalf("leaf node %d holds an internal entry", s)
				}
				childOf[ch]++
				if tr.parent[ch] != int32(s) {
					t.Fatalf("entry %d: child node %d has parent %d, want %d", k, ch, tr.parent[ch], s)
				}
				if int(tr.eCount[k]) != int(tr.elemLast[ch]-tr.elemFirst[ch]) {
					t.Fatalf("entry %d: count %d != child element range %d",
						k, tr.eCount[k], tr.elemLast[ch]-tr.elemFirst[ch])
				}
				if tr.elemFirst[ch] != tr.elemFirst[s]+elems {
					t.Fatalf("entry %d: child element range not contiguous within the node's", k)
				}
				elems += tr.eCount[k]
				if tr.ePos[k] != noEntry || tr.eID[k] != noEntry {
					t.Fatalf("internal entry %d carries a leaf position or id", k)
				}
				continue
			}
			if !tr.leaf[s] {
				t.Fatalf("internal node %d holds a leaf entry", s)
			}
			if tr.eCount[k] != 1 {
				t.Fatalf("leaf entry %d: count %d, want 1", k, tr.eCount[k])
			}
			wantPos := tr.elemFirst[s] + (k - tr.entFirst[s])
			if tr.ePos[k] != wantPos {
				t.Fatalf("leaf entry %d: position %d, want %d", k, tr.ePos[k], wantPos)
			}
			if tr.leafIDs[tr.ePos[k]] != tr.eID[k] {
				t.Fatalf("leaf entry %d: leafIDs[%d]=%d, entry id %d",
					k, tr.ePos[k], tr.leafIDs[tr.ePos[k]], tr.eID[k])
			}
			elems++
		}
		if int32(elems) != tr.elemLast[s]-tr.elemFirst[s] {
			t.Fatalf("node %d: element range %d, entries under it %d",
				s, tr.elemLast[s]-tr.elemFirst[s], elems)
		}
	}
	if int(nextEnt) != len(tr.eID) {
		t.Fatalf("entry ranges cover %d entries, arena has %d", nextEnt, len(tr.eID))
	}
	for s := 1; s < slots; s++ {
		if childOf[s] != 1 {
			t.Fatalf("node %d claimed by %d internal entries, want exactly 1", s, childOf[s])
		}
	}
	// leafIDs is a permutation of [0, n).
	seen := make([]bool, n)
	for _, id := range tr.leafIDs {
		if seen[id] {
			t.Fatalf("element %d packed twice", id)
		}
		seen[id] = true
	}
	if len(tr.leafIDs) != n {
		t.Fatalf("packed %d elements, want %d", len(tr.leafIDs), n)
	}
	if tr.root != nil {
		t.Fatal("frozen tree must have dropped the pointer root")
	}
	if e := tr.MaxCoverError(); e != 0 {
		t.Fatalf("covering invariant violated by %v", e)
	}
}

// TestArenaInvariants freezes random insert-built and bulk-built trees
// and checks every structural invariant of the arena.
func TestArenaInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(900)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		}
		arenaCheck(t, New(metric.Euclidean, 0, pts), n)
		arenaCheck(t, NewBulk(metric.Euclidean, 0, pts), n)
		slim := NewBulk(metric.Euclidean, 0, pts)
		slim.SlimDown(2) // thaw → reorganize → re-freeze must stay well-formed
		arenaCheck(t, slim, n)
	}
}

// --- Retained reference: the pre-arena pointer traversal over the
// thawed linked tree (rangeVisit as it was before the flattening). ---

func refRangeVisit[T any](dist metric.Distance[T], n *node[T], q T, r, dq float64, ids *[]int) int {
	count := 0
	for i := range n.entries {
		e := &n.entries[i]
		if !math.IsNaN(dq) && math.Abs(dq-e.dPar) > r+e.radius {
			continue
		}
		d := dist(q, e.pivot)
		if n.leaf {
			if d <= r {
				count++
				if ids != nil {
					*ids = append(*ids, e.id)
				}
			}
			continue
		}
		if ids == nil && d+e.radius <= r {
			count += e.count
			continue
		}
		if d <= r+e.radius {
			count += refRangeVisit(dist, e.child, q, r, d, ids)
		}
	}
	return count
}

// TestArenaMatchesReferencePointerBuild thaws the frozen arena back into
// the linked shape and demands the arena traversals answer identically
// to the retained pointer traversal on random probes — for both build
// paths, on counts, batched counts and id sets.
func TestArenaMatchesReferencePointerBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(600)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 50, rng.Float64() * 50}
		}
		for _, tr := range []*Tree[[]float64]{
			New(metric.Euclidean, 0, pts),
			NewBulk(metric.Euclidean, 0, pts),
		} {
			tr.thaw()
			ref := tr.root
			tr.root = nil // the arena queries must not depend on it
			diam := tr.DiameterEstimate()
			radii := make([]float64, 9)
			for e := range radii {
				radii[e] = diam / float64(int(1)<<(len(radii)-1-e))
			}
			for probe := 0; probe < 8; probe++ {
				q := pts[rng.Intn(n)]
				r := rng.Float64() * diam
				if got, want := tr.RangeCount(q, r), refRangeVisit(metric.Euclidean, ref, q, r, math.NaN(), nil); got != want {
					t.Fatalf("RangeCount=%d, reference %d", got, want)
				}
				multi := tr.RangeCountMulti(q, radii)
				for e, rr := range radii {
					if want := refRangeVisit(metric.Euclidean, ref, q, rr, math.NaN(), nil); multi[e] != want {
						t.Fatalf("RangeCountMulti[%d]=%d, reference %d", e, multi[e], want)
					}
				}
				var wantIDs []int
				refRangeVisit(metric.Euclidean, ref, q, r, math.NaN(), &wantIDs)
				gotIDs := tr.RangeQuery(q, r)
				sort.Ints(gotIDs)
				sort.Ints(wantIDs)
				if len(gotIDs) != len(wantIDs) {
					t.Fatalf("RangeQuery returned %d ids, reference %d", len(gotIDs), len(wantIDs))
				}
				for i := range gotIDs {
					if gotIDs[i] != wantIDs[i] {
						t.Fatal("RangeQuery id sets differ from reference")
					}
				}
			}
		}
	}
}
