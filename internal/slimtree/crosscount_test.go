package slimtree

import (
	"fmt"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// bruteCrossCountsDist is the brute-force oracle for the cross count
// join under any metric: counts[e][i] = indexed elements within
// radii[e] of queries[i], compared on plain distances — the domain
// every slim-tree query path uses.
func bruteCrossCountsDist[T any](dist metric.Distance[T], in, queries []T, radii []float64) [][]int {
	counts := make([][]int, len(radii))
	for e := range counts {
		counts[e] = make([]int, len(queries))
	}
	for i, q := range queries {
		for _, p := range in {
			d := dist(q, p)
			for e, r := range radii {
				if d <= r {
					counts[e][i]++
				}
			}
		}
	}
	return counts
}

func assertCrossCountsMatch[T any](t *testing.T, label string, tr *Tree[T], dist metric.Distance[T], in, queries []T, radii []float64) {
	t.Helper()
	want := bruteCrossCountsDist(dist, in, queries, radii)
	for _, workers := range crossWorkerCounts {
		got := tr.CountCrossMulti(queries, radii, workers)
		if len(got) != len(want) {
			t.Fatalf("%s (workers=%d): %d rows, want %d", label, workers, len(got), len(want))
		}
		for e := range want {
			for i := range want[e] {
				if got[e][i] != want[e][i] {
					t.Fatalf("%s (workers=%d): counts[%d][%d] = %d, want %d",
						label, workers, e, i, got[e][i], want[e][i])
				}
			}
		}
	}
}

func TestCountCrossMultiMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials := 10
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(300)
		dim := 1 + rng.Intn(3)
		in := randPoints(rng, n, dim)
		queries := randPoints(rng, rng.Intn(60), dim)
		for i := rng.Intn(8); i > 0; i-- {
			queries = append(queries, append([]float64(nil), in[rng.Intn(len(in))]...))
		}
		tr := NewBulk(metric.Euclidean, 8, in)
		assertCrossCountsMatch(t, fmt.Sprintf("trial%d", trial), tr, metric.Euclidean, in, queries, randRadii(rng, 150))
	}
}

func TestCountCrossMultiStrings(t *testing.T) {
	in := []string{"book", "books", "boo", "cook", "cooks", "hook",
		"graph", "graphs", "graphite", "telescope", "telescopes", "microscope"}
	queries := []string{"book", "crook", "graph", "microscopes", "zzzzzzzzzz", ""}
	tr := NewBulk(metric.Levenshtein, 0, in)
	assertCrossCountsMatch(t, "strings", tr, metric.Levenshtein, in, queries,
		[]float64{0, 1, 2, 4, 8, 16})
}

func TestCountCrossMultiEdges(t *testing.T) {
	in := [][]float64{{0, 0}, {1, 0}}
	tr := NewBulk(metric.Euclidean, 8, in)
	if got := tr.CountCrossMulti(nil, []float64{1, 2}, 1); len(got) != 2 || len(got[0]) != 0 {
		t.Errorf("no queries: got %v, want two empty rows", got)
	}
	if got := tr.CountCrossMulti([][]float64{{5, 5}}, nil, 1); len(got) != 0 {
		t.Errorf("empty radii: got %v, want no rows", got)
	}
	empty := NewBulk[[]float64](metric.Euclidean, 8, nil)
	got := empty.CountCrossMulti([][]float64{{1, 1}}, []float64{1, 2}, 1)
	if len(got) != 2 || got[0][0] != 0 || got[1][0] != 0 {
		t.Errorf("empty tree: got %v, want zero counts", got)
	}
}
