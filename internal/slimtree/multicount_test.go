package slimtree

import (
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// randRadii returns an ascending radius schedule mixing tiny, mid and
// beyond-diameter values, optionally with duplicates.
func randRadii(rng *rand.Rand, a float64) []float64 {
	n := 1 + rng.Intn(16)
	radii := make([]float64, n)
	r := a * (0.001 + rng.Float64()*0.01)
	for e := range radii {
		radii[e] = r
		if rng.Intn(6) > 0 {
			r *= 1.3 + rng.Float64()*1.5
		}
	}
	return radii
}

// assertMultiMatches checks the batched-counting contract on one tree: one
// traversal must return exactly [RangeCount(r) for r in radii].
func assertMultiMatches[T any](t *testing.T, label string, tr *Tree[T], queries []T, radii []float64) {
	t.Helper()
	for _, q := range queries {
		got := tr.RangeCountMulti(q, radii)
		for e, r := range radii {
			if want := tr.RangeCount(q, r); got[e] != want {
				t.Fatalf("%s: RangeCountMulti[%d] (r=%v) = %d, want RangeCount = %d",
					label, e, r, got[e], want)
			}
		}
	}
}

func TestRangeCountMultiMatchesRepeatedRangeCountVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(400)
		dim := 1 + rng.Intn(5)
		pts := randPoints(rng, n, dim)
		for i := rng.Intn(20); i > 0; i-- { // duplicates stress zero distances
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}
		capacity := []int{0, 4, 8}[trial%3]
		tr := New(metric.Euclidean, capacity, pts)
		var queries [][]float64
		for q := 0; q < 10; q++ {
			if q%3 == 0 {
				queries = append(queries, randPoints(rng, 1, dim)[0])
			} else {
				queries = append(queries, pts[rng.Intn(len(pts))])
			}
		}
		assertMultiMatches(t, "vectors", tr, queries, randRadii(rng, 150))
	}
}

func TestRangeCountMultiMatchesRepeatedRangeCountStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	words := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		stem := []byte("metricaccessmethod")
		for j := rng.Intn(5); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:6+rng.Intn(10)]))
	}
	tr := New(metric.Levenshtein, 8, words)
	// Integer-valued metric: probe at integer and fractional radii.
	radii := []float64{0, 1, 1.5, 2, 3, 5, 8, 13, 21}
	assertMultiMatches(t, "strings", tr, words[:25], radii)
}

func TestRangeCountMultiMatchesRepeatedRangeCountPointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	sets := make([]metric.PointSet, 0, 120)
	for i := 0; i < 120; i++ {
		cx, cy := rng.Float64()*10, rng.Float64()*10
		s := make(metric.PointSet, 2+rng.Intn(6))
		for j := range s {
			s[j] = []float64{cx + rng.NormFloat64()*0.4, cy + rng.NormFloat64()*0.4}
		}
		sets = append(sets, s)
	}
	tr := New(metric.Hausdorff, 0, sets)
	assertMultiMatches(t, "pointsets", tr, sets[:20], randRadii(rng, 15))
}

func TestRangeCountMultiEdges(t *testing.T) {
	tr := New(metric.Euclidean, 0, [][]float64{{0, 0}, {1, 0}, {4, 0}})
	if got := tr.RangeCountMulti([]float64{0, 0}, nil); len(got) != 0 {
		t.Errorf("empty radii should give empty counts, got %v", got)
	}
	if got := tr.RangeCountMulti([]float64{0, 0}, []float64{2}); len(got) != 1 || got[0] != 2 {
		t.Errorf("single radius: got %v, want [2]", got)
	}
	var empty Tree[[]float64]
	empty.dist = metric.Euclidean
	if got := empty.RangeCountMulti([]float64{0, 0}, []float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty tree should count 0 everywhere, got %v", got)
	}
}

func TestRangeQueryAppendReusesBuffer(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {9, 9}}
	tr := New(metric.Euclidean, 0, pts)
	buf := make([]int, 0, 8)
	got := tr.RangeQueryAppend([]float64{0, 0}, 1.5, buf)
	if len(got) != 2 || cap(got) != 8 {
		t.Errorf("RangeQueryAppend = %v (cap %d), want 2 ids in the caller's buffer", got, cap(got))
	}
}
