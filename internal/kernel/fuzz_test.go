package kernel

import (
	"testing"

	"mccatch/internal/metric"
)

// FuzzKernelEquivalence is the kernel-vs-oracle target: from an arbitrary
// byte string it derives a dimension (all specialized widths plus generic
// odd ones), a point block, a query and a threshold — every coordinate
// dyadic-quantized (sixteenths) so distances are exactly representable
// and the inclusive boundary d2 == r2 is actually reachable — and then
// cross-checks, bit for bit:
//
//   - SqDist against metric.SquaredEuclidean on every slot;
//   - CountRange, with and without a freeze-time summary, against the
//     brute-force per-slot count over a fuzzed subrange;
//   - RangeBlock's chunks against the oracle, and that a pruned chunk
//     only ever hides distances beyond the threshold (the prefilter's
//     conservativeness guarantee);
//   - blockBounds bracketing the exact distance of every point of every
//     block.
//
// The nightly workflow runs this target for 20s alongside the core
// equivalence fuzzers; any crasher lands in testdata/fuzz as a committed
// regression input.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{2, 16, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 9, 200, 255, 0, 128, 7, 7, 7, 255, 1})
	f.Add([]byte{4, 40, 64, 100, 200, 50, 25, 12, 6, 3, 1, 0, 255, 254, 128, 127, 126})
	f.Add([]byte{3, 3, 0})
	f.Add([]byte{1, 17, 90, 91, 92, 93, 94, 95, 96, 97, 98})

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 3 {
			return
		}
		dims := []int{2, 3, 4, 5, 8}
		dim := dims[int(raw[0])%len(dims)]
		n := 1 + int(raw[1])%64
		sel := raw[2]
		body := raw[3:]
		coord := func(k int) float64 {
			if len(body) == 0 {
				return 0
			}
			b := body[k%len(body)]
			// Dyadic sixteenths in [-8, 7.9375]: exact in a float64, so
			// squared distances and their sums are exact and boundary
			// collisions happen constantly.
			return float64(int(b)-128) / 16
		}
		pts := make([]float64, n*dim)
		for i := range pts {
			pts[i] = coord(i)
		}
		q := make([]float64, dim)
		for j := range q {
			q[j] = coord(n*dim + j)
		}

		for i := 0; i < n; i++ {
			p := pts[i*dim : (i+1)*dim]
			if got, want := SqDist(q, p), metric.SquaredEuclidean(q, p); got != want {
				t.Fatalf("dim %d slot %d: SqDist = %v, oracle = %v", dim, i, got, want)
			}
		}

		// Threshold: usually an exact indexed distance (the hardest case),
		// sometimes a synthetic dyadic value.
		var r2 float64
		if sel%2 == 0 {
			r2 = metric.SquaredEuclidean(q, pts[(int(sel/2)%n)*dim:][:dim])
		} else {
			r2 = float64(sel) / 4
		}
		first := int(sel) % n
		last := first + 1 + (n-first-1)*int(sel%3)/2
		if last > n {
			last = n
		}

		s := NewSummary(pts, dim, n)
		want := 0
		for i := first; i < last; i++ {
			if metric.SquaredEuclidean(q, pts[i*dim:(i+1)*dim]) <= r2 {
				want++
			}
		}
		if got := CountRange(s, q, pts, first, last, r2); got != want {
			t.Fatalf("dim %d [%d,%d) r2 %v: CountRange(summary) = %d, brute = %d", dim, first, last, r2, got, want)
		}
		if got := CountRange(nil, q, pts, first, last, r2); got != want {
			t.Fatalf("dim %d [%d,%d) r2 %v: CountRange(nil) = %d, brute = %d", dim, first, last, r2, got, want)
		}

		var d2 [Block]float64
		for at := first; at < last; {
			cn, pruned := RangeBlock(&d2, s, q, pts, at, last, r2)
			for i := 0; i < cn; i++ {
				oracle := metric.SquaredEuclidean(q, pts[(at+i)*dim:(at+i+1)*dim])
				if pruned {
					if oracle <= r2 {
						t.Fatalf("dim %d: pruned chunk hides slot %d with d2 %v <= r2 %v", dim, at+i, oracle, r2)
					}
				} else if d2[i] != oracle {
					t.Fatalf("dim %d slot %d: chunk d2 = %v, oracle = %v", dim, at+i, d2[i], oracle)
				}
			}
			at += cn
		}

		if s != nil {
			for b := 0; b < s.blocks; b++ {
				smin, smax := s.blockBounds(b, q)
				end := (b + 1) * Block
				if end > n {
					end = n
				}
				for i := b * Block; i < end; i++ {
					d := SqDist(q, pts[i*dim:(i+1)*dim])
					if smin > d || smax < d {
						t.Fatalf("dim %d block %d slot %d: bounds [%v, %v] miss d2 %v", dim, b, i, smin, smax, d)
					}
				}
			}
		}
	})
}
