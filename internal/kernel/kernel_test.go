package kernel

import (
	"math"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// testDims covers every specialized width plus generic odd/even widths on
// both sides of each specialization.
var testDims = []int{1, 2, 3, 4, 5, 7, 8, 9, 12}

func randPts(rng *rand.Rand, n, dim int) []float64 {
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
	}
	return pts
}

// TestSqDistMatchesOracle pins bit-identity of the dispatched scalar
// kernel against metric.SquaredEuclidean on arbitrary (non-dyadic)
// inputs: the specializations must accumulate in exactly the oracle's
// order.
func TestSqDistMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range testDims {
		for trial := 0; trial < 200; trial++ {
			q := randPts(rng, 1, dim)
			p := randPts(rng, 1, dim)
			got := SqDist(q, p)
			want := metric.SquaredEuclidean(q, p)
			if got != want {
				t.Fatalf("dim %d: SqDist = %v, oracle = %v (diff %g)", dim, got, want, got-want)
			}
		}
	}
}

// TestRangeBlockMatchesOracle checks that the block kernels produce
// bit-identical distances for every slot of arbitrary [first, last)
// ranges, and that a pruned chunk only ever hides distances beyond the
// threshold.
func TestRangeBlockMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range testDims {
		for trial := 0; trial < 40; trial++ {
			n := 1 + rng.Intn(60)
			pts := randPts(rng, n, dim)
			q := randPts(rng, 1, dim)
			var s *Summary
			if trial%2 == 0 {
				s = NewSummary(pts, dim, n)
			}
			first := rng.Intn(n)
			last := first + rng.Intn(n-first) + 1
			threshold := rng.Float64() * float64(dim) * 10
			var d2 [Block]float64
			for at := first; at < last; {
				n, pruned := RangeBlock(&d2, s, q, pts, at, last, threshold)
				for i := 0; i < n; i++ {
					want := metric.SquaredEuclidean(q, pts[(at+i)*dim:(at+i+1)*dim])
					if pruned {
						if want <= threshold {
							t.Fatalf("dim %d: pruned chunk hides slot %d with d2 %v <= threshold %v", dim, at+i, want, threshold)
						}
					} else if d2[i] != want {
						t.Fatalf("dim %d slot %d: chunk d2 = %v, oracle = %v", dim, at+i, d2[i], want)
					}
				}
				at += n
			}
		}
	}
}

// TestCountRangeBrute compares CountRange — with and without a summary —
// against the brute-force per-point count, including thresholds equal to
// exact pair distances so the inclusive boundary is exercised.
func TestCountRangeBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range testDims {
		for trial := 0; trial < 40; trial++ {
			n := 1 + rng.Intn(80)
			pts := randPts(rng, n, dim)
			q := randPts(rng, 1, dim)
			s := NewSummary(pts, dim, n)
			first := rng.Intn(n)
			last := first + rng.Intn(n-first) + 1
			r2 := rng.Float64() * float64(dim) * 4
			if trial%3 == 0 {
				// Boundary case: the threshold IS an indexed distance.
				r2 = metric.SquaredEuclidean(q, pts[rng.Intn(n)*dim:][:dim])
			}
			want := 0
			for i := first; i < last; i++ {
				if metric.SquaredEuclidean(q, pts[i*dim:(i+1)*dim]) <= r2 {
					want++
				}
			}
			if got := CountRange(s, q, pts, first, last, r2); got != want {
				t.Fatalf("dim %d [%d,%d) r2 %v: CountRange(summary) = %d, brute = %d", dim, first, last, r2, got, want)
			}
			if got := CountRange(nil, q, pts, first, last, r2); got != want {
				t.Fatalf("dim %d [%d,%d) r2 %v: CountRange(nil) = %d, brute = %d", dim, first, last, r2, got, want)
			}
		}
	}
}

// TestSummaryConservative verifies the freeze-time guarantee directly:
// for every block and many queries, blockBounds brackets the exact
// kernel distance of every point in the block.
func TestSummaryConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dim := range testDims {
		for trial := 0; trial < 20; trial++ {
			n := Block + 1 + rng.Intn(100)
			pts := randPts(rng, n, dim)
			s := NewSummary(pts, dim, n)
			if s == nil {
				t.Fatalf("dim %d n %d: NewSummary = nil above the size floor", dim, n)
			}
			for probe := 0; probe < 20; probe++ {
				q := randPts(rng, 1, dim)
				for b := 0; b < s.blocks; b++ {
					smin, smax := s.blockBounds(b, q)
					last := (b + 1) * Block
					if last > n {
						last = n
					}
					for i := b * Block; i < last; i++ {
						d2 := SqDist(q, pts[i*dim:(i+1)*dim])
						if smin > d2 || smax < d2 {
							t.Fatalf("dim %d block %d slot %d: bounds [%v, %v] miss d2 %v", dim, b, i, smin, smax, d2)
						}
					}
				}
			}
		}
	}
}

// TestSummaryDegenerate covers the edge inputs the quantizer must
// survive: all-identical points (zero spread), single-axis spread, huge
// magnitudes, and inputs at or below the size floor.
func TestSummaryDegenerate(t *testing.T) {
	if s := NewSummary(nil, 2, 0); s != nil {
		t.Error("empty input: want nil summary")
	}
	if s := NewSummary(make([]float64, Block*2), 2, Block); s != nil {
		t.Error("input at the size floor: want nil summary")
	}
	if s := NewSummary(make([]float64, 10), 0, 10); s != nil {
		t.Error("dim 0: want nil summary")
	}

	n := 3 * Block
	same := make([]float64, n*2)
	for i := range same {
		same[i] = 42.5
	}
	s := NewSummary(same, 2, n)
	q := []float64{42.5, 42.5}
	if got := CountRange(s, q, same, 0, n, 0); got != n {
		t.Errorf("identical points, r2 0: count = %d, want %d", got, n)
	}

	huge := make([]float64, n*2)
	for i := range huge {
		huge[i] = float64(i%7-3) * 1e300
	}
	s = NewSummary(huge, 2, n)
	for b := 0; b < s.blocks; b++ {
		smin, smax := s.blockBounds(b, []float64{1e300, -1e300})
		last := (b + 1) * Block
		if last > n {
			last = n
		}
		for i := b * Block; i < last; i++ {
			d2 := SqDist([]float64{1e300, -1e300}, huge[i*2:i*2+2])
			if smin > d2 || !(smax >= d2) {
				t.Fatalf("huge coords block %d slot %d: bounds [%v, %v] miss d2 %v", b, i, smin, smax, d2)
			}
		}
	}
}

// TestBoxKernels spot-checks the moved box-bound kernels (the dualjoin
// wrappers' own tests cover them too; these pin the kernel package's
// copies directly).
func TestBoxKernels(t *testing.T) {
	smin, smax := SqMinMaxPointBox([]float64{0, 0}, []float64{1, -1}, []float64{2, 1})
	if smin != 1 || smax != 5 {
		t.Errorf("SqMinMaxPointBox = (%v, %v), want (1, 5)", smin, smax)
	}
	smin, smax = SqMinMaxBoxBox([]float64{0}, []float64{1}, []float64{3}, []float64{7})
	if smin != 4 || smax != 49 {
		t.Errorf("SqMinMaxBoxBox = (%v, %v), want (4, 49)", smin, smax)
	}
	if d := SqBoxDiag([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Errorf("SqBoxDiag = %v, want 25", d)
	}
}
