package kernel

// This file holds the point-vs-box and box-vs-box squared-distance bound
// kernels that classify whole subtrees in the kd/R-tree traversals. PR 5
// open-coded the per-axis min/max branches because math.Max's archMax
// indirection alone was ~10% of the kd pipeline; those snippets now live
// here ONCE — still branch-only, no math.Max/math.Abs, so nothing
// prevents the per-axis comparisons from staying register-resident — and
// the former copies in internal/dualjoin became delegating wrappers. The
// gated MultiCountBatched benchmarks guard that the move cost nothing.

// SqMinMaxPointBox returns the smallest and largest SQUARED Euclidean
// distances from point q to the axis-aligned box [lo, hi]. With
// lo[j] ≤ hi[j] the farthest corner distance per axis is max(q-lo, hi-q)
// even when q lies outside the box.
func SqMinMaxPointBox(q, lo, hi []float64) (smin, smax float64) {
	for j := range q {
		v := q[j]
		if d := lo[j] - v; d > 0 {
			smin += d * d
		} else if d := v - hi[j]; d > 0 {
			smin += d * d
		}
		far := v - lo[j]
		if f := hi[j] - v; f > far {
			far = f
		}
		smax += far * far
	}
	return smin, smax
}

// SqMinMaxBoxBox returns the smallest and largest SQUARED Euclidean
// distances between any two points of the axis-aligned boxes [alo, ahi]
// and [blo, bhi]. With alo == blo and ahi == bhi it degenerates to
// (0, squared box diagonal) — the self-pair bounds.
func SqMinMaxBoxBox(alo, ahi, blo, bhi []float64) (smin, smax float64) {
	for j := range alo {
		if g := blo[j] - ahi[j]; g > 0 {
			smin += g * g
		} else if g := alo[j] - bhi[j]; g > 0 {
			smin += g * g
		}
		far := ahi[j] - blo[j]
		if f := bhi[j] - alo[j]; f > far {
			far = f
		}
		smax += far * far
	}
	return smin, smax
}

// SqBoxDiag is the squared diagonal of the box [lo, hi] — the largest
// squared distance any pair of points inside it can realize.
func SqBoxDiag(lo, hi []float64) float64 {
	s := 0.0
	for j := range lo {
		d := hi[j] - lo[j]
		s += d * d
	}
	return s
}
