// Package kernel holds the block-vectorized squared-distance kernels the
// arena backends' leaf scans and dual-join base cases bottom out in, plus
// the quantized prune prefilter layered over them (ROADMAP item 4).
//
// PR 5's flat SoA arenas made every subtree's coordinates ONE contiguous
// []float64 range precisely so those scans could stop calling the
// per-point metric.SquaredEuclidean — a call per point, a bounds check
// per dimension, the query reloaded from memory every time — and instead
// stream the range through a tight kernel: the query hoisted into locals,
// the coordinate block sliced once per chunk of Block points, and the
// dimension loop unrolled for the common vector widths (d = 2, 4, 8) with
// a generic fallback for any other d.
//
// Exactness contract: every kernel accumulates each point's squared
// distance in ascending dimension order through the SAME statement shape
// as metric.SquaredEuclidean (d := q[j] - p[j]; s += d*d). Floating-point
// addition is not associative, but a left-to-right accumulation from zero
// is bit-identical whether it runs in the oracle's loop or in an unrolled
// specialization, and keeping the statement shape identical means any
// fused-multiply-add contraction the compiler applies is applied to both
// sides alike. The fuzz target FuzzKernelEquivalence and the backends'
// equivalence suites pin this: kernelized traversals return byte-identical
// results to the per-point originals.
//
// The prefilter (summary.go) never changes a result either: it only skips
// blocks PROVABLY outside a threshold (or settles blocks provably inside
// one), with conservativeness guaranteed at freeze time — see NewSummary.
package kernel

// Block is the kernel granularity: distances are produced in chunks of up
// to Block points, aligned to Block-slot boundaries of the arena so each
// chunk maps to exactly one prefilter summary block.
const Block = 8

// SqDist returns the squared Euclidean distance between q and p,
// bit-identical to metric.SquaredEuclidean but dispatched to an unrolled
// specialization for the common vector widths.
func SqDist(q, p []float64) float64 {
	switch len(q) {
	case 2:
		d := q[0] - p[0]
		s := d * d
		d = q[1] - p[1]
		s += d * d
		return s
	case 4:
		d := q[0] - p[0]
		s := d * d
		d = q[1] - p[1]
		s += d * d
		d = q[2] - p[2]
		s += d * d
		d = q[3] - p[3]
		s += d * d
		return s
	case 8:
		d := q[0] - p[0]
		s := d * d
		d = q[1] - p[1]
		s += d * d
		d = q[2] - p[2]
		s += d * d
		d = q[3] - p[3]
		s += d * d
		d = q[4] - p[4]
		s += d * d
		d = q[5] - p[5]
		s += d * d
		d = q[6] - p[6]
		s += d * d
		d = q[7] - p[7]
		s += d * d
		return s
	default:
		var s float64
		for j, v := range q {
			d := v - p[j]
			s += d * d
		}
		return s
	}
}

// sqDistsChunk fills d2[0:n] with the squared distances from q to the n
// points stored at slots [at, at+n) of the slot-major coordinate block
// pts (n ≤ Block, dimension = len(q)).
func sqDistsChunk(d2 *[Block]float64, q, pts []float64, at, n int) {
	Dists(d2[:n], q, pts, at, at+n)
}

// Dists fills d2[0:last-first] with the squared distances from q to the
// points stored at slots [first, last) of the slot-major coordinate
// block pts (len(d2) must be at least last-first). Unlike RangeBlock it
// carries no prefilter and no Block alignment: callers that scan a
// range the summary cannot help with (or whose arena has none) make ONE
// call per leaf into a stack buffer, amortizing the dimension dispatch
// and call overhead over the whole range instead of paying it per
// 8-point chunk. The specializations hoist the query into locals and
// slice the coordinate range once, so the inner loop is pure streaming
// arithmetic with no bounds checks per dimension.
func Dists(d2 []float64, q, pts []float64, first, last int) {
	at, n := first, last-first
	switch len(q) {
	case 2:
		q0, q1 := q[0], q[1]
		c := pts[at*2 : (at+n)*2]
		for i := 0; i < n; i++ {
			d := q0 - c[2*i]
			s := d * d
			d = q1 - c[2*i+1]
			s += d * d
			d2[i] = s
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		c := pts[at*4 : (at+n)*4]
		for i := 0; i < n; i++ {
			d := q0 - c[4*i]
			s := d * d
			d = q1 - c[4*i+1]
			s += d * d
			d = q2 - c[4*i+2]
			s += d * d
			d = q3 - c[4*i+3]
			s += d * d
			d2[i] = s
		}
	case 8:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		q4, q5, q6, q7 := q[4], q[5], q[6], q[7]
		c := pts[at*8 : (at+n)*8]
		for i := 0; i < n; i++ {
			d := q0 - c[8*i]
			s := d * d
			d = q1 - c[8*i+1]
			s += d * d
			d = q2 - c[8*i+2]
			s += d * d
			d = q3 - c[8*i+3]
			s += d * d
			d = q4 - c[8*i+4]
			s += d * d
			d = q5 - c[8*i+5]
			s += d * d
			d = q6 - c[8*i+6]
			s += d * d
			d = q7 - c[8*i+7]
			s += d * d
			d2[i] = s
		}
	default:
		dim := len(q)
		c := pts[at*dim : (at+n)*dim]
		// Four points per pass: each keeps its own accumulator, walked in
		// ascending dimension order (the exactness contract above), so the
		// four dependency chains overlap instead of serializing on one
		// accumulator's add latency — at d=32 this alone is ~1.6x.
		i := 0
		for ; i+4 <= n; i += 4 {
			r0 := c[i*dim : (i+1)*dim]
			r1 := c[(i+1)*dim : (i+2)*dim]
			r2 := c[(i+2)*dim : (i+3)*dim]
			r3 := c[(i+3)*dim : (i+4)*dim]
			var s0, s1, s2, s3 float64
			for j, v := range q {
				d := v - r0[j]
				s0 += d * d
				d = v - r1[j]
				s1 += d * d
				d = v - r2[j]
				s2 += d * d
				d = v - r3[j]
				s3 += d * d
			}
			d2[i], d2[i+1], d2[i+2], d2[i+3] = s0, s1, s2, s3
		}
		for ; i < n; i++ {
			row := c[i*dim : i*dim+dim]
			var s float64
			for j, v := range q {
				d := v - row[j]
				s += d * d
			}
			d2[i] = s
		}
	}
}

// CountRange returns how many points of slots [first, last) of pts lie
// within squared distance r2 of q (inclusive), identical to testing
// SqDist(q, point) <= r2 per slot. With a non-nil summary, blocks whose
// conservative minimum bound exceeds r2 are skipped without arithmetic
// and blocks whose maximum bound is within r2 are counted wholesale; the
// exact kernel runs only on the survivors.
func CountRange(s *Summary, q, pts []float64, first, last int, r2 float64) int {
	count := 0
	var d2 [Block]float64
	for at := first; at < last; {
		end := (at/Block + 1) * Block
		if end > last {
			end = last
		}
		n := end - at
		if s != nil {
			smin, smax := s.blockBounds(at/Block, q)
			if smin > r2 {
				at = end
				continue
			}
			if smax <= r2 {
				count += n
				at = end
				continue
			}
		}
		sqDistsChunk(&d2, q, pts, at, n)
		for i := 0; i < n; i++ {
			if d2[i] <= r2 {
				count++
			}
		}
		at = end
	}
	return count
}

// RangeBlock computes the squared distances from q to the next
// summary-aligned chunk of slots starting at `at` within [at, last),
// writing them to d2[0:n] and returning the chunk length n. When the
// summary proves every point of the chunk lies beyond the squared
// threshold, it returns pruned = true with d2 unspecified — the caller
// skips the chunk, which cannot change its result because every skipped
// distance would have failed its threshold test anyway. Callers iterate
// a range as
//
//	for at := first; at < last; {
//		n, pruned := kernel.RangeBlock(&d2, sum, q, pts, at, last, r2)
//		if !pruned { ...consume d2[0:n] for slots at..at+n... }
//		at += n
//	}
func RangeBlock(d2 *[Block]float64, s *Summary, q, pts []float64, at, last int, threshold float64) (n int, pruned bool) {
	end := (at/Block + 1) * Block
	if end > last {
		end = last
	}
	n = end - at
	if s != nil {
		if smin, _ := s.blockBounds(at/Block, q); smin > threshold {
			return n, true
		}
	}
	sqDistsChunk(d2, q, pts, at, n)
	return n, false
}
