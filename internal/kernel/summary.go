package kernel

import "math"

// Summary is the quantized prune prefilter over one arena coordinate
// block: for every aligned block of Block slots it stores a per-dimension
// uint8-coded bounding box, from which blockBounds derives conservative
// minimum and maximum squared distances to a query in a few cache lines —
// 2 bytes per dimension per 8 points, against 64 bytes of raw
// coordinates. The exact kernels then run only on blocks the bounds
// cannot settle.
//
// Conservativeness is established at FREEZE time, not argued from
// rounding analysis alone: every stored code is verified (and widened
// where needed) against the very dequantization expression the query path
// evaluates, so dequant(qlo) ≤ min coordinate and dequant(qhi) ≥ max
// coordinate hold as FLOAT comparisons, not just as real-number ones.
// From there the query-time bounds are safe by monotonicity: rounding is
// monotone, so a per-axis gap computed from a containing box never
// exceeds the float-computed per-axis difference of any contained point,
// squaring preserves the order, and two sums accumulated in the same
// order from term-wise dominated non-negative values stay ordered —
// including under fused-multiply-add contraction, which rounds a
// dominated exact value. FuzzKernelEquivalence re-checks the whole chain
// against brute force on every corpus input.
type Summary struct {
	dim    int
	blocks int
	base   []float64 // per dim: global minimum, the code-0 anchor
	scale  []float64 // per dim: code step, > 0, widened so code 255 covers the max
	qlo    []uint8   // block-major: qlo[b*dim+j] codes block b's dim-j minimum
	qhi    []uint8
}

// dequant decodes a coordinate code. Build-time verification and
// query-time bounds MUST both go through this one function so they agree
// bit-for-bit on every decoded value.
func dequant(base, scale float64, code uint8) float64 {
	return base + scale*float64(code)
}

// NewSummary builds the prefilter over the first n slots of the
// slot-major coordinate block pts. It returns nil when the input is too
// small for the prefilter to pay for itself (a single block scans faster
// than it summarizes) or dim is 0; callers pass the nil straight to
// CountRange/RangeBlock, which then run the exact kernels unconditionally.
func NewSummary(pts []float64, dim, n int) *Summary {
	if dim <= 0 || n <= Block {
		return nil
	}
	s := &Summary{
		dim:    dim,
		blocks: (n + Block - 1) / Block,
		base:   make([]float64, dim),
		scale:  make([]float64, dim),
	}
	s.qlo = make([]uint8, s.blocks*dim)
	s.qhi = make([]uint8, s.blocks*dim)

	// Global per-dimension bounds anchor the code space.
	for j := 0; j < dim; j++ {
		s.base[j] = pts[j]
		s.scale[j] = pts[j]
	}
	lo, hi := s.base, s.scale // scale doubles as the hi scratch until set
	for i := 1; i < n; i++ {
		row := pts[i*dim : (i+1)*dim]
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for j := 0; j < dim; j++ {
		top := hi[j]
		sc := (top - lo[j]) / 255
		if sc <= 0 {
			sc = 1
		}
		// Widen the step until code 255 provably reaches the global
		// maximum under the query path's own dequantization arithmetic;
		// without this, rounding in (hi-lo)/255 could leave the largest
		// coordinate outside every decodable box.
		for dequant(lo[j], sc, 255) < top {
			sc = math.Nextafter(sc, math.Inf(1))
		}
		s.scale[j] = sc
	}

	// Quantize each block's box, then verify every code against the
	// decoded value: a code that decodes strictly inside the true float
	// bound is widened outward until containment holds as a float
	// comparison. The loops terminate because code 0 decodes to base
	// (≤ any coordinate) and code 255 decodes ≥ the global maximum by
	// the scale widening above.
	for b := 0; b < s.blocks; b++ {
		first := b * Block
		last := first + Block
		if last > n {
			last = n
		}
		for j := 0; j < dim; j++ {
			blo, bhi := pts[first*dim+j], pts[first*dim+j]
			for i := first + 1; i < last; i++ {
				if v := pts[i*dim+j]; v < blo {
					blo = v
				} else if v > bhi {
					bhi = v
				}
			}
			base, sc := s.base[j], s.scale[j]
			cl := quantFloor(blo, base, sc)
			for cl > 0 && dequant(base, sc, cl) > blo {
				cl--
			}
			ch := quantCeil(bhi, base, sc)
			for ch < 255 && dequant(base, sc, ch) < bhi {
				ch++
			}
			s.qlo[b*dim+j] = cl
			s.qhi[b*dim+j] = ch
		}
	}
	return s
}

// Columns exposes the summary's flat storage — the per-dimension code
// anchors and steps plus the block-major quantized boxes — so the arena
// file format can persist a summary as four plain columns and rebuild it
// with NewSummaryFromColumns. The slices are the live internals, not
// copies; callers must treat them as read-only.
func (s *Summary) Columns() (base, scale []float64, qlo, qhi []uint8) {
	return s.base, s.scale, s.qlo, s.qhi
}

// NewSummaryFromColumns reassembles a summary from persisted columns
// (the inverse of Columns) over a coordinate block of n dim-dimensional
// slots. It returns nil — no prefilter, exact kernels throughout, the
// same degradation NewSummary applies to tiny inputs — when the column
// shapes are inconsistent with (n, dim), so a damaged file can disable
// the prefilter but never index it out of bounds.
func NewSummaryFromColumns(dim, n int, base, scale []float64, qlo, qhi []uint8) *Summary {
	if dim <= 0 || n <= Block {
		return nil
	}
	blocks := (n + Block - 1) / Block
	if len(base) != dim || len(scale) != dim || len(qlo) != blocks*dim || len(qhi) != blocks*dim {
		return nil
	}
	return &Summary{dim: dim, blocks: blocks, base: base, scale: scale, qlo: qlo, qhi: qhi}
}

// quantFloor and quantCeil are first-guess codes; NewSummary verifies and
// widens them, so they only need to be close, never exact.
func quantFloor(v, base, scale float64) uint8 {
	c := math.Floor((v - base) / scale)
	if c < 0 {
		return 0
	}
	if c > 255 {
		return 255
	}
	return uint8(c)
}

func quantCeil(v, base, scale float64) uint8 {
	c := math.Ceil((v - base) / scale)
	if c < 0 {
		return 0
	}
	if c > 255 {
		return 255
	}
	return uint8(c)
}

// blockBounds returns conservative minimum and maximum squared distances
// from q to every point of block b: smin never exceeds the exact kernel's
// squared distance to any point of the block, and smax is never below it.
// The accumulation mirrors sqDistsChunk's statement shape so the
// monotonicity argument in the type comment applies per term.
func (s *Summary) blockBounds(b int, q []float64) (smin, smax float64) {
	off := b * s.dim
	for j, v := range q {
		base, sc := s.base[j], s.scale[j]
		lo := dequant(base, sc, s.qlo[off+j])
		hi := dequant(base, sc, s.qhi[off+j])
		if d := lo - v; d > 0 {
			smin += d * d
		} else if d := v - hi; d > 0 {
			smin += d * d
		}
		far := v - lo
		if f := hi - v; f > far {
			far = f
		}
		smax += far * far
	}
	return smin, smax
}
