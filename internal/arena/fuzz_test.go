package arena_test

// FuzzIndexFileOpen throws arbitrary bytes at the whole decode path — the
// arena header/column parser plus every backend's reconstruction and
// structural validation — and asserts the contract the error-handling
// satellite promises: a corrupt or crafted index file yields a wrapped
// ErrBadIndexFile-family error, never a panic, an out-of-bounds access,
// or a non-terminating traversal. Decoded files that do pass validation
// get a few queries run over them, so the invariants the validators
// enforce are exercised, not just computed.
//
// The committed seed corpus (testdata/fuzz/FuzzIndexFileOpen) holds one
// valid file per backend kind plus truncation/corruption variants;
// gen_corpus_test.go regenerates it.

import (
	"errors"
	"testing"

	"mccatch/internal/arena"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/slimtree"
)

// fuzzQueryCap bounds the work done on a structurally valid decode so the
// fuzzer spends its budget parsing, not range-counting giant inputs.
// fuzzStrCap is much tighter: string queries pay O(len²) per Levenshtein
// call, so a single crafted 64 KiB word would stall an exec for seconds
// (and stall minimization for minutes).
const (
	fuzzQueryCap = 1 << 12
	fuzzStrCap   = 1 << 10
)

func FuzzIndexFileOpen(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		af, err := arena.Decode(data)
		if err != nil {
			requireClassified(t, err)
			return
		}
		switch af.Kind {
		case arena.KindKD:
			tr, err := kdtree.FromFile(af)
			if err != nil {
				requireClassified(t, err)
				return
			}
			if tr.Size() > 0 && tr.Size() <= fuzzQueryCap {
				q := tr.Items()[0]
				tr.RangeCount(q, tr.DiameterEstimate()/2)
				tr.KNN(q, 2)
			}
		case arena.KindR:
			tr, err := rtree.FromFile(af)
			if err != nil {
				requireClassified(t, err)
				return
			}
			if tr.Size() > 0 && tr.Size() <= fuzzQueryCap {
				q := tr.Items()[0]
				tr.RangeCount(q, tr.DiameterEstimate()/2)
			}
		case arena.KindSlimVec:
			tr, err := slimtree.FromFileVec(af)
			if err != nil {
				requireClassified(t, err)
				return
			}
			if tr.Size() > 0 && tr.Size() <= fuzzQueryCap {
				q := tr.Items()[0]
				tr.RangeCount(q, tr.DiameterEstimate()/2)
			}
		case arena.KindSlimStr:
			tr, err := slimtree.FromFileStr(af, metric.Levenshtein)
			if err != nil {
				requireClassified(t, err)
				return
			}
			if n := tr.Size(); n > 0 && n <= fuzzQueryCap && len(data) <= fuzzStrCap {
				q := tr.Items()[0]
				tr.RangeCount(q, 2)
			}
		default:
			t.Fatalf("Decode accepted unknown kind %v", af.Kind)
		}
	})
}

// requireClassified asserts a decode failure carries one of the exported
// sentinels, so callers can triage it with errors.Is.
func requireClassified(t *testing.T, err error) {
	t.Helper()
	for _, sentinel := range []error{
		arena.ErrBadIndexFile, arena.ErrIndexVersion, arena.ErrTruncated,
		arena.ErrChecksum, arena.ErrIndexKind,
	} {
		if errors.Is(err, sentinel) {
			return
		}
	}
	t.Fatalf("unclassified decode error: %v", err)
}

// corpusSeeds builds the in-code seeds: a small valid file for every
// backend kind, plus a truncated and a bit-flipped variant of the first.
func corpusSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, file := range seedFiles(f) {
		seeds = append(seeds, file)
	}
	if len(seeds) > 0 && len(seeds[0]) > 100 {
		trunc := append([]byte(nil), seeds[0][:100]...)
		flipped := append([]byte(nil), seeds[0]...)
		flipped[96] ^= 0x40
		seeds = append(seeds, trunc, flipped)
	}
	return seeds
}

// seedFiles encodes one small valid index file per backend kind.
func seedFiles(tb testing.TB) [][]byte {
	tb.Helper()
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {4, 4}, {9, 1}, {2, 7}, {5, 5}}
	words := []string{"smith", "smyth", "jones", "jonas", "zzz"}
	var out [][]byte
	{
		var buf writerBuf
		if err := kdtree.New(pts).Save(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.b)
	}
	{
		var buf writerBuf
		if err := rtree.New(pts, 4).Save(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.b)
	}
	{
		var buf writerBuf
		if err := slimtree.NewBulk(metric.Euclidean, 4, pts).Save(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.b)
	}
	{
		var buf writerBuf
		if err := slimtree.NewBulk(metric.Levenshtein, 4, words).Save(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.b)
	}
	return out
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
