package arena

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleWriter builds a writer with one column of every kind plus header
// metadata, the shared fixture of the round-trip and corruption tests.
func sampleWriter() (*Writer, []float64, []int32, []uint8, []bool) {
	f64 := []float64{0, 1.5, -2.25, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	i32 := []int32{-1, 0, 7, 1 << 30, -(1 << 30)}
	u8 := []uint8{0, 1, 127, 255}
	bl := []bool{true, false, true, true}
	w := NewWriter(KindKD, 6, 3, 12.75, [4]int64{42, -7, 0, 1})
	w.F64("pts", f64)
	w.I32("links", i32)
	w.U8("codes", u8)
	w.Bool("leaf", bl)
	return w, f64, i32, u8, bl
}

func writeSample(t *testing.T) string {
	t.Helper()
	w, _, _, _, _ := sampleWriter()
	path := filepath.Join(t.TempDir(), "idx.mcidx")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripMmapAndHeap(t *testing.T) {
	path := writeSample(t)
	_, f64, i32, u8, bl := sampleWriter()
	for _, opts := range [][]Option{nil, {WithHeap()}} {
		f, err := Open(path, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(opts) > 0 && f.Mapped() {
			t.Error("WithHeap still mapped")
		}
		if f.Kind != KindKD || f.N != 6 || f.Dim != 3 || f.Diameter != 12.75 {
			t.Errorf("header mismatch: %+v", f)
		}
		if f.Scalars != [4]int64{42, -7, 0, 1} {
			t.Errorf("scalars mismatch: %v", f.Scalars)
		}
		gotF, err := f.F64("pts")
		if err != nil {
			t.Fatal(err)
		}
		gotI, err := f.I32("links")
		if err != nil {
			t.Fatal(err)
		}
		gotU, err := f.U8("codes")
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := f.Bool("leaf")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotF, f64) || !reflect.DeepEqual(gotI, i32) ||
			!reflect.DeepEqual(gotU, u8) || !reflect.DeepEqual(gotB, bl) {
			t.Errorf("column round trip mismatch (mapped=%v)", f.Mapped())
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseIdempotent pins the lifecycle contract the Detector layer
// relies on: Close may be called any number of times (only the first
// unmaps), and a column lookup after Close fails with an error instead
// of handing out a view into unmapped memory.
func TestCloseIdempotent(t *testing.T) {
	path := writeSample(t)
	for _, opts := range [][]Option{nil, {WithHeap()}} {
		f, err := Open(path, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := f.Close(); err != nil {
				t.Fatalf("Close #%d (mapped=%v): %v", i+1, len(opts) == 0, err)
			}
		}
		if _, err := f.F64("pts"); err == nil {
			t.Error("F64 after Close returned a view instead of an error")
		}
	}
}

func TestColumnBlocksArePageAligned(t *testing.T) {
	w, _, _, _, _ := sampleWriter()
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	if n%blockAlign != 0 {
		t.Errorf("file size %d not page-padded", n)
	}
	f, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f.cols {
		if c.offset%blockAlign != 0 {
			t.Errorf("column %q offset %d not page aligned", c.name, c.offset)
		}
	}
}

func TestMissingAndMistypedColumns(t *testing.T) {
	path := writeSample(t)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.F64("nope"); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("missing column: got %v", err)
	}
	if _, err := f.I32("pts"); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("mistyped column: got %v", err)
	}
	if err := f.ExpectKind(KindKD); err != nil {
		t.Errorf("ExpectKind(KindKD): %v", err)
	}
	if err := f.ExpectKind(KindR); !errors.Is(err, ErrIndexKind) {
		t.Errorf("ExpectKind(KindR): got %v", err)
	}
}

// corrupt writes the sample file, applies f to its bytes, and returns the
// decode error from both the mmap and heap paths (asserting they agree on
// the sentinel).
func corrupt(t *testing.T, mutate func([]byte) []byte) error {
	t.Helper()
	w, _, _, _, _ := sampleWriter()
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := mutate(append([]byte(nil), buf.Bytes()...))
	path := filepath.Join(t.TempDir(), "bad.mcidx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, mmapErr := Open(path)
	_, heapErr := Open(path, WithHeap())
	if (mmapErr == nil) != (heapErr == nil) {
		t.Fatalf("mmap/heap disagree: %v vs %v", mmapErr, heapErr)
	}
	if mmapErr != nil && heapErr != nil {
		for _, sentinel := range []error{ErrBadIndexFile, ErrIndexVersion, ErrTruncated, ErrChecksum} {
			if errors.Is(mmapErr, sentinel) != errors.Is(heapErr, sentinel) {
				t.Fatalf("mmap/heap classify differently: %v vs %v", mmapErr, heapErr)
			}
		}
	}
	return mmapErr
}

func TestDecodeErrors(t *testing.T) {
	le := binary.LittleEndian
	t.Run("wrong magic", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte { le.PutUint32(b[0:], 0xDEADBEEF); return b })
		if !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte { le.PutUint32(b[4:], Version+1); return b })
		if !errors.Is(err, ErrIndexVersion) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte { return b[:headerSize-8] })
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("truncated column", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte { return b[:len(b)-blockAlign] })
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("checksum mismatch", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte {
			b[len(b)-blockAlign] ^= 0xFF // first byte of the last column block
			return b
		})
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("non-boolean bool byte", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte {
			// Patch the bool column to a 2 and fix its CRC so the bool
			// validation, not the checksum, must catch it.
			off := len(b) - blockAlign
			b[off] = 2
			crc := crc32.Checksum(b[off:off+4], crcTable)
			// Bool column is table row 3.
			row := headerSize + 3*colRowSize
			le.PutUint32(b[row+20:], crc)
			return b
		})
		if !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("column past EOF", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte {
			row := headerSize + 0*colRowSize
			le.PutUint64(b[row+32:], uint64(len(b))) // offset at EOF, length > 0
			return b
		})
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("empty file", func(t *testing.T) {
		err := corrupt(t, func(b []byte) []byte { return nil })
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v", err)
		}
	})
}

func TestReadKind(t *testing.T) {
	path := writeSample(t)
	k, err := ReadKind(path)
	if err != nil || k != KindKD {
		t.Fatalf("ReadKind = %v, %v", k, err)
	}
	bad := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(bad, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKind(bad); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("junk ReadKind: %v", err)
	}
}

func TestEmptyColumnsRoundTrip(t *testing.T) {
	w := NewWriter(KindSlimStr, 0, 0, 0, [4]int64{})
	w.F64("empty", nil)
	w.I32("alsoempty", nil)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if vals, err := f.F64("empty"); err != nil || len(vals) != 0 {
		t.Errorf("empty column: %v, %v", vals, err)
	}
}
