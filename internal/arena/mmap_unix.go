//go:build unix

package arena

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is one live read-only file mapping.
type mapping struct {
	data []byte
}

// mmapFile maps the whole file read-only. MAP_SHARED keeps the pages
// file-backed and clean, so under memory pressure the kernel drops them
// instead of swapping — the paging behavior the out-of-core arenas rely
// on. Failures (empty file, filesystems without mmap) make Open fall
// back to the heap read.
func mmapFile(fh *os.File, size int64) (*mapping, error) {
	if size <= 0 {
		return nil, fmt.Errorf("arena: cannot mmap %d bytes", size)
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("arena: file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(fh.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
