package arena

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The on-disk format is little-endian. On little-endian hosts — every
// first-class Go platform — the typed column views reinterpret the file
// bytes in place (the whole point of the mmap path: no copy, no decode).
// On a big-endian host the same helpers transparently fall back to
// explicit encode/decode copies: correct everywhere, zero-copy where it
// matters.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// f64Bytes returns vals' bytes in file (little-endian) order.
func f64Bytes(vals []float64) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*8)
	}
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// i32Bytes returns vals' bytes in file order.
func i32Bytes(vals []int32) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*4)
	}
	out := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// boolBytes returns vals as 0/1 bytes. Go stores bool as one byte whose
// valid values are exactly 0 and 1, so the in-place view is already the
// file encoding on any endianness.
func boolBytes(vals []bool) []byte {
	if len(vals) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals))
}

// u64Bytes views a []uint64 as bytes; used to mint 8-byte-aligned heap
// buffers.
func u64Bytes(words []uint64) []byte {
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
}

// bytesF64 views a column block as []float64. b's base must be 8-byte
// aligned and its length a multiple of 8 (both established by decode).
func bytesF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// bytesI32 views a column block as []int32.
func bytesI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// bytesBool views a column block as []bool (decode verified every byte
// is 0/1, so the reinterpretation is sound).
func bytesBool(b []byte) []bool {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}
