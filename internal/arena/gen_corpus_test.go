package arena_test

// TestGenerateFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzIndexFileOpen — one valid index file per backend
// kind plus truncated/corrupted variants, in Go's fuzz-corpus encoding.
// It is a no-op unless MCCATCH_GEN_CORPUS=1, so a normal test run never
// rewrites testdata:
//
//	MCCATCH_GEN_CORPUS=1 go test -run TestGenerateFuzzCorpus ./internal/arena/

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("MCCATCH_GEN_CORPUS") != "1" {
		t.Skip("set MCCATCH_GEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzIndexFileOpen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := []string{"kd", "rtree", "slimvec", "slimstr"}
	files := seedFiles(t)
	for i, data := range files {
		writeCorpusEntry(t, filepath.Join(dir, "seed_"+names[i]), data)
	}
	kd := files[0]
	writeCorpusEntry(t, filepath.Join(dir, "seed_truncated"), kd[:100])
	flipped := append([]byte(nil), kd...)
	flipped[96] ^= 0x40 // a byte inside the first column block: checksum mismatch
	writeCorpusEntry(t, filepath.Join(dir, "seed_bitflip"), flipped)
	badmagic := append([]byte(nil), kd...)
	badmagic[0] ^= 0xFF
	writeCorpusEntry(t, filepath.Join(dir, "seed_badmagic"), badmagic)
	badver := append([]byte(nil), kd...)
	badver[4] = 0x7F
	writeCorpusEntry(t, filepath.Join(dir, "seed_badversion"), badver)
}

func writeCorpusEntry(t *testing.T, path string, data []byte) {
	t.Helper()
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
