// Package arena defines the versioned on-disk format every frozen index
// arena (kd-tree, R-tree, slim-tree) serializes to, and the mmap-backed
// reader that reconstructs the tree views as slices over the mapping.
//
// The PR 5 arenas are already flat struct-of-arrays column blocks —
// []float64 coordinates, int32 links, [first,last) child ranges — so the
// file format is a direct dump of those columns behind one header:
//
//	offset 0                     header (80 fixed bytes, little-endian)
//	offset 80                    column table, one 56-byte row per column
//	offset align4096(...)        column 0 block
//	offset align4096(...)        column 1 block
//	...
//
// Header fields: magic "MCIX", format version, backend kind, element
// count n, dimensionality, the dataset diameter (so a cold open never
// re-estimates it), four backend-specific int64 scalars (R-tree fanout,
// slim-tree capacity, ...), and the column count. Each column-table row
// carries the column's name, element kind (float64 / int32 / uint8 /
// bool), element count, byte offset, byte length, and a CRC-32C checksum
// of its block.
//
// Every column block starts on a 4096-byte boundary. That page alignment
// is what makes the mmap path work: a column's bytes can be reinterpreted
// in place as a []float64 or []int32 view (alignment is guaranteed), the
// hot upper tree levels stay resident in the page cache, and cold leaf
// blocks page in on first touch and page out under memory pressure —
// queries over datasets far beyond RAM never copy the file onto the heap.
// On platforms without mmap (or under WithHeap) the reader falls back to
// reading the file into one 8-byte-aligned heap block and serving the
// same views from it; the two paths are indistinguishable to callers.
//
// Versioning policy: the version bumps whenever the header, the table
// layout, or any backend's column set changes incompatibly; readers
// reject newer versions with ErrIndexVersion (fail loudly rather than
// misread a future layout) and keep decoding every older version they
// ever shipped support for. Adding a NEW backend kind is not a version
// bump — old readers report it as ErrIndexKind, which is the right error.
//
// Decode errors are classified by wrapped sentinel: ErrBadIndexFile
// (wrong magic or malformed structure), ErrIndexVersion (format version
// newer than this build), ErrTruncated (file shorter than its column
// table promises), ErrChecksum (a column's CRC does not match), and
// ErrIndexKind (the file is valid but holds a different backend's
// arena). Backends layer their own structural validation on top so a
// corrupt-but-well-formed file errors instead of panicking mid-slice.
package arena

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies an mccatch index file ("MCIX" read as bytes).
const Magic uint32 = 0x5849434D

// Version is the current format version; see the package comment for the
// versioning policy.
const Version uint32 = 1

// blockAlign is the alignment of every column block. One page on every
// supported platform, which (a) guarantees any element type's natural
// alignment for the in-place views and (b) keeps columns from sharing a
// page, so paging one column in never drags a neighbor along.
const blockAlign = 4096

// Kind identifies which backend's arena a file holds.
type Kind uint32

const (
	// KindKD is the kd-tree arena (internal/kdtree).
	KindKD Kind = 1
	// KindR is the STR R-tree arena (internal/rtree).
	KindR Kind = 2
	// KindSlimVec is a slim-tree arena over []float64 elements.
	KindSlimVec Kind = 3
	// KindSlimStr is a slim-tree arena over string elements.
	KindSlimStr Kind = 4
)

// String names the kind for error messages and the CLI.
func (k Kind) String() string {
	switch k {
	case KindKD:
		return "kd"
	case KindR:
		return "rtree"
	case KindSlimVec:
		return "slim-vec"
	case KindSlimStr:
		return "slim-str"
	}
	return fmt.Sprintf("kind(%d)", uint32(k))
}

// ColKind is a column's element type.
type ColKind uint32

const (
	ColF64  ColKind = 1 // float64, 8 bytes
	ColI32  ColKind = 2 // int32, 4 bytes
	ColU8   ColKind = 3 // uint8, 1 byte
	ColBool ColKind = 4 // bool, 1 byte, values restricted to 0/1
)

func (k ColKind) elemSize() int64 {
	switch k {
	case ColF64:
		return 8
	case ColI32:
		return 4
	case ColU8, ColBool:
		return 1
	}
	return 0
}

// Sentinel decode errors. Every decode failure wraps exactly one of
// these, so callers can classify with errors.Is.
var (
	// ErrBadIndexFile marks a file that is not an mccatch index at all
	// (wrong magic) or whose structure is internally inconsistent.
	ErrBadIndexFile = errors.New("arena: not a valid index file")
	// ErrIndexVersion marks a file written by a newer format version.
	ErrIndexVersion = errors.New("arena: unsupported index format version")
	// ErrTruncated marks a file shorter than its header or column table
	// promises.
	ErrTruncated = errors.New("arena: truncated index file")
	// ErrChecksum marks a column whose stored CRC-32C does not match its
	// bytes.
	ErrChecksum = errors.New("arena: index column checksum mismatch")
	// ErrIndexKind marks a valid index file opened by the wrong backend.
	ErrIndexKind = errors.New("arena: index file holds a different backend kind")
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize  = 80
	colRowSize  = 56
	colNameSize = 16
	// maxColumns bounds the table so a hostile header cannot make the
	// reader allocate gigabytes before any checksum runs; real arenas
	// hold ~20 columns.
	maxColumns = 1024
)

// column is one column-table row.
type column struct {
	name   string
	kind   ColKind
	count  int64
	offset int64 // bytes from file start
	length int64 // bytes
	crc    uint32
}

// align4096 rounds n up to the next block boundary.
func align4096(n int64) int64 {
	return (n + blockAlign - 1) &^ (blockAlign - 1)
}

// Writer accumulates an arena's columns and serializes them behind the
// header. Columns are written in registration order; registering borrows
// the slices (no copy) until WriteTo runs, so they must stay unchanged
// in between.
type Writer struct {
	kind     Kind
	n, dim   int64
	diameter float64
	scalars  [4]int64
	cols     []column
	data     [][]byte // raw bytes per column, parallel to cols
}

// NewWriter starts an arena file of the given backend kind over n
// elements of the given dimensionality (0 for nondimensional data).
// diameter is the dataset diameter the builder computed; storing it
// makes cold opens instant even for metric backends whose estimator
// would otherwise re-evaluate distances. scalars carries up to four
// backend-specific integers (fanout, capacity, ...).
func NewWriter(kind Kind, n, dim int, diameter float64, scalars [4]int64) *Writer {
	return &Writer{kind: kind, n: int64(n), dim: int64(dim), diameter: diameter, scalars: scalars}
}

func (w *Writer) addCol(name string, kind ColKind, count int, raw []byte) {
	if len(name) > colNameSize {
		panic("arena: column name too long: " + name)
	}
	w.cols = append(w.cols, column{name: name, kind: kind, count: int64(count), length: int64(len(raw))})
	w.data = append(w.data, raw)
}

// F64 registers a float64 column.
func (w *Writer) F64(name string, vals []float64) { w.addCol(name, ColF64, len(vals), f64Bytes(vals)) }

// I32 registers an int32 column.
func (w *Writer) I32(name string, vals []int32) { w.addCol(name, ColI32, len(vals), i32Bytes(vals)) }

// U8 registers a uint8 column.
func (w *Writer) U8(name string, vals []uint8) { w.addCol(name, ColU8, len(vals), vals) }

// Bool registers a bool column; values are stored as bytes 0/1.
func (w *Writer) Bool(name string, vals []bool) { w.addCol(name, ColBool, len(vals), boolBytes(vals)) }

// WriteTo serializes the header, the column table and the page-aligned
// column blocks. It works on any io.Writer (no seeking): offsets are
// computed up front from the registered lengths, and padding is written
// explicitly. Returns the total bytes written.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	tableEnd := int64(headerSize) + int64(len(w.cols))*colRowSize
	at := align4096(tableEnd)
	for i := range w.cols {
		w.cols[i].offset = at
		w.cols[i].crc = crc32.Checksum(w.data[i], crcTable)
		at = align4096(at + w.cols[i].length)
	}

	le := binary.LittleEndian
	head := make([]byte, tableEnd)
	le.PutUint32(head[0:], Magic)
	le.PutUint32(head[4:], Version)
	le.PutUint32(head[8:], uint32(w.kind))
	le.PutUint32(head[12:], 0) // reserved
	le.PutUint64(head[16:], uint64(w.n))
	le.PutUint64(head[24:], uint64(w.dim))
	le.PutUint64(head[32:], math.Float64bits(w.diameter))
	for i, s := range w.scalars {
		le.PutUint64(head[40+8*i:], uint64(s))
	}
	le.PutUint32(head[72:], uint32(len(w.cols)))
	le.PutUint32(head[76:], 0) // reserved
	for i, c := range w.cols {
		row := head[headerSize+i*colRowSize:]
		copy(row[0:colNameSize], c.name)
		le.PutUint32(row[16:], uint32(c.kind))
		le.PutUint32(row[20:], c.crc)
		le.PutUint64(row[24:], uint64(c.count))
		le.PutUint64(row[32:], uint64(c.offset))
		le.PutUint64(row[40:], uint64(c.length))
		le.PutUint64(row[48:], 0) // reserved
	}

	total := int64(0)
	emit := func(b []byte) error {
		n, err := out.Write(b)
		total += int64(n)
		return err
	}
	if err := emit(head); err != nil {
		return total, err
	}
	// Zero padding between blocks; one page of zeros is enough scratch.
	var zeros [blockAlign]byte
	pad := func(upto int64) error {
		for total < upto {
			n := upto - total
			if n > blockAlign {
				n = blockAlign
			}
			if err := emit(zeros[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	for i, c := range w.cols {
		if err := pad(c.offset); err != nil {
			return total, err
		}
		if err := emit(w.data[i]); err != nil {
			return total, err
		}
	}
	// Trailing pad keeps the file a whole number of pages, so the last
	// column's mmap view never reads past EOF on the final page.
	if err := pad(align4096(total)); err != nil {
		return total, err
	}
	return total, nil
}

// WriteFile serializes to path via a same-directory temp file + rename,
// so a crash mid-write never leaves a half-written index at path.
func (w *Writer) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".mcidx-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := w.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// File is a decoded arena: the header fields plus typed views over the
// column blocks. The views alias the backing mapping (or heap block);
// they are valid until Close.
type File struct {
	Kind     Kind
	N, Dim   int
	Diameter float64
	Scalars  [4]int64

	cols    []column
	data    []byte // whole file: mmap'd or heap-read
	mapped  bool
	mapping *mapping // non-nil when mmap-backed
}

// openOptions configures Open.
type openOptions struct {
	forceHeap bool
}

// Option configures Open.
type Option func(*openOptions)

// WithHeap forces the read-into-heap path even where mmap is available —
// the non-mmap-platform fallback, kept reachable everywhere so tests can
// pin both paths equivalent.
func WithHeap() Option {
	return func(o *openOptions) { o.forceHeap = true }
}

// Open maps (or reads) the index file at path and decodes its header and
// column table, verifying every column checksum. Checksums stream the
// file once; under mmap the touched pages remain evictable, so the pass
// costs I/O, not residency.
func Open(path string, opts ...Option) (*File, error) {
	var o openOptions
	for _, op := range opts {
		op(&o)
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if !o.forceHeap {
		if m, err := mmapFile(fh, size); err == nil {
			f, derr := decode(m.data, true, m)
			if derr != nil {
				m.close()
				return nil, derr
			}
			return f, nil
		}
		// mmap unavailable (platform, filesystem, empty file): fall
		// through to the heap read.
	}
	data, err := readAligned(fh, size)
	if err != nil {
		return nil, err
	}
	return decode(data, false, nil)
}

// Decode decodes an arena from an in-memory byte block (heap path only;
// used by tests and by any caller holding the bytes already). The block
// must be 8-byte aligned for the in-place views; copy through
// readAlignedBytes when unsure.
func Decode(data []byte) (*File, error) {
	return decode(alignedCopy(data), false, nil)
}

// readAligned reads the remaining size bytes of fh into an 8-byte-aligned
// heap block (a []uint64 backing), so the in-place column views hold the
// same alignment guarantee the page-aligned mapping gives.
func readAligned(fh *os.File, size int64) ([]byte, error) {
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("%w: implausible file size %d", ErrBadIndexFile, size)
	}
	buf := alignedBuf(int(size))
	if _, err := io.ReadFull(fh, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// alignedBuf returns a zeroed n-byte slice whose base is 8-byte aligned.
func alignedBuf(n int) []byte {
	words := make([]uint64, (n+7)/8)
	return u64Bytes(words)[:n]
}

func alignedCopy(data []byte) []byte {
	buf := alignedBuf(len(data))
	copy(buf, data)
	return buf
}

// decode parses the header + column table over data and verifies every
// column checksum. data must outlive the returned File.
func decode(data []byte, mapped bool, m *mapping) (*File, error) {
	le := binary.LittleEndian
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), headerSize)
	}
	if got := le.Uint32(data[0:]); got != Magic {
		return nil, fmt.Errorf("%w: magic %#08x, want %#08x", ErrBadIndexFile, got, Magic)
	}
	if v := le.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads version %d", ErrIndexVersion, v, Version)
	}
	f := &File{
		Kind:     Kind(le.Uint32(data[8:])),
		N:        int(int64(le.Uint64(data[16:]))),
		Dim:      int(int64(le.Uint64(data[24:]))),
		Diameter: math.Float64frombits(le.Uint64(data[32:])),
		data:     data,
		mapped:   mapped,
		mapping:  m,
	}
	for i := range f.Scalars {
		f.Scalars[i] = int64(le.Uint64(data[40+8*i:]))
	}
	if f.N < 0 || f.Dim < 0 {
		return nil, fmt.Errorf("%w: negative n (%d) or dim (%d)", ErrBadIndexFile, f.N, f.Dim)
	}
	switch f.Kind {
	case KindKD, KindR, KindSlimVec, KindSlimStr:
	default:
		return nil, fmt.Errorf("%w: unknown index kind %d", ErrBadIndexFile, uint32(f.Kind))
	}
	ncols := int(le.Uint32(data[72:]))
	if ncols > maxColumns {
		return nil, fmt.Errorf("%w: %d columns exceeds the format bound %d", ErrBadIndexFile, ncols, maxColumns)
	}
	tableEnd := int64(headerSize) + int64(ncols)*colRowSize
	if int64(len(data)) < tableEnd {
		return nil, fmt.Errorf("%w: column table needs %d bytes, file has %d", ErrTruncated, tableEnd, len(data))
	}
	f.cols = make([]column, ncols)
	for i := 0; i < ncols; i++ {
		row := data[headerSize+i*colRowSize:]
		name := row[0:colNameSize]
		end := 0
		for end < colNameSize && name[end] != 0 {
			end++
		}
		c := column{
			name:   string(name[:end]),
			kind:   ColKind(le.Uint32(row[16:])),
			crc:    le.Uint32(row[20:]),
			count:  int64(le.Uint64(row[24:])),
			offset: int64(le.Uint64(row[32:])),
			length: int64(le.Uint64(row[40:])),
		}
		es := c.kind.elemSize()
		if es == 0 {
			return nil, fmt.Errorf("%w: column %q has unknown kind %d", ErrBadIndexFile, c.name, c.kind)
		}
		if c.count < 0 || c.length != c.count*es {
			return nil, fmt.Errorf("%w: column %q: %d elements of %d bytes cannot occupy %d bytes",
				ErrBadIndexFile, c.name, c.count, es, c.length)
		}
		if c.offset < tableEnd || c.offset%8 != 0 {
			return nil, fmt.Errorf("%w: column %q has misplaced offset %d", ErrBadIndexFile, c.name, c.offset)
		}
		if c.offset+c.length < c.offset || c.offset+c.length > int64(len(data)) {
			return nil, fmt.Errorf("%w: column %q [%d, %d) runs past the %d-byte file",
				ErrTruncated, c.name, c.offset, c.offset+c.length, len(data))
		}
		if got := crc32.Checksum(data[c.offset:c.offset+c.length], crcTable); got != c.crc {
			return nil, fmt.Errorf("%w: column %q: computed %#08x, stored %#08x", ErrChecksum, c.name, got, c.crc)
		}
		if c.kind == ColBool {
			for _, b := range data[c.offset : c.offset+c.length] {
				if b > 1 {
					return nil, fmt.Errorf("%w: column %q holds non-boolean byte %d", ErrBadIndexFile, c.name, b)
				}
			}
		}
		f.cols[i] = c
	}
	return f, nil
}

// Mapped reports whether the file is served by an mmap mapping (false on
// the heap fallback).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping (or lets the heap block be collected). Any
// column view obtained from the file — and any tree built over one — is
// invalid afterwards.
func (f *File) Close() error {
	f.data = nil
	f.cols = nil
	if f.mapping != nil {
		m := f.mapping
		f.mapping = nil
		return m.close()
	}
	return nil
}

// ExpectKind returns ErrIndexKind unless the file holds the given
// backend kind.
func (f *File) ExpectKind(k Kind) error {
	if f.Kind != k {
		return fmt.Errorf("%w: file holds %v, reader wants %v", ErrIndexKind, f.Kind, k)
	}
	return nil
}

func (f *File) col(name string, kind ColKind) (column, error) {
	for _, c := range f.cols {
		if c.name == name {
			if c.kind != kind {
				return column{}, fmt.Errorf("%w: column %q has kind %d, want %d", ErrBadIndexFile, name, c.kind, kind)
			}
			return c, nil
		}
	}
	return column{}, fmt.Errorf("%w: missing column %q", ErrBadIndexFile, name)
}

// F64 returns the named float64 column as an in-place view.
func (f *File) F64(name string) ([]float64, error) {
	c, err := f.col(name, ColF64)
	if err != nil {
		return nil, err
	}
	return bytesF64(f.data[c.offset : c.offset+c.length]), nil
}

// I32 returns the named int32 column as an in-place view.
func (f *File) I32(name string) ([]int32, error) {
	c, err := f.col(name, ColI32)
	if err != nil {
		return nil, err
	}
	return bytesI32(f.data[c.offset : c.offset+c.length]), nil
}

// U8 returns the named uint8 column as an in-place view.
func (f *File) U8(name string) ([]uint8, error) {
	c, err := f.col(name, ColU8)
	if err != nil {
		return nil, err
	}
	return f.data[c.offset : c.offset+c.length], nil
}

// Bool returns the named bool column as an in-place view (bytes were
// validated 0/1 at decode time).
func (f *File) Bool(name string) ([]bool, error) {
	c, err := f.col(name, ColBool)
	if err != nil {
		return nil, err
	}
	return bytesBool(f.data[c.offset : c.offset+c.length]), nil
}

// ReadKind peeks at the file's backend kind without decoding columns —
// the CLI uses it to dispatch element types before committing to a full
// open.
func ReadKind(path string) (Kind, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	var head [headerSize]byte
	if _, err := io.ReadFull(fh, head[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	le := binary.LittleEndian
	if got := le.Uint32(head[0:]); got != Magic {
		return 0, fmt.Errorf("%w: magic %#08x, want %#08x", ErrBadIndexFile, got, Magic)
	}
	if v := le.Uint32(head[4:]); v != Version {
		return 0, fmt.Errorf("%w: file version %d, this build reads version %d", ErrIndexVersion, v, Version)
	}
	return Kind(le.Uint32(head[8:])), nil
}
