//go:build !unix

package arena

import (
	"errors"
	"os"
)

// mapping is unused on platforms without mmap; Open always takes the
// read-into-heap fallback there.
type mapping struct {
	data []byte
}

func mmapFile(fh *os.File, size int64) (*mapping, error) {
	return nil, errors.New("arena: mmap unavailable on this platform")
}

func (m *mapping) close() error { return nil }
