package eval

import "math"

// TTestResult reports a Welch two-sample t-test.
type TTestResult struct {
	Stat   float64 // t statistic
	DF     float64 // Welch–Satterthwaite degrees of freedom
	PValue float64 // one-sided p-value for H1: mean(a) > mean(b)
}

// WelchTTest performs Welch's unequal-variance two-sample t-test of
// H1: mean(a) > mean(b) against H0: the means are equal — the test Tab. V
// uses to check that the 'green' microcluster's score exceeds the 'red'
// one's across trials. Samples with fewer than 2 values, or two zero-
// variance samples, return NaN statistics (p = 1 when the means do not
// already differ in the right direction).
func WelchTTest(a, b []float64) TTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return TTestResult{Stat: math.NaN(), DF: math.NaN(), PValue: math.NaN()}
	}
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	if va == 0 && vb == 0 {
		// Degenerate but decidable: identical constants on both sides.
		switch {
		case ma > mb:
			return TTestResult{Stat: math.Inf(1), DF: na + nb - 2, PValue: 0}
		case ma < mb:
			return TTestResult{Stat: math.Inf(-1), DF: na + nb - 2, PValue: 1}
		default:
			return TTestResult{Stat: 0, DF: na + nb - 2, PValue: 0.5}
		}
	}
	se := math.Sqrt(va/na + vb/nb)
	t := (ma - mb) / se
	df := math.Pow(va/na+vb/nb, 2) /
		(math.Pow(va/na, 2)/(na-1) + math.Pow(vb/nb, 2)/(nb-1))
	// One-sided p-value: P(T_df > t) via the regularized incomplete beta.
	p := studentCDFUpper(t, df)
	return TTestResult{Stat: t, DF: df, PValue: p}
}

func meanVar(x []float64) (mean, variance float64) {
	n := float64(len(x))
	for _, v := range x {
		mean += v
	}
	mean /= n
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= n - 1
	return mean, variance
}

// studentCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, using the standard identity with the regularized incomplete
// beta function I_x(df/2, 1/2) where x = df/(df+t²).
func studentCDFUpper(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	if math.IsInf(t, -1) {
		return 1
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t < 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// by the continued-fraction expansion (Numerical Recipes §6.4).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
