// Package eval provides the evaluation machinery of the paper's Sec. V:
// AUROC, Average Precision and Max-F1 over per-point anomaly scores
// (Tab. IV, Fig. 6), per-dataset method rankings with harmonic-mean
// aggregation (Tab. IV), and Welch's two-sample t-test for the axiom
// experiments (Tab. V).
package eval

import (
	"math"
	"sort"
)

// AUROC returns the Area Under the ROC Curve of scores against binary
// labels (true = outlier). Higher scores should mean more anomalous. Tied
// scores are handled by mid-rank, matching the Mann–Whitney formulation.
// Degenerate label sets (all positive or all negative) return 0.5.
func AUROC(scores []float64, labels []bool) float64 {
	n := len(scores)
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Mid-ranks with ties.
	rank := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			rank[idx[k]] = mid
		}
		i = j
	}
	sumPos := 0.0
	for i, l := range labels {
		if l {
			sumPos += rank[i]
		}
	}
	u := sumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// AveragePrecision returns the AP of scores against labels: the mean of the
// precision values at each true-positive rank, descending by score. Ties
// are broken by index for determinism. All-negative labels return 0.
func AveragePrecision(scores []float64, labels []bool) float64 {
	idx := sortedByScoreDesc(scores)
	tp, sum := 0, 0.0
	for k, i := range idx {
		if labels[i] {
			tp++
			sum += float64(tp) / float64(k+1)
		}
	}
	if tp == 0 {
		return 0
	}
	return sum / float64(tp)
}

// MaxF1 returns the maximum F1 score over all score thresholds.
func MaxF1(scores []float64, labels []bool) float64 {
	idx := sortedByScoreDesc(scores)
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	if pos == 0 {
		return 0
	}
	best, tp := 0.0, 0
	for k, i := range idx {
		if labels[i] {
			tp++
		}
		// Threshold after rank k: k+1 predicted positives.
		prec := float64(tp) / float64(k+1)
		rec := float64(tp) / float64(pos)
		if prec+rec > 0 {
			if f1 := 2 * prec * rec / (prec + rec); f1 > best {
				best = f1
			}
		}
	}
	return best
}

func sortedByScoreDesc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Ranks assigns competition ranks (1 = best) to method metric values,
// higher-is-better, with mid-rank ties. NaN values rank last.
func Ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) float64 {
		if math.IsNaN(values[i]) {
			return math.Inf(-1)
		}
		return values[i]
	}
	sort.Slice(idx, func(a, b int) bool { return key(idx[a]) > key(idx[b]) })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && key(idx[j]) == key(idx[i]) {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	return ranks
}

// HarmonicMean returns the harmonic mean of positive values, ignoring NaNs.
// It is the aggregation Tab. IV uses over per-dataset ranking positions.
func HarmonicMean(values []float64) float64 {
	sum, count := 0.0, 0
	for _, v := range values {
		if math.IsNaN(v) || v <= 0 {
			continue
		}
		sum += 1 / v
		count++
	}
	if count == 0 || sum == 0 {
		return math.NaN()
	}
	return float64(count) / sum
}
