package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUROCPerfectAndWorst(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUROC(scores, labels); got != 1 {
		t.Errorf("perfect AUROC = %v, want 1", got)
	}
	inverted := []bool{false, false, true, true}
	if got := AUROC(scores, inverted); got != 0 {
		t.Errorf("worst AUROC = %v, want 0", got)
	}
}

func TestAUROCTies(t *testing.T) {
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if got := AUROC(scores, labels); got != 0.5 {
		t.Errorf("all-tied AUROC = %v, want 0.5", got)
	}
}

func TestAUROCDegenerateLabels(t *testing.T) {
	scores := []float64{1, 2, 3}
	if got := AUROC(scores, []bool{true, true, true}); got != 0.5 {
		t.Errorf("all-positive AUROC = %v, want 0.5", got)
	}
	if got := AUROC(scores, []bool{false, false, false}); got != 0.5 {
		t.Errorf("all-negative AUROC = %v, want 0.5", got)
	}
}

func TestAUROCKnownValue(t *testing.T) {
	// One inversion among 2 pos × 2 neg = 4 pairs → 3/4.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUROC(scores, labels); got != 0.75 {
		t.Errorf("AUROC = %v, want 0.75", got)
	}
}

func TestAUROCInvariantUnderMonotoneMap(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		for i, r := range raw {
			scores[i] = float64(r % 50)
			labels[i] = r%3 == 0
		}
		mapped := make([]float64, len(scores))
		for i, s := range scores {
			mapped[i] = math.Exp(s/10) + 7 // strictly increasing map
		}
		return math.Abs(AUROC(scores, labels)-AUROC(mapped, labels)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Ranked: pos, neg, pos → AP = (1/1 + 2/3)/2 = 5/6.
	scores := []float64{0.9, 0.5, 0.3}
	labels := []bool{true, false, true}
	if got := AveragePrecision(scores, labels); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("AP = %v, want 5/6", got)
	}
	if got := AveragePrecision(scores, []bool{false, false, false}); got != 0 {
		t.Errorf("all-negative AP = %v, want 0", got)
	}
	if got := AveragePrecision([]float64{1, 0.5}, []bool{true, true}); got != 1 {
		t.Errorf("all-positive-top AP = %v, want 1", got)
	}
}

func TestMaxF1(t *testing.T) {
	// Perfect separation → F1 = 1 at the right threshold.
	scores := []float64{0.9, 0.8, 0.1}
	labels := []bool{true, true, false}
	if got := MaxF1(scores, labels); got != 1 {
		t.Errorf("MaxF1 = %v, want 1", got)
	}
	// pos, neg, pos: thresholds give F1 ∈ {2/3, 1/2, 0.8}; max 0.8.
	scores = []float64{0.9, 0.5, 0.3}
	labels = []bool{true, false, true}
	if got := MaxF1(scores, labels); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("MaxF1 = %v, want 0.8", got)
	}
	if got := MaxF1(scores, []bool{false, false, false}); got != 0 {
		t.Errorf("all-negative MaxF1 = %v, want 0", got)
	}
}

func TestRanks(t *testing.T) {
	vals := []float64{0.9, 0.7, 0.9, math.NaN(), 0.1}
	got := Ranks(vals)
	want := []float64{1.5, 3, 1.5, 5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v (all=%v)", i, got[i], want[i], got)
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("HM(1,1,1) = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2}); got != 2 {
		t.Errorf("HM(2,2) = %v", got)
	}
	// HM(1,2) = 2/(1+0.5) = 4/3.
	if got := HarmonicMean([]float64{1, 2}); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("HM(1,2) = %v, want 4/3", got)
	}
	// NaNs ignored.
	if got := HarmonicMean([]float64{math.NaN(), 2, 2}); got != 2 {
		t.Errorf("HM with NaN = %v, want 2", got)
	}
	if got := HarmonicMean(nil); !math.IsNaN(got) {
		t.Errorf("HM(empty) = %v, want NaN", got)
	}
}

func TestWelchTTestSeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 10 + rng.NormFloat64()
		b[i] = 5 + rng.NormFloat64()
	}
	res := WelchTTest(a, b)
	if res.Stat < 10 {
		t.Errorf("t = %v, want large positive", res.Stat)
	}
	if res.PValue > 1e-10 {
		t.Errorf("p = %v, want ≈ 0", res.PValue)
	}
	// Reversed: mean(b) < mean(a) → p near 1.
	rev := WelchTTest(b, a)
	if rev.PValue < 0.999 {
		t.Errorf("reversed p = %v, want ≈ 1", rev.PValue)
	}
}

func TestWelchTTestNoEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res := WelchTTest(a, b)
	if res.PValue < 0.01 || res.PValue > 0.99 {
		t.Errorf("same-distribution p = %v, want moderate", res.PValue)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	res := WelchTTest([]float64{1}, []float64{2, 3})
	if !math.IsNaN(res.Stat) {
		t.Error("n<2 should give NaN stat")
	}
	// Two constant samples.
	res = WelchTTest([]float64{5, 5, 5}, []float64{2, 2, 2})
	if res.PValue != 0 {
		t.Errorf("constant a>b should give p=0, got %v", res.PValue)
	}
	res = WelchTTest([]float64{2, 2}, []float64{5, 5})
	if res.PValue != 1 {
		t.Errorf("constant a<b should give p=1, got %v", res.PValue)
	}
	res = WelchTTest([]float64{3, 3}, []float64{3, 3})
	if res.PValue != 0.5 {
		t.Errorf("identical constants should give p=0.5, got %v", res.PValue)
	}
}

func TestStudentCDFKnownValues(t *testing.T) {
	// For df → large, t=1.96 → p ≈ 0.025; with df=1000 close to normal.
	p := studentCDFUpper(1.96, 1000)
	if math.Abs(p-0.025) > 0.002 {
		t.Errorf("P(T>1.96, df=1000) = %v, want ≈ 0.025", p)
	}
	// t distribution symmetric: P(T>0) = 0.5.
	if p := studentCDFUpper(0, 10); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(T>0) = %v, want 0.5", p)
	}
	// df=1 (Cauchy): P(T>1) = 0.25.
	if p := studentCDFUpper(1, 1); math.Abs(p-0.25) > 1e-6 {
		t.Errorf("P(T>1, df=1) = %v, want 0.25", p)
	}
	// Symmetry: P(T > -t) = 1 - P(T > t).
	if p1, p2 := studentCDFUpper(-2, 7), studentCDFUpper(2, 7); math.Abs(p1+p2-1) > 1e-9 {
		t.Errorf("symmetry broken: %v + %v != 1", p1, p2)
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("I_0 = 0 and I_1 = 1 required")
	}
	// I_x(1,1) = x (uniform).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(a,b) + I_{1-x}(b,a) = 1.
	if got := regIncBeta(2.5, 4, 0.3) + regIncBeta(4, 2.5, 0.7); math.Abs(got-1) > 1e-9 {
		t.Errorf("reflection identity = %v, want 1", got)
	}
}
