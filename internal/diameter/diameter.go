// Package diameter provides the shared, data-only diameter estimator the
// index layers derive their radii schedules from (paper Alg. 1 L2's l).
//
// The estimate is a function of the DATA ALONE — the elements in id order
// and the metric — never of any index structure: every branch below
// switches on the element count or on computed distances, so the
// insertion-built, bulk-loaded and slimmed-down slim-trees, the coordinate
// trees, and any memtable/segment arrangement of the incremental layer all
// report the same value over the same live set. That invariant is what
// makes the pipeline output identical across build paths (pinned by
// core's bulk_equiv and incremental equivalence tests); an estimator that
// walked an index and aborted on a budget would break it.
package diameter

// ExactThreshold is the element count at or below which Estimate returns
// the EXACT diameter by an all-pairs scan (at most n·(n-1)/2 ≈ 33k metric
// evaluations at the threshold — cheaper than one tree build). The switch
// depends only on n, keeping the value structure-independent.
const ExactThreshold = 256

// MaxSweeps bounds the farthest-point iteration above the threshold,
// capping the estimator at O(MaxSweeps·n) metric evaluations on ANY data.
// The former exact branch-and-bound had no such cap: near-uniform pairwise
// distances defeat covering-radius pruning entirely and degenerated it
// toward n²/2 evaluations.
const MaxSweeps = 8

// Estimate estimates the diameter of elems under the metric d.
//
// Vector elements get the bounding-box corner distance d(lo, hi): an upper
// bound on every pairwise distance for any coordinate-monotone metric (all
// Lp norms), computed in O(n·dim), and — under the Euclidean metric — the
// exact value the kd-tree and R-tree backends report from their root
// boxes, so all access methods share one radii schedule on vector data.
// The shortcut validates itself against a double farthest-point sweep
// (2n metric evaluations, within 2× of the true diameter by the triangle
// inequality): a corner distance below the sweep's lower bound proves the
// metric is NOT coordinate-monotone, and the estimate falls through to the
// generic paths below.
//
// Every other element type gets the exact diameter while n is small
// (ExactThreshold) and an iterated farthest-point estimate beyond it: the
// sweep keeps jumping to the farthest point found until a full sweep stops
// improving or MaxSweeps sweeps have run. The result is a lower bound
// within 2× of the true diameter — one slot of the halving radii schedule,
// slack the pipeline already absorbs: joins never rely on the last radius
// truly covering every pair (join.SelfMultiRadiusCounts pins that row to n
// explicitly).
func Estimate[T any](elems []T, d func(a, b T) float64) float64 {
	n := len(elems)
	if n < 2 {
		return 0
	}
	farthest := func(from int) (int, float64) {
		best, bestD := from, -1.0
		for i := range elems {
			if dist := d(elems[from], elems[i]); dist > bestD {
				best, bestD = i, dist
			}
		}
		return best, bestD
	}
	x, _ := farthest(0)
	y, best := farthest(x)
	if pts, ok := any(elems).([][]float64); ok {
		lo := append([]float64(nil), pts[0]...)
		hi := append([]float64(nil), pts[0]...)
		for _, p := range pts {
			for j, v := range p {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
		if corner := d(any(lo).(T), any(hi).(T)); corner >= best {
			return corner
		}
		// corner < the sweep's lower bound: the metric is not
		// coordinate-monotone, so the box says nothing — fall through.
	}
	if n <= ExactThreshold {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if dist := d(elems[i], elems[j]); dist > best {
					best = dist
				}
			}
		}
		return best
	}
	// Iterated farthest-point refinement: best currently holds d(x, y);
	// keep sweeping from the newest endpoint while the sweeps improve.
	// Two sweeps are already spent above.
	at := y
	for s := 2; s < MaxSweeps; s++ {
		next, dist := farthest(at)
		if dist <= best {
			break
		}
		best, at = dist, next
	}
	return best
}
