package diameter

import (
	"math"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// bruteDiameter is the reference: the true maximum pairwise distance.
func bruteDiameter[T any](elems []T, d func(a, b T) float64) float64 {
	best := 0.0
	for i := range elems {
		for j := i + 1; j < len(elems); j++ {
			if dist := d(elems[i], elems[j]); dist > best {
				best = dist
			}
		}
	}
	return best
}

// TestExactBelowThreshold pins that nondimensional sets at or below
// ExactThreshold get the exact diameter.
func TestExactBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(ExactThreshold-1)
		words := make([]string, n)
		for i := range words {
			b := make([]byte, 3+rng.Intn(8))
			for j := range b {
				b[j] = byte('a' + rng.Intn(6))
			}
			words[i] = string(b)
		}
		d := func(a, b string) float64 { return metric.Levenshtein(a, b) }
		if got, want := Estimate(words, d), bruteDiameter(words, d); got != want {
			t.Fatalf("trial %d (n=%d): Estimate=%v, exact=%v", trial, n, got, want)
		}
	}
}

// TestVectorCornerMatchesBoxDiagonal pins the vector shortcut: under the
// Euclidean metric the estimate is the bounding-box corner distance — the
// value the kd/R-tree backends report from their root boxes.
func TestVectorCornerMatchesBoxDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 50, ExactThreshold + 100} {
		pts := make([][]float64, n)
		lo := []float64{math.Inf(1), math.Inf(1)}
		hi := []float64{math.Inf(-1), math.Inf(-1)}
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 3}
			for j, v := range pts[i] {
				lo[j] = math.Min(lo[j], v)
				hi[j] = math.Max(hi[j], v)
			}
		}
		want := metric.Euclidean(lo, hi)
		if got := Estimate(pts, metric.Euclidean); got != want {
			t.Fatalf("n=%d: Estimate=%v, box corner %v", n, got, want)
		}
	}
}

// TestNonMonotoneVectorMetricFallsThrough feeds a vector metric whose
// corner distance undershoots the sweep bound, so the estimate must come
// from the generic paths, not the box.
func TestNonMonotoneVectorMetricFallsThrough(t *testing.T) {
	// d = Euclidean on the unit circle's angle: points on a circle, metric
	// ignores radius. Box corner (lo, hi) is far from any data point, and
	// this metric is minimized there.
	weird := func(a, b []float64) float64 {
		// Distance between angle components only; the box corner has an
		// angle no data point has.
		return math.Abs(math.Atan2(a[1], a[0]) - math.Atan2(b[1], b[0]))
	}
	pts := [][]float64{{1, 0}, {0, 1}, {-1, 0.1}, {0.5, -0.5}}
	want := bruteDiameter(pts, weird)
	if got := Estimate(pts, weird); got != want {
		t.Fatalf("Estimate=%v, exact=%v", got, want)
	}
}

// TestUniformDistanceLinearCost is the carried-bug regression: data whose
// pairwise distances are all equal defeated the old branch-and-bound
// (toward n²/2 evaluations); the estimator must now stay O(MaxSweeps·n).
func TestUniformDistanceLinearCost(t *testing.T) {
	n := 2000
	elems := make([]int, n)
	for i := range elems {
		elems[i] = i
	}
	calls := 0
	d := func(a, b int) float64 {
		calls++
		if a == b {
			return 0
		}
		return 1
	}
	if got := Estimate(elems, d); got != 1 {
		t.Fatalf("uniform-distance diameter = %v, want 1", got)
	}
	if budget := (MaxSweeps + 2) * n; calls > budget {
		t.Fatalf("uniform-distance estimate took %d metric evaluations, budget %d (O(k·n))", calls, budget)
	}
}

// TestIteratedSweepWithinHalf pins the estimator's guarantee above the
// threshold: at least half the true diameter, never above it.
func TestIteratedSweepWithinHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := ExactThreshold * 3
	words := make([]string, n)
	for i := range words {
		b := make([]byte, 2+rng.Intn(12))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		words[i] = string(b)
	}
	d := func(a, b string) float64 { return metric.Levenshtein(a, b) }
	exact := bruteDiameter(words, d)
	got := Estimate(words, d)
	if got > exact || got < exact/2 {
		t.Fatalf("Estimate=%v outside [%v, %v]", got, exact/2, exact)
	}
}
