package kdtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the cross-set dual-tree bridge join for the
// kd-tree (index.CrossMultiCounter): for every query of a second point
// set — MCCATCH's outliers probing the inlier tree — the index of the
// first radius of a nested schedule with at least one indexed neighbor,
// from one traversal of the inlier tree against a throwaway kd-tree
// bulk-built over the queries. Per-query probing re-derives the same
// box-level geometry once per query; the dual traversal classifies PAIRS
// of subtrees with the min/max squared box distances the self-join uses,
// so whole blocks of query×point pairs settle at once. Unlike the
// self-join it accumulates per-query MINIMA instead of counts, which
// makes early termination cheap: a bound credited to a query (or a whole
// query subtree) narrows every later pair's radius window from above.
// All comparisons are on squared distances — no math.Sqrt anywhere.
//
// Both trees are arenas, so the accumulator rows are flat: a query slot
// of the throwaway tree is both its position (MinAcc.Best) and its node
// index (MinAcc.NodeBest), and a wholesale bound pushes down over the
// slot's contiguous preorder range. The accumulator, scheduling and
// merge machinery is internal/dualjoin's.
//
// Unlike the self-join and the R-tree bridge, this join keeps per-slot
// descent all the way down (kernel.SqDist per point, no flat range
// scans): minima accumulation makes every slot's box test a chance to
// clamp the window from above, and flat block scans that give that up
// for batched arithmetic measured ~10-15% SLOWER here — the opposite of
// the count joins, whose windows batching cannot narrow.

// crossCtx is one traversal unit's context: the inlier (index) tree, the
// throwaway query tree, the squared radius schedule and the unit's
// min-accumulator. Queries live in the outlier tree's slot space;
// indexed points are only ever counted as "some neighbor", never
// identified.
type crossCtx struct {
	in, out *Tree
	radii2  []float64
	acc     *dualjoin.MinAcc
}

func (c *crossCtx) creditPos(p int32, b int) {
	if int32(b) < c.acc.Best[p] {
		c.acc.Best[p] = int32(b)
	}
}

func (c *crossCtx) creditNode(n int32, b int) {
	if int32(b) < c.acc.NodeBest[n] {
		c.acc.NodeBest[n] = int32(b)
	}
}

// BridgeFirsts returns, for each query point, the index of the first
// radius of the ascending schedule radii with at least one indexed point
// within that radius (inclusive), or len(radii) when even the largest
// radius finds none — computed by a dual-tree traversal of the index
// against a throwaway tree over the queries. Results are exact (bounds
// only ever defer ambiguous pairs, never approximate them) and identical
// for every worker count.
func (t *Tree) BridgeFirsts(queries [][]float64, radii []float64, workers int) []int {
	a := len(radii)
	var out *Tree
	var subs, pts []int32
	if t.size > 0 && len(queries) > 0 && a > 0 {
		out = NewWithWorkers(queries, workers)
		subs, pts = out.seedSplit()
	}
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}
	nodes := 0
	if out != nil {
		nodes = out.size
	}
	return dualjoin.FirstMatrix(a, len(queries), nodes, workers, len(subs)+len(pts),
		func(u int, acc *dualjoin.MinAcc) {
			c := crossCtx{in: t, out: out, radii2: radii2, acc: acc}
			if u < len(subs) {
				c.crossVisit(subs[u], 0, 0, a)
			} else {
				c.probeFirst(pts[u-len(subs)], 0, 0, a)
			}
		},
		func(node int32) (int32, int32) { return node, node + out.count[node] },
		func(pos int32) int { return int(out.ids[pos]) })
}

// crossVisit classifies the pair of query subtree O against index subtree
// I for the radius window [lo, hi): radii below lo are already known to
// separate the two boxes, and every query under O is already known to
// have an indexed neighbor within radii[hi] (an ancestor pair's credit or
// the schedule's end), so only smaller radii matter. Crediting is
// one-directional — only the query side accumulates — which is what lets
// a previously recorded bound on O clamp the window from above.
func (c *crossCtx) crossVisit(O, I int32, lo, hi int) {
	if b := int(c.acc.NodeBest[O]); b < hi {
		hi = b // every query under O already meets a point by radii[b]
	}
	if lo >= hi {
		return
	}
	olo, ohi := c.out.box(O)
	ilo, ihi := c.in.box(I)
	smin, smax := dualjoin.SqMinMaxBoxBox(olo, ohi, ilo, ihi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditNode(O, nh) // every pair lies within radii[nh]
	}
	if lo >= nh {
		return
	}
	// Ambiguous radii [lo, nh): decompose the side with the larger box
	// (ties descend the query side, keeping the descent deterministic). A
	// kd slot carries its own point, so descending O peels its point off
	// as a single-query probe, and descending I peels its point off as a
	// single-index-point visit.
	if c.in.boxDiag2(I) > c.out.boxDiag2(O) {
		c.indexPointVisit(c.in.point(I), O, lo, nh)
		if l := c.in.left[I]; l >= 0 {
			c.crossVisit(O, l, lo, nh)
		}
		if r := c.in.right[I]; r >= 0 {
			c.crossVisit(O, r, lo, nh)
		}
		return
	}
	c.probeFirst(O, I, lo, nh)
	if l := c.out.left[O]; l >= 0 {
		c.crossVisit(l, I, lo, nh)
	}
	if r := c.out.right[O]; r >= 0 {
		c.crossVisit(r, I, lo, nh)
	}
}

// probeFirst resolves the single query point at slot p against index
// subtree I for the window [lo, hi): the first-nonzero-count
// specialization of the self-join's pointVisit. Every bound found — the
// subtree settling wholesale, or I's own point landing in a bucket —
// immediately narrows the window of the remaining descent.
func (c *crossCtx) probeFirst(p, I int32, lo, hi int) {
	if b := int(c.acc.Best[p]); b < hi {
		hi = b // a neighbor within radii[b] is already on record
	}
	if lo >= hi {
		return
	}
	q := c.out.point(p)
	ilo, ihi := c.in.box(I)
	smin, smax := sqMinMaxDistToBox(q, ilo, ihi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditPos(p, nh)
	}
	if lo >= nh {
		return
	}
	if d2 := kernel.SqDist(q, c.in.point(I)); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditPos(p, b)
		nh = b // only radii below the fresh bound are still open
		if lo >= nh {
			return
		}
	}
	if l := c.in.left[I]; l >= 0 {
		c.probeFirst(p, l, lo, nh)
	}
	if r := c.in.right[I]; r >= 0 {
		c.probeFirst(p, r, lo, nh)
	}
}

// indexPointVisit resolves a single INDEX point against query subtree O
// for the window [lo, hi): the one-directional mirror of probeFirst,
// crediting O's queries with q as their neighbor.
func (c *crossCtx) indexPointVisit(q []float64, O int32, lo, hi int) {
	if b := int(c.acc.NodeBest[O]); b < hi {
		hi = b
	}
	if lo >= hi {
		return
	}
	olo, ohi := c.out.box(O)
	smin, smax := sqMinMaxDistToBox(q, olo, ohi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditNode(O, nh) // q is within radii[nh] of every query under O
	}
	if lo >= nh {
		return
	}
	if d2 := kernel.SqDist(q, c.out.point(O)); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditPos(O, b)
	}
	if l := c.out.left[O]; l >= 0 {
		c.indexPointVisit(q, l, lo, nh)
	}
	if r := c.out.right[O]; r >= 0 {
		c.indexPointVisit(q, r, lo, nh)
	}
}
