package kdtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/metric"
)

// This file implements the cross-set dual-tree bridge join for the
// kd-tree (index.CrossMultiCounter): for every query of a second point
// set — MCCATCH's outliers probing the inlier tree — the index of the
// first radius of a nested schedule with at least one indexed neighbor,
// from one traversal of the inlier tree against a throwaway kd-tree
// bulk-built over the queries. Per-query probing re-derives the same
// box-level geometry once per query; the dual traversal classifies PAIRS
// of subtrees with the min/max squared box distances the self-join uses,
// so whole blocks of query×point pairs settle at once. Unlike the
// self-join it accumulates per-query MINIMA instead of counts, which
// makes early termination cheap: a bound credited to a query (or a whole
// query subtree) narrows every later pair's radius window from above.
// All comparisons are on squared distances — no math.Sqrt anywhere. The
// accumulator, scheduling and merge machinery is internal/dualjoin's.

// crossCtx is one traversal unit's context: the squared radius schedule
// and the unit's min-accumulator. Queries live in the outlier tree's id
// space; indexed points are only ever counted as "some neighbor", never
// identified.
type crossCtx struct {
	radii2 []float64
	acc    *dualjoin.MinAcc[*node]
}

// creditPoint and creditNode write the accumulator rows raw — crediting
// sits in the join's innermost loop, and these concrete-receiver helpers
// inline where a generic method would not (see dualjoin.MinAcc).
func (c *crossCtx) creditPoint(id, b int) {
	if b < c.acc.Best[id] {
		c.acc.Best[id] = b
	}
}

func (c *crossCtx) creditNode(n *node, b int) {
	if cur, ok := c.acc.Nodes[n]; !ok || b < cur {
		c.acc.Nodes[n] = b
	}
}

// BridgeFirsts returns, for each query point, the index of the first
// radius of the ascending schedule radii with at least one indexed point
// within that radius (inclusive), or len(radii) when even the largest
// radius finds none — computed by a dual-tree traversal of the index
// against a throwaway tree over the queries. Results are exact (bounds
// only ever defer ambiguous pairs, never approximate them) and identical
// for every worker count.
func (t *Tree) BridgeFirsts(queries [][]float64, radii []float64, workers int) []int {
	a := len(radii)
	var subs, pts []*node
	if t.root != nil && len(queries) > 0 && a > 0 {
		out := NewWithWorkers(queries, workers)
		subs, pts = seedSplit(out.root)
	}
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}
	return dualjoin.FirstMatrix(a, len(queries), workers, len(subs)+len(pts),
		func(u int, acc *dualjoin.MinAcc[*node]) {
			c := crossCtx{radii2: radii2, acc: acc}
			if u < len(subs) {
				c.crossVisit(subs[u], t.root, 0, a)
			} else {
				p := pts[u-len(subs)]
				c.probeFirst(p.point, p.id, t.root, 0, a)
			}
		},
		pushSubtreeMin)
}

// pushSubtreeMin lowers the merged first-index of every query under n to
// bound, pushing a wholesale subtree credit down to its points.
func pushSubtreeMin(n *node, bound int, merged []int) {
	if n == nil {
		return
	}
	if bound < merged[n.id] {
		merged[n.id] = bound
	}
	pushSubtreeMin(n.left, bound, merged)
	pushSubtreeMin(n.right, bound, merged)
}

// crossVisit classifies the pair of query subtree O against index subtree
// I for the radius window [lo, hi): radii below lo are already known to
// separate the two boxes, and every query under O is already known to
// have an indexed neighbor within radii[hi] (an ancestor pair's credit or
// the schedule's end), so only smaller radii matter. Crediting is
// one-directional — only the query side accumulates — which is what lets
// a previously recorded bound on O clamp the window from above.
func (c *crossCtx) crossVisit(O, I *node, lo, hi int) {
	if O == nil || I == nil {
		return
	}
	if b, ok := c.acc.Nodes[O]; ok && b < hi {
		hi = b // every query under O already meets a point by radii[b]
	}
	if lo >= hi {
		return
	}
	smin, smax := dualjoin.SqMinMaxBoxBox(O.lo, O.hi, I.lo, I.hi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditNode(O, nh) // every pair lies within radii[nh]
	}
	if lo >= nh {
		return
	}
	// Ambiguous radii [lo, nh): decompose the side with the larger box
	// (ties descend the query side, keeping the descent deterministic). A
	// kd node carries its own point, so descending O peels its point off
	// as a single-query probe, and descending I peels its point off as a
	// single-index-point visit.
	if boxDiag2(I) > boxDiag2(O) {
		c.indexPointVisit(I.point, O, lo, nh)
		c.crossVisit(O, I.left, lo, nh)
		c.crossVisit(O, I.right, lo, nh)
		return
	}
	c.probeFirst(O.point, O.id, I, lo, nh)
	c.crossVisit(O.left, I, lo, nh)
	c.crossVisit(O.right, I, lo, nh)
}

// probeFirst resolves a single query point against index subtree I for
// the window [lo, hi): the first-nonzero-count specialization of the
// self-join's pointVisit. Every bound found — the subtree settling
// wholesale, or I's own point landing in a bucket — immediately narrows
// the window of the remaining descent.
func (c *crossCtx) probeFirst(p []float64, id int, I *node, lo, hi int) {
	if I == nil {
		return
	}
	if b := c.acc.Best[id]; b < hi {
		hi = b // a neighbor within radii[b] is already on record
	}
	if lo >= hi {
		return
	}
	smin, smax := sqMinMaxDistToBox(p, I.lo, I.hi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditPoint(id, nh)
	}
	if lo >= nh {
		return
	}
	if d2 := metric.SquaredEuclidean(p, I.point); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditPoint(id, b)
		nh = b // only radii below the fresh bound are still open
		if lo >= nh {
			return
		}
	}
	c.probeFirst(p, id, I.left, lo, nh)
	c.probeFirst(p, id, I.right, lo, nh)
}

// indexPointVisit resolves a single INDEX point against query subtree O
// for the window [lo, hi): the one-directional mirror of probeFirst,
// crediting O's queries with q as their neighbor.
func (c *crossCtx) indexPointVisit(q []float64, O *node, lo, hi int) {
	if O == nil {
		return
	}
	if b, ok := c.acc.Nodes[O]; ok && b < hi {
		hi = b
	}
	if lo >= hi {
		return
	}
	smin, smax := sqMinMaxDistToBox(q, O.lo, O.hi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditNode(O, nh) // q is within radii[nh] of every query under O
	}
	if lo >= nh {
		return
	}
	if d2 := metric.SquaredEuclidean(q, O.point); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditPoint(O.id, b)
	}
	c.indexPointVisit(q, O.left, lo, nh)
	c.indexPointVisit(q, O.right, lo, nh)
}
