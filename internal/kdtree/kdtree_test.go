package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Size() != 0 || tr.RangeCount([]float64{0}, 5) != 0 || tr.DiameterEstimate() != 0 {
		t.Error("empty tree should be inert")
	}
	ids, _ := tr.KNN([]float64{0}, 2)
	if len(ids) != 0 {
		t.Error("empty KNN should return nothing")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(300)
		dim := 1 + rng.Intn(5)
		pts := randPoints(rng, n, dim)
		tr := New(pts)
		for q := 0; q < 10; q++ {
			query := pts[rng.Intn(n)]
			r := rng.Float64() * 50
			got := tr.RangeQuery(query, r)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if metric.Euclidean(query, p) <= r {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("RangeQuery len=%d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatal("RangeQuery ids mismatch")
				}
			}
			if c := tr.RangeCount(query, r); c != len(want) {
				t.Fatalf("RangeCount=%d, want %d", c, len(want))
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(200)
		pts := randPoints(rng, n, 3)
		tr := New(pts)
		query := randPoints(rng, 1, 3)[0]
		k := 1 + rng.Intn(8)
		_, dists := tr.KNN(query, k)
		all := make([]float64, n)
		for i, p := range pts {
			all[i] = metric.Euclidean(query, p)
		}
		sort.Float64s(all)
		for i := 0; i < k && i < n; i++ {
			if math.Abs(dists[i]-all[i]) > 1e-9 {
				t.Fatalf("trial %d: kNN dist[%d]=%v, want %v", trial, i, dists[i], all[i])
			}
		}
	}
}

func TestDiameterEstimateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 200, 2)
	tr := New(pts)
	true_ := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := metric.Euclidean(pts[i], pts[j]); d > true_ {
				true_ = d
			}
		}
	}
	est := tr.DiameterEstimate()
	if est < true_ || est > true_*math.Sqrt2+1e-9 {
		t.Errorf("bbox diagonal %v should be in [true diameter %v, √2×]", est, true_)
	}
}

func TestDuplicates(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {9, 9}}
	tr := New(pts)
	if got := tr.RangeCount([]float64{1, 1}, 0); got != 3 {
		t.Errorf("duplicates RangeCount = %d, want 3", got)
	}
}

// sameTree asserts the two kd-tree arenas are bit-identical, slice by
// slice — the parallel build's determinism contract.
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.size != b.size || a.dim != b.dim {
		t.Fatalf("shape mismatch: size %d/%d dim %d/%d", a.size, b.size, a.dim, b.dim)
	}
	intSlices := map[string][2][]int32{
		"ids":    {a.ids, b.ids},
		"axis":   {a.axis, b.axis},
		"count":  {a.count, b.count},
		"left":   {a.left, b.left},
		"right":  {a.right, b.right},
		"parent": {a.parent, b.parent},
	}
	for name, s := range intSlices {
		for i := range s[0] {
			if s[0][i] != s[1][i] {
				t.Fatalf("%s[%d] = %d vs %d", name, i, s[0][i], s[1][i])
			}
		}
	}
	floatSlices := map[string][2][]float64{
		"pts": {a.pts, b.pts},
		"lo":  {a.lo, b.lo},
		"hi":  {a.hi, b.hi},
	}
	for name, s := range floatSlices {
		for i := range s[0] {
			if s[0][i] != s[1][i] {
				t.Fatalf("%s[%d] = %v vs %v", name, i, s[0][i], s[1][i])
			}
		}
	}
}

// TestParallelBuildIdenticalToSerial builds well above the fan-out
// threshold (with duplicate coordinates to stress the tiebreaks) and
// demands bit-identical trees for every worker count.
func TestParallelBuildIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 3 * parallelBuildMin
	pts := randPoints(rng, n, 3)
	for i := 0; i < n/10; i++ { // duplicated coordinates stress tiebreaks
		pts[rng.Intn(n)] = append([]float64(nil), pts[rng.Intn(n)]...)
	}
	serial := NewWithWorkers(pts, 1)
	for _, w := range []int{0, 2, 8} {
		par := NewWithWorkers(pts, w)
		sameTree(t, serial, par)
		if serial.DiameterEstimate() != par.DiameterEstimate() {
			t.Errorf("workers=%d: diameter differs", w)
		}
	}
}
