package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Size() != 0 || tr.RangeCount([]float64{0}, 5) != 0 || tr.DiameterEstimate() != 0 {
		t.Error("empty tree should be inert")
	}
	ids, _ := tr.KNN([]float64{0}, 2)
	if len(ids) != 0 {
		t.Error("empty KNN should return nothing")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(300)
		dim := 1 + rng.Intn(5)
		pts := randPoints(rng, n, dim)
		tr := New(pts)
		for q := 0; q < 10; q++ {
			query := pts[rng.Intn(n)]
			r := rng.Float64() * 50
			got := tr.RangeQuery(query, r)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if metric.Euclidean(query, p) <= r {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("RangeQuery len=%d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatal("RangeQuery ids mismatch")
				}
			}
			if c := tr.RangeCount(query, r); c != len(want) {
				t.Fatalf("RangeCount=%d, want %d", c, len(want))
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(200)
		pts := randPoints(rng, n, 3)
		tr := New(pts)
		query := randPoints(rng, 1, 3)[0]
		k := 1 + rng.Intn(8)
		_, dists := tr.KNN(query, k)
		all := make([]float64, n)
		for i, p := range pts {
			all[i] = metric.Euclidean(query, p)
		}
		sort.Float64s(all)
		for i := 0; i < k && i < n; i++ {
			if math.Abs(dists[i]-all[i]) > 1e-9 {
				t.Fatalf("trial %d: kNN dist[%d]=%v, want %v", trial, i, dists[i], all[i])
			}
		}
	}
}

func TestDiameterEstimateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 200, 2)
	tr := New(pts)
	true_ := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := metric.Euclidean(pts[i], pts[j]); d > true_ {
				true_ = d
			}
		}
	}
	est := tr.DiameterEstimate()
	if est < true_ || est > true_*math.Sqrt2+1e-9 {
		t.Errorf("bbox diagonal %v should be in [true diameter %v, √2×]", est, true_)
	}
}

func TestDuplicates(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {9, 9}}
	tr := New(pts)
	if got := tr.RangeCount([]float64{1, 1}, 0); got != 3 {
		t.Errorf("duplicates RangeCount = %d, want 3", got)
	}
}

// sameTree asserts the two kd-trees are structurally identical, node by
// node — the parallel build's determinism contract.
func sameTree(t *testing.T, a, b *node, path string) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one side nil", path)
	}
	if a == nil {
		return
	}
	if a.id != b.id || a.axis != b.axis || a.size != b.size {
		t.Fatalf("%s: node mismatch: id %d/%d axis %d/%d size %d/%d",
			path, a.id, b.id, a.axis, b.axis, a.size, b.size)
	}
	for j := range a.lo {
		if a.lo[j] != b.lo[j] || a.hi[j] != b.hi[j] {
			t.Fatalf("%s: box mismatch at dim %d", path, j)
		}
	}
	sameTree(t, a.left, b.left, path+"L")
	sameTree(t, a.right, b.right, path+"R")
}

// TestParallelBuildIdenticalToSerial builds well above the fan-out
// threshold (with duplicate coordinates to stress the tiebreaks) and
// demands bit-identical trees for every worker count.
func TestParallelBuildIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 3 * parallelBuildMin
	pts := randPoints(rng, n, 3)
	for i := 0; i < n/10; i++ { // duplicated coordinates stress tiebreaks
		pts[rng.Intn(n)] = append([]float64(nil), pts[rng.Intn(n)]...)
	}
	serial := NewWithWorkers(pts, 1)
	for _, w := range []int{0, 2, 8} {
		par := NewWithWorkers(pts, w)
		sameTree(t, serial.root, par.root, "·")
		if serial.DiameterEstimate() != par.DiameterEstimate() {
			t.Errorf("workers=%d: diameter differs", w)
		}
	}
}
