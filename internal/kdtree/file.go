package kdtree

// Persistence: a frozen kd-tree arena is one header away from a file.
// Save dumps the arena's columns behind internal/arena's versioned
// header; Open rebuilds the tree as slice views over the mapping (hot
// upper preorder slots stay resident, cold leaf ranges page on demand)
// or over one heap block on platforms without mmap. A file-backed tree
// answers every query identically to the tree that saved it: the columns
// are bit-identical and the traversals touch nothing else.
//
// Open validates the preorder invariants the traversals rely on — the
// same ones arena_test pins for fresh builds — so a corrupt file (or a
// crafted one) returns an error instead of an out-of-bounds panic or a
// non-terminating recursion.

import (
	"fmt"
	"io"

	"mccatch/internal/arena"
	"mccatch/internal/kernel"
)

// Save writes the tree in the arena index-file format.
func (t *Tree) Save(w io.Writer) error {
	_, err := t.writer().WriteTo(w)
	return err
}

// WriteFile writes the tree to path (atomically: temp file + rename).
func (t *Tree) WriteFile(path string) error {
	return t.writer().WriteFile(path)
}

func (t *Tree) writer() *arena.Writer {
	var scalars [4]int64
	if t.sum != nil {
		scalars[0] = 1
	}
	w := arena.NewWriter(arena.KindKD, t.size, t.dim, t.DiameterEstimate(), scalars)
	w.F64("pts", t.pts)
	w.I32("ids", t.ids)
	w.I32("axis", t.axis)
	w.I32("count", t.count)
	w.I32("left", t.left)
	w.I32("right", t.right)
	w.I32("parent", t.parent)
	w.F64("lo", t.lo)
	w.F64("hi", t.hi)
	if t.sum != nil {
		base, scale, qlo, qhi := t.sum.Columns()
		w.F64("sum.base", base)
		w.F64("sum.scale", scale)
		w.U8("sum.qlo", qlo)
		w.U8("sum.qhi", qhi)
	}
	return w
}

// Open opens a kd-tree index file: mmap-backed where available, heap-read
// otherwise (or under arena.WithHeap). Close the tree to release the
// mapping; every query on the tree after Close is invalid.
func Open(path string, opts ...arena.Option) (*Tree, error) {
	f, err := arena.Open(path, opts...)
	if err != nil {
		return nil, err
	}
	t, err := FromFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// FromFile reconstructs a kd-tree over an already-opened arena file. On
// success the tree owns f and Close releases it.
func FromFile(f *arena.File) (*Tree, error) {
	if err := f.ExpectKind(arena.KindKD); err != nil {
		return nil, err
	}
	t := &Tree{size: f.N, dim: f.Dim, src: f}
	if f.N == 0 {
		return t, nil
	}
	var err error
	get64 := func(name string, want int) []float64 {
		vals, e := f.F64(name)
		if e != nil {
			err = e
		} else if len(vals) != want && err == nil {
			err = fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, name, len(vals), want)
		}
		return vals
	}
	get32 := func(name string, want int) []int32 {
		vals, e := f.I32(name)
		if e != nil {
			err = e
		} else if len(vals) != want && err == nil {
			err = fmt.Errorf("%w: column %q has %d elements, want %d", arena.ErrBadIndexFile, name, len(vals), want)
		}
		return vals
	}
	n := f.N
	t.pts = get64("pts", n*t.dim)
	t.ids = get32("ids", n)
	t.axis = get32("axis", n)
	t.count = get32("count", n)
	t.left = get32("left", n)
	t.right = get32("right", n)
	t.parent = get32("parent", n)
	t.lo = get64("lo", n*t.dim)
	t.hi = get64("hi", n*t.dim)
	if err != nil {
		return nil, err
	}
	if f.Scalars[0] != 0 {
		base, e1 := f.F64("sum.base")
		scale, e2 := f.F64("sum.scale")
		qlo, e3 := f.U8("sum.qlo")
		qhi, e4 := f.U8("sum.qhi")
		for _, e := range []error{e1, e2, e3, e4} {
			if e != nil {
				return nil, e
			}
		}
		if t.sum = kernel.NewSummaryFromColumns(t.dim, n, base, scale, qlo, qhi); t.sum == nil {
			return nil, fmt.Errorf("%w: malformed block-summary columns", arena.ErrBadIndexFile)
		}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Dim returns the dimensionality of the indexed points (0 when empty).
func (t *Tree) Dim() int { return t.dim }

// Items returns the indexed points in id order, reconstructed from the
// arena (each point is a read-only view into the coordinate block, so a
// file-backed tree materializes its dataset without copying it).
func (t *Tree) Items() [][]float64 {
	items := make([][]float64, t.size)
	for p := 0; p < t.size; p++ {
		items[t.ids[p]] = t.pts[p*t.dim : (p+1)*t.dim : (p+1)*t.dim]
	}
	return items
}

// Close releases the backing file mapping of a tree produced by
// Open/FromFile (no-op for trees built in memory).
func (t *Tree) Close() error {
	if t.src == nil {
		return nil
	}
	f := t.src
	t.src = nil
	return f.Close()
}

// validate checks the preorder arena invariants every traversal relies
// on for termination and bounds safety: slot p's subtree is exactly the
// contiguous range [p, p+count[p]), the left child (when present) is
// p+1 with subtree size count[p]/2, the right child is p+1+count[p]/2
// with the remainder, parents invert children, ids is a permutation,
// and every split axis indexes a real dimension. O(n).
func (t *Tree) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: kd arena: %s", arena.ErrBadIndexFile, fmt.Sprintf(format, args...))
	}
	n := int32(t.size)
	if t.dim <= 0 {
		return bad("dimension %d", t.dim)
	}
	if t.count[0] != n {
		return bad("root count %d over %d slots", t.count[0], n)
	}
	if t.parent[0] != noChild {
		return bad("root has parent %d", t.parent[0])
	}
	seen := make([]bool, n)
	for p := int32(0); p < n; p++ {
		c := t.count[p]
		if c < 1 || p+c > n {
			return bad("slot %d: count %d out of range", p, c)
		}
		if a := t.axis[p]; a < 0 || int(a) >= t.dim {
			return bad("slot %d: axis %d of %d dims", p, a, t.dim)
		}
		id := t.ids[p]
		if id < 0 || id >= n || seen[id] {
			return bad("slot %d: id %d missing or duplicated", p, id)
		}
		seen[id] = true
		mid := c / 2
		rsize := c - 1 - mid
		wantLeft, wantRight := int32(noChild), int32(noChild)
		if mid > 0 {
			wantLeft = p + 1
		}
		if rsize > 0 {
			wantRight = p + 1 + mid
		}
		if t.left[p] != wantLeft || t.right[p] != wantRight {
			return bad("slot %d: children (%d, %d), want (%d, %d)", p, t.left[p], t.right[p], wantLeft, wantRight)
		}
		if wantLeft != noChild {
			if t.count[wantLeft] != mid {
				return bad("slot %d: left subtree count %d, want %d", p, t.count[wantLeft], mid)
			}
			if t.parent[wantLeft] != p {
				return bad("slot %d: left child parent %d", p, t.parent[wantLeft])
			}
		}
		if wantRight != noChild {
			if t.count[wantRight] != rsize {
				return bad("slot %d: right subtree count %d, want %d", p, t.count[wantRight], rsize)
			}
			if t.parent[wantRight] != p {
				return bad("slot %d: right child parent %d", p, t.parent[wantRight])
			}
		}
	}
	return nil
}
