// Package kdtree implements a main-memory kd-tree for vector data. The
// paper's footnote 4 recommends kd-trees for main-memory-based vector
// datasets (and metric trees for everything else); this package exists so
// the benchmark harness can ablate the index choice. The query interface
// mirrors internal/slimtree.
//
// The tree is stored as a flat arena rather than linked nodes: one slot
// per point, laid out in PREORDER, so the slots of a subtree are the
// contiguous range [p, p+count[p]). Coordinates live in ONE contiguous
// []float64 block (pts), the per-slot bounding boxes in two more (lo,
// hi), and the links (left/right/parent) are int32 indices — traversals
// do index arithmetic over a handful of flat slices instead of chasing
// heap-scattered node pointers, the boxes stream linearly through the
// cache, and building n points costs a constant number of allocations
// instead of 3n. The child positions are implied by the preorder layout
// (left = p+1, right = p+1+count[p]/2); the explicit link slices exist
// because loading an int32 is cheaper than recomputing and bounds the
// invariant tests.
package kdtree

import (
	"math"
	"sort"

	"mccatch/internal/arena"
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
	"mccatch/internal/metric"
	"mccatch/internal/parallel"
)

// noChild marks an absent left/right/parent link.
const noChild = -1

// scanCutoff is the subtree size at and below which the query traversals
// stop recursing per slot and hand the subtree's contiguous preorder
// range to internal/kernel's block kernels: below it the per-node box
// tests prune too few points to beat streaming the coordinates. The
// quantized block summaries keep doing the box tests' job inside the
// scan, 8 points at a time.
const scanCutoff = 32

// pairScanCutoff is the subtree-PAIR analogue for the dual joins: when
// both sides of an ambiguous subtree pair are this small, the visit
// resolves the up-to pairScanCutoff² point pairs by block kernels
// instead of decomposing further. Smaller than scanCutoff because the
// work is quadratic in the cutoff.
const pairScanCutoff = 16

// sqMinMaxDistToBox is the shared point-vs-box bound kernel: the query
// paths compare the squared distances against squared radii, saving two
// math.Sqrt per node.
func sqMinMaxDistToBox(q, lo, hi []float64) (smin, smax float64) {
	return kernel.SqMinMaxPointBox(q, lo, hi)
}

// Tree is a kd-tree over d-dimensional points under the Euclidean metric,
// flattened into a preorder arena: slot p's subtree occupies slots
// [p, p+count[p]), its point sits at pts[p*dim:(p+1)*dim], and its
// bounding box at the same offsets of lo and hi.
type Tree struct {
	size                int
	dim                 int
	pts                 []float64 // all coordinates, slot-major
	ids                 []int32   // slot → original point index
	axis                []int32   // split axis per slot
	count               []int32   // subtree size per slot (including the slot's point)
	left, right, parent []int32
	lo, hi              []float64 // subtree bounding boxes, slot-major
	// sum is the quantized block prefilter over pts (one uint8-coded box
	// per 8 slots), built once at construction; nil for tiny trees. The
	// leaf-range scans consult it to skip or settle whole blocks before
	// touching coordinates.
	sum *kernel.Summary
	// src is the backing index file when the tree was produced by
	// Open/FromFile (the columns above are views into its mapping); nil
	// for trees built in memory.
	src *arena.File
}

// New builds a balanced kd-tree by recursive median splits. Item i is
// reported by queries as id i. All points must share the same dimension.
func New(points [][]float64) *Tree {
	return NewWithWorkers(points, 1)
}

// parallelBuildMin is the subtree size below which a build recursion stays
// on the current goroutine: splitting smaller ranges costs more in
// scheduling than the sort saves.
const parallelBuildMin = 1024

// NewWithWorkers is New with the recursive median splits fanned out across
// up to workers goroutines (≤ 0 → all cores, 1 → serial). Subtrees above
// a size threshold build concurrently; the resulting arena is identical to
// the serial build because the median choice and the id tiebreaks are
// deterministic, and the preorder slot of every subtree is known up front
// from the subtree sizes, so the branches fill disjoint slot ranges.
func NewWithWorkers(points [][]float64, workers int) *Tree {
	t := &Tree{size: len(points)}
	if len(points) == 0 {
		return t
	}
	n := len(points)
	t.dim = len(points[0])
	t.pts = make([]float64, n*t.dim)
	t.ids = make([]int32, n)
	t.axis = make([]int32, n)
	t.count = make([]int32, n)
	t.left = make([]int32, n)
	t.right = make([]int32, n)
	t.parent = make([]int32, n)
	t.lo = make([]float64, n*t.dim)
	t.hi = make([]float64, n*t.dim)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.build(points, idx, 0, noChild, parallel.NewLimiter(workers))
	t.sum = kernel.NewSummary(t.pts, t.dim, n)
	return t
}

// build fills the preorder slot range [slot, slot+len(idx)) with the
// subtree over points[idx], split on the widest-spread axis of the
// subset's bounding box.
func (t *Tree) build(points [][]float64, idx []int, slot int32, par int32, lim *parallel.Limiter) {
	// The subset's bounding box first: it is both the slot's stored box
	// and the source of the split axis. Cycling axes by depth — the
	// textbook rule the first arena build used — degrades past a few
	// dimensions: with a ≈ 2^dim-point fanout per full cycle, an 8d tree
	// over 10k points never completes one cycle, so most splits cut axes
	// the data barely varies on and the boxes stop shrinking. Splitting
	// the widest spread of the actual subset keeps every cut maximally
	// discriminating at any dimensionality; ties break toward the lowest
	// axis so the build stays deterministic.
	base := int(slot) * t.dim
	lo := t.lo[base : base+t.dim]
	hi := t.hi[base : base+t.dim]
	copy(lo, points[idx[0]])
	copy(hi, points[idx[0]])
	for _, i := range idx {
		for j, v := range points[i] {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	axis := 0
	for j := 1; j < t.dim; j++ {
		if hi[j]-lo[j] > hi[axis]-lo[axis] {
			axis = j
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[axis] != pb[axis] {
			return pa[axis] < pb[axis]
		}
		return idx[a] < idx[b] // deterministic tiebreak
	})
	mid := len(idx) / 2
	copy(t.pts[base:base+t.dim], points[idx[mid]])
	t.ids[slot] = int32(idx[mid])
	t.axis[slot] = int32(axis)
	t.count[slot] = int32(len(idx))
	t.parent[slot] = par
	leftIdx, rightIdx := idx[:mid], idx[mid+1:]
	t.left[slot], t.right[slot] = noChild, noChild
	lslot := slot + 1
	rslot := slot + 1 + int32(mid)
	if len(leftIdx) > 0 {
		t.left[slot] = lslot
	}
	if len(rightIdx) > 0 {
		t.right[slot] = rslot
	}
	if len(idx) >= parallelBuildMin && len(leftIdx) > 0 {
		wait := lim.Go(func() { t.build(points, leftIdx, lslot, slot, lim) })
		if len(rightIdx) > 0 {
			t.build(points, rightIdx, rslot, slot, lim)
		}
		wait()
		return
	}
	if len(leftIdx) > 0 {
		t.build(points, leftIdx, lslot, slot, lim)
	}
	if len(rightIdx) > 0 {
		t.build(points, rightIdx, rslot, slot, lim)
	}
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// point returns slot p's coordinates (a view into the arena block).
func (t *Tree) point(p int32) []float64 {
	base := int(p) * t.dim
	return t.pts[base : base+t.dim]
}

// box returns slot p's bounding box (views into the arena blocks).
func (t *Tree) box(p int32) (lo, hi []float64) {
	base := int(p) * t.dim
	return t.lo[base : base+t.dim], t.hi[base : base+t.dim]
}

// RangeCount returns the number of points within Euclidean distance r of q
// (inclusive). Subtrees whose bounding boxes lie entirely inside (or
// outside) the query ball contribute their stored sizes (or nothing)
// without being descended — the count-only principle that keeps large-
// radius counting cheap. All comparisons are on squared distances, so the
// traversal never takes a square root.
func (t *Tree) RangeCount(q []float64, r float64) int {
	if t.size == 0 {
		return 0
	}
	return t.rangeCount(0, q, r*r)
}

func (t *Tree) rangeCount(p int32, q []float64, r2 float64) int {
	lo, hi := t.box(p)
	smin, smax := sqMinMaxDistToBox(q, lo, hi)
	if smin > r2 {
		return 0
	}
	if smax <= r2 {
		return int(t.count[p])
	}
	if cnt := int(t.count[p]); cnt <= scanCutoff {
		// Ambiguous small subtree: stream its contiguous preorder range
		// through the block kernels instead of recursing per slot.
		return kernel.CountRange(t.sum, q, t.pts, int(p), int(p)+cnt, r2)
	}
	count := 0
	if kernel.SqDist(q, t.point(p)) <= r2 {
		count++
	}
	if l := t.left[p]; l >= 0 {
		count += t.rangeCount(l, q, r2)
	}
	if r := t.right[p]; r >= 0 {
		count += t.rangeCount(r, q, r2)
	}
	return count
}

// RangeCountMulti returns the neighbor count at every radius of the
// ascending schedule radii from ONE tree traversal; see
// RangeCountMultiAppend for the allocation-free form.
func (t *Tree) RangeCountMulti(q []float64, radii []float64) []int {
	return t.RangeCountMultiAppend(q, radii, nil)
}

// RangeCountMultiAppend appends the neighbor count at every radius of the
// ascending schedule radii — computed in ONE tree traversal — to dst,
// reusing dst's capacity, and returns the extended slice. Each node keeps
// the window [lo, hi) of radii its box leaves unresolved: radii the box
// cannot reach are dropped, radii that contain the whole box are credited
// with the subtree's stored size via a difference array, and only the
// radii in between descend. Squared distances throughout — no per-node
// math.Sqrt — and the squared schedule lives in a pooled scratch slice,
// so a probe with a warm dst allocates zero bytes. The result is
// element-wise identical to calling RangeCount per radius.
func (t *Tree) RangeCountMultiAppend(q []float64, radii []float64, dst []int) []int {
	return dualjoin.AppendMultiCounts(radii, dst, true, func(r2 []float64, diff []int) {
		if t.size > 0 {
			t.multiCount(0, q, r2, 0, len(r2), diff)
		}
	})
}

// multiCount resolves the squared-radius window r2[lo:hi] for the subtree
// at slot p; diff is the difference array crediting element ranges in O(1).
func (t *Tree) multiCount(p int32, q []float64, r2 []float64, lo, hi int, diff []int) {
	blo, bhi := t.box(p)
	smin, smax := sqMinMaxDistToBox(q, blo, bhi)
	for lo < hi && smin > r2[lo] {
		lo++ // box out of reach of the smallest radii
	}
	nh := lo
	for nh < hi && smax > r2[nh] {
		nh++ // box fully inside radii [nh, hi): settle them at once
	}
	if nh < hi {
		diff[nh] += int(t.count[p])
		diff[hi] -= int(t.count[p])
	}
	if lo >= nh {
		return
	}
	if cnt := int(t.count[p]); cnt <= scanCutoff {
		t.scanBuckets(int(p), int(p)+cnt, q, r2, lo, nh, diff)
		return
	}
	if d2 := kernel.SqDist(q, t.point(p)); d2 <= r2[nh-1] {
		b := lo
		for d2 > r2[b] {
			b++
		}
		diff[b]++
		diff[nh]--
	}
	if l := t.left[p]; l >= 0 {
		t.multiCount(l, q, r2, lo, nh, diff)
	}
	if r := t.right[p]; r >= 0 {
		t.multiCount(r, q, r2, lo, nh, diff)
	}
}

// scanBuckets resolves the ambiguous radius window [lo, nh) for the
// points of slots [first, last) by block kernels: each surviving point's
// squared distance is bucketed into the difference array exactly as the
// per-slot recursion would. No quantized prefilter: the threshold is
// the ambiguous window's UPPER edge, which this subtree's own box
// already straddles, so per-block bounds almost never prune and only
// add cost (they regressed the batched-probe benchmarks before the
// bypass).
func (t *Tree) scanBuckets(first, last int, q []float64, r2 []float64, lo, nh int, diff []int) {
	// Callers bound the range by scanCutoff, so one kernel call fills
	// every distance of the subtree into a stack buffer.
	var d2 [scanCutoff]float64
	n := last - first
	kernel.Dists(d2[:n], q, t.pts, first, last)
	thr := r2[nh-1]
	for i := 0; i < n; i++ {
		if v := d2[i]; v <= thr {
			b := lo
			for v > r2[b] {
				b++
			}
			diff[b]++
			diff[nh]--
		}
	}
}

// RangeQuery returns the ids of points within distance r of q (inclusive).
func (t *Tree) RangeQuery(q []float64, r float64) []int {
	return t.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend appends the ids of points within distance r of q
// (inclusive) to dst, reusing dst's capacity, and returns the extended
// slice. It lets hot loops recycle one scratch buffer across probes.
func (t *Tree) RangeQueryAppend(q []float64, r float64, dst []int) []int {
	if t.size == 0 {
		return dst
	}
	return t.rangeQuery(0, q, r, r*r, dst)
}

func (t *Tree) rangeQuery(p int32, q []float64, r, r2 float64, dst []int) []int {
	if cnt := int(t.count[p]); cnt <= scanCutoff {
		// The preorder layout visits slots in exactly the recursion's
		// order (slot, left subtree, right subtree), so a linear block
		// scan appends the same ids in the same order.
		var d2 [kernel.Block]float64
		for at, last := int(p), int(p)+cnt; at < last; {
			n, pruned := kernel.RangeBlock(&d2, t.sum, q, t.pts, at, last, r2)
			if !pruned {
				for i := 0; i < n; i++ {
					if d2[i] <= r2 {
						dst = append(dst, int(t.ids[at+i]))
					}
				}
			}
			at += n
		}
		return dst
	}
	if kernel.SqDist(q, t.point(p)) <= r2 {
		dst = append(dst, int(t.ids[p]))
	}
	diff := q[t.axis[p]] - t.pts[int(p)*t.dim+int(t.axis[p])]
	if l := t.left[p]; l >= 0 && diff <= r {
		dst = t.rangeQuery(l, q, r, r2, dst)
	}
	if rt := t.right[p]; rt >= 0 && diff >= -r {
		dst = t.rangeQuery(rt, q, r, r2, dst)
	}
	return dst
}

// KNN returns ids and distances of the k nearest points to q, closest
// first; ties break by id.
func (t *Tree) KNN(q []float64, k int) ([]int, []float64) {
	if t.size == 0 || k <= 0 {
		return nil, nil
	}
	type cand struct {
		id int
		d  float64
	}
	var best []cand // kept sorted ascending, max length k
	worse := func(a, b cand) bool {
		if a.d != b.d {
			return a.d > b.d
		}
		return a.id > b.id
	}
	bound := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].d
	}
	insert := func(c cand) {
		pos := len(best)
		best = append(best, c)
		for pos > 0 && worse(best[pos-1], best[pos]) {
			best[pos-1], best[pos] = best[pos], best[pos-1]
			pos--
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	var visit func(p int32)
	visit = func(p int32) {
		// Same value metric.Euclidean returns (the kernel accumulates in
		// the oracle's order), dispatched through the width-specialized
		// kernel. The traversal itself stays per-slot: KNN's tie handling
		// depends on visit order, which a block scan would reorder.
		d := math.Sqrt(kernel.SqDist(q, t.point(p)))
		if d < bound() || (d == bound() && len(best) < k) {
			insert(cand{id: int(t.ids[p]), d: d})
		}
		diff := q[t.axis[p]] - t.pts[int(p)*t.dim+int(t.axis[p])]
		near, far := t.left[p], t.right[p]
		if diff > 0 {
			near, far = t.right[p], t.left[p]
		}
		if near >= 0 {
			visit(near)
		}
		if far >= 0 && math.Abs(diff) <= bound() {
			visit(far)
		}
	}
	visit(0)
	ids := make([]int, len(best))
	dists := make([]float64, len(best))
	for i, c := range best {
		ids[i], dists[i] = c.id, c.d
	}
	return ids, dists
}

// DiameterEstimate estimates the diameter of the point set as the diagonal
// of its bounding box (an upper bound within √d of the true diameter). The
// root slot's box already covers every point, so this is one lookup.
func (t *Tree) DiameterEstimate() float64 {
	if t.size == 0 {
		return 0
	}
	lo, hi := t.box(0)
	return metric.Euclidean(lo, hi)
}
