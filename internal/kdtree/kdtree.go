// Package kdtree implements a main-memory kd-tree for vector data. The
// paper's footnote 4 recommends kd-trees for main-memory-based vector
// datasets (and metric trees for everything else); this package exists so
// the benchmark harness can ablate the index choice. The query interface
// mirrors internal/slimtree.
package kdtree

import (
	"math"
	"sort"

	"mccatch/internal/metric"
	"mccatch/internal/parallel"
)

type node struct {
	point       []float64
	id          int
	axis        int
	size        int       // elements in this subtree (including the point)
	lo, hi      []float64 // bounding box of the subtree
	left, right *node
}

// sqMinMaxDistToBox returns the smallest and largest SQUARED Euclidean
// distances from q to the axis-aligned box [lo, hi]. The query paths
// compare these against squared radii, saving two math.Sqrt per node.
func sqMinMaxDistToBox(q, lo, hi []float64) (smin, smax float64) {
	for j := range q {
		nearest := q[j]
		if nearest < lo[j] {
			nearest = lo[j]
		}
		if nearest > hi[j] {
			nearest = hi[j]
		}
		d := q[j] - nearest
		smin += d * d
		fl := math.Abs(q[j] - lo[j])
		fh := math.Abs(q[j] - hi[j])
		far := math.Max(fl, fh)
		smax += far * far
	}
	return smin, smax
}

// Tree is a kd-tree over d-dimensional points under the Euclidean metric.
type Tree struct {
	root *node
	size int
	dim  int
}

// New builds a balanced kd-tree by recursive median splits. Item i is
// reported by queries as id i. All points must share the same dimension.
func New(points [][]float64) *Tree {
	return NewWithWorkers(points, 1)
}

// parallelBuildMin is the subtree size below which a build recursion stays
// on the current goroutine: splitting smaller ranges costs more in
// scheduling than the sort saves.
const parallelBuildMin = 1024

// NewWithWorkers is New with the recursive median splits fanned out across
// up to workers goroutines (≤ 0 → all cores, 1 → serial). Subtrees above
// a size threshold build concurrently; the resulting tree is identical to
// the serial build because the median choice and the id tiebreaks are
// deterministic and the branches work on disjoint index ranges.
func NewWithWorkers(points [][]float64, workers int) *Tree {
	t := &Tree{size: len(points)}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.root = build(points, idx, 0, t.dim, parallel.NewLimiter(workers))
	return t
}

func build(points [][]float64, idx []int, depth, dim int, lim *parallel.Limiter) *node {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[axis] != pb[axis] {
			return pa[axis] < pb[axis]
		}
		return idx[a] < idx[b] // deterministic tiebreak
	})
	mid := len(idx) / 2
	n := &node{point: points[idx[mid]], id: idx[mid], axis: axis, size: len(idx)}
	n.lo = append([]float64(nil), points[idx[0]]...)
	n.hi = append([]float64(nil), points[idx[0]]...)
	for _, i := range idx {
		for j, v := range points[i] {
			if v < n.lo[j] {
				n.lo[j] = v
			}
			if v > n.hi[j] {
				n.hi[j] = v
			}
		}
	}
	left, right := idx[:mid], idx[mid+1:]
	if len(idx) >= parallelBuildMin {
		wait := lim.Go(func() { n.left = build(points, left, depth+1, dim, lim) })
		n.right = build(points, right, depth+1, dim, lim)
		wait()
		return n
	}
	n.left = build(points, left, depth+1, dim, lim)
	n.right = build(points, right, depth+1, dim, lim)
	return n
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// RangeCount returns the number of points within Euclidean distance r of q
// (inclusive). Subtrees whose bounding boxes lie entirely inside (or
// outside) the query ball contribute their stored sizes (or nothing)
// without being descended — the count-only principle that keeps large-
// radius counting cheap. All comparisons are on squared distances, so the
// traversal never takes a square root.
func (t *Tree) RangeCount(q []float64, r float64) int {
	r2 := r * r
	count := 0
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		smin, smax := sqMinMaxDistToBox(q, n.lo, n.hi)
		if smin > r2 {
			return
		}
		if smax <= r2 {
			count += n.size
			return
		}
		if metric.SquaredEuclidean(q, n.point) <= r2 {
			count++
		}
		visit(n.left)
		visit(n.right)
	}
	visit(t.root)
	return count
}

// RangeCountMulti returns the neighbor count at every radius of the
// ascending schedule radii from ONE tree traversal. Each node keeps the
// window [lo, hi) of radii its box leaves unresolved: radii the box cannot
// reach are dropped, radii that contain the whole box are credited with
// the subtree's stored size via a difference array, and only the radii in
// between descend. Squared distances throughout — no per-node math.Sqrt.
// The result is element-wise identical to calling RangeCount per radius.
func (t *Tree) RangeCountMulti(q []float64, radii []float64) []int {
	a := len(radii)
	diff := make([]int, a+1)
	if t.root != nil && a > 0 {
		r2 := make([]float64, a)
		for e, r := range radii {
			r2[e] = r * r
		}
		multiCount(t.root, q, r2, 0, a, diff)
	}
	for e := 1; e < a; e++ {
		diff[e] += diff[e-1]
	}
	return diff[:a]
}

// multiCount resolves the squared-radius window r2[lo:hi] for the subtree
// at n; diff is the difference array crediting element ranges in O(1).
func multiCount(n *node, q []float64, r2 []float64, lo, hi int, diff []int) {
	if n == nil {
		return
	}
	smin, smax := sqMinMaxDistToBox(q, n.lo, n.hi)
	for lo < hi && smin > r2[lo] {
		lo++ // box out of reach of the smallest radii
	}
	nh := lo
	for nh < hi && smax > r2[nh] {
		nh++ // box fully inside radii [nh, hi): settle them at once
	}
	if nh < hi {
		diff[nh] += n.size
		diff[hi] -= n.size
	}
	if lo >= nh {
		return
	}
	if d2 := metric.SquaredEuclidean(q, n.point); d2 <= r2[nh-1] {
		b := lo
		for d2 > r2[b] {
			b++
		}
		diff[b]++
		diff[nh]--
	}
	multiCount(n.left, q, r2, lo, nh, diff)
	multiCount(n.right, q, r2, lo, nh, diff)
}

// RangeQuery returns the ids of points within distance r of q (inclusive).
func (t *Tree) RangeQuery(q []float64, r float64) []int {
	return t.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend appends the ids of points within distance r of q
// (inclusive) to dst, reusing dst's capacity, and returns the extended
// slice. It lets hot loops recycle one scratch buffer across probes.
func (t *Tree) RangeQueryAppend(q []float64, r float64, dst []int) []int {
	r2 := r * r
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		if metric.SquaredEuclidean(q, n.point) <= r2 {
			dst = append(dst, n.id)
		}
		diff := q[n.axis] - n.point[n.axis]
		if diff <= r {
			visit(n.left)
		}
		if diff >= -r {
			visit(n.right)
		}
	}
	visit(t.root)
	return dst
}

// KNN returns ids and distances of the k nearest points to q, closest
// first; ties break by id.
func (t *Tree) KNN(q []float64, k int) ([]int, []float64) {
	if t.root == nil || k <= 0 {
		return nil, nil
	}
	type cand struct {
		id int
		d  float64
	}
	var best []cand // kept sorted ascending, max length k
	worse := func(a, b cand) bool {
		if a.d != b.d {
			return a.d > b.d
		}
		return a.id > b.id
	}
	bound := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].d
	}
	insert := func(c cand) {
		pos := len(best)
		best = append(best, c)
		for pos > 0 && worse(best[pos-1], best[pos]) {
			best[pos-1], best[pos] = best[pos], best[pos-1]
			pos--
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		d := metric.Euclidean(q, n.point)
		if d < bound() || (d == bound() && len(best) < k) {
			insert(cand{id: n.id, d: d})
		}
		diff := q[n.axis] - n.point[n.axis]
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		visit(near)
		if math.Abs(diff) <= bound() {
			visit(far)
		}
	}
	visit(t.root)
	ids := make([]int, len(best))
	dists := make([]float64, len(best))
	for i, c := range best {
		ids[i], dists[i] = c.id, c.d
	}
	return ids, dists
}

// DiameterEstimate estimates the diameter of the point set as the diagonal
// of its bounding box (an upper bound within √d of the true diameter).
func (t *Tree) DiameterEstimate() float64 {
	if t.root == nil {
		return 0
	}
	lo := append([]float64(nil), t.root.point...)
	hi := append([]float64(nil), t.root.point...)
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		for j, v := range n.point {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
		visit(n.left)
		visit(n.right)
	}
	visit(t.root)
	return metric.Euclidean(lo, hi)
}
