package kdtree

import (
	"fmt"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// bruteFirsts is the brute-force oracle for the cross join: for every
// query, the index of the first radius at or above the distance to its
// nearest indexed point, or len(radii) when even the largest radius
// falls short. Comparisons happen on squared distances, the domain every
// kd-tree query path uses.
func bruteFirsts(in, queries [][]float64, radii []float64) []int {
	firsts := make([]int, len(queries))
	for i, q := range queries {
		e := len(radii)
		for _, p := range in {
			d2 := metric.SquaredEuclidean(q, p)
			b := 0
			for b < e && d2 > radii[b]*radii[b] {
				b++
			}
			if b < e {
				e = b
			}
		}
		firsts[i] = e
	}
	return firsts
}

// crossWorkerCounts are the worker counts every equivalence assertion
// runs at; 8 oversubscribes the small inputs so the unit-scheduling and
// accumulator-pooling paths are exercised.
var crossWorkerCounts = []int{1, 2, 8}

func assertBridgeFirstsMatch(t *testing.T, label string, tr *Tree, in, queries [][]float64, radii []float64) {
	t.Helper()
	want := bruteFirsts(in, queries, radii)
	for _, workers := range crossWorkerCounts {
		got := tr.BridgeFirsts(queries, radii, workers)
		if len(got) != len(want) {
			t.Fatalf("%s (workers=%d): %d results, want %d", label, workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s (workers=%d): firsts[%d] = %d, want %d (query %v)",
					label, workers, i, got[i], want[i], queries[i])
			}
		}
	}
}

func TestBridgeFirstsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(400)
		dim := 1 + rng.Intn(4)
		in := randPoints(rng, n, dim)
		queries := randPoints(rng, rng.Intn(80), dim)
		for i := rng.Intn(10); i > 0; i-- {
			// Queries duplicating indexed points stress the zero-distance
			// bucket.
			queries = append(queries, append([]float64(nil), in[rng.Intn(len(in))]...))
		}
		tr := New(in)
		assertBridgeFirstsMatch(t, fmt.Sprintf("trial%d", trial), tr, in, queries, randRadii(rng, 150))
	}
}

func TestBridgeFirstsClustered(t *testing.T) {
	// Clustered queries far from clustered indexed points exercise the
	// wholesale subtree credits and the window clamping that uniform
	// data rarely triggers.
	rng := rand.New(rand.NewSource(48))
	var in, queries [][]float64
	for b := 0; b < 5; b++ {
		cx, cy := rng.Float64()*50, rng.Float64()*50
		for i := 0; i < 50; i++ {
			in = append(in, []float64{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5})
		}
	}
	for b := 0; b < 8; b++ {
		cx, cy := 100+rng.Float64()*200, 100+rng.Float64()*200
		for i := 0; i < 6; i++ {
			queries = append(queries, []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3})
		}
	}
	tr := New(in)
	assertBridgeFirstsMatch(t, "clustered", tr, in, queries,
		[]float64{0.1, 1, 5, 20, 80, 160, 320, 640})
}

func TestBridgeFirstsEdges(t *testing.T) {
	in := [][]float64{{0, 0}, {1, 0}}
	tr := New(in)
	if got := tr.BridgeFirsts(nil, []float64{1, 2}, 1); len(got) != 0 {
		t.Errorf("no queries: got %v, want empty", got)
	}
	if got := tr.BridgeFirsts([][]float64{{5, 5}}, nil, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("empty radii: got %v, want [0]", got)
	}
	empty := New(nil)
	if got := empty.BridgeFirsts([][]float64{{1, 1}}, []float64{1, 2}, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("empty tree: got %v, want [len(radii)]", got)
	}
	// A query beyond the largest radius must report len(radii).
	one := New([][]float64{{0, 0}})
	got := one.BridgeFirsts([][]float64{{100, 0}, {0.5, 0}, {0, 0}}, []float64{1, 2, 4}, 1)
	if got[0] != 3 || got[1] != 0 || got[2] != 0 {
		t.Errorf("single indexed point: got %v, want [3 0 0]", got)
	}
}

// TestBridgeFirstsRepeatable guards accumulator reuse: repeated calls on
// the same tree must agree with each other at every worker count.
func TestBridgeFirstsRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	in := randPoints(rng, 300, 2)
	queries := randPoints(rng, 60, 2)
	tr := New(in)
	radii := randRadii(rng, 150)
	first := tr.BridgeFirsts(queries, radii, 1)
	second := tr.BridgeFirsts(queries, radii, 4)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("second call differs at %d: %d vs %d", i, first[i], second[i])
		}
	}
}
