package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

// This file pins the arena layout itself: the structural invariants every
// query and dual join relies on (preorder subtree ranges, implicit child
// positions, parent links, coordinate block offsets), and — via a
// retained copy of the pre-arena pointer implementation — that the
// flattened tree answers queries identically to the linked build it
// replaced.

// TestArenaInvariants checks, on random trees:
//   - slot p's subtree is exactly the contiguous preorder range
//     [p, p+count[p]), with left = p+1 and right = p+1+count[p]/2
//     whenever the children exist (the implicit layout);
//   - parent links invert the child links;
//   - every slot's coordinate block holds the original point of its id;
//   - every slot's box bounds exactly the points of its range.
func TestArenaInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(500)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		tr := New(pts)
		seen := make([]bool, n)
		for p := int32(0); p < int32(n); p++ {
			cnt := tr.count[p]
			if cnt < 1 || int(p)+int(cnt) > n {
				t.Fatalf("slot %d: count %d out of range", p, cnt)
			}
			// Implicit child positions.
			mid := cnt / 2
			wantLeft, wantRight := int32(noChild), int32(noChild)
			if mid > 0 {
				wantLeft = p + 1
			}
			if cnt-1-mid > 0 {
				wantRight = p + 1 + mid
			}
			if tr.left[p] != wantLeft || tr.right[p] != wantRight {
				t.Fatalf("slot %d: links (%d,%d), implicit layout wants (%d,%d)",
					p, tr.left[p], tr.right[p], wantLeft, wantRight)
			}
			// Children sizes partition the range: count = 1 + left + right.
			sub := int32(1)
			for _, c := range []int32{tr.left[p], tr.right[p]} {
				if c >= 0 {
					if tr.parent[c] != p {
						t.Fatalf("slot %d: parent link of child %d is %d", p, c, tr.parent[c])
					}
					sub += tr.count[c]
				}
			}
			if sub != cnt {
				t.Fatalf("slot %d: children sizes %d != count %d", p, sub, cnt)
			}
			// Coordinate block matches the original point of the id.
			id := tr.ids[p]
			if seen[id] {
				t.Fatalf("id %d stored twice", id)
			}
			seen[id] = true
			for j, v := range pts[id] {
				if tr.pts[int(p)*dim+j] != v {
					t.Fatalf("slot %d: coordinate block does not match point %d", p, id)
				}
			}
			// Box bounds exactly the subtree's points.
			lo, hi := tr.box(p)
			for j := 0; j < dim; j++ {
				mn, mx := tr.pts[int(p)*dim+j], tr.pts[int(p)*dim+j]
				for q := p; q < p+cnt; q++ {
					v := tr.pts[int(q)*dim+j]
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				if lo[j] != mn || hi[j] != mx {
					t.Fatalf("slot %d: box axis %d is [%v,%v], points span [%v,%v]",
						p, j, lo[j], hi[j], mn, mx)
				}
			}
		}
		if tr.parent[0] != noChild {
			t.Fatal("root must have no parent")
		}
	}
}

// --- Retained reference: the pre-arena pointer kd-tree. ---

type refNode struct {
	point       []float64
	id, axis    int
	size        int
	lo, hi      []float64
	left, right *refNode
}

func refBuild(points [][]float64, idx []int, dim int) *refNode {
	if len(idx) == 0 {
		return nil
	}
	// Same split rule as the arena build: the subset box's widest-spread
	// axis, ties toward the lowest axis.
	lo := append([]float64(nil), points[idx[0]]...)
	hi := append([]float64(nil), points[idx[0]]...)
	for _, i := range idx {
		for j, v := range points[i] {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	axis := 0
	for j := 1; j < dim; j++ {
		if hi[j]-lo[j] > hi[axis]-lo[axis] {
			axis = j
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[axis] != pb[axis] {
			return pa[axis] < pb[axis]
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	n := &refNode{point: points[idx[mid]], id: idx[mid], axis: axis, size: len(idx)}
	n.lo, n.hi = lo, hi
	n.left = refBuild(points, idx[:mid], dim)
	n.right = refBuild(points, idx[mid+1:], dim)
	return n
}

func refRangeCount(n *refNode, q []float64, r2 float64) int {
	if n == nil {
		return 0
	}
	smin, smax := sqMinMaxDistToBox(q, n.lo, n.hi)
	if smin > r2 {
		return 0
	}
	if smax <= r2 {
		return n.size
	}
	count := 0
	if metric.SquaredEuclidean(q, n.point) <= r2 {
		count++
	}
	return count + refRangeCount(n.left, q, r2) + refRangeCount(n.right, q, r2)
}

func refRangeIDs(n *refNode, q []float64, r2 float64, dst []int) []int {
	if n == nil {
		return dst
	}
	if metric.SquaredEuclidean(q, n.point) <= r2 {
		dst = append(dst, n.id)
	}
	dst = refRangeIDs(n.left, q, r2, dst)
	return refRangeIDs(n.right, q, r2, dst)
}

// TestArenaMatchesReferencePointerBuild builds the same random inputs
// into the arena tree and the retained pointer reference and demands
// identical answers: range counts, multi-radius counts, id sets, and the
// pointer tree's structure mirrored slot by slot.
func TestArenaMatchesReferencePointerBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(400)
		dim := 1 + rng.Intn(3)
		pts := randPoints(rng, n, dim)
		for i := 0; i < n/10; i++ { // duplicates stress tiebreaks
			pts[rng.Intn(n)] = append([]float64(nil), pts[rng.Intn(n)]...)
		}
		tr := New(pts)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		ref := refBuild(pts, idx, dim)

		// Structure: a preorder walk of the reference must visit the arena
		// slots 0, 1, 2, ... with identical fields.
		slot := int32(0)
		var walk func(r *refNode)
		walk = func(r *refNode) {
			if r == nil {
				return
			}
			p := slot
			slot++
			if int(tr.ids[p]) != r.id || int(tr.axis[p]) != r.axis || int(tr.count[p]) != r.size {
				t.Fatalf("slot %d: (id,axis,count)=(%d,%d,%d), reference (%d,%d,%d)",
					p, tr.ids[p], tr.axis[p], tr.count[p], r.id, r.axis, r.size)
			}
			lo, hi := tr.box(p)
			for j := range r.lo {
				if lo[j] != r.lo[j] || hi[j] != r.hi[j] {
					t.Fatalf("slot %d: box differs from reference", p)
				}
			}
			walk(r.left)
			walk(r.right)
		}
		walk(ref)
		if slot != int32(n) {
			t.Fatalf("reference walk covered %d slots, want %d", slot, n)
		}

		// Queries: counts, batched counts and id sets agree everywhere.
		diam := tr.DiameterEstimate()
		radii := make([]float64, 8)
		for e := range radii {
			radii[e] = diam / float64(int(1)<<(len(radii)-1-e))
		}
		for probe := 0; probe < 10; probe++ {
			q := pts[rng.Intn(n)]
			r := rng.Float64() * diam
			if got, want := tr.RangeCount(q, r), refRangeCount(ref, q, r*r); got != want {
				t.Fatalf("RangeCount=%d, reference %d", got, want)
			}
			multi := tr.RangeCountMulti(q, radii)
			for e, rr := range radii {
				if want := refRangeCount(ref, q, rr*rr); multi[e] != want {
					t.Fatalf("RangeCountMulti[%d]=%d, reference %d", e, multi[e], want)
				}
			}
			got := tr.RangeQuery(q, r)
			want := refRangeIDs(ref, q, r*r, nil)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("RangeQuery returned %d ids, reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatal("RangeQuery id sets differ from reference")
				}
			}
		}
	}
}
