package kdtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the cross-set dual-tree COUNT join for the
// kd-tree (index.CrossCounter): for every query of a second point set,
// its full neighbor-count row over a nested radius schedule, from one
// traversal of the index tree against a throwaway kd-tree bulk-built
// over the queries. The geometry is the bridge join's (crossjoin.go) —
// min/max squared box distances classify query×point pairs wholesale —
// but the accumulation is the self-join's: additive per-radius count
// differences (dualjoin.Acc), credited one-directionally into the query
// tree's flat rows. Where the bridge join's minima let credited bounds
// clamp later windows from above, counts can never terminate early — a
// settled range [nh, hi) merely telescopes against an ancestor's
// [hi, hi') so each pair's credited ranges tile exactly once.
// All comparisons are on squared distances — no math.Sqrt anywhere.

// crossCountCtx is one traversal unit's context: the index tree, the
// throwaway query tree, the squared radius schedule and the unit's
// accumulator (rows/stride cache acc.Point for the serial fast path,
// exactly as in the self-join's dualCtx).
type crossCountCtx struct {
	in, out *Tree
	radii2  []float64
	acc     *dualjoin.Acc
	rows    []int
	stride  int
}

// creditQuery buckets cnt indexed points into query position p's row
// over [b, nh).
func (c *crossCountCtx) creditQuery(p int32, b, nh, cnt int) {
	if rows := c.rows; rows != nil {
		rp := rows[int(p)*c.stride:]
		rp[b] += cnt
		rp[nh] -= cnt
		return
	}
	c.acc.CreditPos(p, b, nh, cnt)
}

// CountCrossMulti returns counts[e][i] = the number of indexed points
// within radii[e] (inclusive) of queries[i], for every query and every
// radius of the ascending schedule — computed by a dual-tree traversal
// against a throwaway tree over the queries instead of per-query
// probes. Counts are exact: bounds only ever defer ambiguous pairs,
// never approximate them. workers ≤ 0 means all cores, 1 means serial;
// the result is identical for every value.
func (t *Tree) CountCrossMulti(queries [][]float64, radii []float64, workers int) [][]int {
	a := len(radii)
	var out *Tree
	var subs, pts []int32
	if t.size > 0 && len(queries) > 0 && a > 0 {
		out = NewWithWorkers(queries, workers)
		subs, pts = out.seedSplit()
	}
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}
	nodes := 0
	if out != nil {
		nodes = out.size
	}
	return dualjoin.CountMatrix(a, len(queries), nodes, workers, len(subs)+len(pts),
		func(u int, acc *dualjoin.Acc) {
			c := crossCountCtx{in: t, out: out, radii2: radii2, acc: acc,
				rows: acc.Point, stride: acc.Stride}
			if u < len(subs) {
				c.countVisit(subs[u], 0, 0, a)
			} else {
				c.probeCount(pts[u-len(subs)], 0, 0, a)
			}
		},
		func(node int32) (int32, int32) { return node, node + out.count[node] },
		func(pos int32) int { return int(out.ids[pos]) })
}

// countVisit classifies the pair of query subtree O against index
// subtree I for the radius window [lo, hi): radii below lo are already
// known to separate the two boxes, and radii at and above hi were
// settled (credited wholesale) by an ancestor pair, so each query×point
// pair's credited ranges telescope to exactly one credit per radius.
// Crediting is one-directional — only the query side accumulates.
func (c *crossCountCtx) countVisit(O, I int32, lo, hi int) {
	olo, ohi := c.out.box(O)
	ilo, ihi := c.in.box(I)
	smin, smax := dualjoin.SqMinMaxBoxBox(olo, ohi, ilo, ihi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		// Every index point under I is within radii[nh..hi) of every
		// query under O.
		c.acc.CreditNode(O, nh, hi, int(c.in.count[I]))
	}
	if lo >= nh {
		return
	}
	// Ambiguous radii [lo, nh): decompose the side with the larger box
	// (ties descend the query side, keeping the descent deterministic). A
	// kd slot carries its own point, so descending I peels its point off
	// as a single-index-point visit, and descending O peels its point off
	// as a single-query probe.
	if c.in.boxDiag2(I) > c.out.boxDiag2(O) {
		c.indexPointCount(c.in.point(I), O, lo, nh)
		if l := c.in.left[I]; l >= 0 {
			c.countVisit(O, l, lo, nh)
		}
		if r := c.in.right[I]; r >= 0 {
			c.countVisit(O, r, lo, nh)
		}
		return
	}
	c.probeCount(O, I, lo, nh)
	if l := c.out.left[O]; l >= 0 {
		c.countVisit(l, I, lo, nh)
	}
	if r := c.out.right[O]; r >= 0 {
		c.countVisit(r, I, lo, nh)
	}
}

// probeCount resolves the single query point at slot p against index
// subtree I for the window [lo, hi): the counting sibling of the bridge
// join's probeFirst — wholesale ranges credit I's whole subtree, the
// slot's own point buckets exactly, and the recursion covers the rest.
func (c *crossCountCtx) probeCount(p, I int32, lo, hi int) {
	q := c.out.point(p)
	ilo, ihi := c.in.box(I)
	smin, smax := sqMinMaxDistToBox(q, ilo, ihi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.creditQuery(p, nh, hi, int(c.in.count[I]))
	}
	if lo >= nh {
		return
	}
	if cnt := int(c.in.count[I]); cnt <= scanCutoff {
		c.scanCount(p, int(I), int(I)+cnt, lo, nh)
		return
	}
	if d2 := kernel.SqDist(q, c.in.point(I)); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditQuery(p, b, nh, 1)
	}
	if l := c.in.left[I]; l >= 0 {
		c.probeCount(p, l, lo, nh)
	}
	if r := c.in.right[I]; r >= 0 {
		c.probeCount(p, r, lo, nh)
	}
}

// scanCount resolves query slot p's point against every index point of
// slots [first, last) for the ambiguous window [lo, nh) by block
// kernels, crediting each close pair into p's row exactly as the
// per-slot recursion would. Like the self-join's scanPointRange, no
// quantized prefilter: the threshold is the ambiguous window's upper
// edge, which the subtree's own box already straddles.
func (c *crossCountCtx) scanCount(p int32, first, last, lo, nh int) {
	q := c.out.point(p)
	var d2 [scanCutoff]float64
	n := last - first
	kernel.Dists(d2[:n], q, c.in.pts, first, last)
	r2 := c.radii2
	thr := r2[nh-1]
	for i := 0; i < n; i++ {
		if v := d2[i]; v <= thr {
			b := lo
			for v > r2[b] {
				b++
			}
			c.creditQuery(p, b, nh, 1)
		}
	}
}

// indexPointCount resolves a single INDEX point against query subtree O
// for the window [lo, hi): the one-directional mirror of probeCount,
// crediting q into the rows of O's queries.
func (c *crossCountCtx) indexPointCount(q []float64, O int32, lo, hi int) {
	olo, ohi := c.out.box(O)
	smin, smax := sqMinMaxDistToBox(q, olo, ohi)
	lo, nh := dualjoin.Window(c.radii2, smin, smax, lo, hi)
	if nh < hi {
		c.acc.CreditNode(O, nh, hi, 1) // q is within radii[nh..hi) of every query under O
	}
	if lo >= nh {
		return
	}
	if d2 := kernel.SqDist(q, c.out.point(O)); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditQuery(O, b, nh, 1)
	}
	if l := c.out.left[O]; l >= 0 {
		c.indexPointCount(q, l, lo, nh)
	}
	if r := c.out.right[O]; r >= 0 {
		c.indexPointCount(q, r, lo, nh)
	}
}
