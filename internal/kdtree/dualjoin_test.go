package kdtree

import (
	"fmt"
	"math/rand"
	"testing"
)

// assertCountAllMatches checks the dual-tree self-join contract: for every
// indexed point and every radius, CountAllMulti must equal the per-point
// RangeCount — for every worker count.
func assertCountAllMatches(t *testing.T, label string, tr *Tree, pts [][]float64, radii []float64) {
	t.Helper()
	for _, workers := range []int{1, 4} {
		got := tr.CountAllMulti(radii, workers)
		if len(got) != len(radii) {
			t.Fatalf("%s: %d rows, want %d", label, len(got), len(radii))
		}
		for e, r := range radii {
			for i, p := range pts {
				if want := tr.RangeCount(p, r); got[e][i] != want {
					t.Fatalf("%s (workers=%d): counts[%d][%d] (r=%v) = %d, want RangeCount = %d",
						label, workers, e, i, r, got[e][i], want)
				}
			}
		}
	}
}

func TestCountAllMultiMatchesRangeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(400)
		dim := 1 + rng.Intn(4)
		pts := randPoints(rng, n, dim)
		for i := rng.Intn(25); i > 0; i-- { // duplicates stress zero distances
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}
		tr := New(pts)
		assertCountAllMatches(t, fmt.Sprintf("trial%d", trial), tr, pts, randRadii(rng, 150))
	}
}

func TestCountAllMultiClustered(t *testing.T) {
	// Clustered data exercises the wholesale box-vs-box credits that
	// uniform data rarely triggers at small radii.
	rng := rand.New(rand.NewSource(42))
	var pts [][]float64
	for b := 0; b < 6; b++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 60; i++ {
			pts = append(pts, []float64{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5})
		}
	}
	tr := New(pts)
	assertCountAllMatches(t, "clustered", tr, pts, []float64{0.1, 1, 5, 40, 100, 200})
}

func TestCountAllMultiEdges(t *testing.T) {
	empty := New(nil)
	if got := empty.CountAllMulti([]float64{1, 2}, 1); len(got) != 2 || len(got[0]) != 0 {
		t.Errorf("empty tree: got %v, want two empty rows", got)
	}
	tr := New([][]float64{{0, 0}, {3, 0}})
	if got := tr.CountAllMulti(nil, 1); len(got) != 0 {
		t.Errorf("empty radii: got %v, want no rows", got)
	}
	one := New([][]float64{{7, 7}})
	if got := one.CountAllMulti([]float64{0, 5}, 1); got[0][0] != 1 || got[1][0] != 1 {
		t.Errorf("singleton: got %v, want all-1", got)
	}
	dup := New([][]float64{{5, 5}, {5, 5}, {5, 5}})
	got := dup.CountAllMulti([]float64{0, 1}, 1)
	for e := range got {
		for i := range got[e] {
			if got[e][i] != 3 {
				t.Errorf("duplicates: counts[%d][%d] = %d, want 3", e, i, got[e][i])
			}
		}
	}
}

// TestCountAllMultiRepeatable guards the scratch-space cleanup: a second
// call on the same tree must see clean accumulators and return the same
// matrix.
func TestCountAllMultiRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randPoints(rng, 300, 2)
	tr := New(pts)
	radii := randRadii(rng, 150)
	first := tr.CountAllMulti(radii, 1)
	second := tr.CountAllMulti(radii, 2)
	for e := range first {
		for i := range first[e] {
			if first[e][i] != second[e][i] {
				t.Fatalf("second call differs at [%d][%d]: %d vs %d", e, i, first[e][i], second[e][i])
			}
		}
	}
}
