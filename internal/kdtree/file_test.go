package kdtree

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"mccatch/internal/arena"
)

func filePoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		pts[i] = row
	}
	return pts
}

// queryEquivalent drives every public query path on both trees and
// demands identical answers — the save→open equivalence contract.
func queryEquivalent(t *testing.T, label string, want, got *Tree, queries [][]float64) {
	t.Helper()
	if want.Size() != got.Size() {
		t.Fatalf("%s: size %d vs %d", label, want.Size(), got.Size())
	}
	if d1, d2 := want.DiameterEstimate(), got.DiameterEstimate(); d1 != d2 {
		t.Errorf("%s: diameter %v vs %v", label, d1, d2)
	}
	radii := []float64{0.5, 2, 8, 32}
	for qi, q := range queries {
		for _, r := range radii {
			if c1, c2 := want.RangeCount(q, r), got.RangeCount(q, r); c1 != c2 {
				t.Fatalf("%s: RangeCount(q%d, %v) %d vs %d", label, qi, r, c1, c2)
			}
			if i1, i2 := want.RangeQuery(q, r), got.RangeQuery(q, r); !reflect.DeepEqual(i1, i2) {
				t.Fatalf("%s: RangeQuery(q%d, %v) mismatch", label, qi, r)
			}
		}
		if m1, m2 := want.RangeCountMulti(q, radii), got.RangeCountMulti(q, radii); !reflect.DeepEqual(m1, m2) {
			t.Fatalf("%s: RangeCountMulti(q%d) %v vs %v", label, qi, m1, m2)
		}
		i1, d1 := want.KNN(q, 5)
		i2, d2 := got.KNN(q, 5)
		if !reflect.DeepEqual(i1, i2) || !reflect.DeepEqual(d1, d2) {
			t.Fatalf("%s: KNN(q%d) mismatch", label, qi)
		}
	}
	if a1, a2 := want.CountAllMulti(radii, 2), got.CountAllMulti(radii, 2); !reflect.DeepEqual(a1, a2) {
		t.Errorf("%s: CountAllMulti mismatch", label)
	}
	if b1, b2 := want.BridgeFirsts(queries, radii, 2), got.BridgeFirsts(queries, radii, 2); !reflect.DeepEqual(b1, b2) {
		t.Errorf("%s: BridgeFirsts mismatch", label)
	}
}

func TestFileRoundTripEquivalence(t *testing.T) {
	for _, n := range []int{1, 7, 300} { // 300 > kernel.Block → summary present
		pts := filePoints(n, 3, int64(n))
		built := New(pts)
		queries := filePoints(16, 3, 99)

		path := filepath.Join(t.TempDir(), "kd.mcidx")
		if err := built.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			label string
			opts  []arena.Option
		}{{"mmap", nil}, {"heap", []arena.Option{arena.WithHeap()}}} {
			opened, err := Open(path, tc.opts...)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, tc.label, err)
			}
			queryEquivalent(t, tc.label, built, opened, queries)
			if (built.sum != nil) != (opened.sum != nil) {
				t.Errorf("n=%d %s: summary presence diverged", n, tc.label)
			}
			// A file-backed tree must itself round-trip: save it again and
			// compare the bytes against the original save.
			var first, second bytes.Buffer
			if err := built.Save(&first); err != nil {
				t.Fatal(err)
			}
			if err := opened.Save(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("n=%d %s: re-save not byte-identical", n, tc.label)
			}
			if err := opened.Close(); err != nil {
				t.Fatal(err)
			}
			if err := opened.Close(); err != nil { // idempotent
				t.Fatal(err)
			}
		}
		if err := built.Close(); err != nil { // no-op for in-memory trees
			t.Fatal(err)
		}
	}
}

func TestFileEmptyTree(t *testing.T) {
	built := New(nil)
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := arena.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	opened, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Size() != 0 || opened.DiameterEstimate() != 0 {
		t.Errorf("empty tree round trip: size %d", opened.Size())
	}
}

// TestFileStructuralValidation corrupts arena invariants in ways the
// checksums cannot catch (the writer recomputes CRCs over the corrupted
// slices) and checks Open refuses each file rather than panicking later.
func TestFileStructuralValidation(t *testing.T) {
	pts := filePoints(64, 2, 5)
	for name, mutate := range map[string]func(*Tree){
		"root count":      func(tr *Tree) { tr.count[0] = 3 },
		"count overflow":  func(tr *Tree) { tr.count[20] = 1 << 20 },
		"negative count":  func(tr *Tree) { tr.count[20] = -1 },
		"left cycle":      func(tr *Tree) { tr.left[20] = 0 },
		"bad axis":        func(tr *Tree) { tr.axis[7] = 9 },
		"duplicate id":    func(tr *Tree) { tr.ids[3] = tr.ids[4] },
		"id out of range": func(tr *Tree) { tr.ids[3] = 1 << 30 },
		"parent mismatch": func(tr *Tree) { tr.parent[1] = 5 },
	} {
		t.Run(name, func(t *testing.T) {
			tr := New(pts)
			mutate(tr)
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatal(err)
			}
			f, err := arena.Decode(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := FromFile(f); !errors.Is(err, arena.ErrBadIndexFile) {
				t.Errorf("corrupted %s accepted: %v", name, err)
			}
		})
	}
}

func TestFileKindMismatch(t *testing.T) {
	tr := New(filePoints(8, 2, 1))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = byte(arena.KindR) // kind field, little-endian low byte
	f, err := arena.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromFile(f); !errors.Is(err, arena.ErrIndexKind) {
		t.Errorf("wrong kind accepted: %v", err)
	}
}

func TestFileDiameterFinite(t *testing.T) {
	tr := New(filePoints(32, 4, 2))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := arena.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(f.Diameter) || f.Diameter <= 0 {
		t.Errorf("stored diameter %v", f.Diameter)
	}
	if f.Diameter != tr.DiameterEstimate() {
		t.Errorf("stored %v, estimate %v", f.Diameter, tr.DiameterEstimate())
	}
}
