package kdtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/metric"
)

// This file implements the dual-tree multi-radius self-join for the
// kd-tree (index.SelfMultiCounter): the neighbor counts of EVERY indexed
// point at EVERY radius of a nested schedule, from one traversal of the
// tree against itself. Where per-point probing re-derives the same
// box-level geometry once per query point, the dual traversal classifies
// PAIRS of subtrees: the min/max squared distances between two bounding
// boxes bracket every point pair under them, so whole blocks of pairs are
// credited (or discarded) wholesale, and only pairs straddling some
// radius descend toward point-level distances. The join is symmetric, so
// unordered subtree pairs are visited once and credited both ways. All
// comparisons are on squared distances — no math.Sqrt anywhere.
//
// A kd-tree node carries its own point besides two subtrees, so the
// decomposition of an ambiguous pair has three shapes: subtree-vs-subtree
// (symVisit), point-vs-subtree (pointVisit) and point-vs-point (inline).
// The accumulator, scheduling and merge machinery is internal/dualjoin's.

// dualCtx is one traversal unit's context: the squared radius schedule
// and the unit's accumulator.
type dualCtx struct {
	radii2 []float64
	acc    *dualjoin.Acc[*node]
}

// creditPoint and creditNode write the accumulator rows raw — crediting
// sits in the join's innermost loop and the concrete-receiver helpers
// inline where dualjoin.Acc's generic methods cannot (see dualjoin.Acc).
func (c *dualCtx) creditPoint(id, from, to, cnt int) {
	row := c.acc.Point[id*c.acc.Stride:]
	row[from] += cnt
	row[to] -= cnt
}

func (c *dualCtx) creditNode(n *node, from, to, cnt int) {
	row := c.acc.Nodes[n]
	if row == nil {
		row = make([]int, c.acc.Stride)
		c.acc.Nodes[n] = row
	}
	row[from] += cnt
	row[to] -= cnt
}

// CountAllMulti returns counts[e][id] = the number of indexed points
// within radii[e] of point id (inclusive, so ≥ 1), for every indexed
// point and every radius of the ascending schedule radii — computed by a
// dual-tree traversal instead of per-point probes. Counts are exact:
// bounds only ever defer ambiguous pairs, never approximate them.
// workers ≤ 0 means all cores, 1 means serial; the result is identical
// for every value.
func (t *Tree) CountAllMulti(radii []float64, workers int) [][]int {
	a := len(radii)
	units := []func(*dualCtx){}
	if t.root != nil {
		units = seedUnits(t.root)
	}
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}
	return dualjoin.CountMatrix(a, t.size, workers, len(units),
		func(u int, acc *dualjoin.Acc[*node]) {
			c := dualCtx{radii2: radii2, acc: acc}
			units[u](&c)
		},
		addSubtree)
}

// addSubtree adds a difference row to every point under n — n's own
// point included.
func addSubtree(n *node, diff, merged []int) {
	if n == nil {
		return
	}
	row := merged[n.id*len(diff):]
	for k, v := range diff {
		row[k] += v
	}
	addSubtree(n.left, diff, merged)
	addSubtree(n.right, diff, merged)
}

// seedUnitTarget is how many seeds (subtrees plus loose points) the root
// is expanded into before pairing them up as work units: ~24 seeds give
// ~300 units, plenty of slack for rebalancing across any realistic
// worker count while keeping per-unit accumulator overhead negligible.
const seedUnitTarget = 24

// seedUnits deterministically expands the root into seeds — disjoint
// subtrees plus the points of the expanded internal nodes — and returns
// one closure per unordered seed pair (self-pairs included). The unit set
// depends only on the tree, never on the worker count, and together the
// units cover every unordered point pair exactly once.
func seedUnits(root *node) []func(*dualCtx) {
	subs, pts := seedSplit(root)
	var units []func(*dualCtx)
	for i, s := range subs {
		s := s
		units = append(units, func(c *dualCtx) { c.selfVisit(s, 0, len(c.radii2)) })
		for _, o := range subs[i+1:] {
			o := o
			units = append(units, func(c *dualCtx) { c.symVisit(s, o, 0, len(c.radii2)) })
		}
		for _, p := range pts {
			p := p
			units = append(units, func(c *dualCtx) { c.pointVisit(p.point, p.id, s, 0, len(c.radii2)) })
		}
	}
	for i, p := range pts {
		p := p
		// A point with itself: d = 0 lies within every radius.
		units = append(units, func(c *dualCtx) { c.creditPoint(p.id, 0, len(c.radii2), 1) })
		for _, q := range pts[i+1:] {
			q := q
			units = append(units, func(c *dualCtx) {
				a := len(c.radii2)
				d2 := metric.SquaredEuclidean(p.point, q.point)
				b := 0
				for b < a && d2 > c.radii2[b] {
					b++
				}
				if b < a {
					c.creditPoint(p.id, b, a, 1)
					c.creditPoint(q.id, b, a, 1)
				}
			})
		}
	}
	return units
}

// seedSplit deterministically expands root into ~seedUnitTarget seeds:
// disjoint subtrees plus the loose points of the expanded internal nodes.
// Together the seeds cover every point exactly once, and the split
// depends only on the tree — never on the worker count — so both the
// self-join's pair units and the cross-join's per-seed units are
// schedule-independent.
func seedSplit(root *node) (subs, pts []*node) {
	subs = []*node{root}
	for len(subs)+len(pts) < seedUnitTarget {
		// Expand the largest subtree (ties toward the smaller point id,
		// which is unique per node).
		best := -1
		for i, s := range subs {
			if s.size < 2 {
				continue
			}
			if best < 0 || s.size > subs[best].size ||
				(s.size == subs[best].size && s.id < subs[best].id) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		s := subs[best]
		subs = append(subs[:best], subs[best+1:]...)
		pts = append(pts, s)
		if s.left != nil {
			subs = append(subs, s.left)
		}
		if s.right != nil {
			subs = append(subs, s.right)
		}
	}
	return subs, pts
}

// boxDiag2 is the squared diagonal of n's bounding box — the largest
// squared distance any pair of points under n can realize.
func boxDiag2(n *node) float64 {
	return dualjoin.SqBoxDiag(n.lo, n.hi)
}

// selfVisit classifies the pair of subtree A with itself for the radius
// window [lo, hi): radii at and above hi have already been credited with
// the whole subtree by an ancestor pair. Self-pairs put the minimum
// distance at 0, so no radius ever drops from the bottom of the window.
func (c *dualCtx) selfVisit(A *node, lo, hi int) {
	if A == nil {
		return
	}
	smax := boxDiag2(A)
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	if nh < hi {
		c.creditNode(A, nh, hi, A.size)
	}
	if lo >= nh {
		return
	}
	// Ambiguous radii [lo, nh): decompose into A's own point against
	// itself (d = 0: within every radius) and against each subtree, the
	// two subtrees against themselves, and against each other.
	c.creditPoint(A.id, lo, nh, 1)
	c.pointVisit(A.point, A.id, A.left, lo, nh)
	c.pointVisit(A.point, A.id, A.right, lo, nh)
	c.selfVisit(A.left, lo, nh)
	c.selfVisit(A.right, lo, nh)
	c.symVisit(A.left, A.right, lo, nh)
}

// symVisit classifies the unordered pair of DISJOINT subtrees (A, B) for
// the radius window [lo, hi): radii below lo are already known to
// separate the two boxes, radii at and above hi have been credited by an
// ancestor pair. Every credit goes both ways, so each unordered pair is
// traversed exactly once.
func (c *dualCtx) symVisit(A, B *node, lo, hi int) {
	if A == nil || B == nil {
		return
	}
	smin, smax := dualjoin.SqMinMaxBoxBox(A.lo, A.hi, B.lo, B.hi)
	for lo < hi && smin > c.radii2[lo] {
		lo++ // the boxes are fully separated at the smallest radii
	}
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++
	}
	if nh < hi {
		c.creditNode(A, nh, hi, B.size)
		c.creditNode(B, nh, hi, A.size)
	}
	if lo >= nh {
		return
	}
	// Descend the side with the larger box; ties split A, keeping the
	// descent deterministic.
	down, other := A, B
	if boxDiag2(B) > boxDiag2(A) {
		down, other = B, A
	}
	c.pointVisit(down.point, down.id, other, lo, nh)
	c.symVisit(down.left, other, lo, nh)
	c.symVisit(down.right, other, lo, nh)
}

// pointVisit classifies the pair of a single point (id) with subtree B
// for the radius window [lo, hi), crediting both directions: B's points
// into the point's row, and the point into B's rows.
func (c *dualCtx) pointVisit(p []float64, id int, B *node, lo, hi int) {
	if B == nil {
		return
	}
	smin, smax := sqMinMaxDistToBox(p, B.lo, B.hi)
	for lo < hi && smin > c.radii2[lo] {
		lo++
	}
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++
	}
	if nh < hi {
		c.creditPoint(id, nh, hi, B.size)
		c.creditNode(B, nh, hi, 1)
	}
	if lo >= nh {
		return
	}
	if d2 := metric.SquaredEuclidean(p, B.point); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditPoint(id, b, nh, 1)
		c.creditPoint(B.id, b, nh, 1)
	}
	c.pointVisit(p, id, B.left, lo, nh)
	c.pointVisit(p, id, B.right, lo, nh)
}
