package kdtree

import (
	"mccatch/internal/dualjoin"
	"mccatch/internal/kernel"
)

// This file implements the dual-tree multi-radius self-join for the
// kd-tree (index.SelfMultiCounter): the neighbor counts of EVERY indexed
// point at EVERY radius of a nested schedule, from one traversal of the
// tree against itself. Where per-point probing re-derives the same
// box-level geometry once per query point, the dual traversal classifies
// PAIRS of subtrees: the min/max squared distances between two bounding
// boxes bracket every point pair under them, so whole blocks of pairs are
// credited (or discarded) wholesale, and only pairs straddling some
// radius descend toward point-level distances. The join is symmetric, so
// unordered subtree pairs are visited once and credited both ways. All
// comparisons are on squared distances — no math.Sqrt anywhere.
//
// The arena layout makes the crediting flat: a kd slot IS both a node
// index and an element position (preorder), so point credits address
// Acc's position rows directly and a subtree credit is the slot's
// contiguous preorder range [p, p+count[p]). A kd slot carries its own
// point besides two subtrees, so the decomposition of an ambiguous pair
// has three shapes: subtree-vs-subtree (symVisit), point-vs-subtree
// (pointVisit) and point-vs-point (inline). The accumulator, scheduling
// and merge machinery is internal/dualjoin's.

// dualCtx is one traversal unit's context: the tree, the squared radius
// schedule and the unit's accumulator.
type dualCtx struct {
	t      *Tree
	radii2 []float64
	acc    *dualjoin.Acc
	// rows/stride cache acc.Point: in direct (serial) mode the hottest
	// credit sites write the two row adds in place — the accumulator
	// method with its buffered fallback is beyond the inlining budget.
	rows   []int
	stride int
}

// creditPair buckets one close point pair, crediting both slots.
func (c *dualCtx) creditPair(p, q int32, b, nh int) {
	if rows := c.rows; rows != nil {
		rp := rows[int(p)*c.stride:]
		rp[b]++
		rp[nh]--
		rq := rows[int(q)*c.stride:]
		rq[b]++
		rq[nh]--
		return
	}
	c.acc.CreditPos(p, b, nh, 1)
	c.acc.CreditPos(q, b, nh, 1)
}

// CountAllMulti returns counts[e][id] = the number of indexed points
// within radii[e] of point id (inclusive, so ≥ 1), for every indexed
// point and every radius of the ascending schedule radii — computed by a
// dual-tree traversal instead of per-point probes. Counts are exact:
// bounds only ever defer ambiguous pairs, never approximate them.
// workers ≤ 0 means all cores, 1 means serial; the result is identical
// for every value.
func (t *Tree) CountAllMulti(radii []float64, workers int) [][]int {
	a := len(radii)
	var units []func(*dualCtx)
	if t.size > 0 {
		units = t.seedUnits()
	}
	radii2 := make([]float64, a)
	for e, r := range radii {
		radii2[e] = r * r
	}
	return dualjoin.CountMatrix(a, t.size, t.size, workers, len(units),
		func(u int, acc *dualjoin.Acc) {
			c := dualCtx{t: t, radii2: radii2, acc: acc, rows: acc.Point, stride: acc.Stride}
			units[u](&c)
		},
		func(node int32) (int32, int32) { return node, node + t.count[node] },
		func(pos int32) int { return int(t.ids[pos]) })
}

// seedUnitTarget is how many seeds (subtrees plus loose points) the root
// is expanded into before pairing them up as work units: ~24 seeds give
// ~300 units, plenty of slack for rebalancing across any realistic
// worker count while keeping per-unit accumulator overhead negligible.
const seedUnitTarget = 24

// seedUnits deterministically expands the root into seeds — disjoint
// subtrees plus the points of the expanded internal slots — and returns
// one closure per unordered seed pair (self-pairs included). The unit set
// depends only on the tree, never on the worker count, and together the
// units cover every unordered point pair exactly once.
func (t *Tree) seedUnits() []func(*dualCtx) {
	subs, pts := t.seedSplit()
	var units []func(*dualCtx)
	for i, s := range subs {
		s := s
		units = append(units, func(c *dualCtx) { c.selfVisit(s, 0, len(c.radii2)) })
		for _, o := range subs[i+1:] {
			o := o
			units = append(units, func(c *dualCtx) { c.symVisit(s, o, 0, len(c.radii2)) })
		}
		for _, p := range pts {
			p := p
			units = append(units, func(c *dualCtx) { c.pointVisit(p, s, 0, len(c.radii2)) })
		}
	}
	for i, p := range pts {
		p := p
		// A point with itself: d = 0 lies within every radius.
		units = append(units, func(c *dualCtx) { c.acc.CreditPos(p, 0, len(c.radii2), 1) })
		for _, q := range pts[i+1:] {
			q := q
			units = append(units, func(c *dualCtx) {
				a := len(c.radii2)
				d2 := kernel.SqDist(c.t.point(p), c.t.point(q))
				b := 0
				for b < a && d2 > c.radii2[b] {
					b++
				}
				if b < a {
					c.creditPair(p, q, b, a)
				}
			})
		}
	}
	return units
}

// seedSplit deterministically expands the root into ~seedUnitTarget
// seeds: disjoint subtree slots plus the loose points (slots) of the
// expanded internal nodes. Together the seeds cover every point exactly
// once, and the split depends only on the tree — never on the worker
// count — so both the self-join's pair units and the cross-join's
// per-seed units are schedule-independent.
func (t *Tree) seedSplit() (subs, pts []int32) {
	subs = []int32{0}
	for len(subs)+len(pts) < seedUnitTarget {
		// Expand the largest subtree (ties toward the smaller point id,
		// which is unique per slot).
		best := -1
		for i, s := range subs {
			if t.count[s] < 2 {
				continue
			}
			if best < 0 || t.count[s] > t.count[subs[best]] ||
				(t.count[s] == t.count[subs[best]] && t.ids[s] < t.ids[subs[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		s := subs[best]
		subs = append(subs[:best], subs[best+1:]...)
		pts = append(pts, s)
		if l := t.left[s]; l >= 0 {
			subs = append(subs, l)
		}
		if r := t.right[s]; r >= 0 {
			subs = append(subs, r)
		}
	}
	return subs, pts
}

// boxDiag2 is the squared diagonal of slot p's bounding box — the largest
// squared distance any pair of points under p can realize.
func (t *Tree) boxDiag2(p int32) float64 {
	lo, hi := t.box(p)
	return kernel.SqBoxDiag(lo, hi)
}

// scanPointRange resolves slot p's point against every point of slots
// [first, last) for the ambiguous window [lo, nh) by block kernels,
// crediting each close pair both ways exactly as the per-slot recursion
// would. No quantized prefilter here: the threshold is the ambiguous
// window's UPPER edge, which the subtree's own box already straddles,
// so per-block summary bounds almost never prune and their cost rivals
// the exact arithmetic they'd save (bypassing them halved the 10k x 8d
// sweep cell).
func (c *dualCtx) scanPointRange(p int32, first, last, lo, nh int) {
	t := c.t
	q := t.point(p)
	// Callers bound the range by scanCutoff, so one kernel call fills
	// every distance of the scanned subtree into a stack buffer.
	var d2 [scanCutoff]float64
	n := last - first
	kernel.Dists(d2[:n], q, t.pts, first, last)
	r2 := c.radii2
	thr := r2[nh-1]
	for i := 0; i < n; i++ {
		if v := d2[i]; v <= thr {
			b := lo
			for v > r2[b] {
				b++
			}
			c.creditPair(p, int32(first+i), b, nh)
		}
	}
}

// selfVisit classifies the pair of subtree A with itself for the radius
// window [lo, hi): radii at and above hi have already been credited with
// the whole subtree by an ancestor pair. Self-pairs put the minimum
// distance at 0, so no radius ever drops from the bottom of the window.
func (c *dualCtx) selfVisit(A int32, lo, hi int) {
	t := c.t
	smax := t.boxDiag2(A)
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++ // radii [nh, hi) contain every pair: settle them at once
	}
	if nh < hi {
		c.acc.CreditNode(A, nh, hi, int(t.count[A]))
	}
	if lo >= nh {
		return
	}
	if cnt := int(t.count[A]); cnt <= pairScanCutoff {
		// Small ambiguous subtree: resolve every unordered pair within
		// its contiguous preorder range by block kernels — the self-pairs
		// (d = 0) lie within every open radius.
		for i := int(A); i < int(A)+cnt; i++ {
			c.acc.CreditPos(int32(i), lo, nh, 1)
			if i+1 < int(A)+cnt {
				c.scanPointRange(int32(i), i+1, int(A)+cnt, lo, nh)
			}
		}
		return
	}
	// Ambiguous radii [lo, nh): decompose into A's own point against
	// itself (d = 0: within every radius) and against each subtree, the
	// two subtrees against themselves, and against each other.
	c.acc.CreditPos(A, lo, nh, 1)
	l, r := t.left[A], t.right[A]
	if l >= 0 {
		c.pointVisit(A, l, lo, nh)
		c.selfVisit(l, lo, nh)
	}
	if r >= 0 {
		c.pointVisit(A, r, lo, nh)
		c.selfVisit(r, lo, nh)
	}
	if l >= 0 && r >= 0 {
		c.symVisit(l, r, lo, nh)
	}
}

// symVisit classifies the unordered pair of DISJOINT subtrees (A, B) for
// the radius window [lo, hi): radii below lo are already known to
// separate the two boxes, radii at and above hi have been credited by an
// ancestor pair. Every credit goes both ways, so each unordered pair is
// traversed exactly once.
func (c *dualCtx) symVisit(A, B int32, lo, hi int) {
	t := c.t
	alo, ahi := t.box(A)
	blo, bhi := t.box(B)
	smin, smax := dualjoin.SqMinMaxBoxBox(alo, ahi, blo, bhi)
	for lo < hi && smin > c.radii2[lo] {
		lo++ // the boxes are fully separated at the smallest radii
	}
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++
	}
	if nh < hi {
		c.acc.CreditNode(A, nh, hi, int(t.count[B]))
		c.acc.CreditNode(B, nh, hi, int(t.count[A]))
	}
	if lo >= nh {
		return
	}
	if ca, cb := int(t.count[A]), int(t.count[B]); ca <= pairScanCutoff && cb <= pairScanCutoff {
		// Both sides small: resolve the cross pairs of the two contiguous
		// preorder ranges directly.
		for i := int(A); i < int(A)+ca; i++ {
			c.scanPointRange(int32(i), int(B), int(B)+cb, lo, nh)
		}
		return
	}
	// Descend the side with the larger box; ties split A, keeping the
	// descent deterministic.
	down, other := A, B
	if t.boxDiag2(B) > t.boxDiag2(A) {
		down, other = B, A
	}
	c.pointVisit(down, other, lo, nh)
	if l := t.left[down]; l >= 0 {
		c.symVisit(l, other, lo, nh)
	}
	if r := t.right[down]; r >= 0 {
		c.symVisit(r, other, lo, nh)
	}
}

// pointVisit classifies the pair of slot p's single point with subtree B
// for the radius window [lo, hi), crediting both directions: B's points
// into the point's row, and the point into B's rows.
func (c *dualCtx) pointVisit(p, B int32, lo, hi int) {
	t := c.t
	q := t.point(p)
	blo, bhi := t.box(B)
	smin, smax := sqMinMaxDistToBox(q, blo, bhi)
	for lo < hi && smin > c.radii2[lo] {
		lo++
	}
	nh := lo
	for nh < hi && smax > c.radii2[nh] {
		nh++
	}
	if nh < hi {
		c.acc.CreditPos(p, nh, hi, int(t.count[B]))
		c.acc.CreditNode(B, nh, hi, 1)
	}
	if lo >= nh {
		return
	}
	if cnt := int(t.count[B]); cnt <= scanCutoff {
		c.scanPointRange(p, int(B), int(B)+cnt, lo, nh)
		return
	}
	if d2 := kernel.SqDist(q, t.point(B)); d2 <= c.radii2[nh-1] {
		b := lo
		for d2 > c.radii2[b] {
			b++
		}
		c.creditPair(p, B, b, nh)
	}
	if l := t.left[B]; l >= 0 {
		c.pointVisit(p, l, lo, nh)
	}
	if r := t.right[B]; r >= 0 {
		c.pointVisit(p, r, lo, nh)
	}
}
