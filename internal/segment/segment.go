// Package segment is the incremental layer over the frozen index arenas:
// an LSM-style Mutable index that absorbs inserts and deletes in front of
// one or more immutable "segments" (frozen arena trees built by any
// index.Builder), and answers every query of the MCCATCH pipeline as a
// merge across them.
//
// The design mirrors an LSM tree transplanted to metric indexes:
//
//   - Inserts land in a small mutable MEMTABLE (a plain slice, scanned
//     linearly — at its bounded size a scan beats any tree). When the
//     memtable reaches its cap it is FROZEN: a new immutable segment is
//     bulk-built over its elements and the memtable empties.
//   - Deletes are TOMBSTONES: a segment element is marked dead and kept in
//     the arena; merged answers subtract the dead elements' contributions
//     (a count probe subtracts the dead elements within the radius, a
//     range query filters them, KNN over-fetches by the tombstone count).
//     Memtable deletes splice the entry out directly.
//   - COMPACTION rebuilds everything — all segments' live elements plus
//     the memtable, in global id order — into ONE fresh segment with no
//     tombstones. A compacted Mutable is literally a fresh bulk build
//     over the live set, which is what makes the equivalence proof
//     (identical pipeline Result, byte-identical CLI output) exact.
//
// Identity discipline: every insert takes a monotone sequence number (its
// permanent handle); the live set in sequence order defines the DENSE
// GLOBAL IDS 0..Size()-1 that all query answers are keyed by. Segments
// are frozen in sequence order and the memtable holds the newest
// elements, so walking segments in creation order and then the memtable,
// skipping tombstones, enumerates the live set in global id order — and a
// fresh index bulk-built over Live() assigns exactly the same ids, so
// merged answers and fresh-build answers agree element for element.
//
// Every merge is EXACT, never approximate: counts add across segments,
// per-query minima (bridge firsts, KNN) take the minimum, and tombstone
// corrections are computed with real metric evaluations against the few
// dead elements. Per-segment radius fences (pivot distance vs. the
// segment's covering radius) skip segments a query ball cannot touch.
package segment

import (
	"mccatch/internal/diameter"
	"mccatch/internal/index"
	"mccatch/internal/metric"
)

// DefaultMemtableCap is the memtable size at which Insert auto-freezes a
// new segment when no explicit cap was configured. Small enough that the
// linear memtable scans stay negligible next to the frozen-arena
// traversals they ride along with (≈1% of a 25k-element dataset).
const DefaultMemtableCap = 256

// loc addresses one live element: segment index (or -1 for the memtable)
// and position within it.
type loc struct {
	seg   int
	local int
}

// memEntry is one memtable element with its permanent sequence handle.
type memEntry[T any] struct {
	elem T
	seq  int64
}

// seg is one immutable segment: a frozen arena tree over a snapshot of
// elements, plus the tombstone bookkeeping the merge needs.
type seg[T any] struct {
	tree  index.Index[T]
	elems []T     // local id = build position (sequence order)
	seqs  []int64 // sequence handle per local id
	dead  []bool  // tombstones
	deadN int
	// deadElems caches the tombstoned elements so count corrections scan
	// a short dense slice instead of the whole segment.
	deadElems []T
	// deadTree is a lazily built index over deadElems (nil until needed,
	// reset on every Delete): tombstone corrections are answered by the
	// SAME backend that answers the segment's own counts, so both sides
	// of a subtraction resolve boundary pairs with identical arithmetic
	// (e.g. the R-tree's squared-domain compare) and the merge stays
	// bit-equal to a fresh build even when a distance lands exactly on a
	// radius.
	deadTree index.Index[T]
	// global maps local id → dense global id (-1 when dead); refreshed
	// lazily by Mutable.refreshIDs.
	global []int
	// Radius fence: every element lies within maxR of pivot, so a query
	// ball B(q, r) with d(q, pivot) - maxR > r cannot touch the segment
	// (live or dead) and the whole segment is skipped.
	pivot T
	maxR  float64
}

func (s *seg[T]) liveCount() int { return len(s.elems) - s.deadN }

// fenced reports whether the ball B(q, r) provably cannot touch the
// segment, given dq = d(q, pivot). The relative slack absorbs the
// floating-point rounding of the triangle-inequality arithmetic (and of
// backends that resolve boundary pairs in the squared domain), so the
// fence can only skip segments a fresh build would also find empty.
func (s *seg[T]) fenced(dq, r float64) bool {
	return dq-s.maxR > r+1e-9*(dq+s.maxR+r)
}

// Mutable is the incremental index: an index.Index (plus every optional
// extension the joins dispatch on) over a dataset that supports Insert
// and Delete between queries. Methods are not safe for concurrent
// mutation; the worker fan-out INSIDE one query call is.
type Mutable[T any] struct {
	d      metric.Distance[T]
	build  index.Builder[T]
	memCap int

	segs []*seg[T]
	mem  []memEntry[T]
	// memTree is a lazily built index over the memtable (nil until needed,
	// reset on every memtable mutation). Like seg.deadTree it exists for
	// bit-equal merges: the memtable's contribution to every count is
	// answered by the same backend a fresh build would use, not by a raw
	// metric scan whose boundary rounding could differ.
	memTree index.Index[T]

	nextSeq int64
	handles map[int64]loc

	// epoch counts mutations of the LIVE SET: Insert and successful
	// Delete bump it, Freeze and Compact do not (they reorganize storage
	// without changing any query answer). Cache layers key derived state
	// — radii schedules, detection Results — on it, so an unchanged epoch
	// guarantees the cached answer is still exact. Read and written under
	// the same no-concurrent-mutation contract as every other method.
	epoch uint64

	// Dense-id cache, rebuilt lazily after any mutation.
	idsDirty bool
	refs     []loc // global id → location
	memBase  int   // global id of the first memtable entry
	live     int

	// Bounding-box diameter fast path (see DeclareMonotone): the live
	// set's box is grown in O(dim) on Insert and rebuilt lazily after
	// Delete (the only mutation that can shrink it).
	monotone bool
	boxLo    []float64
	boxHi    []float64
	boxDirty bool
}

// NewMutable returns an empty incremental index building its frozen
// segments with build (the same builder a one-shot run would use) under
// the metric d. memCap ≤ 0 selects DefaultMemtableCap.
func NewMutable[T any](d metric.Distance[T], build index.Builder[T], memCap int) *Mutable[T] {
	if memCap <= 0 {
		memCap = DefaultMemtableCap
	}
	return &Mutable[T]{d: d, build: build, memCap: memCap, handles: map[int64]loc{}}
}

// SetMemtableCap changes the auto-freeze threshold; n ≤ 0 restores the
// default. The next Insert applies it.
func (m *Mutable[T]) SetMemtableCap(n int) {
	if n <= 0 {
		n = DefaultMemtableCap
	}
	m.memCap = n
}

// Insert adds x and returns its permanent handle (for Delete). When the
// memtable reaches its cap the insert freezes it into a new segment.
func (m *Mutable[T]) Insert(x T) int64 {
	seq := m.nextSeq
	m.nextSeq++
	m.epoch++
	m.mem = append(m.mem, memEntry[T]{elem: x, seq: seq})
	m.handles[seq] = loc{seg: -1, local: len(m.mem) - 1}
	m.memTree = nil
	m.idsDirty = true
	m.growBox(x)
	if len(m.mem) >= m.memCap {
		m.Freeze()
	}
	return seq
}

// Delete removes the element behind handle and reports whether it was
// live. A memtable element is spliced out; a segment element becomes a
// tombstone that merged queries subtract until the next Compact.
func (m *Mutable[T]) Delete(handle int64) bool {
	l, ok := m.handles[handle]
	if !ok {
		return false
	}
	delete(m.handles, handle)
	m.epoch++
	m.idsDirty = true
	m.boxDirty = true
	if l.seg < 0 {
		m.mem = append(m.mem[:l.local], m.mem[l.local+1:]...)
		for j := l.local; j < len(m.mem); j++ {
			m.handles[m.mem[j].seq] = loc{seg: -1, local: j}
		}
		m.memTree = nil
		return true
	}
	s := m.segs[l.seg]
	s.dead[l.local] = true
	s.deadN++
	s.deadElems = append(s.deadElems, s.elems[l.local])
	s.deadTree = nil
	return true
}

// Freeze turns the current memtable into a new immutable segment (no-op
// when the memtable is empty). Queries afterwards run entirely over
// frozen arenas until the next insert.
func (m *Mutable[T]) Freeze() {
	if len(m.mem) == 0 {
		return
	}
	elems := make([]T, len(m.mem))
	seqs := make([]int64, len(m.mem))
	for k, e := range m.mem {
		elems[k] = e.elem
		seqs[k] = e.seq
	}
	m.segs = append(m.segs, m.newSeg(elems, seqs))
	si := len(m.segs) - 1
	for k, seq := range seqs {
		m.handles[seq] = loc{seg: si, local: k}
	}
	m.mem = m.mem[:0]
	m.memTree = nil
	m.idsDirty = true
}

// Compact rebuilds all segments and the memtable into ONE fresh segment
// over the live set in global id order, dropping every tombstone. The
// result is indistinguishable from a brand-new Mutable bulk-loaded with
// Live() — the equivalence tests pin this.
func (m *Mutable[T]) Compact() {
	m.refreshIDs()
	if m.live == 0 {
		m.segs, m.mem, m.memTree = nil, m.mem[:0], nil
		return
	}
	elems := make([]T, m.live)
	seqs := make([]int64, m.live)
	for g, l := range m.refs {
		if l.seg < 0 {
			elems[g] = m.mem[l.local].elem
			seqs[g] = m.mem[l.local].seq
		} else {
			elems[g] = m.segs[l.seg].elems[l.local]
			seqs[g] = m.segs[l.seg].seqs[l.local]
		}
	}
	m.segs = []*seg[T]{m.newSeg(elems, seqs)}
	m.mem = m.mem[:0]
	m.memTree = nil
	for k, seq := range seqs {
		m.handles[seq] = loc{seg: 0, local: k}
	}
	m.idsDirty = true
}

// newSeg freezes elems (in sequence order) into an immutable segment:
// bulk-builds the arena tree and measures the pivot fence.
func (m *Mutable[T]) newSeg(elems []T, seqs []int64) *seg[T] {
	s := &seg[T]{
		tree:   m.build(elems),
		elems:  elems,
		seqs:   seqs,
		dead:   make([]bool, len(elems)),
		global: make([]int, len(elems)),
		pivot:  elems[0],
	}
	for _, x := range elems {
		if r := m.d(s.pivot, x); r > s.maxR {
			s.maxR = r
		}
	}
	return s
}

// refreshIDs rebuilds the dense global ids after a mutation: segments in
// creation order, then the memtable, skipping tombstones — which is
// exactly ascending sequence order over the live set.
func (m *Mutable[T]) refreshIDs() {
	if !m.idsDirty {
		return
	}
	m.refs = m.refs[:0]
	for si, s := range m.segs {
		for k := range s.elems {
			if s.dead[k] {
				s.global[k] = -1
				continue
			}
			s.global[k] = len(m.refs)
			m.refs = append(m.refs, loc{seg: si, local: k})
		}
	}
	m.memBase = len(m.refs)
	for k := range m.mem {
		m.refs = append(m.refs, loc{seg: -1, local: k})
	}
	m.live = len(m.refs)
	m.idsDirty = false
}

// memIndex returns the lazily built index over the memtable, or nil when
// the memtable is empty. Callers that fan queries out across workers must
// materialize it (and any deadIndex) BEFORE the parallel section.
func (m *Mutable[T]) memIndex() index.Index[T] {
	if len(m.mem) == 0 {
		return nil
	}
	if m.memTree == nil {
		elems := make([]T, len(m.mem))
		for k, e := range m.mem {
			elems[k] = e.elem
		}
		m.memTree = m.build(elems)
	}
	return m.memTree
}

// deadIndex returns the lazily built index over s's tombstoned elements,
// or nil when the segment has none.
func (m *Mutable[T]) deadIndex(s *seg[T]) index.Index[T] {
	if len(s.deadElems) == 0 {
		return nil
	}
	if s.deadTree == nil {
		s.deadTree = m.build(s.deadElems)
	}
	return s.deadTree
}

// elemAt returns the live element with dense global id g.
func (m *Mutable[T]) elemAt(g int) T {
	l := m.refs[g]
	if l.seg < 0 {
		return m.mem[l.local].elem
	}
	return m.segs[l.seg].elems[l.local]
}

// Live returns the live elements in dense global id order — the dataset
// a fresh one-shot run over the current state would be given.
func (m *Mutable[T]) Live() []T {
	m.refreshIDs()
	out := make([]T, m.live)
	for g := range out {
		out[g] = m.elemAt(g)
	}
	return out
}

// Size returns the number of live elements.
func (m *Mutable[T]) Size() int {
	m.refreshIDs()
	return m.live
}

// Epoch returns the live-set mutation counter: it changes exactly when
// Insert or a successful Delete changes the live set, and stays put
// across Freeze and Compact (which cannot change any query answer).
// Equal epochs ⇒ identical live set ⇒ identical Detect/count results.
func (m *Mutable[T]) Epoch() uint64 { return m.epoch }

// Segments reports the current frozen-segment count (diagnostics/tests).
func (m *Mutable[T]) Segments() int { return len(m.segs) }

// MemtableLen reports the current memtable size (diagnostics/tests).
func (m *Mutable[T]) MemtableLen() int { return len(m.mem) }

// Tombstones reports the live tombstone count across all segments.
func (m *Mutable[T]) Tombstones() int {
	n := 0
	for _, s := range m.segs {
		n += s.deadN
	}
	return n
}

// DiameterEstimate estimates the live set's diameter with the shared
// structure-independent estimator — the same values every fresh-built
// backend reports (internal/diameter is data-only by construction), so
// the radii schedule of an incremental run matches a fresh run's.
//
// Under DeclareMonotone the answer comes from the incrementally
// maintained bounding box in O(dim) instead of an O(n) sweep — by
// construction the same value, because the estimator's vector branch
// returns exactly the box corner distance for any coordinate-monotone
// metric.
func (m *Mutable[T]) DiameterEstimate() float64 {
	m.refreshIDs()
	if m.live < 2 {
		return 0
	}
	if m.monotone {
		if est, ok := m.boxDiameter(); ok {
			return est
		}
	}
	return diameter.Estimate(m.Live(), m.d)
}

// DeclareMonotone asserts that T is []float64 and the metric is
// coordinate-monotone — d(a, b) never exceeds d(lo, hi) of a box
// containing a and b, true of every Lp norm. Under that assertion
// diameter.Estimate's vector branch always returns the bounding-box
// corner distance, so DiameterEstimate can answer from a box grown in
// O(dim) per Insert instead of sweeping the live set — the difference
// between constant-time and O(n) radii refreshes under sustained
// ingest. Declaring it for a non-monotone metric silently skews the
// radii schedule, so only constructors that choose the metric
// themselves (the Euclidean vector paths) call it.
func (m *Mutable[T]) DeclareMonotone() {
	m.monotone = true
	m.boxDirty = true
}

// growBox expands the live-set bounding box with a just-inserted
// element. A dirty box stays dirty (the next boxDiameter rebuilds it
// over the whole live set); an element that is not a []float64 after
// all permanently defers to the generic estimator.
func (m *Mutable[T]) growBox(x T) {
	if !m.monotone || m.boxDirty {
		return
	}
	p, ok := any(x).([]float64)
	if !ok || len(p) != len(m.boxLo) {
		m.boxDirty = true
		return
	}
	for j, v := range p {
		if v < m.boxLo[j] {
			m.boxLo[j] = v
		}
		if v > m.boxHi[j] {
			m.boxHi[j] = v
		}
	}
}

// boxDiameter returns the live set's bounding-box corner distance,
// rebuilding the box first when a Delete (or a pre-declaration insert)
// has invalidated it. ok is false when the elements turn out not to be
// vectors, in which case the caller falls through to the generic
// estimator. Callers hold the refreshIDs invariant and m.live >= 2.
func (m *Mutable[T]) boxDiameter() (float64, bool) {
	if m.boxDirty {
		first, ok := any(m.elemAt(0)).([]float64)
		if !ok {
			return 0, false
		}
		m.boxLo = append(m.boxLo[:0], first...)
		m.boxHi = append(m.boxHi[:0], first...)
		for g := 1; g < m.live; g++ {
			p, ok := any(m.elemAt(g)).([]float64)
			if !ok || len(p) != len(m.boxLo) {
				return 0, false
			}
			for j, v := range p {
				if v < m.boxLo[j] {
					m.boxLo[j] = v
				}
				if v > m.boxHi[j] {
					m.boxHi[j] = v
				}
			}
		}
		m.boxDirty = false
	}
	return m.d(any(m.boxLo).(T), any(m.boxHi).(T)), true
}
