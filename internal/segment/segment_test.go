package segment

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/slimtree"
)

func rtreeBuilder(sub [][]float64) index.Index[[]float64] { return rtree.New(sub, 0) }

func slimBuilder(sub [][]float64) index.Index[[]float64] {
	return slimtree.NewBulk(metric.Euclidean, 0, sub)
}

func randPoint(rng *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for j := range p {
		p[j] = math.Round(rng.Float64()*40-20) / 2 // quantized, exact
	}
	return p
}

// checkAgainstOracle compares every merged query of m against brute force
// over the live set and against a fresh bulk build (which defines the
// dense ids m must reproduce).
func checkAgainstOracle(t *testing.T, m *Mutable[[]float64], build index.Builder[[]float64], radii []float64, queries [][]float64) {
	t.Helper()
	live := m.Live()
	if m.Size() != len(live) {
		t.Fatalf("Size = %d, len(Live) = %d", m.Size(), len(live))
	}
	a := len(radii)

	for qi, q := range queries {
		// Brute-force multi-radius counts.
		want := make([]int, a)
		for _, x := range live {
			for e := sort.SearchFloat64s(radii, metric.Euclidean(q, x)); e < a; e++ {
				want[e]++
			}
		}
		got := m.RangeCountMulti(q, radii)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: RangeCountMulti = %v, brute force = %v", qi, got, want)
		}
		for e, r := range radii {
			if c := m.RangeCount(q, r); c != want[e] {
				t.Fatalf("query %d radius %v: RangeCount = %d, brute force = %d", qi, r, c, want[e])
			}
		}

		// Range query ids: ascending dense ids of live elements within r.
		r := radii[a/2]
		var wantIDs []int
		for g, x := range live {
			if metric.Euclidean(q, x) <= r {
				wantIDs = append(wantIDs, g)
			}
		}
		gotIDs := m.RangeQuery(q, r)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("query %d: RangeQuery ids = %v, brute force = %v", qi, gotIDs, wantIDs)
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("query %d: RangeQuery ids = %v, brute force = %v", qi, gotIDs, wantIDs)
			}
		}

		// KNN: top-k by (distance, id).
		k := 3
		type cand struct {
			id int
			d  float64
		}
		cands := make([]cand, len(live))
		for g, x := range live {
			cands[g] = cand{id: g, d: metric.Euclidean(q, x)}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].id < cands[j].id
		})
		ids, dists := m.KNN(q, k)
		wk := k
		if wk > len(cands) {
			wk = len(cands)
		}
		if len(ids) != wk {
			t.Fatalf("query %d: KNN returned %d ids, want %d", qi, len(ids), wk)
		}
		for i := 0; i < wk; i++ {
			if ids[i] != cands[i].id || dists[i] != cands[i].d {
				t.Fatalf("query %d: KNN[%d] = (%d, %v), brute force = (%d, %v)",
					qi, i, ids[i], dists[i], cands[i].id, cands[i].d)
			}
		}
	}

	// Self-join matrix vs brute force, at several worker counts.
	n := len(live)
	wantAll := make([][]int, a)
	for e := range wantAll {
		wantAll[e] = make([]int, n)
	}
	for g, x := range live {
		for _, y := range live {
			for e := sort.SearchFloat64s(radii, metric.Euclidean(x, y)); e < a; e++ {
				wantAll[e][g]++
			}
		}
	}
	for _, workers := range []int{1, 3} {
		gotAll := m.CountAllMulti(radii, workers)
		if !reflect.DeepEqual(gotAll, wantAll) {
			t.Fatalf("CountAllMulti(workers=%d) = %v, brute force = %v", workers, gotAll, wantAll)
		}
	}

	// Bridge firsts vs brute force.
	wantFirsts := make([]int, len(queries))
	for i, q := range queries {
		nearest := math.Inf(1)
		for _, x := range live {
			if d := metric.Euclidean(q, x); d < nearest {
				nearest = d
			}
		}
		wantFirsts[i] = sort.SearchFloat64s(radii, nearest)
	}
	for _, workers := range []int{1, 3} {
		gotFirsts := m.BridgeFirsts(queries, radii, workers)
		if !reflect.DeepEqual(gotFirsts, wantFirsts) {
			t.Fatalf("BridgeFirsts(workers=%d) = %v, brute force = %v", workers, gotFirsts, wantFirsts)
		}
	}

	// Diameter matches the fresh build's (radii schedules must agree).
	if n > 0 {
		fresh := build(live)
		if g, w := m.DiameterEstimate(), fresh.DiameterEstimate(); g != w {
			t.Fatalf("DiameterEstimate = %v, fresh build = %v", g, w)
		}
	}
}

// TestMergedQueriesMatchBruteForce drives a random insert/delete script
// through a small-memtable Mutable (forcing several frozen segments,
// tombstones, and a live memtable) and checks every merged query at
// several checkpoints against brute force over the live set.
func TestMergedQueriesMatchBruteForce(t *testing.T) {
	for name, build := range map[string]index.Builder[[]float64]{
		"rtree": rtreeBuilder, "slimtree": slimBuilder,
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			m := NewMutable(metric.Euclidean, build, 8)
			radii := []float64{0.5, 1, 2, 4, 8, 16, 32}
			queries := make([][]float64, 6)
			for i := range queries {
				queries[i] = randPoint(rng, 2)
			}
			var handles []int64
			for step := 0; step < 120; step++ {
				if len(handles) > 0 && rng.Intn(4) == 0 {
					j := rng.Intn(len(handles))
					if !m.Delete(handles[j]) {
						t.Fatalf("step %d: Delete(%d) = false for a live handle", step, handles[j])
					}
					handles = append(handles[:j], handles[j+1:]...)
				} else {
					handles = append(handles, m.Insert(randPoint(rng, 2)))
				}
				if step%30 == 29 {
					checkAgainstOracle(t, m, build, radii, queries)
				}
			}
			if m.Segments() < 2 {
				t.Fatalf("script froze only %d segments; want ≥ 2 for a real merge", m.Segments())
			}
			checkAgainstOracle(t, m, build, radii, queries)
		})
	}
}

// TestEmptyMemtableAfterFreeze pins that queries are answered entirely
// from frozen segments when the memtable is empty.
func TestEmptyMemtableAfterFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMutable(metric.Euclidean, rtreeBuilder, 100)
	for i := 0; i < 20; i++ {
		m.Insert(randPoint(rng, 2))
	}
	m.Freeze()
	if m.MemtableLen() != 0 || m.Segments() != 1 {
		t.Fatalf("after Freeze: memtable = %d, segments = %d", m.MemtableLen(), m.Segments())
	}
	checkAgainstOracle(t, m, rtreeBuilder, []float64{1, 4, 16}, [][]float64{{0, 0}, {9, -9}})
	m.Freeze() // no-op on empty memtable
	if m.Segments() != 1 {
		t.Fatalf("Freeze of empty memtable created a segment")
	}
}

// TestAllPointsDeletedSegment deletes every element of one frozen segment
// and checks the segment contributes nothing (and is skipped outright).
func TestAllPointsDeletedSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMutable(metric.Euclidean, rtreeBuilder, 10)
	var first10 []int64
	for i := 0; i < 10; i++ {
		first10 = append(first10, m.Insert(randPoint(rng, 2)))
	}
	if m.Segments() != 1 {
		t.Fatalf("expected the cap-10 memtable to freeze, segments = %d", m.Segments())
	}
	for i := 0; i < 15; i++ {
		m.Insert(randPoint(rng, 2))
	}
	for _, h := range first10 {
		if !m.Delete(h) {
			t.Fatalf("Delete(%d) = false for a live frozen element", h)
		}
	}
	if m.Tombstones() != 10 {
		t.Fatalf("Tombstones = %d, want 10", m.Tombstones())
	}
	checkAgainstOracle(t, m, rtreeBuilder, []float64{1, 4, 16, 64}, [][]float64{{0, 0}, {-5, 5}})

	// Deleting everything leaves a working empty index.
	m2 := NewMutable(metric.Euclidean, rtreeBuilder, 4)
	var hs []int64
	for i := 0; i < 6; i++ {
		hs = append(hs, m2.Insert(randPoint(rng, 2)))
	}
	for _, h := range hs {
		m2.Delete(h)
	}
	if m2.Size() != 0 {
		t.Fatalf("Size after deleting everything = %d", m2.Size())
	}
	if got := m2.RangeCount([]float64{0, 0}, 100); got != 0 {
		t.Fatalf("RangeCount on empty live set = %d", got)
	}
	if ids, _ := m2.KNN([]float64{0, 0}, 3); len(ids) != 0 {
		t.Fatalf("KNN on empty live set returned %v", ids)
	}
	if d := m2.DiameterEstimate(); d != 0 {
		t.Fatalf("DiameterEstimate on empty live set = %v", d)
	}
	m2.Compact()
	if m2.Segments() != 0 || m2.Size() != 0 {
		t.Fatalf("Compact of empty live set: segments = %d size = %d", m2.Segments(), m2.Size())
	}
}

// TestDeleteThenReinsert pins handle semantics: a deleted handle stays
// dead (double Delete = false), and re-inserting the same element gets a
// fresh handle and full query visibility.
func TestDeleteThenReinsert(t *testing.T) {
	m := NewMutable(metric.Euclidean, rtreeBuilder, 4)
	p := []float64{1, 2}
	h1 := m.Insert(p)
	for i := 0; i < 6; i++ { // freeze h1's segment
		m.Insert([]float64{float64(10 + i), 0})
	}
	if !m.Delete(h1) {
		t.Fatal("Delete(h1) = false")
	}
	if m.Delete(h1) {
		t.Fatal("double Delete(h1) = true")
	}
	if m.Delete(999) {
		t.Fatal("Delete of unknown handle = true")
	}
	if got := m.RangeCount(p, 0.1); got != 0 {
		t.Fatalf("deleted element still counted: RangeCount = %d", got)
	}
	h2 := m.Insert(p)
	if h2 == h1 {
		t.Fatalf("reinsert returned the old handle %d", h1)
	}
	if got := m.RangeCount(p, 0.1); got != 1 {
		t.Fatalf("reinserted element not counted: RangeCount = %d", got)
	}
	if !m.Delete(h2) {
		t.Fatal("Delete(h2) = false")
	}
	if got := m.RangeCount(p, 0.1); got != 0 {
		t.Fatalf("after deleting the reinsert: RangeCount = %d", got)
	}
}

// TestQueryStraddlingCompaction pins that every query answers identically
// before and after Compact (same live set, same dense ids).
func TestQueryStraddlingCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewMutable(metric.Euclidean, rtreeBuilder, 6)
	var handles []int64
	for i := 0; i < 40; i++ {
		handles = append(handles, m.Insert(randPoint(rng, 2)))
	}
	for i := 0; i < 10; i++ {
		j := rng.Intn(len(handles))
		m.Delete(handles[j])
		handles = append(handles[:j], handles[j+1:]...)
	}
	radii := []float64{0.5, 2, 8, 32}
	queries := [][]float64{{0, 0}, {7, -3}, {-11, 4}}

	liveBefore := m.Live()
	counts := make([][]int, len(queries))
	for i, q := range queries {
		counts[i] = m.RangeCountMulti(q, radii)
	}
	all := m.CountAllMulti(radii, 2)
	firsts := m.BridgeFirsts(queries, radii, 2)
	diam := m.DiameterEstimate()

	m.Compact()
	if m.Segments() != 1 || m.Tombstones() != 0 || m.MemtableLen() != 0 {
		t.Fatalf("after Compact: segments=%d tombstones=%d memtable=%d",
			m.Segments(), m.Tombstones(), m.MemtableLen())
	}
	if !reflect.DeepEqual(m.Live(), liveBefore) {
		t.Fatal("Compact changed the live set or its order")
	}
	for i, q := range queries {
		if got := m.RangeCountMulti(q, radii); !reflect.DeepEqual(got, counts[i]) {
			t.Fatalf("query %d: counts changed across Compact: %v vs %v", i, got, counts[i])
		}
	}
	if got := m.CountAllMulti(radii, 2); !reflect.DeepEqual(got, all) {
		t.Fatal("CountAllMulti changed across Compact")
	}
	if got := m.BridgeFirsts(queries, radii, 2); !reflect.DeepEqual(got, firsts) {
		t.Fatal("BridgeFirsts changed across Compact")
	}
	if got := m.DiameterEstimate(); got != diam {
		t.Fatalf("DiameterEstimate changed across Compact: %v vs %v", got, diam)
	}
	// Handles survive compaction.
	h := handles[0]
	if !m.Delete(h) {
		t.Fatal("Delete of a pre-compaction handle failed after Compact")
	}
}

// TestInlierViewMatchesFreshBuild pins the Step IV contract: the masked
// view answers exactly like a fresh index bulk-built over the kept
// subset, with the same dense ids.
func TestInlierViewMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := NewMutable(metric.Euclidean, rtreeBuilder, 7)
	var handles []int64
	for i := 0; i < 50; i++ {
		handles = append(handles, m.Insert(randPoint(rng, 2)))
	}
	for i := 0; i < 8; i++ {
		j := rng.Intn(len(handles))
		m.Delete(handles[j])
		handles = append(handles[:j], handles[j+1:]...)
	}
	live := m.Live()
	excluded := make([]bool, len(live))
	var kept [][]float64
	for g := range live {
		if rng.Intn(3) == 0 {
			excluded[g] = true
		} else {
			kept = append(kept, live[g])
		}
	}
	view := m.InlierView(excluded)
	fresh := rtreeBuilder(kept)
	if view.Size() != fresh.Size() {
		t.Fatalf("view Size = %d, fresh = %d", view.Size(), fresh.Size())
	}
	radii := []float64{0.5, 2, 8, 32}
	queries := [][]float64{{0, 0}, {6, 6}, {-9, 2}, {3, -8}}
	for qi, q := range queries {
		for _, r := range radii {
			if g, w := view.RangeCount(q, r), fresh.RangeCount(q, r); g != w {
				t.Fatalf("query %d r=%v: view RangeCount = %d, fresh = %d", qi, r, g, w)
			}
		}
		gotIDs := view.RangeQuery(q, radii[2])
		wantIDs := fresh.RangeQuery(q, radii[2])
		sort.Ints(wantIDs)
		if !reflect.DeepEqual(append([]int{}, gotIDs...), append([]int{}, wantIDs...)) {
			t.Fatalf("query %d: view RangeQuery = %v, fresh = %v", qi, gotIDs, wantIDs)
		}
	}
	vf := view.(*View[[]float64]).BridgeFirsts(queries, radii, 2)
	ff := fresh.(index.CrossMultiCounter[[]float64]).BridgeFirsts(queries, radii, 2)
	if !reflect.DeepEqual(vf, ff) {
		t.Fatalf("view BridgeFirsts = %v, fresh = %v", vf, ff)
	}
	if g, w := view.DiameterEstimate(), fresh.DiameterEstimate(); g != w {
		t.Fatalf("view DiameterEstimate = %v, fresh = %v", g, w)
	}
	// A nil mask keeps everything: the view must agree with the Mutable.
	full := m.InlierView(nil)
	if full.Size() != m.Size() {
		t.Fatalf("nil-mask view Size = %d, want %d", full.Size(), m.Size())
	}
	if g, w := full.RangeCount(queries[0], 8), m.RangeCount(queries[0], 8); g != w {
		t.Fatalf("nil-mask view RangeCount = %d, Mutable = %d", g, w)
	}
}

// TestDiameterBoxPathMatchesEstimator pins the DeclareMonotone fast
// path: at every step of an insert/delete/freeze/compact history the
// box-maintained diameter must equal what the generic data-only
// estimator reports over the same live set — deletes must shrink the
// box back (lazy rebuild), and storage reorganization must not disturb
// it.
func TestDiameterBoxPathMatchesEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMutable(metric.Euclidean, rtreeBuilder, 6) // small cap: history crosses freezes
	m.DeclareMonotone()
	plain := NewMutable(metric.Euclidean, rtreeBuilder, 6) // reference without the declaration

	check := func(step string) {
		t.Helper()
		if got, want := m.DiameterEstimate(), plain.DiameterEstimate(); got != want {
			t.Fatalf("%s: box diameter %v != estimator %v (n=%d)", step, got, want, m.Size())
		}
	}
	var handles, refHandles []int64
	check("empty")
	for i := 0; i < 120; i++ {
		p := []float64{rng.Float64() * 100, rng.Float64() * 100}
		handles = append(handles, m.Insert(p))
		refHandles = append(refHandles, plain.Insert(append([]float64(nil), p...)))
		check("insert")
		if i%7 == 6 { // delete a random live element, sometimes the extreme one
			j := rng.Intn(len(handles))
			if ok, ok2 := m.Delete(handles[j]), plain.Delete(refHandles[j]); !ok || !ok2 {
				t.Fatalf("delete of live handle failed (%v, %v)", ok, ok2)
			}
			handles = append(handles[:j], handles[j+1:]...)
			refHandles = append(refHandles[:j], refHandles[j+1:]...)
			check("delete")
		}
		if i%31 == 30 {
			m.Compact()
			plain.Compact()
			check("compact")
		}
	}
}
