package segment

import (
	"mccatch/internal/diameter"
	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/parallel"
)

// Compile-time proof that the incremental layer satisfies the base Index
// contract and every optional extension the pipeline's joins dispatch on,
// so a Mutable drops into core's pipeline wherever a frozen tree does.
var (
	_ index.Index[string]              = (*Mutable[string])(nil)
	_ index.MultiCounter[string]       = (*Mutable[string])(nil)
	_ index.MultiCountAppender[string] = (*Mutable[string])(nil)
	_ index.SelfMultiCounter           = (*Mutable[string])(nil)
	_ index.CrossMultiCounter[string]  = (*Mutable[string])(nil)
	_ index.QueryAppender[string]      = (*Mutable[string])(nil)
	_ index.KNNer[string]              = (*Mutable[string])(nil)

	_ index.Index[string]             = (*View[string])(nil)
	_ index.CrossMultiCounter[string] = (*View[string])(nil)
)

// CountAllMulti answers the Step II self-join over the LIVE set:
// counts[e][g] = live elements within radii[e] of the element with dense
// global id g (inclusive, so ≥ 1). Within-segment pairs of a tombstone-
// free segment come from the segment's own dual-tree self-join — on a
// compacted Mutable that is the WHOLE answer, so steady state pays no
// merge penalty. Everything else — cross-segment pairs, segments with
// tombstones, the memtable — resolves through segment-vs-segment
// dual-tree CROSS joins (join.CrossMultiRadiusCounts): each target
// segment answers all its outside queries in one traversal pair that
// prunes whole subtree-vs-subtree blocks, instead of the per-element
// batched probes this path used before, with tombstones subtracted
// through the segment-backend dead tree. Exact counts merge by
// addition, so the matrix is identical to a fresh build's for every
// worker count.
func (m *Mutable[T]) CountAllMulti(radii []float64, workers int) [][]int {
	m.refreshIDs()
	n, a := m.live, len(radii)
	counts := make([][]int, a)
	backing := make([]int, a*n)
	for e := range counts {
		counts[e] = backing[e*n : (e+1)*n : (e+1)*n]
	}
	if n == 0 || a == 0 {
		return counts
	}

	// Within-segment pairs via each clean segment's native self-join.
	probeSelf := make([]bool, len(m.segs))
	for si, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		smc, ok := s.tree.(index.SelfMultiCounter)
		if s.deadN > 0 || !ok {
			probeSelf[si] = true // resolved in the per-element pass below
			continue
		}
		sub := smc.CountAllMulti(radii, workers)
		for e := 0; e < a; e++ {
			row, srow := counts[e], sub[e]
			for k, g := range s.global {
				row[g] += srow[k]
			}
		}
	}

	// Cross pass: for each target segment, every live element outside it
	// — plus its own elements when the segment could not self-join above —
	// queries the segment's tree in one cross join, and the segment's
	// dead tree (same backend, so boundary pairs round identically)
	// subtracts the tombstones. The memtable tree then answers ALL live
	// elements at once, counting the element itself when it lives there
	// (d(x,x) = 0). Segments accumulate serially into disjoint-by-query
	// slots; each join parallelizes internally, and integer addition makes
	// the segment order unobservable.
	memTree := m.memIndex()
	qids := make([]int, 0, n)
	queries := make([]T, 0, n)
	addInto := func(cc [][]int, sign int) {
		for e := 0; e < a; e++ {
			row, crow := counts[e], cc[e]
			for qi, g := range qids {
				row[g] += sign * crow[qi]
			}
		}
	}
	for si, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		qids, queries = qids[:0], queries[:0]
		for g := 0; g < n; g++ {
			if m.refs[g].seg == si && !probeSelf[si] {
				continue
			}
			qids = append(qids, g)
			queries = append(queries, m.elemAt(g))
		}
		if len(qids) == 0 {
			continue
		}
		addInto(join.CrossMultiRadiusCounts[T](s.tree, queries, radii, workers), 1)
		if deadTree := m.deadIndex(s); deadTree != nil {
			addInto(join.CrossMultiRadiusCounts[T](deadTree, queries, radii, workers), -1)
		}
	}
	if memTree != nil {
		qids, queries = qids[:0], queries[:0]
		for g := 0; g < n; g++ {
			qids = append(qids, g)
			queries = append(queries, m.elemAt(g))
		}
		addInto(join.CrossMultiRadiusCounts[T](memTree, queries, radii, workers), 1)
	}
	return counts
}

// BridgeFirsts answers Step IV's bridge search against the live set: for
// each query, the index of the first radius with at least one live
// element within it, or len(radii) when none. Per-segment firsts merge by
// MINIMUM: clean segments answer with their native cross-set dual join,
// segments with tombstones fall back to corrected per-query batched
// probes, and the memtable contributes each query's nearest entry.
func (m *Mutable[T]) BridgeFirsts(queries []T, radii []float64, workers int) []int {
	return m.bridgeFirsts(queries, radii, workers, nil, nil)
}

// bridgeFirsts is BridgeFirsts with an optional extra exclusion mask per
// segment (and for the memtable) — the masked inlier view's temporary
// tombstones. Masked elements are excluded exactly like dead ones.
func (m *Mutable[T]) bridgeFirsts(queries []T, radii []float64, workers int, segMask [][]bool, memMask []bool) []int {
	m.refreshIDs()
	a := len(radii)
	firsts := make([]int, len(queries))
	for i := range firsts {
		firsts[i] = a
	}
	if a == 0 || len(queries) == 0 {
		return firsts
	}
	rmax := radii[a-1]
	for si, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		var mask []bool
		if segMask != nil {
			mask = segMask[si]
		}
		if s.deadN == 0 && mask == nil {
			if cmc, ok := s.tree.(index.CrossMultiCounter[T]); ok {
				for i, f := range cmc.BridgeFirsts(queries, radii, workers) {
					if f < firsts[i] {
						firsts[i] = f
					}
				}
				continue
			}
		}
		// Excluded elements of this segment — tombstones plus the mask —
		// indexed with the same backend as the segment itself, so the
		// subtraction resolves boundary pairs with identical arithmetic.
		var exclTree index.Index[T]
		if mask == nil {
			exclTree = m.deadIndex(s)
		} else {
			excl := append(append([]T(nil), s.deadElems...), maskedElems(s, mask)...)
			if len(excl) == len(s.elems) {
				continue // every element excluded: nothing to bridge to
			}
			if len(excl) > 0 {
				exclTree = m.build(excl)
			}
		}
		parallel.For(workers, len(queries), func(i int) {
			q := queries[i]
			if s.fenced(m.d(q, s.pivot), rmax) {
				return
			}
			bufp := countScratch.Get().(*[]int)
			buf := index.RangeCountMultiAppend(s.tree, q, radii, (*bufp)[:0])
			if exclTree != nil {
				buf = index.RangeCountMultiAppend(exclTree, q, radii, buf)
			}
			for e := 0; e < a && e < firsts[i]; e++ {
				c := buf[e]
				if exclTree != nil {
					c -= buf[a+e]
				}
				if c > 0 {
					firsts[i] = e
					break
				}
			}
			*bufp = buf
			countScratch.Put(bufp)
		})
	}
	if len(m.mem) > 0 {
		mt := m.memIndex()
		if memMask != nil {
			var kept []T
			for j, me := range m.mem {
				if !memMask[j] {
					kept = append(kept, me.elem)
				}
			}
			mt = nil
			if len(kept) > 0 {
				mt = m.build(kept)
			}
		}
		if mt != nil {
			parallel.For(workers, len(queries), func(i int) {
				bufp := countScratch.Get().(*[]int)
				cnt := index.RangeCountMultiAppend(mt, queries[i], radii, (*bufp)[:0])
				for e := 0; e < a && e < firsts[i]; e++ {
					if cnt[e] > 0 {
						firsts[i] = e
						break
					}
				}
				*bufp = cnt
				countScratch.Put(bufp)
			})
		}
	}
	return firsts
}

// maskedElems collects the live elements of s selected by mask.
func maskedElems[T any](s *seg[T], mask []bool) []T {
	var out []T
	for k, on := range mask {
		if on && !s.dead[k] {
			out = append(out, s.elems[k])
		}
	}
	return out
}

// View is a read-only subset of a Mutable: the live elements minus an
// excluded set, addressed by DENSE VIEW IDS (position among the kept
// elements in global id order — exactly the ids a fresh index built over
// the kept subset would assign). Step IV uses it as the inlier index: the
// outliers become temporary tombstones, so the bridge joins run over the
// frozen arenas in place instead of bulk-building an inlier copy.
type View[T any] struct {
	m       *Mutable[T]
	segMask [][]bool // per segment by local id; nil row = none masked
	memMask []bool   // nil = none masked
	masked  []T      // all excluded elements (for count corrections)
	// maskedTree indexes masked with the Mutable's own backend, so count
	// corrections round boundary pairs exactly like the counts they fix.
	maskedTree index.Index[T]
	viewID     []int // dense global id → view id, -1 when excluded
	size       int
}

// InlierView returns the subset view that excludes every global id with
// excluded[g] true. The mask must be indexed by dense global id (length
// Size()); a nil mask keeps everything.
func (m *Mutable[T]) InlierView(excluded []bool) index.Index[T] {
	m.refreshIDs()
	v := &View[T]{m: m, viewID: make([]int, m.live)}
	v.segMask = make([][]bool, len(m.segs))
	for g := 0; g < m.live; g++ {
		l := m.refs[g]
		if excluded != nil && excluded[g] {
			v.viewID[g] = -1
			if l.seg < 0 {
				if v.memMask == nil {
					v.memMask = make([]bool, len(m.mem))
				}
				v.memMask[l.local] = true
				v.masked = append(v.masked, m.mem[l.local].elem)
			} else {
				if v.segMask[l.seg] == nil {
					v.segMask[l.seg] = make([]bool, len(m.segs[l.seg].elems))
				}
				v.segMask[l.seg][l.local] = true
				v.masked = append(v.masked, m.segs[l.seg].elems[l.local])
			}
			continue
		}
		v.viewID[g] = v.size
		v.size++
	}
	if len(v.masked) > 0 {
		v.maskedTree = m.build(v.masked)
	}
	return v
}

// Size returns the number of kept elements.
func (v *View[T]) Size() int { return v.size }

// RangeCount counts the kept elements within r of q: the full merged
// count minus the excluded elements within r.
func (v *View[T]) RangeCount(q T, r float64) int {
	c := v.m.RangeCount(q, r)
	if v.maskedTree != nil {
		c -= v.maskedTree.RangeCount(q, r)
	}
	return c
}

// RangeQuery returns the view ids of kept elements within r of q, sorted
// ascending (viewID is monotone in global id, so the merged order holds).
func (v *View[T]) RangeQuery(q T, r float64) []int {
	full := v.m.RangeQuery(q, r)
	out := full[:0]
	for _, g := range full {
		if vid := v.viewID[g]; vid >= 0 {
			out = append(out, vid)
		}
	}
	return out
}

// DiameterEstimate estimates the kept subset's diameter with the shared
// structure-independent estimator.
func (v *View[T]) DiameterEstimate() float64 {
	if v.size < 2 {
		return 0
	}
	kept := make([]T, 0, v.size)
	for g, vid := range v.viewID {
		if vid >= 0 {
			kept = append(kept, v.m.elemAt(g))
		}
	}
	return diameter.Estimate(kept, v.m.d)
}

// BridgeFirsts answers the bridge search against the KEPT subset only:
// the underlying merge with the view's exclusions applied as temporary
// tombstones. Results are identical to bulk-building a fresh index over
// the kept elements and asking it — the pipeline's Step IV equivalence
// tests pin exactly that.
func (v *View[T]) BridgeFirsts(queries []T, radii []float64, workers int) []int {
	return v.m.bridgeFirsts(queries, radii, workers, v.segMask, v.memMask)
}
