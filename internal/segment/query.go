package segment

import (
	"sort"
	"sync"

	"mccatch/internal/index"
)

// Pooled per-probe scratch: merged probes land per-segment results here
// before summing into the caller's buffer, so a steady-state probe with a
// warm dst allocates zero bytes (the gate BenchmarkIncrementalQueryMerged
// pins this at 0 allocs/op).
var countScratch = sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }}
var idScratch = sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }}

// RangeCount returns how many live elements lie within r of q: segment
// counts minus their tombstoned elements within r, plus a memtable scan.
func (m *Mutable[T]) RangeCount(q T, r float64) int {
	m.refreshIDs()
	total := 0
	for _, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		if s.fenced(m.d(q, s.pivot), r) {
			continue // fence: the query ball cannot touch this segment
		}
		c := s.tree.RangeCount(q, r)
		if dt := m.deadIndex(s); dt != nil {
			c -= dt.RangeCount(q, r)
		}
		total += c
	}
	if mt := m.memIndex(); mt != nil {
		total += mt.RangeCount(q, r)
	}
	return total
}

// RangeCountMulti returns the live-neighbor count at every radius of the
// ascending schedule radii; see RangeCountMultiAppend.
func (m *Mutable[T]) RangeCountMulti(q T, radii []float64) []int {
	return m.RangeCountMultiAppend(q, radii, nil)
}

// RangeCountMultiAppend appends the merged multi-radius counts to dst,
// reusing dst's capacity: each segment answers through its own batched
// counter (one arena traversal per segment), tombstones are subtracted by
// direct metric evaluations against the segment's short dead list, and
// the memtable contributes a linear scan. Element-wise identical to a
// fresh-built index over Live().
func (m *Mutable[T]) RangeCountMultiAppend(q T, radii []float64, dst []int) []int {
	m.refreshIDs()
	a := len(radii)
	base := len(dst)
	for i := 0; i < a; i++ {
		dst = append(dst, 0)
	}
	if a == 0 {
		return dst
	}
	cnt := dst[base:]
	rmax := radii[a-1]
	bufp := countScratch.Get().(*[]int)
	buf := *bufp
	for _, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		if s.fenced(m.d(q, s.pivot), rmax) {
			continue
		}
		buf = index.RangeCountMultiAppend(s.tree, q, radii, buf[:0])
		for e := 0; e < a; e++ {
			cnt[e] += buf[e]
		}
		if dt := m.deadIndex(s); dt != nil {
			buf = index.RangeCountMultiAppend(dt, q, radii, buf[:0])
			for e := 0; e < a; e++ {
				cnt[e] -= buf[e]
			}
		}
	}
	if mt := m.memIndex(); mt != nil {
		buf = index.RangeCountMultiAppend(mt, q, radii, buf[:0])
		for e := 0; e < a; e++ {
			cnt[e] += buf[e]
		}
	}
	*bufp = buf
	countScratch.Put(bufp)
	return dst
}

// RangeQuery returns the dense global ids of live elements within r of q,
// sorted ascending; see RangeQueryAppend.
func (m *Mutable[T]) RangeQuery(q T, r float64) []int {
	return m.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend appends the dense global ids of live elements within r
// of q to dst, sorted ascending (the deterministic order a merge must fix
// since segment traversal orders are arbitrary).
func (m *Mutable[T]) RangeQueryAppend(q T, r float64, dst []int) []int {
	m.refreshIDs()
	base := len(dst)
	bufp := idScratch.Get().(*[]int)
	buf := *bufp
	for _, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		if s.fenced(m.d(q, s.pivot), r) {
			continue
		}
		buf = index.RangeQueryAppend(s.tree, q, r, buf[:0])
		for _, lid := range buf {
			if g := s.global[lid]; g >= 0 {
				dst = append(dst, g)
			}
		}
	}
	if mt := m.memIndex(); mt != nil {
		buf = index.RangeQueryAppend(mt, q, r, buf[:0])
		for _, lid := range buf {
			dst = append(dst, m.memBase+lid)
		}
	}
	*bufp = buf
	idScratch.Put(bufp)
	sort.Ints(dst[base:])
	return dst
}

// KNN returns the k live elements nearest to q, merged across segments
// and the memtable with the same (distance, id) tiebreak the tree-native
// KNNs use. Segments with tombstones are over-fetched by their tombstone
// count (the dead can displace at most that many live neighbors);
// segments whose tree lacks a native KNN fall back to scanning the
// segment's stored elements.
func (m *Mutable[T]) KNN(q T, k int) (ids []int, dists []float64) {
	m.refreshIDs()
	if m.live == 0 || k <= 0 {
		return nil, nil
	}
	type cand struct {
		id int
		d  float64
	}
	var cands []cand
	for _, s := range m.segs {
		if s.liveCount() == 0 {
			continue
		}
		if kn, ok := s.tree.(index.KNNer[T]); ok {
			sids, sdists := kn.KNN(q, k+s.deadN)
			for i, lid := range sids {
				if s.dead[lid] {
					continue
				}
				cands = append(cands, cand{id: s.global[lid], d: sdists[i]})
			}
			continue
		}
		for lid, x := range s.elems {
			if s.dead[lid] {
				continue
			}
			cands = append(cands, cand{id: s.global[lid], d: m.d(q, x)})
		}
	}
	for j, me := range m.mem {
		cands = append(cands, cand{id: m.memBase + j, d: m.d(q, me.elem)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	ids = make([]int, k)
	dists = make([]float64, k)
	for i := 0; i < k; i++ {
		ids[i], dists[i] = cands[i].id, cands[i].d
	}
	return ids, dists
}
