package metric

import (
	"math"
	"sort"
)

// Graph is an undirected, unweighted graph given by adjacency lists, e.g. a
// skeleton graph extracted from a silhouette. Node identity carries no
// meaning: graph distances must be invariant under node relabeling.
type Graph struct {
	Adj [][]int // Adj[i] lists the neighbors of node i
}

// NewGraph builds a Graph on n nodes from an undirected edge list.
func NewGraph(n int, edges [][2]int) Graph {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return Graph{Adj: adj}
}

// NumEdges returns the number of undirected edges.
func (g Graph) NumEdges() int {
	sum := 0
	for _, nb := range g.Adj {
		sum += len(nb)
	}
	return sum / 2
}

// degreeSequence returns the sorted (ascending) degree sequence.
func (g Graph) degreeSequence() []int {
	deg := make([]int, len(g.Adj))
	for i, nb := range g.Adj {
		deg[i] = len(nb)
	}
	sort.Ints(deg)
	return deg
}

// eccentricities returns the sorted (ascending) BFS eccentricity of every
// node; unreachable pairs contribute the node count as a finite ceiling.
func (g Graph) eccentricities() []int {
	n := len(g.Adj)
	ecc := make([]int, n)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		maxd := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > maxd {
						maxd = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
		for i := range dist {
			if dist[i] < 0 { // disconnected: finite ceiling
				maxd = n
				break
			}
		}
		ecc[s] = maxd
	}
	sort.Ints(ecc)
	return ecc
}

// GraphDistance is a graph-edit-distance surrogate that is a pseudometric
// (symmetric, non-negative, triangle inequality): the sum of
//
//   - the L1 distance between zero-padded sorted degree sequences,
//   - the L1 distance between zero-padded sorted eccentricity sequences, and
//   - the absolute difference in edge counts.
//
// Each term is the L1 distance between canonical integer signatures, so the
// triangle inequality holds termwise; non-isomorphic graphs with identical
// signatures get distance 0, which metric trees tolerate (pseudometric).
// Exact graph edit distance is NP-hard; this surrogate preserves what the
// Skeletons experiment needs — topologically unusual graphs are far away.
func GraphDistance(a, b Graph) float64 {
	d := paddedL1(a.degreeSequence(), b.degreeSequence())
	d += paddedL1(a.eccentricities(), b.eccentricities())
	d += math.Abs(float64(a.NumEdges() - b.NumEdges()))
	return d
}

// paddedL1 returns the L1 distance between two ascending integer sequences
// after left-padding the shorter one with zeros. Padding at the low end
// keeps both sequences sorted, which makes the comparison canonical.
func paddedL1(a, b []int) float64 {
	for len(a) < len(b) {
		a = append([]int{0}, a...)
	}
	for len(b) < len(a) {
		b = append([]int{0}, b...)
	}
	s := 0.0
	for i := range a {
		s += math.Abs(float64(a[i] - b[i]))
	}
	return s
}
