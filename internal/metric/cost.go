package metric

import "mccatch/internal/mdl"

// TransformationCost is the cost t of Def. 7: the number of bits needed to
// describe how to transform one data element into another element that is
// one unit of distance away. It parameterizes MCCATCH's compression-based
// anomaly scores per metric space.
type TransformationCost float64

// VectorCost returns t for a d-dimensional vector space under any Lp
// metric: the dimensionality, because a unit move must be described in each
// feature (Def. 7).
func VectorCost(dim int) TransformationCost {
	if dim < 1 {
		dim = 1
	}
	return TransformationCost(dim)
}

// WordCost returns t for strings under the edit distance (Def. 7): the cost
// of describing one edit — ⟨3⟩ bits to pick among insertion/deletion/
// replacement, ⟨distinctChars⟩ bits for the new character, and
// ⟨longestWordLen⟩ bits for the position.
func WordCost(distinctChars, longestWordLen int) TransformationCost {
	return TransformationCost(mdl.CodeLen(3) + mdl.CodeLen(distinctChars) + mdl.CodeLen(longestWordLen))
}

// CustomCost wraps a caller-supplied per-unit transformation cost for any
// other metric space (graphs, point sets, DNA, ...).
func CustomCost(bitsPerUnit float64) TransformationCost {
	if bitsPerUnit <= 0 {
		bitsPerUnit = 1
	}
	return TransformationCost(bitsPerUnit)
}
