// Package metric defines the distance functions MCCATCH runs on. MCCATCH
// needs nothing but a metric d(a,b) between data elements — never
// coordinates — so every detector and index in this repository is generic
// over a Distance. The package ships the Lp family for vector data, the
// Levenshtein edit distance for strings, a Hausdorff distance for point
// sets (fingerprint ridges), and a graph dissimilarity for skeleton graphs,
// plus the per-space transformation costs of the paper's Def. 7.
package metric

import "math"

// Distance is a metric (or pseudometric) between two elements of type T.
// Implementations must be symmetric, non-negative, return 0 for identical
// arguments, and satisfy the triangle inequality — the metric-tree pruning
// in internal/slimtree relies on it.
type Distance[T any] func(a, b T) float64

// Euclidean returns the L2 distance between two equal-length vectors.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Manhattan returns the L1 distance between two equal-length vectors.
func Manhattan(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev returns the L∞ distance between two equal-length vectors.
func Chebyshev(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Minkowski returns the Lp distance for p ≥ 1 between equal-length vectors.
func Minkowski(p float64) Distance[[]float64] {
	return func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// SquaredEuclidean returns the squared L2 distance. It is NOT a metric (the
// triangle inequality fails); it exists for detectors like k-means that only
// compare distances, never prune with them.
func SquaredEuclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
