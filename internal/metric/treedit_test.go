package metric

import (
	"math/rand"
	"testing"
)

func leaf(l rune) *Tree              { return &Tree{Label: l} }
func tr(l rune, kids ...*Tree) *Tree { return &Tree{Label: l, Children: kids} }

func TestTreeEditDistanceKnownValues(t *testing.T) {
	// Identical trees.
	a := tr('a', leaf('b'), leaf('c'))
	b := tr('a', leaf('b'), leaf('c'))
	if got := TreeEditDistance(a, b); got != 0 {
		t.Errorf("identical trees: %v", got)
	}
	// One relabel.
	c := tr('a', leaf('b'), leaf('x'))
	if got := TreeEditDistance(a, c); got != 1 {
		t.Errorf("one relabel: %v, want 1", got)
	}
	// One insertion: a(b,c) vs a(b,c,d).
	d := tr('a', leaf('b'), leaf('c'), leaf('d'))
	if got := TreeEditDistance(a, d); got != 1 {
		t.Errorf("one insert: %v, want 1", got)
	}
	// Empty versus tree: cost = node count.
	if got := TreeEditDistance(nil, d); got != 4 {
		t.Errorf("nil vs tree: %v, want 4", got)
	}
	if got := TreeEditDistance(a, nil); got != 3 {
		t.Errorf("tree vs nil: %v, want 3", got)
	}
	if got := TreeEditDistance(nil, nil); got != 0 {
		t.Errorf("nil vs nil: %v, want 0", got)
	}
}

func TestTreeEditDistanceClassicExample(t *testing.T) {
	// The Zhang–Shasha paper's classic pair:
	// T1: f(d(a, c(b)), e)   T2: f(c(d(a, b)), e) — distance 2.
	t1 := tr('f', tr('d', leaf('a'), tr('c', leaf('b'))), leaf('e'))
	t2 := tr('f', tr('c', tr('d', leaf('a'), leaf('b'))), leaf('e'))
	if got := TreeEditDistance(t1, t2); got != 2 {
		t.Errorf("classic example: %v, want 2", got)
	}
}

func TestTreeEditDistanceDeepChains(t *testing.T) {
	// Chains of different lengths: distance = length difference.
	chain := func(n int) *Tree {
		root := leaf('x')
		cur := root
		for i := 1; i < n; i++ {
			child := leaf('x')
			cur.Children = []*Tree{child}
			cur = child
		}
		return root
	}
	if got := TreeEditDistance(chain(5), chain(9)); got != 4 {
		t.Errorf("chains: %v, want 4", got)
	}
}

func randTree(rng *rand.Rand, maxNodes int) *Tree {
	labels := []rune("abc")
	var build func(budget *int) *Tree
	build = func(budget *int) *Tree {
		*budget--
		node := leaf(labels[rng.Intn(len(labels))])
		for *budget > 0 && rng.Float64() < 0.6 {
			node.Children = append(node.Children, build(budget))
		}
		return node
	}
	budget := 1 + rng.Intn(maxNodes)
	return build(&budget)
}

func TestTreeEditDistanceMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		a := randTree(rng, 10)
		b := randTree(rng, 10)
		c := randTree(rng, 10)
		dab := TreeEditDistance(a, b)
		dba := TreeEditDistance(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: %v vs %v", dab, dba)
		}
		if TreeEditDistance(a, a) != 0 {
			t.Fatal("d(a,a) != 0")
		}
		dac := TreeEditDistance(a, c)
		dbc := TreeEditDistance(b, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: %v > %v + %v", dac, dab, dbc)
		}
		// Distance bounded by total size (delete all + insert all).
		if dab > float64(a.size()+b.size()) {
			t.Fatalf("distance exceeds size bound")
		}
	}
}

func TestSoundexKnownCodes(t *testing.T) {
	cases := []struct{ word, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", "0000"},
		{"123", "0000"},
	}
	for _, c := range cases {
		if got := Soundex(c.word); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.word, got, c.want)
		}
	}
}

func TestSoundexDistance(t *testing.T) {
	if got := SoundexDistance("Robert", "Rupert"); got != 0 {
		t.Errorf("phonetic twins should be at distance 0, got %v", got)
	}
	if got := SoundexDistance("Smith", "Przybylski"); got == 0 {
		t.Error("unlike names should differ")
	}
	// Pseudometric sanity on random words.
	rng := rand.New(rand.NewSource(2))
	words := make([]string, 30)
	for i := range words {
		b := make([]byte, 3+rng.Intn(8))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		words[i] = string(b)
	}
	for _, a := range words {
		for _, b := range words {
			if SoundexDistance(a, b) != SoundexDistance(b, a) {
				t.Fatal("SoundexDistance not symmetric")
			}
		}
	}
}
