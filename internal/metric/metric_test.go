package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vecs(rng *rand.Rand, dim int) ([]float64, []float64, []float64) {
	a := make([]float64, dim)
	b := make([]float64, dim)
	c := make([]float64, dim)
	for i := 0; i < dim; i++ {
		a[i] = rng.NormFloat64() * 10
		b[i] = rng.NormFloat64() * 10
		c[i] = rng.NormFloat64() * 10
	}
	return a, b, c
}

// checkMetricAxioms verifies symmetry, identity, non-negativity and the
// triangle inequality on random triples.
func checkMetricAxioms(t *testing.T, name string, d Distance[[]float64]) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(8)
		a, b, c := vecs(rng, dim)
		if d(a, a) != 0 {
			t.Fatalf("%s: d(a,a) = %v != 0", name, d(a, a))
		}
		if math.Abs(d(a, b)-d(b, a)) > 1e-9 {
			t.Fatalf("%s: not symmetric", name)
		}
		if d(a, b) < 0 {
			t.Fatalf("%s: negative distance", name)
		}
		if d(a, c) > d(a, b)+d(b, c)+1e-9 {
			t.Fatalf("%s: triangle inequality violated: d(a,c)=%v > %v", name, d(a, c), d(a, b)+d(b, c))
		}
	}
}

func TestMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "Euclidean", Euclidean)
	checkMetricAxioms(t, "Manhattan", Manhattan)
	checkMetricAxioms(t, "Chebyshev", Chebyshev)
	checkMetricAxioms(t, "Minkowski(3)", Minkowski(3))
	checkMetricAxioms(t, "Minkowski(1.5)", Minkowski(1.5))
}

func TestEuclideanKnownValues(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("Euclidean 3-4-5 = %v", got)
	}
	if got := Manhattan([]float64{1, 2}, []float64{4, 6}); got != 7 {
		t.Errorf("Manhattan = %v, want 7", got)
	}
	if got := Chebyshev([]float64{1, 2}, []float64{4, 6}); got != 4 {
		t.Errorf("Chebyshev = %v, want 4", got)
	}
}

func TestMinkowskiLimits(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 3}
	if math.Abs(Minkowski(1)(a, b)-Manhattan(a, b)) > 1e-9 {
		t.Error("Minkowski(1) != Manhattan")
	}
	if math.Abs(Minkowski(2)(a, b)-Euclidean(a, b)) > 1e-9 {
		t.Error("Minkowski(2) != Euclidean")
	}
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"smith", "smyth", 1},
		{"garcía", "garcia", 1}, // multibyte rune counts as one edit
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 24 {
			a = a[:24]
		}
		if len(b) > 24 {
			b = b[:24]
		}
		if len(c) > 24 {
			c = c[:24]
		}
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		dac := Levenshtein(a, c)
		dbc := Levenshtein(b, c)
		return dab == dba && Levenshtein(a, a) == 0 && dac <= dab+dbc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHausdorffKnownValues(t *testing.T) {
	a := PointSet{{0, 0}, {1, 0}}
	b := PointSet{{0, 0}, {1, 0}}
	if got := Hausdorff(a, b); got != 0 {
		t.Errorf("identical sets: %v", got)
	}
	c := PointSet{{0, 0}, {4, 0}}
	if got := Hausdorff(a, c); got != 3 {
		t.Errorf("Hausdorff = %v, want 3", got)
	}
	// Asymmetric nearest distances: directed distances differ, metric takes max.
	d := PointSet{{0, 0}}
	e := PointSet{{0, 0}, {10, 0}}
	if got := Hausdorff(d, e); got != 10 {
		t.Errorf("Hausdorff = %v, want 10", got)
	}
}

func TestHausdorffEmptySets(t *testing.T) {
	if got := Hausdorff(nil, nil); got != 0 {
		t.Errorf("H(∅,∅) = %v, want 0", got)
	}
	a := PointSet{{0, 0}, {3, 4}}
	if got := Hausdorff(a, nil); got != 5 {
		t.Errorf("H(A,∅) = %v, want diameter 5", got)
	}
	if got := Hausdorff(nil, PointSet{{1, 1}}); got != 1 {
		t.Errorf("H(∅,{p}) = %v, want 1 fallback", got)
	}
}

func TestHausdorffSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randSet := func() PointSet {
		n := 1 + rng.Intn(6)
		s := make(PointSet, n)
		for i := range s {
			s[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		return s
	}
	for trial := 0; trial < 100; trial++ {
		a, b, c := randSet(), randSet(), randSet()
		if math.Abs(Hausdorff(a, b)-Hausdorff(b, a)) > 1e-9 {
			t.Fatal("Hausdorff not symmetric")
		}
		if Hausdorff(a, c) > Hausdorff(a, b)+Hausdorff(b, c)+1e-9 {
			t.Fatal("Hausdorff triangle inequality violated")
		}
	}
}

func TestGraphDistanceBasics(t *testing.T) {
	path3 := NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	path3b := NewGraph(3, [][2]int{{2, 1}, {1, 0}}) // same graph, relabeled
	tri := NewGraph(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if GraphDistance(path3, path3b) != 0 {
		t.Error("relabeled isomorphic graphs should be at distance 0")
	}
	if GraphDistance(path3, tri) == 0 {
		t.Error("path and triangle should differ")
	}
	if GraphDistance(path3, tri) != GraphDistance(tri, path3) {
		t.Error("GraphDistance not symmetric")
	}
}

func TestGraphDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randGraph := func() Graph {
		n := 2 + rng.Intn(8)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		return NewGraph(n, edges)
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := randGraph(), randGraph(), randGraph()
		if GraphDistance(a, c) > GraphDistance(a, b)+GraphDistance(b, c)+1e-9 {
			t.Fatal("GraphDistance triangle inequality violated")
		}
		if GraphDistance(a, a) != 0 {
			t.Fatal("GraphDistance(a,a) != 0")
		}
	}
}

func TestGraphNumEdges(t *testing.T) {
	g := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if NewGraph(3, nil).NumEdges() != 0 {
		t.Error("empty graph should have 0 edges")
	}
}

func TestTransformationCosts(t *testing.T) {
	if VectorCost(3) != 3 {
		t.Errorf("VectorCost(3) = %v", VectorCost(3))
	}
	if VectorCost(0) != 1 {
		t.Errorf("VectorCost(0) should clamp to 1, got %v", VectorCost(0))
	}
	wc := WordCost(26, 12)
	if wc <= 0 {
		t.Errorf("WordCost should be positive, got %v", wc)
	}
	if CustomCost(-2) != 1 {
		t.Errorf("CustomCost should clamp nonpositive to 1")
	}
	if CustomCost(7.5) != 7.5 {
		t.Errorf("CustomCost(7.5) = %v", CustomCost(7.5))
	}
}

func TestSquaredEuclidean(t *testing.T) {
	if got := SquaredEuclidean([]float64{0, 0}, []float64{3, 4}); got != 25 {
		t.Errorf("SquaredEuclidean = %v, want 25", got)
	}
}
