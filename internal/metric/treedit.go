package metric

// Tree is a rooted, ordered, labeled tree for the tree edit distance. The
// paper cites tree-editing distance (Pawlik & Augsten) as a domain-expert
// metric for shapes and skeleton graphs; this file implements the classic
// Zhang–Shasha algorithm, which computes the exact edit distance between
// rooted ordered trees in O(n²·depth²) time.
type Tree struct {
	Label    rune
	Children []*Tree
}

// Node count of the tree.
func (t *Tree) size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.size()
	}
	return n
}

// postorder assigns post-order numbers and records, for each node, its
// label and the post-order number of its leftmost leaf descendant.
type zsIndex struct {
	labels []rune // labels in post-order (1-based; index 0 unused)
	lmld   []int  // leftmost leaf descendant per node (1-based)
	keys   []int  // keyroots: nodes with a left sibling, plus the root
}

func buildZS(t *Tree) zsIndex {
	n := t.size()
	idx := zsIndex{
		labels: make([]rune, n+1),
		lmld:   make([]int, n+1),
	}
	counter := 0
	post := map[*Tree]int{}
	var walk func(node *Tree)
	walk = func(node *Tree) {
		for _, c := range node.Children {
			walk(c)
		}
		counter++
		post[node] = counter
		idx.labels[counter] = node.Label
	}
	walk(t)
	// lmld: leftmost leaf descendant by structure.
	var fill func(node *Tree) int
	fill = func(node *Tree) int {
		if len(node.Children) == 0 {
			idx.lmld[post[node]] = post[node]
			return post[node]
		}
		first := 0
		for i, c := range node.Children {
			l := fill(c)
			if i == 0 {
				first = l
			}
		}
		idx.lmld[post[node]] = first
		return first
	}
	fill(t)
	// Keyroots: the highest node of every distinct leftmost-leaf chain.
	highest := map[int]int{}
	for i := 1; i <= n; i++ {
		highest[idx.lmld[i]] = i
	}
	for _, v := range highest {
		idx.keys = append(idx.keys, v)
	}
	// Sort ascending (insertion sort: keyroot lists are small).
	for a := 1; a < len(idx.keys); a++ {
		for b := a; b > 0 && idx.keys[b] < idx.keys[b-1]; b-- {
			idx.keys[b], idx.keys[b-1] = idx.keys[b-1], idx.keys[b]
		}
	}
	return idx
}

// TreeEditDistance returns the exact edit distance between two rooted
// ordered labeled trees under unit costs for insert, delete, and relabel.
// It is a true metric on such trees.
func TreeEditDistance(a, b *Tree) float64 {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return float64(b.size())
	}
	if b == nil {
		return float64(a.size())
	}
	ia, ib := buildZS(a), buildZS(b)
	na, nb := a.size(), b.size()
	td := make([][]float64, na+1)
	for i := range td {
		td[i] = make([]float64, nb+1)
	}
	for _, ka := range ia.keys {
		for _, kb := range ib.keys {
			treeDist(ia, ib, ka, kb, td)
		}
	}
	return td[na][nb]
}

// treeDist fills td[i][j] for the subtree pair rooted at keyroots (ka, kb)
// using the Zhang–Shasha forest-distance recurrence.
func treeDist(ia, ib zsIndex, ka, kb int, td [][]float64) {
	la, lb := ia.lmld[ka], ib.lmld[kb]
	m := ka - la + 2
	n := kb - lb + 2
	fd := make([][]float64, m)
	for i := range fd {
		fd[i] = make([]float64, n)
	}
	for i := 1; i < m; i++ {
		fd[i][0] = fd[i-1][0] + 1 // delete
	}
	for j := 1; j < n; j++ {
		fd[0][j] = fd[0][j-1] + 1 // insert
	}
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			ai := la + i - 1 // node in a (post-order)
			bj := lb + j - 1
			if ia.lmld[ai] == la && ib.lmld[bj] == lb {
				// Both forests are whole trees: record the tree distance.
				rel := 0.0
				if ia.labels[ai] != ib.labels[bj] {
					rel = 1
				}
				fd[i][j] = min3(
					fd[i-1][j]+1,
					fd[i][j-1]+1,
					fd[i-1][j-1]+rel,
				)
				td[ai][bj] = fd[i][j]
			} else {
				// General forests: reuse the stored subtree distance.
				pi := ia.lmld[ai] - la // forest prefix before subtree ai
				pj := ib.lmld[bj] - lb
				fd[i][j] = min3(
					fd[i-1][j]+1,
					fd[i][j-1]+1,
					fd[pi][pj]+td[ai][bj],
				)
			}
		}
	}
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
