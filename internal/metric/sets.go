package metric

import "math"

// PointSet is a finite set of points in R^d, e.g. the ridge minutiae of a
// fingerprint. The paper's Fingerprints dataset is nondimensional: each data
// element is a whole point set, compared with a set distance.
type PointSet [][]float64

// Hausdorff returns the Hausdorff distance between two point sets under the
// Euclidean ground metric:
//
//	H(A,B) = max( max_{a∈A} min_{b∈B} d(a,b), max_{b∈B} min_{a∈A} d(a,b) ).
//
// It is a true metric on nonempty compact sets. Empty sets are handled by
// convention: H(∅,∅)=0 and H(A,∅)=+Inf is replaced by the diameter proxy of
// the nonempty set so distances stay finite for indexing.
func Hausdorff(a, b PointSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		ne := a
		if len(ne) == 0 {
			ne = b
		}
		// Farthest point from the origin-side bounding sphere: use the set's
		// diameter as a finite stand-in for the degenerate case.
		m := 0.0
		for i := range ne {
			for j := i + 1; j < len(ne); j++ {
				if d := Euclidean(ne[i], ne[j]); d > m {
					m = d
				}
			}
		}
		if m == 0 {
			m = 1
		}
		return m
	}
	return math.Max(directed(a, b), directed(b, a))
}

func directed(a, b PointSet) float64 {
	worst := 0.0
	for _, p := range a {
		best := math.Inf(1)
		for _, q := range b {
			if d := Euclidean(p, q); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
