package metric

import "strings"

// Soundex returns the American Soundex code of a word (letter + 3 digits),
// the phonetic encoding the paper cites (PostgreSQL fuzzystrmatch) as an
// alternative string distance for names. Non-ASCII-letter characters are
// ignored; an empty word encodes to "0000".
func Soundex(word string) string {
	code := func(r rune) byte {
		switch r {
		case 'b', 'f', 'p', 'v':
			return '1'
		case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
			return '2'
		case 'd', 't':
			return '3'
		case 'l':
			return '4'
		case 'm', 'n':
			return '5'
		case 'r':
			return '6'
		default:
			return 0 // vowels, h, w, and anything else
		}
	}
	w := strings.ToLower(word)
	var letters []rune
	for _, r := range w {
		if r >= 'a' && r <= 'z' {
			letters = append(letters, r)
		}
	}
	if len(letters) == 0 {
		return "0000"
	}
	out := []byte{byte(letters[0] - 'a' + 'A')}
	prev := code(letters[0])
	for _, r := range letters[1:] {
		c := code(r)
		// h and w do not reset the previous code; vowels do.
		if r == 'h' || r == 'w' {
			continue
		}
		if c != 0 && c != prev {
			out = append(out, c)
			if len(out) == 4 {
				break
			}
		}
		prev = c
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexDistance compares two words by the edit distance between their
// Soundex codes: phonetically alike names are at distance 0. It is a
// pseudometric (distinct words can share a code), which the metric tree
// tolerates.
func SoundexDistance(a, b string) float64 {
	return Levenshtein(Soundex(a), Soundex(b))
}
