package metric

// Levenshtein returns the edit distance between two strings: the minimum
// number of single-character insertions, deletions, and replacements needed
// to transform a into b. It is a true metric on strings. The paper uses it
// ("L-Edit") for the Last Names dataset.
func Levenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return float64(len(rb))
	}
	if len(rb) == 0 {
		return float64(len(ra))
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			sub := prev[j-1]
			if ra[i-1] != rb[j-1] {
				sub++
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(rb)])
}
