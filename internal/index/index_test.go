package index

import (
	"reflect"
	"testing"
)

// line is a minimal Index over 1-d points: enough to test the optional-
// extension dispatch without pulling in a real tree.
type line struct{ xs []float64 }

func (l line) RangeCount(q float64, r float64) int {
	c := 0
	for _, x := range l.xs {
		if abs(x-q) <= r {
			c++
		}
	}
	return c
}

func (l line) RangeQuery(q float64, r float64) []int {
	var ids []int
	for i, x := range l.xs {
		if abs(x-q) <= r {
			ids = append(ids, i)
		}
	}
	return ids
}

func (l line) Size() int                 { return len(l.xs) }
func (l line) DiameterEstimate() float64 { return 0 }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// batchedLine additionally implements MultiCounter and QueryAppender, and
// records that the native paths were taken.
type batchedLine struct {
	line
	multiCalls, appendCalls int
}

func (b *batchedLine) RangeCountMulti(q float64, radii []float64) []int {
	b.multiCalls++
	counts := make([]int, len(radii))
	for e, r := range radii {
		counts[e] = b.RangeCount(q, r)
	}
	return counts
}

func (b *batchedLine) RangeQueryAppend(q float64, r float64, dst []int) []int {
	b.appendCalls++
	return append(dst, b.RangeQuery(q, r)...)
}

func TestRangeCountMultiFallsBackToRepeatedRangeCount(t *testing.T) {
	l := line{xs: []float64{0, 1, 2, 10}}
	radii := []float64{0.5, 1.5, 20}
	got := RangeCountMulti[float64](l, 1, radii)
	want := []int{1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback RangeCountMulti = %v, want %v", got, want)
	}
	if got := RangeCountMulti[float64](l, 1, nil); len(got) != 0 {
		t.Errorf("fallback with no radii = %v, want empty", got)
	}
}

func TestRangeCountMultiDispatchesToNativeImplementation(t *testing.T) {
	b := &batchedLine{line: line{xs: []float64{0, 1, 2}}}
	got := RangeCountMulti[float64](b, 0, []float64{1.5})
	if b.multiCalls != 1 {
		t.Errorf("native RangeCountMulti called %d times, want 1", b.multiCalls)
	}
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("dispatched RangeCountMulti = %v, want [2]", got)
	}
}

// appendLine additionally implements MultiCountAppender, recording the
// native dispatch.
type appendLine struct {
	batchedLine
	multiAppendCalls int
}

func (a *appendLine) RangeCountMultiAppend(q float64, radii []float64, dst []int) []int {
	a.multiAppendCalls++
	return append(dst, a.RangeCountMulti(q, radii)...)
}

func TestRangeCountMultiAppendFallbackAndDispatch(t *testing.T) {
	l := line{xs: []float64{0, 1, 2, 10}}
	buf := make([]int, 0, 8)
	got := RangeCountMultiAppend[float64](l, 1, []float64{0.5, 1.5, 20}, buf)
	if !reflect.DeepEqual(got, []int{1, 3, 4}) || cap(got) != 8 {
		t.Errorf("fallback RangeCountMultiAppend = %v (cap %d), want [1 3 4] in the caller's buffer", got, cap(got))
	}
	a := &appendLine{batchedLine: batchedLine{line: l}}
	got = RangeCountMultiAppend[float64](a, 1, []float64{0.5}, nil)
	if a.multiAppendCalls != 1 {
		t.Errorf("native RangeCountMultiAppend called %d times, want 1", a.multiAppendCalls)
	}
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("dispatched RangeCountMultiAppend = %v, want [1]", got)
	}
}

func TestRangeQueryAppendFallbackAndDispatch(t *testing.T) {
	l := line{xs: []float64{0, 1, 9}}
	buf := make([]int, 0, 4)
	got := RangeQueryAppend[float64](l, 0, 1.5, buf)
	if !reflect.DeepEqual(got, []int{0, 1}) || cap(got) != 4 {
		t.Errorf("fallback RangeQueryAppend = %v (cap %d), want [0 1] in the caller's buffer", got, cap(got))
	}
	b := &batchedLine{line: l}
	RangeQueryAppend[float64](b, 0, 1.5, nil)
	if b.appendCalls != 1 {
		t.Errorf("native RangeQueryAppend called %d times, want 1", b.appendCalls)
	}
}
