// Package index defines the access-method interface MCCATCH's joins run
// on. The paper's footnote 4 prescribes metric trees (Slim-tree, M-tree)
// for nondimensional data and kd-trees for main-memory vector data; both
// of this repository's trees satisfy Index, so the pipeline can swap them
// (and the benchmarks can ablate the choice).
//
// Beyond the base Index contract, backends may implement two optional
// extensions that the joins detect dynamically:
//
//   - MultiCounter batches the neighbor counts at several nested radii
//     into one tree traversal. MCCATCH's Step II probes every point at up
//     to a radii, and the radii are nested, so each traversal can classify
//     a subtree once for the whole radius schedule instead of re-deriving
//     the same pruning decisions per radius. All three bundled trees
//     implement it natively; RangeCountMulti falls back to one RangeCount
//     per radius for any other backend.
//   - SelfMultiCounter answers the Step II self-join — every indexed
//     element's counts at every radius — from ONE dual traversal of the
//     index against itself. All three bundled trees implement it natively
//     (the slim-tree with covering-ball bounds, the kd-tree and R-tree
//     with min/max box-distance bounds); join.SelfMultiRadiusCounts falls
//     back to gated per-point probes for any other backend.
//   - CrossMultiCounter answers the Step IV bridge search — for every
//     outlier, the first radius with an inlier neighbor — from ONE dual
//     traversal of the inlier index against a throwaway tree over the
//     outliers. All three bundled trees implement it natively;
//     join.BridgeRadii falls back to batched per-point probes for any
//     other backend.
//   - QueryAppender lets callers pass a reusable scratch buffer to range
//     queries, cutting per-probe garbage on the hot paths.
//   - KNNer exposes k-nearest-neighbor search where a backend has one.
//
// Everything here is also satisfied by internal/segment's Mutable, the
// LSM-style incremental layer: it merges every answer across a mutable
// memtable and one or more frozen arena segments (counts add, per-query
// minima take min, tombstones are subtracted at merge), so the pipeline
// runs unchanged over a dataset under inserts and deletes.
package index

// Index answers range queries over an indexed dataset of element type T.
type Index[T any] interface {
	// RangeCount returns how many indexed elements lie within distance r
	// of q (inclusive).
	RangeCount(q T, r float64) int
	// RangeQuery returns the ids (insertion positions) of elements within
	// distance r of q.
	RangeQuery(q T, r float64) []int
	// Size returns the number of indexed elements.
	Size() int
	// DiameterEstimate estimates the diameter of the indexed set.
	DiameterEstimate() float64
}

// MultiCounter is the optional batched-counting extension: one traversal
// answers the neighbor count at every radius of an ascending schedule.
type MultiCounter[T any] interface {
	// RangeCountMulti returns, for each radius of radii (which MUST be
	// sorted ascending), how many indexed elements lie within that radius
	// of q (inclusive). The result is element-wise identical to calling
	// RangeCount once per radius; native implementations produce it from a
	// single root-to-leaf traversal.
	RangeCountMulti(q T, radii []float64) []int
}

// SelfMultiCounter is the optional self-join extension: the neighbor
// counts of every INDEXED element at every radius of an ascending
// schedule, from one dual traversal of the index against itself. Where
// MultiCounter amortizes one query's traversals across radii, this
// amortizes across query points too: subtree-against-subtree bounds
// classify whole blocks of element pairs at once. It is keyed by element
// id rather than by query value, so it applies only when the query set is
// exactly the indexed set. All three bundled trees implement it.
type SelfMultiCounter interface {
	// CountAllMulti returns counts[e][id] = the number of indexed
	// elements within radii[e] of element id (inclusive, so ≥ 1). radii
	// must be sorted ascending. Results are identical for every worker
	// count (≤ 0 means all cores, 1 means serial).
	CountAllMulti(radii []float64, workers int) [][]int
}

// CrossMultiCounter is the optional cross-set dual-join extension, serving
// Step IV's bridge searches (paper Alg. 4 L4-12): given a batch of query
// elements DISJOINT from the indexed set (the outliers, probing the inlier
// tree), one subtree-vs-subtree traversal finds for every query the first
// radius of an ascending schedule at which it has at least one indexed
// neighbor. Where MultiCounter amortizes one query's traversal across
// radii, this amortizes across the query set too: the implementation
// bulk-builds a throwaway tree over the queries and classifies query
// subtrees against index subtrees with min/max-distance windows, so whole
// blocks of query×element pairs settle at once. All three bundled trees
// implement it; join.BridgeRadii falls back to batched per-query probes
// for any other backend, and both paths return identical results.
type CrossMultiCounter[T any] interface {
	// BridgeFirsts returns, for each query, the index e of the first
	// radius with at least one indexed element within radii[e]
	// (inclusive), or len(radii) when even the largest radius finds
	// none. radii must be sorted ascending. The result is identical to
	// probing each query radius by radius and identical for every
	// worker count (≤ 0 means all cores, 1 means serial).
	BridgeFirsts(queries []T, radii []float64, workers int) []int
}

// CrossCounter is the optional cross-set COUNTING dual-join extension:
// where CrossMultiCounter resolves only each query's FIRST nonempty
// radius (all Step IV needs), this returns each query's full neighbor
// count at every radius of an ascending schedule — the quantity the
// shard-parallel pipeline sums across shards to reconstruct Step II's
// exact global counts, and the quantity the incremental layer's
// segment-vs-segment merge adds and subtracts. Implementations
// bulk-build a throwaway tree over the queries and classify query
// subtrees against index subtrees wholesale, exactly like the self-join
// but crediting one-directionally. All three bundled trees implement
// it; join.CrossMultiRadiusCounts falls back to batched per-query
// probes for any other backend, and both paths return identical
// results.
type CrossCounter[T any] interface {
	// CountCrossMulti returns counts[e][i] = the number of indexed
	// elements within radii[e] (inclusive) of queries[i]. radii must be
	// sorted ascending. Counts are exact (no gating) and identical for
	// every worker count (≤ 0 means all cores, 1 means serial).
	CountCrossMulti(queries []T, radii []float64, workers int) [][]int
}

// KNNer is the optional k-nearest-neighbor extension. The slim-tree and
// kd-tree answer it natively (best-first traversals with ties settled by
// insertion id); callers that need it on another backend — notably the
// incremental layer's per-segment merge, which falls back to scanning a
// segment's stored elements — must tolerate its absence.
type KNNer[T any] interface {
	// KNN returns the ids of the k indexed elements nearest to q together
	// with their distances, sorted ascending by (distance, id); fewer than
	// k when the index holds fewer elements.
	KNN(q T, k int) (ids []int, dists []float64)
}

// QueryAppender is the optional allocation-saving extension: range queries
// that append into a caller-provided buffer instead of allocating one.
type QueryAppender[T any] interface {
	// RangeQueryAppend appends the ids of elements within distance r of q
	// (inclusive) to dst — reusing dst's capacity — and returns the
	// extended slice.
	RangeQueryAppend(q T, r float64, dst []int) []int
}

// MultiCountAppender is the allocation-free form of MultiCounter: the
// batched counts are appended into a caller-provided buffer, so a hot
// loop recycling one scratch slice per worker pays ZERO allocations per
// probe in steady state (all three bundled arena trees also keep their
// internal traversal scratch in pooled per-worker slices). All three
// bundled trees implement it.
type MultiCountAppender[T any] interface {
	// RangeCountMultiAppend appends RangeCountMulti(q, radii)'s counts to
	// dst — reusing dst's capacity — and returns the extended slice.
	RangeCountMultiAppend(q T, radii []float64, dst []int) []int
}

// RangeCountMulti dispatches to the index's native batched counter when it
// has one, and otherwise falls back to one RangeCount probe per radius.
// radii must be sorted ascending.
func RangeCountMulti[T any](t Index[T], q T, radii []float64) []int {
	if mc, ok := t.(MultiCounter[T]); ok {
		return mc.RangeCountMulti(q, radii)
	}
	counts := make([]int, len(radii))
	for e, r := range radii {
		counts[e] = t.RangeCount(q, r)
	}
	return counts
}

// RangeCountMultiAppend dispatches to the index's buffer-reusing batched
// counter when it has one, and otherwise appends the result of
// RangeCountMulti (which itself falls back to per-radius probes on
// backends without a native batched counter). radii must be sorted
// ascending.
func RangeCountMultiAppend[T any](t Index[T], q T, radii []float64, dst []int) []int {
	if mc, ok := t.(MultiCountAppender[T]); ok {
		return mc.RangeCountMultiAppend(q, radii, dst)
	}
	return append(dst, RangeCountMulti(t, q, radii)...)
}

// RangeQueryAppend dispatches to the index's buffer-reusing range query
// when it has one, and otherwise appends the result of a plain RangeQuery.
func RangeQueryAppend[T any](t Index[T], q T, r float64, dst []int) []int {
	if qa, ok := t.(QueryAppender[T]); ok {
		return qa.RangeQueryAppend(q, r, dst)
	}
	return append(dst, t.RangeQuery(q, r)...)
}

// Builder constructs an Index over a dataset; MCCATCH builds several trees
// per run (full set, group candidates, inliers).
type Builder[T any] func(items []T) Index[T]
